(** Rounding the (LP1) relaxation to an integral allocation
    (paper Theorem 4.1, Figure 3).

    Given an optimal fractional solution [{x, d, t*}], produce integral
    step counts [x̂_ij] such that every job accumulates mass ≥ 1/2, every
    machine's load is O(log m)·t*, and the windows along every chain sum to
    O(log m)·t*. Two cases, exactly as in the paper:

    - [t* ≥ #jobs]: round every variable up; a factor-2 blowup.
    - [t* < #jobs]: per job, if the "large" parts ([x_ij ≥ 1]) carry at
      least half the mass, round those up. Otherwise bucket the small
      parts by probability ([p_ij ∈ (2^{-(b+1)}, 2^{-b}]], only
      [p_ij ≥ 1/(8m)] matter), keep the heaviest bucket, scale by a factor
      [s], and route the scaled demands through the flow network of
      Figure 3 — source → job (capacity [D_j]), job → machine (capacity
      [⌈s·d_j⌉]), machine → sink (capacity [⌈s·t*⌉]). Ford–Fulkerson
      integrality yields the integral [x̂_ij].

    Finally each job's allocation is replicated [k_j = ⌈(1/2)/mass_j⌉]
    times to reach mass 1/2; the paper's analysis makes [s·k_j = O(log m)].
    With [`Paper] constants [s = 64·⌈log₂ 8m⌉] (which forces [k_j] ∈ {1,2});
    with [`Tuned] constants [s] is the smallest scale giving every flow job
    a positive integral demand — far shorter schedules, same guarantees up
    to constants. *)

type constants = [ `Paper | `Tuned ]

type integral = {
  x : int array array;  (** x.(i).(j): integral steps after replication *)
  window : int array;  (** per-job window length [L_j = max(1, max_i x̂_ij)] *)
  mass : float array;  (** per-job mass of the integral allocation *)
  jobs : int list;
  chains : int list list;
  scale : int;  (** the [s] actually used *)
  flow_jobs : int;  (** how many jobs went through the flow network *)
}

val round :
  ?constants:constants -> Suu_core.Instance.t -> Lp_relax.fractional -> integral
(** Round a fractional solution (default [`Tuned]). *)

val randomized :
  Suu_prob.Rng.t -> Suu_core.Instance.t -> Lp_relax.fractional -> integral
(** Ablation alternative to the paper's rounding (EXP-G): independent
    randomized rounding — [x̂_ij = ⌊x_ij⌋ + Bernoulli(frac x_ij)] — with
    per-job repair (a job left with zero allocation gets one step on its
    best machine) and the same per-job replication to mass 1/2.
    Expectation-preserving, so loads concentrate near the LP's; no
    worst-case guarantee, unlike {!round}. *)

val chain_pseudo : Suu_core.Instance.t -> integral -> int list -> Suu_core.Pseudo.t
(** The pseudo-schedule of one chain (which must be one of [integral.chains]):
    jobs receive consecutive windows in chain order; within job [j]'s
    window, machine [i] works its first [x̂_ij] steps. Length is
    [Σ_{j ∈ chain} L_j]. *)

val chain_pseudos : Suu_core.Instance.t -> integral -> Suu_core.Pseudo.t list
(** [chain_pseudo] for every chain. *)

val verify : Suu_core.Instance.t -> integral -> (unit, string) result
(** Every job reaches mass ≥ 1/2 and windows dominate allocations. *)
