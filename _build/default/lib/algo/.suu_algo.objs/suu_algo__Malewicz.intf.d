lib/algo/malewicz.mli: Suu_core
