lib/algo/pipeline.mli: Rounding Suu_core
