lib/algo/chains.mli: Pipeline Suu_core
