lib/algo/delay.mli: Suu_core Suu_prob
