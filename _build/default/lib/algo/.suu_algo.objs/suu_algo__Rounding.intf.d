lib/algo/rounding.mli: Lp_relax Suu_core Suu_prob
