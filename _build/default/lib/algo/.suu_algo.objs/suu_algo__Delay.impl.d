lib/algo/delay.ml: Array Float List Suu_core Suu_prob
