lib/algo/layered.ml: Array List Pipeline Suu_core Suu_dag
