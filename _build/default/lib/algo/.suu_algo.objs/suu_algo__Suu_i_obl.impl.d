lib/algo/suu_i_obl.ml: Array Float List Msm_ext Suu_core
