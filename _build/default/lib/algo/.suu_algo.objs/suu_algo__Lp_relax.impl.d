lib/algo/lp_relax.ml: Array Float Format Hashtbl List Printf Suu_core Suu_lp
