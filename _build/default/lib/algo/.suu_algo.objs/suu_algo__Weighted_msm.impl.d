lib/algo/weighted_msm.ml: Array Float List Suu_core Suu_dag
