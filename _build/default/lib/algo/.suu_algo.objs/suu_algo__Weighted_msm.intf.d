lib/algo/weighted_msm.mli: Suu_core
