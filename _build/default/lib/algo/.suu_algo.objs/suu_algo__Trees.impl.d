lib/algo/trees.ml: Array Pipeline Suu_core Suu_dag
