lib/algo/rounding.ml: Array Float Hashtbl List Lp_relax Option Printf Suu_core Suu_flow Suu_prob
