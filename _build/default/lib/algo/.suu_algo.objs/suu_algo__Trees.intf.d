lib/algo/trees.mli: Pipeline Suu_core Suu_dag
