lib/algo/bounds.mli: Format Suu_core
