lib/algo/msm_ext.ml: Array Float List Msm Suu_core
