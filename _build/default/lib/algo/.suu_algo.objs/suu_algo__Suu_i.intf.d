lib/algo/suu_i.mli: Suu_core
