lib/algo/msm.mli: Suu_core
