lib/algo/layered.mli: Pipeline Suu_core Suu_dag
