lib/algo/forest.ml: Pipeline Suu_core Suu_dag Trees
