lib/algo/msm_ext.mli: Suu_core
