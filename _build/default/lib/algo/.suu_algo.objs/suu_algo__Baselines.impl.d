lib/algo/baselines.ml: Array List Suu_core Suu_dag Suu_prob
