lib/algo/lp_indep.ml: Array List Lp_relax Rounding Suu_core Suu_dag
