lib/algo/lp_indep.mli: Rounding Suu_core
