lib/algo/forest.mli: Pipeline Suu_core
