lib/algo/baselines.mli: Suu_core
