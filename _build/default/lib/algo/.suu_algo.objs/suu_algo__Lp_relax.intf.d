lib/algo/lp_relax.mli: Suu_core
