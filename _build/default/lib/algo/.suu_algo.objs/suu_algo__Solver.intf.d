lib/algo/solver.mli: Pipeline Suu_core
