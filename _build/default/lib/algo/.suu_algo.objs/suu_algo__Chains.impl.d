lib/algo/chains.ml: Pipeline Suu_core Suu_dag
