lib/algo/msm.ml: Array Float List Suu_core
