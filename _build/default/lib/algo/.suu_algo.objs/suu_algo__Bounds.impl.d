lib/algo/bounds.ml: Array Float Format List Lp_relax Malewicz Printf Suu_core Suu_dag Suu_sim
