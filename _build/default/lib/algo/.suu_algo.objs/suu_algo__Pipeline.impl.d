lib/algo/pipeline.ml: Array Delay Float List Lp_relax Rounding Suu_core Suu_dag Suu_prob
