lib/algo/solver.ml: Chains Forest Layered Lp_indep Option Pipeline Suu_core Suu_dag Suu_i Trees
