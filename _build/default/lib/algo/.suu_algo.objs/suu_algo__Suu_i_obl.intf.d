lib/algo/suu_i_obl.mli: Suu_core
