lib/algo/suu_i.ml: Msm Suu_core
