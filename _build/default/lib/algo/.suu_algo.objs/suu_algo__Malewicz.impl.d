lib/algo/malewicz.ml: Array Float Hashtbl List Option Printf Suu_core Suu_sim
