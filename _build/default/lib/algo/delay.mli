(** Random delays for pseudo-schedules (paper §4.1, after Theorem 4.3).

    The rounded pseudo-schedule may put many chains on one machine in the
    same step. Delaying each chain's start by an independent uniform amount
    in [\[0, Π_max\]] (Π_max = the load) brings the worst per-machine
    per-step congestion down to O(log(n+m)/log log(n+m)) with high
    probability (Shmoys–Stein–Wein); the flattening step then expands each
    step by its congestion.

    The paper invokes external derandomizations
    (Schmidt–Siegel–Srinivasan); we substitute a *seeded best-of-K search*:
    draw K delay vectors from a deterministic RNG and keep the one whose
    flattened schedule is shortest (the all-zeros vector is always a
    candidate, so the result never loses to not delaying at all). This is
    deterministic given the seed, achieves the randomized bound with
    probability ≥ 1 − 2^{-K} per the same analysis, and exercises the
    identical delay → congestion → flatten code path. See DESIGN.md. *)

type choice = {
  delays : int array;  (** per-chain delay actually used *)
  congestion : int;  (** max jobs on one machine in one step *)
  flattened_length : int;  (** length after flattening *)
}

val flattened_length : Suu_core.Pseudo.t -> int
(** [Σ_t max(1, congestion_t)] — the length [Pseudo.flatten] will produce. *)

val overlay_with_delays : Suu_core.Pseudo.t list -> int array -> Suu_core.Pseudo.t
(** Shift each chain pseudo-schedule by its delay, then overlay. *)

val auto_ranges : Suu_core.Pseudo.t list -> int list
(** Candidate maximum-delay ranges for [choose]: the combined load Π_max
    (the paper's choice for chains), Π_max divided by ⌈log₂(#chains+1)⌉
    (the Theorem 4.8 choice for trees), and 0. *)

val choose :
  Suu_prob.Rng.t ->
  tries:int ->
  ranges:int list ->
  Suu_core.Pseudo.t list ->
  Suu_core.Pseudo.t * choice
(** Best-of-[K] search: for every range [r] in [ranges], draw [tries] delay
    vectors uniform in [\[0, r\]]; return the overlay minimising
    [flattened_length] (the all-zero vector is always included). *)

val derandomized :
  ?range:int -> Suu_core.Pseudo.t list -> Suu_core.Pseudo.t * choice
(** Deterministic delays by the method of conditional expectations, the
    spirit of the Schmidt–Siegel–Srinivasan derandomization the paper
    cites. The pessimistic estimator is the pairwise-collision count
    [Σ_{machine,step} (load choose 2)]-style overlap: chains are placed
    one at a time (heaviest first) at the delay in [\[0, range\]] that
    adds the fewest unit-on-unit collisions with the chains already
    placed. Under uniformly random delays the expected number of added
    collisions is the average over candidate delays, so the greedy choice
    never exceeds the random bound — and the flattened length exceeds the
    collision-free length by at most the total collision count. [range]
    defaults to the overlay load Π_max. *)
