(** Priority-weighted variants of the greedy mass maximiser — adaptive
    heuristics for precedence-constrained instances.

    SUU-I-ALG (and its MSM-ALG core) treats all eligible jobs alike, which
    is provably fine for independent jobs but ignores that, under
    precedence constraints, finishing a job with many waiting descendants
    unlocks more parallelism. These policies run the same greedy scan as
    MSM-ALG but process pairs by [p_ij × w_j] for a job weight [w_j],
    biasing machines toward structurally urgent jobs. No approximation
    guarantee is claimed beyond the independent case (where weights
    degenerate gracefully); EXP-A/EXP-E measure them against SUU-I-ALG. *)

type weighting =
  | Uniform  (** [w_j = 1]: exactly MSM-ALG / SUU-I-ALG *)
  | Descendants  (** [w_j = 1 + #descendants of j] *)
  | Critical_path
      (** [w_j = ] number of vertices on the longest directed path starting
          at [j] — the remaining-depth priority classic in deterministic
          scheduling *)

val weights : Suu_core.Instance.t -> weighting -> float array
(** The weight vector this instance induces. *)

val assign :
  Suu_core.Instance.t ->
  weights:float array ->
  jobs:bool array ->
  Suu_core.Assignment.t
(** Greedy scan by non-increasing [p_ij · w_j], same mass cap and
    machine-use rules as {!Msm.assign}. *)

val policy : ?weighting:weighting -> Suu_core.Instance.t -> Suu_core.Policy.t
(** Adaptive policy applying [assign] to the eligible set each step
    (default weighting [Critical_path]). Named
    ["msm-uniform" | "msm-descendants" | "msm-critical-path"]. *)
