module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious

type build = {
  schedule : Oblivious.t;
  core : Oblivious.t;
  t_star : float;
  integral : Rounding.integral;
}

let build ?(constants = `Tuned) inst =
  if Suu_dag.Dag.edge_count (Instance.dag inst) > 0 then
    invalid_arg "Lp_indep.build: instance has precedence constraints";
  let n = Instance.n inst and m = Instance.m inst in
  let jobs = List.init n (fun j -> j) in
  let frac = Lp_relax.solve_independent inst ~jobs in
  let integral = Rounding.round ~constants inst frac in
  let core = Oblivious.of_matrix ~m ~n integral.Rounding.x in
  let prefix = core.Oblivious.prefix in
  let schedule =
    if Array.length prefix = 0 then Oblivious.with_fallback inst core
    else Oblivious.create ~m ~cycle:prefix [||]
  in
  { schedule; core; t_star = frac.Lp_relax.t_star; integral }

let schedule ?constants inst = (build ?constants inst).schedule

let policy ?constants inst =
  Suu_core.Policy.of_oblivious "lp-indep" (schedule ?constants inst)
