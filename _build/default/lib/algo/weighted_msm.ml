module Instance = Suu_core.Instance
module Assignment = Suu_core.Assignment
module Dag = Suu_dag.Dag

type weighting = Uniform | Descendants | Critical_path

let weights inst = function
  | Uniform -> Array.make (Instance.n inst) 1.
  | Descendants ->
      (* Count true descendants via reachability (descendant_counts is only
         exact on forests). *)
      let dag = Instance.dag inst in
      let r = Dag.reachable dag in
      Array.init (Instance.n inst) (fun j ->
          let count = ref 0 in
          Array.iter (fun reachable -> if reachable then incr count) r.(j);
          Float.of_int (1 + !count))
  | Critical_path ->
      let dag = Instance.dag inst in
      let n = Instance.n inst in
      let depth = Array.make n 1 in
      let topo = Dag.topo_order dag in
      for k = n - 1 downto 0 do
        let u = topo.(k) in
        List.iter
          (fun v -> if depth.(v) + 1 > depth.(u) then depth.(u) <- depth.(v) + 1)
          (Dag.succs dag u)
      done;
      Array.map Float.of_int depth

let sorted_pairs inst ~weights ~jobs =
  let pairs = ref [] in
  for i = 0 to Instance.m inst - 1 do
    for j = 0 to Instance.n inst - 1 do
      if jobs.(j) then begin
        let p = Instance.prob inst ~machine:i ~job:j in
        if p > 0. then pairs := (p *. weights.(j), p, i, j) :: !pairs
      end
    done
  done;
  List.sort
    (fun (s1, _, i1, j1) (s2, _, i2, j2) ->
      match Float.compare s2 s1 with
      | 0 -> compare (i1, j1) (i2, j2)
      | c -> c)
    !pairs

let assign inst ~weights ~jobs =
  if Array.length jobs <> Instance.n inst then
    invalid_arg "Weighted_msm.assign: jobs length mismatch";
  if Array.length weights <> Instance.n inst then
    invalid_arg "Weighted_msm.assign: weights length mismatch";
  let a = Assignment.idle (Instance.m inst) in
  let mass = Array.make (Instance.n inst) 0. in
  List.iter
    (fun (_, p, i, j) ->
      if a.(i) = Assignment.idle_job && mass.(j) +. p <= 1. +. 1e-12 then begin
        a.(i) <- j;
        mass.(j) <- mass.(j) +. p
      end)
    (sorted_pairs inst ~weights ~jobs);
  a

let name_of = function
  | Uniform -> "msm-uniform"
  | Descendants -> "msm-descendants"
  | Critical_path -> "msm-critical-path"

let policy ?(weighting = Critical_path) inst =
  let w = weights inst weighting in
  Suu_core.Policy.stateless (name_of weighting) (fun state ->
      assign inst ~weights:w ~jobs:state.Suu_core.Policy.eligible)
