(** LP-based oblivious schedules for independent jobs
    (paper §4.1, Theorem 4.5).

    Solve (LP2) — the relaxation without window or chain constraints —
    round it with the Theorem 4.1 machinery, and pack the integral
    allocation machine-by-machine (jobs are independent, so no windows or
    delays are needed; the machine loads alone bound the length). The
    resulting accumulate-mass-1/2 schedule is repeated forever. Expected
    makespan O(log n · log min(n, m)) × TOPT, improving on SUU-I-OBL's
    O(log² n): the rounding analysis only pays for the probability buckets
    that actually occur in a basic feasible solution of (LP2), of which
    there are O(log min(n, m)). *)

type build = {
  schedule : Suu_core.Oblivious.t;  (** core repeated as the cycle *)
  core : Suu_core.Oblivious.t;  (** one mass-1/2 pass *)
  t_star : float;  (** the (LP2) optimum *)
  integral : Rounding.integral;
}

val build : ?constants:Rounding.constants -> Suu_core.Instance.t -> build
(** @raise Invalid_argument if the instance has precedence constraints. *)

val schedule :
  ?constants:Rounding.constants -> Suu_core.Instance.t -> Suu_core.Oblivious.t

val policy :
  ?constants:Rounding.constants -> Suu_core.Instance.t -> Suu_core.Policy.t
