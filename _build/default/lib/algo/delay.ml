module Pseudo = Suu_core.Pseudo
module Rng = Suu_prob.Rng

type choice = {
  delays : int array;
  congestion : int;
  flattened_length : int;
}

let flattened_length p =
  let total = ref 0 in
  Array.iter
    (fun step ->
      let c =
        Array.fold_left (fun acc jobs -> max acc (List.length jobs)) 0 step
      in
      total := !total + max c 1)
    p.Pseudo.steps;
  !total

let overlay_with_delays pseudos delays =
  if List.length pseudos <> Array.length delays then
    invalid_arg "Delay.overlay_with_delays: arity mismatch";
  Pseudo.overlay (List.mapi (fun k p -> Pseudo.shift p delays.(k)) pseudos)

let auto_ranges pseudos =
  let count = List.length pseudos in
  let pi_max = Pseudo.load (Pseudo.overlay pseudos) in
  let log_chains =
    max 1
      (Float.to_int
         (Float.ceil (Float.log (Float.of_int (count + 1)) /. Float.log 2.)))
  in
  List.sort_uniq compare [ pi_max; pi_max / log_chains; 0 ]

(* All (machine, job, start, length) runs of a pseudo-schedule, recovered
   from its step structure: consecutive steps where machine [i] carries
   job [j] form one run. For collision counting we only need the covered
   (machine, step) multiset, so runs are expanded per step below. *)
let machine_steps p =
  let acc = ref [] in
  Array.iteri
    (fun t step ->
      Array.iteri
        (fun i jobs -> List.iter (fun _ -> acc := (i, t) :: !acc) jobs)
        step)
    p.Pseudo.steps;
  !acc

let derandomized ?range pseudos =
  let count = List.length pseudos in
  if count = 0 then invalid_arg "Delay.derandomized: no chains";
  let m = (List.hd pseudos).Pseudo.m in
  let range =
    match range with
    | Some r ->
        if r < 0 then invalid_arg "Delay.derandomized: negative range" else r
    | None -> Pseudo.load (Pseudo.overlay pseudos)
  in
  let max_len =
    List.fold_left (fun acc p -> max acc (Pseudo.length p)) 0 pseudos + range
  in
  (* load.(i).(t): units already placed on machine i at absolute step t. *)
  let load = Array.make_matrix m (max 1 max_len) 0 in
  (* Heaviest chains first: their placement constrains the rest most. *)
  let order =
    List.mapi (fun k p -> (k, p)) pseudos
    |> List.sort (fun (_, a) (_, b) ->
           compare (Pseudo.load b, Pseudo.length b) (Pseudo.load a, Pseudo.length a))
  in
  let delays = Array.make count 0 in
  List.iter
    (fun (k, p) ->
      let units = machine_steps p in
      let cost d =
        List.fold_left (fun acc (i, t) -> acc + load.(i).(t + d)) 0 units
      in
      let best_d = ref 0 and best_cost = ref (cost 0) in
      for d = 1 to range do
        let c = cost d in
        if c < !best_cost then begin
          best_cost := c;
          best_d := d
        end
      done;
      delays.(k) <- !best_d;
      List.iter (fun (i, t) -> load.(i).(t + !best_d) <- load.(i).(t + !best_d) + 1) units)
    order;
  let overlay = overlay_with_delays pseudos delays in
  ( overlay,
    {
      delays;
      congestion = Pseudo.max_congestion overlay;
      flattened_length = flattened_length overlay;
    } )

let choose rng ~tries ~ranges pseudos =
  let count = List.length pseudos in
  if count = 0 then invalid_arg "Delay.choose: no chains";
  let evaluate delays =
    let overlay = overlay_with_delays pseudos delays in
    let fl = flattened_length overlay in
    (overlay, { delays; congestion = Pseudo.max_congestion overlay; flattened_length = fl })
  in
  let best = ref (evaluate (Array.make count 0)) in
  List.iter
    (fun range ->
      if range > 0 then
        for _ = 1 to max 1 tries do
          let delays = Array.init count (fun _ -> Rng.int rng (range + 1)) in
          let candidate = evaluate delays in
          if (snd candidate).flattened_length < (snd !best).flattened_length
          then best := candidate
        done)
    ranges;
  !best
