module Dag = Suu_dag.Dag

let levels g =
  let n = Dag.n g in
  if n = 0 then []
  else begin
    let depth = Array.make n 1 in
    Array.iter
      (fun u ->
        List.iter
          (fun v -> if depth.(u) + 1 > depth.(v) then depth.(v) <- depth.(u) + 1)
          (Dag.succs g u))
      (Dag.topo_order g);
    let max_depth = Array.fold_left max 1 depth in
    let buckets = Array.make max_depth [] in
    for v = n - 1 downto 0 do
      buckets.(depth.(v) - 1) <- v :: buckets.(depth.(v) - 1)
    done;
    Array.to_list buckets
  end

let blocks inst =
  levels (Suu_core.Instance.dag inst)
  |> List.map (fun level -> List.map (fun j -> [ j ]) level)

let build ?params inst = Pipeline.build ?params inst ~blocks:(blocks inst)

let schedule ?params inst = (build ?params inst).Pipeline.schedule

let policy ?params inst =
  Suu_core.Policy.of_oblivious "suu-layered" (schedule ?params inst)
