module Chain_decomp = Suu_dag.Chain_decomp
module Classify = Suu_dag.Classify

let blocks_of_decomposition (decomp : Chain_decomp.t) =
  Array.to_list decomp.Chain_decomp.blocks

let build ?params inst =
  let dag = Suu_core.Instance.dag inst in
  let mode =
    if Classify.matches dag Classify.Out_trees then Chain_decomp.Out_mode
    else if Classify.matches dag Classify.In_trees then Chain_decomp.In_mode
    else
      invalid_arg "Trees.build: dag is not a collection of out- or in-trees"
  in
  let decomp = Chain_decomp.decompose ~mode dag in
  Pipeline.build ?params inst ~blocks:(blocks_of_decomposition decomp)

let schedule ?params inst = (build ?params inst).Pipeline.schedule

let policy ?params inst =
  Suu_core.Policy.of_oblivious "suu-trees" (schedule ?params inst)
