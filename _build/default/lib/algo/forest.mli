(** SUU with directed-forest precedence constraints (paper §4.2,
    Theorem 4.7).

    Same block-by-block pipeline as {!Trees}, but the DAG may be any
    polytree forest (edges oriented arbitrarily), decomposed into
    ≤ 2⌊log₂ n⌋ + 1 blocks (Lemma 4.6). Expected makespan
    O(log m · log² n · log(n+m)/log log(n+m)) × TOPT. *)

val build : ?params:Pipeline.params -> Suu_core.Instance.t -> Pipeline.build
(** @raise Invalid_argument unless the underlying undirected graph is a
    forest. *)

val schedule :
  ?params:Pipeline.params -> Suu_core.Instance.t -> Suu_core.Oblivious.t

val policy : ?params:Pipeline.params -> Suu_core.Instance.t -> Suu_core.Policy.t
