module Instance = Suu_core.Instance
module Lp = Suu_lp.Lp
module Simplex = Suu_lp.Simplex

type fractional = {
  x : float array array;
  d : float array;
  t_star : float;
  jobs : int list;
  chains : int list list;
}

exception Lp_failure of string

let mass_target = 0.5

let check_chains inst chains =
  let n = Instance.n inst in
  let seen = Array.make n false in
  List.iter
    (List.iter (fun j ->
         if j < 0 || j >= n then invalid_arg "Lp_relax: job out of range";
         if seen.(j) then invalid_arg "Lp_relax: job in two chains";
         seen.(j) <- true))
    chains

(* Build and solve the relaxation. [with_windows] selects (LP1) (window
   variables and chain constraints) versus (LP2). *)
let solve inst ~chains ~with_windows =
  check_chains inst chains;
  let m = Instance.m inst and n = Instance.n inst in
  let jobs = List.concat chains |> List.sort compare in
  let b = Lp.builder () in
  let t_var = Lp.add_var b ~obj:1. "t" in
  (* x variables only where p_ij > 0. *)
  let x_vars = Hashtbl.create 256 in
  List.iter
    (fun j ->
      for i = 0 to m - 1 do
        if Instance.prob inst ~machine:i ~job:j > 0. then
          Hashtbl.add x_vars (i, j)
            (Lp.add_var b (Printf.sprintf "x_%d_%d" i j))
      done)
    jobs;
  let d_vars = Hashtbl.create 64 in
  if with_windows then
    List.iter
      (fun j -> Hashtbl.add d_vars j (Lp.add_var b (Printf.sprintf "d_%d" j)))
      jobs;
  (* (1) mass: Σ_i p_ij x_ij >= 1/2. *)
  List.iter
    (fun j ->
      let terms = ref [] in
      for i = 0 to m - 1 do
        match Hashtbl.find_opt x_vars (i, j) with
        | Some v ->
            terms := (v, Instance.prob inst ~machine:i ~job:j) :: !terms
        | None -> ()
      done;
      Lp.add_ge b !terms mass_target)
    jobs;
  (* (2) machine load: Σ_j x_ij <= t. *)
  for i = 0 to m - 1 do
    let terms = ref [ (t_var, -1.) ] in
    List.iter
      (fun j ->
        match Hashtbl.find_opt x_vars (i, j) with
        | Some v -> terms := (v, 1.) :: !terms
        | None -> ())
      jobs;
    if List.length !terms > 1 then Lp.add_le b !terms 0.
  done;
  if with_windows then begin
    (* (3) chain length: Σ_{j ∈ C_k} d_j <= t. *)
    List.iter
      (fun chain ->
        let terms =
          (t_var, -1.) :: List.map (fun j -> (Hashtbl.find d_vars j, 1.)) chain
        in
        Lp.add_le b terms 0.)
      chains;
    (* (4) x_ij <= d_j and (5) d_j >= 1. *)
    Hashtbl.iter
      (fun (_, j) xv -> Lp.add_le b [ (xv, 1.); (Hashtbl.find d_vars j, -1.) ] 0.)
      x_vars;
    List.iter (fun j -> Lp.add_ge b [ (Hashtbl.find d_vars j, 1.) ] 1.) jobs
  end;
  let problem = Lp.build b `Minimize in
  match Simplex.solve problem with
  | Simplex.Infeasible -> raise (Lp_failure "relaxation infeasible")
  | Simplex.Unbounded -> raise (Lp_failure "relaxation unbounded")
  | Simplex.Optimal { objective; solution } ->
      let x = Array.make_matrix m n 0. in
      Hashtbl.iter
        (fun (i, j) v -> x.(i).(j) <- Float.max 0. solution.(v))
        x_vars;
      let d = Array.make n 0. in
      if with_windows then
        Hashtbl.iter (fun j v -> d.(j) <- Float.max 0. solution.(v)) d_vars
      else
        (* For (LP2) report the implied window: the max steps any machine
           spends on the job. *)
        List.iter
          (fun j ->
            for i = 0 to m - 1 do
              if x.(i).(j) > d.(j) then d.(j) <- x.(i).(j)
            done)
          jobs;
      { x; d; t_star = objective; jobs; chains = (if with_windows then chains else []) }

let solve_chains inst ~chains = solve inst ~chains ~with_windows:true

let solve_independent inst ~jobs =
  solve inst ~chains:(List.map (fun j -> [ j ]) jobs) ~with_windows:false

let verify inst frac =
  let m = Instance.m inst in
  let eps = 1e-6 in
  let problems = ref [] in
  let note fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  List.iter
    (fun j ->
      let mass = ref 0. in
      for i = 0 to m - 1 do
        if frac.x.(i).(j) < -.eps then note "x_%d_%d negative" i j;
        mass := !mass +. (Instance.prob inst ~machine:i ~job:j *. frac.x.(i).(j))
      done;
      if !mass < mass_target -. eps then note "job %d mass %g < 1/2" j !mass)
    frac.jobs;
  for i = 0 to m - 1 do
    let load = ref 0. in
    List.iter (fun j -> load := !load +. frac.x.(i).(j)) frac.jobs;
    if !load > frac.t_star +. eps then
      note "machine %d load %g > t*=%g" i !load frac.t_star
  done;
  List.iter
    (fun chain ->
      let total = List.fold_left (fun acc j -> acc +. frac.d.(j)) 0. chain in
      if total > frac.t_star +. eps then
        note "chain length %g > t*=%g" total frac.t_star;
      List.iter
        (fun j ->
          if frac.d.(j) < 1. -. eps then note "d_%d = %g < 1" j frac.d.(j);
          for i = 0 to m - 1 do
            if frac.x.(i).(j) > frac.d.(j) +. eps then
              note "x_%d_%d = %g > d_%d = %g" i j frac.x.(i).(j) j frac.d.(j)
          done)
        chain)
    frac.chains;
  match !problems with [] -> Ok () | p :: _ -> Error p
