(** Baseline scheduling policies the paper's algorithms are compared
    against in the experiments.

    None of these carries an approximation guarantee (that is the point);
    they represent what a practitioner might do without the paper:
    uncoordinated greedy choices, static rotation, full serialisation, or
    random assignment. *)

val greedy_rate : Suu_core.Instance.t -> Suu_core.Policy.t
(** Every machine independently picks the eligible job it is best at
    (max [p_ij], ties to the lowest job index). No coordination: machines
    pile onto the same popular job and overshoot mass 1. *)

val round_robin : Suu_core.Instance.t -> Suu_core.Policy.t
(** Machine [i] takes the [(i + t)]-th eligible job modulo the eligible
    count: full coordination, no probability awareness. *)

val serial_all_machines : Suu_core.Instance.t -> Suu_core.Policy.t
(** All machines gang up on the single first eligible job in topological
    order — the paper's fallback schedule [Σ_{o,3}] run as a policy.
    Optimal for one job, n× too slow for independent ones. *)

val random_assignment : seed:int -> Suu_core.Instance.t -> Suu_core.Policy.t
(** Every machine picks a uniformly random eligible job each step. *)

val static_best_machine : Suu_core.Instance.t -> Suu_core.Policy.t
(** Oblivious baseline: each job is served only by its single best machine,
    jobs in topological order per machine, repeated forever. What a naive
    deterministic "assign each task to the most reliable worker" plan
    does. *)

val all : seed:int -> Suu_core.Instance.t -> Suu_core.Policy.t list
(** All baselines, for experiment sweeps. *)
