let build ?params inst =
  let dag = Suu_core.Instance.dag inst in
  let decomp = Suu_dag.Chain_decomp.decompose dag in
  Pipeline.build ?params inst ~blocks:(Trees.blocks_of_decomposition decomp)

let schedule ?params inst = (build ?params inst).Pipeline.schedule

let policy ?params inst =
  Suu_core.Policy.of_oblivious "suu-forest" (schedule ?params inst)
