(** SUU-C: scheduling under disjoint-chain precedence constraints
    (paper §4.1, Theorem 4.4).

    The pipeline: solve (LP1), round it into an integral pseudo-schedule
    with per-job windows laid out sequentially along every chain
    (Theorem 4.1 + Theorem 4.3), delay the chains and flatten into a
    feasible oblivious schedule (the Shmoys–Stein–Wein step), replicate
    each step σ times and fall back to the all-machines topological cycle.
    Expected makespan O(log m · log n · log(n+m)/log log(n+m)) × TOPT. *)

val build :
  ?params:Pipeline.params -> Suu_core.Instance.t -> Pipeline.build
(** Run the pipeline on an instance whose DAG is a disjoint union of
    chains (independent jobs count as length-1 chains).
    @raise Invalid_argument otherwise. *)

val schedule :
  ?params:Pipeline.params -> Suu_core.Instance.t -> Suu_core.Oblivious.t

val policy : ?params:Pipeline.params -> Suu_core.Instance.t -> Suu_core.Policy.t
