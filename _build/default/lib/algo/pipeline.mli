(** The full LP → round → delay → flatten → replicate pipeline shared by the
    chain (Theorem 4.4), tree (Theorem 4.8) and forest (Theorem 4.7)
    algorithms.

    Input is a partition of the jobs into *blocks*, each block a collection
    of vertex-disjoint precedence chains, with all precedence across blocks
    pointing forward (exactly what a chain decomposition provides; for
    SUU-C there is a single block). Per block: solve (LP1), round
    (Theorem 4.1) into per-chain pseudo-schedules, pick chain delays and
    overlay (§4.1's random-delay step). Blocks are concatenated
    sequentially, the result flattened into a feasible oblivious schedule
    in which every job accumulates mass ≥ 1/2 after its predecessors did
    (AccuMass-C conditions (i) and (ii)), every step is replicated σ times
    (the "schedule replication" step), and the all-machines topological
    cycle [Σ_{o,3}] is attached as the fallback tail. *)

type params = {
  constants : Rounding.constants;
  delay_tries : int;  (** K of the best-of-K delay search *)
  derandomize : bool;
      (** use {!Delay.derandomized} (method of conditional expectations)
          instead of the seeded best-of-K search *)
  sigma : [ `Auto | `Fixed of int ];
      (** per-step replication. [`Auto] with tuned constants is
          [max 2 ⌈ln(n+1)⌉] — the expected-makespan sweet spot given the
          fallback tail (ablated in EXP-G.2); with paper constants it is
          the paper's ⌈16·log₂ n⌉, which makes the core succeed w.h.p. *)
  seed : int;  (** seed of the delay search RNG *)
}

val default_params : params
(** Tuned constants, 8 delay tries, auto σ, seed 0x5EED. *)

val paper_params : params
(** Paper constants everywhere: [`Paper] rounding scale, derandomized
    delays (the paper's final schedules are deterministic),
    σ = ⌈16·log₂ n⌉. For EXP-G ablations. *)

type diagnostics = {
  lp_t_star : float list;  (** per-block LP optima *)
  scale : int;  (** max rounding scale used *)
  flow_jobs : int;  (** jobs routed through the flow network *)
  congestion : int;  (** max post-delay congestion over blocks *)
  pseudo_length : int;  (** total pseudo-schedule length before flattening *)
  core_length : int;  (** oblivious length after flattening, before σ *)
  sigma : int;
  blocks : int;
}

type build = {
  schedule : Suu_core.Oblivious.t;  (** final schedule with fallback cycle *)
  accumass : Suu_core.Oblivious.t;
      (** flattened, un-replicated core: every job accumulates mass ≥ 1/2,
          predecessors first — the AccuMass-C artifact, exposed for tests *)
  diagnostics : diagnostics;
}

val build :
  ?params:params -> Suu_core.Instance.t -> blocks:int list list list -> build
(** Run the pipeline. [blocks] must partition all jobs; each chain must be
    in precedence order; cross-block edges must point to later blocks (all
    verified — @raise Invalid_argument otherwise). *)

val lp_lower_bound : build -> float
(** [max_block t*_block / 16]: a valid makespan lower bound. Each block's
    (LP1) optimum is at most 16 × the optimal expected makespan of the
    block's sub-instance (Lemma 4.2), which is itself a lower bound on the
    full instance's TOPT (scheduling a subset can only be easier). *)
