(** SUU-I-OBL: oblivious O(log² n)-approximation for independent jobs
    (paper §3.2, Alg. 2, Lemma 3.5 and Theorem 3.6).

    The algorithm guesses the optimal makespan by doubling a length
    parameter [t]. For each guess it repeatedly invokes MSM-E-ALG on the
    jobs that have not yet accumulated mass [1/96], concatenating the
    resulting oblivious schedules, for at most [66 log n] rounds. If
    [t ≥ 2 TOPT], Theorem 3.1 + Lemma 3.4 guarantee each round serves at
    least a [1/95] fraction of the remaining jobs, so the loop drains; if
    jobs remain the guess was too small and [t] doubles.

    The result (Lemma 3.5) is an oblivious schedule of length
    [O(log n) · TOPT] in which every job accumulates mass ≥ 1/96; repeated
    forever (Theorem 3.6) its expected makespan is [O(log² n) · TOPT]. *)

type params = {
  mass_target : float;  (** removal threshold (paper: 1/96) *)
  rounds_per_guess : int -> int;
      (** max MSM-E-ALG rounds for [n] jobs (paper: ⌈66 log₂ n⌉) *)
  early_exit : bool;
      (** abandon a guess as soon as a round removes no job — safe, because
          a sufficient [t] always removes at least one (see Lemma 3.5's
          counting argument), and it skips useless rounds *)
  t0 : int;  (** initial guess (paper: 1) *)
}

val paper_params : params
(** The constants exactly as in Algorithm 2 (with [early_exit] on). *)

val tuned_params : params
(** Practical constants: mass target 1/4, at most [⌈8 log₂ n⌉] rounds —
    same structure and guarantees up to constants, far shorter schedules.
    Used as the experiment default; EXP-G ablates against [paper_params]. *)

type result = {
  core : Suu_core.Oblivious.t;
      (** the accumulated schedule: every job reaches the mass target *)
  final_t : int;  (** the accepted guess *)
  rounds_used : int;
  guesses : int;  (** how many doublings were tried *)
}

val build : ?params:params -> Suu_core.Instance.t -> result
(** Run Algorithm 2. Terminates for every valid instance (the guess is
    accepted before [t] exceeds O(n/p_min)). *)

val schedule : ?params:params -> Suu_core.Instance.t -> Suu_core.Oblivious.t
(** The Theorem 3.6 schedule: [core] repeated forever (as the cycle). *)

val policy : ?params:params -> Suu_core.Instance.t -> Suu_core.Policy.t
