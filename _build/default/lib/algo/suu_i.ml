let policy inst =
  Suu_core.Policy.stateless "suu-i-alg" (fun state ->
      Msm.assign inst ~jobs:state.Suu_core.Policy.eligible)
