module Instance = Suu_core.Instance
module Dag = Suu_dag.Dag

type t = {
  rate : float;
  capacity : float;
  critical_path : float;
  lp : float option;
  exact : float option;
}

let rate_bound inst =
  let n = Instance.n inst in
  let worst = ref 0. in
  for j = 0 to n - 1 do
    let q = Float.min 1. (Instance.total_rate inst j) in
    if q > 0. then worst := Float.max !worst (1. /. q)
  done;
  !worst

(* Two capacity arguments. Deterministic: at most m jobs finish per step.
   Probabilistic: with μ = Σ_i max_j p_ij, E[completions in t steps] ≤ tμ,
   so P(T ≤ t) = P(n completions within t) ≤ tμ/n by Markov; then
   E[T] ≥ Σ_{t < n/(2μ)} P(T > t) ≥ (n/2μ)(1 − (n/2μ)μ/n) = n/(4μ). *)
let capacity_bound inst =
  let n = Float.of_int (Instance.n inst) in
  let m = Float.of_int (Instance.m inst) in
  let mu = ref 0. in
  for i = 0 to Instance.m inst - 1 do
    mu := !mu +. Instance.machine_max_prob inst i
  done;
  let deterministic = n /. m in
  let probabilistic = if !mu > 0. then n /. (4. *. !mu) else 0. in
  Float.max deterministic probabilistic

let critical_path_bound inst =
  let n = Instance.n inst in
  let dag = Instance.dag inst in
  if n = 0 then 0.
  else begin
    let weight j =
      let q = Float.min 1. (Instance.total_rate inst j) in
      if q > 0. then 1. /. q else 1.
    in
    let best = Array.make n 0. in
    let topo = Dag.topo_order dag in
    Array.iter
      (fun j ->
        let from_preds =
          List.fold_left
            (fun acc p -> Float.max acc best.(p))
            0. (Dag.preds dag j)
        in
        best.(j) <- from_preds +. weight j)
      topo;
    Array.fold_left Float.max 0. best
  end

let lp_bound inst ~chains =
  let frac = Lp_relax.solve_chains inst ~chains in
  frac.Lp_relax.t_star /. 16.

let compute ?(with_lp = true) ?(with_exact = false) inst =
  let lp =
    if with_lp && Instance.n inst > 0 then
      match
        lp_bound inst
          ~chains:(Suu_dag.Classify.greedy_path_cover (Instance.dag inst))
      with
      | v -> Some v
      | exception Lp_relax.Lp_failure _ -> None
    else None
  in
  let exact =
    if with_exact && Instance.n inst > 0 then
      match Malewicz.optimal_value inst with
      | v -> Some v
      | exception (Malewicz.Too_expensive _ | Suu_sim.Exact.Too_large _) ->
          None
    else None
  in
  {
    rate = rate_bound inst;
    capacity = capacity_bound inst;
    critical_path = critical_path_bound inst;
    lp;
    exact;
  }

let best b =
  let base = Float.max b.rate (Float.max b.capacity b.critical_path) in
  let base = match b.lp with Some v -> Float.max base v | None -> base in
  match b.exact with Some v -> Float.max base v | None -> base

let pp fmt b =
  Format.fprintf fmt
    "@[rate=%.3f capacity=%.3f critical-path=%.3f lp=%s exact=%s best=%.3f@]"
    b.rate b.capacity b.critical_path
    (match b.lp with Some v -> Printf.sprintf "%.3f" v | None -> "-")
    (match b.exact with Some v -> Printf.sprintf "%.3f" v | None -> "-")
    (best b)
