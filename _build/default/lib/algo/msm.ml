module Instance = Suu_core.Instance
module Assignment = Suu_core.Assignment

(* Pairs sorted by non-increasing p_ij, ties by machine then job index so
   the algorithm is deterministic. *)
let sorted_pairs inst ~jobs =
  let pairs = ref [] in
  for i = 0 to Instance.m inst - 1 do
    for j = 0 to Instance.n inst - 1 do
      if jobs.(j) then begin
        let p = Instance.prob inst ~machine:i ~job:j in
        if p > 0. then pairs := (p, i, j) :: !pairs
      end
    done
  done;
  List.sort
    (fun (p1, i1, j1) (p2, i2, j2) ->
      match Float.compare p2 p1 with
      | 0 -> compare (i1, j1) (i2, j2)
      | c -> c)
    !pairs

let assign inst ~jobs =
  if Array.length jobs <> Instance.n inst then
    invalid_arg "Msm.assign: jobs length mismatch";
  let m = Instance.m inst in
  let a = Assignment.idle m in
  let mass = Array.make (Instance.n inst) 0. in
  List.iter
    (fun (p, i, j) ->
      if a.(i) = Assignment.idle_job && mass.(j) +. p <= 1. +. 1e-12 then begin
        a.(i) <- j;
        mass.(j) <- mass.(j) +. p
      end)
    (sorted_pairs inst ~jobs);
  a

let total_mass inst a =
  let mass = Assignment.mass_added inst a in
  Array.fold_left (fun acc mj -> acc +. Float.min mj 1.) 0. mass

let optimal_mass_brute_force inst ~jobs =
  let m = Instance.m inst and n = Instance.n inst in
  let targets =
    Array.of_list
      (List.filter (fun j -> jobs.(j)) (List.init n (fun j -> j)))
  in
  let k = Array.length targets in
  let space = Float.of_int (k + 1) ** Float.of_int m in
  if space > 1e7 then
    invalid_arg "Msm.optimal_mass_brute_force: search space too large";
  let a = Assignment.idle m in
  let best = ref 0. in
  let rec search i =
    if i = m then best := Float.max !best (total_mass inst a)
    else begin
      a.(i) <- Assignment.idle_job;
      search (i + 1);
      Array.iter
        (fun j ->
          a.(i) <- j;
          search (i + 1))
        targets;
      a.(i) <- Assignment.idle_job
    end
  in
  search 0;
  !best
