(** Exact optimal regimens by dynamic programming (Malewicz 2005, cited as
    [21] in the paper).

    Malewicz showed that when both the number of machines and the width of
    the precedence DAG are constant, the optimal regimen can be computed in
    polynomial time by dynamic programming over unfinished-job sets: the
    chain only ever moves to strict subsets, so

    [V(S) = min_f (1 + Σ_{∅≠F} P_f(F) · V(S∖F)) / (1 − P_f(∅))]

    can be evaluated bottom-up, where [f] ranges over assignments of
    machines to eligible jobs of [S]. We enumerate [f] over capable
    machines only (a machine with [p_ij = 0] for all eligible [j] idles),
    and machines with identical probability rows are treated as
    interchangeable: per class of [c] identical machines with [k]
    candidate jobs, only the [(k+c-1 choose c)] multisets are enumerated
    instead of [k^c] tuples — transition distributions depend only on the
    multiset of machines per job, so no optimum is lost.

    This is the exact-optimum baseline of the experiments (EXP-C, EXP-J):
    the denominator of every small-instance approximation ratio. Cost is
    exponential in general — use the gates below. *)

exception Too_expensive of string
(** Raised when the state or per-state assignment budget would be
    exceeded. *)

type result = {
  value : float;  (** the optimal expected makespan TOPT *)
  policy : Suu_core.Policy.t;  (** an optimal regimen *)
  states : int;  (** memoised states *)
}

val optimal :
  ?max_states:int ->
  ?max_assignments_per_state:int ->
  Suu_core.Instance.t ->
  result
(** Compute an optimal regimen. Defaults: at most [200_000] states and
    [20_000] assignments per state.
    @raise Too_expensive when a gate trips;
    @raise Suu_sim.Exact.Too_large for more jobs than a bitmask holds. *)

val optimal_value :
  ?max_states:int ->
  ?max_assignments_per_state:int ->
  Suu_core.Instance.t ->
  float
(** Just TOPT. *)

val assignments_per_state_estimate : Suu_core.Instance.t -> float
(** Upper estimate of the per-state enumeration cost (product over machine
    classes of the multiset counts) — callers can pre-check
    affordability. *)
