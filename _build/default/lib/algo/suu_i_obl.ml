module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious

type params = {
  mass_target : float;
  rounds_per_guess : int -> int;
  early_exit : bool;
  t0 : int;
}

let log2 x = Float.log x /. Float.log 2.

let paper_params =
  {
    mass_target = 1. /. 96.;
    rounds_per_guess =
      (fun n -> max 1 (Float.to_int (Float.ceil (66. *. log2 (Float.of_int (max 2 n))))));
    early_exit = true;
    t0 = 1;
  }

let tuned_params =
  {
    mass_target = 0.25;
    rounds_per_guess =
      (fun n -> max 1 (Float.to_int (Float.ceil (8. *. log2 (Float.of_int (max 2 n))))));
    early_exit = true;
    t0 = 1;
  }

type result = {
  core : Oblivious.t;
  final_t : int;
  rounds_used : int;
  guesses : int;
}

let build ?(params = tuned_params) inst =
  let n = Instance.n inst and m = Instance.m inst in
  if n = 0 then
    { core = Oblivious.finite ~m [||]; final_t = 0; rounds_used = 0; guesses = 0 }
  else begin
    let max_rounds = params.rounds_per_guess n in
    (* A guess of O(n / p_min) always succeeds (§3.2), so the doubling
       terminates; the cap below is a defensive backstop. *)
    let hard_cap =
      let pmin = Instance.p_min inst in
      Float.to_int (Float.min 1e9 (16. *. Float.of_int n /. pmin)) + 2
    in
    let rec attempt t guesses =
      let remaining = Array.make n true in
      let remaining_count = ref n in
      let pieces = ref [] in
      let rounds = ref 0 in
      let stop = ref false in
      while (not !stop) && !remaining_count > 0 && !rounds < max_rounds do
        incr rounds;
        let alloc = Msm_ext.allocate inst ~jobs:remaining ~t in
        pieces := Msm_ext.to_schedule inst alloc :: !pieces;
        let removed = ref 0 in
        for j = 0 to n - 1 do
          if remaining.(j) && alloc.Msm_ext.mass.(j) >= params.mass_target -. 1e-12
          then begin
            remaining.(j) <- false;
            decr remaining_count;
            incr removed
          end
        done;
        if params.early_exit && !removed = 0 then stop := true
      done;
      if !remaining_count > 0 then
        if t >= hard_cap then
          invalid_arg "Suu_i_obl.build: guess cap exceeded (unreachable jobs?)"
        else attempt (2 * t) (guesses + 1)
      else begin
        let core =
          List.fold_left
            (fun acc piece -> Oblivious.append piece acc)
            (Oblivious.finite ~m [||])
            !pieces
        in
        { core; final_t = t; rounds_used = !rounds; guesses = guesses + 1 }
      end
    in
    attempt params.t0 0
  end

let schedule ?params inst =
  let r = build ?params inst in
  let prefix = r.core.Oblivious.prefix in
  if Array.length prefix = 0 then r.core
  else Oblivious.create ~m:(Instance.m inst) ~cycle:prefix [||]

let policy ?params inst =
  Suu_core.Policy.of_oblivious "suu-i-obl" (schedule ?params inst)
