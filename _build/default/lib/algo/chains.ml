let build ?params inst =
  let chains = Suu_dag.Classify.chain_partition (Suu_core.Instance.dag inst) in
  Pipeline.build ?params inst ~blocks:[ chains ]

let schedule ?params inst = (build ?params inst).Pipeline.schedule

let policy ?params inst =
  Suu_core.Policy.of_oblivious "suu-c" (schedule ?params inst)
