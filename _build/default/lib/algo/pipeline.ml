module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious
module Pseudo = Suu_core.Pseudo
module Dag = Suu_dag.Dag

type params = {
  constants : Rounding.constants;
  delay_tries : int;
  derandomize : bool;
  sigma : [ `Auto | `Fixed of int ];
  seed : int;
}

let default_params =
  {
    constants = `Tuned;
    delay_tries = 8;
    derandomize = false;
    sigma = `Auto;
    seed = 0x5EED;
  }

let paper_params =
  {
    constants = `Paper;
    delay_tries = 1;
    derandomize = true;
    sigma = `Auto;
    seed = 0x5EED;
  }

type diagnostics = {
  lp_t_star : float list;
  scale : int;
  flow_jobs : int;
  congestion : int;
  pseudo_length : int;
  core_length : int;
  sigma : int;
  blocks : int;
}

type build = {
  schedule : Oblivious.t;
  accumass : Oblivious.t;
  diagnostics : diagnostics;
}

let auto_sigma (params : params) ~n =
  match params.sigma with
  | `Fixed k ->
      if k < 1 then invalid_arg "Pipeline: sigma must be >= 1";
      k
  | `Auto -> (
      match params.constants with
      | `Tuned ->
          (* EXP-G.2: with the fallback tail absorbing rare window failures,
             σ ≈ ln n minimises the measured expected makespan; the w.h.p.
             guarantee of the paper needs the larger `Paper value. *)
          max 2 (Float.to_int (Float.ceil (Float.log (Float.of_int (n + 1)))))
      | `Paper ->
          max 1
            (Float.to_int
               (Float.ceil (16. *. (Float.log (Float.of_int (max 2 n)) /. Float.log 2.)))))

let check_blocks inst blocks =
  let n = Instance.n inst in
  let dag = Instance.dag inst in
  let block_of = Array.make n (-1) in
  List.iteri
    (fun b chains ->
      List.iter
        (List.iter (fun j ->
             if j < 0 || j >= n then invalid_arg "Pipeline: job out of range";
             if block_of.(j) >= 0 then invalid_arg "Pipeline: job in two blocks";
             block_of.(j) <- b))
        chains)
    blocks;
  if Array.exists (fun b -> b < 0) block_of then
    invalid_arg "Pipeline: blocks do not cover all jobs";
  (* Chains must follow precedence; cross-block edges must point forward. *)
  List.iter
    (fun chains ->
      List.iter
        (fun chain ->
          let rec check = function
            | u :: (v :: _ as rest) ->
                if not (Dag.has_edge dag u v) then
                  invalid_arg "Pipeline: chain step is not a dag edge";
                check rest
            | _ -> ()
          in
          check chain)
        chains)
    blocks;
  List.iter
    (fun (u, v) ->
      if block_of.(u) > block_of.(v) then
        invalid_arg "Pipeline: precedence edge crosses blocks backwards")
    (Dag.edges dag)

let build ?(params = default_params) inst ~blocks =
  check_blocks inst blocks;
  let n = Instance.n inst and m = Instance.m inst in
  let rng = Suu_prob.Rng.create params.seed in
  let process_block chains =
    let frac = Lp_relax.solve_chains inst ~chains in
    let integral = Rounding.round ~constants:params.constants inst frac in
    let pseudos = Rounding.chain_pseudos inst integral in
    let overlay, choice =
      if params.derandomize then Delay.derandomized pseudos
      else begin
        let delay_rng = Suu_prob.Rng.split rng in
        let ranges = Delay.auto_ranges pseudos in
        Delay.choose delay_rng ~tries:params.delay_tries ~ranges pseudos
      end
    in
    (overlay, frac.Lp_relax.t_star, integral, choice)
  in
  let results = List.map process_block blocks in
  let combined =
    match List.map (fun (p, _, _, _) -> p) results with
    | [] -> Pseudo.create ~m [||]
    | first :: rest -> List.fold_left Pseudo.append first rest
  in
  let accumass = Pseudo.flatten combined in
  let sigma = auto_sigma params ~n in
  let replicated = Oblivious.replicate_steps accumass sigma in
  let schedule = Oblivious.with_fallback inst replicated in
  let diagnostics =
    {
      lp_t_star = List.map (fun (_, t, _, _) -> t) results;
      scale =
        List.fold_left
          (fun acc (_, _, integral, _) -> max acc integral.Rounding.scale)
          1 results;
      flow_jobs =
        List.fold_left
          (fun acc (_, _, integral, _) -> acc + integral.Rounding.flow_jobs)
          0 results;
      congestion =
        List.fold_left
          (fun acc (_, _, _, choice) -> max acc choice.Delay.congestion)
          0 results;
      pseudo_length = Pseudo.length combined;
      core_length = Oblivious.prefix_length accumass;
      sigma;
      blocks = List.length blocks;
    }
  in
  { schedule; accumass; diagnostics }

let lp_lower_bound b =
  List.fold_left Float.max 0. b.diagnostics.lp_t_star /. 16.
