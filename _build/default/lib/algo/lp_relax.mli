(** The linear-programming relaxations (LP1) and (LP2) of AccuMass-C
    (paper §4.1).

    For a job subset partitioned into precedence chains, (LP1) minimises a
    length [t] subject to: every job accumulates fractional mass ≥ 1/2
    (constraint 1), every machine's total fractional load is ≤ [t]
    (constraint 2), the window lengths [d_j] along every chain sum to ≤ [t]
    (constraint 3), [x_ij ≤ d_j] (constraint 4) and [d_j ≥ 1]
    (constraint 5). (LP2) — used for independent jobs in Theorem 4.5 —
    drops constraints 3–5. Lemma 4.2: the optimum [T*] of (LP1) satisfies
    [T* ≤ 16 TOPT], which also makes [T*/16] a valid makespan lower bound
    (see [Bounds]). *)

type fractional = {
  x : float array array;  (** x.(i).(j) ≥ 0; 0 for jobs outside the subset *)
  d : float array;  (** window lengths; 0 for jobs outside the subset *)
  t_star : float;  (** the LP optimum *)
  jobs : int list;  (** the job subset, ascending *)
  chains : int list list;  (** the chain partition used (empty for (LP2)) *)
}

exception Lp_failure of string
(** Raised if the LP solver reports infeasible/unbounded — impossible for
    well-formed instances, so this indicates a numerical problem. *)

val mass_target : float
(** The 1/2 of constraint (1). *)

val solve_chains :
  Suu_core.Instance.t -> chains:int list list -> fractional
(** Solve (LP1). [chains] must be disjoint lists of jobs, each in
    precedence-compatible order; their union is the job subset. *)

val solve_independent : Suu_core.Instance.t -> jobs:int list -> fractional
(** Solve (LP2) over the given jobs ([chains] is left empty). *)

val verify : Suu_core.Instance.t -> fractional -> (unit, string) result
(** Re-check all (LP1)/(LP2) constraints on a fractional solution —
    property-test oracle. *)
