(** Lower bounds on the optimal expected makespan TOPT.

    The experiments report approximation ratios as (measured expected
    makespan) / (best lower bound); each bound here is rigorous, so the
    reported ratios are upper bounds on the true ones.

    - [rate]: a job cannot complete faster than one over its best per-step
      success probability: TOPT ≥ max_j 1/min(1, Σ_i p_ij) (the per-step
      success probability is at most the mass by Proposition 2.1).
    - [capacity]: at most [m] jobs finish per step, so TOPT ≥ n/m; and the
      expected number of completions per step is at most
      [μ = Σ_i max_j p_ij], so by Markov's inequality on the completion
      count, TOPT ≥ n/(4μ) (derivation in the implementation).
    - [critical_path]: jobs on a directed path run sequentially, so TOPT ≥
      max over paths of [Σ_j 1/min(1, Σ_i p_ij)] ≥ the path length.
    - [lp]: Lemma 4.2 — the (LP1) optimum over any family of
      vertex-disjoint directed paths satisfies T* ≤ 16·TOPT, so T*/16 is a
      bound; we use a greedy path cover of the DAG.
    - [exact]: Malewicz's DP when affordable — TOPT itself. *)

type t = {
  rate : float;
  capacity : float;
  critical_path : float;
  lp : float option;
  exact : float option;
}

val compute :
  ?with_lp:bool -> ?with_exact:bool -> Suu_core.Instance.t -> t
(** Compute the bounds. [with_lp] defaults to [true]; [with_exact] defaults
    to [false] (it is exponential — enable only on small instances; if the
    DP trips its gates the field is silently [None]). *)

val best : t -> float
(** The largest available bound (≥ 1 for non-empty instances). *)

val lp_bound : Suu_core.Instance.t -> chains:int list list -> float
(** T*(LP1)/16 for a caller-supplied family of vertex-disjoint directed
    paths covering all jobs. *)

val pp : Format.formatter -> t -> unit
