(** SUU with in-/out-tree precedence constraints (paper §4.2, Theorem 4.8).

    Decompose the forest of out-trees (or in-trees) into ≤ ⌊log₂ n⌋ + 1
    blocks of vertex-disjoint chains ({!Suu_dag.Chain_decomp}), then run
    the chain pipeline block by block; blocks execute sequentially, which
    respects all cross-block precedence. Expected makespan
    O(log m · log² n) × TOPT. *)

val build : ?params:Pipeline.params -> Suu_core.Instance.t -> Pipeline.build
(** @raise Invalid_argument unless the DAG is a collection of out-trees or
    a collection of in-trees. *)

val schedule :
  ?params:Pipeline.params -> Suu_core.Instance.t -> Suu_core.Oblivious.t

val policy : ?params:Pipeline.params -> Suu_core.Instance.t -> Suu_core.Policy.t

val blocks_of_decomposition : Suu_dag.Chain_decomp.t -> int list list list
(** The block structure the pipeline consumes, shared with {!Forest}. *)
