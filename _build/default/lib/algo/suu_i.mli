(** SUU-I-ALG: adaptive O(log n)-approximation for independent jobs
    (paper §3.1, Fig. 2, Theorem 3.3).

    In every step, run MSM-ALG on the currently unfinished jobs and
    schedule its assignment. Theorem 3.3: the expected makespan is within
    O(log n) of optimal for independent jobs — each step accumulates total
    mass ≥ |S_t| / (96 TOPT), so the unfinished count decays geometrically.

    The same policy is well-defined for instances with precedence
    constraints (MSM-ALG is then run on the currently *eligible* jobs);
    the O(log n) guarantee only applies to the independent case, but the
    generalised policy is a useful adaptive baseline in the experiments. *)

val policy : Suu_core.Instance.t -> Suu_core.Policy.t
(** The adaptive MSM-driven policy for this instance. *)
