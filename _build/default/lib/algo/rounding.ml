module Instance = Suu_core.Instance
module Maxflow = Suu_flow.Maxflow

type constants = [ `Paper | `Tuned ]

type integral = {
  x : int array array;
  window : int array;
  mass : float array;
  jobs : int list;
  chains : int list list;
  scale : int;
  flow_jobs : int;
}

let target = Lp_relax.mass_target

let iceil f = Float.to_int (Float.ceil (f -. 1e-9))

let bucket_of p = Float.to_int (Float.floor (-.(Float.log p /. Float.log 2.)))

(* Shared epilogue: per-job replication to the mass target, then mass and
   window computation. *)
let finalize inst frac x ~scale ~flow_jobs =
  let m = Instance.m inst and n = Instance.n inst in
  let add_mass j =
    let acc = ref 0. in
    for i = 0 to m - 1 do
      acc :=
        !acc +. (Float.of_int x.(i).(j) *. Instance.prob inst ~machine:i ~job:j)
    done;
    !acc
  in
  List.iter
    (fun j ->
      let mu = add_mass j in
      if mu <= 0. then
        failwith
          (Printf.sprintf "Rounding: job %d received no allocation" j);
      if mu < target then begin
        let k = iceil (target /. mu) in
        for i = 0 to m - 1 do
          x.(i).(j) <- x.(i).(j) * k
        done
      end)
    frac.Lp_relax.jobs;
  let mass = Array.make n 0. in
  List.iter (fun j -> mass.(j) <- add_mass j) frac.Lp_relax.jobs;
  let window = Array.make n 0 in
  List.iter
    (fun j ->
      let w = ref 1 in
      for i = 0 to m - 1 do
        if x.(i).(j) > !w then w := x.(i).(j)
      done;
      window.(j) <- !w)
    frac.Lp_relax.jobs;
  {
    x;
    window;
    mass;
    jobs = frac.Lp_relax.jobs;
    chains =
      (if frac.Lp_relax.chains = [] then
         List.map (fun j -> [ j ]) frac.Lp_relax.jobs
       else frac.Lp_relax.chains);
    scale;
    flow_jobs;
  }

(* Heaviest probability bucket of a job's small fractional parts:
   returns [(bucket, parts, d'_j)] where parts are the (i, x_ij) in the
   bucket and d'_j their total fractional allocation. *)
let best_bucket inst ~j ~smalls ~m =
  let cutoff = 1. /. (8. *. Float.of_int m) in
  let weights = Hashtbl.create 8 in
  List.iter
    (fun (i, xij) ->
      let p = Instance.prob inst ~machine:i ~job:j in
      if p >= cutoff then begin
        let b = bucket_of p in
        let w, parts =
          Option.value (Hashtbl.find_opt weights b) ~default:(0., [])
        in
        Hashtbl.replace weights b (w +. (p *. xij), (i, xij) :: parts)
      end)
    smalls;
  Hashtbl.fold
    (fun b (w, parts) best ->
      match best with
      | Some (_, bw, _, _) when bw >= w -> best
      | _ ->
          let d' = List.fold_left (fun acc (_, x) -> acc +. x) 0. parts in
          Some (b, w, parts, d'))
    weights None

(* Route the scaled bucket demands through the Figure-3 network and return
   the integral allocation, or [None] if the flow falls short of the total
   demand (a scale too small for integrality to go through). *)
let try_flow inst frac ~flow_data ~s =
  let m = Instance.m inst in
  let njobs = List.length flow_data in
  if njobs = 0 then Some []
  else begin
    let demands =
      List.map
        (fun (j, parts, d'_j) ->
          let dj = Float.to_int (Float.floor (Float.of_int s *. d'_j +. 1e-9)) in
          (j, parts, max 0 dj))
        flow_data
    in
    if List.exists (fun (_, _, dj) -> dj = 0) demands then None
    else begin
      (* Nodes: 0 = source, 1 = sink, 2.. = jobs then machines. *)
      let source = 0 and sink = 1 in
      let job_node = Hashtbl.create njobs in
      List.iteri (fun k (j, _, _) -> Hashtbl.add job_node j (2 + k)) demands;
      let machine_node i = 2 + njobs + i in
      let g = Maxflow.create (2 + njobs + m) in
      let machine_cap = iceil (Float.of_int s *. frac.Lp_relax.t_star) + 1 in
      for i = 0 to m - 1 do
        ignore
          (Maxflow.add_edge g ~src:(machine_node i) ~dst:sink ~cap:machine_cap
            : Maxflow.edge)
      done;
      let edge_ids = ref [] in
      let total = ref 0 in
      List.iter
        (fun (j, parts, dj) ->
          total := !total + dj;
          let jn = Hashtbl.find job_node j in
          ignore (Maxflow.add_edge g ~src:source ~dst:jn ~cap:dj : Maxflow.edge);
          let win_cap =
            iceil (Float.of_int s *. Float.max frac.Lp_relax.d.(j) 1.)
          in
          List.iter
            (fun (i, _) ->
              let e =
                Maxflow.add_edge g ~src:jn ~dst:(machine_node i) ~cap:win_cap
              in
              edge_ids := (j, i, e) :: !edge_ids)
            parts)
        demands;
      let value = Maxflow.max_flow g ~source ~sink in
      if value < !total then None
      else
        Some
          (List.filter_map
             (fun (j, i, e) ->
               let f = Maxflow.flow g e in
               if f > 0 then Some (j, i, f) else None)
             !edge_ids)
    end
  end

let round ?(constants = `Tuned) inst (frac : Lp_relax.fractional) =
  let m = Instance.m inst and n = Instance.n inst in
  let njobs = List.length frac.jobs in
  let x = Array.make_matrix m n 0 in
  let flow_jobs = ref 0 in
  let scale = ref 1 in
  if Float.of_int njobs <= frac.t_star +. 1e-9 then
    (* Case t* >= n: rounding up everything costs only a factor 2. *)
    List.iter
      (fun j ->
        for i = 0 to m - 1 do
          if frac.x.(i).(j) > 1e-12 then x.(i).(j) <- iceil frac.x.(i).(j)
        done)
      frac.jobs
  else begin
    (* Case t* < n: split each job's fractional parts. *)
    let flow_data = ref [] in
    List.iter
      (fun j ->
        let bigs = ref [] and smalls = ref [] in
        let big_mass = ref 0. and small_mass = ref 0. in
        for i = 0 to m - 1 do
          let xij = frac.x.(i).(j) in
          if xij > 1e-12 then begin
            let p = Instance.prob inst ~machine:i ~job:j in
            if xij >= 1. then begin
              bigs := (i, xij) :: !bigs;
              big_mass := !big_mass +. (p *. xij)
            end
            else begin
              smalls := (i, xij) :: !smalls;
              small_mass := !small_mass +. (p *. xij)
            end
          end
        done;
        if !big_mass >= !small_mass || !big_mass >= target /. 2. then
          (* The large parts carry enough mass: round them up. *)
          List.iter (fun (i, xij) -> x.(i).(j) <- iceil xij) !bigs
        else begin
          match best_bucket inst ~j ~smalls:!smalls ~m with
          | None ->
              (* Theoretically impossible (see Theorem 4.1); fall back to
                 rounding everything up. *)
              List.iter (fun (i, xij) -> x.(i).(j) <- iceil xij) !bigs;
              List.iter (fun (i, xij) -> x.(i).(j) <- iceil xij) !smalls
          | Some (_, _, parts, d'_j) ->
              incr flow_jobs;
              flow_data := (j, parts, d'_j) :: !flow_data
        end)
      frac.jobs;
    (* Scale choice. *)
    let bbits = iceil (Float.log (8. *. Float.of_int m) /. Float.log 2.) in
    let s0 =
      match constants with
      | `Paper -> 64 * max 1 bbits
      | `Tuned ->
          List.fold_left
            (fun acc (_, _, d') -> max acc (iceil (1. /. Float.max d' 1e-9)))
            1 !flow_data
    in
    (* Integrality can require one more doubling in degenerate cases. *)
    let rec attempt s tries =
      scale := s;
      match try_flow inst frac ~flow_data:!flow_data ~s with
      | Some flows -> flows
      | None ->
          if tries > 30 then
            failwith "Rounding.round: flow rounding failed to converge"
          else attempt (2 * s) (tries + 1)
    in
    let flows = attempt s0 0 in
    List.iter (fun (j, i, f) -> x.(i).(j) <- x.(i).(j) + f) flows
  end;
  finalize inst frac x ~scale:!scale ~flow_jobs:!flow_jobs

let randomized rng inst (frac : Lp_relax.fractional) =
  let m = Instance.m inst and n = Instance.n inst in
  let x = Array.make_matrix m n 0 in
  List.iter
    (fun j ->
      for i = 0 to m - 1 do
        let xij = frac.Lp_relax.x.(i).(j) in
        if xij > 1e-12 then begin
          let base = Float.to_int (Float.floor xij) in
          let frac_part = xij -. Float.of_int base in
          x.(i).(j) <-
            (base + if Suu_prob.Rng.bernoulli rng frac_part then 1 else 0)
        end
      done;
      (* Repair: a job whose draws all came up zero gets one step on its
         best machine so the replication epilogue has something to scale. *)
      let any = ref false in
      for i = 0 to m - 1 do
        if x.(i).(j) > 0 && Instance.prob inst ~machine:i ~job:j > 0. then
          any := true
      done;
      if not !any then x.(Instance.best_machine inst j).(j) <- 1)
    frac.jobs;
  finalize inst frac x ~scale:1 ~flow_jobs:0

let chain_pseudo inst integral chain =
  let m = Instance.m inst in
  let length = List.fold_left (fun acc j -> acc + integral.window.(j)) 0 chain in
  let units = ref [] in
  let start = ref 0 in
  List.iter
    (fun j ->
      for i = 0 to m - 1 do
        if integral.x.(i).(j) > 0 then
          units := (i, j, !start, integral.x.(i).(j)) :: !units
      done;
      start := !start + integral.window.(j))
    chain;
  Suu_core.Pseudo.of_windows ~m ~length !units

let chain_pseudos inst integral =
  List.map (chain_pseudo inst integral) integral.chains

let verify inst integral =
  let m = Instance.m inst in
  let bad = ref None in
  List.iter
    (fun j ->
      if integral.mass.(j) < target -. 1e-9 then
        bad :=
          Some
            (Printf.sprintf "job %d integral mass %g < %g" j integral.mass.(j)
               target);
      for i = 0 to m - 1 do
        if integral.x.(i).(j) > integral.window.(j) then
          bad :=
            Some
              (Printf.sprintf "x_%d_%d = %d exceeds window %d" i j
                 integral.x.(i).(j) integral.window.(j))
      done)
    integral.jobs;
  match !bad with Some e -> Error e | None -> Ok ()
