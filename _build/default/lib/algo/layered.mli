(** Oblivious schedules for {e general} DAGs by level decomposition — an
    answer to the paper's §5 open problem, with a depth-dependent (rather
    than polylogarithmic) guarantee.

    Every DAG partitions into levels by longest-path depth; each level is
    an antichain, i.e. an independent job set, and every precedence edge
    points to a strictly later level. Running the chain pipeline with one
    block per level (each job its own singleton chain) therefore respects
    all precedence and inherits the per-block guarantees: each level's
    (LP1) optimum is at most 16·TOPT (Lemma 4.2 applies to any job
    subset), so the schedule length is O(depth · log m) · TOPT before
    replication — useful when the DAG is shallow, exact on independent
    jobs (depth 1), and always correct. *)

val levels : Suu_dag.Dag.t -> int list list
(** The level decomposition: [levels g] lists the jobs at each
    longest-path depth, shallowest first. Every edge goes from an earlier
    list to a strictly later one. *)

val build : ?params:Pipeline.params -> Suu_core.Instance.t -> Pipeline.build
(** Run the pipeline over the level blocks. Works for every DAG. *)

val schedule :
  ?params:Pipeline.params -> Suu_core.Instance.t -> Suu_core.Oblivious.t

val policy : ?params:Pipeline.params -> Suu_core.Instance.t -> Suu_core.Policy.t
