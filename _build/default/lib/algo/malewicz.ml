module Instance = Suu_core.Instance
module Assignment = Suu_core.Assignment
module Exact = Suu_sim.Exact

exception Too_expensive of string

type result = {
  value : float;
  policy : Suu_core.Policy.t;
  states : int;
}


(* Machines with identical probability rows are interchangeable: the
   transition distribution depends only on the multiset of machines per
   job. Grouping them turns the per-class enumeration from k^c tuples
   into (k+c-1 choose c) multisets — a large saving on homogeneous
   instances. *)
let machine_classes inst =
  let m = Instance.m inst and n = Instance.n inst in
  let tbl : (float list, int list) Hashtbl.t = Hashtbl.create 8 in
  for i = m - 1 downto 0 do
    let row =
      List.init n (fun j -> Instance.prob inst ~machine:i ~job:j)
    in
    let members = Option.value (Hashtbl.find_opt tbl row) ~default:[] in
    Hashtbl.replace tbl row (i :: members)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) tbl []
  |> List.sort compare

let assignments_per_state_estimate inst =
  let n = Instance.n inst in
  (* Multisets of size c over k candidates: C(k + c - 1, c) per class. *)
  let choose k c =
    let acc = ref 1. in
    for i = 1 to c do
      acc := !acc *. Float.of_int (k + i - 1) /. Float.of_int i
    done;
    !acc
  in
  List.fold_left
    (fun acc members ->
      let representative = List.hd members in
      let capable = ref 0 in
      for j = 0 to n - 1 do
        if Instance.prob inst ~machine:representative ~job:j > 0. then
          incr capable
      done;
      acc *. choose (max 1 !capable) (List.length members))
    1. (machine_classes inst)

(* Enumerate assignments of machines to eligible capable jobs (or idle),
   calling [k] on each; count is bounded by the caller's budget. Identical
   machines are enumerated as multisets. *)
let iter_assignments inst ~eligible ~budget k =
  let m = Instance.m inst in
  let classes =
    List.map
      (fun members ->
        let representative = List.hd members in
        let candidates =
          List.filter
            (fun j -> Instance.prob inst ~machine:representative ~job:j > 0.)
            eligible
        in
        (Array.of_list members, Array.of_list candidates))
      (machine_classes inst)
  in
  let a = Assignment.idle m in
  let count = ref 0 in
  let emit () =
    incr count;
    if !count > budget then
      raise
        (Too_expensive
           (Printf.sprintf "more than %d assignments in one state" budget));
    k a
  in
  (* For one class: non-decreasing candidate indices over its machines (a
     multiset); a machine with no capable eligible job idles. *)
  let rec fill_class members candidates slot min_cand next =
    if slot = Array.length members then next ()
    else if Array.length candidates = 0 then begin
      a.(members.(slot)) <- Assignment.idle_job;
      fill_class members candidates (slot + 1) min_cand next
    end
    else
      for c = min_cand to Array.length candidates - 1 do
        a.(members.(slot)) <- candidates.(c);
        fill_class members candidates (slot + 1) c next
      done
  in
  let rec go = function
    | [] -> emit ()
    | (members, candidates) :: rest ->
        fill_class members candidates 0 0 (fun () -> go rest)
  in
  go classes

let optimal ?(max_states = 200_000) ?(max_assignments_per_state = 20_000) inst =
  let n = Instance.n inst in
  let full = Exact.full_mask inst in
  let values : (int, float) Hashtbl.t = Hashtbl.create 1024 in
  let choices : (int, Assignment.t) Hashtbl.t = Hashtbl.create 1024 in
  let rec value mask =
    if mask = 0 then 0.
    else
      match Hashtbl.find_opt values mask with
      | Some v -> v
      | None ->
          if Hashtbl.length values >= max_states then
            raise
              (Too_expensive
                 (Printf.sprintf "more than %d states" max_states));
          let elig_mask = Exact.eligible_mask inst mask in
          let eligible =
            List.filter
              (fun j -> elig_mask land (1 lsl j) <> 0)
              (List.init n (fun j -> j))
          in
          let best = ref infinity and best_a = ref None in
          iter_assignments inst ~eligible ~budget:max_assignments_per_state
            (fun a ->
              let dist = Exact.step_distribution inst ~mask a in
              let stay = ref 0. and rest = ref 0. in
              List.iter
                (fun (mask', p) ->
                  if mask' = mask then stay := !stay +. p
                  else rest := !rest +. (p *. value mask'))
                dist;
              if !stay < 1. -. 1e-12 then begin
                let v = (1. +. !rest) /. (1. -. !stay) in
                if v < !best then begin
                  best := v;
                  best_a := Some (Array.copy a)
                end
              end);
          (match !best_a with
          | None ->
              raise
                (Too_expensive
                   "no progressing assignment exists in a reachable state")
          | Some a -> Hashtbl.replace choices mask a);
          Hashtbl.replace values mask !best;
          !best
  in
  let v = value full in
  let policy =
    Suu_core.Policy.of_regimen "malewicz-optimal" (fun unfinished ->
        let mask = ref 0 in
        Array.iteri (fun j u -> if u then mask := !mask lor (1 lsl j)) unfinished;
        if !mask = 0 then Assignment.idle (Instance.m inst)
        else begin
          ignore (value !mask : float);
          Hashtbl.find choices !mask
        end)
  in
  { value = v; policy; states = Hashtbl.length values }

let optimal_value ?max_states ?max_assignments_per_state inst =
  (optimal ?max_states ?max_assignments_per_state inst).value
