lib/workloads/workload.ml: Array Float Printf Suu_core Suu_dag Suu_prob
