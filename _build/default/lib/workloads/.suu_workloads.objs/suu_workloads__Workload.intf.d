lib/workloads/workload.mli: Suu_core Suu_dag Suu_prob
