(** Maximum flow with integral capacities (Dinic's algorithm).

    Used by the LP-rounding step of Theorem 4.1: the fractional solution of
    (LP1) is converted to an integral machine→job allocation by pushing an
    integral maximum flow through the network of Figure 3 of the paper.
    Integrality of the resulting allocation is exactly the Ford–Fulkerson
    integrality theorem the paper invokes.

    Dinic runs in O(V²E) in general and much faster on the shallow unit-ish
    networks we build; all capacities and flows are [int]s. *)

type t
(** A mutable flow network. *)

type edge
(** Identifier of a directed edge, as returned by [add_edge]. *)

val create : int -> t
(** [create n] is an empty network on vertices [0..n-1]. *)

val vertex_count : t -> int

val add_edge : t -> src:int -> dst:int -> cap:int -> edge
(** Adds a directed edge with the given non-negative capacity and returns its
    identifier. Parallel edges and self-loops are permitted (a self-loop
    never carries flow). *)

val max_flow : t -> source:int -> sink:int -> int
(** [max_flow t ~source ~sink] computes a maximum [source]→[sink] flow and
    returns its value. The per-edge flows are readable afterwards with
    [flow]. Calling it again recomputes from the current residual state, so
    to re-run from scratch build a fresh network. *)

val flow : t -> edge -> int
(** Flow currently carried by an edge (after [max_flow]). *)

val capacity : t -> edge -> int
(** The capacity the edge was created with. *)

val min_cut_side : t -> source:int -> bool array
(** After [max_flow], the set of vertices reachable from [source] in the
    residual graph — the source side of a minimum cut. *)
