(** Maximum bipartite matching (Hopcroft–Karp).

    Used to compute the width of a precedence DAG: by Dilworth's theorem the
    maximum antichain (the paper's "width", which gates Malewicz's exact
    dynamic program) equals [n] minus a maximum matching in the bipartite
    reachability graph. Runs in O(E √V). *)

val max_matching : left:int -> right:int -> adj:int list array -> int array
(** [max_matching ~left ~right ~adj] computes a maximum matching of the
    bipartite graph with [left] left vertices, [right] right vertices and
    [adj.(u)] listing the right neighbours of left vertex [u]. Returns
    [mate] with [mate.(u)] the right vertex matched to left vertex [u], or
    [-1] if [u] is unmatched. *)

val size : int array -> int
(** Number of matched left vertices in a [max_matching] result. *)
