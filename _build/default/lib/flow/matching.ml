(* Hopcroft–Karp: repeatedly find a maximal set of vertex-disjoint shortest
   augmenting paths via BFS layering + DFS, until no augmenting path
   remains. *)

let infinity_dist = max_int

let max_matching ~left ~right ~adj =
  if Array.length adj <> left then
    invalid_arg "Matching.max_matching: adj length mismatch";
  Array.iter
    (List.iter (fun v ->
         if v < 0 || v >= right then
           invalid_arg "Matching.max_matching: right vertex out of range"))
    adj;
  let mate_l = Array.make left (-1) in
  let mate_r = Array.make right (-1) in
  let dist = Array.make left infinity_dist in
  let queue = Queue.create () in
  (* BFS from all free left vertices; returns true if a free right vertex is
     reachable (i.e. an augmenting path exists). *)
  let bfs () =
    Queue.clear queue;
    for u = 0 to left - 1 do
      if mate_l.(u) < 0 then begin
        dist.(u) <- 0;
        Queue.add u queue
      end
      else dist.(u) <- infinity_dist
    done;
    let found = ref false in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          match mate_r.(v) with
          | -1 -> found := true
          | u' ->
              if dist.(u') = infinity_dist then begin
                dist.(u') <- dist.(u) + 1;
                Queue.add u' queue
              end)
        adj.(u)
    done;
    !found
  in
  let rec dfs u =
    let rec try_edges = function
      | [] ->
          dist.(u) <- infinity_dist;
          false
      | v :: rest -> (
          match mate_r.(v) with
          | -1 ->
              mate_l.(u) <- v;
              mate_r.(v) <- u;
              true
          | u' ->
              if dist.(u') = dist.(u) + 1 && dfs u' then begin
                mate_l.(u) <- v;
                mate_r.(v) <- u;
                true
              end
              else try_edges rest)
    in
    try_edges adj.(u)
  in
  while bfs () do
    for u = 0 to left - 1 do
      if mate_l.(u) < 0 then ignore (dfs u : bool)
    done
  done;
  mate_l

let size mate =
  Array.fold_left (fun acc v -> if v >= 0 then acc + 1 else acc) 0 mate
