(* Dinic's algorithm over a residual-edge representation: edge 2k is a
   forward edge and edge 2k+1 its residual twin, so the twin of edge [e] is
   [e lxor 1]. *)

type t = {
  n : int;
  mutable edge_count : int;
  mutable dst : int array; (* head vertex of each residual edge *)
  mutable cap : int array; (* remaining capacity of each residual edge *)
  mutable orig_cap : int array; (* capacity at creation (0 for twins) *)
  adj : int list array; (* vertex -> residual edge ids, in reverse order *)
  mutable adj_arr : int array array option; (* frozen adjacency for solving *)
}

type edge = int

let create n =
  {
    n;
    edge_count = 0;
    dst = Array.make 16 0;
    cap = Array.make 16 0;
    orig_cap = Array.make 16 0;
    adj = Array.make n [];
    adj_arr = None;
  }

let vertex_count t = t.n

let ensure_capacity t needed =
  let len = Array.length t.dst in
  if needed > len then begin
    let len' = max needed (2 * len) in
    let grow a = Array.append a (Array.make (len' - len) 0) in
    t.dst <- grow t.dst;
    t.cap <- grow t.cap;
    t.orig_cap <- grow t.orig_cap
  end

let add_edge t ~src ~dst ~cap =
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_edge: vertex out of range";
  let e = t.edge_count in
  ensure_capacity t (e + 2);
  t.dst.(e) <- dst;
  t.cap.(e) <- cap;
  t.orig_cap.(e) <- cap;
  t.dst.(e + 1) <- src;
  t.cap.(e + 1) <- 0;
  t.orig_cap.(e + 1) <- 0;
  t.adj.(src) <- e :: t.adj.(src);
  t.adj.(dst) <- (e + 1) :: t.adj.(dst);
  t.edge_count <- e + 2;
  t.adj_arr <- None;
  e

let adjacency t =
  match t.adj_arr with
  | Some a -> a
  | None ->
      let a = Array.map Array.of_list t.adj in
      t.adj_arr <- Some a;
      a

(* BFS from the source over residual edges; fills [level] and reports
   whether the sink is reachable. *)
let bfs t adj level ~source ~sink =
  Array.fill level 0 t.n (-1);
  level.(source) <- 0;
  let queue = Queue.create () in
  Queue.add source queue;
  let reached = ref false in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun e ->
        let v = t.dst.(e) in
        if t.cap.(e) > 0 && level.(v) < 0 then begin
          level.(v) <- level.(u) + 1;
          if v = sink then reached := true;
          Queue.add v queue
        end)
      adj.(u)
  done;
  !reached

(* DFS augmentation along level-increasing residual edges, with the usual
   current-arc optimisation via [iter]. *)
let rec dfs t adj level iter u sink pushed =
  if u = sink then pushed
  else begin
    let result = ref 0 in
    while !result = 0 && iter.(u) < Array.length adj.(u) do
      let e = adj.(u).(iter.(u)) in
      let v = t.dst.(e) in
      if t.cap.(e) > 0 && level.(v) = level.(u) + 1 then begin
        let d = dfs t adj level iter v sink (min pushed t.cap.(e)) in
        if d > 0 then begin
          t.cap.(e) <- t.cap.(e) - d;
          t.cap.(e lxor 1) <- t.cap.(e lxor 1) + d;
          result := d
        end
        else iter.(u) <- iter.(u) + 1
      end
      else iter.(u) <- iter.(u) + 1
    done;
    !result
  end

let max_flow t ~source ~sink =
  if source < 0 || source >= t.n || sink < 0 || sink >= t.n then
    invalid_arg "Maxflow.max_flow: vertex out of range";
  if source = sink then invalid_arg "Maxflow.max_flow: source equals sink";
  let adj = adjacency t in
  let level = Array.make t.n (-1) in
  let total = ref 0 in
  while bfs t adj level ~source ~sink do
    let iter = Array.make t.n 0 in
    let continue = ref true in
    while !continue do
      let d = dfs t adj level iter source sink max_int in
      if d = 0 then continue := false else total := !total + d
    done
  done;
  !total

let flow t e =
  if e < 0 || e >= t.edge_count || e land 1 = 1 then
    invalid_arg "Maxflow.flow: not a forward edge";
  t.orig_cap.(e) - t.cap.(e)

let capacity t e =
  if e < 0 || e >= t.edge_count || e land 1 = 1 then
    invalid_arg "Maxflow.capacity: not a forward edge";
  t.orig_cap.(e)

let min_cut_side t ~source =
  let adj = adjacency t in
  let seen = Array.make t.n false in
  let queue = Queue.create () in
  seen.(source) <- true;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun e ->
        let v = t.dst.(e) in
        if t.cap.(e) > 0 && not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
      adj.(u)
  done;
  seen
