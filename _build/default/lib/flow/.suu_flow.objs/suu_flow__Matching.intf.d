lib/flow/matching.mli:
