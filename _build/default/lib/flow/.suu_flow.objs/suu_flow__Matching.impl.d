lib/flow/matching.ml: Array List Queue
