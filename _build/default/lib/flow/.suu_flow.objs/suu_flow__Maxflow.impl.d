lib/flow/maxflow.ml: Array Queue
