lib/flow/maxflow.mli:
