type op = { machine : int; duration : int }

type t = {
  machines : int;
  jobs : op list array;
  units : int array array; (* units.(j).(u) = machine of unit u of job j *)
}

let create ~machines jobs =
  if machines < 1 then invalid_arg "Jobshop.create: need at least one machine";
  Array.iter
    (List.iter (fun o ->
         if o.machine < 0 || o.machine >= machines then
           invalid_arg "Jobshop.create: machine out of range";
         if o.duration < 1 then
           invalid_arg "Jobshop.create: duration must be positive"))
    jobs;
  let units =
    Array.map
      (fun ops ->
        Array.of_list
          (List.concat_map (fun o -> List.init o.duration (fun _ -> o.machine)) ops))
      jobs
  in
  { machines; jobs = Array.map (fun l -> l) jobs; units }

let machines t = t.machines
let job_count t = Array.length t.jobs
let operations t j = t.jobs.(j)

let congestion t =
  let load = Array.make t.machines 0 in
  Array.iter (Array.iter (fun i -> load.(i) <- load.(i) + 1)) t.units;
  Array.fold_left max 0 load

let dilation t =
  Array.fold_left (fun acc u -> max acc (Array.length u)) 0 t.units

let lower_bound t = max (congestion t) (dilation t)

type schedule = { start : int array array }

let makespan s =
  Array.fold_left
    (fun acc starts -> Array.fold_left (fun a v -> max a (v + 1)) acc starts)
    0 s.start

let validate t s =
  let err fmt = Format.kasprintf (fun msg -> Error msg) fmt in
  if Array.length s.start <> job_count t then err "job count mismatch"
  else begin
    let bad = ref None in
    let note fmt = Format.kasprintf (fun msg -> bad := Some msg) fmt in
    (* Order within each job. *)
    Array.iteri
      (fun j starts ->
        if Array.length starts <> Array.length t.units.(j) then
          note "job %d unit count mismatch" j
        else
          Array.iteri
            (fun u st ->
              if st < 0 then note "job %d unit %d negative start" j u;
              if u > 0 && st <= starts.(u - 1) then
                note "job %d units %d,%d out of order" j (u - 1) u)
            starts)
      s.start;
    (* Machine conflicts. *)
    let busy = Hashtbl.create 256 in
    Array.iteri
      (fun j starts ->
        Array.iteri
          (fun u st ->
            let key = (t.units.(j).(u), st) in
            (match Hashtbl.find_opt busy key with
            | Some (j', u') ->
                note "machine %d double-booked at %d by %d.%d and %d.%d"
                  (fst key) st j' u' j u
            | None -> ());
            Hashtbl.replace busy key (j, u))
          starts)
      s.start;
    match !bad with Some msg -> Error msg | None -> Ok ()
  end

let greedy t =
  let nj = job_count t in
  let start = Array.map (fun u -> Array.make (Array.length u) 0) t.units in
  let next = Array.make nj 0 in
  let remaining = Array.map Array.length t.units in
  let total = Array.fold_left ( + ) 0 remaining in
  let done_units = ref 0 in
  let step = ref 0 in
  while !done_units < total do
    (* Per machine, the ready job with the most remaining work. *)
    let pick = Array.make t.machines (-1) in
    for j = 0 to nj - 1 do
      if remaining.(j) > 0 then begin
        let i = t.units.(j).(next.(j)) in
        if pick.(i) < 0 || remaining.(j) > remaining.(pick.(i)) then pick.(i) <- j
      end
    done;
    Array.iter
      (fun j ->
        if j >= 0 then begin
          start.(j).(next.(j)) <- !step;
          next.(j) <- next.(j) + 1;
          remaining.(j) <- remaining.(j) - 1;
          incr done_units
        end)
      pick;
    incr step
  done;
  { start }

let with_delays t ~delays =
  let nj = job_count t in
  if Array.length delays <> nj then
    invalid_arg "Jobshop.with_delays: delays length mismatch";
  Array.iter
    (fun d -> if d < 0 then invalid_arg "Jobshop.with_delays: negative delay")
    delays;
  let horizon =
    Array.fold_left max 0
      (Array.mapi (fun j u -> delays.(j) + Array.length u) t.units)
  in
  (* Pretend-time collision counts per (step, machine) and per-unit slot
     index within its (step, machine) queue. *)
  let count = Array.make_matrix (max 1 horizon) t.machines 0 in
  let slot = Array.map (fun u -> Array.make (Array.length u) 0) t.units in
  for j = 0 to nj - 1 do
    Array.iteri
      (fun u i ->
        let pt = delays.(j) + u in
        slot.(j).(u) <- count.(pt).(i);
        count.(pt).(i) <- count.(pt).(i) + 1)
      t.units.(j)
  done;
  (* Expansion of each pretend step and real base offsets. *)
  let base = Array.make (max 1 horizon) 0 in
  let acc = ref 0 in
  for pt = 0 to horizon - 1 do
    base.(pt) <- !acc;
    let worst = Array.fold_left max 0 count.(pt) in
    acc := !acc + max 1 worst
  done;
  let start =
    Array.mapi
      (fun j u ->
        Array.mapi (fun k _ -> base.(delays.(j) + k) + slot.(j).(k)) u)
      t.units
  in
  { start }

let random_delay rng ?(tries = 8) t =
  let nj = job_count t in
  let c = congestion t in
  let evaluate delays = (with_delays t ~delays, delays) in
  let best = ref (evaluate (Array.make nj 0)) in
  for _ = 1 to tries do
    let delays = Array.init nj (fun _ -> Suu_prob.Rng.int rng (c + 1)) in
    let candidate = evaluate delays in
    if makespan (fst candidate) < makespan (fst !best) then best := candidate
  done;
  !best

let derandomized_delay t =
  let nj = job_count t in
  let c = congestion t in
  let horizon =
    Array.fold_left max 1 (Array.map Array.length t.units) + c
  in
  let load = Array.make_matrix horizon t.machines 0 in
  let order =
    List.init nj (fun j -> j)
    |> List.sort (fun a b ->
           compare
             (Array.length t.units.(b), a)
             (Array.length t.units.(a), b))
  in
  let delays = Array.make nj 0 in
  List.iter
    (fun j ->
      let cost d =
        let acc = ref 0 in
        Array.iteri (fun u i -> acc := !acc + load.(d + u).(i)) t.units.(j);
        !acc
      in
      let best_d = ref 0 and best_cost = ref (cost 0) in
      for d = 1 to c do
        let v = cost d in
        if v < !best_cost then begin
          best_cost := v;
          best_d := d
        end
      done;
      delays.(j) <- !best_d;
      Array.iteri
        (fun u i -> load.(!best_d + u).(i) <- load.(!best_d + u).(i) + 1)
        t.units.(j))
    order;
  (with_delays t ~delays, delays)

let pp fmt t =
  Format.fprintf fmt "@[<v>jobshop machines=%d jobs=%d C=%d D=%d" t.machines
    (job_count t) (congestion t) (dilation t);
  Array.iteri
    (fun j ops ->
      Format.fprintf fmt "@,job %d:" j;
      List.iter (fun o -> Format.fprintf fmt " m%d x%d" o.machine o.duration) ops)
    t.jobs;
  Format.fprintf fmt "@]"
