lib/jobshop/jobshop.ml: Array Format Hashtbl List Suu_prob
