lib/jobshop/jobshop.mli: Format Suu_prob
