(** Deterministic job-shop scheduling — the substrate behind the paper's
    §4.1 delay-and-flatten step.

    The paper's random-delay technique is imported from job-shop
    scheduling (Leighton–Maggs–Rao 1994; Shmoys–Stein–Wein 1994, whose
    Lemma 2.1 is invoked verbatim in §4.1): jobs are sequences of
    operations, each bound to a specific machine; delaying each job by a
    uniformly random amount in [\[0, congestion\]] and then expanding
    collided steps yields schedules of length O((C + D)·log/log log)
    where [C] is the congestion (max machine load) and [D] the dilation
    (max job length) — and [max(C, D)] lower-bounds any schedule. This
    module implements that machinery in its original deterministic
    setting, so the shared ideas are tested independently of the
    stochastic SUU layer. Operations have unit granularity internally
    (longer operations are unit-expanded). *)

type op = { machine : int; duration : int }

type t
(** A job-shop instance. *)

val create : machines:int -> op list array -> t
(** [create ~machines jobs] with [jobs.(j)] the operation sequence of job
    [j].
    @raise Invalid_argument on empty machine range, out-of-range machine
    ids, or non-positive durations. *)

val machines : t -> int
val job_count : t -> int
val operations : t -> int -> op list

val congestion : t -> int
(** [C]: the maximum total work assigned to one machine. *)

val dilation : t -> int
(** [D]: the maximum total duration of one job. *)

val lower_bound : t -> int
(** [max(C, D)] — valid for every feasible schedule. *)

type schedule
(** Start times for every unit of every operation. *)

val makespan : schedule -> int

val validate : t -> schedule -> (unit, string) result
(** Feasibility: units of a job run in order, one at a time; no machine
    runs two units in one step; every unit scheduled exactly once. *)

val greedy : t -> schedule
(** List scheduling: step by step, each machine serves the ready job with
    the most remaining work (LRPT; ties to the lowest job id).
    Deterministic; makespan ≤ C + D on any instance where some machine or
    job is always busy — in general a good practical baseline. *)

val with_delays : t -> delays:int array -> schedule
(** The §4.1 construction: job [j] idles for [delays.(j)] steps, then its
    units run back-to-back {e pretending} machines have unbounded
    capacity; each pretend step is then expanded by its worst per-machine
    collision count and units run in sequence within the expansion
    ("flattening"). Always feasible. *)

val random_delay : Suu_prob.Rng.t -> ?tries:int -> t -> schedule * int array
(** Best of [tries] (default 8) draws of delays uniform in
    [\[0, congestion\]] (zero delays always included), by makespan.
    Returns the schedule and the winning delays. *)

val derandomized_delay : t -> schedule * int array
(** Deterministic delays by conditional expectations on the pairwise
    collision estimator, as in [Suu_algo.Delay.derandomized]. *)

val pp : Format.formatter -> t -> unit
