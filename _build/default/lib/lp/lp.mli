(** Linear-program models.

    A tiny modelling layer over {!Simplex}: variables are created one at a
    time (all implicitly non-negative, as in the paper's (LP1)/(LP2)),
    constraints are sparse rows. The SUU relaxations are built with this
    API in [Suu_algo.Lp_relax]. *)

type relation = Le | Ge | Eq

type problem = {
  nvars : int;
  direction : [ `Minimize | `Maximize ];
  objective : (int * float) list;  (** sparse; absent variables have cost 0 *)
  rows : row list;
  names : string array;  (** one per variable, for diagnostics *)
}

and row = { coeffs : (int * float) list; rel : relation; rhs : float }

type builder

val builder : unit -> builder

val add_var : builder -> ?obj:float -> string -> int
(** [add_var b name] declares a fresh non-negative variable and returns its
    index. [obj] is its objective coefficient (default 0). *)

val var_count : builder -> int

val add_le : builder -> (int * float) list -> float -> unit
val add_ge : builder -> (int * float) list -> float -> unit
val add_eq : builder -> (int * float) list -> float -> unit

val build : builder -> [ `Minimize | `Maximize ] -> problem

val eval_row : row -> float array -> float
(** Value of the row's left-hand side at a point. *)

val feasible : ?eps:float -> problem -> float array -> bool
(** Whether a point satisfies every constraint (and non-negativity) within
    tolerance [eps] (default [1e-6]) scaled by row magnitude. *)

val pp : Format.formatter -> problem -> unit
