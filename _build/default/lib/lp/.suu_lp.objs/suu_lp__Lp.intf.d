lib/lp/lp.mli: Format
