lib/lp/lp.ml: Array Float Format List
