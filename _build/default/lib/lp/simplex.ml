type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

exception Iteration_limit

(* Dense tableau in canonical form: [a] is m x ncols with unit columns for
   the basic variables, [b] >= 0 the basic values, [reduced] the reduced
   cost row and [obj] the (phase-specific) objective value at the current
   basis. *)
type tableau = {
  m : int;
  ncols : int;
  a : float array array;
  b : float array;
  basis : int array;
  reduced : float array;
  mutable obj : float;
}

let pivot t ~row ~col =
  let arow = t.a.(row) in
  let p = arow.(col) in
  (* Normalise the pivot row. *)
  let inv = 1. /. p in
  for j = 0 to t.ncols - 1 do
    arow.(j) <- arow.(j) *. inv
  done;
  arow.(col) <- 1.;
  t.b.(row) <- t.b.(row) *. inv;
  (* Eliminate the pivot column from every other row and the cost row. *)
  for r = 0 to t.m - 1 do
    if r <> row then begin
      let factor = t.a.(r).(col) in
      if factor <> 0. then begin
        let target = t.a.(r) in
        for j = 0 to t.ncols - 1 do
          target.(j) <- target.(j) -. (factor *. arow.(j))
        done;
        target.(col) <- 0.;
        t.b.(r) <- t.b.(r) -. (factor *. t.b.(row))
      end
    end
  done;
  let factor = t.reduced.(col) in
  if factor <> 0. then begin
    for j = 0 to t.ncols - 1 do
      t.reduced.(j) <- t.reduced.(j) -. (factor *. arow.(j))
    done;
    t.reduced.(col) <- 0.;
    (* The entering variable takes value [t.b.(row)] (already normalised),
       changing the objective by its reduced cost times that value. *)
    t.obj <- t.obj +. (factor *. t.b.(row))
  end;
  t.basis.(row) <- col

(* Recompute the reduced-cost row for cost vector [c] from scratch. *)
let install_costs t c =
  Array.blit c 0 t.reduced 0 t.ncols;
  t.obj <- 0.;
  for r = 0 to t.m - 1 do
    let cb = c.(t.basis.(r)) in
    if cb <> 0. then begin
      let arow = t.a.(r) in
      for j = 0 to t.ncols - 1 do
        t.reduced.(j) <- t.reduced.(j) -. (cb *. arow.(j))
      done;
      t.obj <- t.obj +. (cb *. t.b.(r))
    end
  done;
  (* Basic columns must read exactly zero. *)
  Array.iter (fun col -> t.reduced.(col) <- 0.) t.basis

(* One simplex phase: optimise over columns allowed by [enterable].
   Returns [`Optimal] or [`Unbounded]. *)
let run_phase t ~eps ~enterable ~iters ~max_iters =
  let stall_threshold = 4 * (t.m + t.ncols) in
  let stall = ref 0 in
  let finished = ref None in
  while !finished = None do
    if !iters > max_iters then raise Iteration_limit;
    incr iters;
    let bland = !stall > stall_threshold in
    (* Entering column. *)
    let col = ref (-1) in
    if bland then begin
      (* Bland: smallest index with negative reduced cost. *)
      let j = ref 0 in
      while !col < 0 && !j < t.ncols do
        if enterable.(!j) && t.reduced.(!j) < -.eps then col := !j;
        incr j
      done
    end
    else begin
      (* Dantzig: most negative reduced cost. *)
      let best = ref (-.eps) in
      for j = 0 to t.ncols - 1 do
        if enterable.(j) && t.reduced.(j) < !best then begin
          best := t.reduced.(j);
          col := j
        end
      done
    end;
    if !col < 0 then finished := Some `Optimal
    else begin
      (* Ratio test; Bland tie-break on smallest basis index. *)
      let row = ref (-1) in
      let best_ratio = ref infinity in
      for r = 0 to t.m - 1 do
        let arc = t.a.(r).(!col) in
        if arc > eps then begin
          let ratio = t.b.(r) /. arc in
          if
            ratio < !best_ratio -. eps
            || (ratio < !best_ratio +. eps
               && (!row < 0 || t.basis.(r) < t.basis.(!row)))
          then begin
            best_ratio := ratio;
            row := r
          end
        end
      done;
      if !row < 0 then finished := Some `Unbounded
      else begin
        let before = t.obj in
        pivot t ~row:!row ~col:!col;
        if Float.abs (t.obj -. before) <= eps then incr stall else stall := 0
      end
    end
  done;
  match !finished with Some r -> r | None -> assert false

let solve ?(max_iters = 200_000) ?(eps = 1e-9) (p : Lp.problem) =
  let m = List.length p.rows in
  let n = p.nvars in
  (* Normalise rows to rhs >= 0 and count slack/artificial columns. *)
  let rows =
    List.map
      (fun (row : Lp.row) ->
        if row.rhs < 0. then
          let coeffs = List.map (fun (v, c) -> (v, -.c)) row.Lp.coeffs in
          let rel =
            match row.rel with Lp.Le -> Lp.Ge | Lp.Ge -> Lp.Le | Lp.Eq -> Lp.Eq
          in
          { Lp.coeffs; rel; rhs = -.row.rhs }
        else row)
      p.rows
  in
  let n_slack =
    List.length (List.filter (fun r -> r.Lp.rel <> Lp.Eq) rows)
  in
  let n_art =
    List.length (List.filter (fun r -> r.Lp.rel <> Lp.Le) rows)
  in
  let ncols = n + n_slack + n_art in
  let a = Array.make_matrix m ncols 0. in
  let b = Array.make m 0. in
  let basis = Array.make m (-1) in
  let art_start = n + n_slack in
  let next_slack = ref n and next_art = ref art_start in
  List.iteri
    (fun r (row : Lp.row) ->
      List.iter (fun (v, c) -> a.(r).(v) <- a.(r).(v) +. c) row.coeffs;
      b.(r) <- row.rhs;
      (match row.rel with
      | Lp.Le ->
          a.(r).(!next_slack) <- 1.;
          basis.(r) <- !next_slack;
          incr next_slack
      | Lp.Ge ->
          a.(r).(!next_slack) <- -1.;
          incr next_slack;
          a.(r).(!next_art) <- 1.;
          basis.(r) <- !next_art;
          incr next_art
      | Lp.Eq ->
          a.(r).(!next_art) <- 1.;
          basis.(r) <- !next_art;
          incr next_art))
    rows;
  let t = { m; ncols; a; b; basis; reduced = Array.make ncols 0.; obj = 0. } in
  let iters = ref 0 in
  let feas_tol = 1e-7 in
  let phase2 () =
    let sign = match p.direction with `Minimize -> 1. | `Maximize -> -1. in
    let c = Array.make ncols 0. in
    List.iter (fun (v, coef) -> c.(v) <- c.(v) +. (sign *. coef)) p.objective;
    install_costs t c;
    let enterable = Array.init ncols (fun j -> j < art_start) in
    match run_phase t ~eps ~enterable ~iters ~max_iters with
    | `Unbounded -> Unbounded
    | `Optimal ->
        let x = Array.make n 0. in
        Array.iteri
          (fun r col -> if col < n then x.(col) <- t.b.(r))
          t.basis;
        Optimal { objective = sign *. t.obj; solution = x }
  in
  if n_art = 0 then phase2 ()
  else begin
    (* Phase 1: minimise the sum of artificials. *)
    let c1 = Array.make ncols 0. in
    for j = art_start to ncols - 1 do
      c1.(j) <- 1.
    done;
    install_costs t c1;
    let enterable = Array.make ncols true in
    (match run_phase t ~eps ~enterable ~iters ~max_iters with
    | `Unbounded ->
        (* Phase-1 objective is bounded below by 0; cannot happen. *)
        assert false
    | `Optimal -> ());
    if t.obj > feas_tol then Infeasible
    else begin
      (* Drive any artificial still basic (at value ~0) out of the basis. *)
      for r = 0 to m - 1 do
        if t.basis.(r) >= art_start then begin
          let col = ref (-1) in
          let j = ref 0 in
          while !col < 0 && !j < art_start do
            if Float.abs t.a.(r).(!j) > eps then col := !j;
            incr j
          done;
          (* If no pivot exists the row is redundant; the artificial stays
             basic at zero and never re-enters the optimisation. *)
          if !col >= 0 then pivot t ~row:r ~col:!col
        end
      done;
      phase2 ()
    end
  end
