type relation = Le | Ge | Eq

type problem = {
  nvars : int;
  direction : [ `Minimize | `Maximize ];
  objective : (int * float) list;
  rows : row list;
  names : string array;
}

and row = { coeffs : (int * float) list; rel : relation; rhs : float }

type builder = {
  mutable count : int;
  mutable objs : (int * float) list;
  mutable brows : row list; (* reverse order *)
  mutable bnames : string list; (* reverse order *)
}

let builder () = { count = 0; objs = []; brows = []; bnames = [] }

let add_var b ?(obj = 0.) name =
  let v = b.count in
  b.count <- v + 1;
  if obj <> 0. then b.objs <- (v, obj) :: b.objs;
  b.bnames <- name :: b.bnames;
  v

let var_count b = b.count

let check_row b coeffs =
  List.iter
    (fun (v, _) ->
      if v < 0 || v >= b.count then invalid_arg "Lp: variable out of range")
    coeffs

let add_row b coeffs rel rhs =
  check_row b coeffs;
  b.brows <- { coeffs; rel; rhs } :: b.brows

let add_le b coeffs rhs = add_row b coeffs Le rhs
let add_ge b coeffs rhs = add_row b coeffs Ge rhs
let add_eq b coeffs rhs = add_row b coeffs Eq rhs

let build b direction =
  {
    nvars = b.count;
    direction;
    objective = List.rev b.objs;
    rows = List.rev b.brows;
    names = Array.of_list (List.rev b.bnames);
  }

let eval_row row x =
  List.fold_left (fun acc (v, c) -> acc +. (c *. x.(v))) 0. row.coeffs

let feasible ?(eps = 1e-6) problem x =
  if Array.length x <> problem.nvars then false
  else
    Array.for_all (fun xi -> xi >= -.eps) x
    && List.for_all
         (fun row ->
           let lhs = eval_row row x in
           let scale =
             List.fold_left
               (fun acc (_, c) -> Float.max acc (Float.abs c))
               (Float.max 1. (Float.abs row.rhs))
               row.coeffs
           in
           let tol = eps *. scale in
           match row.rel with
           | Le -> lhs <= row.rhs +. tol
           | Ge -> lhs >= row.rhs -. tol
           | Eq -> Float.abs (lhs -. row.rhs) <= tol)
         problem.rows

let pp fmt p =
  let dir =
    match p.direction with `Minimize -> "minimize" | `Maximize -> "maximize"
  in
  Format.fprintf fmt "@[<v>%s" dir;
  let pp_terms coeffs =
    List.iter
      (fun (v, c) ->
        let name = if v < Array.length p.names then p.names.(v) else "?" in
        Format.fprintf fmt " %+g*%s" c name)
      coeffs
  in
  Format.fprintf fmt "@,  obj:";
  pp_terms p.objective;
  List.iter
    (fun row ->
      Format.fprintf fmt "@,  ";
      pp_terms row.coeffs;
      let rel =
        match row.rel with Le -> "<=" | Ge -> ">=" | Eq -> "="
      in
      Format.fprintf fmt " %s %g" rel row.rhs)
    p.rows;
  Format.fprintf fmt "@]"
