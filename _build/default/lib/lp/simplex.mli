(** Two-phase primal simplex for dense linear programs.

    The paper's chain algorithm needs an exact optimum of the relaxation
    (LP1) (and (LP2) for independent jobs); no LP tooling is available in
    this environment, so this is a from-scratch solver. All variables are
    non-negative; rows may be ≤, ≥ or =. Phase 1 minimises the sum of
    artificial variables to find a basic feasible solution; phase 2
    optimises the true objective. Entering variables are chosen by
    Dantzig's rule and the solver switches to Bland's rule after a stall is
    detected, which guarantees termination. *)

type outcome =
  | Optimal of { objective : float; solution : float array }
      (** optimum value and a primal solution (length [nvars]) *)
  | Infeasible
  | Unbounded

exception Iteration_limit
(** Raised if the iteration budget is exhausted (pathological inputs). *)

val solve : ?max_iters:int -> ?eps:float -> Lp.problem -> outcome
(** Solve the problem. [max_iters] (default [200_000]) bounds total pivots
    across both phases; [eps] (default [1e-9]) is the pivot tolerance. *)
