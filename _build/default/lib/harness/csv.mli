(** Minimal CSV output for experiment artifacts. *)

val escape : string -> string
(** Quote a field if it contains commas, quotes or newlines. *)

val write : path:string -> header:string list -> string list list -> unit
(** Write a header + rows to [path]. *)

val append_rows : path:string -> string list list -> unit
(** Append rows to an existing file. *)
