(** ASCII Gantt charts of schedule executions.

    Renders one row per machine, one column per step; each cell shows the
    job the machine worked on (or [.] for idle), with the step a job
    completed marked by [*]. Used by the CLI's [simulate] command and the
    examples to make executions legible. *)

val of_trace :
  m:int ->
  ?max_width:int ->
  (int * Suu_core.Assignment.t * int list) list ->
  string
(** [of_trace ~m trace] renders an execution trace (as produced by
    [Suu_sim.Engine.trace]). Jobs are printed in base-36 ([0-9a-z], then
    [#] beyond 35) so charts stay aligned for up to 36 jobs; wider
    instances still render, just with [#]. [max_width] (default 120)
    truncates long executions with an ellipsis. *)

val of_oblivious :
  Suu_core.Oblivious.t -> ?steps:int -> ?max_width:int -> unit -> string
(** Render the plan itself (no execution): the first [steps] steps of the
    schedule (default: prefix plus one cycle pass). *)
