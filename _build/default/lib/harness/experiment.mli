(** Shared experiment plumbing: seeded measurement of policies against
    lower bounds, with consistent reporting. *)

type measurement = {
  policy_name : string;
  mean : float;
  ci95 : float;
  p95 : float;  (** 95th-percentile makespan of the completed trials *)
  incomplete : int;
  trials : int;
  ratio : float;  (** mean / lower bound *)
}

val measure :
  ?max_steps:int ->
  trials:int ->
  seed:int ->
  lower_bound:float ->
  Suu_core.Instance.t ->
  Suu_core.Policy.t ->
  measurement
(** Estimate a policy's expected makespan over [trials] executions with a
    generator seeded from [seed] (and the policy name, so different
    policies see different but reproducible randomness). *)

val row : measurement -> string list
(** [policy; mean ± ci; p95; ratio; incomplete] cells for {!Table}. *)

val row_header : string list

val compare_policies :
  ?max_steps:int ->
  trials:int ->
  seed:int ->
  Suu_core.Instance.t ->
  lower_bound:float ->
  Suu_core.Policy.t list ->
  measurement list
(** Measure several policies on one instance, same seed discipline. *)
