(** Aligned plain-text tables for experiment output. *)

type cell = string

val cell_f : ?digits:int -> float -> cell
(** Format a float ([digits] defaults to 2). *)

val cell_i : int -> cell

val print :
  ?out:out_channel -> title:string -> header:cell list -> cell list list -> unit
(** Print a titled table with column-aligned rows to [out] (default
    [stdout]). Numeric-looking cells are right-aligned. *)

val render : title:string -> header:cell list -> cell list list -> string
(** The same table as a string. *)
