lib/harness/io.mli: Suu_core
