lib/harness/csv.ml: Buffer Fun List String
