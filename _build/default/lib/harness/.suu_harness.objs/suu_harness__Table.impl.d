lib/harness/table.ml: Array Buffer List Printf String
