lib/harness/table.mli:
