lib/harness/experiment.ml: Array Float Hashtbl List Printf Suu_core Suu_prob Suu_sim
