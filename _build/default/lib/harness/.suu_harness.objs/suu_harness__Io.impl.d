lib/harness/io.ml: Array Buffer Fun List Printf String Suu_core Suu_dag
