lib/harness/experiment.mli: Suu_core
