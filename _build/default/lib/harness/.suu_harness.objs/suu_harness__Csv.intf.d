lib/harness/csv.mli:
