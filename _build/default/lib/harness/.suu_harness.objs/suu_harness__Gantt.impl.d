lib/harness/gantt.ml: Array Buffer Char List Printf Suu_core
