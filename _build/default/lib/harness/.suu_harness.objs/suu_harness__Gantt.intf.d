lib/harness/gantt.mli: Suu_core
