type cell = string

let cell_f ?(digits = 2) v = Printf.sprintf "%.*f" digits v
let cell_i = string_of_int

let looks_numeric s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e')
       s

let render ~title ~header rows =
  let all = header :: rows in
  let cols =
    List.fold_left (fun acc row -> max acc (List.length row)) 0 all
  in
  let width = Array.make cols 0 in
  List.iter
    (List.iteri (fun c s -> width.(c) <- max width.(c) (String.length s)))
    all;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ title ^ " ==\n");
  let render_row row =
    List.iteri
      (fun c s ->
        let pad = width.(c) - String.length s in
        if c > 0 then Buffer.add_string buf "  ";
        if looks_numeric s then begin
          Buffer.add_string buf (String.make pad ' ');
          Buffer.add_string buf s
        end
        else begin
          Buffer.add_string buf s;
          Buffer.add_string buf (String.make pad ' ')
        end)
      row;
    Buffer.add_char buf '\n'
  in
  render_row header;
  let total = Array.fold_left ( + ) 0 width + (2 * (cols - 1)) in
  Buffer.add_string buf (String.make (max 1 total) '-');
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf

let print ?(out = stdout) ~title ~header rows =
  output_string out (render ~title ~header rows);
  flush out
