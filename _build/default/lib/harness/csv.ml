let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let output_row oc row =
  output_string oc (String.concat "," (List.map escape row));
  output_char oc '\n'

let write ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_row oc header;
      List.iter (output_row oc) rows)

let append_rows ~path rows =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (output_row oc) rows)
