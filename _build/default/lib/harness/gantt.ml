let job_char j =
  if j < 0 then '.'
  else if j < 10 then Char.chr (Char.code '0' + j)
  else if j < 36 then Char.chr (Char.code 'a' + j - 10)
  else '#'

let render ~m ~columns ~completed_at ~max_width =
  let total = Array.length columns in
  let shown = min total max_width in
  let buf = Buffer.create ((m + 1) * (shown + 16)) in
  for i = 0 to m - 1 do
    Buffer.add_string buf (Printf.sprintf "m%-2d |" i);
    for t = 0 to shown - 1 do
      Buffer.add_char buf (job_char columns.(t).(i))
    done;
    if shown < total then Buffer.add_string buf "...";
    Buffer.add_char buf '\n'
  done;
  (* Completion markers. *)
  Buffer.add_string buf "done|";
  for t = 0 to shown - 1 do
    Buffer.add_char buf (if completed_at.(t) then '*' else ' ')
  done;
  if shown < total then Buffer.add_string buf "...";
  Buffer.add_char buf '\n';
  Buffer.contents buf

let of_trace ~m ?(max_width = 120) trace =
  let total = List.length trace in
  let columns = Array.make total (Array.make m (-1)) in
  let completed_at = Array.make total false in
  List.iteri
    (fun k (_, a, completed) ->
      columns.(k) <- a;
      completed_at.(k) <- completed <> [])
    trace;
  render ~m ~columns ~completed_at ~max_width

let of_oblivious sched ?steps ?(max_width = 120) () =
  let module O = Suu_core.Oblivious in
  let default = O.prefix_length sched + O.cycle_length sched in
  let steps = match steps with Some s -> s | None -> max 1 default in
  let columns = Array.init steps (fun t -> O.step sched t) in
  let completed_at = Array.make steps false in
  render ~m:sched.O.m ~columns ~completed_at ~max_width
