type measurement = {
  policy_name : string;
  mean : float;
  ci95 : float;
  p95 : float;
  incomplete : int;
  trials : int;
  ratio : float;
}

let seed_for ~seed name = seed lxor Hashtbl.hash name

let measure ?max_steps ~trials ~seed ~lower_bound inst policy =
  let rng = Suu_prob.Rng.create (seed_for ~seed policy.Suu_core.Policy.name) in
  let e = Suu_sim.Engine.estimate_makespan ?max_steps ~trials rng inst policy in
  let mean = e.Suu_sim.Engine.stats.Suu_prob.Stats.mean in
  let p95 =
    if Array.length e.Suu_sim.Engine.samples = 0 then Float.nan
    else Suu_prob.Stats.quantile e.Suu_sim.Engine.samples 0.95
  in
  {
    policy_name = policy.Suu_core.Policy.name;
    mean;
    ci95 = e.Suu_sim.Engine.stats.Suu_prob.Stats.ci95;
    p95;
    incomplete = e.Suu_sim.Engine.incomplete;
    trials;
    ratio = (if lower_bound > 0. then mean /. lower_bound else Float.nan);
  }

let row m =
  [
    m.policy_name;
    Printf.sprintf "%.2f ±%.2f" m.mean m.ci95;
    Printf.sprintf "%.0f" m.p95;
    Printf.sprintf "%.2f" m.ratio;
    string_of_int m.incomplete;
  ]

let row_header = [ "policy"; "E[makespan]"; "p95"; "ratio"; "timeouts" ]

let compare_policies ?max_steps ~trials ~seed inst ~lower_bound policies =
  List.map (measure ?max_steps ~trials ~seed ~lower_bound inst) policies
