(** Classification of precedence DAGs into the classes the paper treats.

    The paper gives separate algorithms for independent jobs (§3), disjoint
    chains (§4.1), collections of in-/out-trees, and directed forests
    (§4.2). [classify] returns the most specific class, which [Suu_algo.
    Solver] uses to dispatch. The classes are nested:
    independent ⊂ chains ⊂ (out-trees ∩ in-trees) ⊂ forest ⊂ general. *)

type shape =
  | Independent  (** no precedence edges *)
  | Chains  (** vertex-disjoint directed chains: all degrees ≤ 1 *)
  | Out_trees  (** every vertex has in-degree ≤ 1 (forest of out-trees) *)
  | In_trees  (** every vertex has out-degree ≤ 1 (forest of in-trees) *)
  | Forest  (** underlying undirected graph is acyclic (polytree forest) *)
  | General  (** arbitrary DAG *)

val classify : Dag.t -> shape
(** The most specific shape that applies ([Out_trees] preferred over
    [In_trees] when both apply and the DAG is not a chain collection). *)

val matches : Dag.t -> shape -> bool
(** [matches g s] holds when [g] belongs to class [s] (not necessarily the
    most specific one). *)

val chain_partition : Dag.t -> int list list
(** For a DAG of class [Chains] (or [Independent]), the partition into
    maximal chains, each in precedence order, ordered by head vertex.
    @raise Invalid_argument for other classes. *)

val greedy_path_cover : Dag.t -> int list list
(** A partition of any DAG's vertices into vertex-disjoint directed paths
    (greedy along a topological order). Used to instantiate the chain
    constraints of the (LP1) makespan lower bound on arbitrary DAGs: jobs
    on a directed path are necessarily worked in disjoint time steps. *)

val to_string : shape -> string
val pp : Format.formatter -> shape -> unit
