type shape = Independent | Chains | Out_trees | In_trees | Forest | General

let all_degrees_le g bound ~out ~in_ =
  let ok = ref true in
  for v = 0 to Dag.n g - 1 do
    if out && Dag.out_degree g v > bound then ok := false;
    if in_ && Dag.in_degree g v > bound then ok := false
  done;
  !ok

let matches g = function
  | Independent -> Dag.edge_count g = 0
  | Chains -> all_degrees_le g 1 ~out:true ~in_:true
  | Out_trees -> all_degrees_le g 1 ~out:false ~in_:true
  | In_trees -> all_degrees_le g 1 ~out:true ~in_:false
  | Forest -> Dag.underlying_forest g
  | General -> true

let classify g =
  if matches g Independent then Independent
  else if matches g Chains then Chains
  else if matches g Out_trees then Out_trees
  else if matches g In_trees then In_trees
  else if matches g Forest then Forest
  else General

let chain_partition g =
  if not (matches g Chains) then
    invalid_arg "Classify.chain_partition: dag is not a chain collection";
  let n = Dag.n g in
  let chains = ref [] in
  for v = n - 1 downto 0 do
    if Dag.preds g v = [] then begin
      let rec walk u acc =
        match Dag.succs g u with
        | [] -> List.rev (u :: acc)
        | [ w ] -> walk w (u :: acc)
        | _ :: _ :: _ -> assert false
      in
      chains := walk v [] :: !chains
    end
  done;
  !chains

let greedy_path_cover g =
  let n = Dag.n g in
  let visited = Array.make n false in
  let paths = ref [] in
  let topo = Dag.topo_order g in
  Array.iter
    (fun v ->
      if not visited.(v) then begin
        let rec walk u acc =
          visited.(u) <- true;
          match List.find_opt (fun w -> not visited.(w)) (Dag.succs g u) with
          | Some w -> walk w (u :: acc)
          | None -> List.rev (u :: acc)
        in
        paths := walk v [] :: !paths
      end)
    topo;
  List.rev !paths

let to_string = function
  | Independent -> "independent"
  | Chains -> "chains"
  | Out_trees -> "out-trees"
  | In_trees -> "in-trees"
  | Forest -> "forest"
  | General -> "general"

let pp fmt s = Format.pp_print_string fmt (to_string s)
