(** Chain decompositions of directed forests (paper §4.2, Lemma 4.6).

    A chain decomposition partitions the vertices into blocks [B_1, ..., B_λ]
    such that (i) each block induces vertex-disjoint directed chains, and
    (ii) whenever [u] is an ancestor of [v], either [u]'s block strictly
    precedes [v]'s, or they lie on the same chain of the same block. The
    paper cites Kumar–Marathe–Parthasarathy–Srinivasan for a decomposition
    of width ≤ 2(⌈log₂ n⌉ + 1) for any DAG whose underlying undirected
    graph is a forest.

    Our construction (documented in DESIGN.md): in a polytree the set of
    descendants (resp. ancestors) of a vertex forms an out-tree (resp.
    in-tree), so the counts [ds(v)] and [as(v)] are computed exactly by a
    linear sweep, and distinct out-neighbours (resp. in-neighbours) of a
    vertex have disjoint descendant (resp. ancestor) sets. Assigning vertex
    [v] the key [(⌊log₂ n⌋ − ⌊log₂ ds(v)⌋) + ⌊log₂ as(v)⌋] makes the key
    strictly monotone-compatible with ancestry and gives each vertex at most
    one same-key in-neighbour and one same-key out-neighbour, hence blocks
    of vertex-disjoint chains and width ≤ 2⌊log₂ n⌋ + 1. For pure out-tree
    (resp. in-tree) collections only the first (resp. second) summand is
    used, giving width ≤ ⌊log₂ n⌋ + 1 as needed by Theorem 4.8. *)

type chain = int list
(** Jobs of one chain, in precedence order; consecutive elements are joined
    by DAG edges. *)

type t = {
  blocks : chain list array;
      (** [blocks.(b)] are the vertex-disjoint chains of block [b]; blocks
          are in ancestor-compatible order. *)
  mode : mode;
}

and mode =
  | Out_mode  (** descendant-count keys: for out-tree collections *)
  | In_mode  (** ancestor-count keys: for in-tree collections *)
  | Poly_mode  (** combined keys: for arbitrary directed forests *)

val decompose : ?mode:mode -> Dag.t -> t
(** Decompose a directed forest. The default mode is chosen from
    [Classify.classify]: [Out_mode]/[In_mode] when the DAG is a collection
    of out-/in-trees (narrower decomposition), [Poly_mode] otherwise.
    @raise Invalid_argument if the underlying undirected graph is not a
    forest, or if the requested mode does not apply to the DAG. *)

val width : t -> int
(** Number of blocks λ. *)

val chain_count : t -> int
(** Total number of chains across all blocks. *)

val jobs : t -> int list
(** All jobs in block order then chain order — a valid topological order of
    the original DAG. *)

val validate : Dag.t -> t -> (unit, string) result
(** Checks, against the original DAG, that the decomposition is a partition,
    that chain-consecutive vertices are DAG edges, that each block induces
    vertex-disjoint chains, and that ancestry never crosses blocks backwards
    (condition (ii) of the paper's Definition). Used by the test suite and
    available to callers handling untrusted decompositions. *)

val width_bound : Dag.t -> mode -> int
(** The proven upper bound on [width] for the given DAG size and mode:
    ⌊log₂ n⌋ + 1 for [Out_mode]/[In_mode], 2⌊log₂ n⌋ + 1 for [Poly_mode]
    (n ≥ 1). *)
