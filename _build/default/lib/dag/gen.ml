module Rng = Suu_prob.Rng

let independent n = Dag.empty n

(* Split 0..n-1 into [parts] non-empty contiguous groups by choosing
   parts-1 distinct cut points uniformly at random. *)
let random_group_sizes rng n parts =
  if parts < 1 || parts > n then
    invalid_arg "Gen: group count must be within [1, n]";
  let cuts = Array.make (parts - 1) 0 in
  (* Sample distinct cut positions from 1..n-1 by shuffling. *)
  let positions = Array.init (n - 1) (fun i -> i + 1) in
  Rng.shuffle rng positions;
  Array.blit positions 0 cuts 0 (parts - 1);
  Array.sort compare cuts;
  let sizes = Array.make parts 0 in
  let prev = ref 0 in
  Array.iteri
    (fun k c ->
      sizes.(k) <- c - !prev;
      prev := c)
    cuts;
  sizes.(parts - 1) <- n - !prev;
  sizes

let chains_of_sizes sizes =
  let edges = ref [] in
  let v = ref 0 in
  Array.iter
    (fun size ->
      for k = 1 to size - 1 do
        edges := (!v + k - 1, !v + k) :: !edges
      done;
      v := !v + size)
    sizes;
  !edges

let chains rng ~n ~chains =
  let sizes = random_group_sizes rng n chains in
  Dag.create ~n (chains_of_sizes sizes)

let uniform_chains ~n ~chains =
  if chains < 1 || chains > n then
    invalid_arg "Gen.uniform_chains: chain count must be within [1, n]";
  let base = n / chains and extra = n mod chains in
  let sizes = Array.init chains (fun k -> base + if k < extra then 1 else 0) in
  Dag.create ~n (chains_of_sizes sizes)

let forest_edges rng n trees ~toward_root =
  let sizes = random_group_sizes rng n trees in
  let edges = ref [] in
  let base = ref 0 in
  Array.iter
    (fun size ->
      for k = 1 to size - 1 do
        let child = !base + k in
        let parent = !base + Rng.int rng k in
        let e = if toward_root then (child, parent) else (parent, child) in
        edges := e :: !edges
      done;
      base := !base + size)
    sizes;
  !edges

let out_forest rng ~n ~trees =
  Dag.create ~n (forest_edges rng n trees ~toward_root:false)

let in_forest rng ~n ~trees =
  Dag.create ~n (forest_edges rng n trees ~toward_root:true)

let polytree_forest rng ~n ~trees =
  let sizes = random_group_sizes rng n trees in
  let edges = ref [] in
  let base = ref 0 in
  Array.iter
    (fun size ->
      for k = 1 to size - 1 do
        let a = !base + k in
        let b = !base + Rng.int rng k in
        let e = if Rng.bool rng then (a, b) else (b, a) in
        edges := e :: !edges
      done;
      base := !base + size)
    sizes;
  Dag.create ~n !edges

let binary_out_tree ~n =
  let edges = ref [] in
  for v = 0 to n - 1 do
    if (2 * v) + 1 < n then edges := (v, (2 * v) + 1) :: !edges;
    if (2 * v) + 2 < n then edges := (v, (2 * v) + 2) :: !edges
  done;
  Dag.create ~n !edges

let layered rng ~n ~layers ~edge_prob =
  if layers < 1 || layers > n then
    invalid_arg "Gen.layered: layer count must be within [1, n]";
  let sizes = random_group_sizes rng n layers in
  let starts = Array.make layers 0 in
  let acc = ref 0 in
  Array.iteri
    (fun k size ->
      starts.(k) <- !acc;
      acc := !acc + size)
    sizes;
  let edges = ref [] in
  for k = 0 to layers - 2 do
    for u = starts.(k) to starts.(k) + sizes.(k) - 1 do
      for v = starts.(k + 1) to starts.(k + 1) + sizes.(k + 1) - 1 do
        if Rng.bernoulli rng edge_prob then edges := (u, v) :: !edges
      done
    done
  done;
  Dag.create ~n !edges

let random_dag rng ~n ~edge_prob =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bernoulli rng edge_prob then edges := (u, v) :: !edges
    done
  done;
  Dag.create ~n !edges

let diamond ~width =
  if width < 1 then invalid_arg "Gen.diamond: width must be positive";
  let n = width + 2 in
  let edges = ref [] in
  for k = 1 to width do
    edges := (0, k) :: (k, n - 1) :: !edges
  done;
  Dag.create ~n !edges
