lib/dag/classify.mli: Dag Format
