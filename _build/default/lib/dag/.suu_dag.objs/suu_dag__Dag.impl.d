lib/dag/dag.ml: Array Format Hashtbl Int List Set Suu_flow
