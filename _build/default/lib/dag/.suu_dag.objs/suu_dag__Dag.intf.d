lib/dag/dag.mli: Format
