lib/dag/gen.mli: Dag Suu_prob
