lib/dag/chain_decomp.mli: Dag
