lib/dag/gen.ml: Array Dag Suu_prob
