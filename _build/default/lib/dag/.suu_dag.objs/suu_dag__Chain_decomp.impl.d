lib/dag/chain_decomp.ml: Array Classify Dag Format Hashtbl List Result
