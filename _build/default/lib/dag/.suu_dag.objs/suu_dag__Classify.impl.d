lib/dag/classify.ml: Array Dag Format List
