type chain = int list

type t = { blocks : chain list array; mode : mode }
and mode = Out_mode | In_mode | Poly_mode

let ilog2 x =
  if x <= 0 then invalid_arg "Chain_decomp.ilog2: non-positive";
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
  go 0 x

let default_mode g =
  match Classify.classify g with
  | Classify.Independent | Classify.Chains | Classify.Out_trees -> Out_mode
  | Classify.In_trees -> In_mode
  | Classify.Forest -> Poly_mode
  | Classify.General ->
      invalid_arg "Chain_decomp.decompose: dag is not a directed forest"

let mode_applies g = function
  | Out_mode -> Classify.matches g Classify.Out_trees
  | In_mode -> Classify.matches g Classify.In_trees
  | Poly_mode -> Classify.matches g Classify.Forest

let keys g mode =
  let nv = Dag.n g in
  let logn = if nv = 0 then 0 else ilog2 nv in
  let ds = Dag.descendant_counts g in
  let asc = Dag.ancestor_counts g in
  Array.init nv (fun v ->
      match mode with
      | Out_mode -> logn - ilog2 ds.(v)
      | In_mode -> ilog2 asc.(v)
      | Poly_mode -> logn - ilog2 ds.(v) + ilog2 asc.(v))

let decompose ?mode g =
  if not (Dag.underlying_forest g) then
    invalid_arg "Chain_decomp.decompose: dag is not a directed forest";
  let mode = match mode with None -> default_mode g | Some m -> m in
  if not (mode_applies g mode) then
    invalid_arg "Chain_decomp.decompose: mode does not apply to this dag";
  let nv = Dag.n g in
  if nv = 0 then { blocks = [||]; mode }
  else begin
    let key = keys g mode in
    (* Compact the key range to consecutive block indices. *)
    let distinct = List.sort_uniq compare (Array.to_list key) in
    let index_of = Hashtbl.create 16 in
    List.iteri (fun i k -> Hashtbl.add index_of k i) distinct;
    let nblocks = List.length distinct in
    let block_of = Array.map (fun k -> Hashtbl.find index_of k) key in
    (* Within a block each vertex has at most one same-block successor and
       predecessor; walk each chain from its same-block-source head. *)
    let same_block_succ = Array.make nv (-1) in
    let same_block_pred = Array.make nv (-1) in
    for v = 0 to nv - 1 do
      List.iter
        (fun w ->
          if block_of.(w) = block_of.(v) then begin
            if same_block_succ.(v) >= 0 then
              invalid_arg
                "Chain_decomp.decompose: internal error (two same-key \
                 successors)";
            same_block_succ.(v) <- w;
            same_block_pred.(w) <- v
          end)
        (Dag.succs g v)
    done;
    let blocks = Array.make nblocks [] in
    (* Deterministic chain order: iterate heads in increasing index. *)
    for v = nv - 1 downto 0 do
      if same_block_pred.(v) < 0 then begin
        let rec walk u acc =
          let acc = u :: acc in
          if same_block_succ.(u) < 0 then List.rev acc
          else walk same_block_succ.(u) acc
        in
        let chain = walk v [] in
        blocks.(block_of.(v)) <- chain :: blocks.(block_of.(v))
      end
    done;
    { blocks; mode }
  end

let width t = Array.length t.blocks

let chain_count t =
  Array.fold_left (fun acc chains -> acc + List.length chains) 0 t.blocks

let jobs t =
  List.concat_map (fun chains -> List.concat chains) (Array.to_list t.blocks)

let validate g t =
  let nv = Dag.n g in
  let ( let* ) r f = Result.bind r f in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  (* Partition check. *)
  let block_of = Array.make nv (-1) in
  let chain_of = Array.make nv (-1) in
  let check_partition () =
    let cid = ref 0 in
    let bad = ref None in
    Array.iteri
      (fun b chains ->
        List.iter
          (fun chain ->
            List.iter
              (fun v ->
                if v < 0 || v >= nv then bad := Some (err "vertex %d out of range" v)
                else if block_of.(v) >= 0 then
                  bad := Some (err "vertex %d appears twice" v)
                else begin
                  block_of.(v) <- b;
                  chain_of.(v) <- !cid
                end)
              chain;
            incr cid)
          chains)
      t.blocks;
    match !bad with
    | Some e -> e
    | None ->
        if Array.exists (fun b -> b < 0) block_of then
          err "some vertex missing from the decomposition"
        else Ok ()
  in
  let check_chain_edges () =
    let bad = ref None in
    Array.iter
      (fun chains ->
        List.iter
          (fun chain ->
            let rec pairs = function
              | u :: (v :: _ as rest) ->
                  if not (Dag.has_edge g u v) then
                    bad := Some (err "chain step %d -> %d is not a dag edge" u v)
                  else pairs rest
              | _ -> ()
            in
            pairs chain)
          chains)
      t.blocks;
    match !bad with Some e -> e | None -> Ok ()
  in
  let check_ancestry () =
    let r = Dag.reachable g in
    let bad = ref None in
    for u = 0 to nv - 1 do
      for v = 0 to nv - 1 do
        if r.(u).(v) then
          if block_of.(u) > block_of.(v) then
            bad := Some (err "ancestor %d in later block than %d" u v)
          else if block_of.(u) = block_of.(v) && chain_of.(u) <> chain_of.(v)
          then
            bad :=
              Some (err "ancestor %d and %d share a block but not a chain" u v)
      done
    done;
    match !bad with Some e -> e | None -> Ok ()
  in
  let check_disjoint_chains () =
    (* Within a block, no dag edge may join two different chains. *)
    let bad = ref None in
    List.iter
      (fun (u, v) ->
        if block_of.(u) = block_of.(v) && chain_of.(u) <> chain_of.(v) then
          bad := Some (err "intra-block edge %d -> %d crosses chains" u v))
      (Dag.edges g);
    match !bad with Some e -> e | None -> Ok ()
  in
  let* () = check_partition () in
  let* () = check_chain_edges () in
  let* () = check_disjoint_chains () in
  check_ancestry ()

let width_bound g mode =
  let nv = Dag.n g in
  if nv = 0 then 0
  else
    match mode with
    | Out_mode | In_mode -> ilog2 nv + 1
    | Poly_mode -> (2 * ilog2 nv) + 1
