(** Random precedence-DAG generators for tests, examples and experiments.

    All generators are deterministic given the supplied RNG, and each
    produces DAGs of exactly the class its name announces (validated in the
    test suite via {!Classify}). *)

val independent : int -> Dag.t
(** The edgeless DAG on [n] vertices. *)

val chains : Suu_prob.Rng.t -> n:int -> chains:int -> Dag.t
(** [n] jobs split into [chains] vertex-disjoint chains with random sizes
    (each chain non-empty; requires [1 ≤ chains ≤ n]). *)

val uniform_chains : n:int -> chains:int -> Dag.t
(** Deterministic variant: chain sizes as equal as possible. *)

val out_forest : Suu_prob.Rng.t -> n:int -> trees:int -> Dag.t
(** Forest of [trees] out-trees (edges away from roots): each non-root
    attaches to a uniformly random earlier vertex of its tree. Requires
    [1 ≤ trees ≤ n]. *)

val in_forest : Suu_prob.Rng.t -> n:int -> trees:int -> Dag.t
(** Mirror image of [out_forest]: edges point towards the roots. *)

val polytree_forest : Suu_prob.Rng.t -> n:int -> trees:int -> Dag.t
(** Forest of polytrees: random undirected trees with each edge oriented by
    a fair coin. Any orientation of a forest is acyclic, so this is a valid
    "directed forest" in the paper's sense, generally neither an in- nor an
    out-tree collection. *)

val binary_out_tree : n:int -> Dag.t
(** Deterministic complete-ish binary out-tree on [n] vertices (vertex [v]
    has children [2v+1], [2v+2] when in range): worst case for chain
    decomposition width. *)

val layered : Suu_prob.Rng.t -> n:int -> layers:int -> edge_prob:float -> Dag.t
(** General DAG: vertices spread over [layers] layers, each possible edge
    from layer [k] to layer [k+1] present independently with probability
    [edge_prob]. Requires [1 ≤ layers ≤ n]. *)

val random_dag : Suu_prob.Rng.t -> n:int -> edge_prob:float -> Dag.t
(** General DAG: each pair [(u, v)] with [u < v] is an edge independently
    with probability [edge_prob]. *)

val diamond : width:int -> Dag.t
(** The classic fork–join diamond: one source, [width] parallel middle jobs,
    one sink ([width + 2] vertices). General-DAG shape for [width ≥ 2]. *)
