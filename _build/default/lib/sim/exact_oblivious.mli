(** Exact analysis of oblivious schedules.

    An oblivious schedule's execution is a time-inhomogeneous Markov chain
    on unfinished-job sets (the assignment changes every step), so unlike
    regimens there is no triangular recursion; instead we evolve the full
    state distribution forward. Exponential in [n] — intended for the
    small instances where it replaces Monte-Carlo noise with exact values
    in tests and experiments. *)

exception Horizon_too_short of { horizon : int; mass_left : float }
(** Raised by [expected_makespan] when the survival probability has not
    vanished within the step budget and no rigorous tail bound is
    available (e.g. an idle-tail schedule that cannot finish). *)

val distribution_after :
  Suu_core.Instance.t -> Suu_core.Oblivious.t -> steps:int -> (int * float) list
(** Distribution over unfinished-set bitmasks after executing the first
    [steps] steps, as sorted [(mask, probability)] pairs summing to 1. *)

val cdf : Suu_core.Instance.t -> Suu_core.Oblivious.t -> horizon:int -> float array
(** [P(makespan <= t)] for [t = 0..horizon]. *)

val expected_makespan :
  ?eps:float -> ?max_horizon:int -> Suu_core.Instance.t -> Suu_core.Oblivious.t -> float
(** Exact expected makespan up to an [eps] truncation error (default
    [1e-9]): the survival series [Σ_t P(T > t)] is summed until the
    survival probability drops below [eps], and the remainder is bounded
    rigorously through the cycle's per-pass completion probability.
    @raise Horizon_too_short if the schedule cannot be certified to
    terminate (e.g. empty cycle with unfinished mass remaining). *)
