(** Exact expected makespans by absorbing-Markov-chain analysis.

    The execution of a regimen (Definition 2.2) is a Markov chain on
    unfinished-job sets (the left diagram of the paper's Figure 1). For
    instances with at most [word_size - 2] jobs we evaluate the expected
    absorption time exactly: the chain only moves to strict subsets, so the
    expectation satisfies a triangular system solved by memoised recursion:

    [E[T(S)] = (1 + Σ_{∅ ≠ F ⊆ A(S)} P(F) · E[T(S \ F)]) / (1 − P(∅))]

    where [A(S)] are the jobs being worked on and [P(F)] the probability
    that exactly the jobs in [F] finish this step.

    This module is the ground truth the Monte-Carlo engine and the
    approximation algorithms are tested against, and the substrate for
    Malewicz's optimal dynamic program ([Suu_algo.Malewicz]). *)

exception Too_large of int
(** Raised when the instance has more jobs than fit in a bitmask. *)

exception Nonterminating
(** Raised when some reachable state makes no progress (every assigned job
    has success probability 0), so the expected makespan is infinite. *)

val full_mask : Suu_core.Instance.t -> int
(** The bitmask with all jobs unfinished. *)

val eligible_mask : Suu_core.Instance.t -> int -> int
(** Jobs of [mask] whose predecessors are all outside [mask]. *)

val step_distribution :
  Suu_core.Instance.t -> mask:int -> Suu_core.Assignment.t -> (int * float) list
(** Distribution of the next state: [(mask', prob)] pairs with positive
    probability, [mask'] ⊆ [mask], summing to 1. Machines on ineligible or
    finished jobs are ignored, mirroring the engine semantics. *)

val expected_makespan_regimen :
  Suu_core.Instance.t -> (bool array -> Suu_core.Assignment.t) -> float
(** Exact expected makespan of the regimen [f] (a function of the
    unfinished-job set, as in [Policy.of_regimen]).
    @raise Too_large, Nonterminating. *)

val makespan_distribution_regimen :
  Suu_core.Instance.t ->
  (bool array -> Suu_core.Assignment.t) ->
  horizon:int ->
  float array
(** [P(makespan ≤ t)] for [t = 0..horizon]: exact CDF by forward evolution
    of the state distribution. For Figure-1-style exhibits. *)
