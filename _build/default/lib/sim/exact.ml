module Instance = Suu_core.Instance
module Assignment = Suu_core.Assignment

exception Too_large of int
exception Nonterminating

let max_jobs = Sys.int_size - 2

let check_size inst =
  let n = Instance.n inst in
  if n > max_jobs then raise (Too_large n)

let full_mask inst =
  check_size inst;
  let n = Instance.n inst in
  if n = 0 then 0 else (1 lsl n) - 1

let eligible_mask inst mask =
  let dag = Instance.dag inst in
  let n = Instance.n inst in
  let e = ref 0 in
  for j = 0 to n - 1 do
    if mask land (1 lsl j) <> 0 then begin
      let blocked =
        List.exists (fun p -> mask land (1 lsl p) <> 0) (Suu_dag.Dag.preds dag j)
      in
      if not blocked then e := !e lor (1 lsl j)
    end
  done;
  !e

(* Per-job completion probabilities under an assignment, restricted to
   eligible unfinished jobs; returns the list of (job, q_j) with q_j > 0. *)
let active_jobs inst ~mask assignment =
  let elig = eligible_mask inst mask in
  let fail = Hashtbl.create 8 in
  Array.iteri
    (fun i j ->
      if j <> Assignment.idle_job && elig land (1 lsl j) <> 0 then begin
        let f = Option.value (Hashtbl.find_opt fail j) ~default:1. in
        Hashtbl.replace fail j (f *. (1. -. Instance.prob inst ~machine:i ~job:j))
      end)
    assignment;
  Hashtbl.fold
    (fun j f acc -> if 1. -. f > 0. then (j, 1. -. f) :: acc else acc)
    fail []
  |> List.sort compare

let step_distribution inst ~mask assignment =
  let active = active_jobs inst ~mask assignment in
  (* Enumerate completion patterns over the active jobs. *)
  let rec expand acc = function
    | [] -> acc
    | (j, q) :: rest ->
        let acc' =
          List.concat_map
            (fun (mask', prob) ->
              [ (mask' land lnot (1 lsl j), prob *. q); (mask', prob *. (1. -. q)) ])
            acc
        in
        expand
          (List.filter (fun (_, prob) -> prob > 0.) acc')
          rest
  in
  let outcomes = expand [ (mask, 1.) ] active in
  (* Merge duplicates (impossible here since patterns are distinct masks,
     but cheap and defensive). *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (mask', prob) ->
      let v = Option.value (Hashtbl.find_opt tbl mask') ~default:0. in
      Hashtbl.replace tbl mask' (v +. prob))
    outcomes;
  Hashtbl.fold (fun mask' prob acc -> (mask', prob) :: acc) tbl []
  |> List.sort compare

let bool_array_of_mask n mask =
  Array.init n (fun j -> mask land (1 lsl j) <> 0)

let expected_makespan_regimen inst f =
  check_size inst;
  let n = Instance.n inst in
  let memo : (int, float) Hashtbl.t = Hashtbl.create 256 in
  let rec value mask =
    if mask = 0 then 0.
    else
      match Hashtbl.find_opt memo mask with
      | Some v -> v
      | None ->
          let assignment = f (bool_array_of_mask n mask) in
          let active = active_jobs inst ~mask assignment in
          if active = [] then raise Nonterminating;
          let stay = ref 1. in
          List.iter (fun (_, q) -> stay := !stay *. (1. -. q)) active;
          if 1. -. !stay <= 0. then raise Nonterminating;
          let rest = ref 0. in
          List.iter
            (fun (mask', prob) ->
              if mask' <> mask then rest := !rest +. (prob *. value mask'))
            (step_distribution inst ~mask assignment);
          let v = (1. +. !rest) /. (1. -. !stay) in
          Hashtbl.add memo mask v;
          v
  in
  value (full_mask inst)

let makespan_distribution_regimen inst f ~horizon =
  check_size inst;
  let n = Instance.n inst in
  let dist : (int, float) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace dist (full_mask inst) 1.;
  let cdf = Array.make (horizon + 1) 0. in
  let absorbed mask = mask = 0 in
  cdf.(0) <- Option.value (Hashtbl.find_opt dist 0) ~default:0.;
  if full_mask inst = 0 then Array.fill cdf 0 (horizon + 1) 1.
  else
    for t = 1 to horizon do
      let next = Hashtbl.create 64 in
      let add mask prob =
        let v = Option.value (Hashtbl.find_opt next mask) ~default:0. in
        Hashtbl.replace next mask (v +. prob)
      in
      Hashtbl.iter
        (fun mask prob ->
          if absorbed mask then add mask prob
          else begin
            let assignment = f (bool_array_of_mask n mask) in
            List.iter
              (fun (mask', p) -> add mask' (prob *. p))
              (step_distribution inst ~mask assignment)
          end)
        dist;
      Hashtbl.reset dist;
      Hashtbl.iter (Hashtbl.replace dist) next;
      cdf.(t) <- Option.value (Hashtbl.find_opt dist 0) ~default:0.
    done;
  cdf
