module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious

exception Horizon_too_short of { horizon : int; mass_left : float }

(* Advance a distribution over unfinished-set masks by one step under
   assignment [a]. *)
let evolve inst dist a =
  let next = Hashtbl.create (Hashtbl.length dist * 2) in
  let add mask prob =
    let v = Option.value (Hashtbl.find_opt next mask) ~default:0. in
    Hashtbl.replace next mask (v +. prob)
  in
  Hashtbl.iter
    (fun mask prob ->
      if mask = 0 then add 0 prob
      else
        List.iter
          (fun (mask', p) -> add mask' (prob *. p))
          (Exact.step_distribution inst ~mask a))
    dist;
  next

let initial inst =
  let dist : (int, float) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace dist (Exact.full_mask inst) 1.;
  dist

let distribution_after inst sched ~steps =
  let dist = ref (initial inst) in
  for t = 0 to steps - 1 do
    dist := evolve inst !dist (Oblivious.step sched t)
  done;
  Hashtbl.fold (fun mask prob acc -> (mask, prob) :: acc) !dist []
  |> List.sort compare

let cdf inst sched ~horizon =
  let dist = ref (initial inst) in
  let out = Array.make (horizon + 1) 0. in
  let absorbed () = Option.value (Hashtbl.find_opt !dist 0) ~default:0. in
  out.(0) <- absorbed ();
  for t = 1 to horizon do
    dist := evolve inst !dist (Oblivious.step sched (t - 1));
    out.(t) <- absorbed ()
  done;
  out

(* Lower bound on the probability that one full cycle pass completes all
   jobs from any state: every job accumulates its cycle mass, hence
   completes with probability >= 1 - e^{-min(mass, 1)}. *)
let per_pass_completion inst sched =
  let cycle_len = Oblivious.cycle_length sched in
  if cycle_len = 0 then None
  else begin
    let prefix_len = Oblivious.prefix_length sched in
    let tail =
      Oblivious.create ~m:(Instance.m inst)
        ~cycle:
          (Array.init cycle_len (fun k -> Oblivious.step sched (prefix_len + k)))
        [||]
    in
    let mass = Suu_core.Mass.of_oblivious inst tail ~steps:cycle_len in
    if Array.exists (fun mj -> mj <= 0.) mass then None
    else
      Some
        (Array.fold_left
           (fun acc mj -> acc *. (1. -. Float.exp (-.Float.min 1. mj)))
           1. mass)
  end

let expected_makespan ?(eps = 1e-9) ?(max_horizon = 2_000_000) inst sched =
  if Instance.n inst = 0 then 0.
  else begin
    let dist = ref (initial inst) in
    let survival () =
      Hashtbl.fold
        (fun mask prob acc -> if mask <> 0 then acc +. prob else acc)
        !dist 0.
    in
    (* E[T] = Σ_{t >= 0} P(T > t): accumulate survival probabilities. *)
    let expectation = ref 0. in
    let t = ref 0 in
    let s = ref (survival ()) in
    while !s > eps && !t < max_horizon do
      expectation := !expectation +. !s;
      dist := evolve inst !dist (Oblivious.step sched !t);
      incr t;
      s := survival ()
    done;
    if !s > eps then raise (Horizon_too_short { horizon = !t; mass_left = !s });
    (* Rigorous tail bound for the truncated remainder. *)
    if !s > 0. then begin
      match per_pass_completion inst sched with
      | Some q when q > 0. ->
          expectation :=
            !expectation
            +. (!s *. Float.of_int (Oblivious.cycle_length sched) /. q)
      | _ ->
          (* No certifiable tail; the truncation error stays below eps per
             remaining step only if survival keeps shrinking — give up. *)
          raise (Horizon_too_short { horizon = !t; mass_left = !s })
    end;
    !expectation
  end
