lib/sim/exact.ml: Array Hashtbl List Option Suu_core Suu_dag Sys
