lib/sim/engine.ml: Array Domain Float Hashtbl List Suu_core Suu_dag Suu_prob
