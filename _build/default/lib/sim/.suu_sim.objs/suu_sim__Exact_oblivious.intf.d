lib/sim/exact_oblivious.mli: Suu_core
