lib/sim/engine.mli: Suu_core Suu_prob
