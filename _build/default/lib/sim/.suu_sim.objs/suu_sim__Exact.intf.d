lib/sim/exact.mli: Suu_core
