lib/sim/exact_oblivious.ml: Array Exact Float Hashtbl List Option Suu_core
