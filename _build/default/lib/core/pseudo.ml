type t = { m : int; steps : int list array array }

let create ~m steps =
  Array.iter
    (fun step ->
      if Array.length step <> m then
        invalid_arg "Pseudo.create: machine count mismatch")
    steps;
  { m; steps }

let length t = Array.length t.steps

let machine_loads t =
  let loads = Array.make t.m 0 in
  Array.iter
    (fun step ->
      Array.iteri (fun i jobs -> loads.(i) <- loads.(i) + List.length jobs) step)
    t.steps;
  loads

let load t = Array.fold_left max 0 (machine_loads t)

let max_congestion t =
  let worst = ref 0 in
  Array.iter
    (fun step ->
      Array.iter
        (fun jobs -> worst := max !worst (List.length jobs))
        step)
    t.steps;
  !worst

let of_windows ~m ~length units =
  let steps = Array.init length (fun _ -> Array.make m []) in
  List.iter
    (fun (i, j, start, count) ->
      if i < 0 || i >= m then invalid_arg "Pseudo.of_windows: bad machine";
      if start < 0 || start + count > length then
        invalid_arg "Pseudo.of_windows: window exceeds schedule length";
      for k = start to start + count - 1 do
        steps.(k).(i) <- j :: steps.(k).(i)
      done)
    units;
  Array.iter
    (fun step -> Array.iteri (fun i jobs -> step.(i) <- List.rev jobs) step)
    steps;
  { m; steps }

let shift t d =
  if d < 0 then invalid_arg "Pseudo.shift: negative delay";
  let empty () = Array.make t.m [] in
  let steps =
    Array.init
      (Array.length t.steps + d)
      (fun k -> if k < d then empty () else Array.copy t.steps.(k - d))
  in
  { m = t.m; steps }

let overlay = function
  | [] -> invalid_arg "Pseudo.overlay: empty list"
  | first :: _ as all ->
      let m = first.m in
      List.iter
        (fun p ->
          if p.m <> m then invalid_arg "Pseudo.overlay: machine count mismatch")
        all;
      let len = List.fold_left (fun acc p -> max acc (length p)) 0 all in
      let steps = Array.init len (fun _ -> Array.make m []) in
      List.iter
        (fun p ->
          Array.iteri
            (fun k step ->
              Array.iteri
                (fun i jobs -> steps.(k).(i) <- steps.(k).(i) @ jobs)
                step)
            p.steps)
        all;
      { m; steps }

let append a b =
  if a.m <> b.m then invalid_arg "Pseudo.append: machine count mismatch";
  { m = a.m; steps = Array.append a.steps b.steps }

let flatten t =
  let out = ref [] in
  Array.iter
    (fun step ->
      let congestion =
        Array.fold_left (fun acc jobs -> max acc (List.length jobs)) 0 step
      in
      let expansion = max congestion 1 in
      let block = Array.init expansion (fun _ -> Assignment.idle t.m) in
      Array.iteri
        (fun i jobs ->
          List.iteri (fun k j -> block.(k).(i) <- j) jobs)
        step;
      Array.iter (fun a -> out := a :: !out) block)
    t.steps;
  Oblivious.finite ~m:t.m (Array.of_list (List.rev !out))

let jobs_mass inst t =
  let mass = Array.make (Instance.n inst) 0. in
  Array.iter
    (fun step ->
      Array.iteri
        (fun i jobs ->
          List.iter
            (fun j ->
              mass.(j) <- mass.(j) +. Instance.prob inst ~machine:i ~job:j)
            jobs)
        step)
    t.steps;
  mass

let pp fmt t =
  Format.fprintf fmt "@[<v>pseudo m=%d len=%d load=%d congestion=%d" t.m
    (length t) (load t) (max_congestion t);
  Array.iteri
    (fun k step ->
      Format.fprintf fmt "@,%4d:" k;
      Array.iteri
        (fun i jobs ->
          Format.fprintf fmt " m%d{%s}" i
            (String.concat "," (List.map string_of_int jobs)))
        step)
    t.steps;
  Format.fprintf fmt "@]"
