type t = { m : int; prefix : Assignment.t array; cycle : Assignment.t array }

let check_lengths m steps =
  Array.iter
    (fun a ->
      if Array.length a <> m then
        invalid_arg "Oblivious: assignment length mismatch")
    steps

let create ~m ?(cycle = [||]) prefix =
  check_lengths m prefix;
  check_lengths m cycle;
  { m; prefix; cycle }

let finite ~m prefix = create ~m prefix

let prefix_length t = Array.length t.prefix
let cycle_length t = Array.length t.cycle

let step t k =
  let plen = Array.length t.prefix in
  if k < plen then t.prefix.(k)
  else begin
    let clen = Array.length t.cycle in
    (* A fresh idle array per call: the allocation only happens past the
       end of a cycle-less schedule (a cold path), and sharing a cached
       array across OCaml 5 domains would race. *)
    if clen = 0 then Assignment.idle t.m else t.cycle.((k - plen) mod clen)
  end

let append a b =
  if a.m <> b.m then invalid_arg "Oblivious.append: machine count mismatch";
  { m = a.m; prefix = Array.append a.prefix b.prefix; cycle = b.cycle }

let replicate_steps t k =
  if k < 1 then invalid_arg "Oblivious.replicate_steps: factor must be >= 1";
  let rep steps =
    Array.concat
      (Array.to_list (Array.map (fun a -> Array.make k a) steps))
  in
  { m = t.m; prefix = rep t.prefix; cycle = rep t.cycle }

let repeat_prefix t k =
  if k < 1 then invalid_arg "Oblivious.repeat_prefix: factor must be >= 1";
  {
    m = t.m;
    prefix = Array.concat (List.init k (fun _ -> t.prefix));
    cycle = t.cycle;
  }

let cycle_all_jobs inst =
  let n = Instance.n inst and m = Instance.m inst in
  let topo = Suu_dag.Dag.topo_order (Instance.dag inst) in
  let cycle = Array.map (fun j -> Array.make m j) topo in
  if n = 0 then { m; prefix = [||]; cycle = [||] }
  else { m; prefix = [||]; cycle }

let with_fallback inst t =
  let fb = cycle_all_jobs inst in
  if t.m <> Instance.m inst then
    invalid_arg "Oblivious.with_fallback: machine count mismatch";
  { m = t.m; prefix = t.prefix; cycle = fb.cycle }

let of_matrix ~m ~n x =
  if Array.length x <> m then invalid_arg "Oblivious.of_matrix: bad row count";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Oblivious.of_matrix: bad column count";
      Array.iter
        (fun v -> if v < 0 then invalid_arg "Oblivious.of_matrix: negative")
        row)
    x;
  let load i = Array.fold_left ( + ) 0 x.(i) in
  let length = ref 0 in
  for i = 0 to m - 1 do
    length := max !length (load i)
  done;
  let prefix = Array.init !length (fun _ -> Assignment.idle m) in
  for i = 0 to m - 1 do
    let t = ref 0 in
    for j = 0 to n - 1 do
      for _ = 1 to x.(i).(j) do
        prefix.(!t).(i) <- j;
        incr t
      done
    done
  done;
  { m; prefix; cycle = [||] }

let load t =
  let loads = Array.make t.m 0 in
  Array.iter
    (fun a ->
      Array.iteri
        (fun i j -> if j <> Assignment.idle_job then loads.(i) <- loads.(i) + 1)
        a)
    t.prefix;
  loads

let validate inst t =
  if t.m <> Instance.m inst then Error "machine count mismatch"
  else begin
    let n = Instance.n inst in
    let check steps =
      Array.to_list steps
      |> List.filter_map (fun a ->
             match Assignment.validate a ~n ~m:t.m with
             | Ok () -> None
             | Error e -> Some e)
    in
    match check t.prefix @ check t.cycle with
    | [] -> Ok ()
    | e :: _ -> Error e
  end

let pp fmt t =
  Format.fprintf fmt "@[<v>oblivious m=%d prefix=%d cycle=%d" t.m
    (Array.length t.prefix) (Array.length t.cycle);
  Array.iteri
    (fun k a -> Format.fprintf fmt "@,%4d: %a" k Assignment.pp a)
    t.prefix;
  Array.iteri
    (fun k a -> Format.fprintf fmt "@,cyc%d: %a" k Assignment.pp a)
    t.cycle;
  Format.fprintf fmt "@]"
