(** Pseudo-schedules (paper Definition 4.1).

    A pseudo-schedule may assign a machine to a *set* of jobs in one step —
    the intermediate object produced by rounding (LP1) before random delays
    and flattening make it feasible. [steps.(t).(i)] is the set of jobs
    machine [i] is asked to work on at step [t]. *)

type t = private {
  m : int;
  steps : int list array array;  (** steps.(t).(i) = jobs on machine i at t *)
}

val create : m:int -> int list array array -> t
(** @raise Invalid_argument if a step's machine count differs from [m]. *)

val length : t -> int
(** Number of steps [T]. *)

val load : t -> int
(** The load (Definition 4.2): max over machines of the total number of
    (job, step) units assigned to it. May exceed [length]. *)

val machine_loads : t -> int array

val max_congestion : t -> int
(** Max over steps and machines of [|steps.(t).(i)|] — the quantity the
    random-delay step minimises. *)

val of_windows :
  m:int -> length:int -> (int * int * int * int) list -> t
(** [of_windows ~m ~length units] builds a pseudo-schedule from a list of
    [(machine, job, start, count)] quadruples: machine works on job for
    [count] consecutive steps beginning at 0-based [start]. Steps beyond
    [length] are an error. *)

val shift : t -> int -> t
(** [shift p d] delays every assignment by [d ≥ 0] steps (the per-chain
    random delay). *)

val overlay : t list -> t
(** Superimpose pseudo-schedules on the same machine set: the union of the
    job sets at every step. Result length is the max of the lengths. *)

val append : t -> t -> t
(** Sequential composition (block after block). *)

val flatten : t -> Oblivious.t
(** Make the pseudo-schedule feasible: step [t] with congestion [c_t] (max
    jobs on one machine) expands into [max c_t 1] real steps in which each
    machine works through its job set one job at a time. Length of the
    result is [Σ_t max(c_t, 1)] ≤ [max_congestion × length]. Relative
    order of a machine's units is preserved, so precedence-safety of the
    pseudo-schedule carries over. *)

val jobs_mass : Instance.t -> t -> float array
(** Total (uncapped) mass each job accumulates over the whole
    pseudo-schedule, ignoring collisions — the quantity the rounding
    guarantees are stated in. *)

val pp : Format.formatter -> t -> unit
