(** Oblivious schedules (paper Definition 2.3).

    An oblivious schedule fixes, in advance and independently of execution
    outcomes, the assignment function [f_t] of every step. Because a job
    may keep failing, schedules must conceptually be infinite; we represent
    them as a finite [prefix] followed by a [cycle] repeated forever. A
    machine assigned to a finished or not-yet-eligible job simply idles for
    that step (the execution semantics of Definition 2.1). *)

type t = private {
  m : int;  (** number of machines *)
  prefix : Assignment.t array;
  cycle : Assignment.t array;  (** repeated after the prefix; may be empty *)
}

val create : m:int -> ?cycle:Assignment.t array -> Assignment.t array -> t
(** [create ~m ?cycle prefix].
    @raise Invalid_argument if any assignment has length ≠ [m]. *)

val finite : m:int -> Assignment.t array -> t
(** A schedule with an empty cycle: machines idle after the prefix. *)

val prefix_length : t -> int
val cycle_length : t -> int

val step : t -> int -> Assignment.t
(** [step sched t] is the assignment of 0-based step [t]; idle forever after
    the prefix when the cycle is empty. The returned array must not be
    mutated. *)

val append : t -> t -> t
(** [append a b]: run [a]'s prefix, then [b] (prefix + cycle). [a]'s cycle
    is discarded; both must have the same machine count. *)

val replicate_steps : t -> int -> t
(** [replicate_steps sched k] repeats every step of prefix and cycle [k]
    times in place — the paper's "schedule replication" (§4.1) that turns a
    constant per-window success probability into a high-probability one. *)

val repeat_prefix : t -> int -> t
(** [repeat_prefix sched k] is the prefix concatenated [k] times, keeping
    the original cycle afterwards. *)

val cycle_all_jobs : Instance.t -> t
(** The paper's fallback schedule [Σ_{o,3}]: step [k] assigns every machine
    to the [k]-th job in topological order, cycling forever with period
    [n]. Guarantees termination of any execution with probability 1. *)

val with_fallback : Instance.t -> t -> t
(** Replace the schedule's tail by [cycle_all_jobs]: the paper's final
    composition [Σ_o = Σ_{o,2} ∘ Σ_{o,3}^∞]. *)

val of_matrix : m:int -> n:int -> int array array -> t
(** [of_matrix ~m ~n x] with [x.(i).(j)] the number of steps machine [i]
    spends on job [j]: machine [i]'s row of the schedule is job [0]
    repeated [x.(i).(0)] times, then job 1, etc. — the packing used by
    MSM-E-ALG (§3.2). The schedule length is the maximum machine load;
    machines idle once their own work is exhausted. The cycle is empty. *)

val load : t -> int array
(** Per-machine number of non-idle prefix steps. *)

val validate : Instance.t -> t -> (unit, string) result
(** Machine count matches and every assignment is well-formed. *)

val pp : Format.formatter -> t -> unit
