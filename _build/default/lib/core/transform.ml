module Dag = Suu_dag.Dag

let sub_instance inst ~jobs =
  let n = Instance.n inst and m = Instance.m inst in
  let jobs = List.sort_uniq compare jobs in
  List.iter
    (fun j ->
      if j < 0 || j >= n then
        invalid_arg "Transform.sub_instance: job out of range")
    jobs;
  let mapping = Array.of_list jobs in
  let n' = Array.length mapping in
  let new_id = Hashtbl.create n' in
  Array.iteri (fun k j -> Hashtbl.add new_id j k) mapping;
  let edges =
    List.filter_map
      (fun (u, v) ->
        match (Hashtbl.find_opt new_id u, Hashtbl.find_opt new_id v) with
        | Some u', Some v' -> Some (u', v')
        | _ -> None)
      (Dag.edges (Instance.dag inst))
  in
  let p =
    Array.init m (fun i ->
        Array.init n' (fun k ->
            Instance.prob inst ~machine:i ~job:mapping.(k)))
  in
  (Instance.create ~p ~dag:(Dag.create ~n:n' edges), mapping)

let probs_of inst =
  Array.init (Instance.m inst) (fun i ->
      Array.init (Instance.n inst) (fun j ->
          Instance.prob inst ~machine:i ~job:j))

let reverse inst =
  let dag = Instance.dag inst in
  let flipped = List.map (fun (u, v) -> (v, u)) (Dag.edges dag) in
  Instance.create ~p:(probs_of inst)
    ~dag:(Dag.create ~n:(Instance.n inst) flipped)

let scale_probs inst ~factor =
  if factor < 0. || not (Float.is_finite factor) then
    invalid_arg "Transform.scale_probs: bad factor";
  let p =
    Array.map
      (Array.map (fun pij -> Float.min 1. (Float.max 0. (pij *. factor))))
      (probs_of inst)
  in
  Instance.create ~p ~dag:(Instance.dag inst)

let disjoint_union a b =
  let m = Instance.m a in
  if Instance.m b <> m then
    invalid_arg "Transform.disjoint_union: machine count mismatch";
  let na = Instance.n a and nb = Instance.n b in
  let p =
    Array.init m (fun i ->
        Array.init (na + nb) (fun j ->
            if j < na then Instance.prob a ~machine:i ~job:j
            else Instance.prob b ~machine:i ~job:(j - na)))
  in
  let edges =
    Dag.edges (Instance.dag a)
    @ List.map (fun (u, v) -> (u + na, v + na)) (Dag.edges (Instance.dag b))
  in
  Instance.create ~p ~dag:(Dag.create ~n:(na + nb) edges)
