type t = int array

let idle_job = -1
let idle m = Array.make m idle_job

let of_pairs ~m pairs =
  let a = idle m in
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= m then invalid_arg "Assignment.of_pairs: bad machine";
      if a.(i) <> idle_job then
        invalid_arg "Assignment.of_pairs: machine assigned twice";
      a.(i) <- j)
    pairs;
  a

let validate a ~n ~m =
  if Array.length a <> m then
    Error (Printf.sprintf "assignment length %d, expected %d" (Array.length a) m)
  else begin
    let bad = ref None in
    Array.iteri
      (fun i j ->
        if j <> idle_job && (j < 0 || j >= n) then
          bad := Some (Printf.sprintf "machine %d assigned to bad job %d" i j))
      a;
    match !bad with Some e -> Error e | None -> Ok ()
  end

let jobs_assigned a =
  Array.to_list a
  |> List.filter (fun j -> j <> idle_job)
  |> List.sort_uniq compare

let machines_on a ~job =
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (if a.(i) = job then i :: acc else acc)
  in
  collect (Array.length a - 1) []

let mass_added inst a =
  let mass = Array.make (Instance.n inst) 0. in
  Array.iteri
    (fun i j ->
      if j <> idle_job then
        mass.(j) <- mass.(j) +. Instance.prob inst ~machine:i ~job:j)
    a;
  mass

let success_prob inst a ~job =
  let fail = ref 1. in
  Array.iteri
    (fun i j ->
      if j = job then fail := !fail *. (1. -. Instance.prob inst ~machine:i ~job:j))
    a;
  1. -. !fail

let pp fmt a =
  Format.fprintf fmt "[";
  Array.iteri
    (fun i j ->
      if i > 0 then Format.fprintf fmt " ";
      if j = idle_job then Format.fprintf fmt "_" else Format.fprintf fmt "%d" j)
    a;
  Format.fprintf fmt "]"
