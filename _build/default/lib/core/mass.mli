(** Mass bookkeeping (paper Definition 2.4 and Proposition 2.1).

    The mass of a job under an oblivious schedule at the end of step [t] is
    [min(Σ_{τ ≤ t} Σ_{i : f_τ(i) = j} p_ij, 1)]. Proposition 2.1 sandwiches
    the per-step success probability between [mass/e] and [mass] (for mass
    ≤ 1), which is why all the paper's algorithms optimise mass instead of
    probability. *)

val combined_success : float list -> float
(** [1 − Π (1 − p_k)]: success probability of a set of independent
    attempts. *)

val proposition_2_1_bounds : float list -> float * float
(** For per-machine probabilities [ps] with [Σ ps ≤ 1], returns
    [(lower, upper)] = [(Σ/e, Σ)] such that
    [lower ≤ combined_success ps ≤ upper] — the two assertions of
    Proposition 2.1. (For [Σ > 1] the upper bound is clamped to 1 and the
    lower bound is [1 − e⁻¹ ≥ Σ'/e] with [Σ' = 1].) *)

val capped : float -> float
(** [min mass 1.] *)

val of_oblivious : Instance.t -> Oblivious.t -> steps:int -> float array
(** Uncapped mass accumulated by every job over the first [steps] steps
    (cycle included). *)

val of_oblivious_capped : Instance.t -> Oblivious.t -> steps:int -> float array
(** [of_oblivious] capped at 1 per job, as in Definition 2.4. *)

val first_step_reaching :
  Instance.t -> Oblivious.t -> target:float -> horizon:int -> int option array
(** For each job, the earliest 1-based step by which its accumulated mass
    reaches [target], or [None] if this does not happen within [horizon]
    steps. *)

val precedence_respecting :
  Instance.t -> Oblivious.t -> target:float -> horizon:int -> (unit, string) result
(** Checks condition (ii) of AccuMass-C (§4.1): whenever [j1 ≺ j2], no
    machine is assigned to [j2] before [j1] has accumulated mass [target].
    Also checks every job reaches [target] within [horizon]. *)
