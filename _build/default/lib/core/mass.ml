let combined_success ps =
  1. -. List.fold_left (fun acc p -> acc *. (1. -. p)) 1. ps

let proposition_2_1_bounds ps =
  let total = List.fold_left ( +. ) 0. ps in
  let capped_total = Float.min total 1. in
  (capped_total /. Float.exp 1., Float.min total 1.)

let capped mass = Float.min mass 1.

let of_oblivious inst sched ~steps =
  let mass = Array.make (Instance.n inst) 0. in
  for t = 0 to steps - 1 do
    let a = Oblivious.step sched t in
    Array.iteri
      (fun i j ->
        if j <> Assignment.idle_job then
          mass.(j) <- mass.(j) +. Instance.prob inst ~machine:i ~job:j)
      a
  done;
  mass

let of_oblivious_capped inst sched ~steps =
  Array.map capped (of_oblivious inst sched ~steps)

let first_step_reaching inst sched ~target ~horizon =
  let n = Instance.n inst in
  let mass = Array.make n 0. in
  let first = Array.make n None in
  let remaining = ref n in
  let t = ref 0 in
  while !remaining > 0 && !t < horizon do
    let a = Oblivious.step sched !t in
    Array.iteri
      (fun i j ->
        if j <> Assignment.idle_job then begin
          mass.(j) <- mass.(j) +. Instance.prob inst ~machine:i ~job:j;
          if first.(j) = None && mass.(j) >= target -. 1e-12 then begin
            first.(j) <- Some (!t + 1);
            decr remaining
          end
        end)
      a;
    incr t
  done;
  first

let precedence_respecting inst sched ~target ~horizon =
  let n = Instance.n inst in
  let dag = Instance.dag inst in
  let reached = first_step_reaching inst sched ~target ~horizon in
  let unreached =
    List.filter (fun j -> reached.(j) = None) (List.init n (fun j -> j))
  in
  match unreached with
  | j :: _ ->
      Error
        (Printf.sprintf "job %d never accumulates mass %g within %d steps" j
           target horizon)
  | [] ->
      (* Find the first step each job receives any machine. *)
      let first_touch = Array.make n None in
      let touched = ref 0 in
      let t = ref 0 in
      while !touched < n && !t < horizon do
        let a = Oblivious.step sched !t in
        Array.iteri
          (fun _ j ->
            if j <> Assignment.idle_job && first_touch.(j) = None then begin
              first_touch.(j) <- Some (!t + 1);
              incr touched
            end)
          a;
        incr t
      done;
      let bad = ref None in
      List.iter
        (fun (j1, j2) ->
          match (reached.(j1), first_touch.(j2)) with
          | Some r1, Some s2 when s2 <= r1 ->
              bad :=
                Some
                  (Printf.sprintf
                     "machine assigned to job %d at step %d before \
                      predecessor %d reached mass %g (step %d)"
                     j2 s2 j1 target r1)
          | _ -> ())
        (Suu_dag.Dag.edges dag);
      (match !bad with Some e -> Error e | None -> Ok ())
