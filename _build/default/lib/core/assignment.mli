(** Single-step machine→job assignments.

    One step of a schedule: [a.(i)] is the job machine [i] works on, or
    [idle_job] (-1) when the machine rests. Several machines may share a
    job (that is the point of the model); a machine works on at most one
    job per step. *)

type t = int array

val idle_job : int
(** The pseudo-job [⊥] of the paper, represented as [-1]. *)

val idle : int -> t
(** [idle m] is the all-idle assignment for [m] machines. *)

val of_pairs : m:int -> (int * int) list -> t
(** [of_pairs ~m pairs] builds an assignment from [(machine, job)] pairs.
    @raise Invalid_argument if a machine is assigned twice. *)

val validate : t -> n:int -> m:int -> (unit, string) result
(** Well-formedness: length [m], every entry [idle_job] or in [\[0, n)]. *)

val jobs_assigned : t -> int list
(** Distinct jobs receiving at least one machine, ascending. *)

val machines_on : t -> job:int -> int list
(** Machines assigned to [job], ascending. *)

val mass_added : Instance.t -> t -> float array
(** Per-job mass contributed by this step: [Σ_{i : a.(i) = j} p_ij]
    (uncapped — capping at 1 is the caller's concern, per Definition 2.4). *)

val success_prob : Instance.t -> t -> job:int -> float
(** Probability that [job] completes this step: [1 − Π_{i on j} (1 − p_ij)]. *)

val pp : Format.formatter -> t -> unit
