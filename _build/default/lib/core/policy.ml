type state = {
  step : int;
  unfinished : bool array;
  eligible : bool array;
}

type t = { name : string; fresh : unit -> state -> Assignment.t }

let of_oblivious name sched =
  { name; fresh = (fun () state -> Oblivious.step sched state.step) }

let of_regimen name f =
  { name; fresh = (fun () state -> f state.unfinished) }

let stateless name f = { name; fresh = (fun () -> f) }
