lib/core/oblivious.mli: Assignment Format Instance
