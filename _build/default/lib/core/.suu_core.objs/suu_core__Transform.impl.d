lib/core/transform.ml: Array Float Hashtbl Instance List Suu_dag
