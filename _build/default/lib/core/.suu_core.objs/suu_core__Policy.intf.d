lib/core/policy.mli: Assignment Oblivious
