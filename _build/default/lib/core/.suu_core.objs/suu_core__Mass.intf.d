lib/core/mass.mli: Instance Oblivious
