lib/core/assignment.ml: Array Format Instance List Printf
