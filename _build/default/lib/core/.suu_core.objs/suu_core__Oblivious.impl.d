lib/core/oblivious.ml: Array Assignment Format Instance List Suu_dag
