lib/core/assignment.mli: Format Instance
