lib/core/pseudo.mli: Format Instance Oblivious
