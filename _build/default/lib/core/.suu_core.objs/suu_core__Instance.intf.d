lib/core/instance.mli: Format Suu_dag
