lib/core/transform.mli: Instance
