lib/core/policy.ml: Assignment Oblivious
