lib/core/mass.ml: Array Assignment Float Instance List Oblivious Printf Suu_dag
