lib/core/pseudo.ml: Array Assignment Format Instance List Oblivious String
