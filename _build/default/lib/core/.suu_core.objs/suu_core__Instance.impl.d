lib/core/instance.ml: Array Float Format Printf Suu_dag
