let multiplicative_upper ~mu ~delta =
  if delta <= 0. || mu < 0. then
    invalid_arg "Chernoff.multiplicative_upper: need delta > 0, mu >= 0";
  let log_bound =
    mu *. (delta -. ((1. +. delta) *. Float.log (1. +. delta)))
  in
  Float.min 1. (Float.exp log_bound)

let multiplicative_lower ~mu ~delta =
  if delta <= 0. || delta >= 1. || mu < 0. then
    invalid_arg "Chernoff.multiplicative_lower: need 0 < delta < 1, mu >= 0";
  Float.min 1. (Float.exp (-.(mu *. delta *. delta /. 2.)))

let hoeffding_two_sided ~n ~epsilon =
  if n < 1 || epsilon <= 0. then
    invalid_arg "Chernoff.hoeffding_two_sided: need n >= 1, epsilon > 0";
  Float.min 1. (2. *. Float.exp (-2. *. Float.of_int n *. epsilon *. epsilon))

let sample_size ~epsilon ~confidence =
  if epsilon <= 0. || confidence <= 0. || confidence >= 1. then
    invalid_arg "Chernoff.sample_size: need epsilon > 0, confidence in (0,1)";
  let failure = 1. -. confidence in
  let n = Float.log (2. /. failure) /. (2. *. epsilon *. epsilon) in
  Float.to_int (Float.ceil n)

let congestion_tail ~tau =
  if tau <= Float.exp 1. then 1.
  else Float.exp (tau *. (1. -. Float.log tau))

let congestion_threshold ~n ~m ~alpha =
  let x = Float.of_int (n + m) in
  if x < 3. then alpha
  else alpha *. Float.log x /. Float.log (Float.log x)

let geometric_drain_steps ~n ~rate ~confidence =
  if rate <= 0. || rate >= 1. then
    invalid_arg "Chernoff.geometric_drain_steps: need rate in (0,1)";
  if n < 1 then 0.
  else begin
    let failure = 1. -. confidence in
    (* n (1-rate)^t <= failure  <=>  t >= log(n/failure) / -log(1-rate) *)
    Float.ceil
      (Float.log (Float.of_int n /. failure) /. -.Float.log1p (-.rate))
  end
