type summary = {
  count : int;
  mean : float;
  variance : float;
  stddev : float;
  min : float;
  max : float;
  sem : float;
  ci95 : float;
}

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  (* Welford's online algorithm: numerically stable single pass. *)
  let mean = ref 0. and m2 = ref 0. in
  let mn = ref xs.(0) and mx = ref xs.(0) in
  Array.iteri
    (fun i x ->
      let delta = x -. !mean in
      mean := !mean +. (delta /. Float.of_int (i + 1));
      m2 := !m2 +. (delta *. (x -. !mean));
      if x < !mn then mn := x;
      if x > !mx then mx := x)
    xs;
  let variance = if n < 2 then 0. else !m2 /. Float.of_int (n - 1) in
  let stddev = sqrt variance in
  let sem = if n < 2 then 0. else stddev /. sqrt (Float.of_int n) in
  {
    count = n;
    mean = !mean;
    variance;
    stddev;
    min = !mn;
    max = !mx;
    sem;
    ci95 = 1.96 *. sem;
  }

let mean xs = (summarize xs).mean
let variance xs = (summarize xs).variance
let stddev xs = (summarize xs).stddev

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty sample";
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let h = q *. Float.of_int (n - 1) in
  let lo = Float.to_int (Float.floor h) in
  let hi = min (lo + 1) (n - 1) in
  let frac = h -. Float.of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = quantile xs 0.5

let linear_fit pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let sx = ref 0. and sy = ref 0. in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y)
    pts;
  let mx = !sx /. Float.of_int n and my = !sy /. Float.of_int n in
  let sxx = ref 0. and sxy = ref 0. in
  Array.iter
    (fun (x, y) ->
      sxx := !sxx +. ((x -. mx) *. (x -. mx));
      sxy := !sxy +. ((x -. mx) *. (y -. my)))
    pts;
  if !sxx = 0. then invalid_arg "Stats.linear_fit: all x values equal";
  let slope = !sxy /. !sxx in
  (slope, my -. (slope *. mx))

let r_squared pts (slope, intercept) =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Stats.r_squared: empty sample";
  let my =
    Array.fold_left (fun acc (_, y) -> acc +. y) 0. pts /. Float.of_int n
  in
  let ss_res = ref 0. and ss_tot = ref 0. in
  Array.iter
    (fun (x, y) ->
      let yhat = (slope *. x) +. intercept in
      ss_res := !ss_res +. ((y -. yhat) *. (y -. yhat));
      ss_tot := !ss_tot +. ((y -. my) *. (y -. my)))
    pts;
  if !ss_tot = 0. then 1. else 1. -. (!ss_res /. !ss_tot)

let mean_ci xs =
  let s = summarize xs in
  (s.mean, s.ci95)
