(** Descriptive statistics for experiment measurements.

    The experiment harness estimates expected makespans by Monte-Carlo
    simulation; this module provides the summaries (mean, confidence
    intervals, quantiles) those estimates are reported with, plus the
    least-squares fits used to check asymptotic shapes (e.g. ratio vs
    log n). *)

type summary = {
  count : int;
  mean : float;
  variance : float;  (** unbiased sample variance (n-1 denominator) *)
  stddev : float;
  min : float;
  max : float;
  sem : float;  (** standard error of the mean *)
  ci95 : float;  (** half-width of the normal-approximation 95% CI *)
}

val summarize : float array -> summary
(** Single-pass Welford summary of a non-empty sample. *)

val mean : float array -> float
(** Arithmetic mean of a non-empty array. *)

val variance : float array -> float
(** Unbiased sample variance; [0.] for samples of size < 2. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [\[0,1\]], by linear interpolation between
    order statistics (type-7, the R default). Does not mutate [xs]. *)

val median : float array -> float

val linear_fit : (float * float) array -> float * float
(** [linear_fit pts] is [(slope, intercept)] of the least-squares line
    through the points. Requires at least two distinct x values. *)

val r_squared : (float * float) array -> float * float -> float
(** [r_squared pts (slope, intercept)] is the coefficient of determination
    of the given line on the points. *)

val mean_ci : float array -> float * float
(** [mean_ci xs] is [(mean, ci95)] — convenience accessor. *)
