(** Deterministic pseudo-random number generation.

    All stochastic components of the library draw randomness through this
    module so that every experiment, test and benchmark is reproducible from
    a single integer seed. The generator is splitmix64 (Steele, Lea &
    Flood 2014): a 64-bit state advanced by a Weyl sequence and finalised by
    a variant of the MurmurHash3 mixer. It is small, fast, passes BigCrush,
    and — crucially for us — supports cheap [split]ting so independent
    subsystems can derive uncorrelated streams from one master seed. *)

type t
(** A mutable generator state. Not thread-safe; use [split] to hand
    independent generators to independent components. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. Equal seeds give
    equal streams. *)

val copy : t -> t
(** [copy rng] is a generator starting at the same state as [rng]; the two
    then evolve independently. *)

val split : t -> t
(** [split rng] advances [rng] and returns a fresh generator whose stream is
    (statistically) independent of the remainder of [rng]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng bound] is a uniform integer in [\[0, bound)]. [bound] must be
    positive. Uses rejection sampling, so the result is exactly uniform. *)

val float : t -> float
(** [float rng] is a uniform float in [\[0, 1)] with 53 bits of precision. *)

val uniform : t -> float -> float -> float
(** [uniform rng lo hi] is a uniform float in [\[lo, hi)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli rng p] is [true] with probability [p]. Probabilities outside
    [\[0,1\]] are clamped. *)

val geometric : t -> float -> int
(** [geometric rng p] is the number of Bernoulli([p]) trials up to and
    including the first success (support 1, 2, ...). Requires [p > 0.]. *)

val exponential : t -> float -> float
(** [exponential rng rate] samples Exp(rate). Requires [rate > 0.]. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation rng n] is a uniformly random permutation of [0..n-1]. *)
