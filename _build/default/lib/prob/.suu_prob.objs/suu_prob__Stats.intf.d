lib/prob/stats.mli:
