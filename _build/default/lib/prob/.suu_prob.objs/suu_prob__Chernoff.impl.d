lib/prob/chernoff.ml: Float
