lib/prob/rng.mli:
