lib/prob/chernoff.mli:
