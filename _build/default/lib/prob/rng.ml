type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64 finaliser: xor-shift-multiply mixing of the Weyl state. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy rng = { state = rng.state }

let int64 rng =
  rng.state <- Int64.add rng.state golden_gamma;
  mix64 rng.state

let split rng = { state = mix64 (int64 rng) }

(* Non-negative 63-bit value, suitable for modular reduction on OCaml ints. *)
let bits63 rng = Int64.to_int (Int64.shift_right_logical (int64 rng) 1)

let int rng bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec loop () =
    let r = bits63 rng in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then loop () else v
  in
  loop ()

let float rng =
  (* 53 high-quality bits mapped to [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 rng) 11) in
  Float.of_int bits *. 0x1p-53

let uniform rng lo hi = lo +. ((hi -. lo) *. float rng)

let bool rng = Int64.logand (int64 rng) 1L = 1L

let bernoulli rng p =
  if p <= 0. then false else if p >= 1. then true else float rng < p

let geometric rng p =
  if p <= 0. then invalid_arg "Rng.geometric: p must be positive";
  if p >= 1. then 1
  else
    (* Inversion: ceil(log(1-U) / log(1-p)) has the right distribution. *)
    let u = float rng in
    let k = Float.to_int (Float.ceil (Float.log1p (-.u) /. Float.log1p (-.p))) in
    max 1 k

let exponential rng rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  -.Float.log1p (-.float rng) /. rate

let pick rng a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int rng (Array.length a))

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation rng n =
  let a = Array.init n (fun i -> i) in
  shuffle rng a;
  a
