(** Concentration bounds (Chernoff–Hoeffding), as used throughout the
    paper's analyses.

    The paper's Theorem 3.3 drains the unfinished-job count by "standard
    Chernoff bound arguments" [3, 15], and the delay analysis of §4.1
    bounds per-step congestion via the ((e/τ)^τ) tail. This module makes
    those bounds computable so the harness can size trial counts and the
    test-suite can assert tail behaviour numerically. *)

val multiplicative_upper : mu:float -> delta:float -> float
(** [multiplicative_upper ~mu ~delta] is the classic Chernoff bound
    [P(X >= (1+δ)μ) <= (e^δ / (1+δ)^{1+δ})^μ] for a sum of independent
    [\[0,1\]] variables with mean [μ]. Requires [δ > 0], [μ >= 0]. *)

val multiplicative_lower : mu:float -> delta:float -> float
(** [P(X <= (1-δ)μ) <= e^{-μδ²/2}] for [0 < δ < 1]. *)

val hoeffding_two_sided : n:int -> epsilon:float -> float
(** [P(|X̄ - E[X̄]| >= ε) <= 2·e^{-2nε²}] for [n] i.i.d. samples in
    [\[0,1\]]. *)

val sample_size : epsilon:float -> confidence:float -> int
(** Smallest [n] such that [hoeffding_two_sided ~n ~epsilon <= 1 -
    confidence] — the trials needed to estimate a [\[0,1\]]-bounded mean
    within [ε] at the given confidence. *)

val congestion_tail : tau:float -> float
(** The §4.1 congestion tail: [(e/τ)^τ], the probability bound that a
    machine-step receives at least [τ] units under uniform random delays
    (for [τ > e]; returns 1 otherwise, where the bound is vacuous). *)

val congestion_threshold : n:int -> m:int -> alpha:float -> float
(** The paper's [τ = α·log(n+m)/log log(n+m)] threshold. *)

val geometric_drain_steps : n:int -> rate:float -> confidence:float -> float
(** If the unfinished count shrinks in expectation by factor [(1 - rate)]
    per step (the Theorem 3.3 recurrence), the number of steps after
    which it is below 1 with the given confidence, by Markov on the
    product supermartingale: smallest [t] with [n·(1-rate)^t <= 1 -
    confidence]. *)
