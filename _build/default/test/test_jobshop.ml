module J = Suu_jobshop.Jobshop
module Rng = Suu_prob.Rng

let op machine duration = { J.machine; duration }

let check_valid t s =
  match J.validate t s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid schedule: %s" e

let test_create_validation () =
  Alcotest.check_raises "machine range"
    (Invalid_argument "Jobshop.create: machine out of range") (fun () ->
      ignore (J.create ~machines:1 [| [ op 3 1 ] |] : J.t));
  Alcotest.check_raises "duration"
    (Invalid_argument "Jobshop.create: duration must be positive") (fun () ->
      ignore (J.create ~machines:1 [| [ op 0 0 ] |] : J.t));
  Alcotest.check_raises "no machines"
    (Invalid_argument "Jobshop.create: need at least one machine") (fun () ->
      ignore (J.create ~machines:0 [||] : J.t))

let test_congestion_dilation () =
  let t =
    J.create ~machines:2
      [| [ op 0 2; op 1 1 ]; [ op 0 1 ]; [ op 1 3 ] |]
  in
  Alcotest.(check int) "congestion" 4 (J.congestion t);
  (* machine 1: 1 + 3 = 4; machine 0: 2 + 1 = 3. *)
  Alcotest.(check int) "dilation" 3 (J.dilation t);
  Alcotest.(check int) "lower bound" 4 (J.lower_bound t)

let test_single_machine_serial () =
  (* Everything on one machine: makespan = total work = C. *)
  let t = J.create ~machines:1 [| [ op 0 2 ]; [ op 0 3 ]; [ op 0 1 ] |] in
  let s = J.greedy t in
  check_valid t s;
  Alcotest.(check int) "serial" 6 (J.makespan s)

let test_disjoint_machines_parallel () =
  let t = J.create ~machines:3 [| [ op 0 4 ]; [ op 1 2 ]; [ op 2 3 ] |] in
  let s = J.greedy t in
  check_valid t s;
  Alcotest.(check int) "parallel" 4 (J.makespan s)

let test_greedy_meets_lb_on_flow_shop () =
  (* A 2-machine flow shop where greedy achieves near the LB. *)
  let t =
    J.create ~machines:2
      [| [ op 0 1; op 1 1 ]; [ op 0 1; op 1 1 ]; [ op 0 1; op 1 1 ] |]
  in
  let s = J.greedy t in
  check_valid t s;
  (* LB = 3; pipelining finishes in 4. *)
  Alcotest.(check bool) "close to LB" true (J.makespan s <= 4)

let test_with_delays_zero_feasible () =
  let t =
    J.create ~machines:2 [| [ op 0 2; op 1 2 ]; [ op 0 1; op 1 1 ] |]
  in
  let s = J.with_delays t ~delays:[| 0; 0 |] in
  check_valid t s

let test_with_delays_mismatch () =
  let t = J.create ~machines:1 [| [ op 0 1 ] |] in
  Alcotest.check_raises "length"
    (Invalid_argument "Jobshop.with_delays: delays length mismatch") (fun () ->
      ignore (J.with_delays t ~delays:[| 0; 1 |] : J.schedule))

let test_random_delay_feasible_and_sane () =
  let rng = Rng.create 3 in
  let t =
    J.create ~machines:2
      [| [ op 0 1; op 1 2 ]; [ op 1 1; op 0 2 ]; [ op 0 2; op 1 1 ] |]
  in
  let s, delays = J.random_delay rng t in
  check_valid t s;
  Alcotest.(check int) "delay per job" 3 (Array.length delays);
  Alcotest.(check bool) "at least LB" true (J.makespan s >= J.lower_bound t)

let test_derandomized_feasible () =
  let t =
    J.create ~machines:2
      [| [ op 0 2; op 1 2 ]; [ op 0 2; op 1 2 ]; [ op 1 2; op 0 2 ] |]
  in
  let s, _ = J.derandomized_delay t in
  check_valid t s

let test_validate_catches_conflicts () =
  let t = J.create ~machines:1 [| [ op 0 1 ]; [ op 0 1 ] |] in
  (* Hand-build a double booking via with_delays then damage it: easier to
     just check that the greedy schedule for this instance is serial. *)
  let s = J.greedy t in
  Alcotest.(check int) "greedy serialises" 2 (J.makespan s)

let random_shop seed ~machines ~jobs ~ops =
  let rng = Rng.create seed in
  J.create ~machines
    (Array.init jobs (fun _ ->
         List.init
           (1 + Rng.int rng ops)
           (fun _ -> op (Rng.int rng machines) (1 + Rng.int rng 3))))

let prop_greedy_always_feasible =
  QCheck.Test.make ~name:"greedy schedules are feasible" ~count:150
    QCheck.(triple small_int (int_range 1 5) (int_range 1 6))
    (fun (seed, machines, jobs) ->
      let t = random_shop seed ~machines ~jobs ~ops:4 in
      let s = J.greedy t in
      (match J.validate t s with Ok () -> true | Error _ -> false)
      && J.makespan s >= J.lower_bound t)

let prop_delay_schedules_feasible =
  QCheck.Test.make ~name:"delayed schedules are feasible" ~count:150
    QCheck.(triple small_int (int_range 1 4) (int_range 1 6))
    (fun (seed, machines, jobs) ->
      let t = random_shop seed ~machines ~jobs ~ops:4 in
      let rng = Rng.create (seed + 1) in
      let s, _ = J.random_delay rng ~tries:4 t in
      let sd, _ = J.derandomized_delay t in
      (match J.validate t s with Ok () -> true | Error _ -> false)
      && (match J.validate t sd with Ok () -> true | Error _ -> false))

let prop_greedy_progress_bound =
  (* Every step of list scheduling completes at least one unit (every
     unfinished job is a candidate on some machine), so the makespan never
     exceeds the total unit count; and it is at least the lower bound. *)
  QCheck.Test.make ~name:"greedy makespan within [LB, total units]" ~count:150
    QCheck.(triple small_int (int_range 1 5) (int_range 1 8))
    (fun (seed, machines, jobs) ->
      let t = random_shop seed ~machines ~jobs ~ops:4 in
      let total =
        List.fold_left
          (fun acc j ->
            List.fold_left (fun a o -> a + o.J.duration) acc (J.operations t j))
          0
          (List.init (J.job_count t) (fun j -> j))
      in
      let mk = J.makespan (J.greedy t) in
      mk >= J.lower_bound t && mk <= max 1 total)

let prop_derandomized_within_polylog =
  QCheck.Test.make ~name:"derandomized delay within generous polylog of LB"
    ~count:60
    QCheck.(pair small_int (int_range 2 8))
    (fun (seed, jobs) ->
      let t = random_shop seed ~machines:3 ~jobs ~ops:5 in
      let s, _ = J.derandomized_delay t in
      let lb = Float.of_int (J.lower_bound t) in
      let u = Float.of_int (J.makespan s) in
      u <= (8. *. lb *. (1. +. Float.log lb)) +. 8.)

let () =
  Alcotest.run "jobshop"
    [
      ( "model",
        [
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "C and D" `Quick test_congestion_dilation;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "single machine" `Quick test_single_machine_serial;
          Alcotest.test_case "disjoint machines" `Quick
            test_disjoint_machines_parallel;
          Alcotest.test_case "flow shop" `Quick test_greedy_meets_lb_on_flow_shop;
          Alcotest.test_case "zero delays" `Quick test_with_delays_zero_feasible;
          Alcotest.test_case "delays mismatch" `Quick test_with_delays_mismatch;
          Alcotest.test_case "random delay" `Quick
            test_random_delay_feasible_and_sane;
          Alcotest.test_case "derandomized" `Quick test_derandomized_feasible;
          Alcotest.test_case "conflict-free" `Quick test_validate_catches_conflicts;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_greedy_always_feasible;
          QCheck_alcotest.to_alcotest prop_delay_schedules_feasible;
          QCheck_alcotest.to_alcotest prop_greedy_progress_bound;
          QCheck_alcotest.to_alcotest prop_derandomized_within_polylog;
        ] );
    ]
