module Pseudo = Suu_core.Pseudo
module Oblivious = Suu_core.Oblivious
module Delay = Suu_algo.Delay
module Rng = Suu_prob.Rng

let mk_chain ~m ~machine ~job ~length =
  Pseudo.of_windows ~m ~length [ (machine, job, 0, length) ]

let test_flattened_length_matches_flatten () =
  let a = mk_chain ~m:2 ~machine:0 ~job:0 ~length:3 in
  let b = mk_chain ~m:2 ~machine:0 ~job:1 ~length:2 in
  let overlay = Pseudo.overlay [ a; b ] in
  Alcotest.(check int) "agree"
    (Oblivious.prefix_length (Pseudo.flatten overlay))
    (Delay.flattened_length overlay)

let test_overlay_with_delays () =
  let a = mk_chain ~m:1 ~machine:0 ~job:0 ~length:2 in
  let b = mk_chain ~m:1 ~machine:0 ~job:1 ~length:2 in
  let shifted = Delay.overlay_with_delays [ a; b ] [| 0; 2 |] in
  Alcotest.(check int) "sequential" 1 (Pseudo.max_congestion shifted);
  Alcotest.(check int) "length 4" 4 (Pseudo.length shifted)

let test_overlay_arity_mismatch () =
  let a = mk_chain ~m:1 ~machine:0 ~job:0 ~length:1 in
  Alcotest.check_raises "arity"
    (Invalid_argument "Delay.overlay_with_delays: arity mismatch") (fun () ->
      ignore (Delay.overlay_with_delays [ a ] [| 0; 1 |] : Pseudo.t))

let test_choose_beats_or_matches_zero_delay () =
  (* Two chains hammering the same machine: zero delay has congestion 2;
     the search must find something no worse than flattening that. *)
  let a = mk_chain ~m:1 ~machine:0 ~job:0 ~length:4 in
  let b = mk_chain ~m:1 ~machine:0 ~job:1 ~length:4 in
  let zero = Delay.flattened_length (Pseudo.overlay [ a; b ]) in
  let _, choice =
    Delay.choose (Rng.create 3) ~tries:16 ~ranges:[ 4 ] [ a; b ]
  in
  Alcotest.(check bool) "no worse than zero delay" true
    (choice.Delay.flattened_length <= zero)

let test_choose_zero_tries_range_zero () =
  let a = mk_chain ~m:2 ~machine:0 ~job:0 ~length:2 in
  let b = mk_chain ~m:2 ~machine:1 ~job:1 ~length:2 in
  let overlay, choice = Delay.choose (Rng.create 1) ~tries:1 ~ranges:[ 0 ] [ a; b ] in
  Alcotest.(check (array int)) "zero delays" [| 0; 0 |] choice.Delay.delays;
  Alcotest.(check int) "disjoint machines congestion 1" 1
    (Pseudo.max_congestion overlay)

let test_choose_empty_rejected () =
  Alcotest.check_raises "no chains" (Invalid_argument "Delay.choose: no chains")
    (fun () ->
      ignore (Delay.choose (Rng.create 1) ~tries:1 ~ranges:[ 1 ] [] : Pseudo.t * Delay.choice))

let test_auto_ranges () =
  let a = mk_chain ~m:1 ~machine:0 ~job:0 ~length:3 in
  let b = mk_chain ~m:1 ~machine:0 ~job:1 ~length:3 in
  let ranges = Delay.auto_ranges [ a; b ] in
  Alcotest.(check bool) "contains 0" true (List.mem 0 ranges);
  (* Π_max of the overlay: machine 0 carries 6 units. *)
  Alcotest.(check bool) "contains pi_max" true (List.mem 6 ranges)

let test_derandomized_separates_collisions () =
  (* Two identical chains on one machine: the greedy conditional-
     expectation placement must avoid all overlap (delay 0 and length). *)
  let a = mk_chain ~m:1 ~machine:0 ~job:0 ~length:3 in
  let b = mk_chain ~m:1 ~machine:0 ~job:1 ~length:3 in
  let overlay, choice = Delay.derandomized [ a; b ] in
  Alcotest.(check int) "congestion 1" 1 (Pseudo.max_congestion overlay);
  Alcotest.(check int) "no expansion" (Pseudo.length overlay)
    choice.Delay.flattened_length

let test_derandomized_deterministic () =
  let a = mk_chain ~m:2 ~machine:0 ~job:0 ~length:3 in
  let b = mk_chain ~m:2 ~machine:0 ~job:1 ~length:2 in
  let _, c1 = Delay.derandomized [ a; b ] in
  let _, c2 = Delay.derandomized [ a; b ] in
  Alcotest.(check (array int)) "same delays" c1.Delay.delays c2.Delay.delays

let test_derandomized_range_zero () =
  let a = mk_chain ~m:1 ~machine:0 ~job:0 ~length:2 in
  let b = mk_chain ~m:1 ~machine:0 ~job:1 ~length:2 in
  let _, choice = Delay.derandomized ~range:0 [ a; b ] in
  Alcotest.(check (array int)) "forced zero" [| 0; 0 |] choice.Delay.delays

let test_derandomized_rejects_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Delay.derandomized: no chains") (fun () ->
      ignore (Delay.derandomized [] : Pseudo.t * Delay.choice))

let prop_derandomized_beats_average =
  (* The conditional-expectation argument: the greedy flattened length is
     never worse than congestion-free-length + total collisions of the
     *average* random placement — we test the weaker, directly checkable
     statement that it never loses to the all-zero placement by more than
     the range allows, and that units are conserved. *)
  QCheck.Test.make ~name:"derandomized preserves units, valid choice" ~count:100
    QCheck.(pair small_int (int_range 1 5))
    (fun (seed, chains) ->
      let rng = Rng.create seed in
      let m = 2 in
      let pseudos =
        List.init chains (fun k ->
            mk_chain ~m ~machine:(Rng.int rng m) ~job:k
              ~length:(1 + Rng.int rng 5))
      in
      let total p = Array.fold_left ( + ) 0 (Pseudo.machine_loads p) in
      let before = List.fold_left (fun acc p -> acc + total p) 0 pseudos in
      let overlay, choice = Delay.derandomized pseudos in
      total overlay = before
      && Pseudo.max_congestion overlay = choice.Delay.congestion
      && Delay.flattened_length overlay = choice.Delay.flattened_length)

let prop_derandomized_no_worse_than_best_of_16 =
  (* Empirical quality gate: the deterministic placement should be in the
     same ballpark as a 16-try random search (allow 1.5x slack). *)
  QCheck.Test.make ~name:"derandomized within 1.5x of best-of-16" ~count:50
    QCheck.(pair small_int (int_range 2 6))
    (fun (seed, chains) ->
      let rng = Rng.create seed in
      let m = 2 in
      let pseudos =
        List.init chains (fun k ->
            mk_chain ~m ~machine:(Rng.int rng m) ~job:k
              ~length:(1 + Rng.int rng 6))
      in
      let _, der = Delay.derandomized pseudos in
      let _, rand =
        Delay.choose (Rng.split rng) ~tries:16
          ~ranges:(Delay.auto_ranges pseudos) pseudos
      in
      Float.of_int der.Delay.flattened_length
      <= 1.5 *. Float.of_int rand.Delay.flattened_length)

let prop_choice_congestion_consistent =
  QCheck.Test.make ~name:"reported congestion matches overlay" ~count:100
    QCheck.(pair small_int (int_range 1 5))
    (fun (seed, chains) ->
      let rng = Rng.create seed in
      let m = 2 in
      let pseudos =
        List.init chains (fun k ->
            mk_chain ~m ~machine:(Rng.int rng m) ~job:k
              ~length:(1 + Rng.int rng 5))
      in
      let overlay, choice =
        Delay.choose (Rng.split rng) ~tries:4 ~ranges:(Delay.auto_ranges pseudos)
          pseudos
      in
      Pseudo.max_congestion overlay = choice.Delay.congestion
      && Delay.flattened_length overlay = choice.Delay.flattened_length)

let prop_delays_never_lose_units =
  QCheck.Test.make ~name:"delaying preserves total units" ~count:100
    QCheck.(pair small_int (int_range 1 4))
    (fun (seed, chains) ->
      let rng = Rng.create seed in
      let m = 3 in
      let pseudos =
        List.init chains (fun k ->
            mk_chain ~m ~machine:(Rng.int rng m) ~job:k
              ~length:(1 + Rng.int rng 6))
      in
      let total p = Array.fold_left ( + ) 0 (Pseudo.machine_loads p) in
      let before = List.fold_left (fun acc p -> acc + total p) 0 pseudos in
      let overlay, _ =
        Delay.choose (Rng.split rng) ~tries:3 ~ranges:[ 5 ] pseudos
      in
      total overlay = before)

let () =
  Alcotest.run "delay"
    [
      ( "cases",
        [
          Alcotest.test_case "flattened length" `Quick
            test_flattened_length_matches_flatten;
          Alcotest.test_case "overlay with delays" `Quick test_overlay_with_delays;
          Alcotest.test_case "arity mismatch" `Quick test_overlay_arity_mismatch;
          Alcotest.test_case "beats zero delay" `Quick
            test_choose_beats_or_matches_zero_delay;
          Alcotest.test_case "zero range" `Quick test_choose_zero_tries_range_zero;
          Alcotest.test_case "empty rejected" `Quick test_choose_empty_rejected;
          Alcotest.test_case "auto ranges" `Quick test_auto_ranges;
        ] );
      ( "derandomized",
        [
          Alcotest.test_case "separates collisions" `Quick
            test_derandomized_separates_collisions;
          Alcotest.test_case "deterministic" `Quick
            test_derandomized_deterministic;
          Alcotest.test_case "range zero" `Quick test_derandomized_range_zero;
          Alcotest.test_case "empty rejected" `Quick
            test_derandomized_rejects_empty;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_choice_congestion_consistent;
          QCheck_alcotest.to_alcotest prop_delays_never_lose_units;
          QCheck_alcotest.to_alcotest prop_derandomized_beats_average;
          QCheck_alcotest.to_alcotest prop_derandomized_no_worse_than_best_of_16;
        ] );
    ]
