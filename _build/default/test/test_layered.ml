module Instance = Suu_core.Instance
module Layered = Suu_algo.Layered
module Pipeline = Suu_algo.Pipeline
module Oblivious = Suu_core.Oblivious
module Rng = Suu_prob.Rng

let uniform_inst seed ~n ~m dag =
  let rng = Rng.create seed in
  Instance.create
    ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.15 0.9)))
    ~dag

let test_levels_diamond () =
  let g = Suu_dag.Gen.diamond ~width:3 in
  (* Source, 3 middles, sink. *)
  Alcotest.(check (list (list int)))
    "levels" [ [ 0 ]; [ 1; 2; 3 ]; [ 4 ] ]
    (Layered.levels g)

let test_levels_independent () =
  Alcotest.(check (list (list int)))
    "one level" [ [ 0; 1; 2 ] ]
    (Layered.levels (Suu_dag.Dag.empty 3))

let test_levels_chain () =
  let g = Suu_dag.Gen.uniform_chains ~n:3 ~chains:1 in
  Alcotest.(check (list (list int)))
    "chain levels" [ [ 0 ]; [ 1 ]; [ 2 ] ]
    (Layered.levels g)

let test_levels_empty () =
  Alcotest.(check (list (list int))) "empty" [] (Layered.levels (Suu_dag.Dag.empty 0))

let test_levels_are_antichains () =
  let g = Suu_dag.Gen.random_dag (Rng.create 3) ~n:20 ~edge_prob:0.25 in
  let r = Suu_dag.Dag.reachable g in
  List.iter
    (fun level ->
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              if u <> v then
                Alcotest.(check bool) "antichain" false r.(u).(v))
            level)
        level)
    (Layered.levels g)

let test_build_diamond_accumass () =
  let inst = uniform_inst 1 ~n:5 ~m:3 (Suu_dag.Gen.diamond ~width:3) in
  let b = Layered.build inst in
  let horizon = Oblivious.prefix_length b.Pipeline.accumass in
  match
    Suu_core.Mass.precedence_respecting inst b.Pipeline.accumass ~target:0.5
      ~horizon:(horizon + 1)
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_execution_completes () =
  let dag = Suu_dag.Gen.random_dag (Rng.create 5) ~n:15 ~edge_prob:0.2 in
  let inst = uniform_inst 2 ~n:15 ~m:4 dag in
  let o =
    Suu_sim.Engine.run (Rng.create 7) inst (Layered.policy inst)
  in
  Alcotest.(check bool) "completed" true o.Suu_sim.Engine.completed

let test_solver_heuristic_dispatch () =
  let inst = uniform_inst 3 ~n:4 ~m:2 (Suu_dag.Gen.diamond ~width:2) in
  Alcotest.(check string) "named" "suu-layered"
    (Suu_algo.Solver.algorithm_name ~allow_heuristic:true inst);
  let policy = Suu_algo.Solver.solve ~allow_heuristic:true inst in
  Alcotest.(check string) "policy name" "suu-layered"
    policy.Suu_core.Policy.name

let test_blocks_count_equals_depth () =
  let dag = Suu_dag.Gen.layered (Rng.create 9) ~n:18 ~layers:4 ~edge_prob:0.5 in
  let inst = uniform_inst 4 ~n:18 ~m:3 dag in
  let b = Layered.build inst in
  Alcotest.(check int) "blocks = depth"
    (Suu_dag.Dag.longest_path dag)
    b.Pipeline.diagnostics.Pipeline.blocks

let prop_layered_correct_on_random_dags =
  QCheck.Test.make ~name:"layered accumass invariant on general dags"
    ~count:15
    QCheck.(pair small_int (int_range 2 14))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let dag = Suu_dag.Gen.random_dag (Rng.split rng) ~n ~edge_prob:0.25 in
      let inst = uniform_inst (seed + 1) ~n ~m:3 dag in
      let b = Layered.build inst in
      let horizon = Oblivious.prefix_length b.Pipeline.accumass in
      match
        Suu_core.Mass.precedence_respecting inst b.Pipeline.accumass
          ~target:0.5 ~horizon:(horizon + 1)
      with
      | Ok () -> true
      | Error _ -> false)

let () =
  Alcotest.run "layered"
    [
      ( "levels",
        [
          Alcotest.test_case "diamond" `Quick test_levels_diamond;
          Alcotest.test_case "independent" `Quick test_levels_independent;
          Alcotest.test_case "chain" `Quick test_levels_chain;
          Alcotest.test_case "empty" `Quick test_levels_empty;
          Alcotest.test_case "antichains" `Quick test_levels_are_antichains;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "diamond accumass" `Quick
            test_build_diamond_accumass;
          Alcotest.test_case "completes" `Quick test_execution_completes;
          Alcotest.test_case "solver dispatch" `Quick
            test_solver_heuristic_dispatch;
          Alcotest.test_case "blocks = depth" `Quick
            test_blocks_count_equals_depth;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_layered_correct_on_random_dags ] );
    ]
