module Instance = Suu_core.Instance
module Solver = Suu_algo.Solver
module Rng = Suu_prob.Rng

let inst_with_dag seed dag =
  let rng = Rng.create seed in
  let n = Suu_dag.Dag.n dag in
  Instance.create
    ~p:(Array.init 3 (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.2 0.9)))
    ~dag

let test_names () =
  let check dag expected =
    let inst = inst_with_dag 1 dag in
    Alcotest.(check string) "algorithm" expected (Solver.algorithm_name inst)
  in
  check (Suu_dag.Dag.empty 4) "lp-indep";
  check (Suu_dag.Gen.uniform_chains ~n:4 ~chains:2) "suu-c";
  check (Suu_dag.Gen.binary_out_tree ~n:5) "suu-trees";
  check
    (Suu_dag.Dag.create ~n:5 [ (0, 1); (2, 1); (1, 3); (1, 4) ])
    "suu-forest";
  check (Suu_dag.Gen.diamond ~width:2) "unsupported"

let test_adaptive_name () =
  let inst = inst_with_dag 2 (Suu_dag.Gen.diamond ~width:2) in
  Alcotest.(check string) "adaptive" "suu-i-alg"
    (Solver.algorithm_name ~kind:`Adaptive inst)

let test_oblivious_general_unsupported () =
  let inst = inst_with_dag 3 (Suu_dag.Gen.diamond ~width:2) in
  match Solver.solve ~kind:`Oblivious inst with
  | exception Solver.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let test_adaptive_general_works () =
  let inst = inst_with_dag 4 (Suu_dag.Gen.diamond ~width:3) in
  let policy = Solver.solve ~kind:`Adaptive inst in
  let o = Suu_sim.Engine.run (Rng.create 5) inst policy in
  Alcotest.(check bool) "completed" true o.Suu_sim.Engine.completed

let prop_dispatch_completes =
  QCheck.Test.make ~name:"dispatched policies complete" ~count:20
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let dag =
        match abs seed mod 4 with
        | 0 -> Suu_dag.Dag.empty n
        | 1 -> Suu_dag.Gen.chains (Rng.split rng) ~n ~chains:(1 + (n / 3))
        | 2 -> Suu_dag.Gen.out_forest (Rng.split rng) ~n ~trees:(min 2 n)
        | _ -> Suu_dag.Gen.polytree_forest (Rng.split rng) ~n ~trees:(min 2 n)
      in
      let inst = inst_with_dag (seed + 1) dag in
      let adaptive = Solver.solve ~kind:`Adaptive inst in
      let oblivious = Solver.solve ~kind:`Oblivious inst in
      (Suu_sim.Engine.run (Rng.split rng) inst adaptive).Suu_sim.Engine.completed
      && (Suu_sim.Engine.run (Rng.split rng) inst oblivious)
           .Suu_sim.Engine.completed)

let () =
  Alcotest.run "solver"
    [
      ( "dispatch",
        [
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "adaptive name" `Quick test_adaptive_name;
          Alcotest.test_case "general unsupported" `Quick
            test_oblivious_general_unsupported;
          Alcotest.test_case "adaptive general" `Quick test_adaptive_general_works;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_dispatch_completes ]);
    ]
