module Dag = Suu_dag.Dag
module Gen = Suu_dag.Gen
module Rng = Suu_prob.Rng

let test_create_basic () =
  let g = Dag.create ~n:4 [ (0, 1); (1, 2); (0, 3) ] in
  Alcotest.(check int) "n" 4 (Dag.n g);
  Alcotest.(check int) "edges" 3 (Dag.edge_count g);
  Alcotest.(check (list int)) "succs 0" [ 1; 3 ] (Dag.succs g 0);
  Alcotest.(check (list int)) "preds 2" [ 1 ] (Dag.preds g 2);
  Alcotest.(check bool) "has edge" true (Dag.has_edge g 0 1);
  Alcotest.(check bool) "no edge" false (Dag.has_edge g 1 0)

let test_duplicate_edges_collapsed () =
  let g = Dag.create ~n:2 [ (0, 1); (0, 1); (0, 1) ] in
  Alcotest.(check int) "edges" 1 (Dag.edge_count g)

let test_cycle_rejected () =
  Alcotest.check_raises "cycle" (Invalid_argument "Dag.create: graph contains a cycle")
    (fun () -> ignore (Dag.create ~n:3 [ (0, 1); (1, 2); (2, 0) ] : Dag.t))

let test_self_loop_rejected () =
  Alcotest.check_raises "self loop" (Invalid_argument "Dag.create: self-loop")
    (fun () -> ignore (Dag.create ~n:2 [ (1, 1) ] : Dag.t))

let test_out_of_range_rejected () =
  Alcotest.check_raises "range" (Invalid_argument "Dag.create: vertex out of range")
    (fun () -> ignore (Dag.create ~n:2 [ (0, 5) ] : Dag.t))

let test_empty () =
  let g = Dag.empty 5 in
  Alcotest.(check int) "edges" 0 (Dag.edge_count g);
  Alcotest.(check int) "width = n" 5 (Dag.width g);
  Alcotest.(check int) "longest path 1" 1 (Dag.longest_path g);
  Alcotest.(check (list int)) "all sources" [ 0; 1; 2; 3; 4 ] (Dag.sources g)

let test_zero_vertices () =
  let g = Dag.empty 0 in
  Alcotest.(check int) "longest path" 0 (Dag.longest_path g);
  Alcotest.(check int) "width" 0 (Dag.width g)

let test_topo_order_chain () =
  let g = Dag.create ~n:4 [ (3, 2); (2, 1); (1, 0) ] in
  Alcotest.(check (array int)) "topo" [| 3; 2; 1; 0 |] (Dag.topo_order g)

let is_topo_order g order =
  let pos = Array.make (Dag.n g) 0 in
  Array.iteri (fun k v -> pos.(v) <- k) order;
  List.for_all (fun (u, v) -> pos.(u) < pos.(v)) (Dag.edges g)

let test_longest_path_chain () =
  let g = Gen.uniform_chains ~n:7 ~chains:1 in
  Alcotest.(check int) "chain of 7" 7 (Dag.longest_path g)

let test_longest_path_diamond () =
  let g = Gen.diamond ~width:5 in
  Alcotest.(check int) "diamond" 3 (Dag.longest_path g)

let test_width_chain () =
  let g = Gen.uniform_chains ~n:6 ~chains:1 in
  Alcotest.(check int) "chain width 1" 1 (Dag.width g)

let test_width_two_chains () =
  let g = Gen.uniform_chains ~n:6 ~chains:2 in
  Alcotest.(check int) "two chains width 2" 2 (Dag.width g)

let test_width_diamond () =
  let g = Gen.diamond ~width:4 in
  Alcotest.(check int) "diamond width" 4 (Dag.width g)

let test_reachable () =
  let g = Dag.create ~n:4 [ (0, 1); (1, 2) ] in
  let r = Dag.reachable g in
  Alcotest.(check bool) "0 reaches 2" true r.(0).(2);
  Alcotest.(check bool) "0 not reach 3" false r.(0).(3);
  Alcotest.(check bool) "2 not reach 0" false r.(2).(0);
  Alcotest.(check bool) "not self" false r.(0).(0)

let test_counts_on_tree () =
  (* 0 -> 1, 0 -> 2, 1 -> 3 *)
  let g = Dag.create ~n:4 [ (0, 1); (0, 2); (1, 3) ] in
  Alcotest.(check (array int)) "descendants" [| 4; 2; 1; 1 |]
    (Dag.descendant_counts g);
  Alcotest.(check (array int)) "ancestors" [| 1; 2; 2; 3 |]
    (Dag.ancestor_counts g)

let test_underlying_forest () =
  Alcotest.(check bool) "tree" true
    (Dag.underlying_forest (Dag.create ~n:3 [ (0, 1); (0, 2) ]));
  Alcotest.(check bool) "diamond is not" false
    (Dag.underlying_forest (Gen.diamond ~width:2));
  Alcotest.(check bool) "empty is" true (Dag.underlying_forest (Dag.empty 4))

let test_sinks () =
  let g = Dag.create ~n:3 [ (0, 1) ] in
  Alcotest.(check (list int)) "sinks" [ 1; 2 ] (Dag.sinks g)

let test_layered_generator () =
  let g = Gen.layered (Rng.create 7) ~n:20 ~layers:4 ~edge_prob:0.5 in
  Alcotest.(check int) "n" 20 (Dag.n g);
  (* Edges connect consecutive layers only, so the longest path is at most
     the layer count. *)
  Alcotest.(check bool) "depth <= layers" true (Dag.longest_path g <= 4)

let test_layered_full_density () =
  let g = Gen.layered (Rng.create 1) ~n:6 ~layers:2 ~edge_prob:1.0 in
  (* Every cross-layer pair is an edge. *)
  let l1 = List.length (Dag.sources g) in
  Alcotest.(check int) "complete bipartite" (l1 * (6 - l1)) (Dag.edge_count g)

let test_layered_bad_args () =
  Alcotest.check_raises "layers > n"
    (Invalid_argument "Gen.layered: layer count must be within [1, n]")
    (fun () ->
      ignore (Gen.layered (Rng.create 1) ~n:2 ~layers:5 ~edge_prob:0.5 : Dag.t))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan k =
    k + nn <= nh && (String.sub haystack k nn = needle || scan (k + 1))
  in
  nn = 0 || scan 0

let test_pp_smoke () =
  let g = Dag.create ~n:3 [ (0, 2) ] in
  let s = Format.asprintf "%a" Dag.pp g in
  Alcotest.(check bool) "mentions edge" true (contains s "0 -> 2")

let random_dag_gen =
  QCheck.Gen.(
    pair (int_range 1 40) (pair int (float_bound_inclusive 0.5))
    |> map (fun (n, (seed, prob)) ->
           Gen.random_dag (Rng.create seed) ~n ~edge_prob:prob))

let arbitrary_dag = QCheck.make ~print:(fun g -> Format.asprintf "%a" Dag.pp g) random_dag_gen

let prop_topo_valid =
  QCheck.Test.make ~name:"topo_order respects edges" ~count:200 arbitrary_dag
    (fun g -> is_topo_order g (Dag.topo_order g))

let prop_width_antichain =
  QCheck.Test.make ~name:"width >= 1 and <= n" ~count:200 arbitrary_dag
    (fun g ->
      let w = Dag.width g in
      Dag.n g = 0 || (w >= 1 && w <= Dag.n g))

let prop_longest_path_vs_width =
  (* Mirsky/Dilworth-flavoured sanity: longest path * width >= n. *)
  QCheck.Test.make ~name:"longest_path * width >= n" ~count:200 arbitrary_dag
    (fun g -> Dag.longest_path g * Dag.width g >= Dag.n g)

let prop_edges_roundtrip =
  QCheck.Test.make ~name:"edges consistent with succs/preds" ~count:200
    arbitrary_dag (fun g ->
      List.for_all
        (fun (u, v) -> List.mem v (Dag.succs g u) && List.mem u (Dag.preds g v))
        (Dag.edges g)
      && Dag.edge_count g = List.length (Dag.edges g))

let prop_reachable_transitive =
  QCheck.Test.make ~name:"reachability is transitive" ~count:100
    (QCheck.make (QCheck.Gen.map2 (fun g () -> g) random_dag_gen QCheck.Gen.unit))
    (fun g ->
      let r = Dag.reachable g in
      let n = Dag.n g in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          for c = 0 to n - 1 do
            if r.(a).(b) && r.(b).(c) && not r.(a).(c) then ok := false
          done
        done
      done;
      !ok)

let () =
  Alcotest.run "dag"
    [
      ( "construction",
        [
          Alcotest.test_case "basic" `Quick test_create_basic;
          Alcotest.test_case "duplicates collapsed" `Quick
            test_duplicate_edges_collapsed;
          Alcotest.test_case "cycle rejected" `Quick test_cycle_rejected;
          Alcotest.test_case "self-loop rejected" `Quick test_self_loop_rejected;
          Alcotest.test_case "range checked" `Quick test_out_of_range_rejected;
          Alcotest.test_case "empty dag" `Quick test_empty;
          Alcotest.test_case "zero vertices" `Quick test_zero_vertices;
        ] );
      ( "queries",
        [
          Alcotest.test_case "topo of chain" `Quick test_topo_order_chain;
          Alcotest.test_case "longest path chain" `Quick test_longest_path_chain;
          Alcotest.test_case "longest path diamond" `Quick
            test_longest_path_diamond;
          Alcotest.test_case "width chain" `Quick test_width_chain;
          Alcotest.test_case "width two chains" `Quick test_width_two_chains;
          Alcotest.test_case "width diamond" `Quick test_width_diamond;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "descendant/ancestor counts" `Quick
            test_counts_on_tree;
          Alcotest.test_case "underlying forest" `Quick test_underlying_forest;
          Alcotest.test_case "sinks" `Quick test_sinks;
          Alcotest.test_case "layered generator" `Quick test_layered_generator;
          Alcotest.test_case "layered density" `Quick test_layered_full_density;
          Alcotest.test_case "layered args" `Quick test_layered_bad_args;
          Alcotest.test_case "pp" `Quick test_pp_smoke;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_topo_valid;
          QCheck_alcotest.to_alcotest prop_width_antichain;
          QCheck_alcotest.to_alcotest prop_longest_path_vs_width;
          QCheck_alcotest.to_alcotest prop_edges_roundtrip;
          QCheck_alcotest.to_alcotest prop_reachable_transitive;
        ] );
    ]
