module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious
module Msm_ext = Suu_algo.Msm_ext
module Rng = Suu_prob.Rng

let all_jobs n = Array.make n true

let random_inst seed m n =
  let rng = Rng.create seed in
  Instance.independent
    ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.05 0.95)))

let test_capacity_respected () =
  let inst = random_inst 1 3 5 in
  let r = Msm_ext.allocate inst ~jobs:(all_jobs 5) ~t:4 in
  for i = 0 to 2 do
    let load = Array.fold_left ( + ) 0 r.Msm_ext.x.(i) in
    Alcotest.(check bool) "load <= t" true (load <= 4)
  done

let test_mass_field_consistent () =
  let inst = random_inst 2 2 4 in
  let r = Msm_ext.allocate inst ~jobs:(all_jobs 4) ~t:6 in
  for j = 0 to 3 do
    let expected = ref 0. in
    for i = 0 to 1 do
      expected :=
        !expected
        +. (Float.of_int r.Msm_ext.x.(i).(j)
           *. Instance.prob inst ~machine:i ~job:j)
    done;
    Alcotest.(check (float 1e-9)) "mass matches x" !expected r.Msm_ext.mass.(j)
  done

let test_mass_capped_near_one () =
  let inst = random_inst 3 4 3 in
  let r = Msm_ext.allocate inst ~jobs:(all_jobs 3) ~t:100 in
  Array.iteri
    (fun j mj ->
      ignore j;
      (* Greedy stops adding once mass would exceed 1, so mass < 1 + max p. *)
      Alcotest.(check bool) "mass < 2" true (mj < 2.))
    r.Msm_ext.mass

let test_t_zero () =
  let inst = random_inst 4 2 3 in
  let r = Msm_ext.allocate inst ~jobs:(all_jobs 3) ~t:0 in
  Alcotest.(check (float 0.)) "no mass" 0. (Msm_ext.total_mass r)

let test_t_one_matches_msm_shape () =
  (* With t = 1 the allocation is a single-step assignment; its total mass
     can differ from MSM-ALG's by tie-breaking but must also be a valid
     1/3 approximation; here we only check the structural part. *)
  let inst = random_inst 5 3 4 in
  let r = Msm_ext.allocate inst ~jobs:(all_jobs 4) ~t:1 in
  for i = 0 to 2 do
    Alcotest.(check bool) "at most one step" true
      (Array.fold_left ( + ) 0 r.Msm_ext.x.(i) <= 1)
  done

let test_restricted_jobs_untouched () =
  let inst = random_inst 6 2 4 in
  let jobs = [| true; false; true; false |] in
  let r = Msm_ext.allocate inst ~jobs ~t:5 in
  for i = 0 to 1 do
    Alcotest.(check int) "job1 untouched" 0 r.Msm_ext.x.(i).(1);
    Alcotest.(check int) "job3 untouched" 0 r.Msm_ext.x.(i).(3)
  done

let test_schedule_packs_allocation () =
  let inst = random_inst 7 2 3 in
  let r = Msm_ext.allocate inst ~jobs:(all_jobs 3) ~t:5 in
  let sched = Msm_ext.to_schedule inst r in
  (* Count (machine, job) occurrences in the schedule. *)
  let counts = Array.make_matrix 2 3 0 in
  for t = 0 to Oblivious.prefix_length sched - 1 do
    Array.iteri
      (fun i j -> if j >= 0 then counts.(i).(j) <- counts.(i).(j) + 1)
      (Oblivious.step sched t)
  done;
  Alcotest.(check bool) "counts match x" true (counts = r.Msm_ext.x)

let test_negative_t_rejected () =
  let inst = random_inst 8 1 1 in
  Alcotest.check_raises "negative"
    (Invalid_argument "Msm_ext.allocate: negative length") (fun () ->
      ignore (Msm_ext.allocate inst ~jobs:(all_jobs 1) ~t:(-1) : Msm_ext.result))

let test_runtime_independent_of_t () =
  (* The allocation must be computable for astronomically large t (the
     paper notes the running time is independent of t). *)
  let inst = random_inst 9 3 5 in
  let r = Msm_ext.allocate inst ~jobs:(all_jobs 5) ~t:1_000_000_000 in
  Alcotest.(check bool) "total mass near n" true (Msm_ext.total_mass r > 4.)

(* Greedy total mass is NOT monotone in t (larger capacity lets early
   high-probability pairs crowd out better combinations — confirmed by
   counterexample search). What Lemma 3.4 does give: greedy(t') for
   t' >= t is within 1/3 of the optimum at t', which is >= optimum at t
   >= greedy(t). So greedy can lose at most the 1/3 factor by growing t. *)
let prop_total_mass_near_monotone_in_t =
  QCheck.Test.make ~name:"greedy(t+k) >= greedy(t)/3" ~count:150
    QCheck.(triple small_int (int_range 1 4) (int_range 0 10))
    (fun (seed, m, t) ->
      let inst = random_inst seed m 5 in
      let jobs = all_jobs 5 in
      let a = Msm_ext.total_mass (Msm_ext.allocate inst ~jobs ~t) in
      let b = Msm_ext.total_mass (Msm_ext.allocate inst ~jobs ~t:(t + 2)) in
      b >= (a /. 3.) -. 1e-9)

let prop_capacity_invariant =
  QCheck.Test.make ~name:"machine capacity invariant" ~count:200
    QCheck.(triple small_int (int_range 1 5) (int_range 0 12))
    (fun (seed, m, t) ->
      let inst = random_inst seed m 6 in
      let r = Msm_ext.allocate inst ~jobs:(all_jobs 6) ~t in
      Array.for_all (fun row -> Array.fold_left ( + ) 0 row <= t) r.Msm_ext.x)

(* Lemma 3.4's guarantee against a genuine brute force: enumerate every
   integral allocation with row sums <= t (tiny m, n, t only). *)
let brute_force_opt inst ~n ~m ~t =
  let x = Array.make_matrix m n 0 in
  let best = ref 0. in
  let value () =
    let total = ref 0. in
    for j = 0 to n - 1 do
      let mass = ref 0. in
      for i = 0 to m - 1 do
        mass :=
          !mass
          +. (Float.of_int x.(i).(j) *. Instance.prob inst ~machine:i ~job:j)
      done;
      total := !total +. Float.min 1. !mass
    done;
    !total
  in
  let rec fill i j remaining =
    if i = m then best := Float.max !best (value ())
    else if j = n then fill (i + 1) 0 t
    else
      for steps = 0 to remaining do
        x.(i).(j) <- steps;
        fill i (j + 1) (remaining - steps);
        x.(i).(j) <- 0
      done
  in
  fill 0 0 t;
  !best

let prop_one_third_of_brute_force =
  QCheck.Test.make ~name:"MSM-E-ALG within 1/3 of brute force" ~count:100
    QCheck.(
      quad small_int (int_range 1 2) (int_range 1 3) (int_range 0 3))
    (fun (seed, m, n, t) ->
      let inst = random_inst seed m n in
      let greedy = Msm_ext.total_mass (Msm_ext.allocate inst ~jobs:(all_jobs n) ~t) in
      let opt = brute_force_opt inst ~n ~m ~t in
      greedy >= (opt /. 3.) -. 1e-9)

let () =
  Alcotest.run "msm_ext"
    [
      ( "cases",
        [
          Alcotest.test_case "capacity" `Quick test_capacity_respected;
          Alcotest.test_case "mass consistent" `Quick test_mass_field_consistent;
          Alcotest.test_case "mass capped" `Quick test_mass_capped_near_one;
          Alcotest.test_case "t = 0" `Quick test_t_zero;
          Alcotest.test_case "t = 1 shape" `Quick test_t_one_matches_msm_shape;
          Alcotest.test_case "restricted jobs" `Quick
            test_restricted_jobs_untouched;
          Alcotest.test_case "schedule packing" `Quick
            test_schedule_packs_allocation;
          Alcotest.test_case "negative t" `Quick test_negative_t_rejected;
          Alcotest.test_case "huge t" `Quick test_runtime_independent_of_t;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_total_mass_near_monotone_in_t;
          QCheck_alcotest.to_alcotest prop_capacity_invariant;
          QCheck_alcotest.to_alcotest prop_one_third_of_brute_force;
        ] );
    ]
