module Lp = Suu_lp.Lp
module Simplex = Suu_lp.Simplex

let solve_expect_opt p =
  match Simplex.solve p with
  | Simplex.Optimal { objective; solution } -> (objective, solution)
  | Simplex.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"

let feq ?(eps = 1e-6) = Alcotest.(check (float eps)) "value"

let test_textbook_max () =
  (* max 3x + 5y; x <= 4; 2y <= 12; 3x + 2y <= 18 -> 36 at (2, 6). *)
  let b = Lp.builder () in
  let x = Lp.add_var b ~obj:3. "x" in
  let y = Lp.add_var b ~obj:5. "y" in
  Lp.add_le b [ (x, 1.) ] 4.;
  Lp.add_le b [ (y, 2.) ] 12.;
  Lp.add_le b [ (x, 3.); (y, 2.) ] 18.;
  let obj, sol = solve_expect_opt (Lp.build b `Maximize) in
  feq 36. obj;
  feq 2. sol.(x);
  feq 6. sol.(y)

let test_textbook_min () =
  (* min 2x + 3y; x + y >= 4; x >= 1 -> 9 at (4, 0)? No: coefficients...
     2x+3y with x+y>=4: cheapest is all x: x=4, y=0, cost 8. With x<=3
     constraint: x=3, y=1, cost 9. *)
  let b = Lp.builder () in
  let x = Lp.add_var b ~obj:2. "x" in
  let y = Lp.add_var b ~obj:3. "y" in
  Lp.add_ge b [ (x, 1.); (y, 1.) ] 4.;
  Lp.add_le b [ (x, 1.) ] 3.;
  let obj, sol = solve_expect_opt (Lp.build b `Minimize) in
  feq 9. obj;
  feq 3. sol.(x);
  feq 1. sol.(y)

let test_equality_constraint () =
  (* min x + y s.t. x + 2y = 4, x - y = 1 -> x = 2, y = 1. *)
  let b = Lp.builder () in
  let x = Lp.add_var b ~obj:1. "x" in
  let y = Lp.add_var b ~obj:1. "y" in
  Lp.add_eq b [ (x, 1.); (y, 2.) ] 4.;
  Lp.add_eq b [ (x, 1.); (y, -1.) ] 1.;
  let obj, sol = solve_expect_opt (Lp.build b `Minimize) in
  feq 3. obj;
  feq 2. sol.(x);
  feq 1. sol.(y)

let test_negative_rhs () =
  (* x - y <= -2 with x, y >= 0: minimize y -> y = 2, x = 0. *)
  let b = Lp.builder () in
  let x = Lp.add_var b "x" in
  let y = Lp.add_var b ~obj:1. "y" in
  Lp.add_le b [ (x, 1.); (y, -1.) ] (-2.);
  let obj, sol = solve_expect_opt (Lp.build b `Minimize) in
  feq 2. obj;
  feq 0. sol.(x);
  feq 2. sol.(y)

let test_infeasible () =
  let b = Lp.builder () in
  let x = Lp.add_var b ~obj:1. "x" in
  Lp.add_ge b [ (x, 1.) ] 5.;
  Lp.add_le b [ (x, 1.) ] 3.;
  match Simplex.solve (Lp.build b `Minimize) with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  let b = Lp.builder () in
  let x = Lp.add_var b ~obj:1. "x" in
  Lp.add_ge b [ (x, 1.) ] 1.;
  match Simplex.solve (Lp.build b `Maximize) with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_degenerate () =
  (* Degenerate vertex: multiple constraints meet at the optimum. *)
  let b = Lp.builder () in
  let x = Lp.add_var b ~obj:1. "x" in
  let y = Lp.add_var b ~obj:1. "y" in
  Lp.add_le b [ (x, 1.); (y, 1.) ] 1.;
  Lp.add_le b [ (x, 1.) ] 1.;
  Lp.add_le b [ (y, 1.) ] 1.;
  Lp.add_le b [ (x, 2.); (y, 1.) ] 2.;
  let obj, _ = solve_expect_opt (Lp.build b `Maximize) in
  feq 1. obj

let test_zero_objective () =
  (* Pure feasibility: any point in the region works, objective 0. *)
  let b = Lp.builder () in
  let x = Lp.add_var b "x" in
  Lp.add_ge b [ (x, 1.) ] 2.;
  Lp.add_le b [ (x, 1.) ] 5.;
  let obj, sol = solve_expect_opt (Lp.build b `Minimize) in
  feq 0. obj;
  Alcotest.(check bool) "x in [2,5]" true (sol.(x) >= 2. -. 1e-9 && sol.(x) <= 5. +. 1e-9)

let test_klee_minty_small () =
  (* 3-dimensional Klee–Minty cube: stresses pivoting; optimum 125. *)
  let b = Lp.builder () in
  let x1 = Lp.add_var b ~obj:4. "x1" in
  let x2 = Lp.add_var b ~obj:2. "x2" in
  let x3 = Lp.add_var b ~obj:1. "x3" in
  Lp.add_le b [ (x1, 1.) ] 5.;
  Lp.add_le b [ (x1, 4.); (x2, 1.) ] 25.;
  Lp.add_le b [ (x1, 8.); (x2, 4.); (x3, 1.) ] 125.;
  let obj, _ = solve_expect_opt (Lp.build b `Maximize) in
  feq 125. obj

let test_solution_feasibility_api () =
  let b = Lp.builder () in
  let x = Lp.add_var b ~obj:1. "x" in
  let y = Lp.add_var b ~obj:2. "y" in
  Lp.add_le b [ (x, 1.); (y, 1.) ] 10.;
  Lp.add_ge b [ (x, 1.) ] 2.;
  let p = Lp.build b `Maximize in
  let _, sol = solve_expect_opt p in
  Alcotest.(check bool) "solver point feasible" true (Lp.feasible p sol);
  Alcotest.(check bool) "infeasible point detected" false
    (Lp.feasible p [| 0.; 0. |])

(* Random LPs: minimize c·x over {Ax <= b, x >= 0} with b >= 0 (always
   feasible at x = 0, always bounded below by 0 when c >= 0). The optimum
   must be <= the objective at any random feasible point. *)
let prop_optimal_dominates_feasible_points =
  QCheck.Test.make ~name:"optimum <= any feasible point (min)" ~count:200
    QCheck.(pair small_int (pair (int_range 1 6) (int_range 1 6)))
    (fun (seed, (nvars, nrows)) ->
      let rng = Suu_prob.Rng.create seed in
      let b = Lp.builder () in
      let vars =
        List.init nvars (fun k ->
            Lp.add_var b
              ~obj:(Suu_prob.Rng.uniform rng 0.1 2.)
              (Printf.sprintf "v%d" k))
      in
      let rows =
        List.init nrows (fun _ ->
            let coeffs =
              List.filter_map
                (fun v ->
                  if Suu_prob.Rng.float rng < 0.7 then
                    Some (v, Suu_prob.Rng.uniform rng (-1.) 2.)
                  else None)
                vars
            in
            let rhs = Suu_prob.Rng.uniform rng 0. 5. in
            Lp.add_le b coeffs rhs;
            (coeffs, rhs))
      in
      let p = Lp.build b `Minimize in
      match Simplex.solve p with
      | Simplex.Unbounded -> false (* impossible: objective >= 0 *)
      | Simplex.Infeasible -> false (* impossible: x = 0 feasible *)
      | Simplex.Optimal { objective; solution } ->
          (* x = 0 is feasible with objective 0 >= optimum; and the
             returned solution must be feasible. *)
          ignore rows;
          Lp.feasible p solution && objective <= 1e-7 && objective >= -1e-7)

let prop_solution_is_feasible =
  QCheck.Test.make ~name:"returned solutions are feasible" ~count:200
    QCheck.(pair small_int (pair (int_range 1 8) (int_range 1 8)))
    (fun (seed, (nvars, nrows)) ->
      let rng = Suu_prob.Rng.create seed in
      let b = Lp.builder () in
      let vars =
        List.init nvars (fun k ->
            Lp.add_var b
              ~obj:(Suu_prob.Rng.uniform rng (-1.) 1.)
              (Printf.sprintf "v%d" k))
      in
      (* Box constraints keep it bounded; a few random >= rows may make it
         infeasible, which is also an acceptable outcome. *)
      List.iter (fun v -> Lp.add_le b [ (v, 1.) ] (Suu_prob.Rng.uniform rng 1. 5.)) vars;
      for _ = 1 to nrows do
        let coeffs =
          List.filter_map
            (fun v ->
              if Suu_prob.Rng.float rng < 0.5 then
                Some (v, Suu_prob.Rng.uniform rng 0. 2.)
              else None)
            vars
        in
        if coeffs <> [] then Lp.add_ge b coeffs (Suu_prob.Rng.uniform rng 0. 3.)
      done;
      let p = Lp.build b `Maximize in
      match Simplex.solve p with
      | Simplex.Optimal { solution; _ } -> Lp.feasible p solution
      | Simplex.Infeasible -> true
      | Simplex.Unbounded -> false)

(* --- the Lp model layer itself --- *)

let test_lp_eval_row () =
  let row = { Lp.coeffs = [ (0, 2.); (2, -1.) ]; rel = Lp.Le; rhs = 5. } in
  Alcotest.(check (float 1e-12)) "2x0 - x2" 1. (Lp.eval_row row [| 1.; 9.; 1. |])

let test_lp_feasible_checks () =
  let b = Lp.builder () in
  let x = Lp.add_var b ~obj:1. "x" in
  Lp.add_ge b [ (x, 1.) ] 1.;
  Lp.add_eq b [ (x, 2.) ] 4.;
  let p = Lp.build b `Minimize in
  Alcotest.(check bool) "x=2 feasible" true (Lp.feasible p [| 2. |]);
  Alcotest.(check bool) "x=0.5 violates eq" false (Lp.feasible p [| 0.5 |]);
  Alcotest.(check bool) "negative rejected" false (Lp.feasible p [| -1. |]);
  Alcotest.(check bool) "wrong arity" false (Lp.feasible p [| 1.; 1. |])

let test_lp_builder_bookkeeping () =
  let b = Lp.builder () in
  Alcotest.(check int) "empty" 0 (Lp.var_count b);
  let _ = Lp.add_var b "a" in
  let _ = Lp.add_var b ~obj:3. "b" in
  Alcotest.(check int) "two vars" 2 (Lp.var_count b);
  Alcotest.check_raises "bad row" (Invalid_argument "Lp: variable out of range")
    (fun () -> Lp.add_le b [ (7, 1.) ] 0.)

let test_lp_pp_smoke () =
  let b = Lp.builder () in
  let x = Lp.add_var b ~obj:1. "speed" in
  Lp.add_le b [ (x, 2.) ] 3.;
  let s = Format.asprintf "%a" Lp.pp (Lp.build b `Maximize) in
  Alcotest.(check bool) "mentions var" true
    (String.length s > 0
    &&
    let rec contains k =
      k + 5 <= String.length s && (String.sub s k 5 = "speed" || contains (k + 1))
    in
    contains 0)

let () =
  Alcotest.run "simplex"
    [
      ( "cases",
        [
          Alcotest.test_case "textbook max" `Quick test_textbook_max;
          Alcotest.test_case "textbook min" `Quick test_textbook_min;
          Alcotest.test_case "equality" `Quick test_equality_constraint;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          Alcotest.test_case "zero objective" `Quick test_zero_objective;
          Alcotest.test_case "klee-minty 3d" `Quick test_klee_minty_small;
          Alcotest.test_case "feasibility api" `Quick
            test_solution_feasibility_api;
        ] );
      ( "model",
        [
          Alcotest.test_case "eval_row" `Quick test_lp_eval_row;
          Alcotest.test_case "feasible" `Quick test_lp_feasible_checks;
          Alcotest.test_case "builder" `Quick test_lp_builder_bookkeeping;
          Alcotest.test_case "pp" `Quick test_lp_pp_smoke;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_optimal_dominates_feasible_points;
          QCheck_alcotest.to_alcotest prop_solution_is_feasible;
        ] );
    ]
