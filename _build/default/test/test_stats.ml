module Stats = Suu_prob.Stats

let feq ?(eps = 1e-9) a b =
  Alcotest.(check (float eps)) "float" a b

let test_summarize_known () =
  let s = Stats.summarize [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  feq 5. s.Stats.mean;
  feq ~eps:1e-6 4.571428571 s.Stats.variance;
  feq 2. s.Stats.min;
  feq 9. s.Stats.max;
  Alcotest.(check int) "count" 8 s.Stats.count

let test_summarize_single () =
  let s = Stats.summarize [| 3.5 |] in
  feq 3.5 s.Stats.mean;
  feq 0. s.Stats.variance;
  feq 0. s.Stats.sem;
  feq 0. s.Stats.ci95

let test_summarize_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.summarize: empty sample") (fun () ->
      ignore (Stats.summarize [||] : Stats.summary))

let test_mean_constant () = feq 7. (Stats.mean [| 7.; 7.; 7. |])

let test_quantile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  feq 1. (Stats.quantile xs 0.);
  feq 3. (Stats.quantile xs 0.5);
  feq 5. (Stats.quantile xs 1.);
  feq 2. (Stats.quantile xs 0.25);
  feq 3. (Stats.median xs)

let test_quantile_interpolation () =
  let xs = [| 0.; 10. |] in
  feq 2.5 (Stats.quantile xs 0.25)

let test_quantile_unsorted_input () =
  let xs = [| 5.; 1.; 3.; 2.; 4. |] in
  feq 3. (Stats.median xs);
  (* input not mutated *)
  Alcotest.(check (float 0.)) "unchanged" 5. xs.(0)

let test_quantile_bad_q () =
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Stats.quantile: q outside [0,1]") (fun () ->
      ignore (Stats.quantile [| 1. |] 1.5 : float))

let test_linear_fit_exact () =
  let pts = [| (0., 1.); (1., 3.); (2., 5.) |] in
  let slope, intercept = Stats.linear_fit pts in
  feq 2. slope;
  feq 1. intercept;
  feq 1. (Stats.r_squared pts (slope, intercept))

let test_linear_fit_vertical () =
  Alcotest.check_raises "all x equal"
    (Invalid_argument "Stats.linear_fit: all x values equal") (fun () ->
      ignore (Stats.linear_fit [| (1., 1.); (1., 2.) |] : float * float))

let test_r_squared_poor_fit () =
  let pts = [| (0., 0.); (1., 1.); (2., 0.); (3., 1.) |] in
  let fit = Stats.linear_fit pts in
  let r2 = Stats.r_squared pts fit in
  Alcotest.(check bool) "r2 in [0,1]" true (r2 >= 0. && r2 <= 1.)

let naive_variance xs =
  let n = Array.length xs in
  let mean = Array.fold_left ( +. ) 0. xs /. Float.of_int n in
  Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
  /. Float.of_int (n - 1)

let prop_welford_matches_naive =
  QCheck.Test.make ~name:"welford variance = naive variance" ~count:300
    QCheck.(list_of_size Gen.(2 -- 40) (float_bound_exclusive 1000.))
    (fun l ->
      let xs = Array.of_list l in
      let s = Stats.summarize xs in
      Float.abs (s.Stats.variance -. naive_variance xs)
      <= 1e-6 *. Float.max 1. (Float.abs s.Stats.variance))

let prop_minmax =
  QCheck.Test.make ~name:"min <= mean <= max" ~count:300
    QCheck.(list_of_size Gen.(1 -- 40) (float_bound_exclusive 100.))
    (fun l ->
      let s = Stats.summarize (Array.of_list l) in
      s.Stats.min <= s.Stats.mean +. 1e-9 && s.Stats.mean <= s.Stats.max +. 1e-9)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone in q" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 30) (float_bound_exclusive 100.))
        (pair (float_bound_inclusive 1.) (float_bound_inclusive 1.)))
    (fun (l, (q1, q2)) ->
      let xs = Array.of_list l in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Stats.quantile xs lo <= Stats.quantile xs hi +. 1e-9)

let () =
  Alcotest.run "stats"
    [
      ( "summaries",
        [
          Alcotest.test_case "known sample" `Quick test_summarize_known;
          Alcotest.test_case "single value" `Quick test_summarize_single;
          Alcotest.test_case "empty rejected" `Quick test_summarize_empty;
          Alcotest.test_case "constant mean" `Quick test_mean_constant;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "known quantiles" `Quick test_quantile;
          Alcotest.test_case "interpolation" `Quick test_quantile_interpolation;
          Alcotest.test_case "unsorted input" `Quick test_quantile_unsorted_input;
          Alcotest.test_case "bad q" `Quick test_quantile_bad_q;
        ] );
      ( "fits",
        [
          Alcotest.test_case "exact line" `Quick test_linear_fit_exact;
          Alcotest.test_case "vertical rejected" `Quick test_linear_fit_vertical;
          Alcotest.test_case "r-squared range" `Quick test_r_squared_poor_fit;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_welford_matches_naive;
          QCheck_alcotest.to_alcotest prop_minmax;
          QCheck_alcotest.to_alcotest prop_quantile_monotone;
        ] );
    ]
