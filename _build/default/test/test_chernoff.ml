module C = Suu_prob.Chernoff
module Rng = Suu_prob.Rng

let test_multiplicative_upper_known () =
  (* mu = 10, delta = 1: bound (e/4)^10 ~ 0.0213. *)
  let b = C.multiplicative_upper ~mu:10. ~delta:1. in
  Alcotest.(check bool) "near (e/4)^10" true
    (Float.abs (b -. ((Float.exp 1. /. 4.) ** 10.)) < 1e-9)

let test_multiplicative_upper_monotone_mu () =
  let a = C.multiplicative_upper ~mu:5. ~delta:0.5 in
  let b = C.multiplicative_upper ~mu:50. ~delta:0.5 in
  Alcotest.(check bool) "tighter with larger mu" true (b < a)

let test_multiplicative_lower () =
  let b = C.multiplicative_lower ~mu:8. ~delta:0.5 in
  Alcotest.(check (float 1e-12)) "e^{-1}" (Float.exp (-1.)) b

let test_bad_args () =
  Alcotest.check_raises "delta 0"
    (Invalid_argument "Chernoff.multiplicative_upper: need delta > 0, mu >= 0")
    (fun () -> ignore (C.multiplicative_upper ~mu:1. ~delta:0. : float));
  Alcotest.check_raises "delta 1"
    (Invalid_argument "Chernoff.multiplicative_lower: need 0 < delta < 1, mu >= 0")
    (fun () -> ignore (C.multiplicative_lower ~mu:1. ~delta:1. : float))

let test_hoeffding () =
  let b = C.hoeffding_two_sided ~n:200 ~epsilon:0.1 in
  Alcotest.(check bool) "2e^{-4}" true
    (Float.abs (b -. (2. *. Float.exp (-4.))) < 1e-12)

let test_sample_size_consistency () =
  let n = C.sample_size ~epsilon:0.05 ~confidence:0.95 in
  Alcotest.(check bool) "bound holds at n" true
    (C.hoeffding_two_sided ~n ~epsilon:0.05 <= 0.05 +. 1e-12);
  Alcotest.(check bool) "n minimal-ish" true
    (n = 1 || C.hoeffding_two_sided ~n:(n - 1) ~epsilon:0.05 > 0.05 -. 1e-9)

let test_congestion_tail () =
  Alcotest.(check (float 0.)) "vacuous below e" 1. (C.congestion_tail ~tau:2.);
  let t8 = C.congestion_tail ~tau:8. in
  Alcotest.(check bool) "decreasing" true (t8 < C.congestion_tail ~tau:4.);
  Alcotest.(check bool) "(e/8)^8" true
    (Float.abs (t8 -. ((Float.exp 1. /. 8.) ** 8.)) < 1e-12)

let test_congestion_threshold () =
  let t = C.congestion_threshold ~n:100 ~m:10 ~alpha:2. in
  let x = Float.log 110. in
  Alcotest.(check (float 1e-9)) "formula" (2. *. x /. Float.log x) t

let test_geometric_drain () =
  (* n = 1024, rate 1/2: after 10 steps the expectation is 1; with 99%
     confidence we need log2(1024/0.01) ~ 16.6 -> 17 steps. *)
  let t = C.geometric_drain_steps ~n:1024 ~rate:0.5 ~confidence:0.99 in
  Alcotest.(check (float 0.)) "17 steps" 17. t

(* Empirical soundness: the bounds really do bound empirical tails. *)
let prop_upper_tail_sound =
  QCheck.Test.make ~name:"Chernoff upper bound >= empirical tail" ~count:10
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 60 in
      let p = 0.3 in
      let mu = Float.of_int n *. p in
      let delta = 0.5 in
      let threshold = (1. +. delta) *. mu in
      let trials = 3000 in
      let hits = ref 0 in
      for _ = 1 to trials do
        let sum = ref 0 in
        for _ = 1 to n do
          if Rng.bernoulli rng p then incr sum
        done;
        if Float.of_int !sum >= threshold then incr hits
      done;
      let empirical = Float.of_int !hits /. Float.of_int trials in
      (* Allow sampling noise on top of the bound. *)
      empirical <= C.multiplicative_upper ~mu ~delta +. 0.02)

let prop_drain_steps_sound =
  QCheck.Test.make ~name:"geometric drain estimate covers simulation" ~count:10
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 128 and rate = 0.3 in
      let budget =
        Float.to_int (C.geometric_drain_steps ~n ~rate ~confidence:0.9)
      in
      (* Simulate: each of n items independently dies with prob rate per
         step (a strictly faster drain than the supermartingale bound). *)
      let failures = ref 0 in
      let trials = 300 in
      for _ = 1 to trials do
        let alive = ref n in
        for _ = 1 to budget do
          let survivors = ref 0 in
          for _ = 1 to !alive do
            if not (Rng.bernoulli rng rate) then incr survivors
          done;
          alive := !survivors
        done;
        if !alive > 0 then incr failures
      done;
      Float.of_int !failures /. Float.of_int trials <= 0.1 +. 0.05)

let () =
  Alcotest.run "chernoff"
    [
      ( "formulas",
        [
          Alcotest.test_case "upper known" `Quick test_multiplicative_upper_known;
          Alcotest.test_case "upper monotone" `Quick
            test_multiplicative_upper_monotone_mu;
          Alcotest.test_case "lower" `Quick test_multiplicative_lower;
          Alcotest.test_case "bad args" `Quick test_bad_args;
          Alcotest.test_case "hoeffding" `Quick test_hoeffding;
          Alcotest.test_case "sample size" `Quick test_sample_size_consistency;
          Alcotest.test_case "congestion tail" `Quick test_congestion_tail;
          Alcotest.test_case "congestion threshold" `Quick
            test_congestion_threshold;
          Alcotest.test_case "geometric drain" `Quick test_geometric_drain;
        ] );
      ( "empirical",
        [
          QCheck_alcotest.to_alcotest prop_upper_tail_sound;
          QCheck_alcotest.to_alcotest prop_drain_steps_sound;
        ] );
    ]
