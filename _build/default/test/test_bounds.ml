module Instance = Suu_core.Instance
module Bounds = Suu_algo.Bounds
module Rng = Suu_prob.Rng

let test_rate_bound () =
  (* Job 1 has total rate 0.2 -> needs >= 5 expected steps. *)
  let inst = Instance.independent ~p:[| [| 0.9; 0.2 |] |] in
  let b = Bounds.compute ~with_lp:false inst in
  Alcotest.(check (float 1e-9)) "rate" 5. b.Bounds.rate

let test_rate_capped_at_one () =
  (* Total rate above 1 is capped: bound is 1. *)
  let inst = Instance.independent ~p:[| [| 0.9 |]; [| 0.9 |] |] in
  let b = Bounds.compute ~with_lp:false inst in
  Alcotest.(check (float 1e-9)) "rate" 1. b.Bounds.rate

let test_capacity_deterministic () =
  (* 6 jobs, 2 machines: at least 3 steps. *)
  let inst = Instance.independent ~p:[| Array.make 6 1.0; Array.make 6 1.0 |] in
  let b = Bounds.compute ~with_lp:false inst in
  Alcotest.(check bool) "n/m" true (b.Bounds.capacity >= 3.)

let test_capacity_probabilistic () =
  (* 8 jobs, one machine with max p = 0.1: mu = 0.1, n/(4 mu) = 20. *)
  let inst = Instance.independent ~p:[| Array.make 8 0.1 |] in
  let b = Bounds.compute ~with_lp:false inst in
  Alcotest.(check (float 1e-9)) "n/4mu" 20. b.Bounds.capacity

let test_critical_path () =
  let dag = Suu_dag.Dag.create ~n:3 [ (0, 1); (1, 2) ] in
  let inst = Instance.create ~p:[| [| 0.5; 0.5; 0.5 |] |] ~dag in
  let b = Bounds.compute ~with_lp:false inst in
  (* Each job on the path: 1/0.5 = 2; path of 3 jobs -> 6. *)
  Alcotest.(check (float 1e-9)) "weighted path" 6. b.Bounds.critical_path

let test_lp_bound_present () =
  let inst = Instance.independent ~p:[| [| 0.5; 0.5 |] |] in
  let b = Bounds.compute inst in
  match b.Bounds.lp with
  | Some v -> Alcotest.(check bool) "positive" true (v > 0.)
  | None -> Alcotest.fail "lp bound missing"

let test_exact_dominates () =
  let inst = Instance.independent ~p:[| [| 0.3; 0.4 |] |] in
  let b = Bounds.compute ~with_exact:true inst in
  match b.Bounds.exact with
  | None -> Alcotest.fail "exact missing"
  | Some topt ->
      Alcotest.(check (float 1e-9)) "best = exact" topt (Bounds.best b);
      Alcotest.(check bool) "exact >= others" true
        (topt >= b.Bounds.rate && topt >= b.Bounds.capacity)

let test_best_without_exact () =
  let inst = Instance.independent ~p:[| [| 0.5 |] |] in
  let b = Bounds.compute ~with_lp:false inst in
  Alcotest.(check (float 1e-9)) "max of basics" 2. (Bounds.best b)

(* Soundness: every bound must be <= true TOPT (exact DP) on random tiny
   instances — the critical property for all reported ratios. *)
let prop_bounds_sound =
  QCheck.Test.make ~name:"all bounds <= exact TOPT" ~count:40
    QCheck.(triple small_int (int_range 1 3) (int_range 1 5))
    (fun (seed, m, n) ->
      let rng = Rng.create seed in
      let dag =
        match abs seed mod 3 with
        | 0 -> Suu_dag.Dag.empty n
        | 1 -> Suu_dag.Gen.chains (Rng.split rng) ~n ~chains:(1 + (n / 2))
        | _ -> Suu_dag.Gen.out_forest (Rng.split rng) ~n ~trees:(min 2 n)
      in
      let inst =
        Instance.create
          ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.2 0.9)))
          ~dag
      in
      match Suu_algo.Malewicz.optimal_value inst with
      | exception Suu_algo.Malewicz.Too_expensive _ -> true
      | topt ->
          let b = Bounds.compute inst in
          let tol = (1e-6 *. topt) +. 1e-6 in
          b.Bounds.rate <= topt +. tol
          && b.Bounds.capacity <= topt +. tol
          && b.Bounds.critical_path <= topt +. tol
          && match b.Bounds.lp with None -> true | Some v -> v <= topt +. tol)

let prop_best_is_max =
  QCheck.Test.make ~name:"best >= each component" ~count:50
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst =
        Instance.independent
          ~p:(Array.init 2 (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.1 0.9)))
      in
      let b = Bounds.compute inst in
      let best = Bounds.best b in
      best >= b.Bounds.rate && best >= b.Bounds.capacity
      && best >= b.Bounds.critical_path)

let () =
  Alcotest.run "bounds"
    [
      ( "components",
        [
          Alcotest.test_case "rate" `Quick test_rate_bound;
          Alcotest.test_case "rate capped" `Quick test_rate_capped_at_one;
          Alcotest.test_case "capacity n/m" `Quick test_capacity_deterministic;
          Alcotest.test_case "capacity n/4mu" `Quick test_capacity_probabilistic;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "lp present" `Quick test_lp_bound_present;
          Alcotest.test_case "exact dominates" `Quick test_exact_dominates;
          Alcotest.test_case "best without exact" `Quick test_best_without_exact;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_bounds_sound;
          QCheck_alcotest.to_alcotest prop_best_is_max;
        ] );
    ]
