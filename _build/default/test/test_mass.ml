module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious
module Mass = Suu_core.Mass

let inst () =
  Instance.independent ~p:[| [| 0.5; 0.2 |]; [| 0.1; 0.3 |] |]

let test_combined_success () =
  Alcotest.(check (float 1e-12)) "two attempts" (1. -. (0.5 *. 0.7))
    (Mass.combined_success [ 0.5; 0.3 ]);
  Alcotest.(check (float 1e-12)) "none" 0. (Mass.combined_success []);
  Alcotest.(check (float 1e-12)) "certain" 1. (Mass.combined_success [ 1.; 0.2 ])

let test_proposition_2_1 () =
  (* For Σp <= 1: p_sum/e <= 1 - Π(1-p) <= p_sum (Proposition 2.1). *)
  let cases =
    [ [ 0.3; 0.2 ]; [ 0.5 ]; [ 0.1; 0.1; 0.1; 0.1 ]; [ 0.9 ]; [ 0.25; 0.75 ] ]
  in
  List.iter
    (fun ps ->
      let lower, upper = Mass.proposition_2_1_bounds ps in
      let actual = Mass.combined_success ps in
      Alcotest.(check bool) "lower" true (actual >= lower -. 1e-12);
      Alcotest.(check bool) "upper" true (actual <= upper +. 1e-12))
    cases

let test_capped () =
  Alcotest.(check (float 0.)) "capped" 1. (Mass.capped 1.7);
  Alcotest.(check (float 0.)) "uncapped" 0.3 (Mass.capped 0.3)

let test_of_oblivious () =
  let i = inst () in
  (* Two steps: both machines on job 0, then both on job 1. *)
  let s = Oblivious.finite ~m:2 [| [| 0; 0 |]; [| 1; 1 |] |] in
  let mass1 = Mass.of_oblivious i s ~steps:1 in
  Alcotest.(check (float 1e-12)) "job0 after 1" 0.6 mass1.(0);
  Alcotest.(check (float 1e-12)) "job1 after 1" 0. mass1.(1);
  let mass2 = Mass.of_oblivious i s ~steps:2 in
  Alcotest.(check (float 1e-12)) "job0 after 2" 0.6 mass2.(0);
  Alcotest.(check (float 1e-12)) "job1 after 2" 0.5 mass2.(1)

let test_of_oblivious_cycle () =
  let i = inst () in
  let s = Oblivious.create ~m:2 ~cycle:[| [| 0; 0 |] |] [||] in
  let mass = Mass.of_oblivious i s ~steps:3 in
  Alcotest.(check (float 1e-12)) "3 cycle steps" 1.8 mass.(0);
  let capped = Mass.of_oblivious_capped i s ~steps:3 in
  Alcotest.(check (float 1e-12)) "capped at 1" 1. capped.(0)

let test_first_step_reaching () =
  let i = inst () in
  let s = Oblivious.create ~m:2 ~cycle:[| [| 0; 1 |] |] [||] in
  (* Per step: job 0 gets 0.5, job 1 gets 0.3. *)
  let first = Mass.first_step_reaching i s ~target:1.0 ~horizon:10 in
  Alcotest.(check (option int)) "job0 at step 2" (Some 2) first.(0);
  Alcotest.(check (option int)) "job1 at step 4" (Some 4) first.(1);
  let missed = Mass.first_step_reaching i s ~target:1.0 ~horizon:1 in
  Alcotest.(check (option int)) "horizon short" None missed.(0)

let chain_inst () =
  Instance.create
    ~p:[| [| 0.5; 0.5 |] |]
    ~dag:(Suu_dag.Dag.create ~n:2 [ (0, 1) ])

let test_precedence_respecting_ok () =
  let i = chain_inst () in
  (* Job 0 for 2 steps (mass 1.0 >= 1/2 at step 1), then job 1. *)
  let s = Oblivious.finite ~m:1 [| [| 0 |]; [| 0 |]; [| 1 |]; [| 1 |] |] in
  match Mass.precedence_respecting i s ~target:0.5 ~horizon:10 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_precedence_respecting_violation () =
  let i = chain_inst () in
  (* Job 1 touched at step 1, before job 0 has any mass. *)
  let s = Oblivious.finite ~m:1 [| [| 1 |]; [| 0 |]; [| 0 |]; [| 1 |] |] in
  match Mass.precedence_respecting i s ~target:0.5 ~horizon:10 with
  | Ok () -> Alcotest.fail "violation not caught"
  | Error _ -> ()

let test_precedence_respecting_unreached () =
  let i = chain_inst () in
  let s = Oblivious.finite ~m:1 [| [| 0 |] |] in
  (* Job 1 never accumulates the target. *)
  match Mass.precedence_respecting i s ~target:0.5 ~horizon:10 with
  | Ok () -> Alcotest.fail "missing mass not caught"
  | Error _ -> ()

let prop_mass_monotone_in_steps =
  QCheck.Test.make ~name:"mass monotone in steps" ~count:100
    QCheck.(pair small_int (int_range 1 20))
    (fun (seed, steps) ->
      let rng = Suu_prob.Rng.create seed in
      let n = 4 and m = 3 in
      let i =
        Instance.independent
          ~p:
            (Array.init m (fun _ ->
                 Array.init n (fun _ -> Suu_prob.Rng.uniform rng 0.05 0.95)))
      in
      let prefix =
        Array.init 10 (fun _ ->
            Array.init m (fun _ -> Suu_prob.Rng.int rng (n + 1) - 1))
      in
      let s = Oblivious.finite ~m prefix in
      let a = Mass.of_oblivious i s ~steps in
      let b = Mass.of_oblivious i s ~steps:(steps + 3) in
      Array.for_all2 (fun x y -> y >= x -. 1e-12) a b)

let prop_proposition_2_1_random =
  QCheck.Test.make ~name:"Proposition 2.1 on random probabilities" ~count:500
    QCheck.(list_of_size Gen.(1 -- 8) (float_bound_inclusive 1.))
    (fun ps ->
      let total = List.fold_left ( +. ) 0. ps in
      QCheck.assume (total <= 1.);
      let lower, upper = Mass.proposition_2_1_bounds ps in
      let actual = Mass.combined_success ps in
      actual >= lower -. 1e-12 && actual <= upper +. 1e-12)

let () =
  Alcotest.run "mass"
    [
      ( "proposition 2.1",
        [
          Alcotest.test_case "combined success" `Quick test_combined_success;
          Alcotest.test_case "sandwich bounds" `Quick test_proposition_2_1;
          Alcotest.test_case "capping" `Quick test_capped;
        ] );
      ( "accumulation",
        [
          Alcotest.test_case "of_oblivious" `Quick test_of_oblivious;
          Alcotest.test_case "with cycle" `Quick test_of_oblivious_cycle;
          Alcotest.test_case "first step reaching" `Quick
            test_first_step_reaching;
        ] );
      ( "accumass conditions",
        [
          Alcotest.test_case "respects precedence" `Quick
            test_precedence_respecting_ok;
          Alcotest.test_case "catches violations" `Quick
            test_precedence_respecting_violation;
          Alcotest.test_case "catches unreached mass" `Quick
            test_precedence_respecting_unreached;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_mass_monotone_in_steps;
          QCheck_alcotest.to_alcotest prop_proposition_2_1_random;
        ] );
    ]
