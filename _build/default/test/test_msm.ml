module Instance = Suu_core.Instance
module Assignment = Suu_core.Assignment
module Msm = Suu_algo.Msm
module Rng = Suu_prob.Rng

let all_jobs n = Array.make n true

let test_single_pair () =
  let inst = Instance.independent ~p:[| [| 0.7 |] |] in
  let a = Msm.assign inst ~jobs:(all_jobs 1) in
  Alcotest.(check (array int)) "assigned" [| 0 |] a

let test_prefers_higher_prob () =
  (* One machine, two jobs; must pick the higher-probability one. *)
  let inst = Instance.independent ~p:[| [| 0.3; 0.9 |] |] in
  let a = Msm.assign inst ~jobs:(all_jobs 2) in
  Alcotest.(check (array int)) "picks job 1" [| 1 |] a

let test_mass_cap_respected () =
  (* Three machines with p=0.6 on one job: only one fits under the cap
     (0.6 + 0.6 > 1), so exactly one machine is assigned... the second
     would push mass to 1.2 > 1. *)
  let inst =
    Instance.independent ~p:[| [| 0.6 |]; [| 0.6 |]; [| 0.6 |] |]
  in
  let a = Msm.assign inst ~jobs:(all_jobs 1) in
  let assigned = List.length (Assignment.machines_on a ~job:0) in
  Alcotest.(check int) "one machine" 1 assigned

let test_exact_fill_to_one () =
  (* 0.5 + 0.5 = 1.0 is allowed (mass <= 1). *)
  let inst = Instance.independent ~p:[| [| 0.5 |]; [| 0.5 |] |] in
  let a = Msm.assign inst ~jobs:(all_jobs 1) in
  Alcotest.(check int) "both machines" 2
    (List.length (Assignment.machines_on a ~job:0))

let test_restricted_jobs () =
  let inst = Instance.independent ~p:[| [| 0.9; 0.5 |] |] in
  let jobs = [| false; true |] in
  let a = Msm.assign inst ~jobs in
  Alcotest.(check (array int)) "only job 1 allowed" [| 1 |] a

let test_zero_prob_ignored () =
  let inst = Instance.independent ~p:[| [| 0.5; 0.0 |]; [| 0.0; 0.4 |] |] in
  let a = Msm.assign inst ~jobs:(all_jobs 2) in
  Alcotest.(check (array int)) "each machine to its job" [| 0; 1 |] a

let test_deterministic () =
  let rng = Rng.create 3 in
  let inst =
    Instance.independent
      ~p:(Array.init 4 (fun _ -> Array.init 6 (fun _ -> Rng.uniform rng 0.1 0.9)))
  in
  let a = Msm.assign inst ~jobs:(all_jobs 6) in
  let b = Msm.assign inst ~jobs:(all_jobs 6) in
  Alcotest.(check (array int)) "same output" a b

let test_total_mass_value () =
  let inst = Instance.independent ~p:[| [| 0.5; 0.3 |]; [| 0.4; 0.2 |] |] in
  let a = [| 0; 0 |] in
  Alcotest.(check (float 1e-12)) "capped sum" 0.9 (Msm.total_mass inst a)

let test_brute_force_small () =
  let inst = Instance.independent ~p:[| [| 0.5; 0.3 |]; [| 0.4; 0.2 |] |] in
  let opt = Msm.optimal_mass_brute_force inst ~jobs:(all_jobs 2) in
  (* Best: machine 0 -> job 0 (0.5), machine 1 -> job 1 (0.2) = 0.7, or
     both on job 0 = 0.9. *)
  Alcotest.(check (float 1e-12)) "optimal" 0.9 opt

let test_sorted_pairs_order () =
  let inst = Instance.independent ~p:[| [| 0.2; 0.8 |]; [| 0.5; 0.1 |] |] in
  let pairs = Msm.sorted_pairs inst ~jobs:(all_jobs 2) in
  let probs = List.map (fun (p, _, _) -> p) pairs in
  Alcotest.(check (list (float 0.))) "descending" [ 0.8; 0.5; 0.2; 0.1 ] probs

(* The headline guarantee: greedy >= optimal / 3 (Theorem 3.2). *)
let prop_one_third_approximation =
  QCheck.Test.make ~name:"MSM-ALG within 1/3 of brute force" ~count:150
    QCheck.(triple small_int (int_range 1 3) (int_range 1 4))
    (fun (seed, m, n) ->
      let rng = Rng.create seed in
      let inst =
        Instance.independent
          ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.01 1.)))
      in
      let jobs = all_jobs n in
      let greedy = Msm.total_mass inst (Msm.assign inst ~jobs) in
      let opt = Msm.optimal_mass_brute_force inst ~jobs in
      greedy >= (opt /. 3.) -. 1e-9)

let prop_each_machine_once =
  QCheck.Test.make ~name:"assignment uses each machine at most once" ~count:200
    QCheck.(pair small_int (pair (int_range 1 6) (int_range 1 8)))
    (fun (seed, (m, n)) ->
      let rng = Rng.create seed in
      let inst =
        Instance.independent
          ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.05 1.)))
      in
      let a = Msm.assign inst ~jobs:(all_jobs n) in
      Array.length a = m
      && Array.for_all (fun j -> j = -1 || (j >= 0 && j < n)) a)

let prop_mass_never_exceeds_one =
  QCheck.Test.make ~name:"per-job mass <= 1" ~count:200
    QCheck.(pair small_int (pair (int_range 1 8) (int_range 1 8)))
    (fun (seed, (m, n)) ->
      let rng = Rng.create seed in
      let inst =
        Instance.independent
          ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.05 1.)))
      in
      let a = Msm.assign inst ~jobs:(all_jobs n) in
      let mass = Suu_core.Assignment.mass_added inst a in
      Array.for_all (fun mj -> mj <= 1. +. 1e-9) mass)

let () =
  Alcotest.run "msm"
    [
      ( "cases",
        [
          Alcotest.test_case "single pair" `Quick test_single_pair;
          Alcotest.test_case "prefers higher p" `Quick test_prefers_higher_prob;
          Alcotest.test_case "mass cap" `Quick test_mass_cap_respected;
          Alcotest.test_case "exact fill" `Quick test_exact_fill_to_one;
          Alcotest.test_case "restricted jobs" `Quick test_restricted_jobs;
          Alcotest.test_case "zero p ignored" `Quick test_zero_prob_ignored;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "total mass" `Quick test_total_mass_value;
          Alcotest.test_case "brute force" `Quick test_brute_force_small;
          Alcotest.test_case "pair order" `Quick test_sorted_pairs_order;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_one_third_approximation;
          QCheck_alcotest.to_alcotest prop_each_machine_once;
          QCheck_alcotest.to_alcotest prop_mass_never_exceeds_one;
        ] );
    ]
