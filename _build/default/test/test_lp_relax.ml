module Instance = Suu_core.Instance
module Lp_relax = Suu_algo.Lp_relax
module Rng = Suu_prob.Rng

let random_chain_instance seed ~n ~m ~chains =
  let rng = Rng.create seed in
  let dag = Suu_dag.Gen.chains (Rng.split rng) ~n ~chains in
  let p =
    Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.1 0.9))
  in
  Instance.create ~p ~dag

let chains_of inst =
  Suu_dag.Classify.chain_partition (Instance.dag inst)

let test_solution_verifies () =
  let inst = random_chain_instance 1 ~n:8 ~m:3 ~chains:2 in
  let frac = Lp_relax.solve_chains inst ~chains:(chains_of inst) in
  match Lp_relax.verify inst frac with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_single_job_t_star () =
  (* One job, one machine p = 0.5: mass 1/2 needs exactly one step, but
     d >= 1 also forces t >= 1: t* = 1. *)
  let inst = Instance.independent ~p:[| [| 0.5 |] |] in
  let frac = Lp_relax.solve_chains inst ~chains:[ [ 0 ] ] in
  Alcotest.(check (float 1e-6)) "t*" 1. frac.Lp_relax.t_star

let test_high_prob_still_t_one () =
  (* p = 1: x = 1/2 satisfies the mass constraint; chain constraint forces
     d_0 >= 1 so t* = 1. *)
  let inst = Instance.independent ~p:[| [| 1.0 |] |] in
  let frac = Lp_relax.solve_chains inst ~chains:[ [ 0 ] ] in
  Alcotest.(check (float 1e-6)) "t*" 1. frac.Lp_relax.t_star

let test_load_drives_t () =
  (* 4 identical jobs, single machine p = 0.5 each: each job needs 1 step
     of fractional mass, load = 4 -> t* = 4. *)
  let inst = Instance.independent ~p:[| [| 0.5; 0.5; 0.5; 0.5 |] |] in
  let frac =
    Lp_relax.solve_chains inst ~chains:[ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ]
  in
  Alcotest.(check (float 1e-6)) "t*" 4. frac.Lp_relax.t_star

let test_chain_drives_t () =
  (* One chain of 4 jobs, many machines: d_j >= 1 forces t >= 4. *)
  let dag = Suu_dag.Gen.uniform_chains ~n:4 ~chains:1 in
  let p = Array.init 8 (fun _ -> Array.make 4 0.9) in
  let inst = Instance.create ~p ~dag in
  let frac = Lp_relax.solve_chains inst ~chains:(chains_of inst) in
  Alcotest.(check (float 1e-6)) "t* = chain length" 4. frac.Lp_relax.t_star

let test_lp2_no_window_constraints () =
  (* (LP2) for p = 1: half a step of load, t* = 1/2 (no d >= 1 rows). *)
  let inst = Instance.independent ~p:[| [| 1.0 |] |] in
  let frac = Lp_relax.solve_independent inst ~jobs:[ 0 ] in
  Alcotest.(check (float 1e-6)) "t*" 0.5 frac.Lp_relax.t_star;
  Alcotest.(check (list (list int))) "no chains" [] frac.Lp_relax.chains

let test_lp2_le_lp1 () =
  let inst = random_chain_instance 7 ~n:6 ~m:2 ~chains:3 in
  let jobs = List.init 6 (fun j -> j) in
  let lp1 = Lp_relax.solve_chains inst ~chains:(chains_of inst) in
  let lp2 = Lp_relax.solve_independent inst ~jobs in
  Alcotest.(check bool) "relaxing constraints helps" true
    (lp2.Lp_relax.t_star <= lp1.Lp_relax.t_star +. 1e-6)

let test_subset_solving () =
  (* Solving over a subset only allocates to that subset. *)
  let inst = random_chain_instance 9 ~n:6 ~m:2 ~chains:6 in
  let frac = Lp_relax.solve_chains inst ~chains:[ [ 0 ]; [ 2 ] ] in
  Alcotest.(check (list int)) "jobs" [ 0; 2 ] frac.Lp_relax.jobs;
  for i = 0 to 1 do
    Alcotest.(check (float 0.)) "job 1 untouched" 0. frac.Lp_relax.x.(i).(1)
  done

let test_rejects_duplicate_jobs () =
  let inst = random_chain_instance 11 ~n:4 ~m:2 ~chains:4 in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Lp_relax: job in two chains") (fun () ->
      ignore
        (Lp_relax.solve_chains inst ~chains:[ [ 0; 1 ]; [ 1 ] ]
          : Lp_relax.fractional))

(* Lemma 4.2: t* <= 16 TOPT — checked with exact TOPT on tiny instances. *)
let prop_lemma_4_2 =
  QCheck.Test.make ~name:"Lemma 4.2: t* <= 16 TOPT" ~count:30
    QCheck.(triple small_int (int_range 1 3) (int_range 1 5))
    (fun (seed, m, n) ->
      let rng = Rng.create seed in
      let chains_count = 1 + Rng.int rng n in
      let dag = Suu_dag.Gen.chains (Rng.split rng) ~n ~chains:chains_count in
      let p =
        Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.2 0.9))
      in
      let inst = Instance.create ~p ~dag in
      let frac = Lp_relax.solve_chains inst ~chains:(chains_of inst) in
      match Suu_algo.Malewicz.optimal_value inst with
      | topt -> frac.Lp_relax.t_star <= (16. *. topt) +. 1e-6
      | exception Suu_algo.Malewicz.Too_expensive _ -> true)

let prop_solutions_verify =
  QCheck.Test.make ~name:"all LP solutions verify" ~count:50
    QCheck.(triple small_int (int_range 1 4) (int_range 1 10))
    (fun (seed, m, n) ->
      let inst =
        random_chain_instance seed ~n ~m ~chains:(1 + (abs seed mod n))
      in
      let frac = Lp_relax.solve_chains inst ~chains:(chains_of inst) in
      match Lp_relax.verify inst frac with Ok () -> true | Error _ -> false)

let prop_t_star_monotone_in_machines =
  QCheck.Test.make ~name:"more machines never hurt the LP" ~count:30
    QCheck.(pair small_int (int_range 2 8))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let dag = Suu_dag.Gen.chains (Rng.split rng) ~n ~chains:2 in
      let row () = Array.init n (fun _ -> Rng.uniform rng 0.1 0.9) in
      let p1 = [| row () |] in
      let p2 = Array.append p1 [| row () |] in
      let i1 = Instance.create ~p:p1 ~dag in
      let i2 = Instance.create ~p:p2 ~dag in
      let chains = chains_of i1 in
      let t1 = (Lp_relax.solve_chains i1 ~chains).Lp_relax.t_star in
      let t2 = (Lp_relax.solve_chains i2 ~chains).Lp_relax.t_star in
      t2 <= t1 +. 1e-6)

let () =
  Alcotest.run "lp_relax"
    [
      ( "cases",
        [
          Alcotest.test_case "verifies" `Quick test_solution_verifies;
          Alcotest.test_case "single job" `Quick test_single_job_t_star;
          Alcotest.test_case "certain job" `Quick test_high_prob_still_t_one;
          Alcotest.test_case "load bound" `Quick test_load_drives_t;
          Alcotest.test_case "chain bound" `Quick test_chain_drives_t;
          Alcotest.test_case "(LP2) drops windows" `Quick
            test_lp2_no_window_constraints;
          Alcotest.test_case "(LP2) <= (LP1)" `Quick test_lp2_le_lp1;
          Alcotest.test_case "subset" `Quick test_subset_solving;
          Alcotest.test_case "duplicate jobs rejected" `Quick
            test_rejects_duplicate_jobs;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_lemma_4_2;
          QCheck_alcotest.to_alcotest prop_solutions_verify;
          QCheck_alcotest.to_alcotest prop_t_star_monotone_in_machines;
        ] );
    ]
