(* End-to-end integration: every paper algorithm, on its own dag class,
   measured against lower bounds and (where affordable) the exact optimum.
   Wide sanity gates rather than tight numeric checks — the benches in
   bench/main.ml report the precise numbers. *)

module Instance = Suu_core.Instance
module Engine = Suu_sim.Engine
module Bounds = Suu_algo.Bounds
module Rng = Suu_prob.Rng

let trials = 120

let mean_makespan seed inst policy =
  let e = Engine.estimate_makespan ~trials (Rng.create seed) inst policy in
  Alcotest.(check int) "no timeouts" 0 e.Engine.incomplete;
  e.Engine.stats.Suu_prob.Stats.mean

let check_ratio ~cap name inst policy =
  let lb = Bounds.best (Bounds.compute inst) in
  let mean = mean_makespan 7 inst policy in
  let ratio = mean /. lb in
  if ratio > cap then
    Alcotest.failf "%s ratio %.2f exceeds sanity cap %.2f (mean %.2f, lb %.2f)"
      name ratio cap mean lb

let uniform_inst seed ~n ~m ~dag =
  let rng = Rng.create seed in
  Instance.create
    ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.15 0.9)))
    ~dag

let test_independent_adaptive () =
  let inst = uniform_inst 1 ~n:24 ~m:6 ~dag:(Suu_dag.Dag.empty 24) in
  check_ratio ~cap:8. "suu-i-alg" inst (Suu_algo.Suu_i.policy inst)

let test_independent_oblivious_greedy () =
  let inst = uniform_inst 2 ~n:24 ~m:6 ~dag:(Suu_dag.Dag.empty 24) in
  check_ratio ~cap:30. "suu-i-obl" inst (Suu_algo.Suu_i_obl.policy inst)

let test_independent_oblivious_lp () =
  let inst = uniform_inst 3 ~n:24 ~m:6 ~dag:(Suu_dag.Dag.empty 24) in
  check_ratio ~cap:30. "lp-indep" inst (Suu_algo.Lp_indep.policy inst)

let test_chains_pipeline () =
  let dag = Suu_dag.Gen.chains (Rng.create 4) ~n:18 ~chains:3 in
  let inst = uniform_inst 5 ~n:18 ~m:4 ~dag in
  check_ratio ~cap:80. "suu-c" inst (Suu_algo.Chains.policy inst)

let test_trees_pipeline () =
  let dag = Suu_dag.Gen.out_forest (Rng.create 6) ~n:18 ~trees:2 in
  let inst = uniform_inst 7 ~n:18 ~m:4 ~dag in
  check_ratio ~cap:120. "suu-trees" inst (Suu_algo.Trees.policy inst)

let test_forest_pipeline () =
  let dag = Suu_dag.Gen.polytree_forest (Rng.create 8) ~n:18 ~trees:2 in
  let inst = uniform_inst 9 ~n:18 ~m:4 ~dag in
  check_ratio ~cap:120. "suu-forest" inst (Suu_algo.Forest.policy inst)

let test_adaptive_near_optimal_small () =
  (* On tiny instances the adaptive policy should be within 2x of the
     exact optimum (the paper's O(log n) with small constants). *)
  let inst = uniform_inst 10 ~n:5 ~m:2 ~dag:(Suu_dag.Dag.empty 5) in
  let topt = Suu_algo.Malewicz.optimal_value inst in
  let mean = mean_makespan 11 inst (Suu_algo.Suu_i.policy inst) in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %.2f within 2x of optimal %.2f" mean topt)
    true
    (mean <= (2. *. topt) +. 0.5)

let test_adaptive_beats_serial_baseline () =
  (* With several machines and independent jobs, coordinated adaptivity
     must beat ganging all machines on one job at a time. *)
  let inst = uniform_inst 12 ~n:20 ~m:6 ~dag:(Suu_dag.Dag.empty 20) in
  let ours = mean_makespan 13 inst (Suu_algo.Suu_i.policy inst) in
  let serial = mean_makespan 13 inst (Suu_algo.Baselines.serial_all_machines inst) in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f < %.2f" ours serial)
    true (ours < serial)

let test_workload_end_to_end () =
  (* The project-management workload through the auto solver. *)
  let w = Suu_workloads.Workload.project (Rng.create 14) ~n:20 ~m:5 in
  let inst = w.Suu_workloads.Workload.instance in
  let adaptive = Suu_algo.Solver.solve ~kind:`Adaptive inst in
  let oblivious = Suu_algo.Solver.solve ~kind:`Oblivious inst in
  let ma = mean_makespan 15 inst adaptive in
  let mo = mean_makespan 15 inst oblivious in
  Alcotest.(check bool) "both positive" true (ma > 0. && mo > 0.);
  Alcotest.(check bool) "adaptive no worse" true (ma <= mo +. 1e-9)

let test_cli_io_pipeline () =
  (* gen-file -> load -> solve, via the library pieces the CLI uses. *)
  let w = Suu_workloads.Workload.grid_batch (Rng.create 16) ~n:12 ~m:4 in
  let path = Filename.temp_file "suu_integration" ".inst" in
  Suu_harness.Io.save path w.Suu_workloads.Workload.instance;
  let inst = Suu_harness.Io.load path in
  Sys.remove path;
  let lb = Bounds.best (Bounds.compute inst) in
  let ms =
    Suu_harness.Experiment.compare_policies ~trials:40 ~seed:3 inst
      ~lower_bound:lb
      [ Suu_algo.Solver.solve ~kind:`Adaptive inst ]
  in
  match ms with
  | [ m ] ->
      Alcotest.(check bool) "finite ratio" true (Float.is_finite m.Suu_harness.Experiment.ratio)
  | _ -> Alcotest.fail "expected one measurement"

let prop_oblivious_vs_adaptive =
  (* The adaptivity gap goes the right way on average. *)
  QCheck.Test.make ~name:"adaptive <= oblivious on independent jobs" ~count:8
    QCheck.small_int (fun seed ->
      let inst =
        uniform_inst (seed + 20) ~n:16 ~m:4 ~dag:(Suu_dag.Dag.empty 16)
      in
      let a = mean_makespan seed inst (Suu_algo.Suu_i.policy inst) in
      let o = mean_makespan seed inst (Suu_algo.Lp_indep.policy inst) in
      a <= o +. 1.)

let () =
  Alcotest.run "integration"
    [
      ( "per class",
        [
          Alcotest.test_case "independent adaptive" `Slow
            test_independent_adaptive;
          Alcotest.test_case "independent oblivious greedy" `Slow
            test_independent_oblivious_greedy;
          Alcotest.test_case "independent oblivious LP" `Slow
            test_independent_oblivious_lp;
          Alcotest.test_case "chains" `Slow test_chains_pipeline;
          Alcotest.test_case "trees" `Slow test_trees_pipeline;
          Alcotest.test_case "forest" `Slow test_forest_pipeline;
        ] );
      ( "quality",
        [
          Alcotest.test_case "adaptive near optimal" `Slow
            test_adaptive_near_optimal_small;
          Alcotest.test_case "beats serial" `Slow
            test_adaptive_beats_serial_baseline;
          Alcotest.test_case "workload end to end" `Slow test_workload_end_to_end;
          Alcotest.test_case "io pipeline" `Quick test_cli_io_pipeline;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_oblivious_vs_adaptive ]);
    ]
