module Dag = Suu_dag.Dag
module CD = Suu_dag.Chain_decomp
module Gen = Suu_dag.Gen
module Rng = Suu_prob.Rng

let check_valid g d =
  match CD.validate g d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid decomposition: %s" e

let test_empty () =
  let d = CD.decompose (Dag.empty 0) in
  Alcotest.(check int) "zero blocks" 0 (CD.width d)

let test_independent () =
  let g = Dag.empty 6 in
  let d = CD.decompose g in
  check_valid g d;
  Alcotest.(check int) "one block" 1 (CD.width d);
  Alcotest.(check int) "six chains" 6 (CD.chain_count d)

let test_single_chain () =
  let g = Gen.uniform_chains ~n:8 ~chains:1 in
  let d = CD.decompose g in
  check_valid g d;
  (* A chain decomposes into ≤ log n + 1 blocks, each a sub-chain. *)
  Alcotest.(check bool) "within bound" true
    (CD.width d <= CD.width_bound g d.CD.mode)

let test_binary_tree_width () =
  let g = Gen.binary_out_tree ~n:31 in
  let d = CD.decompose g in
  check_valid g d;
  Alcotest.(check bool) "within log bound" true
    (CD.width d <= CD.width_bound g CD.Out_mode);
  (* A complete binary tree genuinely needs ~log n blocks. *)
  Alcotest.(check bool) "at least 3 blocks" true (CD.width d >= 3)

let test_jobs_topological () =
  let g = Gen.out_forest (Rng.create 5) ~n:20 ~trees:2 in
  let d = CD.decompose g in
  let order = CD.jobs d in
  Alcotest.(check int) "all jobs" 20 (List.length order);
  let pos = Array.make 20 0 in
  List.iteri (fun k v -> pos.(v) <- k) order;
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "topological" true (pos.(u) < pos.(v)))
    (Dag.edges g)

let test_rejects_general () =
  Alcotest.check_raises "diamond rejected"
    (Invalid_argument "Chain_decomp.decompose: dag is not a directed forest")
    (fun () -> ignore (CD.decompose (Gen.diamond ~width:2) : CD.t))

let test_mode_mismatch () =
  (* An in-tree is not decomposable in Out_mode unless it is also an
     out-tree. *)
  let g = Dag.create ~n:3 [ (1, 0); (2, 0) ] in
  Alcotest.check_raises "mode mismatch"
    (Invalid_argument "Chain_decomp.decompose: mode does not apply to this dag")
    (fun () -> ignore (CD.decompose ~mode:CD.Out_mode g : CD.t))

let test_default_modes () =
  let out = CD.decompose (Gen.binary_out_tree ~n:15) in
  Alcotest.(check bool) "out mode" true (out.CD.mode = CD.Out_mode);
  let intree = CD.decompose (Dag.create ~n:3 [ (1, 0); (2, 0) ]) in
  Alcotest.(check bool) "in mode" true (intree.CD.mode = CD.In_mode);
  (* Needs a vertex of in-degree 2 and one of out-degree 2 so that the dag
     is neither an in- nor an out-tree collection. *)
  let poly =
    CD.decompose (Dag.create ~n:5 [ (0, 1); (2, 1); (1, 3); (1, 4) ])
  in
  Alcotest.(check bool) "poly mode" true (poly.CD.mode = CD.Poly_mode)

let test_validate_catches_bad () =
  let g = Dag.create ~n:3 [ (0, 1); (1, 2) ] in
  (* Hand-build a wrong decomposition: ancestor in a later block. *)
  let bad = { CD.blocks = [| [ [ 1; 2 ] ]; [ [ 0 ] ] |]; mode = CD.Out_mode } in
  (match CD.validate g bad with
  | Ok () -> Alcotest.fail "should reject backwards block order"
  | Error _ -> ());
  (* Missing vertex. *)
  let missing = { CD.blocks = [| [ [ 0; 1 ] ] |]; mode = CD.Out_mode } in
  (match CD.validate g missing with
  | Ok () -> Alcotest.fail "should reject missing vertex"
  | Error _ -> ());
  (* Chain step that is not an edge. *)
  let nonedge = { CD.blocks = [| [ [ 0; 2 ]; [ 1 ] ] |]; mode = CD.Out_mode } in
  match CD.validate g nonedge with
  | Ok () -> Alcotest.fail "should reject non-edge chain step"
  | Error _ -> ()

let forest_gen =
  QCheck.Gen.(
    pair (int_range 1 60) (pair int (int_range 1 4))
    |> map (fun (n, (seed, trees)) ->
           let trees = min trees n in
           let rng = Rng.create seed in
           match abs seed mod 3 with
           | 0 -> Gen.out_forest rng ~n ~trees
           | 1 -> Gen.in_forest rng ~n ~trees
           | _ -> Gen.polytree_forest rng ~n ~trees))

let arbitrary_forest =
  QCheck.make ~print:(Format.asprintf "%a" Dag.pp) forest_gen

let prop_decomposition_valid =
  QCheck.Test.make ~name:"decomposition validates" ~count:300 arbitrary_forest
    (fun g ->
      let d = CD.decompose g in
      match CD.validate g d with Ok () -> true | Error _ -> false)

let prop_width_bound =
  QCheck.Test.make ~name:"width within Lemma 4.6 bound" ~count:300
    arbitrary_forest (fun g ->
      let d = CD.decompose g in
      CD.width d <= CD.width_bound g d.CD.mode)

let prop_chain_count_conserves_jobs =
  QCheck.Test.make ~name:"blocks partition the jobs" ~count:300
    arbitrary_forest (fun g ->
      let d = CD.decompose g in
      List.length (CD.jobs d) = Dag.n g)

let () =
  Alcotest.run "chain_decomp"
    [
      ( "cases",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "independent" `Quick test_independent;
          Alcotest.test_case "single chain" `Quick test_single_chain;
          Alcotest.test_case "binary tree" `Quick test_binary_tree_width;
          Alcotest.test_case "jobs topological" `Quick test_jobs_topological;
          Alcotest.test_case "rejects general dag" `Quick test_rejects_general;
          Alcotest.test_case "mode mismatch" `Quick test_mode_mismatch;
          Alcotest.test_case "default modes" `Quick test_default_modes;
          Alcotest.test_case "validate catches bad" `Quick
            test_validate_catches_bad;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_decomposition_valid;
          QCheck_alcotest.to_alcotest prop_width_bound;
          QCheck_alcotest.to_alcotest prop_chain_count_conserves_jobs;
        ] );
    ]
