module Instance = Suu_core.Instance
module Baselines = Suu_algo.Baselines
module Engine = Suu_sim.Engine
module Rng = Suu_prob.Rng

let random_inst seed ~n ~m ~dag =
  let rng = Rng.create seed in
  Instance.create
    ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.2 0.9)))
    ~dag

let test_greedy_picks_best () =
  let inst = Instance.independent ~p:[| [| 0.2; 0.9 |] |] in
  let policy = Baselines.greedy_rate inst in
  let decide = policy.Suu_core.Policy.fresh () in
  let a =
    decide
      {
        Suu_core.Policy.step = 0;
        unfinished = [| true; true |];
        eligible = [| true; true |];
      }
  in
  Alcotest.(check (array int)) "best job" [| 1 |] a

let test_greedy_respects_eligibility () =
  let inst = Instance.independent ~p:[| [| 0.2; 0.9 |] |] in
  let policy = Baselines.greedy_rate inst in
  let decide = policy.Suu_core.Policy.fresh () in
  let a =
    decide
      {
        Suu_core.Policy.step = 0;
        unfinished = [| true; true |];
        eligible = [| true; false |];
      }
  in
  Alcotest.(check (array int)) "only eligible" [| 0 |] a

let test_serial_follows_topo () =
  let dag = Suu_dag.Dag.create ~n:3 [ (2, 0) ] in
  let inst = random_inst 1 ~n:3 ~m:2 ~dag in
  let policy = Baselines.serial_all_machines inst in
  let decide = policy.Suu_core.Policy.fresh () in
  let a =
    decide
      {
        Suu_core.Policy.step = 0;
        unfinished = [| true; true; true |];
        eligible = [| false; true; true |];
      }
  in
  (* Topological order is 1, 2, 0: the first eligible is job 1. *)
  Alcotest.(check (array int)) "gang on first topo" [| 1; 1 |] a

let test_round_robin_rotates () =
  let inst = Instance.independent ~p:[| [| 0.5; 0.5; 0.5 |] |] in
  let policy = Baselines.round_robin inst in
  let decide = policy.Suu_core.Policy.fresh () in
  let state step =
    {
      Suu_core.Policy.step;
      unfinished = [| true; true; true |];
      eligible = [| true; true; true |];
    }
  in
  Alcotest.(check (array int)) "t=0" [| 0 |] (decide (state 0));
  Alcotest.(check (array int)) "t=1" [| 1 |] (decide (state 1));
  Alcotest.(check (array int)) "t=3 wraps" [| 0 |] (decide (state 3))

let test_static_best_machine_completes () =
  let inst = random_inst 2 ~n:6 ~m:3 ~dag:(Suu_dag.Dag.empty 6) in
  let o = Engine.run (Rng.create 5) inst (Baselines.static_best_machine inst) in
  Alcotest.(check bool) "completed" true o.Engine.completed

let test_random_assignment_deterministic_per_seed () =
  let inst = random_inst 3 ~n:4 ~m:2 ~dag:(Suu_dag.Dag.empty 4) in
  let p1 = Baselines.random_assignment ~seed:9 inst in
  let p2 = Baselines.random_assignment ~seed:9 inst in
  let a = Engine.run (Rng.create 1) inst p1 in
  let b = Engine.run (Rng.create 1) inst p2 in
  Alcotest.(check int) "same makespan" a.Engine.makespan b.Engine.makespan

let prop_all_baselines_complete =
  QCheck.Test.make ~name:"every baseline completes every dag class" ~count:30
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let dag =
        match abs seed mod 4 with
        | 0 -> Suu_dag.Dag.empty n
        | 1 -> Suu_dag.Gen.chains (Rng.split rng) ~n ~chains:(1 + (n / 3))
        | 2 -> Suu_dag.Gen.out_forest (Rng.split rng) ~n ~trees:(min 2 n)
        | _ -> Suu_dag.Gen.random_dag (Rng.split rng) ~n ~edge_prob:0.3
      in
      let inst = random_inst (seed + 1) ~n ~m:3 ~dag in
      List.for_all
        (fun policy ->
          (Engine.run (Rng.split rng) inst policy).Engine.completed)
        (Baselines.all ~seed inst))

let () =
  Alcotest.run "baselines"
    [
      ( "policies",
        [
          Alcotest.test_case "greedy best" `Quick test_greedy_picks_best;
          Alcotest.test_case "greedy eligibility" `Quick
            test_greedy_respects_eligibility;
          Alcotest.test_case "serial topo" `Quick test_serial_follows_topo;
          Alcotest.test_case "round robin" `Quick test_round_robin_rotates;
          Alcotest.test_case "static best completes" `Quick
            test_static_best_machine_completes;
          Alcotest.test_case "random deterministic" `Quick
            test_random_assignment_deterministic_per_seed;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_all_baselines_complete ]);
    ]
