module Instance = Suu_core.Instance
module Dag = Suu_dag.Dag

let sample () =
  Instance.create
    ~p:[| [| 0.5; 0.2; 0.0 |]; [| 0.1; 0.8; 0.4 |] |]
    ~dag:(Dag.create ~n:3 [ (0, 1) ])

let test_accessors () =
  let inst = sample () in
  Alcotest.(check int) "n" 3 (Instance.n inst);
  Alcotest.(check int) "m" 2 (Instance.m inst);
  Alcotest.(check (float 0.)) "p01" 0.2 (Instance.prob inst ~machine:0 ~job:1);
  Alcotest.(check (float 1e-12)) "total rate job 1" 1.0 (Instance.total_rate inst 1);
  Alcotest.(check (float 0.)) "best prob job 2" 0.4 (Instance.best_prob inst 2);
  Alcotest.(check int) "best machine job 0" 0 (Instance.best_machine inst 0);
  Alcotest.(check (float 0.)) "p_min" 0.1 (Instance.p_min inst);
  Alcotest.(check (list int)) "capable of job 2" [ 1 ] (Instance.capable_machines inst 2);
  Alcotest.(check (float 0.)) "machine 0 max" 0.5 (Instance.machine_max_prob inst 0)

let test_probs_for_job () =
  let inst = sample () in
  Alcotest.(check (array (float 0.))) "column" [| 0.2; 0.8 |]
    (Instance.probs_for_job inst 1)

let test_rejects_bad_prob () =
  Alcotest.check_raises "prob > 1"
    (Invalid_argument "Instance.create: probability outside [0,1]") (fun () ->
      ignore (Instance.independent ~p:[| [| 1.5 |] |] : Instance.t))

let test_rejects_nan () =
  Alcotest.check_raises "nan"
    (Invalid_argument "Instance.create: probability outside [0,1]") (fun () ->
      ignore (Instance.independent ~p:[| [| Float.nan |] |] : Instance.t))

let test_rejects_incapable_job () =
  Alcotest.check_raises "no capable machine"
    (Invalid_argument "Instance.create: job 1 has no capable machine")
    (fun () -> ignore (Instance.independent ~p:[| [| 0.5; 0.0 |] |] : Instance.t))

let test_rejects_dimension_mismatch () =
  Alcotest.check_raises "row length"
    (Invalid_argument "Instance.create: probability row length mismatch")
    (fun () ->
      ignore
        (Instance.create ~p:[| [| 0.5 |] |] ~dag:(Dag.empty 2) : Instance.t))

let test_rejects_no_machines () =
  Alcotest.check_raises "no machines"
    (Invalid_argument "Instance.create: no machines") (fun () ->
      ignore (Instance.create ~p:[||] ~dag:(Dag.empty 0) : Instance.t))

let test_defensive_copy () =
  let p = [| [| 0.5 |] |] in
  let inst = Instance.independent ~p in
  p.(0).(0) <- 0.9;
  Alcotest.(check (float 0.)) "copied" 0.5 (Instance.prob inst ~machine:0 ~job:0)

let test_transpose () =
  let q = [| [| 0.1; 0.2 |]; [| 0.3; 0.4 |]; [| 0.5; 0.6 |] |] in
  let p = Instance.transpose_probs q in
  Alcotest.(check int) "machines" 2 (Array.length p);
  Alcotest.(check (array (float 0.))) "machine 0 row" [| 0.1; 0.3; 0.5 |] p.(0);
  Alcotest.(check (array (float 0.))) "machine 1 row" [| 0.2; 0.4; 0.6 |] p.(1)

let () =
  Alcotest.run "instance"
    [
      ( "instance",
        [
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "probs_for_job" `Quick test_probs_for_job;
          Alcotest.test_case "rejects p>1" `Quick test_rejects_bad_prob;
          Alcotest.test_case "rejects nan" `Quick test_rejects_nan;
          Alcotest.test_case "rejects incapable job" `Quick
            test_rejects_incapable_job;
          Alcotest.test_case "rejects dim mismatch" `Quick
            test_rejects_dimension_mismatch;
          Alcotest.test_case "rejects zero machines" `Quick
            test_rejects_no_machines;
          Alcotest.test_case "defensive copy" `Quick test_defensive_copy;
          Alcotest.test_case "transpose" `Quick test_transpose;
        ] );
    ]
