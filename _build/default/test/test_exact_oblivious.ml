module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious
module EO = Suu_sim.Exact_oblivious
module Rng = Suu_prob.Rng

let feq ?(eps = 1e-6) = Alcotest.(check (float eps)) "value"

let single p = Instance.independent ~p:[| [| p |] |]

let always_cycle m n =
  (* Cycle through jobs 0..n-1, all machines on one job per step. *)
  Oblivious.create ~m ~cycle:(Array.init n (fun j -> Array.make m j)) [||]

let test_single_job_geometric () =
  let inst = single 0.25 in
  feq 4. (EO.expected_makespan inst (always_cycle 1 1))

let test_matches_regimen_exact () =
  (* A cyclic all-machines-on-first-job schedule equals the corresponding
     regimen for a single job. *)
  let inst = Instance.independent ~p:[| [| 0.5 |]; [| 0.5 |] |] in
  feq (4. /. 3.) (EO.expected_makespan inst (always_cycle 2 1))

let test_serial_cycle_two_jobs () =
  (* Cycle [job0; job1], one machine p = 1: makespan exactly 2. *)
  let inst = Instance.independent ~p:[| [| 1.0; 1.0 |] |] in
  feq 2. (EO.expected_makespan inst (always_cycle 1 2))

let test_alternating_low_prob () =
  (* Cycle [0; 1] with p = 1/2 each: cross-check against Monte-Carlo. *)
  let inst = Instance.independent ~p:[| [| 0.5; 0.5 |] |] in
  let sched = always_cycle 1 2 in
  let exact = EO.expected_makespan inst sched in
  let e =
    Suu_sim.Engine.estimate_makespan ~trials:30_000 (Rng.create 3) inst
      (Suu_core.Policy.of_oblivious "alt" sched)
  in
  let mean = e.Suu_sim.Engine.stats.Suu_prob.Stats.mean in
  let sem = e.Suu_sim.Engine.stats.Suu_prob.Stats.sem in
  Alcotest.(check bool)
    (Printf.sprintf "exact %.4f vs MC %.4f" exact mean)
    true
    (Float.abs (exact -. mean) < Float.max 0.05 (4. *. sem))

let test_cdf_prefix_then_cycle () =
  let inst = single 0.5 in
  let sched =
    Oblivious.create ~m:1 ~cycle:[| [| 0 |] |] [| [| -1 |]; [| 0 |] |]
  in
  (* Step 1 idles, then works every step: P(T<=1) = 0, P(T<=2) = 1/2... *)
  let cdf = EO.cdf inst sched ~horizon:3 in
  feq 0. cdf.(0);
  feq 0. cdf.(1);
  feq 0.5 cdf.(2);
  feq 0.75 cdf.(3)

let test_distribution_after () =
  let inst = Instance.independent ~p:[| [| 0.5; 0.5 |] |] in
  let sched = always_cycle 1 2 in
  let dist = EO.distribution_after inst sched ~steps:1 in
  (* After one step on job 0: {0,1} unfinished w.p. 1/2, {1} w.p. 1/2. *)
  Alcotest.(check int) "two states" 2 (List.length dist);
  feq 0.5 (List.assoc 0b11 dist);
  feq 0.5 (List.assoc 0b10 dist)

let test_precedence_respected () =
  (* Chain 0 -> 1; schedule works on 1 first (wasted), then cycles. *)
  let inst =
    Instance.create
      ~p:[| [| 1.0; 1.0 |] |]
      ~dag:(Suu_dag.Dag.create ~n:2 [ (0, 1) ])
  in
  let sched =
    Oblivious.create ~m:1
      ~cycle:[| [| 0 |]; [| 1 |] |]
      [| [| 1 |] |]
  in
  (* Step 1 targets ineligible job 1: nothing. Step 2 completes 0, step 3
     completes 1: makespan exactly 3. *)
  feq 3. (EO.expected_makespan inst sched)

let test_nonterminating_detected () =
  let inst = single 0.5 in
  let idle_forever = Oblivious.finite ~m:1 [| [| -1 |] |] in
  match EO.expected_makespan ~max_horizon:100 inst idle_forever with
  | exception EO.Horizon_too_short _ -> ()
  | v -> Alcotest.failf "expected Horizon_too_short, got %f" v

let test_empty_instance () =
  let inst = Instance.independent ~p:[| [||] |] in
  feq 0. (EO.expected_makespan inst (Oblivious.finite ~m:1 [||]))

let prop_exact_matches_mc =
  QCheck.Test.make ~name:"exact oblivious = monte carlo" ~count:10
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 3 and m = 1 + Rng.int rng 2 in
      let inst =
        Instance.independent
          ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.3 0.9)))
      in
      let r = Suu_algo.Suu_i_obl.build inst in
      let sched = Suu_algo.Suu_i_obl.schedule inst in
      ignore r;
      let exact = EO.expected_makespan inst sched in
      let e =
        Suu_sim.Engine.estimate_makespan ~trials:4000 (Rng.split rng) inst
          (Suu_core.Policy.of_oblivious "s" sched)
      in
      let mean = e.Suu_sim.Engine.stats.Suu_prob.Stats.mean in
      let sem = e.Suu_sim.Engine.stats.Suu_prob.Stats.sem in
      Float.abs (exact -. mean) < Float.max 0.1 (4.5 *. sem))

let prop_cdf_monotone =
  QCheck.Test.make ~name:"oblivious cdf monotone" ~count:30 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 4 in
      let inst =
        Instance.independent
          ~p:[| Array.init n (fun _ -> Rng.uniform rng 0.2 0.9) |]
      in
      let sched = always_cycle 1 n in
      let cdf = EO.cdf inst sched ~horizon:20 in
      let ok = ref true in
      for t = 1 to 20 do
        if cdf.(t) < cdf.(t - 1) -. 1e-12 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "exact_oblivious"
    [
      ( "closed forms",
        [
          Alcotest.test_case "geometric" `Quick test_single_job_geometric;
          Alcotest.test_case "two machines" `Quick test_matches_regimen_exact;
          Alcotest.test_case "serial certain" `Quick test_serial_cycle_two_jobs;
          Alcotest.test_case "alternating vs MC" `Slow test_alternating_low_prob;
          Alcotest.test_case "precedence" `Quick test_precedence_respected;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "cdf prefix+cycle" `Quick test_cdf_prefix_then_cycle;
          Alcotest.test_case "distribution_after" `Quick test_distribution_after;
          Alcotest.test_case "nontermination" `Quick test_nonterminating_detected;
          Alcotest.test_case "empty" `Quick test_empty_instance;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_exact_matches_mc;
          QCheck_alcotest.to_alcotest prop_cdf_monotone;
        ] );
    ]
