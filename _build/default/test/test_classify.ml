module Dag = Suu_dag.Dag
module Classify = Suu_dag.Classify
module Gen = Suu_dag.Gen
module Rng = Suu_prob.Rng

let shape = Alcotest.testable Classify.pp ( = )

let test_independent () =
  Alcotest.check shape "empty" Classify.Independent (Classify.classify (Dag.empty 5))

let test_chain () =
  let g = Gen.uniform_chains ~n:6 ~chains:2 in
  Alcotest.check shape "chains" Classify.Chains (Classify.classify g)

let test_out_tree () =
  let g = Gen.binary_out_tree ~n:7 in
  Alcotest.check shape "out-tree" Classify.Out_trees (Classify.classify g)

let test_in_tree () =
  let g = Dag.create ~n:3 [ (1, 0); (2, 0) ] in
  Alcotest.check shape "in-tree" Classify.In_trees (Classify.classify g)

let test_forest () =
  (* A polytree that is neither in- nor out-tree: 0 -> 1 <- 2, 1 -> 3, 1 -> 4. *)
  let g = Dag.create ~n:5 [ (0, 1); (2, 1); (1, 3); (1, 4) ] in
  Alcotest.check shape "polytree" Classify.Forest (Classify.classify g)

let test_general () =
  Alcotest.check shape "diamond" Classify.General
    (Classify.classify (Gen.diamond ~width:2))

let test_nesting () =
  (* A chain is also an out-tree, an in-tree and a forest. *)
  let g = Gen.uniform_chains ~n:4 ~chains:1 in
  List.iter
    (fun s -> Alcotest.(check bool) "matches" true (Classify.matches g s))
    [ Classify.Chains; Classify.Out_trees; Classify.In_trees; Classify.Forest;
      Classify.General ]

let test_chain_partition_known () =
  let g = Dag.create ~n:5 [ (0, 1); (1, 2); (3, 4) ] in
  Alcotest.(check (list (list int)))
    "partition" [ [ 0; 1; 2 ]; [ 3; 4 ] ]
    (Classify.chain_partition g)

let test_chain_partition_rejects_tree () =
  Alcotest.check_raises "not chains"
    (Invalid_argument "Classify.chain_partition: dag is not a chain collection")
    (fun () ->
      ignore (Classify.chain_partition (Gen.binary_out_tree ~n:5) : int list list))

let test_chain_partition_independent () =
  Alcotest.(check (list (list int)))
    "singletons" [ [ 0 ]; [ 1 ]; [ 2 ] ]
    (Classify.chain_partition (Dag.empty 3))

let check_path_cover g cover =
  let n = Dag.n g in
  let seen = Array.make n false in
  List.iter
    (fun path ->
      List.iter
        (fun v ->
          if seen.(v) then Alcotest.failf "vertex %d twice" v;
          seen.(v) <- true)
        path;
      let rec pairs = function
        | u :: (v :: _ as rest) ->
            if not (Dag.has_edge g u v) then
              Alcotest.failf "non-edge %d->%d in path" u v;
            pairs rest
        | _ -> ()
      in
      pairs path)
    cover;
  Array.iteri
    (fun v s -> if not s then Alcotest.failf "vertex %d missing" v)
    seen

let test_greedy_path_cover_diamond () =
  let g = Gen.diamond ~width:3 in
  check_path_cover g (Classify.greedy_path_cover g)

let prop_path_cover =
  QCheck.Test.make ~name:"greedy_path_cover covers with disjoint paths"
    ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 1 30) (pair int (float_bound_inclusive 0.4))
         |> map (fun (n, (seed, prob)) ->
                Gen.random_dag (Rng.create seed) ~n ~edge_prob:prob)))
    (fun g ->
      check_path_cover g (Classify.greedy_path_cover g);
      true)

let prop_generators_match_class =
  QCheck.Test.make ~name:"generators produce the announced class" ~count:100
    QCheck.(pair small_int (int_range 1 40))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let trees = 1 + (seed mod 3 |> abs) in
      let trees = min trees n in
      let chains = min (1 + (abs seed mod 4)) n in
      Classify.matches (Gen.chains (Rng.split rng) ~n ~chains) Classify.Chains
      && Classify.matches (Gen.out_forest (Rng.split rng) ~n ~trees) Classify.Out_trees
      && Classify.matches (Gen.in_forest (Rng.split rng) ~n ~trees) Classify.In_trees
      && Classify.matches
           (Gen.polytree_forest (Rng.split rng) ~n ~trees)
           Classify.Forest)

let () =
  Alcotest.run "classify"
    [
      ( "shapes",
        [
          Alcotest.test_case "independent" `Quick test_independent;
          Alcotest.test_case "chains" `Quick test_chain;
          Alcotest.test_case "out-tree" `Quick test_out_tree;
          Alcotest.test_case "in-tree" `Quick test_in_tree;
          Alcotest.test_case "polytree forest" `Quick test_forest;
          Alcotest.test_case "general" `Quick test_general;
          Alcotest.test_case "class nesting" `Quick test_nesting;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "chain partition" `Quick test_chain_partition_known;
          Alcotest.test_case "chain partition rejects trees" `Quick
            test_chain_partition_rejects_tree;
          Alcotest.test_case "independent singletons" `Quick
            test_chain_partition_independent;
          Alcotest.test_case "path cover diamond" `Quick
            test_greedy_path_cover_diamond;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_path_cover;
          QCheck_alcotest.to_alcotest prop_generators_match_class;
        ] );
    ]
