module Instance = Suu_core.Instance
module Exact = Suu_sim.Exact
module Rng = Suu_prob.Rng

let feq ?(eps = 1e-9) = Alcotest.(check (float eps)) "value"

let all_machines_regimen inst unfinished =
  (* All machines on the lowest unfinished job. *)
  let target = ref (-1) in
  Array.iteri (fun j u -> if u && !target < 0 then target := j) unfinished;
  Array.make (Instance.m inst) !target

let test_single_job_geometric () =
  let inst = Instance.independent ~p:[| [| 0.25 |] |] in
  feq 4. (Exact.expected_makespan_regimen inst (all_machines_regimen inst))

let test_two_machines_one_job () =
  let inst = Instance.independent ~p:[| [| 0.5 |]; [| 0.5 |] |] in
  feq (4. /. 3.)
    (Exact.expected_makespan_regimen inst (all_machines_regimen inst))

let test_serial_two_jobs () =
  (* One machine, jobs p=1/2 each, served one at a time: E = 2 + 2 = 4. *)
  let inst = Instance.independent ~p:[| [| 0.5; 0.5 |] |] in
  feq 4. (Exact.expected_makespan_regimen inst (all_machines_regimen inst))

(* Two independent jobs worked in parallel by their own machines: makespan
   is max of two geometrics. For p=q=1/2:
   E[max] = E[A] + E[B] - E[min] = 2 + 2 - 1/(1-(1/2)(1/2))... careful:
   min of two independent geometrics(1/2) is geometric(1 - 1/4 = 3/4).
   E[max] = 2 + 2 - 4/3 = 8/3. *)
let test_parallel_max_geometric () =
  let inst = Instance.independent ~p:[| [| 0.5; 0. |]; [| 0.; 0.5 |] |] in
  let regimen unfinished =
    [| (if unfinished.(0) then 0 else -1); (if unfinished.(1) then 1 else -1) |]
  in
  feq (8. /. 3.) (Exact.expected_makespan_regimen inst regimen)

let test_chain_sum () =
  (* Chain 0 -> 1, each job geometric(1/3) with all machines: E = 3 + 3. *)
  let inst =
    Instance.create
      ~p:[| [| 1. /. 3.; 1. /. 3. |] |]
      ~dag:(Suu_dag.Dag.create ~n:2 [ (0, 1) ])
  in
  feq 6. (Exact.expected_makespan_regimen inst (all_machines_regimen inst))

let test_eligible_mask () =
  let inst =
    Instance.create
      ~p:[| [| 0.5; 0.5; 0.5 |] |]
      ~dag:(Suu_dag.Dag.create ~n:3 [ (0, 1) ])
  in
  let full = Exact.full_mask inst in
  Alcotest.(check int) "full" 0b111 full;
  Alcotest.(check int) "0 and 2 eligible" 0b101 (Exact.eligible_mask inst full);
  Alcotest.(check int) "after 0 done" 0b110 (Exact.eligible_mask inst 0b110)

let test_step_distribution_sums_to_one () =
  let inst = Instance.independent ~p:[| [| 0.3; 0.6 |]; [| 0.5; 0.2 |] |] in
  let dist = Exact.step_distribution inst ~mask:0b11 [| 0; 1 |] in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. dist in
  feq 1. total;
  (* Individual probabilities: job0 completes wp 0.3, job1 wp 0.2. *)
  let find mask = List.assoc mask dist in
  feq (0.3 *. 0.2) (find 0b00);
  feq (0.3 *. 0.8) (find 0b10);
  feq (0.7 *. 0.2) (find 0b01);
  feq (0.7 *. 0.8) (find 0b11)

let test_step_distribution_ignores_ineligible () =
  let inst =
    Instance.create
      ~p:[| [| 0.5; 0.5 |] |]
      ~dag:(Suu_dag.Dag.create ~n:2 [ (0, 1) ])
  in
  (* Machine points at job 1 which is not eligible: nothing can change. *)
  let dist = Exact.step_distribution inst ~mask:0b11 [| 1 |] in
  Alcotest.(check int) "single outcome" 1 (List.length dist);
  feq 1. (List.assoc 0b11 dist)

let test_nonterminating_detected () =
  let inst = Instance.independent ~p:[| [| 0.5 |] |] in
  let idle _ = [| -1 |] in
  Alcotest.check_raises "raises" Exact.Nonterminating (fun () ->
      ignore (Exact.expected_makespan_regimen inst idle : float))

let test_cdf_single_job () =
  let inst = Instance.independent ~p:[| [| 0.5 |] |] in
  let cdf =
    Exact.makespan_distribution_regimen inst (all_machines_regimen inst)
      ~horizon:4
  in
  feq 0. cdf.(0);
  feq 0.5 cdf.(1);
  feq 0.75 cdf.(2);
  feq 0.875 cdf.(3);
  feq 0.9375 cdf.(4)

let test_cdf_monotone_random () =
  let rng = Rng.create 5 in
  let inst =
    Instance.independent
      ~p:(Array.init 2 (fun _ -> Array.init 3 (fun _ -> Rng.uniform rng 0.2 0.9)))
  in
  let cdf =
    Exact.makespan_distribution_regimen inst (all_machines_regimen inst)
      ~horizon:30
  in
  for t = 1 to 30 do
    Alcotest.(check bool) "monotone" true (cdf.(t) >= cdf.(t - 1) -. 1e-12)
  done;
  Alcotest.(check bool) "approaches 1" true (cdf.(30) > 0.9)

(* Cross-validation: exact expectation within the Monte-Carlo CI. *)
let prop_exact_matches_monte_carlo =
  QCheck.Test.make ~name:"exact = monte carlo (within 4 sigma)" ~count:20
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 4 and m = 1 + Rng.int rng 3 in
      let inst =
        Instance.independent
          ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.2 0.9)))
      in
      let exact =
        Exact.expected_makespan_regimen inst (all_machines_regimen inst)
      in
      let policy =
        Suu_core.Policy.of_regimen "all-machines" (all_machines_regimen inst)
      in
      let e =
        Suu_sim.Engine.estimate_makespan ~trials:3000 (Rng.split rng) inst
          policy
      in
      let mean = e.Suu_sim.Engine.stats.Suu_prob.Stats.mean in
      let sem = e.Suu_sim.Engine.stats.Suu_prob.Stats.sem in
      Float.abs (mean -. exact) < Float.max 0.05 (4. *. sem))

let prop_step_distribution_total =
  QCheck.Test.make ~name:"step distribution sums to 1" ~count:200
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 5 and m = 1 + Rng.int rng 3 in
      let inst =
        Instance.independent
          ~p:
            (Array.init m (fun _ ->
                 Array.init n (fun _ -> Rng.uniform rng 0.05 0.95)))
      in
      let a = Array.init m (fun _ -> Rng.int rng (n + 1) - 1) in
      let mask = Exact.full_mask inst in
      let dist = Exact.step_distribution inst ~mask a in
      Float.abs (List.fold_left (fun acc (_, p) -> acc +. p) 0. dist -. 1.)
      < 1e-9)

let () =
  Alcotest.run "exact"
    [
      ( "closed forms",
        [
          Alcotest.test_case "geometric" `Quick test_single_job_geometric;
          Alcotest.test_case "combined machines" `Quick
            test_two_machines_one_job;
          Alcotest.test_case "serial jobs" `Quick test_serial_two_jobs;
          Alcotest.test_case "parallel max" `Quick test_parallel_max_geometric;
          Alcotest.test_case "chain sum" `Quick test_chain_sum;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "eligible mask" `Quick test_eligible_mask;
          Alcotest.test_case "step distribution" `Quick
            test_step_distribution_sums_to_one;
          Alcotest.test_case "ineligible ignored" `Quick
            test_step_distribution_ignores_ineligible;
          Alcotest.test_case "nontermination" `Quick test_nonterminating_detected;
          Alcotest.test_case "cdf single job" `Quick test_cdf_single_job;
          Alcotest.test_case "cdf monotone" `Quick test_cdf_monotone_random;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_exact_matches_monte_carlo;
          QCheck_alcotest.to_alcotest prop_step_distribution_total;
        ] );
    ]
