module Instance = Suu_core.Instance
module Malewicz = Suu_algo.Malewicz
module Exact = Suu_sim.Exact
module Rng = Suu_prob.Rng

let feq ?(eps = 1e-9) = Alcotest.(check (float eps)) "value"

let test_single_job () =
  let inst = Instance.independent ~p:[| [| 0.25 |] |] in
  feq 4. (Malewicz.optimal_value inst)

let test_single_job_two_machines () =
  (* Optimal uses both machines: success 3/4, E = 4/3. *)
  let inst = Instance.independent ~p:[| [| 0.5 |]; [| 0.5 |] |] in
  feq (4. /. 3.) (Malewicz.optimal_value inst)

let test_two_jobs_one_machine () =
  (* Serve either first: E = 2 + 2 = 4 regardless of order. *)
  let inst = Instance.independent ~p:[| [| 0.5; 0.5 |] |] in
  feq 4. (Malewicz.optimal_value inst)

let test_specialists_parallel () =
  (* Each machine capable of exactly one job: optimal is the parallel
     regimen, E[max Geom(1/2), Geom(1/2)] = 8/3. *)
  let inst = Instance.independent ~p:[| [| 0.5; 0. |]; [| 0.; 0.5 |] |] in
  feq (8. /. 3.) (Malewicz.optimal_value inst)

let test_optimal_beats_any_regimen () =
  let rng = Rng.create 5 in
  let inst =
    Instance.independent
      ~p:(Array.init 2 (fun _ -> Array.init 3 (fun _ -> Rng.uniform rng 0.2 0.9)))
  in
  let opt = Malewicz.optimal_value inst in
  (* Compare against several handcrafted regimens. *)
  let msm unfinished = Suu_algo.Msm.assign inst ~jobs:unfinished in
  let serial unfinished =
    let target = ref (-1) in
    Array.iteri (fun j u -> if u && !target < 0 then target := j) unfinished;
    Array.make 2 !target
  in
  List.iter
    (fun regimen ->
      let v = Exact.expected_makespan_regimen inst regimen in
      Alcotest.(check bool) "opt <= regimen" true (opt <= v +. 1e-9))
    [ msm; serial ]

let test_policy_achieves_value () =
  let rng = Rng.create 6 in
  let inst =
    Instance.independent
      ~p:(Array.init 2 (fun _ -> Array.init 3 (fun _ -> Rng.uniform rng 0.3 0.9)))
  in
  let r = Malewicz.optimal inst in
  let e =
    Suu_sim.Engine.estimate_makespan ~trials:4000 (Rng.create 17) inst
      r.Malewicz.policy
  in
  let mean = e.Suu_sim.Engine.stats.Suu_prob.Stats.mean in
  let sem = e.Suu_sim.Engine.stats.Suu_prob.Stats.sem in
  Alcotest.(check bool) "MC matches DP value" true
    (Float.abs (mean -. r.Malewicz.value) < Float.max 0.05 (4. *. sem))

let test_precedence_chain () =
  (* Chain of two jobs, one machine p = 1/2: E = 4 (forced serial). *)
  let inst =
    Instance.create
      ~p:[| [| 0.5; 0.5 |] |]
      ~dag:(Suu_dag.Dag.create ~n:2 [ (0, 1) ])
  in
  feq 4. (Malewicz.optimal_value inst)

let test_precedence_helps_parallelism () =
  (* Fork: 0 -> 1, 0 -> 2 with two machines. While 0 runs both machines
     gang on it; optimal value is strictly better than serial-everything. *)
  let inst =
    Instance.create
      ~p:[| [| 0.5; 0.5; 0.5 |]; [| 0.5; 0.5; 0.5 |] |]
      ~dag:(Suu_dag.Dag.create ~n:3 [ (0, 1); (0, 2) ])
  in
  let opt = Malewicz.optimal_value inst in
  let serial unfinished =
    let target = ref (-1) in
    Array.iteri (fun j u -> if u && !target < 0 then target := j) unfinished;
    Array.make 2 !target
  in
  (* Serial is a valid regimen for this dag, so opt <= serial; and with
     independent branches the optimal splits machines, so strictly less. *)
  let serial_v = Exact.expected_makespan_regimen inst serial in
  Alcotest.(check bool) "opt < serial" true (opt < serial_v)

let test_states_gate () =
  let inst = Instance.independent ~p:[| Array.make 10 0.5 |] in
  Alcotest.check_raises "too many states"
    (Malewicz.Too_expensive "more than 5 states") (fun () ->
      ignore (Malewicz.optimal ~max_states:5 inst : Malewicz.result))

let test_assignment_gate () =
  let inst =
    Instance.independent
      ~p:(Array.init 6 (fun _ -> Array.make 6 0.5))
  in
  match Malewicz.optimal ~max_assignments_per_state:10 inst with
  | exception Malewicz.Too_expensive _ -> ()
  | _ -> Alcotest.fail "expected gate to trip"

let test_estimate () =
  let inst = Instance.independent ~p:[| [| 0.5; 0.5 |]; [| 0.5; 0. |] |] in
  (* Two distinct machine classes of size 1: C(2,1) * C(1,1) = 2. *)
  Alcotest.(check (float 1e-9)) "estimate" 2.
    (Malewicz.assignments_per_state_estimate inst);
  (* Four identical machines, 3 jobs: multisets C(3+4-1, 4) = 15. *)
  let identical =
    Instance.independent ~p:(Array.make 4 [| 0.5; 0.4; 0.3 |])
  in
  Alcotest.(check (float 1e-9)) "multisets" 15.
    (Malewicz.assignments_per_state_estimate identical)

let test_symmetry_preserves_optimum () =
  (* With identical machines the multiset enumeration must still find the
     true optimum: the returned policy's exact value equals the DP value,
     and both match the hand-computable two-machine single-job case. *)
  let inst = Instance.independent ~p:[| [| 0.5 |]; [| 0.5 |] |] in
  let r = Malewicz.optimal inst in
  feq (4. /. 3.) r.Malewicz.value;
  let rng = Rng.create 4 in
  let inst2 =
    Instance.independent
      ~p:
        (let row = Array.init 3 (fun _ -> Rng.uniform rng 0.2 0.8) in
         [| row; Array.copy row; Array.copy row |])
  in
  let r2 = Malewicz.optimal inst2 in
  let achieved =
    Exact.expected_makespan_regimen inst2 (fun unfinished ->
        let decide = r2.Malewicz.policy.Suu_core.Policy.fresh () in
        decide { Suu_core.Policy.step = 0; unfinished; eligible = unfinished })
  in
  feq ~eps:1e-9 r2.Malewicz.value achieved

let prop_optimal_le_msm_regimen =
  QCheck.Test.make ~name:"DP optimum <= MSM regimen (exact)" ~count:25
    QCheck.(triple small_int (int_range 1 2) (int_range 1 4))
    (fun (seed, m, n) ->
      let rng = Rng.create seed in
      let inst =
        Instance.independent
          ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.2 0.9)))
      in
      let opt = Malewicz.optimal_value inst in
      let msm unfinished = Suu_algo.Msm.assign inst ~jobs:unfinished in
      opt <= Exact.expected_makespan_regimen inst msm +. 1e-9)

let prop_optimal_at_least_rate_bound =
  QCheck.Test.make ~name:"DP optimum >= rate lower bound" ~count:25
    QCheck.(triple small_int (int_range 1 3) (int_range 1 4))
    (fun (seed, m, n) ->
      let rng = Rng.create seed in
      let inst =
        Instance.independent
          ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.1 0.9)))
      in
      let opt = Malewicz.optimal_value inst in
      let bounds = Suu_algo.Bounds.compute ~with_lp:false inst in
      opt >= bounds.Suu_algo.Bounds.rate -. 1e-9)

let () =
  Alcotest.run "malewicz"
    [
      ( "closed forms",
        [
          Alcotest.test_case "single job" `Quick test_single_job;
          Alcotest.test_case "two machines" `Quick test_single_job_two_machines;
          Alcotest.test_case "two jobs serial" `Quick test_two_jobs_one_machine;
          Alcotest.test_case "specialists" `Quick test_specialists_parallel;
          Alcotest.test_case "chain" `Quick test_precedence_chain;
        ] );
      ( "optimality",
        [
          Alcotest.test_case "beats regimens" `Quick
            test_optimal_beats_any_regimen;
          Alcotest.test_case "policy achieves value" `Slow
            test_policy_achieves_value;
          Alcotest.test_case "fork parallelism" `Quick
            test_precedence_helps_parallelism;
        ] );
      ( "gates",
        [
          Alcotest.test_case "state gate" `Quick test_states_gate;
          Alcotest.test_case "assignment gate" `Quick test_assignment_gate;
          Alcotest.test_case "estimate" `Quick test_estimate;
          Alcotest.test_case "symmetry optimum" `Quick
            test_symmetry_preserves_optimum;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_optimal_le_msm_regimen;
          QCheck_alcotest.to_alcotest prop_optimal_at_least_rate_bound;
        ] );
    ]
