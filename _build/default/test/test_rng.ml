module Rng = Suu_prob.Rng

let check_float = Alcotest.(check (float 1e-9))

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let distinct = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then distinct := true
  done;
  Alcotest.(check bool) "different seeds differ" true !distinct

let test_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.int64 a : int64);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_int_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_bad_bound () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0 : int))

let test_int_uniformity () =
  let rng = Rng.create 5 in
  let buckets = Array.make 10 0 in
  let samples = 100_000 in
  for _ = 1 to samples do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun k c ->
      let expected = samples / 10 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d count %d too far from %d" k c expected)
    buckets

let test_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_float_mean () =
  let rng = Rng.create 13 in
  let total = ref 0. in
  let samples = 100_000 in
  for _ = 1 to samples do
    total := !total +. Rng.float rng
  done;
  let mean = !total /. Float.of_int samples in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_uniform_range () =
  let rng = Rng.create 17 in
  for _ = 1 to 1000 do
    let v = Rng.uniform rng 2.5 3.5 in
    Alcotest.(check bool) "in [2.5,3.5)" true (v >= 2.5 && v < 3.5)
  done

let test_bernoulli_extremes () =
  let rng = Rng.create 19 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.);
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.);
    Alcotest.(check bool) "p<0 never" false (Rng.bernoulli rng (-0.5));
    Alcotest.(check bool) "p>1 always" true (Rng.bernoulli rng 1.5)
  done

let test_bernoulli_mean () =
  let rng = Rng.create 23 in
  let hits = ref 0 in
  let samples = 100_000 in
  for _ = 1 to samples do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let mean = Float.of_int !hits /. Float.of_int samples in
  Alcotest.(check bool) "mean near 0.3" true (Float.abs (mean -. 0.3) < 0.01)

let test_geometric_mean () =
  let rng = Rng.create 29 in
  let total = ref 0 in
  let samples = 50_000 in
  for _ = 1 to samples do
    total := !total + Rng.geometric rng 0.25
  done;
  let mean = Float.of_int !total /. Float.of_int samples in
  (* E[Geom(1/4)] = 4. *)
  Alcotest.(check bool) "mean near 4" true (Float.abs (mean -. 4.) < 0.1)

let test_geometric_support () =
  let rng = Rng.create 31 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "at least 1" true (Rng.geometric rng 0.9 >= 1)
  done;
  Alcotest.(check int) "p=1 deterministic" 1 (Rng.geometric rng 1.)

let test_exponential_mean () =
  let rng = Rng.create 37 in
  let total = ref 0. in
  let samples = 50_000 in
  for _ = 1 to samples do
    total := !total +. Rng.exponential rng 2.
  done;
  let mean = !total /. Float.of_int samples in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_pick () =
  let rng = Rng.create 41 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Rng.pick rng arr) arr)
  done

let test_split_streams_differ () =
  let a = Rng.create 43 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 20 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check int) "split streams differ" 0 !same

let prop_permutation =
  QCheck.Test.make ~name:"permutation is a permutation" ~count:200
    QCheck.(pair small_int small_int)
    (fun (seed, k) ->
      let n = 1 + (k mod 50) in
      let p = Rng.permutation (Rng.create seed) n in
      let seen = Array.make n false in
      Array.iter (fun v -> seen.(v) <- true) p;
      Array.length p = n && Array.for_all (fun b -> b) seen)

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      let b = Array.copy a in
      Rng.shuffle (Rng.create seed) b;
      List.sort compare (Array.to_list a) = List.sort compare (Array.to_list b))

let () =
  ignore check_float;
  Alcotest.run "rng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_streams_differ;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "int range" `Quick test_int_range;
          Alcotest.test_case "int bad bound" `Quick test_int_bad_bound;
          Alcotest.test_case "int uniformity" `Slow test_int_uniformity;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float mean" `Slow test_float_mean;
          Alcotest.test_case "uniform range" `Quick test_uniform_range;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "bernoulli mean" `Slow test_bernoulli_mean;
          Alcotest.test_case "geometric mean" `Slow test_geometric_mean;
          Alcotest.test_case "geometric support" `Quick test_geometric_support;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          Alcotest.test_case "pick" `Quick test_pick;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_permutation;
          QCheck_alcotest.to_alcotest prop_shuffle_preserves_multiset;
        ] );
    ]
