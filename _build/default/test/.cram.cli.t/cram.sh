  $ suu gen -w figure1 -o fig1.inst --seed 1
  $ suu info -f fig1.inst
  $ suu exact -f fig1.inst
  $ suu gen -w grid-workflow -n 12 -m 3 --seed 2 -o flow.inst
  $ suu decompose -f flow.inst
  $ suu plan -f flow.inst -o flow.plan
  $ suu solve -f fig1.inst --trials 50 --seed 3
  $ suu simulate -f flow.inst --plan flow.plan --gantt --trials 10 --seed 4 | head -4
