test/test_suu_i_obl.ml: Alcotest Array QCheck QCheck_alcotest Suu_algo Suu_core Suu_prob Suu_sim
