test/test_simplex.ml: Alcotest Array Format List Printf QCheck QCheck_alcotest String Suu_lp Suu_prob
