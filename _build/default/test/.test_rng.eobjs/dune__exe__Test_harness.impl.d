test/test_harness.ml: Alcotest Array Filename Float List QCheck QCheck_alcotest String Suu_algo Suu_core Suu_dag Suu_harness Suu_prob Sys
