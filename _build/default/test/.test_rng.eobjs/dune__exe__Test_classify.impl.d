test/test_classify.ml: Alcotest Array List QCheck QCheck_alcotest Suu_dag Suu_prob
