test/test_delay.ml: Alcotest Array Float List QCheck QCheck_alcotest Suu_algo Suu_core Suu_prob
