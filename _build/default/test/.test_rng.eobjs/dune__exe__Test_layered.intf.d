test/test_layered.mli:
