test/test_msm.ml: Alcotest Array List QCheck QCheck_alcotest Suu_algo Suu_core Suu_prob
