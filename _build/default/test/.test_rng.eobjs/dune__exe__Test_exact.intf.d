test/test_exact.mli:
