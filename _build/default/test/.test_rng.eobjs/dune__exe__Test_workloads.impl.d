test/test_workloads.ml: Alcotest Float List QCheck QCheck_alcotest String Suu_core Suu_dag Suu_prob Suu_workloads
