test/test_jobshop.mli:
