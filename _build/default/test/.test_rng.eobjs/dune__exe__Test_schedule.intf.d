test/test_schedule.mli:
