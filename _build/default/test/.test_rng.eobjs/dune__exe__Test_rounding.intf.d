test/test_rounding.mli:
