test/test_simplex.mli:
