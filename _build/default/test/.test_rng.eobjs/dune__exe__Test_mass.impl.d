test/test_mass.ml: Alcotest Array Gen List QCheck QCheck_alcotest Suu_core Suu_dag Suu_prob
