test/test_weighted_msm.ml: Alcotest Array List QCheck QCheck_alcotest Suu_algo Suu_core Suu_dag Suu_prob Suu_sim
