test/test_jobshop.ml: Alcotest Array Float List QCheck QCheck_alcotest Suu_jobshop Suu_prob
