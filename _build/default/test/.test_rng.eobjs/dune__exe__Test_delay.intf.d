test/test_delay.mli:
