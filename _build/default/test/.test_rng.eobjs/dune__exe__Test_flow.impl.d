test/test_flow.ml: Alcotest Array List QCheck QCheck_alcotest Suu_flow Suu_prob
