test/test_msm_ext.ml: Alcotest Array Float QCheck QCheck_alcotest Suu_algo Suu_core Suu_prob
