test/test_chain_decomp.mli:
