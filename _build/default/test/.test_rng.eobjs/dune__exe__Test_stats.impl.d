test/test_stats.ml: Alcotest Array Float Gen QCheck QCheck_alcotest Suu_prob
