test/test_chernoff.mli:
