test/test_mass.mli:
