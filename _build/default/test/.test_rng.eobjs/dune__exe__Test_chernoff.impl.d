test/test_chernoff.ml: Alcotest Float QCheck QCheck_alcotest Suu_prob
