test/test_suu_i_obl.mli:
