test/test_exact_oblivious.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Suu_algo Suu_core Suu_dag Suu_prob Suu_sim
