test/test_exact_oblivious.mli:
