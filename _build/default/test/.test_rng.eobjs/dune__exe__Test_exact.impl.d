test/test_exact.ml: Alcotest Array Float List QCheck QCheck_alcotest Suu_core Suu_dag Suu_prob Suu_sim
