test/test_transform.ml: Alcotest Array Float List QCheck QCheck_alcotest Suu_algo Suu_core Suu_dag Suu_prob
