test/test_classify.mli:
