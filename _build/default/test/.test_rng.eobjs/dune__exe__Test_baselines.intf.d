test/test_baselines.mli:
