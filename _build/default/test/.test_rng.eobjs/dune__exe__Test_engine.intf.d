test/test_engine.mli:
