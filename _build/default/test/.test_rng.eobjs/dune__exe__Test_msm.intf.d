test/test_msm.mli:
