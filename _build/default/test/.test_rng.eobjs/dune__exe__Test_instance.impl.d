test/test_instance.ml: Alcotest Array Float Suu_core Suu_dag
