test/test_rounding.ml: Alcotest Array Float Hashtbl List Printf QCheck QCheck_alcotest Suu_algo Suu_core Suu_dag Suu_prob Suu_workloads
