test/test_schedule.ml: Alcotest Array Float List QCheck QCheck_alcotest Suu_core Suu_dag Suu_prob
