test/test_rng.ml: Alcotest Array Float List QCheck QCheck_alcotest Suu_prob
