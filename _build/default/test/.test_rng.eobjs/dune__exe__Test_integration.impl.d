test/test_integration.ml: Alcotest Array Filename Float Printf QCheck QCheck_alcotest Suu_algo Suu_core Suu_dag Suu_harness Suu_prob Suu_sim Suu_workloads Sys
