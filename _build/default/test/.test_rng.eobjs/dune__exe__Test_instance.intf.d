test/test_instance.mli:
