test/test_engine.ml: Alcotest Array Float Hashtbl List Printf QCheck QCheck_alcotest Suu_algo Suu_core Suu_dag Suu_prob Suu_sim Suu_workloads
