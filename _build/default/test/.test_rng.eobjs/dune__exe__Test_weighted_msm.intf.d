test/test_weighted_msm.mli:
