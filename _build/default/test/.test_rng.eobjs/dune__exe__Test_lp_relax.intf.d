test/test_lp_relax.mli:
