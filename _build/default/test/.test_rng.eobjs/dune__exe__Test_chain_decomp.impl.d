test/test_chain_decomp.ml: Alcotest Array Format List QCheck QCheck_alcotest Suu_dag Suu_prob
