test/test_bounds.mli:
