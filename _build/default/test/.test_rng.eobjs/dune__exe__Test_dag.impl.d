test/test_dag.ml: Alcotest Array Format List QCheck QCheck_alcotest String Suu_dag Suu_prob
