test/test_solver.ml: Alcotest Array QCheck QCheck_alcotest Suu_algo Suu_core Suu_dag Suu_prob Suu_sim
