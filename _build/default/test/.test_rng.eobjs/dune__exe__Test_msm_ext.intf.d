test/test_msm_ext.mli:
