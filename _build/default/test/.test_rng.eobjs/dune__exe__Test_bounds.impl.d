test/test_bounds.ml: Alcotest Array QCheck QCheck_alcotest Suu_algo Suu_core Suu_dag Suu_prob
