test/test_malewicz.mli:
