module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious
module Mass = Suu_core.Mass
module Pipeline = Suu_algo.Pipeline
module Rng = Suu_prob.Rng

let uniform_p rng m n = Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.1 0.9))

let chain_instance seed ~n ~m ~chains =
  let rng = Rng.create seed in
  let dag = Suu_dag.Gen.chains (Rng.split rng) ~n ~chains in
  Instance.create ~p:(uniform_p rng m n) ~dag

let forest_instance seed ~n ~m =
  let rng = Rng.create seed in
  let dag = Suu_dag.Gen.polytree_forest (Rng.split rng) ~n ~trees:2 in
  Instance.create ~p:(uniform_p rng m n) ~dag

(* The pipeline's central invariant: the accumass schedule gives every job
   mass >= 1/2 and never touches a job before its predecessors reached
   mass 1/2 (AccuMass-C conditions). *)
let check_accumass inst (b : Pipeline.build) =
  let horizon = Oblivious.prefix_length b.Pipeline.accumass in
  match
    Mass.precedence_respecting inst b.Pipeline.accumass ~target:0.5
      ~horizon:(horizon + 1)
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_chains_accumass () =
  let inst = chain_instance 1 ~n:10 ~m:3 ~chains:3 in
  check_accumass inst (Suu_algo.Chains.build inst)

let test_trees_accumass () =
  let rng = Rng.create 2 in
  let dag = Suu_dag.Gen.out_forest (Rng.split rng) ~n:12 ~trees:2 in
  let inst = Instance.create ~p:(uniform_p rng 3 12) ~dag in
  check_accumass inst (Suu_algo.Trees.build inst)

let test_forest_accumass () =
  let inst = forest_instance 3 ~n:12 ~m:3 in
  check_accumass inst (Suu_algo.Forest.build inst)

let test_schedule_validates () =
  let inst = chain_instance 4 ~n:8 ~m:2 ~chains:2 in
  let b = Suu_algo.Chains.build inst in
  match Oblivious.validate inst b.Pipeline.schedule with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_schedule_has_fallback_cycle () =
  let inst = chain_instance 5 ~n:6 ~m:2 ~chains:2 in
  let b = Suu_algo.Chains.build inst in
  Alcotest.(check int) "cycle = n" 6 (Oblivious.cycle_length b.Pipeline.schedule)

let test_execution_completes () =
  let inst = chain_instance 6 ~n:10 ~m:4 ~chains:2 in
  let b = Suu_algo.Chains.build inst in
  let policy = Suu_core.Policy.of_oblivious "suu-c" b.Pipeline.schedule in
  let o = Suu_sim.Engine.run (Rng.create 9) inst policy in
  Alcotest.(check bool) "completed" true o.Suu_sim.Engine.completed

let test_diagnostics_sanity () =
  let inst = chain_instance 7 ~n:9 ~m:3 ~chains:3 in
  let b = Suu_algo.Chains.build inst in
  let d = b.Pipeline.diagnostics in
  Alcotest.(check int) "one block" 1 d.Pipeline.blocks;
  Alcotest.(check bool) "sigma >= 1" true (d.Pipeline.sigma >= 1);
  Alcotest.(check bool) "core >= pseudo length" true
    (d.Pipeline.core_length >= d.Pipeline.pseudo_length);
  Alcotest.(check bool) "t* positive" true
    (List.for_all (fun t -> t > 0.) d.Pipeline.lp_t_star);
  Alcotest.(check bool) "replicated length" true
    (Oblivious.prefix_length b.Pipeline.schedule
    = d.Pipeline.core_length * d.Pipeline.sigma)

let test_rejects_incomplete_blocks () =
  let inst = chain_instance 8 ~n:4 ~m:2 ~chains:2 in
  Alcotest.check_raises "missing jobs"
    (Invalid_argument "Pipeline: blocks do not cover all jobs") (fun () ->
      ignore (Pipeline.build inst ~blocks:[ [ [ 0 ] ] ] : Pipeline.build))

let test_rejects_backwards_blocks () =
  let dag = Suu_dag.Dag.create ~n:2 [ (0, 1) ] in
  let inst = Instance.create ~p:[| [| 0.5; 0.5 |] |] ~dag in
  Alcotest.check_raises "backwards"
    (Invalid_argument "Pipeline: precedence edge crosses blocks backwards")
    (fun () ->
      ignore
        (Pipeline.build inst ~blocks:[ [ [ 1 ] ]; [ [ 0 ] ] ] : Pipeline.build))

let test_rejects_non_edge_chain () =
  let dag = Suu_dag.Dag.create ~n:3 [ (0, 1) ] in
  let inst = Instance.create ~p:[| [| 0.5; 0.5; 0.5 |] |] ~dag in
  Alcotest.check_raises "non-edge"
    (Invalid_argument "Pipeline: chain step is not a dag edge") (fun () ->
      ignore
        (Pipeline.build inst ~blocks:[ [ [ 0; 2 ]; [ 1 ] ] ] : Pipeline.build))

let test_chains_requires_chain_dag () =
  let inst =
    Instance.create
      ~p:[| Array.make 4 0.5 |]
      ~dag:(Suu_dag.Gen.binary_out_tree ~n:4)
  in
  Alcotest.check_raises "tree rejected"
    (Invalid_argument "Classify.chain_partition: dag is not a chain collection")
    (fun () -> ignore (Suu_algo.Chains.build inst : Pipeline.build))

let test_trees_requires_tree_dag () =
  let inst = forest_instance 10 ~n:8 ~m:2 in
  (* polytree_forest with both orientations is usually neither in nor out
     trees; if it happens to be, skip. *)
  let dag = Instance.dag inst in
  if
    (not (Suu_dag.Classify.matches dag Suu_dag.Classify.Out_trees))
    && not (Suu_dag.Classify.matches dag Suu_dag.Classify.In_trees)
  then
    Alcotest.check_raises "forest rejected by Trees"
      (Invalid_argument "Trees.build: dag is not a collection of out- or in-trees")
      (fun () -> ignore (Suu_algo.Trees.build inst : Pipeline.build))

let test_lp_lower_bound_positive () =
  let inst = chain_instance 11 ~n:6 ~m:2 ~chains:2 in
  let b = Suu_algo.Chains.build inst in
  Alcotest.(check bool) "positive" true (Pipeline.lp_lower_bound b > 0.)

let test_paper_params_work () =
  let inst = chain_instance 12 ~n:6 ~m:2 ~chains:2 in
  let b = Suu_algo.Chains.build ~params:Pipeline.paper_params inst in
  check_accumass inst b

let prop_accumass_invariant =
  QCheck.Test.make ~name:"pipeline accumass invariant (all dag classes)"
    ~count:25
    QCheck.(triple small_int (int_range 1 4) (int_range 2 12))
    (fun (seed, m, n) ->
      let rng = Rng.create seed in
      let dag =
        match abs seed mod 3 with
        | 0 -> Suu_dag.Gen.chains (Rng.split rng) ~n ~chains:(1 + (n / 3))
        | 1 -> Suu_dag.Gen.out_forest (Rng.split rng) ~n ~trees:(min 2 n)
        | _ -> Suu_dag.Gen.polytree_forest (Rng.split rng) ~n ~trees:(min 2 n)
      in
      let inst = Instance.create ~p:(uniform_p rng m n) ~dag in
      let b =
        match Suu_dag.Classify.classify dag with
        | Suu_dag.Classify.Independent | Suu_dag.Classify.Chains ->
            Suu_algo.Chains.build inst
        | Suu_dag.Classify.Out_trees | Suu_dag.Classify.In_trees ->
            Suu_algo.Trees.build inst
        | _ -> Suu_algo.Forest.build inst
      in
      let horizon = Oblivious.prefix_length b.Pipeline.accumass in
      match
        Mass.precedence_respecting inst b.Pipeline.accumass ~target:0.5
          ~horizon:(horizon + 1)
      with
      | Ok () -> true
      | Error _ -> false)

let prop_executions_complete =
  QCheck.Test.make ~name:"pipeline schedules complete" ~count:15
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, n) ->
      let inst = chain_instance seed ~n ~m:3 ~chains:(1 + (n / 4)) in
      let b = Suu_algo.Chains.build inst in
      let policy = Suu_core.Policy.of_oblivious "p" b.Pipeline.schedule in
      (Suu_sim.Engine.run (Rng.create (seed * 7)) inst policy)
        .Suu_sim.Engine.completed)

let () =
  Alcotest.run "pipeline"
    [
      ( "invariants",
        [
          Alcotest.test_case "chains accumass" `Quick test_chains_accumass;
          Alcotest.test_case "trees accumass" `Quick test_trees_accumass;
          Alcotest.test_case "forest accumass" `Quick test_forest_accumass;
          Alcotest.test_case "schedule validates" `Quick test_schedule_validates;
          Alcotest.test_case "fallback cycle" `Quick
            test_schedule_has_fallback_cycle;
          Alcotest.test_case "executions complete" `Quick test_execution_completes;
          Alcotest.test_case "diagnostics" `Quick test_diagnostics_sanity;
          Alcotest.test_case "paper params" `Quick test_paper_params_work;
          Alcotest.test_case "lp lower bound" `Quick test_lp_lower_bound_positive;
        ] );
      ( "validation",
        [
          Alcotest.test_case "incomplete blocks" `Quick
            test_rejects_incomplete_blocks;
          Alcotest.test_case "backwards blocks" `Quick
            test_rejects_backwards_blocks;
          Alcotest.test_case "non-edge chain" `Quick test_rejects_non_edge_chain;
          Alcotest.test_case "chains needs chains" `Quick
            test_chains_requires_chain_dag;
          Alcotest.test_case "trees needs trees" `Quick
            test_trees_requires_tree_dag;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_accumass_invariant;
          QCheck_alcotest.to_alcotest prop_executions_complete;
        ] );
    ]
