module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious
module Mass = Suu_core.Mass
module Suu_i_obl = Suu_algo.Suu_i_obl
module Rng = Suu_prob.Rng

let random_inst seed m n =
  let rng = Rng.create seed in
  Instance.independent
    ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.1 0.9)))

let test_core_reaches_target_tuned () =
  let inst = random_inst 1 3 8 in
  let r = Suu_i_obl.build inst in
  let len = Oblivious.prefix_length r.Suu_i_obl.core in
  let mass = Mass.of_oblivious inst r.Suu_i_obl.core ~steps:len in
  Array.iter
    (fun mj ->
      Alcotest.(check bool) "mass >= 1/4" true
        (mj >= Suu_i_obl.tuned_params.Suu_i_obl.mass_target -. 1e-9))
    mass

let test_core_reaches_target_paper () =
  let inst = random_inst 2 2 6 in
  let r = Suu_i_obl.build ~params:Suu_i_obl.paper_params inst in
  let len = Oblivious.prefix_length r.Suu_i_obl.core in
  let mass = Mass.of_oblivious inst r.Suu_i_obl.core ~steps:len in
  Array.iter
    (fun mj ->
      Alcotest.(check bool) "mass >= 1/96" true (mj >= (1. /. 96.) -. 1e-9))
    mass

let test_deterministic () =
  let inst = random_inst 3 2 5 in
  let a = Suu_i_obl.build inst in
  let b = Suu_i_obl.build inst in
  Alcotest.(check int) "same t" a.Suu_i_obl.final_t b.Suu_i_obl.final_t;
  Alcotest.(check int) "same length"
    (Oblivious.prefix_length a.Suu_i_obl.core)
    (Oblivious.prefix_length b.Suu_i_obl.core)

let test_empty_instance () =
  let inst = Instance.independent ~p:[| [||] |] in
  let r = Suu_i_obl.build inst in
  Alcotest.(check int) "empty core" 0 (Oblivious.prefix_length r.Suu_i_obl.core)

let test_single_certain_job () =
  let inst = Instance.independent ~p:[| [| 1.0 |] |] in
  let r = Suu_i_obl.build inst in
  Alcotest.(check int) "t = 1 suffices" 1 r.Suu_i_obl.final_t;
  Alcotest.(check int) "single round" 1 r.Suu_i_obl.rounds_used

let test_schedule_is_cyclic () =
  let inst = random_inst 4 2 4 in
  let s = Suu_i_obl.schedule inst in
  Alcotest.(check int) "no prefix" 0 (Oblivious.prefix_length s);
  Alcotest.(check bool) "has cycle" true (Oblivious.cycle_length s > 0)

let test_schedule_completes () =
  let inst = random_inst 5 3 10 in
  let policy = Suu_i_obl.policy inst in
  let o = Suu_sim.Engine.run (Rng.create 7) inst policy in
  Alcotest.(check bool) "completed" true o.Suu_sim.Engine.completed

let test_final_t_grows_with_hardness () =
  (* Low probabilities need a larger guess than high ones. *)
  let easy = Instance.independent ~p:[| [| 0.9; 0.9 |] |] in
  let hard = Instance.independent ~p:[| [| 0.05; 0.05 |] |] in
  let te = (Suu_i_obl.build easy).Suu_i_obl.final_t in
  let th = (Suu_i_obl.build hard).Suu_i_obl.final_t in
  Alcotest.(check bool) "harder needs bigger t" true (th > te)

let prop_every_job_served =
  QCheck.Test.make ~name:"core gives every job its mass target" ~count:50
    QCheck.(triple small_int (int_range 1 4) (int_range 1 12))
    (fun (seed, m, n) ->
      let inst = random_inst seed m n in
      let r = Suu_i_obl.build inst in
      let len = Oblivious.prefix_length r.Suu_i_obl.core in
      let mass = Mass.of_oblivious inst r.Suu_i_obl.core ~steps:len in
      Array.for_all
        (fun mj -> mj >= Suu_i_obl.tuned_params.Suu_i_obl.mass_target -. 1e-9)
        mass)

let prop_makespan_reasonable =
  QCheck.Test.make ~name:"oblivious schedule completes within horizon" ~count:30
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, n) ->
      let inst = random_inst seed 3 n in
      let policy = Suu_i_obl.policy inst in
      let o = Suu_sim.Engine.run (Rng.create (seed + 1)) inst policy in
      o.Suu_sim.Engine.completed)

let () =
  Alcotest.run "suu_i_obl"
    [
      ( "algorithm 2",
        [
          Alcotest.test_case "tuned target" `Quick test_core_reaches_target_tuned;
          Alcotest.test_case "paper target" `Quick test_core_reaches_target_paper;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "empty" `Quick test_empty_instance;
          Alcotest.test_case "certain job" `Quick test_single_certain_job;
          Alcotest.test_case "cyclic schedule" `Quick test_schedule_is_cyclic;
          Alcotest.test_case "completes" `Quick test_schedule_completes;
          Alcotest.test_case "t grows with hardness" `Quick
            test_final_t_grows_with_hardness;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_every_job_served;
          QCheck_alcotest.to_alcotest prop_makespan_reasonable;
        ] );
    ]
