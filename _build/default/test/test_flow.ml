module Maxflow = Suu_flow.Maxflow
module Matching = Suu_flow.Matching
module Rng = Suu_prob.Rng

let test_single_edge () =
  let g = Maxflow.create 2 in
  let e = Maxflow.add_edge g ~src:0 ~dst:1 ~cap:5 in
  Alcotest.(check int) "flow value" 5 (Maxflow.max_flow g ~source:0 ~sink:1);
  Alcotest.(check int) "edge flow" 5 (Maxflow.flow g e);
  Alcotest.(check int) "capacity" 5 (Maxflow.capacity g e)

let test_series () =
  let g = Maxflow.create 3 in
  ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:7 : Maxflow.edge);
  ignore (Maxflow.add_edge g ~src:1 ~dst:2 ~cap:3 : Maxflow.edge);
  Alcotest.(check int) "bottleneck" 3 (Maxflow.max_flow g ~source:0 ~sink:2)

let test_parallel () =
  let g = Maxflow.create 2 in
  ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:2 : Maxflow.edge);
  ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:3 : Maxflow.edge);
  Alcotest.(check int) "sum" 5 (Maxflow.max_flow g ~source:0 ~sink:1)

let test_disconnected () =
  let g = Maxflow.create 4 in
  ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:1 : Maxflow.edge);
  ignore (Maxflow.add_edge g ~src:2 ~dst:3 ~cap:1 : Maxflow.edge);
  Alcotest.(check int) "zero" 0 (Maxflow.max_flow g ~source:0 ~sink:3)

(* The classic CLRS example network, max flow 23. *)
let test_clrs () =
  let g = Maxflow.create 6 in
  let s = 0 and t = 5 in
  let add (u, v, c) = ignore (Maxflow.add_edge g ~src:u ~dst:v ~cap:c : Maxflow.edge) in
  List.iter add
    [ (s, 1, 16); (s, 2, 13); (1, 2, 10); (2, 1, 4); (1, 3, 12); (3, 2, 9);
      (2, 4, 14); (4, 3, 7); (3, t, 20); (4, t, 4) ];
  Alcotest.(check int) "CLRS max flow" 23 (Maxflow.max_flow g ~source:s ~sink:t)

let test_min_cut () =
  let g = Maxflow.create 4 in
  ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:10 : Maxflow.edge);
  ignore (Maxflow.add_edge g ~src:1 ~dst:2 ~cap:1 : Maxflow.edge);
  ignore (Maxflow.add_edge g ~src:2 ~dst:3 ~cap:10 : Maxflow.edge);
  ignore (Maxflow.max_flow g ~source:0 ~sink:3 : int);
  let side = Maxflow.min_cut_side g ~source:0 in
  Alcotest.(check bool) "source side" true side.(0);
  Alcotest.(check bool) "1 on source side" true side.(1);
  Alcotest.(check bool) "2 on sink side" false side.(2);
  Alcotest.(check bool) "sink side" false side.(3)

let test_zero_capacity () =
  let g = Maxflow.create 2 in
  ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:0 : Maxflow.edge);
  Alcotest.(check int) "zero cap" 0 (Maxflow.max_flow g ~source:0 ~sink:1)

let test_rejects_negative_cap () =
  let g = Maxflow.create 2 in
  Alcotest.check_raises "negative"
    (Invalid_argument "Maxflow.add_edge: negative capacity") (fun () ->
      ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:(-1) : Maxflow.edge))

let test_rejects_same_source_sink () =
  let g = Maxflow.create 2 in
  Alcotest.check_raises "source=sink"
    (Invalid_argument "Maxflow.max_flow: source equals sink") (fun () ->
      ignore (Maxflow.max_flow g ~source:0 ~sink:0 : int))

let test_matching_known () =
  (* Left 0,1,2; right 0,1. Perfect matching impossible. *)
  let adj = [| [ 0 ]; [ 0; 1 ]; [ 1 ] |] in
  let mate = Matching.max_matching ~left:3 ~right:2 ~adj in
  Alcotest.(check int) "matching size" 2 (Matching.size mate)

let test_matching_perfect () =
  let adj = [| [ 1 ]; [ 0 ] |] in
  let mate = Matching.max_matching ~left:2 ~right:2 ~adj in
  Alcotest.(check int) "perfect" 2 (Matching.size mate);
  Alcotest.(check int) "0-1" 1 mate.(0);
  Alcotest.(check int) "1-0" 0 mate.(1)

let test_matching_empty () =
  let mate = Matching.max_matching ~left:3 ~right:3 ~adj:[| []; []; [] |] in
  Alcotest.(check int) "empty" 0 (Matching.size mate)

(* Random bipartite graph: matching via Hopcroft–Karp must equal matching
   via max-flow reduction. *)
let random_bipartite seed ln rn prob =
  let rng = Rng.create seed in
  Array.init ln (fun _ ->
      List.filter (fun _ -> Rng.float rng < prob) (List.init rn (fun v -> v)))

let matching_via_flow ~left ~right ~adj =
  let g = Maxflow.create (left + right + 2) in
  let source = left + right and sink = left + right + 1 in
  for u = 0 to left - 1 do
    ignore (Maxflow.add_edge g ~src:source ~dst:u ~cap:1 : Maxflow.edge)
  done;
  for v = 0 to right - 1 do
    ignore (Maxflow.add_edge g ~src:(left + v) ~dst:sink ~cap:1 : Maxflow.edge)
  done;
  Array.iteri
    (fun u vs ->
      List.iter
        (fun v -> ignore (Maxflow.add_edge g ~src:u ~dst:(left + v) ~cap:1 : Maxflow.edge))
        vs)
    adj;
  Maxflow.max_flow g ~source ~sink

let prop_matching_equals_flow =
  QCheck.Test.make ~name:"hopcroft-karp = max-flow reduction" ~count:200
    QCheck.(triple small_int (int_range 1 15) (int_range 1 15))
    (fun (seed, ln, rn) ->
      let adj = random_bipartite seed ln rn 0.3 in
      let hk = Matching.size (Matching.max_matching ~left:ln ~right:rn ~adj) in
      hk = matching_via_flow ~left:ln ~right:rn ~adj)

let prop_matching_valid =
  QCheck.Test.make ~name:"matching is a valid matching" ~count:200
    QCheck.(triple small_int (int_range 1 20) (int_range 1 20))
    (fun (seed, ln, rn) ->
      let adj = random_bipartite seed ln rn 0.4 in
      let mate = Matching.max_matching ~left:ln ~right:rn ~adj in
      let used = Array.make rn false in
      Array.for_all (fun v -> v = -1 || v >= 0) mate
      && Array.to_list mate
         |> List.mapi (fun u v -> (u, v))
         |> List.for_all (fun (u, v) ->
                v = -1
                || (List.mem v adj.(u)
                   &&
                   if used.(v) then false
                   else begin
                     used.(v) <- true;
                     true
                   end)))

let prop_flow_conservation =
  QCheck.Test.make ~name:"flow within capacity" ~count:100
    QCheck.(pair small_int (int_range 2 12))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Maxflow.create n in
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v && Rng.float rng < 0.3 then begin
            let cap = Rng.int rng 10 in
            edges := (Maxflow.add_edge g ~src:u ~dst:v ~cap, cap) :: !edges
          end
        done
      done;
      let value = Maxflow.max_flow g ~source:0 ~sink:(n - 1) in
      value >= 0
      && List.for_all
           (fun (e, cap) ->
             let f = Maxflow.flow g e in
             f >= 0 && f <= cap)
           !edges)

let () =
  Alcotest.run "flow"
    [
      ( "maxflow",
        [
          Alcotest.test_case "single edge" `Quick test_single_edge;
          Alcotest.test_case "series" `Quick test_series;
          Alcotest.test_case "parallel" `Quick test_parallel;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "CLRS network" `Quick test_clrs;
          Alcotest.test_case "min cut" `Quick test_min_cut;
          Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
          Alcotest.test_case "negative rejected" `Quick test_rejects_negative_cap;
          Alcotest.test_case "source=sink rejected" `Quick
            test_rejects_same_source_sink;
        ] );
      ( "matching",
        [
          Alcotest.test_case "known" `Quick test_matching_known;
          Alcotest.test_case "perfect" `Quick test_matching_perfect;
          Alcotest.test_case "empty" `Quick test_matching_empty;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_matching_equals_flow;
          QCheck_alcotest.to_alcotest prop_matching_valid;
          QCheck_alcotest.to_alcotest prop_flow_conservation;
        ] );
    ]
