(* Assignment, Oblivious and Pseudo schedule semantics. *)

module Instance = Suu_core.Instance
module Assignment = Suu_core.Assignment
module Oblivious = Suu_core.Oblivious
module Pseudo = Suu_core.Pseudo

let inst2x3 () =
  Instance.independent ~p:[| [| 0.5; 0.2; 0.3 |]; [| 0.1; 0.8; 0.4 |] |]

(* --- Assignment --- *)

let test_assignment_of_pairs () =
  let a = Assignment.of_pairs ~m:3 [ (0, 2); (2, 1) ] in
  Alcotest.(check (array int)) "assignment" [| 2; -1; 1 |] a

let test_assignment_double_booking () =
  Alcotest.check_raises "double"
    (Invalid_argument "Assignment.of_pairs: machine assigned twice") (fun () ->
      ignore (Assignment.of_pairs ~m:2 [ (0, 1); (0, 2) ] : Assignment.t))

let test_assignment_validate () =
  (match Assignment.validate [| 0; -1 |] ~n:2 ~m:2 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Assignment.validate [| 5 |] ~n:2 ~m:1 with
  | Ok () -> Alcotest.fail "bad job accepted"
  | Error _ -> ());
  match Assignment.validate [| 0 |] ~n:2 ~m:2 with
  | Ok () -> Alcotest.fail "bad length accepted"
  | Error _ -> ()

let test_assignment_jobs_machines () =
  let a = [| 1; 1; -1; 0 |] in
  Alcotest.(check (list int)) "jobs" [ 0; 1 ] (Assignment.jobs_assigned a);
  Alcotest.(check (list int)) "machines on 1" [ 0; 1 ] (Assignment.machines_on a ~job:1)

let test_assignment_mass () =
  let inst = inst2x3 () in
  let a = [| 1; 1 |] in
  let mass = Assignment.mass_added inst a in
  Alcotest.(check (float 1e-12)) "job1 mass" 1.0 mass.(1);
  Alcotest.(check (float 1e-12)) "job0 mass" 0. mass.(0);
  Alcotest.(check (float 1e-12)) "success" (1. -. (0.8 *. 0.2))
    (Assignment.success_prob inst a ~job:1)

(* --- Oblivious --- *)

let test_oblivious_step_and_cycle () =
  let s =
    Oblivious.create ~m:1 ~cycle:[| [| 2 |]; [| 3 |] |] [| [| 0 |]; [| 1 |] |]
  in
  let job t = (Oblivious.step s t).(0) in
  Alcotest.(check int) "t0" 0 (job 0);
  Alcotest.(check int) "t1" 1 (job 1);
  Alcotest.(check int) "t2" 2 (job 2);
  Alcotest.(check int) "t3" 3 (job 3);
  Alcotest.(check int) "t4 wraps" 2 (job 4)

let test_oblivious_idle_after_prefix () =
  let s = Oblivious.finite ~m:2 [| [| 0; 1 |] |] in
  Alcotest.(check (array int)) "idle" [| -1; -1 |] (Oblivious.step s 5)

let test_oblivious_append () =
  let a = Oblivious.finite ~m:1 [| [| 0 |] |] in
  let b = Oblivious.create ~m:1 ~cycle:[| [| 9 |] |] [| [| 1 |] |] in
  let c = Oblivious.append a b in
  Alcotest.(check int) "prefix len" 2 (Oblivious.prefix_length c);
  Alcotest.(check int) "first" 0 (Oblivious.step c 0).(0);
  Alcotest.(check int) "second" 1 (Oblivious.step c 1).(0);
  Alcotest.(check int) "cycle" 9 (Oblivious.step c 7).(0)

let test_oblivious_replicate_steps () =
  let s = Oblivious.finite ~m:1 [| [| 0 |]; [| 1 |] |] in
  let r = Oblivious.replicate_steps s 3 in
  Alcotest.(check int) "length" 6 (Oblivious.prefix_length r);
  let jobs = List.init 6 (fun t -> (Oblivious.step r t).(0)) in
  Alcotest.(check (list int)) "pattern" [ 0; 0; 0; 1; 1; 1 ] jobs

let test_oblivious_repeat_prefix () =
  let s = Oblivious.finite ~m:1 [| [| 0 |]; [| 1 |] |] in
  let r = Oblivious.repeat_prefix s 2 in
  let jobs = List.init 4 (fun t -> (Oblivious.step r t).(0)) in
  Alcotest.(check (list int)) "pattern" [ 0; 1; 0; 1 ] jobs

let test_oblivious_of_matrix () =
  (* machine 0: 2 steps on job 0, 1 on job 1; machine 1: 1 step on job 2. *)
  let s = Oblivious.of_matrix ~m:2 ~n:3 [| [| 2; 1; 0 |]; [| 0; 0; 1 |] |] in
  Alcotest.(check int) "length" 3 (Oblivious.prefix_length s);
  Alcotest.(check (array int)) "t0" [| 0; 2 |] (Oblivious.step s 0);
  Alcotest.(check (array int)) "t1" [| 0; -1 |] (Oblivious.step s 1);
  Alcotest.(check (array int)) "t2" [| 1; -1 |] (Oblivious.step s 2);
  Alcotest.(check (array int)) "loads" [| 3; 1 |] (Oblivious.load s)

let test_oblivious_cycle_all_jobs () =
  let inst =
    Instance.create
      ~p:[| [| 0.5; 0.5; 0.5 |] |]
      ~dag:(Suu_dag.Dag.create ~n:3 [ (2, 0) ])
  in
  let s = Oblivious.cycle_all_jobs inst in
  Alcotest.(check int) "cycle length" 3 (Oblivious.cycle_length s);
  (* Topological: job 2 before job 0. *)
  let first = (Oblivious.step s 0).(0) in
  let second = (Oblivious.step s 1).(0) in
  let third = (Oblivious.step s 2).(0) in
  Alcotest.(check (list int)) "topo cycle" [ 1; 2; 0 ]
    [ first; second; third ]

let test_oblivious_validate () =
  let inst = inst2x3 () in
  let good = Oblivious.finite ~m:2 [| [| 0; 1 |] |] in
  (match Oblivious.validate inst good with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let bad = Oblivious.finite ~m:2 [| [| 7; 1 |] |] in
  match Oblivious.validate inst bad with
  | Ok () -> Alcotest.fail "accepted bad job"
  | Error _ -> ()

(* --- Pseudo --- *)

let test_pseudo_of_windows () =
  let p =
    Pseudo.of_windows ~m:2 ~length:4
      [ (0, 0, 0, 2); (1, 0, 0, 1); (0, 1, 2, 2) ]
  in
  Alcotest.(check int) "length" 4 (Pseudo.length p);
  Alcotest.(check int) "load" 4 (Pseudo.load p);
  Alcotest.(check int) "congestion" 1 (Pseudo.max_congestion p);
  Alcotest.(check (array int)) "machine loads" [| 4; 1 |] (Pseudo.machine_loads p)

let test_pseudo_window_bounds () =
  Alcotest.check_raises "overflow"
    (Invalid_argument "Pseudo.of_windows: window exceeds schedule length")
    (fun () ->
      ignore (Pseudo.of_windows ~m:1 ~length:2 [ (0, 0, 1, 2) ] : Pseudo.t))

let test_pseudo_shift_overlay () =
  let a = Pseudo.of_windows ~m:1 ~length:1 [ (0, 0, 0, 1) ] in
  let b = Pseudo.of_windows ~m:1 ~length:1 [ (0, 1, 0, 1) ] in
  let overlaid = Pseudo.overlay [ a; b ] in
  Alcotest.(check int) "congestion 2" 2 (Pseudo.max_congestion overlaid);
  let shifted = Pseudo.overlay [ a; Pseudo.shift b 1 ] in
  Alcotest.(check int) "congestion 1 after shift" 1 (Pseudo.max_congestion shifted);
  Alcotest.(check int) "length grows" 2 (Pseudo.length shifted)

let test_pseudo_flatten () =
  let a = Pseudo.of_windows ~m:1 ~length:2 [ (0, 0, 0, 2) ] in
  let b = Pseudo.of_windows ~m:1 ~length:1 [ (0, 1, 0, 1) ] in
  let overlaid = Pseudo.overlay [ a; b ] in
  let flat = Pseudo.flatten overlaid in
  (* Step 0 has two jobs on machine 0 -> expands to 2 steps; step 1 has
     one -> total 3 steps, each machine one job per step. *)
  Alcotest.(check int) "flattened length" 3 (Oblivious.prefix_length flat);
  let inst = inst2x3 () in
  (* Mass is preserved by flattening. *)
  let before = Pseudo.jobs_mass inst overlaid in
  let after =
    Suu_core.Mass.of_oblivious inst flat ~steps:(Oblivious.prefix_length flat)
  in
  Alcotest.(check (float 1e-12)) "job0 mass" before.(0) after.(0);
  Alcotest.(check (float 1e-12)) "job1 mass" before.(1) after.(1)

let test_pseudo_append () =
  let a = Pseudo.of_windows ~m:1 ~length:1 [ (0, 0, 0, 1) ] in
  let b = Pseudo.of_windows ~m:1 ~length:2 [ (0, 1, 0, 2) ] in
  Alcotest.(check int) "appended" 3 (Pseudo.length (Pseudo.append a b))

let prop_flatten_preserves_mass =
  QCheck.Test.make ~name:"flatten preserves every job's mass" ~count:100
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, m) ->
      let rng = Suu_prob.Rng.create seed in
      let n = 5 in
      let inst =
        Instance.independent
          ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Suu_prob.Rng.uniform rng 0.05 0.95)))
      in
      let len = 6 in
      let units = ref [] in
      for i = 0 to m - 1 do
        for _ = 1 to 3 do
          let j = Suu_prob.Rng.int rng n in
          let start = Suu_prob.Rng.int rng len in
          let count = 1 + Suu_prob.Rng.int rng (len - start) in
          units := (i, j, start, count) :: !units
        done
      done;
      let p = Pseudo.of_windows ~m ~length:len !units in
      let flat = Pseudo.flatten p in
      let before = Pseudo.jobs_mass inst p in
      let after =
        Suu_core.Mass.of_oblivious inst flat
          ~steps:(Oblivious.prefix_length flat)
      in
      Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) before after)

let prop_flatten_length_bound =
  QCheck.Test.make ~name:"flatten length <= congestion x length (and >= length)"
    ~count:100
    QCheck.(pair small_int (int_range 1 5))
    (fun (seed, m) ->
      let rng = Suu_prob.Rng.create seed in
      let len = 1 + Suu_prob.Rng.int rng 8 in
      let units = ref [] in
      for i = 0 to m - 1 do
        for _ = 1 to 4 do
          let start = Suu_prob.Rng.int rng len in
          let count = 1 + Suu_prob.Rng.int rng (len - start) in
          units := (i, Suu_prob.Rng.int rng 4, start, count) :: !units
        done
      done;
      let p = Pseudo.of_windows ~m ~length:len !units in
      let flat_len = Oblivious.prefix_length (Pseudo.flatten p) in
      flat_len >= Pseudo.length p
      && flat_len <= max 1 (Pseudo.max_congestion p) * Pseudo.length p)

let () =
  Alcotest.run "schedule"
    [
      ( "assignment",
        [
          Alcotest.test_case "of_pairs" `Quick test_assignment_of_pairs;
          Alcotest.test_case "double booking" `Quick
            test_assignment_double_booking;
          Alcotest.test_case "validate" `Quick test_assignment_validate;
          Alcotest.test_case "jobs/machines" `Quick test_assignment_jobs_machines;
          Alcotest.test_case "mass & success" `Quick test_assignment_mass;
        ] );
      ( "oblivious",
        [
          Alcotest.test_case "step & cycle" `Quick test_oblivious_step_and_cycle;
          Alcotest.test_case "idle after prefix" `Quick
            test_oblivious_idle_after_prefix;
          Alcotest.test_case "append" `Quick test_oblivious_append;
          Alcotest.test_case "replicate steps" `Quick
            test_oblivious_replicate_steps;
          Alcotest.test_case "repeat prefix" `Quick test_oblivious_repeat_prefix;
          Alcotest.test_case "of_matrix packing" `Quick test_oblivious_of_matrix;
          Alcotest.test_case "cycle_all_jobs topo" `Quick
            test_oblivious_cycle_all_jobs;
          Alcotest.test_case "validate" `Quick test_oblivious_validate;
        ] );
      ( "pseudo",
        [
          Alcotest.test_case "of_windows" `Quick test_pseudo_of_windows;
          Alcotest.test_case "window bounds" `Quick test_pseudo_window_bounds;
          Alcotest.test_case "shift & overlay" `Quick test_pseudo_shift_overlay;
          Alcotest.test_case "flatten" `Quick test_pseudo_flatten;
          Alcotest.test_case "append" `Quick test_pseudo_append;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_flatten_preserves_mass;
          QCheck_alcotest.to_alcotest prop_flatten_length_bound;
        ] );
    ]
