module Instance = Suu_core.Instance
module Pseudo = Suu_core.Pseudo
module Lp_relax = Suu_algo.Lp_relax
module Rounding = Suu_algo.Rounding
module Rng = Suu_prob.Rng

let chain_instance seed ~n ~m ~chains ~lo ~hi =
  let rng = Rng.create seed in
  let dag = Suu_dag.Gen.chains (Rng.split rng) ~n ~chains in
  let p = Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng lo hi)) in
  Instance.create ~p ~dag

let solve_and_round ?(constants = `Tuned) inst =
  let chains = Suu_dag.Classify.chain_partition (Instance.dag inst) in
  let frac = Lp_relax.solve_chains inst ~chains in
  (frac, Rounding.round ~constants inst frac)

let test_mass_target_reached () =
  let inst = chain_instance 1 ~n:8 ~m:3 ~chains:2 ~lo:0.1 ~hi:0.9 in
  let _, integral = solve_and_round inst in
  match Rounding.verify inst integral with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_windows_dominate () =
  let inst = chain_instance 2 ~n:6 ~m:2 ~chains:3 ~lo:0.2 ~hi:0.8 in
  let _, integral = solve_and_round inst in
  List.iter
    (fun j ->
      Alcotest.(check bool) "window >= 1" true (integral.Rounding.window.(j) >= 1);
      for i = 0 to 1 do
        Alcotest.(check bool) "x <= window" true
          (integral.Rounding.x.(i).(j) <= integral.Rounding.window.(j))
      done)
    integral.Rounding.jobs

let test_case_a_round_up () =
  (* A long chain with one machine forces t* >= n, exercising case A. *)
  let dag = Suu_dag.Gen.uniform_chains ~n:5 ~chains:1 in
  let inst = Instance.create ~p:[| Array.make 5 0.5 |] ~dag in
  let frac, integral = solve_and_round inst in
  Alcotest.(check bool) "case A applies" true
    (frac.Lp_relax.t_star >= 5. -. 1e-6);
  (* Rounding up x = 1 per job: every job keeps exactly one step. *)
  List.iter
    (fun j ->
      Alcotest.(check bool) "mass >= 1/2" true
        (integral.Rounding.mass.(j) >= 0.5 -. 1e-9))
    integral.Rounding.jobs

let test_flow_path_exercised () =
  (* Many machines with spread-out probabilities and few jobs per chain
     push t* below n and the small parts through the flow network. *)
  let w = Suu_workloads.Workload.adversarial_spread ~n:12 ~m:8 in
  let inst = w.Suu_workloads.Workload.instance in
  let chains = List.init 12 (fun j -> [ j ]) in
  let frac = Lp_relax.solve_chains inst ~chains in
  let integral = Rounding.round inst frac in
  (match Rounding.verify inst integral with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "flow used" true (integral.Rounding.flow_jobs >= 0)

let test_paper_constants_also_valid () =
  let inst = chain_instance 3 ~n:10 ~m:4 ~chains:2 ~lo:0.05 ~hi:0.6 in
  let _, integral = solve_and_round ~constants:`Paper inst in
  match Rounding.verify inst integral with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_chain_pseudo_layout () =
  let inst = chain_instance 4 ~n:6 ~m:2 ~chains:2 ~lo:0.3 ~hi:0.9 in
  let _, integral = solve_and_round inst in
  let pseudos = Rounding.chain_pseudos inst integral in
  Alcotest.(check int) "one pseudo per chain" 2 (List.length pseudos);
  List.iter2
    (fun pseudo chain ->
      let expected =
        List.fold_left (fun acc j -> acc + integral.Rounding.window.(j)) 0 chain
      in
      Alcotest.(check int) "length = sum of windows" expected (Pseudo.length pseudo))
    pseudos integral.Rounding.chains

let test_chain_pseudo_precedence () =
  (* Within a chain pseudo-schedule, a job's machines appear only after all
     its predecessors' windows. *)
  let inst = chain_instance 5 ~n:5 ~m:3 ~chains:1 ~lo:0.2 ~hi:0.9 in
  let _, integral = solve_and_round inst in
  let pseudo = List.hd (Rounding.chain_pseudos inst integral) in
  let chain = List.hd integral.Rounding.chains in
  let first_seen = Hashtbl.create 5 and last_seen = Hashtbl.create 5 in
  Array.iteri
    (fun t step ->
      Array.iter
        (List.iter (fun j ->
             if not (Hashtbl.mem first_seen j) then Hashtbl.add first_seen j t;
             Hashtbl.replace last_seen j t))
        step)
    pseudo.Pseudo.steps;
  let rec check = function
    | a :: (b :: _ as rest) ->
        (match (Hashtbl.find_opt last_seen a, Hashtbl.find_opt first_seen b) with
        | Some la, Some fb ->
            Alcotest.(check bool)
              (Printf.sprintf "%d's window before %d's" a b)
              true (la < fb)
        | _ -> Alcotest.fail "job missing from pseudo-schedule");
        check rest
    | _ -> ()
  in
  check chain

let load_of integral m =
  let loads = Array.make m 0 in
  List.iter
    (fun j ->
      for i = 0 to m - 1 do
        loads.(i) <- loads.(i) + integral.Rounding.x.(i).(j)
      done)
    integral.Rounding.jobs;
  Array.fold_left max 0 loads

let test_randomized_reaches_target () =
  let inst = chain_instance 6 ~n:8 ~m:3 ~chains:2 ~lo:0.1 ~hi:0.9 in
  let chains = Suu_dag.Classify.chain_partition (Instance.dag inst) in
  let frac = Lp_relax.solve_chains inst ~chains in
  let integral = Rounding.randomized (Rng.create 42) inst frac in
  match Rounding.verify inst integral with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_randomized_deterministic_per_seed () =
  let inst = chain_instance 7 ~n:6 ~m:2 ~chains:2 ~lo:0.2 ~hi:0.8 in
  let chains = Suu_dag.Classify.chain_partition (Instance.dag inst) in
  let frac = Lp_relax.solve_chains inst ~chains in
  let a = Rounding.randomized (Rng.create 9) inst frac in
  let b = Rounding.randomized (Rng.create 9) inst frac in
  Alcotest.(check bool) "same allocation" true (a.Rounding.x = b.Rounding.x)

let prop_randomized_sound =
  QCheck.Test.make ~name:"randomized rounding reaches mass 1/2" ~count:40
    QCheck.(triple small_int (int_range 1 4) (int_range 1 10))
    (fun (seed, m, n) ->
      let inst =
        chain_instance seed ~n ~m ~chains:(1 + (abs seed mod n)) ~lo:0.05
          ~hi:0.95
      in
      let chains = Suu_dag.Classify.chain_partition (Instance.dag inst) in
      let frac = Lp_relax.solve_chains inst ~chains in
      let integral = Rounding.randomized (Rng.create (seed + 1)) inst frac in
      match Rounding.verify inst integral with Ok () -> true | Error _ -> false)

let prop_rounding_sound =
  QCheck.Test.make ~name:"rounding always reaches mass 1/2" ~count:40
    QCheck.(triple small_int (int_range 1 5) (int_range 1 12))
    (fun (seed, m, n) ->
      let inst =
        chain_instance seed ~n ~m
          ~chains:(1 + (abs seed mod n))
          ~lo:0.05 ~hi:0.95
      in
      let _, integral = solve_and_round inst in
      match Rounding.verify inst integral with Ok () -> true | Error _ -> false)

let prop_load_polylog_blowup =
  (* Engineering regression guard: the max machine load of the integral
     solution stays within a generous polylog factor of t*. *)
  QCheck.Test.make ~name:"load <= C log(m) t* (generous C)" ~count:40
    QCheck.(triple small_int (int_range 1 6) (int_range 2 12))
    (fun (seed, m, n) ->
      let inst = chain_instance seed ~n ~m ~chains:2 ~lo:0.1 ~hi:0.9 in
      let frac, integral = solve_and_round inst in
      let load = load_of integral m in
      let logm = Float.log (Float.of_int (8 * m)) /. Float.log 2. in
      Float.of_int load
      <= 64. *. (logm +. 1.) *. (frac.Lp_relax.t_star +. 1.))

let () =
  Alcotest.run "rounding"
    [
      ( "cases",
        [
          Alcotest.test_case "mass target" `Quick test_mass_target_reached;
          Alcotest.test_case "windows dominate" `Quick test_windows_dominate;
          Alcotest.test_case "case A (t >= n)" `Quick test_case_a_round_up;
          Alcotest.test_case "flow path" `Quick test_flow_path_exercised;
          Alcotest.test_case "paper constants" `Quick
            test_paper_constants_also_valid;
          Alcotest.test_case "pseudo layout" `Quick test_chain_pseudo_layout;
          Alcotest.test_case "pseudo precedence" `Quick
            test_chain_pseudo_precedence;
        ] );
      ( "randomized",
        [
          Alcotest.test_case "reaches target" `Quick
            test_randomized_reaches_target;
          Alcotest.test_case "seed-deterministic" `Quick
            test_randomized_deterministic_per_seed;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_rounding_sound;
          QCheck_alcotest.to_alcotest prop_load_polylog_blowup;
          QCheck_alcotest.to_alcotest prop_randomized_sound;
        ] );
    ]
