(* The adaptivity gap in practice.

   The paper's §2 distinguishes general (adaptive) schedules, regimens and
   oblivious schedules. Adaptive schedules react to which jobs happen to
   finish; oblivious schedules fix every step in advance and pay for it —
   the paper's oblivious bounds carry extra log factors. This example
   measures that gap on independent jobs as n grows, against the exact
   optimum where affordable.

   Run with: dune exec examples/adaptive_vs_oblivious.exe *)

let trials = 300
let seed = 9

let () =
  Format.printf
    "independent jobs, m = 4 machines, uniform p in [0.2, 0.9]@.@.";
  let rows =
    List.map
      (fun n ->
        let rng = Suu_prob.Rng.create (seed + n) in
        let w =
          Suu_workloads.Workload.uniform rng ~n ~m:4 ~lo:0.2 ~hi:0.9
            ~dag:(Suu_dag.Dag.empty n)
        in
        let inst = w.Suu_workloads.Workload.instance in
        let exact =
          if n <= 8 then
            match Suu_algo.Malewicz.optimal_value inst with
            | v -> Some v
            | exception Suu_algo.Malewicz.Too_expensive _ -> None
          else None
        in
        let bounds = Suu_algo.Bounds.compute inst in
        let lb =
          match exact with
          | Some v -> v
          | None -> Suu_algo.Bounds.best bounds
        in
        let measure policy =
          (Suu_harness.Experiment.measure ~trials ~seed ~lower_bound:lb inst
             policy)
            .Suu_harness.Experiment.ratio
        in
        let adaptive = measure (Suu_algo.Suu_i.policy inst) in
        let obl_greedy = measure (Suu_algo.Suu_i_obl.policy inst) in
        let obl_lp = measure (Suu_algo.Lp_indep.policy inst) in
        [
          string_of_int n;
          (match exact with Some v -> Printf.sprintf "%.2f" v | None -> "-");
          Printf.sprintf "%.2f" adaptive;
          Printf.sprintf "%.2f" obl_greedy;
          Printf.sprintf "%.2f" obl_lp;
        ])
      [ 4; 6; 8; 16; 32; 64 ]
  in
  Suu_harness.Table.print ~title:"adaptivity gap (ratios to best bound)"
    ~header:
      [ "n"; "TOPT(exact)"; "adaptive"; "oblivious(greedy)"; "oblivious(LP)" ]
    rows;
  Format.printf
    "@.ratios are E[makespan]/LB; the denominator is exact TOPT for n <= 8@.\
     expected shape: adaptive stays near-constant; oblivious grows slowly@.\
     (the paper proves O(log n) vs O(log n log min(n,m)) factors).@."
