examples/exact_analysis.ml: Array Float Format List Printf Suu_algo Suu_core Suu_dag Suu_harness Suu_prob Suu_sim
