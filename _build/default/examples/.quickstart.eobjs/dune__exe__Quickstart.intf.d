examples/quickstart.mli:
