examples/adaptive_vs_oblivious.mli:
