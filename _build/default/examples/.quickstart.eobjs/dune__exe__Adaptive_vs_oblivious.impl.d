examples/adaptive_vs_oblivious.ml: Format List Printf Suu_algo Suu_dag Suu_harness Suu_prob Suu_workloads
