examples/grid_computing.ml: Format List Suu_algo Suu_harness Suu_prob Suu_workloads
