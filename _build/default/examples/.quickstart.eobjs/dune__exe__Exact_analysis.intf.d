examples/exact_analysis.mli:
