examples/quickstart.ml: Format List String Suu_algo Suu_core Suu_dag Suu_prob Suu_sim
