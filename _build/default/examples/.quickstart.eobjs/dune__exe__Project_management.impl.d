examples/project_management.ml: Array Format List Printf String Suu_algo Suu_core Suu_dag Suu_harness Suu_prob Suu_workloads
