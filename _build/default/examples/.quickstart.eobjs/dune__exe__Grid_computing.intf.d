examples/grid_computing.mli:
