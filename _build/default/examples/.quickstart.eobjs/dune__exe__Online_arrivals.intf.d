examples/online_arrivals.mli:
