examples/project_management.mli:
