examples/online_arrivals.ml: Array Float Format List Printf Suu_algo Suu_harness Suu_prob Suu_sim Suu_workloads
