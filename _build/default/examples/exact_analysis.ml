(* Exact analysis tools: when the instance is small, nothing needs to be
   estimated. This example walks through the paper's probabilistic
   objects computed exactly — the regimen Markov chain, optimal expected
   makespans, makespan CDFs for both regimens and oblivious schedules —
   and uses the Chernoff module to size a Monte-Carlo run that then
   confirms the exact numbers.

   Run with: dune exec examples/exact_analysis.exe *)

module Instance = Suu_core.Instance
module Exact = Suu_sim.Exact
module EO = Suu_sim.Exact_oblivious

let () =
  (* A 4-job instance with a fork: 0 precedes 1 and 2; 3 independent. *)
  let dag = Suu_dag.Dag.create ~n:4 [ (0, 1); (0, 2) ] in
  let inst =
    Instance.create
      ~p:[| [| 0.7; 0.3; 0.2; 0.6 |]; [| 0.2; 0.6; 0.5; 0.3 |] |]
      ~dag
  in

  (* 1. The exact optimum and its achieving regimen. *)
  let opt = Suu_algo.Malewicz.optimal inst in
  Format.printf "exact TOPT = %.6f over %d reachable states@."
    opt.Suu_algo.Malewicz.value opt.Suu_algo.Malewicz.states;

  (* 2. Exact value of a named regimen: greedy MSM as a regimen. *)
  let msm_regimen unfinished = Suu_algo.Msm.assign inst ~jobs:unfinished in
  let msm_value = Exact.expected_makespan_regimen inst msm_regimen in
  Format.printf "MSM regimen     = %.6f (x%.3f of optimal)@." msm_value
    (msm_value /. opt.Suu_algo.Malewicz.value);

  (* 3. Exact value of an oblivious schedule: the Theorem 4.7 pipeline. *)
  let sched = Suu_algo.Forest.schedule inst in
  let obl_value = EO.expected_makespan inst sched in
  Format.printf "forest pipeline = %.6f (x%.3f of optimal)@." obl_value
    (obl_value /. opt.Suu_algo.Malewicz.value);

  (* 4. Exact CDFs, side by side. *)
  let horizon = 14 in
  let decide = opt.Suu_algo.Malewicz.policy.Suu_core.Policy.fresh () in
  let opt_regimen unfinished =
    (* Regimen policies only read [unfinished]; the other fields are
       placeholders here. *)
    decide { Suu_core.Policy.step = 0; unfinished; eligible = unfinished }
  in
  let cdf_opt = Exact.makespan_distribution_regimen inst opt_regimen ~horizon in
  let cdf_obl = EO.cdf inst sched ~horizon in
  Suu_harness.Table.print ~title:"P(makespan <= t), exact"
    ~header:[ "t"; "optimal regimen"; "oblivious pipeline" ]
    (List.init (horizon + 1) (fun t ->
         [
           string_of_int t;
           Printf.sprintf "%.4f" cdf_opt.(t);
           Printf.sprintf "%.4f" cdf_obl.(t);
         ]));

  (* 5. Chernoff-sized Monte-Carlo confirmation. The makespan is not
     [0,1]-bounded, so we size trials for estimating P(T <= median-ish)
     within 0.02 at 99% confidence, then also compare means. *)
  let trials =
    Suu_prob.Chernoff.sample_size ~epsilon:0.02 ~confidence:0.99
  in
  Format.printf "@.Chernoff says %d trials estimate a probability within \
                 0.02 at 99%%@."
    trials;
  let e =
    Suu_sim.Engine.estimate_makespan ~trials (Suu_prob.Rng.create 123) inst
      opt.Suu_algo.Malewicz.policy
  in
  Format.printf "Monte-Carlo optimal regimen: %.4f ±%.4f (exact %.4f)@."
    e.Suu_sim.Engine.stats.Suu_prob.Stats.mean
    e.Suu_sim.Engine.stats.Suu_prob.Stats.ci95 opt.Suu_algo.Malewicz.value;
  let within_t t =
    Array.fold_left
      (fun acc s -> if s <= Float.of_int t then acc + 1 else acc)
      0 e.Suu_sim.Engine.samples
  in
  let t_probe = 6 in
  Format.printf "empirical P(T <= %d) = %.4f (exact %.4f)@." t_probe
    (Float.of_int (within_t t_probe)
    /. Float.of_int (Array.length e.Suu_sim.Engine.samples))
    cdf_opt.(t_probe)
