(* Online scheduling (the paper's §5 mentions online versions as an open
   direction): jobs arrive over time; the scheduler only sees released
   jobs. The adaptive MSM policy is automatically an online algorithm —
   it reads nothing but the current eligible set — so we can measure the
   price of arrivals directly: the same policy, offline (all jobs known
   at step 0) vs online (geometric arrival gaps), against the trivial
   lower bound of the last arrival time.

   Run with: dune exec examples/online_arrivals.exe *)

let trials = 500

let () =
  let rng = Suu_prob.Rng.create 31 in
  let n = 24 and m = 6 in
  let w = Suu_workloads.Workload.grid_batch (Suu_prob.Rng.split rng) ~n ~m in
  let inst = w.Suu_workloads.Workload.instance in
  let policy = Suu_algo.Suu_i.policy inst in
  Format.printf "%s, adaptive MSM policy, %d trials@.@."
    w.Suu_workloads.Workload.description trials;
  let rows =
    List.map
      (fun mean_gap ->
        let releases =
          if mean_gap = 0. then None
          else
            Some
              (Suu_workloads.Workload.arrivals (Suu_prob.Rng.create 7) ~n
                 ~mean_gap)
        in
        let last_arrival =
          match releases with
          | None -> 0
          | Some r -> Array.fold_left max 0 r
        in
        let e =
          Suu_sim.Engine.estimate_makespan ?releases ~trials
            (Suu_prob.Rng.create 99) inst policy
        in
        let mean = e.Suu_sim.Engine.stats.Suu_prob.Stats.mean in
        [
          (if mean_gap = 0. then "offline" else Printf.sprintf "%.1f" mean_gap);
          string_of_int last_arrival;
          Printf.sprintf "%.2f ±%.2f" mean e.Suu_sim.Engine.stats.Suu_prob.Stats.ci95;
          Printf.sprintf "%.2f" (mean -. Float.of_int last_arrival);
        ])
      [ 0.; 0.5; 1.; 2.; 4. ]
  in
  Suu_harness.Table.print ~title:"online arrivals: the price of not knowing"
    ~header:[ "mean gap"; "last arrival"; "E[makespan]"; "tail after arrival" ]
    rows;
  Format.printf
    "@.the 'tail after arrival' column converges to the per-batch cost as@.\
     gaps grow: once arrivals dominate, the online scheduler keeps up and@.\
     finishes a constant tail after the last release.@.@.";
  (* Show one online execution as a Gantt chart. *)
  let releases =
    Suu_workloads.Workload.arrivals (Suu_prob.Rng.create 7) ~n ~mean_gap:2.
  in
  let trace =
    Suu_sim.Engine.trace ~releases (Suu_prob.Rng.create 5) inst policy
  in
  Format.printf "one online execution (mean gap 2.0):@.%s@."
    (Suu_harness.Gantt.of_trace ~m trace)
