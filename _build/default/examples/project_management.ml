(* Project management (paper §1's second motivating application): workers
   with per-type skills, a work-breakdown forest of dependent tasks, and a
   manager who may assign several workers to the same task to hedge
   against failure.

   Shows the whole Theorem 4.7 pipeline with its diagnostics: the chain
   decomposition of the forest, the (LP1) optima per block, the rounding
   scale, the post-delay congestion and the final schedule shape.

   Run with: dune exec examples/project_management.exe *)

module W = Suu_workloads.Workload
module CD = Suu_dag.Chain_decomp

let () =
  let rng = Suu_prob.Rng.create 11 in
  let w = W.project rng ~n:24 ~m:6 in
  let inst = w.W.instance in
  Format.printf "%s@.@." w.W.description;

  (* The chain decomposition that drives the schedule. *)
  let dag = Suu_core.Instance.dag inst in
  let decomp = CD.decompose dag in
  Format.printf "chain decomposition: %d blocks (bound for this dag: %d)@."
    (CD.width decomp)
    (CD.width_bound dag decomp.CD.mode);
  Array.iteri
    (fun b chains ->
      Format.printf "  block %d: %s@." b
        (String.concat " | "
           (List.map
              (fun c -> String.concat "->" (List.map string_of_int c))
              chains)))
    decomp.CD.blocks;

  (* Build the oblivious schedule and show the pipeline diagnostics. *)
  let build = Suu_algo.Forest.build inst in
  let d = build.Suu_algo.Pipeline.diagnostics in
  Format.printf "@.pipeline diagnostics:@.";
  Format.printf "  (LP1) optima per block: %s@."
    (String.concat ", "
       (List.map (Printf.sprintf "%.2f") d.Suu_algo.Pipeline.lp_t_star));
  Format.printf "  rounding scale s=%d, %d jobs through the flow network@."
    d.Suu_algo.Pipeline.scale d.Suu_algo.Pipeline.flow_jobs;
  Format.printf "  max congestion after delays: %d@."
    d.Suu_algo.Pipeline.congestion;
  Format.printf "  core length %d steps, replicated x%d@."
    d.Suu_algo.Pipeline.core_length d.Suu_algo.Pipeline.sigma;

  (* Measure against bounds and the adaptive heuristic. *)
  let bounds = Suu_algo.Bounds.compute inst in
  let lb = Suu_algo.Bounds.best bounds in
  Format.printf "@.lower bound on TOPT: %.2f  (lp bound from this build: %.2f)@."
    lb
    (Suu_algo.Pipeline.lp_lower_bound build);
  let policies =
    [
      Suu_core.Policy.of_oblivious "suu-forest" build.Suu_algo.Pipeline.schedule;
      Suu_algo.Suu_i.policy inst;
      Suu_algo.Baselines.greedy_rate inst;
      Suu_algo.Baselines.serial_all_machines inst;
    ]
  in
  let ms =
    Suu_harness.Experiment.compare_policies ~trials:300 ~seed:5 inst
      ~lower_bound:lb policies
  in
  Suu_harness.Table.print ~title:"project scheduling"
    ~header:Suu_harness.Experiment.row_header
    (List.map Suu_harness.Experiment.row ms);

  (* Which workers carry the schedule? *)
  let loads = Suu_core.Oblivious.load build.Suu_algo.Pipeline.schedule in
  Format.printf "@.worker loads in the oblivious plan (prefix):@.";
  Array.iteri (fun i l -> Format.printf "  worker %d: %d task-steps@." i l) loads;

  (* The mass-accumulation core as a Gantt chart: windows per chain. *)
  Format.printf "@.the AccuMass core (one row per worker, jobs in base 36):@.%s"
    (Suu_harness.Gantt.of_oblivious build.Suu_algo.Pipeline.accumass ())
