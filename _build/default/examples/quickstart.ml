(* Quickstart: build an SUU instance by hand, schedule it, and measure.

   Run with: dune exec examples/quickstart.exe *)

module Instance = Suu_core.Instance
module Dag = Suu_dag.Dag

let () =
  (* Four unit jobs. Job 0 must run before jobs 1 and 2 (a small fork);
     job 3 is independent. Two machines with different strengths:
     machine 0 is good at jobs 0 and 3, machine 1 at jobs 1 and 2. *)
  let dag = Dag.create ~n:4 [ (0, 1); (0, 2) ] in
  let p =
    [|
      (* machine 0 *) [| 0.8; 0.2; 0.1; 0.9 |];
      (* machine 1 *) [| 0.3; 0.7; 0.6; 0.2 |];
    |]
  in
  let inst = Instance.create ~p ~dag in
  Format.printf "instance:@.%a@.@." Instance.pp inst;

  (* Lower bounds on the optimal expected makespan. *)
  let bounds = Suu_algo.Bounds.compute ~with_exact:true inst in
  Format.printf "lower bounds: %a@.@." Suu_algo.Bounds.pp bounds;

  (* The exact optimum (Malewicz's DP) is affordable at this size. *)
  let opt = Suu_algo.Malewicz.optimal inst in
  Format.printf "optimal regimen TOPT = %.4f@.@." opt.Suu_algo.Malewicz.value;

  (* An adaptive schedule: MSM-ALG greedy every step (Theorem 3.3). *)
  let adaptive = Suu_algo.Solver.solve ~kind:`Adaptive inst in
  (* An oblivious schedule: the forest pipeline (Theorem 4.7 machinery;
     this dag is an out-tree plus an isolated vertex, a directed forest). *)
  let oblivious = Suu_algo.Solver.solve ~kind:`Oblivious inst in

  let trials = 2000 in
  List.iter
    (fun policy ->
      let e =
        Suu_sim.Engine.estimate_makespan ~trials (Suu_prob.Rng.create 42) inst
          policy
      in
      Format.printf "%-12s E[makespan] = %5.2f ±%.2f  (x%.2f of optimal)@."
        policy.Suu_core.Policy.name e.Suu_sim.Engine.stats.Suu_prob.Stats.mean
        e.Suu_sim.Engine.stats.Suu_prob.Stats.ci95
        (e.Suu_sim.Engine.stats.Suu_prob.Stats.mean
        /. opt.Suu_algo.Malewicz.value))
    [ opt.Suu_algo.Malewicz.policy; adaptive; oblivious ];

  (* Watch one adaptive execution unfold. *)
  Format.printf "@.one adaptive execution:@.";
  let history = Suu_sim.Engine.trace (Suu_prob.Rng.create 7) inst adaptive in
  List.iter
    (fun (t, a, completed) ->
      Format.printf "  step %d: %a%s@." t Suu_core.Assignment.pp a
        (match completed with
        | [] -> ""
        | js ->
            "  completed " ^ String.concat "," (List.map string_of_int js)))
    history
