(* Grid computing scenarios (paper §1's first motivating application):
   a heterogeneous pool of machines — reliable, flaky and specialised —
   executing batches, pipelined workflows, divide-and-conquer trees and
   aggregation trees. Compares the paper's algorithms to naive baselines.

   Run with: dune exec examples/grid_computing.exe *)

module W = Suu_workloads.Workload
module E = Suu_harness.Experiment

let trials = 300
let seed = 2026

let run_scenario (w : W.t) =
  let inst = w.W.instance in
  let bounds = Suu_algo.Bounds.compute inst in
  let lb = Suu_algo.Bounds.best bounds in
  let ours =
    [ Suu_algo.Solver.solve ~kind:`Adaptive inst ]
    @
    match Suu_algo.Solver.solve ~kind:`Oblivious inst with
    | p -> [ p ]
    | exception Suu_algo.Solver.Unsupported _ -> []
  in
  let baselines =
    [
      Suu_algo.Baselines.greedy_rate inst;
      Suu_algo.Baselines.round_robin inst;
      Suu_algo.Baselines.static_best_machine inst;
    ]
  in
  let ms =
    E.compare_policies ~trials ~seed inst ~lower_bound:lb (ours @ baselines)
  in
  Format.printf "@.%s — %s@." w.W.name w.W.description;
  Format.printf "lower bound on TOPT: %.2f@." lb;
  Suu_harness.Table.print ~title:w.W.name ~header:E.row_header
    (List.map E.row ms)

let () =
  let rng = Suu_prob.Rng.create seed in
  let n = 32 and m = 8 in
  run_scenario (W.grid_batch (Suu_prob.Rng.split rng) ~n ~m);
  run_scenario (W.grid_workflow (Suu_prob.Rng.split rng) ~n ~m ~stages:4);
  run_scenario (W.grid_divide (Suu_prob.Rng.split rng) ~n ~m);
  run_scenario (W.grid_aggregate (Suu_prob.Rng.split rng) ~n ~m)
