(* EXP-G — ablations of the pipeline's design choices.

   On one fixed chain instance:
   (1) the random-delay step: best-of-K search budget and delay range vs
       the resulting congestion and flattened length;
   (2) the per-step replication factor σ: schedule length vs reliability
       (timeouts are absorbed by the fallback tail, visible as a longer
       measured makespan);
   (3) paper constants vs tuned constants end to end. *)

open Bench_common
module Pipeline = Suu_algo.Pipeline
module Delay = Suu_algo.Delay
module Oblivious = Suu_core.Oblivious

let instance () =
  let rng = Rng.create (master_seed + 77) in
  let n = 24 and m = 6 in
  let dag = Suu_dag.Gen.chains (Rng.split rng) ~n ~chains:6 in
  uniform_instance (master_seed + 78) ~n ~m ~lo:0.1 ~hi:0.9 dag

let delay_ablation inst =
  let chains = Suu_dag.Classify.chain_partition (Suu_core.Instance.dag inst) in
  let frac = Suu_algo.Lp_relax.solve_chains inst ~chains in
  let integral = Suu_algo.Rounding.round inst frac in
  let pseudos = Suu_algo.Rounding.chain_pseudos inst integral in
  let pi_max =
    Suu_core.Pseudo.load (Suu_core.Pseudo.overlay pseudos)
  in
  let rows =
    List.map
      (fun (label, tries, ranges) ->
        let _, choice =
          Delay.choose (Rng.create 1234) ~tries ~ranges pseudos
        in
        [
          label;
          string_of_int tries;
          string_of_int choice.Delay.congestion;
          string_of_int choice.Delay.flattened_length;
        ])
      [
        ("no delay", 1, [ 0 ]);
        ("paper: 1 draw in [0,Pi_max]", 1, [ pi_max ]);
        ("best-of-4, auto ranges", 4, Delay.auto_ranges pseudos);
        ("best-of-16, auto ranges", 16, Delay.auto_ranges pseudos);
        ("best-of-64, auto ranges", 64, Delay.auto_ranges pseudos);
      ]
  in
  let _, der = Delay.derandomized pseudos in
  let rows =
    rows
    @ [
        [
          "derandomized (cond. expectations)";
          "-";
          string_of_int der.Delay.congestion;
          string_of_int der.Delay.flattened_length;
        ];
      ]
  in
  table ~title:"EXP-G.1 delay search (Pi_max as paper range)"
    ~header:[ "strategy"; "K"; "congestion"; "flattened length" ]
    rows

let sigma_ablation inst =
  let lb = lower_bound inst in
  let rows =
    List.map
      (fun sigma ->
        let params = { Pipeline.default_params with Pipeline.sigma = `Fixed sigma } in
        let build = Suu_algo.Chains.build ~params inst in
        let policy = Suu_core.Policy.of_oblivious "suu-c" build.Pipeline.schedule in
        let mean, ci = mean_makespan inst policy in
        [
          string_of_int sigma;
          string_of_int
            (Oblivious.prefix_length build.Pipeline.schedule);
          Printf.sprintf "%.2f ±%.2f" mean ci;
          Printf.sprintf "%.2f" (mean /. lb);
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  table
    ~title:"EXP-G.2 replication factor (low sigma = shorter plan, more fallback)"
    ~header:[ "sigma"; "schedule length"; "E[makespan]"; "ratio" ]
    rows

let constants_ablation inst =
  let lb = lower_bound inst in
  let rows =
    List.map
      (fun (label, params) ->
        let build = Suu_algo.Chains.build ~params inst in
        let d = build.Pipeline.diagnostics in
        let policy = Suu_core.Policy.of_oblivious "suu-c" build.Pipeline.schedule in
        let mean, _ = mean_makespan inst policy in
        [
          label;
          string_of_int d.Pipeline.scale;
          string_of_int d.Pipeline.congestion;
          string_of_int d.Pipeline.core_length;
          string_of_int d.Pipeline.sigma;
          Printf.sprintf "%.2f" (mean /. lb);
        ])
      [
        ("tuned", Pipeline.default_params);
        ("paper", Pipeline.paper_params);
      ]
  in
  table ~title:"EXP-G.3 paper vs tuned constants"
    ~header:[ "constants"; "s"; "cong"; "core"; "sigma"; "ratio" ]
    rows

let rounding_ablation inst =
  let chains = Suu_dag.Classify.chain_partition (Suu_core.Instance.dag inst) in
  let frac = Suu_algo.Lp_relax.solve_chains inst ~chains in
  let summarise label integral =
    let loads = Array.map (Array.fold_left ( + ) 0) integral.Suu_algo.Rounding.x in
    let max_load = Array.fold_left max 0 loads in
    let worst_mass =
      List.fold_left
        (fun acc j -> Float.min acc integral.Suu_algo.Rounding.mass.(j))
        infinity integral.Suu_algo.Rounding.jobs
    in
    let window_sum =
      List.fold_left
        (fun acc j -> acc + integral.Suu_algo.Rounding.window.(j))
        0 integral.Suu_algo.Rounding.jobs
    in
    [
      label;
      string_of_int max_load;
      string_of_int window_sum;
      Printf.sprintf "%.2f" worst_mass;
    ]
  in
  table
    ~title:"EXP-G.4 rounding method (same LP solution)"
    ~header:[ "method"; "max machine load"; "sum of windows"; "min job mass" ]
    [
      summarise "Thm 4.1 (tuned)" (Suu_algo.Rounding.round inst frac);
      summarise "Thm 4.1 (paper)"
        (Suu_algo.Rounding.round ~constants:`Paper inst frac);
      summarise "randomized + repair"
        (Suu_algo.Rounding.randomized (Rng.create 77) inst frac);
    ]

let run () =
  section "EXP-G: ablations (delay search, replication, constants)";
  let inst = instance () in
  delay_ablation inst;
  sigma_ablation inst;
  constants_ablation inst;
  rounding_ablation inst;
  note "expected: delays cut congestion; sigma trades length vs reliability;";
  note "paper constants are valid but much longer than tuned ones."
