(* EXP-F — Theorems 4.7 and 4.8: trees and directed forests.

   For out-trees, in-trees and polytree forests across sizes: the chain
   decomposition width against the Lemma 4.6 bound, and the measured
   ratios. Reproduced shape: width <= bound (log-shaped growth), pipeline
   ratios within the polylog envelope, adaptive heuristic well below. *)

open Bench_common
module CD = Suu_dag.Chain_decomp
module Pipeline = Suu_algo.Pipeline

let dag_for rng kind n =
  match kind with
  | "out-tree" -> Suu_dag.Gen.out_forest rng ~n ~trees:1
  | "in-tree" -> Suu_dag.Gen.in_forest rng ~n ~trees:1
  | "binary-out" -> Suu_dag.Gen.binary_out_tree ~n
  | "polytree" -> Suu_dag.Gen.polytree_forest rng ~n ~trees:2
  | other -> invalid_arg other

let build_for inst kind =
  if kind = "polytree" then Suu_algo.Forest.build inst
  else Suu_algo.Trees.build inst

let run () =
  section "EXP-F: trees and forests (Theorems 4.7, 4.8; Lemma 4.6)";
  let m = 6 in
  let rows = ref [] in
  List.iter
    (fun kind ->
      List.iter
        (fun n ->
          let rng = Rng.create (master_seed + n) in
          let dag = dag_for (Rng.split rng) kind n in
          let inst =
            uniform_instance (master_seed + (11 * n)) ~n ~m ~lo:0.15 ~hi:0.9 dag
          in
          let decomp = CD.decompose dag in
          let bound = CD.width_bound dag decomp.CD.mode in
          let lb = lower_bound inst in
          let build = build_for inst kind in
          let policy =
            Suu_core.Policy.of_oblivious "pipeline" build.Pipeline.schedule
          in
          let r p = fst (mean_makespan inst p) /. lb in
          rows :=
            [
              kind;
              string_of_int n;
              string_of_int (CD.width decomp);
              string_of_int bound;
              Printf.sprintf "%.2f" (r policy);
              Printf.sprintf "%.2f" (r (Suu_algo.Suu_i.policy inst));
              Printf.sprintf "%.2f"
                (r (Suu_algo.Baselines.serial_all_machines inst));
            ]
            :: !rows)
        [ 15; 31; 63 ])
    [ "out-tree"; "binary-out"; "in-tree"; "polytree" ];
  table ~title:"EXP-F trees & forests"
    ~header:
      [ "dag"; "n"; "width"; "bound"; "pipeline"; "adaptive"; "serial" ]
    (List.rev !rows);
  note "width column must stay <= bound (Lemma 4.6)."
