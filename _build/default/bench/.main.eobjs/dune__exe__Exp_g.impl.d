bench/exp_g.ml: Array Bench_common Float List Printf Rng Suu_algo Suu_core Suu_dag
