bench/exp_k.ml: Array Bench_common Float List Printf Rng Suu_jobshop
