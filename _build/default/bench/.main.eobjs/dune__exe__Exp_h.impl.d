bench/exp_h.ml: Array Bench_common Hashtbl List Printf Queue String Suu_algo Suu_core Suu_sim Suu_workloads
