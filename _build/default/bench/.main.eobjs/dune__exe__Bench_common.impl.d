bench/bench_common.ml: Array Filename Float Hashtbl Printf String Suu_algo Suu_core Suu_harness Suu_prob Suu_sim Sys
