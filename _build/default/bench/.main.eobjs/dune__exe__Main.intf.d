bench/main.mli:
