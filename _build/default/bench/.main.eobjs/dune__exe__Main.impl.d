bench/main.ml: Array Bench_common Exp_a Exp_b Exp_c Exp_d Exp_e Exp_f Exp_g Exp_h Exp_i Exp_j Exp_k Exp_l List Perf Printf String Sys Unix
