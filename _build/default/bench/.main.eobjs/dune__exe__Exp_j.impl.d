bench/exp_j.ml: Array Bench_common List Printf Rng Suu_algo Suu_core Suu_dag Suu_prob
