bench/exp_i.ml: Array Bench_common Float List Printf Rng Suu_algo Suu_core Suu_dag Suu_sim Suu_workloads
