bench/exp_c.ml: Bench_common List Printf Suu_algo Suu_dag
