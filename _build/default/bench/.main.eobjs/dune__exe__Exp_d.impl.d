bench/exp_d.ml: Array Bench_common Float Printf Rng Suu_algo Suu_core Suu_dag Suu_prob
