bench/perf.ml: Array Bechamel Bench_common Float List Printf Rng Suu_algo Suu_core Suu_dag Suu_flow Suu_jobshop Suu_sim
