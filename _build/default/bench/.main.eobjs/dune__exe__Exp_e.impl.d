bench/exp_e.ml: Bench_common List Printf Rng Suu_algo Suu_core Suu_dag
