bench/exp_b.ml: Array Bench_common Float List Printf Suu_algo Suu_dag Suu_prob
