bench/exp_a.ml: Bench_common Hashtbl List Printf Rng Suu_algo Suu_dag Suu_workloads
