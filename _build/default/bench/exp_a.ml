(* EXP-A — the §1.1 results table, empirically.

   One row per (dag class, probability family, size): the measured
   approximation ratio (E[makespan] / best lower bound) of the paper's
   algorithm for that class, next to the adaptive heuristic and two naive
   baselines. The paper's claim being reproduced: the guaranteed
   algorithms stay within polylog factors of the lower bound across all
   classes, where naive static plans degrade. *)

open Bench_common
module Gen = Suu_dag.Gen
module W = Suu_workloads.Workload

let dag_for rng klass n =
  match klass with
  | "independent" -> Suu_dag.Dag.empty n
  | "chains" -> Gen.chains rng ~n ~chains:(max 1 (n / 6))
  | "out-trees" -> Gen.out_forest rng ~n ~trees:2
  | "forest" -> Gen.polytree_forest rng ~n ~trees:2
  | "general" -> Gen.layered rng ~n ~layers:4 ~edge_prob:0.3
  | other -> invalid_arg other

let instance_for seed klass family ~n ~m =
  let rng = Rng.create seed in
  let dag = dag_for (Rng.split rng) klass n in
  match family with
  | "uniform" ->
      (W.uniform (Rng.split rng) ~n ~m ~lo:0.1 ~hi:0.9 ~dag).W.instance
  | "specialist" ->
      (W.specialists (Rng.split rng) ~n ~m ~capable:(min 3 m) ~lo:0.3 ~hi:0.9
         ~dag)
        .W.instance
  | other -> invalid_arg other

(* For general DAGs the paper leaves oblivious scheduling open; the
   solver then falls back to our layered-heuristic extension. *)
let paper_algorithm inst =
  Suu_algo.Solver.solve ~kind:`Oblivious ~allow_heuristic:true inst

let run () =
  section "EXP-A: empirical approximation ratios per DAG class (cf. paper §1.1)";
  note "ratio = E[makespan] / max(lower bounds); trials=%d per cell" trials;
  let rows = ref [] in
  List.iter
    (fun klass ->
      List.iter
        (fun family ->
          List.iter
            (fun (n, m) ->
              let inst = instance_for (Hashtbl.hash (klass, family, n)) klass family ~n ~m in
              let lb = lower_bound inst in
              let measure policy = fst (mean_makespan inst policy) /. lb in
              let guaranteed = measure (paper_algorithm inst) in
              let adaptive = measure (Suu_algo.Suu_i.policy inst) in
              let greedy = measure (Suu_algo.Baselines.greedy_rate inst) in
              let static =
                measure (Suu_algo.Baselines.static_best_machine inst)
              in
              rows :=
                [
                  klass;
                  family;
                  string_of_int n;
                  string_of_int m;
                  Printf.sprintf "%.2f" lb;
                  Printf.sprintf "%.2f" guaranteed;
                  Printf.sprintf "%.2f" adaptive;
                  Printf.sprintf "%.2f" greedy;
                  Printf.sprintf "%.2f" static;
                ]
                :: !rows)
            [ (24, 6); (48, 8) ])
        [ "uniform"; "specialist" ])
    [ "independent"; "chains"; "out-trees"; "forest"; "general" ];
  table ~title:"EXP-A ratio summary"
    ~header:
      [
        "class"; "p-family"; "n"; "m"; "LB"; "paper-alg"; "adaptive";
        "greedy"; "static-best";
      ]
    (List.rev !rows)
