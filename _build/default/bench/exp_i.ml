(* EXP-I — Theorem 2.2: in any schedule of expected makespan T, every job
   accumulates mass >= 1/4 within 2T steps with probability >= 1/4.

   We measure the per-job frequency of the event across Monte-Carlo
   executions for several schedules (optimal regimen, adaptive greedy,
   serial), reporting the worst job's frequency. Mass is accumulated
   exactly as in Definition 2.4: only machines actually working on the
   (eligible, unfinished) job count, and accumulation stops when the job
   completes. *)

open Bench_common
module Instance = Suu_core.Instance
module Engine = Suu_sim.Engine
module Dag = Suu_dag.Dag

(* Replay a trace, accumulating per-job mass under execution semantics. *)
let masses_from_trace inst horizon trace =
  let n = Instance.n inst in
  let dag = Instance.dag inst in
  let unfinished = Array.make n true in
  let pending = Array.init n (Dag.in_degree dag) in
  let mass = Array.make n 0. in
  List.iter
    (fun (t, a, completed) ->
      if t < horizon then begin
        Array.iteri
          (fun i j ->
            if
              j >= 0 && unfinished.(j) && pending.(j) = 0
            then mass.(j) <- mass.(j) +. Instance.prob inst ~machine:i ~job:j)
          a;
        List.iter
          (fun j ->
            unfinished.(j) <- false;
            List.iter (fun v -> pending.(v) <- pending.(v) - 1) (Dag.succs dag j))
          completed
      end)
    trace;
  mass

let worst_job_frequency inst policy ~trials:k =
  (* First estimate T = E[makespan] of this schedule. *)
  let mean, _ = mean_makespan inst policy in
  let horizon = Float.to_int (Float.ceil (2. *. mean)) in
  let n = Instance.n inst in
  let hits = Array.make n 0 in
  for trial = 1 to k do
    let rng = Rng.create (master_seed + (trial * 7919)) in
    let trace = Engine.trace ~max_steps:horizon rng inst policy in
    let mass = masses_from_trace inst horizon trace in
    Array.iteri (fun j mj -> if mj >= 0.25 -. 1e-12 then hits.(j) <- hits.(j) + 1) mass
  done;
  let worst = ref 1. in
  Array.iter
    (fun h ->
      let f = Float.of_int h /. Float.of_int k in
      if f < !worst then worst := f)
    hits;
  (mean, !worst)

let run () =
  section "EXP-I: mass accumulation within 2T (Theorem 2.2)";
  let k = max 200 trials in
  let cases =
    [
      ( "uniform independent",
        uniform_instance (master_seed + 5) ~n:8 ~m:3 ~lo:0.1 ~hi:0.9
          (Suu_dag.Dag.empty 8) );
      ( "chains",
        uniform_instance (master_seed + 6) ~n:8 ~m:3 ~lo:0.2 ~hi:0.8
          (Suu_dag.Gen.chains (Rng.create 3) ~n:8 ~chains:2) );
      ( "adversarial spread",
        (Suu_workloads.Workload.adversarial_spread ~n:6 ~m:6)
          .Suu_workloads.Workload.instance );
    ]
  in
  let rows = ref [] in
  List.iter
    (fun (label, inst) ->
      List.iter
        (fun policy ->
          let t, worst = worst_job_frequency inst policy ~trials:k in
          rows :=
            [
              label;
              policy.Suu_core.Policy.name;
              Printf.sprintf "%.2f" t;
              Printf.sprintf "%.3f" worst;
              "0.250";
            ]
            :: !rows)
        [
          Suu_algo.Suu_i.policy inst;
          Suu_algo.Baselines.serial_all_machines inst;
          Suu_algo.Baselines.greedy_rate inst;
        ])
    cases;
  table
    ~title:
      (Printf.sprintf
         "EXP-I Pr[job mass >= 1/4 within 2T] over %d runs (worst job)" k)
    ~header:[ "instance"; "schedule"; "T"; "worst Pr"; "guarantee" ]
    (List.rev !rows);
  note "reproduced if every worst-Pr >= 0.25 (Theorem 2.2)."
