(* EXP-J — Lemma 4.2: T*(LP1) <= 16 TOPT, i.e. T*/16 is a valid lower
   bound. On small instances with exact TOPT we report the distribution
   of T*/TOPT — it must stay <= 16 (validity) — and of TOPT/(T*/16),
   which measures how loose the LP bound is in practice. *)

open Bench_common
module Lp_relax = Suu_algo.Lp_relax

let run () =
  section "EXP-J: the (LP1) bound vs exact TOPT (Lemma 4.2)";
  let samples = 60 in
  let ratios = ref [] in
  let loose = ref [] in
  let attempted = ref 0 in
  let rng = Rng.create (master_seed + 99) in
  while List.length !ratios < samples && !attempted < samples * 3 do
    incr attempted;
    let n = 2 + Rng.int rng 4 and m = 1 + Rng.int rng 3 in
    let chains_count = 1 + Rng.int rng n in
    let dag = Suu_dag.Gen.chains (Rng.split rng) ~n ~chains:chains_count in
    let inst =
      uniform_instance (Rng.int rng 1_000_000) ~n ~m ~lo:0.15 ~hi:0.9 dag
    in
    match Suu_algo.Malewicz.optimal_value inst with
    | exception Suu_algo.Malewicz.Too_expensive _ -> ()
    | topt ->
        let chains =
          Suu_dag.Classify.chain_partition (Suu_core.Instance.dag inst)
        in
        let t_star = (Lp_relax.solve_chains inst ~chains).Lp_relax.t_star in
        ratios := (t_star /. topt) :: !ratios;
        loose := (topt /. (t_star /. 16.)) :: !loose
  done;
  let rs = Suu_prob.Stats.summarize (Array.of_list !ratios) in
  let ls = Suu_prob.Stats.summarize (Array.of_list !loose) in
  table ~title:"EXP-J T*(LP1) vs exact TOPT"
    ~header:[ "quantity"; "instances"; "min"; "mean"; "max"; "limit" ]
    [
      [
        "T*/TOPT (validity, <= 16)";
        string_of_int rs.Suu_prob.Stats.count;
        Printf.sprintf "%.3f" rs.Suu_prob.Stats.min;
        Printf.sprintf "%.3f" rs.Suu_prob.Stats.mean;
        Printf.sprintf "%.3f" rs.Suu_prob.Stats.max;
        "16.000";
      ];
      [
        "TOPT/(T*/16) (looseness)";
        string_of_int ls.Suu_prob.Stats.count;
        Printf.sprintf "%.2f" ls.Suu_prob.Stats.min;
        Printf.sprintf "%.2f" ls.Suu_prob.Stats.mean;
        Printf.sprintf "%.2f" ls.Suu_prob.Stats.max;
        "-";
      ];
    ];
  note "reproduced if max of the first row <= 16 (Lemma 4.2)."
