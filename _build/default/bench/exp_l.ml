(* EXP-L — adversarial instance search.

   The measured ratios in EXP-A..F are averages over generator
   distributions; a reproduction should also ask how bad things can get.
   This experiment random-searches small instances (where Malewicz's DP
   gives exact TOPT) for the worst exact ratio of each algorithm, i.e. an
   empirical lower bound on its true approximation factor. Expected
   shape: worst cases stay modest (the paper proves only upper bounds;
   Malewicz proved a 5/4 inapproximability floor for the problem itself,
   so ratios above 1 are unavoidable in general). *)

open Bench_common
module Exact = Suu_sim.Exact

let search ~samples ~make_instance ~evaluate =
  let worst = ref 1. in
  let rng = Rng.create (master_seed + 4242) in
  for _ = 1 to samples do
    match make_instance rng with
    | None -> ()
    | Some inst -> (
        match Suu_algo.Malewicz.optimal_value inst with
        | exception Suu_algo.Malewicz.Too_expensive _ -> ()
        | topt ->
            let v = evaluate inst in
            if Float.is_finite v && v /. topt > !worst then
              worst := v /. topt)
  done;
  !worst

let random_small rng ~max_n ~max_m ~dag_kind =
  let n = 2 + Rng.int rng (max_n - 1) in
  let m = 1 + Rng.int rng max_m in
  let dag =
    match dag_kind with
    | `Independent -> Suu_dag.Dag.empty n
    | `Chains -> Suu_dag.Gen.chains (Rng.split rng) ~n ~chains:(1 + Rng.int rng n)
  in
  let p =
    Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.05 1.))
  in
  Some (Suu_core.Instance.create ~p ~dag)

let regimen_value inst policy =
  let dag = Suu_core.Instance.dag inst in
  let eligible_of unfinished =
    Array.mapi
      (fun j u ->
        u
        && List.for_all
             (fun p -> not unfinished.(p))
             (Suu_dag.Dag.preds dag j))
      unfinished
  in
  let decide = policy.Suu_core.Policy.fresh () in
  Exact.expected_makespan_regimen inst (fun unfinished ->
      decide
        {
          Suu_core.Policy.step = 0;
          unfinished;
          eligible = eligible_of unfinished;
        })

let oblivious_value inst sched =
  match Suu_sim.Exact_oblivious.expected_makespan inst sched with
  | v -> v
  | exception Suu_sim.Exact_oblivious.Horizon_too_short _ -> Float.nan

let run () =
  section "EXP-L: adversarial search for worst exact ratios (small instances)";
  let samples = 400 in
  let rows =
    [
      ( "suu-i-alg (adaptive)",
        "independent",
        search ~samples
          ~make_instance:(random_small ~max_n:5 ~max_m:3 ~dag_kind:`Independent)
          ~evaluate:(fun inst -> regimen_value inst (Suu_algo.Suu_i.policy inst))
      );
      ( "msm-critical-path",
        "chains",
        search ~samples
          ~make_instance:(random_small ~max_n:5 ~max_m:3 ~dag_kind:`Chains)
          ~evaluate:(fun inst ->
            regimen_value inst (Suu_algo.Weighted_msm.policy inst)) );
      ( "lp-indep (oblivious)",
        "independent",
        search ~samples:(samples / 4)
          ~make_instance:(random_small ~max_n:4 ~max_m:3 ~dag_kind:`Independent)
          ~evaluate:(fun inst ->
            oblivious_value inst (Suu_algo.Lp_indep.schedule inst)) );
      ( "suu-c (oblivious)",
        "chains",
        search ~samples:(samples / 4)
          ~make_instance:(random_small ~max_n:4 ~max_m:3 ~dag_kind:`Chains)
          ~evaluate:(fun inst ->
            oblivious_value inst (Suu_algo.Chains.schedule inst)) );
    ]
  in
  table
    ~title:
      (Printf.sprintf "EXP-L worst exact ratio found (random search, %d samples)"
         samples)
    ~header:[ "algorithm"; "dag class"; "worst ratio vs exact TOPT" ]
    (List.map
       (fun (a, b, v) -> [ a; b; Printf.sprintf "%.3f" v ])
       rows);
  note "context: the problem itself cannot be approximated below 5/4 (Malewicz).";
  note "exact evaluation throughout - no Monte-Carlo noise in this table."
