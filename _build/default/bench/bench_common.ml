(* Shared plumbing for the experiment suite. Every experiment prints an
   aligned table; EXPERIMENTS.md records the paper-vs-measured reading of
   each one. Trials can be scaled with SUU_BENCH_TRIALS (default 100). *)

module Instance = Suu_core.Instance
module Engine = Suu_sim.Engine
module Rng = Suu_prob.Rng

let trials =
  match Sys.getenv_opt "SUU_BENCH_TRIALS" with
  | Some s -> (try max 10 (int_of_string s) with Failure _ -> 100)
  | None -> 100

let master_seed = 20260705

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Print a table, and mirror it as CSV when SUU_BENCH_CSV names a
   directory (created on demand) — machine-readable artifacts of every
   experiment. *)
let table ~title ~header rows =
  Suu_harness.Table.print ~title ~header rows;
  match Sys.getenv_opt "SUU_BENCH_CSV" with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let slug =
        String.map
          (fun c ->
            match c with
            | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
            | _ -> '-')
          (String.lowercase_ascii title)
      in
      Suu_harness.Csv.write
        ~path:(Filename.concat dir (slug ^ ".csv"))
        ~header rows

let note fmt = Printf.printf (fmt ^^ "\n")

let lower_bound ?(with_lp = true) inst =
  Suu_algo.Bounds.best (Suu_algo.Bounds.compute ~with_lp inst)

let mean_makespan ?max_steps ?(seed = master_seed) inst policy =
  let e =
    Engine.estimate_makespan ?max_steps ~trials
      (Rng.create (seed lxor Hashtbl.hash policy.Suu_core.Policy.name))
      inst policy
  in
  (e.Engine.stats.Suu_prob.Stats.mean, e.Engine.stats.Suu_prob.Stats.ci95)

let ratio_row ?seed inst ~lb policy =
  let mean, ci = mean_makespan ?seed inst policy in
  [
    policy.Suu_core.Policy.name;
    Printf.sprintf "%.2f ±%.2f" mean ci;
    Printf.sprintf "%.2f" (mean /. lb);
  ]

let uniform_instance seed ~n ~m ~lo ~hi dag =
  let rng = Rng.create seed in
  Instance.create
    ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng lo hi)))
    ~dag

let log2 x = Float.log x /. Float.log 2.
