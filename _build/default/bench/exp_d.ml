(* EXP-D — Theorem 3.2 / Lemma 3.4: the greedy mass maximisers are
   1/3-approximations.

   Exhaustive optima on thousands of small random instances; we report the
   worst and mean empirical factor. Reproduced shape: the worst factor
   stays above (in practice far above) the proven 1/3. *)

open Bench_common
module Msm = Suu_algo.Msm
module Msm_ext = Suu_algo.Msm_ext

let msm_factor rng ~m ~n =
  let inst =
    uniform_instance (Rng.int rng 1_000_000) ~n ~m ~lo:0.01 ~hi:1.
      (Suu_dag.Dag.empty n)
  in
  let jobs = Array.make n true in
  let greedy = Msm.total_mass inst (Msm.assign inst ~jobs) in
  let opt = Msm.optimal_mass_brute_force inst ~jobs in
  if opt > 0. then greedy /. opt else 1.

let msm_ext_brute_force inst ~n ~m ~t =
  let x = Array.make_matrix m n 0 in
  let best = ref 0. in
  let value () =
    let total = ref 0. in
    for j = 0 to n - 1 do
      let mass = ref 0. in
      for i = 0 to m - 1 do
        mass :=
          !mass
          +. Float.of_int x.(i).(j)
             *. Suu_core.Instance.prob inst ~machine:i ~job:j
      done;
      total := !total +. Float.min 1. !mass
    done;
    !total
  in
  let rec fill i j remaining =
    if i = m then best := Float.max !best (value ())
    else if j = n then fill (i + 1) 0 t
    else
      for steps = 0 to remaining do
        x.(i).(j) <- steps;
        fill i (j + 1) (remaining - steps);
        x.(i).(j) <- 0
      done
  in
  fill 0 0 t;
  !best

let msm_ext_factor rng ~m ~n ~t =
  let inst =
    uniform_instance (Rng.int rng 1_000_000) ~n ~m ~lo:0.01 ~hi:1.
      (Suu_dag.Dag.empty n)
  in
  let jobs = Array.make n true in
  let greedy = Msm_ext.total_mass (Msm_ext.allocate inst ~jobs ~t) in
  let opt = msm_ext_brute_force inst ~n ~m ~t in
  if opt > 0. then greedy /. opt else 1.

let summarise name factors =
  let s = Suu_prob.Stats.summarize factors in
  [
    name;
    string_of_int s.Suu_prob.Stats.count;
    Printf.sprintf "%.4f" s.Suu_prob.Stats.min;
    Printf.sprintf "%.4f" s.Suu_prob.Stats.mean;
    "0.3333";
  ]

let run () =
  section "EXP-D: empirical 1/3-approximation factors (Thm 3.2, Lemma 3.4)";
  let rng = Rng.create master_seed in
  let msm_samples = 3000 and ext_samples = 400 in
  let msm =
    Array.init msm_samples (fun _ ->
        msm_factor rng ~m:(1 + Rng.int rng 3) ~n:(1 + Rng.int rng 4))
  in
  let ext =
    Array.init ext_samples (fun _ ->
        msm_ext_factor rng ~m:(1 + Rng.int rng 2) ~n:(1 + Rng.int rng 3)
          ~t:(1 + Rng.int rng 3))
  in
  table ~title:"EXP-D greedy/optimal factors"
    ~header:[ "algorithm"; "instances"; "worst"; "mean"; "guarantee" ]
    [ summarise "MSM-ALG" msm; summarise "MSM-E-ALG" ext ];
  note "reproduced if worst >= guarantee (0.3333)."
