(* EXP-H — the paper's Figure 1 as an executable exhibit.

   Left diagram: the Markov chain of a regimen on a 3-job instance —
   every reachable unfinished-set state, the regimen's assignment in that
   state, and the transition probabilities. Right diagram: the first two
   levels of the execution tree. Plus the exact expected makespan and the
   makespan CDF of the chain. *)

open Bench_common
module Instance = Suu_core.Instance
module Exact = Suu_sim.Exact

let job_set_name n mask =
  if mask = 0 then "{}"
  else begin
    let names =
      List.filter_map
        (fun j -> if mask land (1 lsl j) <> 0 then Some (string_of_int (j + 1)) else None)
        (List.init n (fun j -> j))
    in
    "{" ^ String.concat "," names ^ "}"
  end

let run () =
  section "EXP-H: Figure 1 - Markov chain and execution tree of a regimen";
  let w = Suu_workloads.Workload.figure1 () in
  let inst = w.Suu_workloads.Workload.instance in
  let n = Instance.n inst in
  note "%s" w.Suu_workloads.Workload.description;
  let opt = Suu_algo.Malewicz.optimal inst in
  note "optimal regimen TOPT = %.4f (%d reachable states)"
    opt.Suu_algo.Malewicz.value opt.Suu_algo.Malewicz.states;
  let decide = opt.Suu_algo.Malewicz.policy.Suu_core.Policy.fresh () in
  let regimen mask =
    decide
      {
        Suu_core.Policy.step = 0;
        unfinished = Array.init n (fun j -> mask land (1 lsl j) <> 0);
        eligible = Array.init n (fun j -> mask land (1 lsl j) <> 0);
      }
  in
  (* Markov chain: enumerate states reachable from the full set. *)
  let full = Exact.full_mask inst in
  let seen = Hashtbl.create 16 in
  let queue = Queue.create () in
  Queue.add full queue;
  Hashtbl.add seen full ();
  let rows = ref [] in
  while not (Queue.is_empty queue) do
    let mask = Queue.pop queue in
    if mask <> 0 then begin
      let a = regimen mask in
      let dist = Exact.step_distribution inst ~mask a in
      let transitions =
        List.filter_map
          (fun (mask', p) ->
            if p > 1e-12 then
              Some (Printf.sprintf "%s:%.3f" (job_set_name n mask') p)
            else None)
          (List.sort (fun (a, _) (b, _) -> compare b a) dist)
      in
      let assignment =
        String.concat " "
          (Array.to_list
             (Array.mapi
                (fun i j ->
                  if j < 0 then Printf.sprintf "m%d:idle" (i + 1)
                  else Printf.sprintf "m%d->j%d" (i + 1) (j + 1))
                a))
      in
      rows :=
        [ job_set_name n mask; assignment; String.concat " " transitions ]
        :: !rows;
      List.iter
        (fun (mask', p) ->
          if p > 1e-12 && not (Hashtbl.mem seen mask') then begin
            Hashtbl.add seen mask' ();
            Queue.add mask' queue
          end)
        dist
    end
  done;
  table
    ~title:"EXP-H.1 Markov chain of the optimal regimen (Figure 1, left)"
    ~header:[ "state"; "assignment"; "transitions" ]
    (List.rev !rows);
  (* Execution tree, two levels (Figure 1, right). *)
  note "";
  note "EXP-H.2 execution tree, two levels (Figure 1, right):";
  let print_level prefix mask prob depth =
    let rec go prefix mask prob depth =
      Printf.printf "%s%s  (prob %.4f)\n" prefix (job_set_name n mask) prob;
      if depth > 0 && mask <> 0 then begin
        let a = regimen mask in
        List.iter
          (fun (mask', p) ->
            if p > 1e-12 then go (prefix ^ "  ") mask' (prob *. p) (depth - 1))
          (Exact.step_distribution inst ~mask a)
      end
    in
    go prefix mask prob depth
  in
  print_level "  " full 1. 2;
  (* CDF of the makespan. *)
  let regimen_of_flags unfinished =
    let mask = ref 0 in
    Array.iteri (fun j u -> if u then mask := !mask lor (1 lsl j)) unfinished;
    regimen !mask
  in
  let cdf =
    Exact.makespan_distribution_regimen inst regimen_of_flags ~horizon:12
  in
  let rows =
    List.map
      (fun t -> [ string_of_int t; Printf.sprintf "%.4f" cdf.(t) ])
      (List.init 13 (fun t -> t))
  in
  table ~title:"EXP-H.3 P(makespan <= t), exact"
    ~header:[ "t"; "P" ] rows
