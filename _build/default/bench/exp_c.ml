(* EXP-C — oblivious schedules for independent jobs and the adaptivity gap
   (Theorems 3.6 and 4.5).

   Small n: ratios against the exact optimum (Malewicz DP). Larger n:
   against the best lower bound. The reproduced shape: the adaptive
   algorithm dominates; both oblivious constructions pay extra log
   factors; the LP-based one is competitive with the combinatorial one. *)

open Bench_common

let run () =
  section "EXP-C: oblivious vs adaptive on independent jobs (Thms 3.6, 4.5)";
  let m = 4 in
  let rows =
    List.map
      (fun n ->
        let inst =
          uniform_instance (master_seed + (3 * n)) ~n ~m ~lo:0.2 ~hi:0.9
            (Suu_dag.Dag.empty n)
        in
        let exact =
          if n <= 8 then
            match Suu_algo.Malewicz.optimal_value inst with
            | v -> Some v
            | exception Suu_algo.Malewicz.Too_expensive _ -> None
          else None
        in
        let lb =
          match exact with Some v -> v | None -> lower_bound inst
        in
        let r policy = fst (mean_makespan inst policy) /. lb in
        [
          string_of_int n;
          (match exact with
          | Some v -> Printf.sprintf "%.2f" v
          | None -> "-");
          Printf.sprintf "%.2f" (r (Suu_algo.Suu_i.policy inst));
          Printf.sprintf "%.2f" (r (Suu_algo.Suu_i_obl.policy inst));
          Printf.sprintf "%.2f" (r (Suu_algo.Lp_indep.policy inst));
        ])
      [ 4; 6; 8; 16; 32; 64 ]
  in
  table
    ~title:"EXP-C adaptivity gap (ratios; denominator = exact TOPT for n<=8)"
    ~header:[ "n"; "TOPT"; "adaptive(3.3)"; "obl-greedy(3.6)"; "obl-LP(4.5)" ]
    rows;
  note "expected: adaptive smallest; oblivious columns higher by log factors."
