(* EXP-K — the job-shop substrate behind §4.1's delay-and-flatten step.

   The SUU pipeline borrows its collision-resolution machinery from
   deterministic job-shop scheduling (Leighton–Maggs–Rao;
   Shmoys–Stein–Wein). This experiment validates the shared machinery in
   its original setting: makespans of list scheduling, best-of-K random
   delays and the derandomized delays, against the congestion/dilation
   lower bound max(C, D), across shop shapes. Expected shape: all three
   stay within a small factor of max(C, D); delays matter most when many
   jobs fight over few machines (C >> D). *)

open Bench_common
module J = Suu_jobshop.Jobshop

let random_shop seed ~machines ~jobs ~ops ~dur =
  let rng = Rng.create seed in
  J.create ~machines
    (Array.init jobs (fun _ ->
         List.init
           (1 + Rng.int rng ops)
           (fun _ ->
             { J.machine = Rng.int rng machines; duration = 1 + Rng.int rng dur })))

let run () =
  section "EXP-K: job-shop substrate (delay-and-flatten, cf. paper §1.2/§4.1)";
  let rows =
    List.map
      (fun (label, machines, jobs, ops, dur) ->
        let t =
          random_shop (master_seed + jobs + machines) ~machines ~jobs ~ops ~dur
        in
        let lb = J.lower_bound t in
        let r s = Float.of_int (J.makespan s) /. Float.of_int lb in
        let greedy = J.greedy t in
        let rand, _ = J.random_delay (Rng.create 5) ~tries:16 t in
        let der, _ = J.derandomized_delay t in
        [
          label;
          string_of_int (J.congestion t);
          string_of_int (J.dilation t);
          Printf.sprintf "%.2f" (r greedy);
          Printf.sprintf "%.2f" (r rand);
          Printf.sprintf "%.2f" (r der);
        ])
      [
        ("balanced 8x16", 8, 16, 6, 3);
        ("contended 2x24 (C>>D)", 2, 24, 4, 3);
        ("long jobs 8x4 (D>>C)", 8, 4, 12, 4);
        ("tiny 3x6", 3, 6, 3, 2);
        ("wide 16x48", 16, 48, 5, 2);
      ]
  in
  table ~title:"EXP-K job shop: makespan / max(C, D)"
    ~header:[ "shop"; "C"; "D"; "greedy"; "best-of-16"; "derandomized" ]
    rows;
  note "all columns should stay within a small factor of 1 (LMR/SSW shapes)."
