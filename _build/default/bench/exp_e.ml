(* EXP-E — Theorem 4.4: the disjoint-chains pipeline.

   Sweep (n, m, number of chains); report the pipeline's internals (LP
   optimum, rounding scale, post-delay congestion, core length, σ) and the
   measured ratio, next to the adaptive heuristic and baselines.
   Reproduced shape: the pipeline ratio stays within a polylog envelope
   (its absolute level reflects the σ replication and rounding constants);
   the serial baseline loses machine parallelism and the static plan
   degrades with heterogeneity. *)

open Bench_common
module Pipeline = Suu_algo.Pipeline

let run () =
  section "EXP-E: disjoint chains (Theorem 4.4)";
  let rows = ref [] in
  List.iter
    (fun (n, m, chains) ->
      let rng = Rng.create (master_seed + n + m) in
      let dag = Suu_dag.Gen.chains (Rng.split rng) ~n ~chains in
      let inst = uniform_instance (master_seed + (7 * n) + m) ~n ~m ~lo:0.1 ~hi:0.9 dag in
      let lb = lower_bound inst in
      let build = Suu_algo.Chains.build inst in
      let d = build.Pipeline.diagnostics in
      let pipeline_policy =
        Suu_core.Policy.of_oblivious "suu-c" build.Pipeline.schedule
      in
      let r policy = fst (mean_makespan inst policy) /. lb in
      rows :=
        [
          string_of_int n;
          string_of_int m;
          string_of_int chains;
          Printf.sprintf "%.1f" (List.hd d.Pipeline.lp_t_star);
          string_of_int d.Pipeline.scale;
          string_of_int d.Pipeline.congestion;
          string_of_int d.Pipeline.core_length;
          string_of_int d.Pipeline.sigma;
          Printf.sprintf "%.2f" (r pipeline_policy);
          Printf.sprintf "%.2f" (r (Suu_algo.Suu_i.policy inst));
          Printf.sprintf "%.2f" (r (Suu_algo.Baselines.serial_all_machines inst));
          Printf.sprintf "%.2f" (r (Suu_algo.Baselines.static_best_machine inst));
        ]
        :: !rows)
    [
      (12, 4, 2); (12, 4, 4); (24, 4, 4); (24, 8, 4); (40, 8, 5); (40, 8, 10);
    ];
  table ~title:"EXP-E chains pipeline"
    ~header:
      [
        "n"; "m"; "chains"; "t*"; "s"; "cong"; "core"; "sigma"; "suu-c";
        "adaptive"; "serial"; "static";
      ]
    (List.rev !rows);
  (* Machine sweep at fixed jobs/chains: the bound's log m factor. *)
  let n = 24 and chains = 4 in
  let dag = Suu_dag.Gen.chains (Rng.create (master_seed + 1)) ~n ~chains in
  let m_rows =
    List.map
      (fun m ->
        let inst =
          uniform_instance (master_seed + (13 * m)) ~n ~m ~lo:0.1 ~hi:0.9 dag
        in
        let lb = lower_bound inst in
        let build = Suu_algo.Chains.build inst in
        let policy =
          Suu_core.Policy.of_oblivious "suu-c" build.Pipeline.schedule
        in
        let mean, _ = mean_makespan inst policy in
        [
          string_of_int m;
          Printf.sprintf "%.2f" lb;
          string_of_int build.Pipeline.diagnostics.Pipeline.core_length;
          Printf.sprintf "%.2f" (mean /. lb);
        ])
      [ 2; 4; 8; 16; 32 ]
  in
  table ~title:"EXP-E.2 ratio vs m (n = 24, 4 chains)"
    ~header:[ "m"; "LB"; "core"; "suu-c ratio" ]
    m_rows;
  note "the Theorem 4.4 bound grows with log m; the measured column should";
  note "grow no faster (typically it falls as machine capacity rises)."
