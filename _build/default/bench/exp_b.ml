(* EXP-B — Theorem 3.3: SUU-I-ALG is an O(log n) approximation.

   Sweep n for independent jobs, report the ratio to the best lower bound,
   and fit ratio against log2 n. The reproduced shape: the ratio grows at
   most logarithmically (in practice the fitted slope is small and the
   ratio stays far below the proven constant). *)

open Bench_common

let run () =
  section "EXP-B: SUU-I-ALG scaling on independent jobs (Theorem 3.3)";
  let m = 8 in
  let points = ref [] in
  let rows =
    List.map
      (fun n ->
        let inst =
          uniform_instance (master_seed + n) ~n ~m ~lo:0.1 ~hi:0.9
            (Suu_dag.Dag.empty n)
        in
        let lb = lower_bound inst in
        let mean, ci = mean_makespan inst (Suu_algo.Suu_i.policy inst) in
        let ratio = mean /. lb in
        points := (log2 (Float.of_int n), ratio) :: !points;
        [
          string_of_int n;
          Printf.sprintf "%.2f" lb;
          Printf.sprintf "%.2f ±%.2f" mean ci;
          Printf.sprintf "%.2f" ratio;
        ])
      [ 8; 16; 32; 64; 128; 256; 512 ]
  in
  table ~title:"EXP-B ratio vs n (m = 8)"
    ~header:[ "n"; "LB"; "E[makespan]"; "ratio" ]
    rows;
  let slope, intercept = Suu_prob.Stats.linear_fit (Array.of_list !points) in
  let r2 =
    Suu_prob.Stats.r_squared (Array.of_list !points) (slope, intercept)
  in
  note "fit: ratio = %.3f * log2(n) + %.3f (r^2 = %.3f)" slope intercept r2;
  note "Theorem 3.3 predicts at most logarithmic growth; slope should be small."
