module Table = Suu_harness.Table
module Csv = Suu_harness.Csv
module Io = Suu_harness.Io
module Experiment = Suu_harness.Experiment
module Instance = Suu_core.Instance
module Rng = Suu_prob.Rng

let test_table_render () =
  let s =
    Table.render ~title:"demo" ~header:[ "name"; "value" ]
      [ [ "a"; "1.00" ]; [ "bb"; "10.50" ] ]
  in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 7 = "== demo");
  (* Right-aligned numbers: the 1.00 row pads on the left. *)
  Alcotest.(check bool) "aligned" true
    (String.split_on_char '\n' s
    |> List.exists (fun line -> line = "a      1.00"))

let test_table_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "digits" "3.1416" (Table.cell_f ~digits:4 3.14159);
  Alcotest.(check string) "int" "42" (Table.cell_i 42)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape "a\nb")

let test_csv_write_and_append () =
  let path = Filename.temp_file "suu_test" ".csv" in
  Csv.write ~path ~header:[ "x"; "y" ] [ [ "1"; "2" ] ];
  Csv.append_rows ~path [ [ "3"; "4" ] ];
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list string)) "contents" [ "x,y"; "1,2"; "3,4" ]
    (List.rev !lines)

let sample_instance seed =
  let rng = Rng.create seed in
  let n = 5 and m = 3 in
  let dag = Suu_dag.Gen.chains (Rng.split rng) ~n ~chains:2 in
  Instance.create
    ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.1 0.9)))
    ~dag

let instances_equal a b =
  Instance.n a = Instance.n b
  && Instance.m a = Instance.m b
  && Suu_dag.Dag.edges (Instance.dag a) = Suu_dag.Dag.edges (Instance.dag b)
  && List.for_all
       (fun i ->
         List.for_all
           (fun j ->
             Instance.prob a ~machine:i ~job:j = Instance.prob b ~machine:i ~job:j)
           (List.init (Instance.n a) (fun j -> j)))
       (List.init (Instance.m a) (fun i -> i))

let test_io_roundtrip_string () =
  let inst = sample_instance 1 in
  let again = Io.of_string (Io.to_string inst) in
  Alcotest.(check bool) "roundtrip" true (instances_equal inst again)

let test_io_roundtrip_file () =
  let inst = sample_instance 2 in
  let path = Filename.temp_file "suu_test" ".inst" in
  Io.save path inst;
  let again = Io.load path in
  Sys.remove path;
  Alcotest.(check bool) "roundtrip" true (instances_equal inst again)

let test_io_comments_ignored () =
  let inst = sample_instance 3 in
  let s = "# a comment\n" ^ Io.to_string inst ^ "# trailing\n" in
  Alcotest.(check bool) "roundtrip with comments" true
    (instances_equal inst (Io.of_string s))

let test_io_rejects_garbage () =
  Alcotest.check_raises "garbage" (Failure "Io.read: bad header") (fun () ->
      ignore (Io.of_string "hello world" : Instance.t))

let test_io_rejects_truncated () =
  let inst = sample_instance 4 in
  let s = Io.to_string inst in
  let truncated = String.sub s 0 (String.length s / 2) in
  match Io.of_string truncated with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "accepted truncated input"

let test_io_rejects_hostile_sizes () =
  (* Negative sizes must fail with [Failure] like any other parse error —
     not escape as [Invalid_argument] from [Array.init] (a live service
     reader treats only [Failure] as a malformed request). *)
  let bad s =
    match Io.of_string s with
    | exception Failure _ -> ()
    | exception e ->
        Alcotest.fail ("wrong exception: " ^ Printexc.to_string e)
    | _ -> Alcotest.fail ("accepted hostile input: " ^ s)
  in
  bad "suu 1\nn 0 m -1\nedges 0\nprobs";
  bad "suu 1\nn -1 m 1\nedges 0\nprobs";
  bad "suu 1\nn 0 m 0\nedges 0\nprobs";
  bad "suu 1\nn 1 m 1\nedges -1\nprobs\n0.5"

let test_experiment_measure () =
  let inst = sample_instance 5 in
  let m =
    Experiment.measure ~trials:50 ~seed:1 ~lower_bound:2. inst
      (Suu_algo.Suu_i.policy inst)
  in
  Alcotest.(check string) "name" "suu-i-alg" m.Experiment.policy_name;
  Alcotest.(check int) "trials" 50 m.Experiment.trials;
  Alcotest.(check bool) "ratio consistent" true
    (Float.abs (m.Experiment.ratio -. (m.Experiment.mean /. 2.)) < 1e-9)

let test_experiment_rows () =
  let inst = sample_instance 6 in
  let ms =
    Experiment.compare_policies ~trials:20 ~seed:2 inst ~lower_bound:1.
      [ Suu_algo.Suu_i.policy inst; Suu_algo.Baselines.greedy_rate inst ]
  in
  Alcotest.(check int) "two rows" 2 (List.length ms);
  List.iter
    (fun m ->
      Alcotest.(check int) "row width"
        (List.length Experiment.row_header)
        (List.length (Experiment.row m)))
    ms

let schedules_equal a b =
  a.Suu_core.Oblivious.m = b.Suu_core.Oblivious.m
  && a.Suu_core.Oblivious.prefix = b.Suu_core.Oblivious.prefix
  && a.Suu_core.Oblivious.cycle = b.Suu_core.Oblivious.cycle

let test_schedule_roundtrip () =
  let sched =
    Suu_core.Oblivious.create ~m:2
      ~cycle:[| [| 1; 0 |] |]
      [| [| 0; -1 |]; [| 1; 1 |] |]
  in
  let again = Io.schedule_of_string (Io.schedule_to_string sched) in
  Alcotest.(check bool) "roundtrip" true (schedules_equal sched again)

let test_schedule_file_roundtrip () =
  let inst = sample_instance 7 in
  let sched = Suu_algo.Suu_i_obl.schedule inst in
  let path = Filename.temp_file "suu_plan" ".plan" in
  Io.save_schedule path sched;
  let again = Io.load_schedule path in
  Sys.remove path;
  Alcotest.(check bool) "roundtrip" true (schedules_equal sched again)

let test_schedule_rejects_garbage () =
  Alcotest.check_raises "garbage" (Failure "Io.schedule: bad header")
    (fun () -> ignore (Io.schedule_of_string "nope" : Suu_core.Oblivious.t))

let test_schedule_rejects_truncated () =
  let sched = Suu_core.Oblivious.finite ~m:3 [| [| 0; 1; 2 |]; [| 2; 1; 0 |] |] in
  let s = Io.schedule_to_string sched in
  match Io.schedule_of_string (String.sub s 0 (String.length s - 8)) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "accepted truncated plan"

let test_schedule_rejects_hostile_sizes () =
  let bad s =
    match Io.schedule_of_string s with
    | exception Failure _ -> ()
    | exception e ->
        Alcotest.fail ("wrong exception: " ^ Printexc.to_string e)
    | _ -> Alcotest.fail ("accepted hostile plan: " ^ s)
  in
  bad "suu-plan 1\nm 1\nprefix -1\ncycle 0";
  bad "suu-plan 1\nm 1\nprefix 0\ncycle -1";
  bad "suu-plan 1\nm 0\nprefix 0\ncycle 0"

let test_gantt_of_trace () =
  let trace =
    [ (0, [| 0; -1 |], []); (1, [| 0; 1 |], [ 0 ]); (2, [| -1; 1 |], [ 1 ]) ]
  in
  let s = Suu_harness.Gantt.of_trace ~m:2 trace in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "machine 0 row" true (List.mem "m0  |00." lines);
  Alcotest.(check bool) "machine 1 row" true (List.mem "m1  |.11" lines);
  Alcotest.(check bool) "completion row" true (List.mem "done| **" lines)

let test_gantt_base36 () =
  let trace = [ (0, [| 10; 35; 36 |], []) ] in
  let s = Suu_harness.Gantt.of_trace ~m:3 trace in
  Alcotest.(check bool) "a" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "m0  |a"));
  Alcotest.(check bool) "z" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "m1  |z"));
  Alcotest.(check bool) "# overflow" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "m2  |#"))

let test_gantt_truncation () =
  let trace = List.init 50 (fun t -> (t, [| 0 |], [])) in
  let s = Suu_harness.Gantt.of_trace ~m:1 ~max_width:10 trace in
  Alcotest.(check bool) "ellipsis" true
    (String.split_on_char '\n' s
    |> List.exists (fun l -> l = "m0  |0000000000..."))

let test_gantt_of_oblivious () =
  let sched =
    Suu_core.Oblivious.create ~m:1 ~cycle:[| [| 1 |] |] [| [| 0 |] |]
  in
  let s = Suu_harness.Gantt.of_oblivious sched () in
  Alcotest.(check bool) "prefix+cycle" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "m0  |01"))

let prop_schedule_roundtrip =
  QCheck.Test.make ~name:"plan roundtrip on random schedules" ~count:50
    QCheck.(triple small_int (int_range 1 4) (int_range 0 6))
    (fun (seed, m, plen) ->
      let rng = Rng.create seed in
      let random_steps len =
        Array.init len (fun _ ->
            Array.init m (fun _ -> Rng.int rng 5 - 1))
      in
      let sched =
        Suu_core.Oblivious.create ~m
          ~cycle:(random_steps (Rng.int rng 4))
          (random_steps plen)
      in
      schedules_equal sched (Io.schedule_of_string (Io.schedule_to_string sched)))

let prop_io_roundtrip =
  QCheck.Test.make ~name:"io roundtrip on random instances" ~count:50
    QCheck.(triple small_int (int_range 1 15) (int_range 1 5))
    (fun (seed, n, m) ->
      let rng = Rng.create seed in
      let dag = Suu_dag.Gen.random_dag (Rng.split rng) ~n ~edge_prob:0.3 in
      let inst =
        Instance.create
          ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.01 1.)))
          ~dag
      in
      instances_equal inst (Io.of_string (Io.to_string inst)))

let () =
  Alcotest.run "harness"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escape" `Quick test_csv_escape;
          Alcotest.test_case "write/append" `Quick test_csv_write_and_append;
        ] );
      ( "io",
        [
          Alcotest.test_case "string roundtrip" `Quick test_io_roundtrip_string;
          Alcotest.test_case "file roundtrip" `Quick test_io_roundtrip_file;
          Alcotest.test_case "comments" `Quick test_io_comments_ignored;
          Alcotest.test_case "garbage rejected" `Quick test_io_rejects_garbage;
          Alcotest.test_case "truncated rejected" `Quick test_io_rejects_truncated;
          Alcotest.test_case "hostile sizes rejected" `Quick
            test_io_rejects_hostile_sizes;
        ] );
      ( "plans",
        [
          Alcotest.test_case "string roundtrip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick
            test_schedule_file_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick
            test_schedule_rejects_garbage;
          Alcotest.test_case "truncated rejected" `Quick
            test_schedule_rejects_truncated;
          Alcotest.test_case "hostile sizes rejected" `Quick
            test_schedule_rejects_hostile_sizes;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "of_trace" `Quick test_gantt_of_trace;
          Alcotest.test_case "base36" `Quick test_gantt_base36;
          Alcotest.test_case "truncation" `Quick test_gantt_truncation;
          Alcotest.test_case "of_oblivious" `Quick test_gantt_of_oblivious;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "measure" `Quick test_experiment_measure;
          Alcotest.test_case "rows" `Quick test_experiment_rows;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_io_roundtrip;
          QCheck_alcotest.to_alcotest prop_schedule_roundtrip;
        ] );
    ]
