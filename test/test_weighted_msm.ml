module Instance = Suu_core.Instance
module WM = Suu_algo.Weighted_msm
module Rng = Suu_prob.Rng

let all_jobs n = Array.make n true

let test_uniform_matches_msm () =
  let rng = Rng.create 3 in
  let inst =
    Instance.independent
      ~p:(Array.init 4 (fun _ -> Array.init 6 (fun _ -> Rng.uniform rng 0.1 0.9)))
  in
  let w = WM.weights inst WM.Uniform in
  let a = WM.assign inst ~weights:w ~jobs:(all_jobs 6) in
  let b = Suu_algo.Msm.assign inst ~jobs:(all_jobs 6) in
  Alcotest.(check (array int)) "identical to MSM-ALG" b a

let test_weights_uniform () =
  let inst = Instance.independent ~p:[| [| 0.5; 0.5 |] |] in
  Alcotest.(check (array (float 0.))) "ones" [| 1.; 1. |]
    (WM.weights inst WM.Uniform)

let test_weights_descendants () =
  (* 0 -> 1 -> 2, plus isolated 3. *)
  let dag = Suu_dag.Dag.create ~n:4 [ (0, 1); (1, 2) ] in
  let inst = Instance.create ~p:[| Array.make 4 0.5 |] ~dag in
  Alcotest.(check (array (float 0.))) "descendant counts" [| 3.; 2.; 1.; 1. |]
    (WM.weights inst WM.Descendants)

let test_weights_critical_path () =
  let dag = Suu_dag.Dag.create ~n:4 [ (0, 1); (0, 2); (2, 3) ] in
  let inst = Instance.create ~p:[| Array.make 4 0.5 |] ~dag in
  Alcotest.(check (array (float 0.))) "remaining depth" [| 3.; 1.; 2.; 1. |]
    (WM.weights inst WM.Critical_path)

let test_bias_changes_choice () =
  (* One machine; job 0 heads a long chain with slightly lower p; job 3 is
     isolated with higher p. Critical-path weighting must pick job 0. *)
  let dag = Suu_dag.Dag.create ~n:4 [ (0, 1); (1, 2) ] in
  let inst = Instance.create ~p:[| [| 0.5; 0.5; 0.5; 0.6 |] |] ~dag in
  let jobs = [| true; false; false; true |] in
  let uniform = WM.assign inst ~weights:(WM.weights inst WM.Uniform) ~jobs in
  let critical =
    WM.assign inst ~weights:(WM.weights inst WM.Critical_path) ~jobs
  in
  Alcotest.(check (array int)) "uniform takes highest p" [| 3 |] uniform;
  Alcotest.(check (array int)) "critical path takes the chain head" [| 0 |]
    critical

let test_tie_break_repeatable () =
  (* Maximal ties: every probability and every weight equal. The winner
     must come from the stable scan order, never from anything tied to
     physical identity — so repeated calls and a rebuilt instance (fresh
     sorted_pairs) agree exactly. *)
  let p = Array.make_matrix 3 5 0.5 in
  let dag = Suu_dag.Dag.create ~n:5 [ (0, 3) ] in
  let jobs = all_jobs 5 in
  let w = Array.make 5 1.0 in
  let inst = Instance.create ~p ~dag in
  let a = WM.assign inst ~weights:w ~jobs in
  let b = WM.assign inst ~weights:w ~jobs in
  Alcotest.(check (array int)) "repeated call" a b;
  let c = WM.assign (Instance.create ~p ~dag) ~weights:w ~jobs in
  Alcotest.(check (array int)) "rebuilt instance" a c

let test_tie_break_weight_scaling () =
  (* Scaling every weight by the same constant preserves the p·w order,
     ties included. Values are chosen so the products are exact in
     binary floating point (0.25/0.5/1.0 times 2.5). *)
  let rng = Rng.create 17 in
  let vals = [| 0.25; 0.5; 0.5; 1.0 |] in
  for _ = 1 to 25 do
    let m = 1 + Rng.int rng 4 and n = 1 + Rng.int rng 8 in
    let p =
      Array.init m (fun _ -> Array.init n (fun _ -> vals.(Rng.int rng 4)))
    in
    let inst = Instance.independent ~p in
    let jobs = Array.init n (fun _ -> Rng.int rng 4 > 0) in
    let a = WM.assign inst ~weights:(Array.make n 1.0) ~jobs in
    let b = WM.assign inst ~weights:(Array.make n 2.5) ~jobs in
    Alcotest.(check (array int)) "uniform = scaled uniform" a b;
    let c = WM.assign (Instance.independent ~p) ~weights:(Array.make n 2.5) ~jobs in
    Alcotest.(check (array int)) "scaled, rebuilt sorted_pairs" b c
  done

let test_policy_completes () =
  let rng = Rng.create 7 in
  let dag = Suu_dag.Gen.out_forest (Rng.split rng) ~n:12 ~trees:2 in
  let inst =
    Instance.create
      ~p:(Array.init 3 (fun _ -> Array.init 12 (fun _ -> Rng.uniform rng 0.2 0.9)))
      ~dag
  in
  List.iter
    (fun weighting ->
      let o =
        Suu_sim.Engine.run (Rng.split rng) inst (WM.policy ~weighting inst)
      in
      Alcotest.(check bool) "completed" true o.Suu_sim.Engine.completed)
    [ WM.Uniform; WM.Descendants; WM.Critical_path ]

let test_policy_names () =
  let inst = Instance.independent ~p:[| [| 0.5 |] |] in
  Alcotest.(check string) "cp name" "msm-critical-path"
    (WM.policy inst).Suu_core.Policy.name;
  Alcotest.(check string) "desc name" "msm-descendants"
    (WM.policy ~weighting:WM.Descendants inst).Suu_core.Policy.name

let prop_mass_cap_respected =
  QCheck.Test.make ~name:"weighted greedy respects the mass cap" ~count:150
    QCheck.(triple small_int (int_range 1 5) (int_range 1 8))
    (fun (seed, m, n) ->
      let rng = Rng.create seed in
      let dag = Suu_dag.Gen.random_dag (Rng.split rng) ~n ~edge_prob:0.2 in
      let inst =
        Instance.create
          ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.05 1.)))
          ~dag
      in
      let w = WM.weights inst WM.Critical_path in
      let a = WM.assign inst ~weights:w ~jobs:(Array.make n true) in
      let mass = Suu_core.Assignment.mass_added inst a in
      Array.for_all (fun mj -> mj <= 1. +. 1e-9) mass)

let prop_critical_path_no_worse_on_deep_dags =
  (* Statistical check: on chain-heavy dags the critical-path weighting
     should beat uniform on average (over seeds); allow slack per case. *)
  QCheck.Test.make ~name:"critical-path weighting sane on chains" ~count:10
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 12 in
      let dag = Suu_dag.Gen.chains (Rng.split rng) ~n ~chains:3 in
      let inst =
        Instance.create
          ~p:(Array.init 3 (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.2 0.9)))
          ~dag
      in
      let mean policy =
        (Suu_sim.Engine.estimate_makespan ~trials:150 (Rng.create 11) inst
           policy)
          .Suu_sim.Engine.stats.Suu_prob.Stats.mean
      in
      mean (WM.policy inst) <= 1.5 *. mean (WM.policy ~weighting:WM.Uniform inst))

let () =
  Alcotest.run "weighted_msm"
    [
      ( "weights",
        [
          Alcotest.test_case "uniform = MSM" `Quick test_uniform_matches_msm;
          Alcotest.test_case "uniform weights" `Quick test_weights_uniform;
          Alcotest.test_case "descendants" `Quick test_weights_descendants;
          Alcotest.test_case "critical path" `Quick test_weights_critical_path;
          Alcotest.test_case "bias changes choice" `Quick test_bias_changes_choice;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "tie-break repeatable" `Quick
            test_tie_break_repeatable;
          Alcotest.test_case "tie-break under weight scaling" `Quick
            test_tie_break_weight_scaling;
        ] );
      ( "policies",
        [
          Alcotest.test_case "completes" `Quick test_policy_completes;
          Alcotest.test_case "names" `Quick test_policy_names;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_mass_cap_respected;
          QCheck_alcotest.to_alcotest prop_critical_path_no_worse_on_deep_dags;
        ] );
    ]
