module Churn = Suu_dyn.Churn
module Instance = Suu_core.Instance
module Policy = Suu_core.Policy
module Oblivious = Suu_core.Oblivious
module Engine = Suu_sim.Engine
module Rng = Suu_prob.Rng

(* --- timeline model ---------------------------------------------------- *)

let test_create_merges () =
  (* Overlapping and adjacent intervals of one machine merge into one. *)
  let t = Churn.create ~m:2 [ (0, 0, 4); (0, 3, 6); (0, 6, 8) ] in
  for s = 0 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "machine 0 down at %d" s)
      false
      (Churn.available t ~machine:0 ~step:s)
  done;
  Alcotest.(check bool) "machine 0 back up" true
    (Churn.available t ~machine:0 ~step:8);
  Alcotest.(check bool) "machine 1 untouched" true
    (Churn.available t ~machine:1 ~step:3);
  Alcotest.(check int) "settle" 8 (Churn.settle t);
  Alcotest.(check int) "down steps" 8 (Churn.down_steps t ~upto:10);
  Alcotest.(check bool) "not none" false (Churn.is_none t)

let test_dead_absorbs () =
  (* Intervals at or past the death step are absorbed by it. *)
  let t = Churn.create ~m:1 ~dead:[ (0, 5) ] [ (0, 3, 10) ] in
  Alcotest.(check bool) "up before the crash" true
    (Churn.available t ~machine:0 ~step:2);
  Alcotest.(check bool) "down in the interval" false
    (Churn.available t ~machine:0 ~step:4);
  Alcotest.(check bool) "dead stays down" false
    (Churn.available t ~machine:0 ~step:1000);
  Alcotest.(check bool) "dead" true (Churn.dead t 0);
  Alcotest.(check int) "settle at the death step" 5 (Churn.settle t);
  (* [3,5) finite downtime plus [5,8) permanent = 5 machine-steps. *)
  Alcotest.(check int) "down steps count the death tail" 5
    (Churn.down_steps t ~upto:8)

let check_invalid name thunk =
  match thunk () with
  | (_ : Churn.t) -> Alcotest.failf "%s: expected Churn.Invalid" name
  | exception Churn.Invalid _ -> ()

let test_create_errors () =
  check_invalid "m = 0" (fun () -> Churn.create ~m:0 []);
  check_invalid "machine out of range" (fun () ->
      Churn.create ~m:2 [ (2, 0, 1) ]);
  check_invalid "negative start" (fun () -> Churn.create ~m:2 [ (0, -1, 3) ]);
  check_invalid "empty interval" (fun () -> Churn.create ~m:2 [ (0, 4, 4) ]);
  check_invalid "negative death step" (fun () ->
      Churn.create ~m:2 ~dead:[ (1, -1) ] []);
  (* Every error renders to a non-empty message. *)
  (try ignore (Churn.create ~m:2 [ (0, 4, 2) ] : Churn.t)
   with Churn.Invalid e ->
     Alcotest.(check bool) "message non-empty" true
       (String.length (Churn.error_to_string e) > 0))

let test_none () =
  let t = Churn.none ~m:3 in
  Alcotest.(check bool) "is none" true (Churn.is_none t);
  Alcotest.(check int) "m" 3 (Churn.m t);
  Alcotest.(check int) "settles immediately" 0 (Churn.settle t);
  Alcotest.(check int) "no downtime" 0 (Churn.down_steps t ~upto:1000);
  Alcotest.(check bool) "everything up" true
    (Churn.available t ~machine:2 ~step:17)

let test_union () =
  let a = Churn.create ~m:2 [ (0, 0, 3) ] in
  let b = Churn.create ~m:2 ~dead:[ (1, 4) ] [ (0, 2, 5) ] in
  let u = Churn.union a b in
  (* Down wherever either is down. *)
  for s = 0 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "machine 0 down at %d" s)
      false
      (Churn.available u ~machine:0 ~step:s)
  done;
  Alcotest.(check bool) "machine 0 recovers" true
    (Churn.available u ~machine:0 ~step:5);
  Alcotest.(check bool) "machine 1 death survives the union" true
    (Churn.dead u 1);
  (* The union subsumes both arguments: never less downtime. *)
  let upto = 64 in
  Alcotest.(check bool) "subsumes a" true
    (Churn.down_steps u ~upto >= Churn.down_steps a ~upto);
  Alcotest.(check bool) "subsumes b" true
    (Churn.down_steps u ~upto >= Churn.down_steps b ~upto);
  check_invalid "machine-count mismatch" (fun () ->
      Churn.union a (Churn.none ~m:3))

(* --- seeded generation ------------------------------------------------- *)

let test_generate_deterministic () =
  let params = { Churn.default_params with seed = 7; rate = 0.2; perm = 0.1 } in
  let a = Churn.generate ~m:4 params in
  let b = Churn.generate ~m:4 params in
  Alcotest.(check int) "same downtime" (Churn.down_steps a ~upto:512)
    (Churn.down_steps b ~upto:512);
  for i = 0 to 3 do
    for s = 0 to 300 do
      if Churn.available a ~machine:i ~step:s
         <> Churn.available b ~machine:i ~step:s
      then Alcotest.failf "timelines differ at machine %d step %d" i s
    done
  done;
  (* Machine streams depend on (seed, machine) alone: growing m is a
     pure extension, existing machines keep their timelines. *)
  let wide = Churn.generate ~m:6 params in
  for i = 0 to 3 do
    for s = 0 to 300 do
      if Churn.available a ~machine:i ~step:s
         <> Churn.available wide ~machine:i ~step:s
      then Alcotest.failf "growing m reshuffled machine %d at step %d" i s
    done
  done

let test_generate_edges () =
  Alcotest.(check bool) "rate 0 is none" true
    (Churn.is_none (Churn.generate ~m:3 { Churn.default_params with rate = 0. }));
  Alcotest.(check bool) "steps 0 is none" true
    (Churn.is_none
       (Churn.generate ~m:3 { Churn.default_params with rate = 0.5; steps = 0 }));
  let bad name params =
    match Churn.generate ~m:2 params with
    | (_ : Churn.t) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  bad "rate > 1" { Churn.default_params with rate = 1.5 };
  bad "negative perm" { Churn.default_params with perm = -0.1 };
  bad "repair 0" { Churn.default_params with repair = 0 };
  bad "negative steps" { Churn.default_params with steps = -1 }

let test_spec_roundtrip () =
  let roundtrip p =
    match Churn.params_of_spec (Churn.spec_of_params p) with
    | Ok p' ->
        Alcotest.(check bool)
          (Printf.sprintf "roundtrip %s" (Churn.spec_of_params p))
          true (p = p')
    | Error e -> Alcotest.failf "roundtrip failed: %s" e
  in
  roundtrip Churn.default_params;
  roundtrip { Churn.seed = 42; rate = 0.125; repair = 3; perm = 0.01; steps = 64 };
  (* Fields parse in any order; omitted fields take defaults. *)
  (match Churn.params_of_spec "rate=0.3,seed=9" with
  | Ok p ->
      Alcotest.(check int) "seed" 9 p.Churn.seed;
      Alcotest.(check (float 0.)) "rate" 0.3 p.Churn.rate;
      Alcotest.(check int) "repair defaulted" Churn.default_params.Churn.repair
        p.Churn.repair
  | Error e -> Alcotest.failf "out-of-order spec rejected: %s" e);
  (match Churn.params_of_spec "" with
  | Ok p -> Alcotest.(check bool) "empty spec is defaults" true
      (p = Churn.default_params)
  | Error e -> Alcotest.failf "empty spec rejected: %s" e);
  let rejected name s =
    match Churn.params_of_spec s with
    | Ok _ -> Alcotest.failf "%s: expected rejection of %S" name s
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: message non-empty" name)
          true
          (String.length e > 0)
  in
  rejected "duplicate key" "rate=0.1,rate=0.2";
  rejected "unknown key" "rate=0.1,mtbf=9";
  rejected "missing =" "rate";
  rejected "bad integer" "seed=abc";
  rejected "rate out of range" "rate=1.5";
  rejected "repair < 1" "repair=0"

(* --- mask and the engine seam ------------------------------------------ *)

let inst3 =
  Instance.independent
    ~p:[| [| 0.5; 0.4; 0.6 |]; [| 0.3; 0.7; 0.2 |] |]

let sched3 =
  (* 3-step prefix then a 2-step cycle, both machines always busy. *)
  Oblivious.create ~m:2
    ~cycle:[| [| 2; 1 |]; [| 1; 2 |] |]
    [| [| 0; 1 |]; [| 1; 0 |]; [| 2; 0 |] |]

let churn3 = Churn.create ~m:2 ~dead:[ (1, 9) ] [ (0, 1, 4) ]

let test_mask_shape () =
  let masked = Churn.mask churn3 sched3 in
  (* The masked prefix covers the settle point (9) on a prefix+cycle
     boundary: 3 + 3 whole cycles of length 2 = 9. *)
  Alcotest.(check bool) "prefix covers settle" true
    (Oblivious.prefix_length masked >= Churn.settle churn3);
  Alcotest.(check int) "cycle length preserved" 2
    (Oblivious.cycle_length masked);
  (* Down steps are idled, up steps keep their assignment. *)
  for s = 0 to 12 do
    let orig = Oblivious.step sched3 s and eff = Oblivious.step masked s in
    for i = 0 to 1 do
      let expect =
        if Churn.available churn3 ~machine:i ~step:s then orig.(i)
        else Suu_core.Assignment.idle_job
      in
      Alcotest.(check int)
        (Printf.sprintf "cell (%d,%d)" i s)
        expect eff.(i)
    done
  done;
  (* Masking the all-up timeline is the identity. *)
  Alcotest.(check bool) "none masks to itself" true
    (Churn.mask (Churn.none ~m:2) sched3 == sched3);
  check_invalid "mask machine mismatch" (fun () ->
      ignore (Churn.mask (Churn.none ~m:3) sched3 : Oblivious.t);
      Churn.none ~m:1)

let naive_policy name sched =
  (* Untagged: forces the scalar stepper, no leapfrog/lanes shortcut. *)
  Policy.stateless name (fun st -> Oblivious.step sched st.Policy.step)

let test_gated_equals_masked_bitwise () =
  (* Gated stepper on the original schedule is draw-for-draw identical to
     the ungated stepper on the masked schedule: same seed, identical
     sample vectors. *)
  let masked = Churn.mask churn3 sched3 in
  let gated =
    Engine.estimate_makespan_seeded ~availability:churn3 ~trials:200 ~seed:77
      inst3
      (naive_policy "orig" sched3)
  in
  let plain =
    Engine.estimate_makespan_seeded ~trials:200 ~seed:77 inst3
      (naive_policy "masked" masked)
  in
  Alcotest.(check (array (float 0.))) "bit-identical samples"
    plain.Engine.samples gated.Engine.samples;
  Alcotest.(check int) "same incomplete count" plain.Engine.incomplete
    gated.Engine.incomplete

let test_tagged_oblivious_under_churn () =
  (* For a tagged oblivious policy the estimator serves the masked
     schedule on the fast path — identical to estimating the masked
     schedule directly. *)
  let masked = Churn.mask churn3 sched3 in
  let gated =
    Engine.estimate_makespan_seeded ~availability:churn3 ~trials:300 ~seed:5
      inst3
      (Policy.of_oblivious "orig" sched3)
  in
  let plain =
    Engine.estimate_makespan_seeded ~trials:300 ~seed:5 inst3
      (Policy.of_oblivious "masked" masked)
  in
  Alcotest.(check (array (float 0.))) "fast path serves the mask"
    plain.Engine.samples gated.Engine.samples

let test_scalar_vs_lanes_agreement () =
  (* The vectorized estimator under churn agrees with the seeded scalar
     one in distribution: means within combined 95% CIs. *)
  let policy = Policy.of_oblivious "obl" sched3 in
  let scalar =
    Engine.estimate_makespan_seeded ~availability:churn3 ~trials:4000 ~seed:3
      inst3 policy
  in
  let lanes =
    Engine.estimate_makespan ~availability:churn3 ~trials:4000 (Rng.create 4)
      inst3 policy
  in
  let mean e = e.Engine.stats.Suu_prob.Stats.mean in
  let ci e = e.Engine.stats.Suu_prob.Stats.ci95 in
  Alcotest.(check bool) "means agree" true
    (Float.abs (mean scalar -. mean lanes) <= ci scalar +. ci lanes +. 1e-9)

let test_engine_mismatch () =
  Alcotest.check_raises "machine-count mismatch"
    (Invalid_argument "Engine: availability machine count mismatch")
    (fun () ->
      ignore
        (Engine.run ~availability:(Churn.none ~m:5) (Rng.create 1) inst3
           (Policy.of_oblivious "s" sched3)
          : Engine.outcome))

let test_none_availability_is_noop () =
  (* Passing the all-up timeline is indistinguishable from passing
     nothing — same seed, same samples. *)
  let policy = naive_policy "orig" sched3 in
  let a =
    Engine.estimate_makespan_seeded ~availability:(Churn.none ~m:2) ~trials:100
      ~seed:11 inst3 policy
  in
  let b = Engine.estimate_makespan_seeded ~trials:100 ~seed:11 inst3 policy in
  Alcotest.(check (array (float 0.))) "identical" b.Engine.samples
    a.Engine.samples

let test_permanent_death_can_strand () =
  (* A job only one machine can serve never finishes once that machine
     dies before serving it: the run hits the cap. *)
  let inst = Instance.independent ~p:[| [| 0.9; 0. |]; [| 0.; 0.9 |] |] in
  let churn = Churn.create ~m:2 ~dead:[ (0, 0) ] [] in
  let sched = Oblivious.create ~m:2 ~cycle:[| [| 0; 1 |] |] [||] in
  let o =
    Engine.run ~max_steps:200 ~availability:churn (Rng.create 8) inst
      (Policy.of_oblivious "s" sched)
  in
  Alcotest.(check bool) "stranded" false o.Engine.completed

let () =
  Alcotest.run "dyn"
    [
      ( "timeline",
        [
          Alcotest.test_case "interval merge" `Quick test_create_merges;
          Alcotest.test_case "death absorbs intervals" `Quick test_dead_absorbs;
          Alcotest.test_case "create errors" `Quick test_create_errors;
          Alcotest.test_case "none" `Quick test_none;
          Alcotest.test_case "union" `Quick test_union;
        ] );
      ( "generation",
        [
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "edges" `Quick test_generate_edges;
          Alcotest.test_case "spec roundtrip" `Quick test_spec_roundtrip;
        ] );
      ( "engine",
        [
          Alcotest.test_case "mask shape" `Quick test_mask_shape;
          Alcotest.test_case "gated = masked (bitwise)" `Quick
            test_gated_equals_masked_bitwise;
          Alcotest.test_case "tagged fast path" `Quick
            test_tagged_oblivious_under_churn;
          Alcotest.test_case "scalar vs lanes" `Quick
            test_scalar_vs_lanes_agreement;
          Alcotest.test_case "machine-count gate" `Quick test_engine_mismatch;
          Alcotest.test_case "none is a no-op" `Quick
            test_none_availability_is_noop;
          Alcotest.test_case "permanent death strands" `Quick
            test_permanent_death_can_strand;
        ] );
    ]
