The batch scheduling service: one JSON request per line on stdin, one
response per line on stdout, in request order. The workload below
exercises the whole lifecycle: an info request, a solve, the same solve
repeated (a result-cache hit), the same solve again as "auto" (which
executes as adaptive and must alias its cache entry), the same instance
under the improved family (a different computation: it must NOT alias
the adaptive entry, and its own repeat must hit), an unknown algorithm
name (structured error), a malformed line
(structured error, the service keeps going), a hostile instance with a
negative machine count (a structured error too — it must not escape the
parser and kill the reader), a solve whose deadline is already exhausted
(timeout error), an exact solve, and a final stats request.

  $ cat > requests <<'EOF'
  > {"op":"info","id":"i","instance":"suu 1\nn 2 m 2\nedges 1\n0 1\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"solve","id":"s1","algo":"adaptive","trials":64,"seed":3,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"solve","id":"s2","algo":"adaptive","trials":64,"seed":3,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"solve","id":"s3","algo":"auto","trials":64,"seed":3,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"solve","id":"s4","algo":"improved","trials":64,"seed":3,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"solve","id":"s5","algo":"improved","trials":64,"seed":3,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"solve","id":"badalgo","algo":"nope","trials":64,"seed":3,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > this is not json
  > {"op":"info","id":"evil","instance":"suu 1\nn 0 m -1\nedges 0\nprobs"}
  > {"op":"solve","id":"late","deadline_ms":0,"trials":64,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"exact","id":"x","instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"stats","id":"z"}
  > EOF

One worker keeps the run fully deterministic (answers are reproducible at
any worker count — per-trial seeding — but stats/latency timing is not).
The repeated solve s2 comes back "cached":true with result fields
byte-identical to s1, and the "auto" solve s3 hits the same entry.

  $ suu serve --workers 1 --quiet < requests > responses
  $ head -11 responses
  {"id":"i","status":"ok","class":"chains","jobs":2,"machines":2,"edges":1,"width":1,"critical_path":2,"bounds":{"rate":1,"capacity":1,"critical_path":2,"best":2}}
  {"id":"s1","status":"ok","cached":false,"algo":"suu-i-alg","trials":64,"mean":1.296875,"ci95":0.120971365126,"p95":2,"incomplete":0}
  {"id":"s2","status":"ok","cached":true,"algo":"suu-i-alg","trials":64,"mean":1.296875,"ci95":0.120971365126,"p95":2,"incomplete":0}
  {"id":"s3","status":"ok","cached":true,"algo":"suu-i-alg","trials":64,"mean":1.296875,"ci95":0.120971365126,"p95":2,"incomplete":0}
  {"id":"s4","status":"ok","cached":false,"algo":"suu-imp","trials":64,"mean":1.640625,"ci95":0.215483246481,"p95":3,"incomplete":0}
  {"id":"s5","status":"ok","cached":true,"algo":"suu-imp","trials":64,"mean":1.640625,"ci95":0.215483246481,"p95":3,"incomplete":0}
  {"id":"badalgo","status":"error","error":"algo: unknown algorithm \"nope\""}
  {"id":null,"status":"error","error":"parse: expected true at offset 0"}
  {"id":"evil","status":"error","error":"instance: Io.read: bad machine count"}
  {"id":"late","status":"timeout","error":"deadline exceeded","deadline_ms":0}
  {"id":"x","status":"ok","cached":false,"topt":1.31133304386,"states":3}

The final stats response accounts for every request above: 11 completed
(7 ok, 3 errors, 1 timeout — the stats request itself is not counted),
with three cache hits (s2, s3, s5) and three misses (s1, s4, x). Queue
and latency fields are timing-dependent, so only the counters are
pinned here.

  $ sed -n '12p' responses | grep -o '"requests":[0-9]*\|"ok":[0-9]*\|"errors":[0-9]*\|"timeouts":[0-9]*\|"rejected":[0-9]*\|"cache_hits":[0-9]*\|"cache_misses":[0-9]*'
  "requests":11
  "ok":7
  "errors":3
  "timeouts":1
  "rejected":0
  "cache_hits":3
  "cache_misses":3

Without --quiet the service dumps its metrics on shutdown (stderr). A
session that never completes a request has no latency line, so the dump
is deterministic:

  $ echo '{"op":"nope","id":"e"}' | suu serve --workers 1
  {"id":"e","status":"error","error":"op: unknown operation \"nope\""}
  served 1 requests (ok 0, errors 1, timeouts 0, rejected 0)
  cache: 0 hits, 0 misses, 0 entries
  queue depth high-water mark: 0

A deadline can also expire mid-execution: the inter-trial poll catches a
request whose trial budget is far larger than its time budget, so one
worker cannot be wedged by a pathological request.

  $ suu serve --workers 1 --quiet <<'EOF'
  > {"op":"solve","id":"slow","deadline_ms":20,"trials":10000000,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > EOF
  {"id":"slow","status":"timeout","error":"deadline exceeded","deadline_ms":20}

Load shedding, end to end: a capacity-1 queue behind one worker that is
busy with a long first request. Every request is still answered exactly
once — the shed ones with a structured "queue_full" error.

  $ for k in 0 1 2 3 4 5 6 7; do
  >   printf '{"op":"solve","id":"f%d","trials":200000,"seed":%d,"instance":"suu 1\\nn 2 m 2\\nedges 0\\nprobs\\n0.9 0.5\\n0.4 0.8"}\n' $k $k
  > done | suu serve --workers 1 --queue 1 --cache 0 --quiet > flood.out
  $ wc -l < flood.out
  8
  $ test $(grep -c '"reason":"queue_full"' flood.out) -ge 1 && echo shed
  shed

Fault injection is deterministic: the same spec crashes the same
requests. With crash=1 every request kills its worker mid-flight; the
supervisor answers each with a structured "worker_crash" error (the
ordered stream has no holes) and replaces the worker while the restart
budget lasts. The shutdown dump accounts for the chaos; its queue/cache
lines are timing-dependent, so only the fault counters are pinned.

  $ cat > crashy <<'EOF'
  > {"op":"solve","id":"a","trials":64,"seed":3,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"solve","id":"b","trials":64,"seed":4,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > EOF
  $ suu serve --workers 1 --fault-spec 'crash=1' --max-restarts 2 < crashy 2> dump
  {"id":"a","status":"error","error":"worker crashed: injected crash","reason":"worker_crash"}
  {"id":"b","status":"error","error":"worker crashed: injected crash","reason":"worker_crash"}
  $ grep -E '^(served|faults)' dump
  served 2 requests (ok 0, errors 2, timeouts 0, rejected 0)
  faults: 2 worker crashes, 2 restarts, 0 retries, 0 degraded

With the restart budget exhausted the pool dies for good; requests still
in the queue are answered "unavailable" rather than dropped.

  $ suu serve --workers 1 --fault-spec 'crash=1' --max-restarts 0 --quiet < crashy
  {"id":"a","status":"error","error":"worker crashed: injected crash","reason":"worker_crash"}
  {"id":"b","status":"error","error":"service unavailable (worker pool exhausted)","reason":"unavailable"}

Transient failures are retried with capped exponential backoff; at
rate 1 every attempt fails and the request exhausts its budget.

  $ head -1 crashy | suu serve --workers 1 --fault-spec 'transient=1' --retries 1 --quiet
  {"id":"a","status":"error","error":"transient failure (injected) after 2 attempts","reason":"transient"}

Overload degradation: watermark 0 makes every Monte-Carlo request run
degraded — its trial count capped (default 25), the response marked
"degraded":true. Answers remain reproducible: the mean is exactly what a
direct 25-trial request would compute.

  $ head -1 crashy | suu serve --workers 1 --degrade-watermark 0 --quiet
  {"id":"a","status":"ok","degraded":true,"cached":false,"algo":"suu-i-alg","trials":25,"mean":1.28,"ci95":0.179636967242,"p95":2,"incomplete":0}

A malformed fault spec is rejected up front, not at the first injection.

  $ suu serve --fault-spec 'crash=2' < /dev/null
  suu serve: fault-spec: crash: rate 2 not in [0,1]
  [2]
