(* Differential tests pinning the improved family (suu-imp) against the
   Lin–Rajaraman family, shape by shape: on the same seeded instances
   the new schedule must validate, cover every job, stay within a
   pinned envelope of the lower bound, and never lose to the old
   oblivious schedules by more than a pinned factor. Everything is
   seeded, so a regression in either family trips deterministically. *)

module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious
module Policy = Suu_core.Policy
module Mass = Suu_core.Mass
module Engine = Suu_sim.Engine
module Improved = Suu_algo.Improved
module Phased = Suu_algo.Phased
module Rng = Suu_prob.Rng

let shapes =
  [
    ("independent", fun _rng n -> Suu_dag.Gen.independent n);
    ("chains", fun rng n -> Suu_dag.Gen.chains rng ~n ~chains:4);
    ("out-forest", fun rng n -> Suu_dag.Gen.out_forest rng ~n ~trees:3);
    ("polytree", fun rng n -> Suu_dag.Gen.polytree_forest rng ~n ~trees:3);
    ( "layered",
      fun rng n -> Suu_dag.Gen.layered rng ~n ~layers:4 ~edge_prob:0.3 );
    ("general", fun rng n -> Suu_dag.Gen.random_dag rng ~n ~edge_prob:0.15);
  ]

let instance_for shape gen =
  let n = 14 and m = 4 in
  let dag = gen (Rng.create (1000 + Hashtbl.hash shape)) n in
  let rng = Rng.create (2000 + Hashtbl.hash shape) in
  Instance.create
    ~p:(Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.15 0.85)))
    ~dag

let mean inst sched name =
  let e =
    Engine.estimate_makespan_seeded ~trials:200 ~seed:77 inst
      (Policy.of_oblivious name sched)
  in
  Alcotest.(check int)
    (name ^ ": no truncated trials") 0 e.Engine.incomplete;
  e.Engine.stats.Suu_prob.Stats.mean

let for_each_shape f () =
  List.iter (fun (shape, gen) -> f shape (instance_for shape gen)) shapes

(* Structure: valid on every shape, every job covered to the phase mass
   target by the prefix alone, every job still gaining mass over each
   tail repetition, and the construction is a pure function of the
   instance. *)
let test_structure shape inst =
  let sched = Improved.schedule inst in
  (match Oblivious.validate inst sched with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: invalid schedule: %s" shape msg);
  let prefix_len = Oblivious.prefix_length sched in
  let cycle_len = Oblivious.cycle_length sched in
  Alcotest.(check bool) (shape ^ ": has an infinite tail") true (cycle_len > 0);
  let target = Phased.tuned_params.Phased.mass_target in
  Array.iteri
    (fun j mj ->
      if mj < target -. 1e-9 then
        Alcotest.failf "%s: job %d reaches %.4f < target %.4f over the prefix"
          shape j mj target)
    (Mass.of_oblivious_capped inst sched ~steps:prefix_len);
  let at = Mass.of_oblivious inst sched ~steps:prefix_len in
  let later = Mass.of_oblivious inst sched ~steps:(prefix_len + cycle_len) in
  Array.iteri
    (fun j v ->
      if later.(j) <= v +. 1e-12 then
        Alcotest.failf "%s: job %d gains no mass over one tail cycle" shape j)
    at;
  let again = Improved.schedule inst in
  Alcotest.(check bool)
    (shape ^ ": deterministic construction") true
    (sched.Oblivious.prefix = again.Oblivious.prefix
    && sched.Oblivious.cycle = again.Oblivious.cycle)

(* Quality, differentially: within the pinned envelope of the LP-free
   lower bound (mirroring the improved-ratio conformance property), and
   never worse than twice the better of the two old oblivious schedules
   on the same seeded trials. *)
let test_quality shape inst =
  let lb = Suu_algo.Bounds.best (Suu_algo.Bounds.compute ~with_lp:false inst) in
  let imp = mean inst (Improved.schedule inst) "suu-imp" in
  let n = Instance.n inst in
  let envelope =
    4. *. (1. +. (Float.log (Float.of_int (max 2 n)) /. Float.log 2.)) *. lb
  in
  if imp > envelope then
    Alcotest.failf "%s: suu-imp mean %.2f exceeds envelope %.2f (LB %.2f)"
      shape imp envelope lb;
  let old_obl = mean inst (Suu_algo.Suu_i_obl.schedule inst) "suu-i-obl" in
  let old_column =
    let pol = Suu_algo.Solver.solve ~kind:`Oblivious ~allow_heuristic:true inst in
    let e = Engine.estimate_makespan_seeded ~trials:200 ~seed:77 inst pol in
    e.Engine.stats.Suu_prob.Stats.mean
  in
  let best_old = Float.min old_obl old_column in
  if imp > 2. *. best_old then
    Alcotest.failf
      "%s: suu-imp mean %.2f more than doubles the old family's %.2f" shape
      imp best_old

(* The solver and service agree on the family's identity. *)
let test_dispatch () =
  List.iter
    (fun (shape, gen) ->
      let inst = instance_for shape gen in
      Alcotest.(check string)
        (shape ^ ": solver name") "suu-imp"
        (Suu_algo.Solver.algorithm_name ~kind:`Improved inst);
      let pol = Suu_algo.Solver.solve ~kind:`Improved inst in
      Alcotest.(check string)
        (shape ^ ": policy name") "suu-imp" pol.Policy.name)
    shapes

let () =
  Alcotest.run "race"
    [
      ( "improved vs lin-rajaraman",
        [
          Alcotest.test_case "structure on every shape" `Quick
            (for_each_shape test_structure);
          Alcotest.test_case "quality differential on every shape" `Quick
            (for_each_shape test_quality);
          Alcotest.test_case "dispatch identity" `Quick test_dispatch;
        ] );
    ]
