(* The observability core: spans, histograms, trace-event export,
   Prometheus exposition, and the engine's execution observer.

   The trace-event writer has its own standalone JSON emitter (lib/obs
   cannot depend on the serving layer), so the round-trip tests here
   close the loop by parsing its output with the service JSON parser. *)

module Trace = Suu_obs.Trace
module Trace_event = Suu_obs.Trace_event
module Histogram = Suu_obs.Histogram
module Prom = Suu_obs.Prom
module Exec_trace = Suu_obs.Exec_trace
module Json = Suu_service.Json
module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious
module Suu_i_obl = Suu_algo.Suu_i_obl
module Policy = Suu_core.Policy
module Engine = Suu_sim.Engine

(* --- spans --- *)

let test_span_nesting () =
  let tr = Trace.create ~enabled:true () in
  let v =
    Trace.with_span tr "outer" (fun () ->
        1
        + Trace.with_span tr ~cat:"in" ~attrs:[ ("k", "v") ] "inner" (fun () ->
              41))
  in
  Alcotest.(check int) "value through spans" 42 v;
  match Trace.spans tr with
  | [ outer; inner ] ->
      Alcotest.(check string) "parent first" "outer" outer.Trace.name;
      Alcotest.(check string) "child second" "inner" inner.Trace.name;
      Alcotest.(check int) "root depth" 0 outer.Trace.depth;
      Alcotest.(check int) "nested depth" 1 inner.Trace.depth;
      Alcotest.(check string) "category" "in" inner.Trace.cat;
      Alcotest.(check (list (pair string string)))
        "attributes" [ ("k", "v") ] inner.Trace.attrs;
      Alcotest.(check bool) "child starts inside parent" true
        (inner.Trace.start_ns >= outer.Trace.start_ns);
      Alcotest.(check bool) "child ends inside parent" true
        (inner.Trace.start_ns +. inner.Trace.dur_ns
        <= outer.Trace.start_ns +. outer.Trace.dur_ns)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_exception_and_disabled () =
  let tr = Trace.create ~enabled:true () in
  (match Trace.with_span tr "boom" (fun () -> failwith "kept") with
  | () -> Alcotest.fail "exception swallowed"
  | exception Failure msg -> Alcotest.(check string) "re-raised" "kept" msg);
  Alcotest.(check int) "failing span still recorded" 1
    (List.length (Trace.spans tr));
  Alcotest.(check bool) "disabled tracer reports disabled" false
    (Trace.enabled Trace.disabled);
  Trace.with_span Trace.disabled "x" (fun () -> ());
  Alcotest.(check int) "disabled tracer records nothing" 0
    (List.length (Trace.spans Trace.disabled))

let test_span_ring_wraparound () =
  let tr = Trace.create ~capacity:4 ~enabled:true () in
  for i = 1 to 6 do
    Trace.with_span tr (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let names = List.map (fun s -> s.Trace.name) (Trace.spans tr) in
  Alcotest.(check (list string))
    "keeps the most recent capacity spans"
    [ "s3"; "s4"; "s5"; "s6" ] names;
  Alcotest.(check int) "dropped counts the overwritten" 2 (Trace.dropped tr)

(* --- histograms --- *)

let test_histogram_quantile_bounds () =
  let h = Histogram.create () in
  let n = 10_000 in
  for i = 1 to n do
    Histogram.add h (Float.of_int i)
  done;
  Alcotest.(check int) "count" n (Histogram.count h);
  Alcotest.(check (float 1e-6))
    "sum"
    (Float.of_int (n * (n + 1) / 2))
    (Histogram.sum h);
  Alcotest.(check (float 1e-9)) "exact min" 1. (Histogram.min_value h);
  Alcotest.(check (float 1e-9))
    "exact max" (Float.of_int n) (Histogram.max_value h);
  (* Every reported quantile is within the layout's advertised relative
     error of the exact order statistic. *)
  let err = Histogram.relative_error h in
  List.iter
    (fun q ->
      let exact = Float.max 1. (Float.of_int n *. q) in
      let got = Histogram.quantile h q in
      if Float.abs (got -. exact) > (err +. 0.01) *. exact then
        Alcotest.failf "q=%.2f: estimate %.1f vs exact %.1f (budget %.0f%%)" q
          got exact (err *. 100.))
    [ 0.01; 0.25; 0.5; 0.9; 0.95; 0.99 ];
  Alcotest.(check (float 1e-9))
    "q=1 clamps to the exact max" (Float.of_int n) (Histogram.quantile h 1.);
  let occupancy =
    List.fold_left (fun a (_, c) -> a + c) 0 (Histogram.buckets h)
  in
  Alcotest.(check int) "buckets account for every sample" n occupancy;
  Histogram.add h Float.nan;
  Alcotest.(check int) "NaN is ignored" n (Histogram.count h);
  let c = Histogram.copy h in
  Histogram.merge_into h ~into:c;
  Alcotest.(check int) "merge into the copy doubles it" (2 * n)
    (Histogram.count c);
  Alcotest.(check int) "the original is untouched" n (Histogram.count h)

(* --- histogram merge + snapshot round-trip (the coordinator's path) --- *)

let test_histogram_merge () =
  let mk vals =
    let h = Histogram.create () in
    List.iter (Histogram.add h) vals;
    h
  in
  let a = mk [ 1.; 2.; 1000. ] and b = mk [ 0.5; 2.; 3. ] and c = mk [] in
  let m = Histogram.merge [ a; b; c ] in
  Alcotest.(check int) "counts add" 6 (Histogram.count m);
  Alcotest.(check (float 1e-9)) "sums add" 1008.5 (Histogram.sum m);
  Alcotest.(check (float 1e-9)) "min combines" 0.5 (Histogram.min_value m);
  Alcotest.(check (float 1e-9)) "max combines" 1000. (Histogram.max_value m);
  (* Merging is the same as having observed everything in one histogram:
     bucket-exact, not approximate. *)
  let all = mk [ 1.; 2.; 1000.; 0.5; 2.; 3. ] in
  Alcotest.(check (list (pair (float 1e-9) int)))
    "bucket-identical to single-histogram observation" (Histogram.buckets all)
    (Histogram.buckets m);
  Alcotest.(check int) "inputs untouched" 3 (Histogram.count a);
  (match Histogram.merge [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty merge accepted");
  let odd = Histogram.create ~lo:1e-3 ~growth:1.3 () in
  match Histogram.merge [ a; odd ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "layout mismatch accepted"

(* A respawned worker reports from zero. Folding its reset snapshot
   into the fleet merge must be a no-op — never a step backwards — and
   merging disjoint-bucket histograms must be exact, not approximate. *)
let test_histogram_merge_disjoint_and_reset () =
  let mk vals =
    let h = Histogram.create () in
    List.iter (Histogram.add h) vals;
    h
  in
  (* Samples three decades apart: no shared bucket between a and b. *)
  let a = mk [ 0.001; 0.002; 0.003 ] and b = mk [ 10.; 20.; 30. ] in
  let keys h = List.map fst (Histogram.buckets h) in
  List.iter
    (fun k ->
      if List.mem k (keys b) then
        Alcotest.failf "buckets not disjoint at bound %g" k)
    (keys a);
  let m = Histogram.merge [ a; b ] in
  Alcotest.(check int) "disjoint counts add" 6 (Histogram.count m);
  Alcotest.(check int)
    "disjoint occupancy is the union"
    (List.length (Histogram.buckets a) + List.length (Histogram.buckets b))
    (List.length (Histogram.buckets m));
  (* The respawned worker arrives over the wire as an empty snapshot. *)
  let reset = Histogram.import (Histogram.export (Histogram.create ())) in
  let m' = Histogram.merge [ a; b; reset ] in
  Alcotest.(check int)
    "reset worker leaves count alone" (Histogram.count m) (Histogram.count m');
  Alcotest.(check (float 1e-9))
    "reset worker leaves sum alone" (Histogram.sum m) (Histogram.sum m');
  Alcotest.(check (list (pair (float 1e-9) int)))
    "reset worker leaves buckets alone" (Histogram.buckets m)
    (Histogram.buckets m');
  (* Never backwards: every merged aggregate dominates every input's. *)
  List.iter
    (fun h ->
      Alcotest.(check bool) "count never backwards" true
        (Histogram.count m' >= Histogram.count h);
      Alcotest.(check bool) "sum never backwards" true
        (Histogram.sum m' >= Histogram.sum h);
      Alcotest.(check bool) "min never backwards" true
        (Histogram.min_value m' <= Histogram.min_value h);
      Alcotest.(check bool) "max never backwards" true
        (Histogram.max_value m' >= Histogram.max_value h))
    [ a; b; reset ]

let test_histogram_snapshot_roundtrip () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 0.2; 5.; 5.; 123456.; 1e-9 ];
  let s = Histogram.export h in
  let h2 = Histogram.import s in
  Alcotest.(check int) "count survives" (Histogram.count h) (Histogram.count h2);
  Alcotest.(check (float 1e-9)) "sum survives" (Histogram.sum h)
    (Histogram.sum h2);
  Alcotest.(check (float 1e-9))
    "min survives" (Histogram.min_value h) (Histogram.min_value h2);
  Alcotest.(check (float 1e-9))
    "max survives" (Histogram.max_value h) (Histogram.max_value h2);
  Alcotest.(check (list (pair (float 1e-9) int)))
    "buckets survive" (Histogram.buckets h) (Histogram.buckets h2);
  (* An empty histogram round-trips too (no occupied buckets, no min). *)
  let e = Histogram.import (Histogram.export (Histogram.create ())) in
  Alcotest.(check int) "empty round-trip" 0 (Histogram.count e);
  (* Hostile snapshots are rejected, not silently mis-imported. *)
  List.iter
    (fun s ->
      match Histogram.import s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "hostile snapshot accepted")
    [
      { s with Histogram.occupied = [ (-1, 3) ] };
      { s with Histogram.occupied = [ (s.Histogram.layout_buckets, 1) ] };
      { s with Histogram.occupied = [ (0, -2) ] };
      { s with Histogram.layout_buckets = 0 };
    ]

let test_counters_merge_snapshots () =
  let merged =
    Suu_obs.Counters.merge_snapshots
      [
        [ ("a", 1); ("b", 2) ];
        [ ("b", 40); ("c", 5) ];
        [];
        [ ("a", 6) ];
      ]
  in
  Alcotest.(check (list (pair string int)))
    "summed by name, sorted"
    [ ("a", 7); ("b", 42); ("c", 5) ]
    merged;
  Alcotest.(check (list (pair string int)))
    "empty fold" []
    (Suu_obs.Counters.merge_snapshots [])

(* Counter edges of the same fleet-merge path: snapshots with no names
   in common sum to their concatenation, a respawned worker's
   zeroed-out snapshot changes nothing, and the merged value of every
   name dominates its value in every contributing snapshot. *)
let test_counters_merge_disjoint_and_reset () =
  let merge = Suu_obs.Counters.merge_snapshots in
  let s0 = [ ("requests", 9); ("ok", 8) ]
  and s1 = [ ("errors", 1); ("retries", 4) ] in
  Alcotest.(check (list (pair string int)))
    "disjoint names concatenate, sorted"
    [ ("errors", 1); ("ok", 8); ("requests", 9); ("retries", 4) ]
    (merge [ s0; s1 ]);
  (* A worker fresh from respawn: same names, all zero. *)
  let reset = [ ("errors", 0); ("ok", 0); ("requests", 0); ("retries", 0) ] in
  Alcotest.(check (list (pair string int)))
    "reset snapshot is a merge no-op"
    (merge [ s0; s1 ])
    (merge [ s0; s1; reset ]);
  let merged = merge [ s0; s1; reset ] in
  List.iter
    (fun snap ->
      List.iter
        (fun (name, v) ->
          match List.assoc_opt name merged with
          | Some m when m >= v -> ()
          | Some m ->
              Alcotest.failf "merged %s went backwards: %d < %d" name m v
          | None -> Alcotest.failf "merged lost counter %s" name)
        snap)
    [ s0; s1; reset ]

(* Process-wide engine counters are shared across tests, so assert on
   before/after deltas, not absolute values. One vectorized estimate of
   [trials] must add ceil(trials / lanes_per_word) to
   [engine_vector_words_total]; an estimate cut short by its ci_target
   must bump [engine_early_stops_total]. *)
let test_engine_vector_counters () =
  let get name =
    Option.value ~default:0 (Suu_obs.Counters.find Engine.counters name)
  in
  let inst =
    Instance.independent ~p:[| [| 0.5; 0.6 |]; [| 0.7; 0.4 |] |]
  in
  let policy = Suu_algo.Suu_i.policy inst in
  let words0 = get "engine_vector_words_total"
  and stops0 = get "engine_early_stops_total" in
  let trials = 100 in
  ignore
    (Engine.estimate_makespan ~trials (Suu_prob.Rng.create 5) inst policy);
  let expect_words =
    (trials + Suu_sim.Lanes.lanes_per_word - 1) / Suu_sim.Lanes.lanes_per_word
  in
  Alcotest.(check int) "vector words counted" expect_words
    (get "engine_vector_words_total" - words0);
  Alcotest.(check int) "no early stop without target" 0
    (get "engine_early_stops_total" - stops0);
  let e =
    Engine.estimate_makespan ~ci_target:0.5 ~trials:50_000
      (Suu_prob.Rng.create 6) inst policy
  in
  Alcotest.(check bool) "estimate stopped early" true (e.Engine.trials < 50_000);
  Alcotest.(check int) "early stop counted" 1
    (get "engine_early_stops_total" - stops0)

(* --- trace-event JSON, round-tripped through the service codec --- *)

let sample_events () =
  [
    Trace_event.process_name ~pid:1 "trial 1";
    Trace_event.thread_name ~pid:1 ~tid:0 "machine 0";
    Trace_event.complete ~cat:"exec" ~pid:1 ~tid:0 ~ts_us:0. ~dur_us:3.
      ~args:
        [
          ("p", Trace_event.Num 0.25);
          ("job", Trace_event.Int 2);
          ("why", Trace_event.Str "a\"b\\c\n");
          ("bad", Trace_event.Num Float.nan);
        ]
      "job 2";
    Trace_event.instant ~cat:"exec" ~pid:1 ~tid:0 ~ts_us:3. "complete job 2";
    Trace_event.counter ~cat:"exec" ~pid:1 ~ts_us:3. "unfinished"
      [ ("jobs", 7.) ];
  ]

let test_trace_event_roundtrip () =
  let events = sample_events () in
  match Json.of_string (Trace_event.to_json events) with
  | Error msg -> Alcotest.failf "service parser rejected the trace: %s" msg
  | Ok (Json.List parsed) -> (
      Alcotest.(check int)
        "event count" (List.length events) (List.length parsed);
      let phases =
        List.map
          (fun e ->
            match Json.member "ph" e with Some (Json.Str ph) -> ph | _ -> "?")
          parsed
      in
      Alcotest.(check (list string))
        "phases" [ "M"; "M"; "X"; "i"; "C" ] phases;
      let slice = List.nth parsed 2 in
      Alcotest.(check (option int))
        "duration survives" (Some 3)
        (Option.bind (Json.member "dur" slice) Json.to_int);
      match Json.member "args" slice with
      | Some args ->
          Alcotest.(check (option string))
            "escaped string survives" (Some "a\"b\\c\n")
            (match Json.member "why" args with
            | Some (Json.Str s) -> Some s
            | _ -> None);
          Alcotest.(check bool) "NaN became null" true
            (Json.member "bad" args = Some Json.Null)
      | None -> Alcotest.fail "slice lost its args")
  | Ok _ -> Alcotest.fail "expected a JSON array"

let test_trace_event_write_matches_to_json () =
  let events = sample_events () in
  let path = Filename.temp_file "suu_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> Trace_event.write oc events);
      let streamed = In_channel.with_open_text path In_channel.input_all in
      match
        (Json.of_string streamed, Json.of_string (Trace_event.to_json events))
      with
      | Ok a, Ok b ->
          Alcotest.(check bool)
            "streamed and buffered forms parse equal" true (a = b)
      | Error msg, _ | _, Error msg -> Alcotest.failf "parse failed: %s" msg)

(* --- Prometheus exposition --- *)

let test_prom_rendering () =
  let h = Histogram.create ~lo:1. ~growth:2. ~buckets:4 () in
  List.iter (Histogram.add h) [ 0.5; 3.; 3.; 100. ];
  let body =
    Prom.render
      [
        Prom.counter ~name:"suu_requests_total" ~help:"served" 12.;
        Prom.gauge ~name:"bad name!" ~help:"gets sanitised" 3.;
        Prom.histogram ~name:"suu_latency_ms" ~help:"ok latency" h;
      ]
  in
  let lines = String.split_on_char '\n' body in
  let has l = List.mem l lines in
  Alcotest.(check bool) "counter header" true
    (has "# TYPE suu_requests_total counter");
  Alcotest.(check bool) "counter sample" true (has "suu_requests_total 12");
  Alcotest.(check bool) "invalid name sanitised" true (has "bad_name_ 3");
  Alcotest.(check bool) "histogram count" true (has "suu_latency_ms_count 4");
  Alcotest.(check bool) "+Inf bucket closes the family" true
    (has "suu_latency_ms_bucket{le=\"+Inf\"} 4");
  (* Buckets are cumulative: the counts along the le series never
     decrease. *)
  let bucket_counts =
    List.filter_map
      (fun l ->
        if String.starts_with ~prefix:"suu_latency_ms_bucket" l then
          String.rindex_opt l ' '
          |> Option.map (fun i ->
                 int_of_string
                   (String.sub l (i + 1) (String.length l - i - 1)))
        else None)
      lines
  in
  Alcotest.(check bool) "cumulative buckets" true
    (List.sort compare bucket_counts = bucket_counts
    && bucket_counts <> []);
  (* No sample or header line may be malformed enough to smuggle a
     newline or an empty metric name. *)
  List.iter
    (fun l ->
      if l <> "" && not (String.starts_with ~prefix:"#" l) then
        match String.index_opt l ' ' with
        | Some i when i > 0 -> ()
        | _ -> Alcotest.failf "malformed sample line %S" l)
    lines

(* --- execution traces --- *)

let tiny_trial () =
  {
    Exec_trace.index = 1;
    seed = 99;
    makespan = 3;
    truncated = false;
    steps =
      [
        { Exec_trace.t = 1; assignment = [| 0; 1 |]; completed = [] };
        { Exec_trace.t = 2; assignment = [| 0; -1 |]; completed = [ 1 ] };
        { Exec_trace.t = 3; assignment = [| 0; -1 |]; completed = [ 0 ] };
      ];
  }

let quarter ~machine:_ ~job:_ = 0.25

let test_exec_trace_mass_and_csv () =
  let trial = tiny_trial () in
  let traj = Exec_trace.mass_trajectory ~prob:quarter ~jobs:2 trial in
  Alcotest.(check (list (pair int (array (float 1e-9)))))
    "capped accumulation per recorded step"
    [ (1, [| 0.25; 0.25 |]); (2, [| 0.5; 0.25 |]); (3, [| 0.75; 0.25 |]) ]
    traj;
  let rows = Exec_trace.mass_csv_rows ~prob:quarter ~jobs:2 trial in
  Alcotest.(check int) "one row per (step, job)" 6 (List.length rows);
  Alcotest.(check (list string))
    "first row" [ "1"; "1"; "0"; "0.250000"; "0" ] (List.hd rows);
  Alcotest.(check (list string))
    "completion sticks once marked"
    [ "1"; "3"; "1"; "0.250000"; "1" ]
    (List.nth rows 5)

let test_exec_trace_events_run_length () =
  let trial = tiny_trial () in
  let events =
    Exec_trace.to_events ~prob:quarter ~machines:2 ~jobs:2 trial
  in
  let by_ph ph =
    List.filter (fun e -> String.equal e.Trace_event.ph ph) events
  in
  (* Machine 0 ran job 0 for all three steps: one run-length-encoded
     slice. Machine 1 ran job 1 for one step. Slices are emitted as
     their runs close, so order on the name. *)
  (match
     List.sort
       (fun a b -> compare a.Trace_event.name b.Trace_event.name)
       (by_ph "X")
   with
  | [ a; b ] ->
      Alcotest.(check string) "machine 0 slice" "job 0" a.Trace_event.name;
      Alcotest.(check (float 1e-9)) "slice start" 0. a.Trace_event.ts_us;
      Alcotest.(check (float 1e-9)) "slice spans the run" 3. a.Trace_event.dur_us;
      Alcotest.(check string) "machine 1 slice" "job 1" b.Trace_event.name;
      Alcotest.(check (float 1e-9)) "short slice" 1. b.Trace_event.dur_us
  | l -> Alcotest.failf "expected 2 slices, got %d" (List.length l));
  Alcotest.(check int) "one instant per completion" 2
    (List.length (by_ph "i"));
  Alcotest.(check int) "one counter sample per step" 3
    (List.length (by_ph "C"));
  Alcotest.(check int) "process + machine metadata" 3
    (List.length (by_ph "M"))

(* --- observer bit-identity on the real engine --- *)

let observer_instance () =
  let p =
    Array.init 3 (fun i ->
        Array.init 5 (fun j ->
            0.15 +. (0.6 *. Float.of_int ((i + (2 * j)) mod 7) /. 7.)))
  in
  Instance.create ~p ~dag:(Suu_dag.Dag.create ~n:5 [ (0, 2); (1, 3) ])

let indep_instance () =
  let p =
    Array.init 3 (fun i ->
        Array.init 5 (fun j ->
            0.2 +. (0.5 *. Float.of_int ((1 + i + (3 * j)) mod 5) /. 5.)))
  in
  Instance.create ~p ~dag:(Suu_dag.Dag.empty 5)

let check_bit_identity name inst policy =
  let trials = 16 and seed = 2026 in
  let observer, captured = Exec_trace.collector ~sample_every:1 () in
  let a = Engine.estimate_makespan_seeded ~observer ~trials ~seed inst policy in
  let b = Engine.estimate_makespan_seeded ~trials ~seed inst policy in
  let bits e = Array.map Int64.bits_of_float e.Engine.samples in
  Alcotest.(check (array int64))
    (name ^ ": samples bit-identical under observation")
    (bits b) (bits a);
  Alcotest.(check int)
    (name ^ ": truncation count unchanged")
    b.Engine.incomplete a.Engine.incomplete;
  let seen = captured () in
  Alcotest.(check int) (name ^ ": every trial captured") trials
    (List.length seen);
  List.iteri
    (fun k tr ->
      Alcotest.(check int) (name ^ ": trial order") k tr.Exec_trace.index;
      if not tr.Exec_trace.truncated then
        Alcotest.(check int)
          (name ^ ": recorded history covers the whole trial")
          tr.Exec_trace.makespan
          (List.length tr.Exec_trace.steps))
    seen

let test_observer_bit_identity_adaptive () =
  let inst = observer_instance () in
  check_bit_identity "adaptive" inst (Suu_algo.Suu_i.policy inst)

let test_observer_bit_identity_oblivious () =
  let inst = indep_instance () in
  check_bit_identity "oblivious" inst
    (Policy.of_oblivious "suu-i-obl" (Suu_i_obl.schedule inst))

(* The leapfrog path reconstructs history instead of stepping: its
   recorded assignments must still be exactly the schedule's columns. *)
let test_observer_leap_reconstruction () =
  let inst = indep_instance () in
  let sched = Suu_i_obl.schedule inst in
  let observer, captured = Exec_trace.collector ~sample_every:1 () in
  let _ =
    Engine.estimate_makespan_seeded ~observer ~trials:4 ~seed:7 inst
      (Policy.of_oblivious "suu-i-obl" sched)
  in
  List.iter
    (fun tr ->
      List.iter
        (fun (st : Exec_trace.step) ->
          Alcotest.(check (array int))
            "assignment is the schedule column"
            (Oblivious.step sched (st.Exec_trace.t - 1))
            st.Exec_trace.assignment)
        tr.Exec_trace.steps)
    (captured ())

let test_observer_sampling_and_limit () =
  let inst = indep_instance () in
  let policy = Suu_algo.Suu_i.policy inst in
  let observer, captured = Exec_trace.collector ~sample_every:3 ~limit:2 () in
  let _ = Engine.estimate_makespan_seeded ~observer ~trials:7 ~seed:5 inst policy in
  let seen = captured () in
  Alcotest.(check (list int))
    "sample_every selects k mod s = 0" [ 0; 3; 6 ]
    (List.map (fun tr -> tr.Exec_trace.index) seen);
  List.iter
    (fun tr ->
      Alcotest.(check bool) "limit caps recorded steps" true
        (List.length tr.Exec_trace.steps <= 2))
    seen

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "exception + disabled" `Quick
            test_span_exception_and_disabled;
          Alcotest.test_case "ring wraparound" `Quick test_span_ring_wraparound;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "quantile error bounds" `Quick
            test_histogram_quantile_bounds;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "merge disjoint + respawn reset" `Quick
            test_histogram_merge_disjoint_and_reset;
          Alcotest.test_case "snapshot round-trip" `Quick
            test_histogram_snapshot_roundtrip;
        ] );
      ( "counters",
        [
          Alcotest.test_case "merge snapshots" `Quick
            test_counters_merge_snapshots;
          Alcotest.test_case "merge disjoint + respawn reset" `Quick
            test_counters_merge_disjoint_and_reset;
          Alcotest.test_case "engine vector + early-stop counters" `Quick
            test_engine_vector_counters;
        ] );
      ( "trace-event",
        [
          Alcotest.test_case "round-trip via service JSON" `Quick
            test_trace_event_roundtrip;
          Alcotest.test_case "streamed = buffered" `Quick
            test_trace_event_write_matches_to_json;
        ] );
      ( "prom",
        [ Alcotest.test_case "exposition format" `Quick test_prom_rendering ] );
      ( "exec-trace",
        [
          Alcotest.test_case "mass trajectory + CSV" `Quick
            test_exec_trace_mass_and_csv;
          Alcotest.test_case "run-length slices" `Quick
            test_exec_trace_events_run_length;
        ] );
      ( "observer",
        [
          Alcotest.test_case "bit-identity (adaptive)" `Quick
            test_observer_bit_identity_adaptive;
          Alcotest.test_case "bit-identity (oblivious)" `Quick
            test_observer_bit_identity_oblivious;
          Alcotest.test_case "leap reconstruction" `Quick
            test_observer_leap_reconstruction;
          Alcotest.test_case "sampling + limit" `Quick
            test_observer_sampling_and_limit;
        ] );
    ]
