module W = Suu_workloads.Workload
module Instance = Suu_core.Instance
module Classify = Suu_dag.Classify
module Rng = Suu_prob.Rng

let shape inst = Classify.classify (Instance.dag inst)

let test_grid_batch_shape () =
  let w = W.grid_batch (Rng.create 1) ~n:20 ~m:6 in
  Alcotest.(check int) "n" 20 (Instance.n w.W.instance);
  Alcotest.(check int) "m" 6 (Instance.m w.W.instance);
  Alcotest.(check bool) "independent" true
    (shape w.W.instance = Classify.Independent)

let test_grid_workflow_chains () =
  let w = W.grid_workflow (Rng.create 2) ~n:24 ~m:4 ~stages:4 in
  Alcotest.(check bool) "chains" true
    (Classify.matches (Instance.dag w.W.instance) Classify.Chains)

let test_grid_divide_out_trees () =
  let w = W.grid_divide (Rng.create 3) ~n:32 ~m:4 in
  Alcotest.(check bool) "out trees" true
    (Classify.matches (Instance.dag w.W.instance) Classify.Out_trees)

let test_grid_aggregate_in_trees () =
  let w = W.grid_aggregate (Rng.create 4) ~n:32 ~m:4 in
  Alcotest.(check bool) "in trees" true
    (Classify.matches (Instance.dag w.W.instance) Classify.In_trees)

let test_project_forest () =
  let w = W.project (Rng.create 5) ~n:24 ~m:5 in
  Alcotest.(check bool) "forest" true
    (Classify.matches (Instance.dag w.W.instance) Classify.Forest)

let test_uniform_range () =
  let w =
    W.uniform (Rng.create 6) ~n:10 ~m:3 ~lo:0.4 ~hi:0.6
      ~dag:(Suu_dag.Dag.empty 10)
  in
  for i = 0 to 2 do
    for j = 0 to 9 do
      let p = Instance.prob w.W.instance ~machine:i ~job:j in
      Alcotest.(check bool) "in range" true (p >= 0.4 && p < 0.6)
    done
  done

let test_specialists_capability () =
  let w =
    W.specialists (Rng.create 7) ~n:12 ~m:6 ~capable:2 ~lo:0.3 ~hi:0.9
      ~dag:(Suu_dag.Dag.empty 12)
  in
  for j = 0 to 11 do
    Alcotest.(check int) "exactly 2 capable" 2
      (List.length (Instance.capable_machines w.W.instance j))
  done

let test_specialists_bad_capable () =
  Alcotest.check_raises "capable > m"
    (Invalid_argument "Workload.specialists: capable must be in [1, m]")
    (fun () ->
      ignore
        (W.specialists (Rng.create 8) ~n:4 ~m:2 ~capable:3 ~lo:0.2 ~hi:0.8
           ~dag:(Suu_dag.Dag.empty 4)
          : W.t))

let test_adversarial_spread () =
  let w = W.adversarial_spread ~n:8 ~m:8 in
  (* All probabilities are powers of two in (0, 1/2]. *)
  for i = 0 to 7 do
    for j = 0 to 7 do
      let p = Instance.prob w.W.instance ~machine:i ~job:j in
      let log2 = Float.log p /. Float.log 2. in
      Alcotest.(check bool) "power of two" true
        (Float.abs (log2 -. Float.round log2) < 1e-12);
      Alcotest.(check bool) "at most 1/2" true (p <= 0.5)
    done
  done

let test_figure1 () =
  let w = W.figure1 () in
  Alcotest.(check int) "3 jobs" 3 (Instance.n w.W.instance);
  Alcotest.(check int) "2 machines" 2 (Instance.m w.W.instance);
  Alcotest.(check bool) "independent" true
    (shape w.W.instance = Classify.Independent)

let test_uunifast_calibration () =
  let w =
    W.uunifast (Rng.create 9) ~n:16 ~m:4 ~total_util:4.
      ~dag:(Suu_dag.Dag.empty 16)
  in
  Alcotest.(check int) "n" 16 (Instance.n w.W.instance);
  Alcotest.(check int) "m" 4 (Instance.m w.W.instance);
  for i = 0 to 3 do
    for j = 0 to 15 do
      let p = Instance.prob w.W.instance ~machine:i ~job:j in
      Alcotest.(check bool) "clamped" true (p >= 0.02 && p <= 1.)
    done
  done;
  (* Same seed, same split: the generator is deterministic. *)
  let w' =
    W.uunifast (Rng.create 9) ~n:16 ~m:4 ~total_util:4.
      ~dag:(Suu_dag.Dag.empty 16)
  in
  Alcotest.(check (float 0.)) "deterministic"
    (Instance.prob w.W.instance ~machine:2 ~job:7)
    (Instance.prob w'.W.instance ~machine:2 ~job:7)

let test_uunifast_bad_util () =
  let bad u =
    Alcotest.check_raises
      (Printf.sprintf "total_util %g rejected" u)
      (Invalid_argument "Workload.uunifast: total_util must be in (0, n]")
      (fun () ->
        ignore
          (W.uunifast (Rng.create 1) ~n:4 ~m:2 ~total_util:u
             ~dag:(Suu_dag.Dag.empty 4)
            : W.t))
  in
  bad 0.;
  bad (-1.);
  bad 4.5

let test_arrivals_edge_cases () =
  (* mean_gap = 0 (and negative) are rejected with a typed error. *)
  let bad g =
    Alcotest.check_raises
      (Printf.sprintf "mean_gap %g rejected" g)
      (Invalid_argument "Workload.arrivals: mean_gap must be > 0")
      (fun () -> ignore (W.arrivals (Rng.create 1) ~n:4 ~mean_gap:g : int array))
  in
  bad 0.;
  bad (-2.);
  (* mean_gap < 1 clamps the geometric parameter at 1: job 0 still
     arrives at step 0 and gaps stay >= 1 (integer steps). *)
  let r = W.arrivals (Rng.create 2) ~n:12 ~mean_gap:0.25 in
  Alcotest.(check int) "job 0 at step 0" 0 r.(0);
  for j = 1 to 11 do
    Alcotest.(check bool) "gaps >= 1" true (r.(j) >= r.(j - 1) + 1)
  done;
  (* Determinism in the generator. *)
  let a = W.arrivals (Rng.create 3) ~n:8 ~mean_gap:2.5 in
  let b = W.arrivals (Rng.create 3) ~n:8 ~mean_gap:2.5 in
  Alcotest.(check (array int)) "deterministic" a b;
  (* Releases are non-decreasing in job index, so for DAGs whose edges
     point from lower to higher indices (all our generators) no job is
     released before a predecessor. *)
  let r = W.arrivals (Rng.create 4) ~n:20 ~mean_gap:3. in
  for j = 1 to 19 do
    Alcotest.(check bool) "monotone" true (r.(j) >= r.(j - 1))
  done

let test_churned_pairing () =
  let w = W.grid_batch (Rng.create 11) ~n:10 ~m:6 in
  let params = { Suu_dyn.Churn.default_params with seed = 5; rate = 0.2 } in
  let d = W.churned (Rng.create 12) ~mean_gap:1.5 w params in
  Alcotest.(check int) "one release per job" 10 (Array.length d.W.releases);
  Alcotest.(check int) "timeline covers the machines" 6
    (Suu_dyn.Churn.m d.W.churn);
  Alcotest.(check bool) "description mentions churn" true
    (String.length d.W.workload.W.description
    > String.length w.W.description);
  (* Deterministic: same rng seed and params, same environment. *)
  let d' = W.churned (Rng.create 12) ~mean_gap:1.5 w params in
  Alcotest.(check (array int)) "same releases" d.W.releases d'.W.releases;
  Alcotest.(check bool) "same timeline" true
    (Suu_dyn.Churn.down_steps d.W.churn ~upto:128
    = Suu_dyn.Churn.down_steps d'.W.churn ~upto:128)

let test_determinism () =
  let a = W.project (Rng.create 42) ~n:16 ~m:4 in
  let b = W.project (Rng.create 42) ~n:16 ~m:4 in
  let equal = ref true in
  for i = 0 to 3 do
    for j = 0 to 15 do
      if
        Instance.prob a.W.instance ~machine:i ~job:j
        <> Instance.prob b.W.instance ~machine:i ~job:j
      then equal := false
    done
  done;
  Alcotest.(check bool) "same instance" true !equal

let prop_all_generators_valid =
  QCheck.Test.make ~name:"generators always produce valid instances" ~count:60
    QCheck.(triple small_int (int_range 4 40) (int_range 2 8))
    (fun (seed, n, m) ->
      let rng = Rng.create seed in
      let all =
        [
          W.grid_batch (Rng.split rng) ~n ~m;
          W.grid_workflow (Rng.split rng) ~n ~m ~stages:3;
          W.grid_divide (Rng.split rng) ~n ~m;
          W.grid_aggregate (Rng.split rng) ~n ~m;
          W.project (Rng.split rng) ~n ~m;
          W.adversarial_spread ~n ~m;
        ]
      in
      (* Instance.create already validates; reaching here means each job
         has a capable machine and p in [0,1]. Check names non-empty. *)
      List.for_all (fun w -> String.length w.W.name > 0) all)

let () =
  Alcotest.run "workloads"
    [
      ( "scenarios",
        [
          Alcotest.test_case "grid batch" `Quick test_grid_batch_shape;
          Alcotest.test_case "grid workflow" `Quick test_grid_workflow_chains;
          Alcotest.test_case "grid divide" `Quick test_grid_divide_out_trees;
          Alcotest.test_case "grid aggregate" `Quick test_grid_aggregate_in_trees;
          Alcotest.test_case "project" `Quick test_project_forest;
          Alcotest.test_case "uniform range" `Quick test_uniform_range;
          Alcotest.test_case "specialists" `Quick test_specialists_capability;
          Alcotest.test_case "specialists gate" `Quick test_specialists_bad_capable;
          Alcotest.test_case "adversarial spread" `Quick test_adversarial_spread;
          Alcotest.test_case "figure 1" `Quick test_figure1;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "uunifast calibration" `Quick
            test_uunifast_calibration;
          Alcotest.test_case "uunifast gate" `Quick test_uunifast_bad_util;
          Alcotest.test_case "arrivals edge cases" `Quick
            test_arrivals_edge_cases;
          Alcotest.test_case "churned pairing" `Quick test_churned_pairing;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_all_generators_valid ]);
    ]
