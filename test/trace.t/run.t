The trace subcommand renders sampled Monte-Carlo executions as Chrome
trace-event JSON (load in Perfetto / chrome://tracing) plus a per-job
mass-vs-time CSV. With no instance file it traces a generated workload;
everything is seeded, so the artifacts are deterministic.

  $ suu trace --jobs 8 --machines 4 --policy oblivious --trials 5 --seed 42
  E[makespan] over 5 trials of lp-indep: 5.20 ±2.93
  wrote trace.json: 165 trace events from 5 captured trials
  wrote mass.csv: 208 rows

The trace file is a JSON array, one event per line. Every captured
trial is a process (metadata event naming it by index and per-trial
seed), every machine a thread lane:

  $ head -1 trace.json
  [
  $ grep -c '"ph":"M"' trace.json
  25
  $ sed -n '2p' trace.json
  {"name":"process_name","cat":"__metadata","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"trial 0 (seed 2654435739)"}},

Each of the 8 jobs completes exactly once per trial (an instant event),
and every step samples the unfinished-jobs counter track:

  $ grep -c '"ph":"i"' trace.json
  40
  $ grep -c '"ph":"C"' trace.json
  26

The CSV ledgers mass accumulation per (trial, step, job):

  $ head -3 mass.csv
  trial,t,job,mass,completed
  0,1,0,0.808642,1
  0,1,1,0.866128,1

--sample-every thins the captured trials (every k-th, starting at 0)
without touching the estimate itself:

  $ suu trace --jobs 6 --machines 3 --trials 4 --seed 7 --sample-every 2 \
  >   --out adapt.json --csv adapt.csv
  E[makespan] over 4 trials of suu-i-alg: 7.00 ±2.40
  wrote adapt.json: 57 trace events from 2 captured trials
  wrote adapt.csv: 102 rows
