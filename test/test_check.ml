(* Tests for the lib/check conformance subsystem itself: the registry
   stays green on fresh seeds, the failure path shrinks to a minimal
   counterexample whose repro line replays, and cases/shrinks/seeds are
   deterministic plain data. *)

module Case = Suu_check.Case
module Gen = Suu_check.Gen
module Property = Suu_check.Property
module Registry = Suu_check.Registry
module Runner = Suu_check.Runner
module Rng = Suu_prob.Rng

let find name =
  match Registry.find name with
  | Some p -> p
  | None -> Alcotest.failf "property %S not registered" name

let test_registry_green () =
  Alcotest.(check bool)
    "at least 10 visible properties" true
    (List.length Registry.visible >= 10);
  (* A seed the cram/CI runs don't use, so this is genuinely new
     coverage rather than a replay of the pinned seed. *)
  let report = Runner.run ~seed:1234 ~count:5 Registry.visible in
  List.iter
    (fun (r : Runner.prop_report) ->
      match r.Runner.failure with
      | None -> ()
      | Some f ->
          Alcotest.failf "%s failed on %s: %s" f.Runner.property
            (Case.summary f.Runner.shrunk)
            f.Runner.shrunk_message)
    report.Runner.props;
  Alcotest.(check bool) "report ok" true (Runner.ok report)

(* Regression guard: the registered property list is part of the
   tool's contract (CI selects properties by name, cram goldens pin the
   quick run). Adding a property must update this golden deliberately;
   losing one must never pass silently. *)
let test_property_list_golden () =
  let golden =
    [
      "instance-validation";
      "msm-ratio";
      "msm-ext-ratio";
      "msm-determinism";
      "mass-accumulation";
      "relabel-invariance";
      "monotone-in-p";
      "exact-vs-mc";
      "leapfrog-vs-naive";
      "lanes-vs-exact";
      "parallel-vs-seeded";
      "serialize-roundtrip";
      "obs-mass-trace";
      "split-merge";
      "shard-heal";
      "improved-validity";
      "improved-ratio";
      "lzf-validity";
      "fixed-validity";
      "churn-mask";
      "churn-monotone";
    ]
  in
  let names = List.map (fun p -> p.Property.name) Registry.visible in
  Alcotest.(check (list string)) "visible properties (ordered)" golden names;
  (* Hidden properties stay findable but out of the default run. *)
  Alcotest.(check bool)
    "demo-broken registered but hidden" true
    (Registry.find "demo-broken" <> None
    && not (List.exists (fun p -> p.Property.name = "demo-broken") Registry.visible))

let test_demo_broken_shrinks_and_replays () =
  let prop = find "demo-broken" in
  let report = Runner.run_property ~seed:42 ~count:30 prop in
  match report.Runner.failure with
  | None -> Alcotest.fail "demo-broken must produce a counterexample"
  | Some f ->
      (* demo-broken fails iff n > 2, so the minimum is exactly 3 jobs,
         and nothing stops the shrinker from reaching 1 machine and an
         empty dag. *)
      Alcotest.(check int) "shrunk to 3 jobs" 3 (Case.n f.Runner.shrunk);
      Alcotest.(check int) "shrunk to 1 machine" 1 (Case.m f.Runner.shrunk);
      Alcotest.(check (list (pair int int)))
        "shrunk to no edges" [] f.Runner.shrunk.Case.edges;
      Alcotest.(check bool) "shrinking did work" true (f.Runner.shrink_steps > 0);
      let line = Runner.repro_json f in
      (match Runner.replay line with
      | Error msg -> Alcotest.failf "repro line did not parse: %s" msg
      | Ok (prop', case') ->
          Alcotest.(check string)
            "replay finds the property" prop.Property.name prop'.Property.name;
          Alcotest.(check bool)
            "replay reconstructs the case bit-for-bit" true
            (Case.equal f.Runner.shrunk case');
          (match prop'.Property.check case' with
          | Property.Fail _ -> ()
          | Property.Pass | Property.Skip _ ->
              Alcotest.fail "replayed case no longer fails"))

let test_replay_rejects_garbage () =
  let bad line =
    match Runner.replay line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" line
  in
  bad "not json";
  bad "{\"seed\":1,\"case\":{\"n\":1,\"m\":1,\"p\":[[1]],\"edges\":[],\"aux\":0}}";
  bad "{\"property\":\"no-such\",\"seed\":1,\"case\":{\"n\":1,\"m\":1,\"p\":[[1]],\"edges\":[],\"aux\":0}}";
  (* structurally fine JSON, but the case is invalid: p out of range *)
  bad
    "{\"property\":\"msm-ratio\",\"seed\":1,\"case\":{\"n\":1,\"m\":1,\"p\":[[2]],\"edges\":[],\"aux\":0}}"

let test_case_json_roundtrip () =
  let rng = Rng.create 99 in
  for _ = 1 to 60 do
    let case = Gen.case (Rng.split rng) Gen.default in
    match Case.of_json (Case.to_json case) with
    | Error msg -> Alcotest.failf "roundtrip failed: %s" msg
    | Ok case' ->
        Alcotest.(check bool) "roundtrip equal" true (Case.equal case case')
  done;
  (* Floats that lose bits under naive short printing. *)
  let case =
    Case.make
      ~p:[| [| 0.1; 1e-300; 0.30000000000000004; 1. /. 3. |] |]
      ~edges:[ (0, 2); (1, 3) ] ~aux_seed:123
  in
  match Case.of_json (Case.to_json case) with
  | Error msg -> Alcotest.failf "awkward floats: %s" msg
  | Ok case' ->
      Alcotest.(check bool) "bit-exact floats" true (Case.equal case case')

let test_shrink_candidates_valid () =
  let rng = Rng.create 5 in
  for _ = 1 to 40 do
    let case = Gen.case (Rng.split rng) Gen.small in
    Alcotest.(check bool) "generated case valid" true (Case.is_valid case);
    Seq.iter
      (fun c ->
        Alcotest.(check bool) "shrink candidate valid" true (Case.is_valid c))
      (Gen.shrink case)
  done

let test_case_seed_derivation () =
  let s a b = Runner.case_seed ~seed:a ~name:b in
  Alcotest.(check bool)
    "varies with index" true
    (s 42 "msm-ratio" ~index:0 <> s 42 "msm-ratio" ~index:1);
  Alcotest.(check bool)
    "varies with property name" true
    (s 42 "msm-ratio" ~index:0 <> s 42 "msm-ext-ratio" ~index:0);
  Alcotest.(check bool)
    "varies with master seed" true
    (s 42 "msm-ratio" ~index:0 <> s 43 "msm-ratio" ~index:0);
  Alcotest.(check bool)
    "non-negative (usable as an Rng seed)" true
    (s 42 "msm-ratio" ~index:0 >= 0)

(* Extra randomized coverage for the leapfrog/naive distribution
   equivalence beyond the pinned cram/CI seeds: fresh master seeds mean
   fresh dags, probability styles and oblivious schedules. *)
let test_leapfrog_vs_naive_fresh_seeds () =
  let prop = find "leapfrog-vs-naive" in
  List.iter
    (fun seed ->
      let r = Runner.run_property ~seed ~count:6 prop in
      match r.Runner.failure with
      | None -> ()
      | Some f ->
          Alcotest.failf "seed %d: %s (shrunk: %s)" seed f.Runner.message
            (Case.summary f.Runner.shrunk))
    [ 2026; 31337 ]

let () =
  Alcotest.run "check"
    [
      ( "registry",
        [
          Alcotest.test_case "green on a fresh seed" `Quick test_registry_green;
          Alcotest.test_case "property list golden" `Quick
            test_property_list_golden;
          Alcotest.test_case "leapfrog vs naive, fresh seeds" `Quick
            test_leapfrog_vs_naive_fresh_seeds;
        ] );
      ( "failure pipeline",
        [
          Alcotest.test_case "demo-broken shrinks and replays" `Quick
            test_demo_broken_shrinks_and_replays;
          Alcotest.test_case "replay rejects garbage" `Quick
            test_replay_rejects_garbage;
        ] );
      ( "cases",
        [
          Alcotest.test_case "json roundtrip" `Quick test_case_json_roundtrip;
          Alcotest.test_case "shrink candidates valid" `Quick
            test_shrink_candidates_valid;
          Alcotest.test_case "case seed derivation" `Quick
            test_case_seed_derivation;
        ] );
    ]
