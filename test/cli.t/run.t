The CLI end to end: generate, inspect, decompose, plan and replay.

  $ suu gen -w figure1 -o fig1.inst --seed 1
  wrote fig1.inst: 3 independent jobs, 2 machines - the paper's Figure 1 illustration

  $ suu info -f fig1.inst
  jobs:      3
  machines:  2
  edges:     0
  class:     independent
  width:     3
  crit path: 1 jobs
  bounds:    rate=3.333 capacity=1.500 critical-path=3.333 lp=0.208 exact=- best=3.333

  $ suu exact -f fig1.inst
  TOPT = 7.079656 (7 states)

  $ suu gen -w grid-workflow -n 12 -m 3 --seed 2 -o flow.inst
  wrote flow.inst: 4-stage pipelined workflows (12 jobs) on a 3-machine grid

  $ suu decompose -f flow.inst
  class: chains
  chain decomposition: 3 blocks (bound 4)
    block 0: 0 | 4 | 8
    block 1: 1->2 | 5->6 | 9->10
    block 2: 3 | 7 | 11

  $ suu plan -f flow.inst -o flow.plan
  wrote flow.plan: 36 prefix steps, 12 cycle steps (suu-c)

The default "auto" races every applicable family: the adaptive column,
the paper's oblivious column, the improved family (suu-imp), and the
dynamic-environment index policies (suu-lzf, suu-fixed).

  $ suu solve -f fig1.inst --trials 50 --seed 3
  bounds: rate=3.333 capacity=1.500 critical-path=3.333 lp=0.208 exact=- best=3.333
  == expected makespan ==
  policy     E[makespan]   p95  ratio  timeouts
  ---------------------------------------------
  suu-i-alg  7.08 ±0.98    14   2.12         0
  lp-indep   11.58 ±2.25   27   3.47         0
  suu-imp    10.88 ±1.27   19   3.26         0
  suu-lzf    6.28 ±0.72    10   1.88         0
  suu-fixed  8.18 ±1.15    15   2.45         0

--algo improved selects the new family alone; it works on every DAG
class (here: chains, which the old oblivious column routes to suu-c).

  $ suu solve -f flow.inst --algo improved --trials 50 --seed 3
  bounds: rate=1.308 capacity=4.000 critical-path=4.478 lp=0.300 exact=- best=4.478
  == expected makespan ==
  policy   E[makespan]   p95  ratio  timeouts
  -------------------------------------------
  suu-imp  26.64 ±2.20   40   5.95         0

An unknown algorithm is a usage error, not a silent default.

  $ suu solve -f fig1.inst --algo nope
  suu: option '--algo': invalid value 'nope', expected one of 'auto',
       'adaptive', 'oblivious', 'improved', 'lzf', 'fixed' or 'baselines'
  Usage: suu solve [OPTION]…
  Try 'suu solve --help' or 'suu --help' for more information.
  [124]

A saved plan replays deterministically.

  $ suu simulate -f flow.inst --plan flow.plan --gantt --trials 10 --seed 4 | head -4
  m0  |000444000...111...222666222777333...0123456789ab
  m1  |888...555888555999999.........bbbbbb0123456789ab
  m2  |888...888...999...999...aaa.........0123456789ab
  done|** *  *     *     ** *  *  *  *                *
