(* The geometric-leapfrog fast path for oblivious schedules: the engine
   dispatches to it whenever a policy carries an [Oblivious_schedule]
   structure tag, and its makespans must be distribution-equivalent to
   the naive unit-step stepper's (they draw different RNG streams, so
   the equivalence is in law, not bit-for-bit). *)

module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious
module Policy = Suu_core.Policy
module Engine = Suu_sim.Engine
module Rng = Suu_prob.Rng

(* The same schedule with its structure hidden, forcing the engine onto
   the naive stepper — the reference implementation. *)
let naive_policy sched =
  Policy.stateless "naive" (fun state -> Oblivious.step sched state.Policy.step)

let small_inst () =
  Instance.create
    ~p:[| [| 0.5; 0.35; 0.8 |]; [| 0.25; 0.6; 0.4 |] |]
    ~dag:(Suu_dag.Dag.create ~n:3 [ (0, 2) ])

(* Prefix and cycle differ, the cycle has runs longer than one step, and
   the prefix assigns machines to the not-yet-eligible job 2 — together
   they exercise prefix runs, cycle wrap-around and eligibility
   clipping. *)
let small_sched () =
  Oblivious.create ~m:2
    ~cycle:[| [| 2; 1 |]; [| 2; 0 |]; [| 1; 2 |] |]
    [| [| 0; 2 |]; [| 1; 0 |] |]

let test_dispatch_tag () =
  let sched = small_sched () in
  Alcotest.(check bool)
    "of_oblivious is tagged" true
    (Policy.oblivious (Policy.of_oblivious "s" sched) <> None);
  Alcotest.(check bool)
    "stateless wrapper is not" true
    (Policy.oblivious (naive_policy sched) = None)

let test_certain_jobs_exact () =
  (* With p = 1 everywhere both paths are deterministic, so leapfrog and
     naive must agree exactly, not just in law: chain 0 -> 1 under a
     round-robin schedule finishes 0 at step 0 and 1 at step 1. *)
  let inst =
    Instance.create
      ~p:[| [| 1.0; 1.0 |] |]
      ~dag:(Suu_dag.Dag.create ~n:2 [ (0, 1) ])
  in
  let sched = Oblivious.create ~m:1 ~cycle:[| [| 0 |]; [| 1 |] |] [||] in
  let leap =
    Engine.estimate_makespan_seeded ~trials:5 ~seed:1 inst
      (Policy.of_oblivious "s" sched)
  in
  Alcotest.(check (array (float 0.)))
    "all makespans = 2"
    (Array.make 5 2.) leap.Engine.samples

let test_release_dates_respected () =
  (* One certain job released at step 3: every leapfrog trial must land
     exactly at makespan 4, like the naive stepper. *)
  let inst = Instance.independent ~p:[| [| 1.0 |] |] in
  let sched = Oblivious.create ~m:1 ~cycle:[| [| 0 |] |] [||] in
  let e =
    Engine.estimate_makespan_seeded ~releases:[| 3 |] ~trials:5 ~seed:2 inst
      (Policy.of_oblivious "s" sched)
  in
  Alcotest.(check (array (float 0.)))
    "waits for release"
    (Array.make 5 4.) e.Engine.samples

let test_never_completes () =
  (* Empty cycle and a job the prefix never assigns: the leapfrog path
     must report the truncation exactly like the naive stepper (all
     trials incomplete, none sampled). *)
  let inst = Instance.independent ~p:[| [| 0.9; 0.9 |] |] in
  let sched = Oblivious.finite ~m:1 [| [| 0 |]; [| 0 |] |] in
  let e =
    Engine.estimate_makespan_seeded ~max_steps:50 ~trials:10 ~seed:3 inst
      (Policy.of_oblivious "s" sched)
  in
  Alcotest.(check int) "all incomplete" 10 e.Engine.incomplete;
  Alcotest.(check int) "no samples" 0 (Array.length e.Engine.samples)

let test_cdf_matches_exact () =
  (* Distribution equivalence, proven against the exact Markov-chain
     analysis rather than a second Monte-Carlo run: the empirical
     makespan CDF of the leapfrog sampler must track
     [Exact_oblivious.cdf] uniformly. With 50k trials the DKW bound puts
     the sup-distance below 0.01 except with negligible probability. *)
  let inst = small_inst () in
  let sched = small_sched () in
  let horizon = 120 in
  let exact = Suu_sim.Exact_oblivious.cdf inst sched ~horizon in
  let trials = 50_000 in
  let e =
    Engine.estimate_makespan_seeded ~max_steps:horizon ~trials ~seed:17 inst
      (Policy.of_oblivious "s" sched)
  in
  (* Empirical P(T <= t), counting truncated trials as T > horizon. *)
  let counts = Array.make (horizon + 1) 0 in
  Array.iter
    (fun s ->
      let t = Float.to_int s in
      if t <= horizon then counts.(t) <- counts.(t) + 1)
    e.Engine.samples;
  let sup = ref 0. in
  let acc = ref 0 in
  for t = 0 to horizon do
    acc := !acc + counts.(t);
    let emp = Float.of_int !acc /. Float.of_int trials in
    let d = Float.abs (emp -. exact.(t)) in
    if d > !sup then sup := d
  done;
  Alcotest.(check bool)
    (Printf.sprintf "sup |empirical - exact| = %.4f < 0.015" !sup)
    true
    (!sup < 0.015)

let test_matches_naive_stats () =
  (* Seeded statistical cross-check on an instance too big for the exact
     chain: leapfrog and naive means over independent trial sets must
     agree within a generous CLT tolerance. *)
  let rng = Rng.create 2026 in
  let inst =
    Instance.independent
      ~p:(Array.init 4 (fun _ -> Array.init 16 (fun _ -> Rng.uniform rng 0.1 0.9)))
  in
  let sched = Suu_algo.Suu_i_obl.schedule inst in
  let trials = 3000 in
  let leap =
    Engine.estimate_makespan_seeded ~trials ~seed:31 inst
      (Policy.of_oblivious "leap" sched)
  in
  let naive =
    Engine.estimate_makespan_seeded ~trials ~seed:32 inst (naive_policy sched)
  in
  let diff =
    Float.abs
      (leap.Engine.stats.Suu_prob.Stats.mean
      -. naive.Engine.stats.Suu_prob.Stats.mean)
  in
  let tol =
    Float.max 0.15
      (4.
      *. (leap.Engine.stats.Suu_prob.Stats.sem
         +. naive.Engine.stats.Suu_prob.Stats.sem))
  in
  Alcotest.(check bool)
    (Printf.sprintf "means agree (diff %.3f, tol %.3f)" diff tol)
    true (diff < tol);
  Alcotest.(check int) "leapfrog completes" 0 leap.Engine.incomplete;
  Alcotest.(check int) "naive completes" 0 naive.Engine.incomplete

let () =
  Alcotest.run "leapfrog"
    [
      ( "semantics",
        [
          Alcotest.test_case "engine dispatch tag" `Quick test_dispatch_tag;
          Alcotest.test_case "certain jobs exact" `Quick
            test_certain_jobs_exact;
          Alcotest.test_case "release dates" `Quick
            test_release_dates_respected;
          Alcotest.test_case "truncation" `Quick test_never_completes;
        ] );
      ( "distribution equivalence",
        [
          Alcotest.test_case "empirical CDF = exact CDF" `Slow
            test_cdf_matches_exact;
          Alcotest.test_case "matches naive stepper stats" `Slow
            test_matches_naive_stats;
        ] );
    ]
