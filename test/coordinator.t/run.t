The sharding coordinator speaks the same line-JSON protocol as `suu
serve`, but fronts a fleet of worker shard processes: whole requests
route by consistent hashing on the result-cache key, and Monte-Carlo
requests with at least --split-threshold trials split into trial-range
sub-jobs fanned out across the fleet. Because the engine seeds each
trial independently, the merged answer is byte-identical to a single
service's — s1 below reproduces the exact numbers serve.t pins for the
same request against `suu serve`. The repeat s2 recomputes through the
shards' own caches (the merge is marked "cached":false either way),
byte-identical again; the sub-threshold solve and the info request
forward whole; a malformed line answers a structured error without
disturbing its neighbours; and responses leave in request order.

  $ cat > requests <<'EOF'
  > {"op":"ping","id":"p"}
  > {"op":"solve","id":"s1","algo":"adaptive","trials":64,"seed":3,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"solve","id":"s2","algo":"adaptive","trials":64,"seed":3,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"solve","id":"small","trials":8,"seed":3,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > this is not json
  > {"op":"info","id":"i","instance":"suu 1\nn 2 m 2\nedges 1\n0 1\nprobs\n0.9 0.5\n0.4 0.8"}
  > EOF

  $ suu coordinator --shards 2 --quiet < requests
  {"id":"p","status":"ok","pong":true,"shards":2,"shards_live":2}
  {"id":"s1","status":"ok","cached":false,"algo":"suu-i-alg","trials":64,"mean":1.296875,"ci95":0.120971365126,"p95":2,"incomplete":0}
  {"id":"s2","status":"ok","cached":false,"algo":"suu-i-alg","trials":64,"mean":1.296875,"ci95":0.120971365126,"p95":2,"incomplete":0}
  {"id":"small","status":"ok","cached":false,"algo":"suu-i-alg","trials":8,"mean":1.25,"ci95":0.320780298647,"p95":2,"incomplete":0}
  {"id":null,"status":"error","error":"parse: expected true at offset 0"}
  {"id":"i","status":"ok","class":"chains","jobs":2,"machines":2,"edges":1,"width":1,"critical_path":2,"bounds":{"rate":1,"capacity":1,"critical_path":2,"best":2}}

The coordinator's own accounting: a stats request is answered at the
coordinator, and because responses leave in request order, its snapshot
covers every request above it — 6 requests (5 ok, 1 parse error), 2
forwarded whole, 2 split into 8 sub-jobs each.

  $ echo '{"op":"stats","id":"z"}' | cat requests - | suu coordinator --shards 2 --quiet | tail -1 > stats.out
  $ grep -o '"shards":[0-9]*\|"shards_live":[0-9]*\|"requests":[0-9]*,\|"ok":[0-9]*,\|"errors":[0-9]*\|"forwards":[0-9]*\|"splits":[0-9]*\|"subjobs":[0-9]*' stats.out | head -8
  "shards":2
  "shards_live":2
  "requests":6,
  "ok":5,
  "errors":1
  "forwards":2
  "splits":2
  "subjobs":16
  $ rm stats.out

The merged shard telemetry: the stats pull reaches each worker on its
request FIFO, so over a forwards-only workload (no sub-job queue in
the way) the summed worker counters are exact — each solve got its one
ok somewhere in the fleet, and the fleet's engine ran all 24 trials.

  $ cat > forwards <<'EOF'
  > {"op":"solve","id":"a","trials":8,"seed":1,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"solve","id":"b","trials":8,"seed":2,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"solve","id":"c","trials":8,"seed":3,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"stats","id":"z"}
  > EOF
  $ suu coordinator --shards 2 --quiet < forwards | tail -1 > stats.out
  $ grep -o '"shard":{[^}]*}' stats.out | grep -o '"requests":[0-9]*\|"ok":[0-9]*\|"cache_misses":[0-9]*'
  "cache_misses":3
  "ok":3
  "requests":3
  $ grep -o '"engine_trials_total":[0-9]*' stats.out
  "engine_trials_total":24

Prometheus format merges the fleet into one exposition: the
coordinator's own counters under suu_coord_*, the summed worker
counters under suu_shard_*.

  $ head -3 forwards > promreq
  $ echo '{"op":"stats","id":"z","format":"prom"}' >> promreq
  $ suu coordinator --shards 2 --quiet < promreq | tail -1 > prom.out
  $ grep -o 'suu_shards [0-9][0-9]*\|suu_shards_live [0-9][0-9]*\|suu_coord_requests_total [0-9][0-9]*\|suu_coord_forwards_total [0-9][0-9]*\|suu_shard_requests_total [0-9][0-9]*\|suu_shard_ok_total [0-9][0-9]*' prom.out
  suu_shards 2
  suu_shards_live 2
  suu_coord_requests_total 3
  suu_coord_forwards_total 3
  suu_shard_ok_total 3
  suu_shard_requests_total 3

The TCP transport carries the identical protocol: workers are spawned
with --listen 127.0.0.1:0, announce their bound port, and the
coordinator dials them. The response stream reproduces the pipe
transport's pinned bytes exactly.

  $ suu coordinator --shards 2 --transport tcp --quiet < requests
  {"id":"p","status":"ok","pong":true,"shards":2,"shards_live":2}
  {"id":"s1","status":"ok","cached":false,"algo":"suu-i-alg","trials":64,"mean":1.296875,"ci95":0.120971365126,"p95":2,"incomplete":0}
  {"id":"s2","status":"ok","cached":false,"algo":"suu-i-alg","trials":64,"mean":1.296875,"ci95":0.120971365126,"p95":2,"incomplete":0}
  {"id":"small","status":"ok","cached":false,"algo":"suu-i-alg","trials":8,"mean":1.25,"ci95":0.320780298647,"p95":2,"incomplete":0}
  {"id":null,"status":"error","error":"parse: expected true at offset 0"}
  {"id":"i","status":"ok","class":"chains","jobs":2,"machines":2,"edges":1,"width":1,"critical_path":2,"bounds":{"rate":1,"capacity":1,"critical_path":2,"best":2}}

Worker loss, injected deterministically, in explicit degrade-only mode
(--respawn-budget 0 preserves the pre-supervision fleet): with kill=1
every dispatch SIGKILLs its target shard first, so the fleet is
murdered within the first request's retries and every request still
gets exactly one structured answer — degraded ("shard_lost" once the
retry budget is spent, "unavailable" once no shard remains), never
dropped, never hung. The seed is pinned so this session is stable
under the CI fault-seed matrix; the shutdown dump's shard line shows
the carnage.

  $ suu coordinator --shards 2 --retries 1 --respawn-budget 0 --fault-spec 'seed=3,kill=1' < requests > chaos.out 2> chaos.dump
  $ wc -l < chaos.out
  6
  $ grep -c '"status":"error"' chaos.out
  5
  $ grep -c '"reason":"shard_lost"\|"reason":"unavailable"\|"error":"parse' chaos.out
  5
  $ grep '^shards:' chaos.dump
  shards: 2 spawned, 0 live at shutdown, 2 lost, 0 respawned

With a respawn budget, the same chaos heals instead of degrading: a
killed shard's in-flight work re-dispatches to the survivor at once
(fenced to the dead epoch, so any late answers are discarded), the
supervisor respawns the shard after its backoff, and the rejoined
worker re-enters the ring. Every request answers ok, and at shutdown
the fleet is back at full strength with every death matched by a
respawn — the sed below only prints when live = 2 and lost equals
respawned, at least one of each.

  $ cat > healreq <<'EOF'
  > {"op":"solve","id":"a","trials":8,"seed":1,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"solve","id":"b","trials":8,"seed":2,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"solve","id":"c","trials":8,"seed":3,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"solve","id":"d","trials":8,"seed":4,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"solve","id":"e","trials":8,"seed":5,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > {"op":"solve","id":"f","trials":8,"seed":6,"instance":"suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"}
  > EOF
  $ suu coordinator --shards 2 --retries 8 --respawn-budget 4 --fault-spec 'seed=3,kill=0.35' < healreq > heal.out 2> heal.dump
  $ grep -c '"status":"ok"' heal.out
  6
  $ sed -nE 's/^shards: 2 spawned, 2 live at shutdown, ([1-9][0-9]*) lost, \1 respawned$/healed/p' heal.dump
  healed

And the healed responses are byte-identical to an undisturbed fleet's:
exactly-once, in order, with no ghost of the chaos in the payloads.

  $ suu coordinator --shards 2 --quiet < healreq > calm.out
  $ cmp calm.out heal.out

The supervision telemetry rides the merged Prometheus exposition: the
respawn and fencing counters and the per-shard epoch gauge (each
slot's incarnation — its death count) are always exported, zero on an
undisturbed fleet.

  $ head -3 healreq > promreq2
  $ echo '{"op":"stats","id":"z","format":"prom"}' >> promreq2
  $ suu coordinator --shards 2 --quiet < promreq2 | tail -1 > prom2.out
  $ grep -o 'suu_shard_respawns_total [0-9][0-9]*\|suu_coord_suspect_transitions_total [0-9][0-9]*\|suu_coord_fenced_replies_total [0-9][0-9]*\|suu_shard_epoch{shard=\\"[0-9]*\\"} [0-9][0-9]*' prom2.out
  suu_shard_respawns_total 0
  suu_coord_suspect_transitions_total 0
  suu_coord_fenced_replies_total 0
  suu_shard_epoch{shard=\"0\"} 0
  suu_shard_epoch{shard=\"1\"} 0

A malformed fault spec is rejected up front.

  $ suu coordinator --fault-spec 'kill=2' < /dev/null
  suu coordinator: fault-spec: kill: rate 2 not in [0,1]
  [2]
