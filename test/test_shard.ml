(* The sharding layer: consistent-hash ring, trial-range planning, and
   the coordinator's end-to-end contract over in-process workers — the
   merged split response is byte-identical to a single service, every
   admitted request is answered exactly once in order, and worker loss
   degrades instead of hanging. *)

module Ring = Suu_shard.Ring
module Dispatch = Suu_shard.Dispatch
module Client = Suu_shard.Client
module Coordinator = Suu_shard.Coordinator
module Service = Suu_service.Service
module Json = Suu_service.Json
module Fault = Suu_service.Fault

(* CI sweeps this seed over the chaos test's structural assertions. *)
let chaos_seed =
  Option.bind (Sys.getenv_opt "SUU_FAULT_SEED") int_of_string_opt
  |> Option.value ~default:1

let instance_text = "suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"
let escaped text = String.concat "\\n" (String.split_on_char '\n' text)

let solve ?(trials = 40) ?(seed = 5) id =
  Printf.sprintf
    {|{"op":"solve","id":"%s","trials":%d,"seed":%d,"instance":"%s"}|} id
    trials seed (escaped instance_text)

let status line =
  match Json.of_string line with
  | Ok v -> Option.bind (Json.member "status" v) Json.to_str
  | Error _ -> None

let field name line =
  match Json.of_string line with
  | Ok v -> Json.member name v
  | Error _ -> None

let worker_config =
  {
    Service.default_config with
    Service.workers = 1;
    queue_capacity = 64;
    cache_capacity = 16;
    default_trials = 40;
    default_seed = 5;
    default_deadline_ms = None;
    fault = Fault.none;
  }

let spawn_local i = Client.local ~id:i worker_config

let coord_config ~shards =
  {
    Coordinator.default_config with
    Coordinator.shards;
    split_threshold = 16;
    sub_inflight = 2;
    retries = 2;
    retry_backoff_ms = 0.1;
    (* The heartbeat races run_lines' short lifetimes; tests that want
       it opt in. *)
    heartbeat_ms = None;
    default_trials = 40;
    default_seed = 5;
  }

(* --- Ring --- *)

let keys = List.init 200 (fun k -> Printf.sprintf "solve:key-%d" k)

let test_ring_determinism () =
  let ring = Ring.create [ 0; 1; 2; 3 ] in
  let live _ = true in
  List.iter
    (fun key ->
      let a = Ring.route ring ~live key in
      let b = Ring.route ring ~live key in
      Alcotest.(check bool) "same key, same shard" true (a = b);
      match a with
      | Some s -> Alcotest.(check bool) "in range" true (s >= 0 && s < 4)
      | None -> Alcotest.fail "route lost a key with all shards live")
    keys;
  let ring' = Ring.create [ 0; 1; 2; 3 ] in
  List.iter
    (fun key ->
      Alcotest.(check bool) "rebuilt ring routes identically" true
        (Ring.route ring ~live key = Ring.route ring' ~live key))
    keys

let test_ring_coverage () =
  let ring = Ring.create [ 0; 1; 2; 3 ] in
  let hits = Array.make 4 0 in
  List.iter
    (fun key ->
      match Ring.route ring ~live:(fun _ -> true) key with
      | Some s -> hits.(s) <- hits.(s) + 1
      | None -> Alcotest.fail "unroutable key")
    keys;
  Array.iteri
    (fun s n ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d owns some keys" s)
        true (n > 0))
    hits

let test_ring_death_moves_only_lost_arcs () =
  let ring = Ring.create [ 0; 1; 2; 3 ] in
  let all _ = true in
  let dead = 2 in
  let survivors s = s <> dead in
  List.iter
    (fun key ->
      let before = Ring.route ring ~live:all key in
      let after = Ring.route ring ~live:survivors key in
      match (before, after) with
      | Some b, Some a when b <> dead ->
          Alcotest.(check int) "survivor keys do not move" b a
      | Some b, Some a ->
          Alcotest.(check bool) "lost arc lands on a survivor" true
            (b = dead && a <> dead)
      | _ -> Alcotest.fail "route lost a key with survivors live")
    keys;
  Alcotest.(check (option int)) "no live shard -> None" None
    (Ring.route ring ~live:(fun _ -> false) "solve:key-0")

let test_ring_invalid_args () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "accepted invalid ring arguments"
  in
  raises (fun () -> Ring.create []);
  raises (fun () -> Ring.create ~replicas:0 [ 0 ])

(* --- Dispatch --- *)

let test_dispatch_plan_partitions () =
  List.iter
    (fun (trials, chunk) ->
      let ranges = Dispatch.plan ~trials ~chunk in
      (* Contiguous, increasing, covering [0, trials), widths in
         [1, chunk]. *)
      let rec walk at = function
        | [] -> Alcotest.(check int) "covers all trials" trials at
        | (lo, hi) :: rest ->
            Alcotest.(check int) "contiguous" at lo;
            Alcotest.(check bool) "non-empty, bounded width" true
              (hi > lo && hi - lo <= chunk);
            walk hi rest
      in
      walk 0 ranges)
    [ (40, 8); (41, 8); (1, 8); (7, 100); (100, 1) ]

let test_dispatch_auto_chunk () =
  List.iter
    (fun (trials, shards) ->
      let chunk = Dispatch.auto_chunk ~trials ~shards in
      Alcotest.(check bool) "positive" true (chunk >= 1);
      let jobs = List.length (Dispatch.plan ~trials ~chunk) in
      (* About four chunks per shard: enough jobs to rebalance, never
         more than trials. *)
      Alcotest.(check bool) "work to steal" true
        (jobs >= min trials (2 * shards));
      Alcotest.(check bool) "bounded" true (jobs <= min trials (8 * shards)))
    [ (400, 2); (400, 4); (40, 2); (3, 8); (1, 1) ]

let test_dispatch_invalid_args () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "accepted invalid dispatch arguments"
  in
  raises (fun () -> Dispatch.plan ~trials:0 ~chunk:4);
  raises (fun () -> Dispatch.plan ~trials:4 ~chunk:0);
  raises (fun () -> Dispatch.auto_chunk ~trials:0 ~shards:2);
  raises (fun () -> Dispatch.auto_chunk ~trials:4 ~shards:0)

(* --- Coordinator --- *)

let test_coordinator_matches_single_service () =
  (* Split requests (trials >= threshold), forwarded ones (below), and
     repeats (cache hits on the owning shard): the coordinator's
     response stream is byte-identical to one service's. *)
  let lines =
    [
      solve ~trials:40 ~seed:5 "a";
      solve ~trials:40 ~seed:7 "b";
      solve ~trials:8 ~seed:5 "small";
      solve ~trials:40 ~seed:5 "a2";
      solve ~trials:100 ~seed:11 "c";
    ]
  in
  let single, _ = Service.run_lines worker_config lines in
  let sharded, report =
    Coordinator.run_lines (coord_config ~shards:2) ~spawn:spawn_local lines
  in
  Alcotest.(check int) "one response per request" (List.length lines)
    (List.length sharded);
  List.iteri
    (fun k (want, got) ->
      (* A repeat can be a cache hit on its owning shard but a miss in
         the single service's (shared) cache or vice versa; everything
         else — including every float — must match to the byte. *)
      let scrub line =
        let needle = {|"cached":true|} in
        let n = String.length needle in
        let rec find i =
          if i + n > String.length line then line
          else if String.sub line i n = needle then
            String.sub line 0 i ^ {|"cached":false|}
            ^ String.sub line (i + n) (String.length line - i - n)
          else find (i + 1)
        in
        find 0
      in
      Alcotest.(check string)
        (Printf.sprintf "response %d byte-identical" k)
        (scrub want) (scrub got))
    (List.combine single sharded);
  Alcotest.(check int) "all answered ok" (List.length lines)
    report.Coordinator.metrics.Suu_service.Metrics.ok;
  Alcotest.(check bool) "large requests split" true
    (report.Coordinator.splits >= 3);
  Alcotest.(check bool) "small request forwarded" true
    (report.Coordinator.forwards >= 1);
  Alcotest.(check int) "no shard lost" 2 report.Coordinator.shards_live

let test_coordinator_ping_and_order () =
  let n = 12 in
  let lines =
    {|{"op":"ping","id":"p"}|}
    :: List.init n (fun k -> solve ~seed:(k + 1) (Printf.sprintf "r%d" k))
  in
  let out, _ =
    Coordinator.run_lines (coord_config ~shards:3) ~spawn:spawn_local lines
  in
  Alcotest.(check int) "every request answered" (n + 1) (List.length out);
  Alcotest.(check (option bool)) "pong" (Some true)
    (Option.bind (field "pong" (List.nth out 0)) Json.to_bool);
  Alcotest.(check (option int)) "ping reports shards" (Some 3)
    (Option.bind (field "shards" (List.nth out 0)) Json.to_int);
  Alcotest.(check (option int)) "ping reports liveness" (Some 3)
    (Option.bind (field "shards_live" (List.nth out 0)) Json.to_int);
  (* Responses leave in request order: the id sequence is the request
     sequence. *)
  List.iteri
    (fun k line ->
      let want = if k = 0 then "p" else Printf.sprintf "r%d" (k - 1) in
      Alcotest.(check (option string)) "in request order" (Some want)
        (Option.bind (field "id" line) Json.to_str))
    out

let test_coordinator_stats_merge () =
  let lines =
    [
      solve ~trials:8 ~seed:5 "a";
      solve ~trials:8 ~seed:7 "b";
      solve ~trials:8 ~seed:9 "c";
      {|{"op":"stats","id":"st"}|};
    ]
  in
  let out, _ =
    Coordinator.run_lines (coord_config ~shards:2) ~spawn:spawn_local lines
  in
  let stats = List.nth out 3 in
  Alcotest.(check (option string)) "stats ok" (Some "ok") (status stats);
  (* The snapshot precedes the stats request's own completion: it
     covers the three solves, not itself. *)
  Alcotest.(check (option int)) "coordinator requests" (Some 3)
    (Option.bind (field "requests" stats) Json.to_int);
  Alcotest.(check (option int)) "all shards reporting" (Some 2)
    (Option.bind (field "shards_live" stats) Json.to_int);
  (* The shard object sums the workers' service counters: three solves
     were forwarded (below the split threshold), however they were
     spread over the fleet. *)
  let shard name =
    Option.bind (field "shard" stats) (fun o ->
        Option.bind (Json.member name o) Json.to_int)
  in
  Alcotest.(check (option int)) "summed worker oks" (Some 3) (shard "ok");
  Alcotest.(check (option int)) "summed worker requests" (Some 3)
    (shard "requests");
  (* And the engine object sums the workers' engine counters. In-process
     workers share the process-global Obs registry (unlike subprocess
     workers, where each shard reports its own process), so only a lower
     bound is meaningful here: the 3 x 8 trials ran somewhere. *)
  let engine name =
    Option.bind (field "engine" stats) (fun o ->
        Option.bind (Json.member name o) Json.to_int)
  in
  Alcotest.(check bool) "summed engine trials" true
    (match engine "engine_trials_total" with
    | Some n -> n >= 24
    | None -> false)

let test_coordinator_survives_worker_loss () =
  (* Chaos: kill fires per dispatch with the CI-swept seed. Whatever
     the placement, the structural contract holds — every request is
     answered exactly once, in order, each ok response is a real
     estimate and each error names a reason; nothing hangs. *)
  let n = 16 in
  let lines =
    List.init n (fun k ->
        solve ~trials:40 ~seed:(k + 1) (Printf.sprintf "r%d" k))
  in
  let cfg =
    {
      (coord_config ~shards:3) with
      Coordinator.fault = { Fault.none with seed = chaos_seed; kill = 0.15 };
    }
  in
  let out, report = Coordinator.run_lines cfg ~spawn:spawn_local lines in
  Alcotest.(check int) "every request answered" n (List.length out);
  List.iteri
    (fun k line ->
      Alcotest.(check (option string)) "in request order"
        (Some (Printf.sprintf "r%d" k))
        (Option.bind (field "id" line) Json.to_str);
      match status line with
      | Some "ok" ->
          Alcotest.(check bool) "ok carries a mean" true
            (field "mean" line <> None)
      | Some "error" ->
          Alcotest.(check bool) "error names a reason" true
            (match Option.bind (field "reason" line) Json.to_str with
            | Some ("shard_lost" | "unavailable") -> true
            | _ -> false)
      | s ->
          Alcotest.failf "response %d has unexpected status %s" k
            (Option.value ~default:"<none>" s))
    out;
  let m = report.Coordinator.metrics in
  Alcotest.(check int) "accounting covers every request" n
    m.Suu_service.Metrics.requests;
  Alcotest.(check int) "ok + errors = requests" n
    (m.Suu_service.Metrics.ok + m.Suu_service.Metrics.errors);
  Alcotest.(check bool) "deaths within the fleet" true
    (report.Coordinator.shard_deaths <= 3)

let test_coordinator_all_shards_lost () =
  (* kill=1 murders the only shard on the first dispatch; retries are
     exhausted and every later request finds no live shard. Degraded,
     answered, not hung. *)
  let n = 5 in
  let lines =
    List.init n (fun k ->
        solve ~trials:8 ~seed:(k + 1) (Printf.sprintf "r%d" k))
  in
  let cfg =
    {
      (coord_config ~shards:1) with
      Coordinator.retries = 1;
      fault = { Fault.none with seed = 1; kill = 1.0 };
    }
  in
  let out, report = Coordinator.run_lines cfg ~spawn:spawn_local lines in
  Alcotest.(check int) "every request answered" n (List.length out);
  List.iter
    (fun line ->
      Alcotest.(check (option string)) "all degraded to errors"
        (Some "error") (status line))
    out;
  Alcotest.(check int) "the fleet is gone" 0 report.Coordinator.shards_live;
  Alcotest.(check int) "death counted once" 1 report.Coordinator.shard_deaths

let () =
  Alcotest.run "shard"
    [
      ( "ring",
        [
          Alcotest.test_case "determinism" `Quick test_ring_determinism;
          Alcotest.test_case "coverage" `Quick test_ring_coverage;
          Alcotest.test_case "death moves only lost arcs" `Quick
            test_ring_death_moves_only_lost_arcs;
          Alcotest.test_case "invalid args" `Quick test_ring_invalid_args;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "plan partitions" `Quick
            test_dispatch_plan_partitions;
          Alcotest.test_case "auto chunk" `Quick test_dispatch_auto_chunk;
          Alcotest.test_case "invalid args" `Quick
            test_dispatch_invalid_args;
        ] );
      ( "coordinator",
        [
          Alcotest.test_case "byte-identical to single service" `Quick
            test_coordinator_matches_single_service;
          Alcotest.test_case "ping + response order" `Quick
            test_coordinator_ping_and_order;
          Alcotest.test_case "merged stats" `Quick
            test_coordinator_stats_merge;
          Alcotest.test_case "survives worker loss" `Quick
            test_coordinator_survives_worker_loss;
          Alcotest.test_case "all shards lost" `Quick
            test_coordinator_all_shards_lost;
        ] );
    ]
