(* The sharding layer: consistent-hash ring, trial-range planning, and
   the coordinator's end-to-end contract — the merged split response is
   byte-identical to a single service, every admitted request is
   answered exactly once in order, worker loss degrades instead of
   hanging, and (new in the self-healing fleet) killed shards respawn,
   rejoin the ring, and their late zombie answers are fenced off by
   epoch. The coordinator suite runs twice: once over in-process pipe
   workers and once over in-test TCP workers, so both transports carry
   the same contract. *)

module Ring = Suu_shard.Ring
module Dispatch = Suu_shard.Dispatch
module Client = Suu_shard.Client
module Coordinator = Suu_shard.Coordinator
module Service = Suu_service.Service
module Tcp = Suu_service.Tcp
module Json = Suu_service.Json
module Fault = Suu_service.Fault

(* CI sweeps this seed over the chaos tests' structural assertions. *)
let chaos_seed =
  Option.bind (Sys.getenv_opt "SUU_FAULT_SEED") int_of_string_opt
  |> Option.value ~default:1

let instance_text = "suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"
let escaped text = String.concat "\\n" (String.split_on_char '\n' text)

let solve ?(trials = 40) ?(seed = 5) id =
  Printf.sprintf
    {|{"op":"solve","id":"%s","trials":%d,"seed":%d,"instance":"%s"}|} id
    trials seed (escaped instance_text)

let status line =
  match Json.of_string line with
  | Ok v -> Option.bind (Json.member "status" v) Json.to_str
  | Error _ -> None

let field name line =
  match Json.of_string line with
  | Ok v -> Json.member name v
  | Error _ -> None

(* A repeat can be a cache hit on its owning shard but a miss in a
   single service's (shared) cache — and a respawned or reconnected
   worker restarts its cache cold — so the cached flag is the one field
   byte-identity comparisons may scrub. Everything else, including
   every float, must match to the byte. *)
let scrub line =
  let needle = {|"cached":true|} in
  let n = String.length needle in
  let rec find i =
    if i + n > String.length line then line
    else if String.sub line i n = needle then
      String.sub line 0 i ^ {|"cached":false|}
      ^ String.sub line (i + n) (String.length line - i - n)
    else find (i + 1)
  in
  find 0

let check_byte_identical ~msg want got =
  Alcotest.(check int) (msg ^ ": one response per request")
    (List.length want) (List.length got);
  List.iteri
    (fun k (w, g) ->
      Alcotest.(check string)
        (Printf.sprintf "%s: response %d byte-identical" msg k)
        (scrub w) (scrub g))
    (List.combine want got)

let worker_config =
  {
    Service.default_config with
    Service.workers = 1;
    queue_capacity = 64;
    cache_capacity = 16;
    default_trials = 40;
    default_seed = 5;
    default_deadline_ms = None;
    fault = Fault.none;
  }

let spawn_local i = Client.local ~id:i worker_config

(* An in-test TCP worker: a listener on a kernel-picked port, one
   serving domain, and the client's connecting side dialled at it. One
   connection per worker is enough here (faults that force reconnects
   get their own servers below); the server exits once its connection
   drains, and reap joins the domain. *)
let spawn_tcp i =
  match Tcp.listen "127.0.0.1:0" with
  | Error e -> failwith e
  | Ok (lsock, addr) ->
      let srv =
        Domain.spawn (fun () ->
            Tcp.serve_connections ~max_conns:1
              ~on_report:(fun _ -> ())
              worker_config lsock)
      in
      let p = Client.tcp_peer ~addr () in
      Client.custom ~id:i
        {
          p with
          Client.reap =
            (fun () ->
              p.Client.reap ();
              Domain.join srv);
        }

let coord_config ~shards =
  {
    Coordinator.default_config with
    Coordinator.shards;
    split_threshold = 16;
    sub_inflight = 2;
    retries = 2;
    retry_backoff_ms = 0.1;
    (* The heartbeat races run_lines' short lifetimes; tests that want
       it opt in. Likewise respawning: the base suite pins the PR-6
       degrade-only fleet, the healing tests opt in. *)
    heartbeat_ms = None;
    respawn_budget = 0;
    default_trials = 40;
    default_seed = 5;
  }

(* --- Ring --- *)

let keys = List.init 200 (fun k -> Printf.sprintf "solve:key-%d" k)

let test_ring_determinism () =
  let ring = Ring.create [ 0; 1; 2; 3 ] in
  let live _ = true in
  List.iter
    (fun key ->
      let a = Ring.route ring ~live key in
      let b = Ring.route ring ~live key in
      Alcotest.(check bool) "same key, same shard" true (a = b);
      match a with
      | Some s -> Alcotest.(check bool) "in range" true (s >= 0 && s < 4)
      | None -> Alcotest.fail "route lost a key with all shards live")
    keys;
  let ring' = Ring.create [ 0; 1; 2; 3 ] in
  List.iter
    (fun key ->
      Alcotest.(check bool) "rebuilt ring routes identically" true
        (Ring.route ring ~live key = Ring.route ring' ~live key))
    keys

let test_ring_coverage () =
  let ring = Ring.create [ 0; 1; 2; 3 ] in
  let hits = Array.make 4 0 in
  List.iter
    (fun key ->
      match Ring.route ring ~live:(fun _ -> true) key with
      | Some s -> hits.(s) <- hits.(s) + 1
      | None -> Alcotest.fail "unroutable key")
    keys;
  Array.iteri
    (fun s n ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d owns some keys" s)
        true (n > 0))
    hits

let test_ring_death_moves_only_lost_arcs () =
  let ring = Ring.create [ 0; 1; 2; 3 ] in
  let all _ = true in
  let dead = 2 in
  let survivors s = s <> dead in
  List.iter
    (fun key ->
      let before = Ring.route ring ~live:all key in
      let after = Ring.route ring ~live:survivors key in
      match (before, after) with
      | Some b, Some a when b <> dead ->
          Alcotest.(check int) "survivor keys do not move" b a
      | Some b, Some a ->
          Alcotest.(check bool) "lost arc lands on a survivor" true
            (b = dead && a <> dead)
      | _ -> Alcotest.fail "route lost a key with survivors live")
    keys;
  Alcotest.(check (option int)) "no live shard -> None" None
    (Ring.route ring ~live:(fun _ -> false) "solve:key-0")

let test_ring_rejoin_restores_routes () =
  (* Routing consults [live] at route time, so a respawned shard
     re-enters the ring simply by answering [live] again — and because
     death moved only the dead shard's arcs, rejoining restores exactly
     the original placement. This is what makes the coordinator's
     rejoin safe: no rebuild, no resharding storm. *)
  let ring = Ring.create [ 0; 1; 2 ] in
  let dead = ref (-1) in
  let live s = s <> !dead in
  let before = List.map (fun key -> Ring.route ring ~live key) keys in
  dead := 1;
  List.iter2
    (fun key b ->
      match (Ring.route ring ~live key, b) with
      | Some a, Some b ->
          Alcotest.(check bool) "dead shard unroutable" true (a <> 1);
          if b <> 1 then Alcotest.(check int) "survivor keys stable" b a
      | _ -> Alcotest.fail "route lost a key with survivors live")
    keys before;
  dead := -1;
  List.iter2
    (fun key b ->
      Alcotest.(check (option int)) "rejoin restores the original route" b
        (Ring.route ring ~live key))
    keys before

let test_ring_invalid_args () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "accepted invalid ring arguments"
  in
  raises (fun () -> Ring.create []);
  raises (fun () -> Ring.create ~replicas:0 [ 0 ])

(* --- Dispatch --- *)

let test_dispatch_plan_partitions () =
  List.iter
    (fun (trials, chunk) ->
      let ranges = Dispatch.plan ~trials ~chunk in
      (* Contiguous, increasing, covering [0, trials), widths in
         [1, chunk]. *)
      let rec walk at = function
        | [] -> Alcotest.(check int) "covers all trials" trials at
        | (lo, hi) :: rest ->
            Alcotest.(check int) "contiguous" at lo;
            Alcotest.(check bool) "non-empty, bounded width" true
              (hi > lo && hi - lo <= chunk);
            walk hi rest
      in
      walk 0 ranges)
    [ (40, 8); (41, 8); (1, 8); (7, 100); (100, 1) ]

let test_dispatch_auto_chunk () =
  List.iter
    (fun (trials, shards) ->
      let chunk = Dispatch.auto_chunk ~trials ~shards in
      Alcotest.(check bool) "positive" true (chunk >= 1);
      let jobs = List.length (Dispatch.plan ~trials ~chunk) in
      (* About four chunks per shard: enough jobs to rebalance, never
         more than trials. *)
      Alcotest.(check bool) "work to steal" true
        (jobs >= min trials (2 * shards));
      Alcotest.(check bool) "bounded" true (jobs <= min trials (8 * shards)))
    [ (400, 2); (400, 4); (40, 2); (3, 8); (1, 1) ]

let test_dispatch_invalid_args () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "accepted invalid dispatch arguments"
  in
  raises (fun () -> Dispatch.plan ~trials:0 ~chunk:4);
  raises (fun () -> Dispatch.plan ~trials:4 ~chunk:0);
  raises (fun () -> Dispatch.auto_chunk ~trials:0 ~shards:2);
  raises (fun () -> Dispatch.auto_chunk ~trials:4 ~shards:0)

(* --- Coordinator (parameterized over the shard transport) --- *)

let test_coordinator_matches_single_service spawn () =
  (* Split requests (trials >= threshold), forwarded ones (below), and
     repeats (cache hits on the owning shard): the coordinator's
     response stream is byte-identical to one service's. *)
  let lines =
    [
      solve ~trials:40 ~seed:5 "a";
      solve ~trials:40 ~seed:7 "b";
      solve ~trials:8 ~seed:5 "small";
      solve ~trials:40 ~seed:5 "a2";
      solve ~trials:100 ~seed:11 "c";
    ]
  in
  let single, _ = Service.run_lines worker_config lines in
  let sharded, report =
    Coordinator.run_lines (coord_config ~shards:2) ~spawn lines
  in
  check_byte_identical ~msg:"vs single service" single sharded;
  Alcotest.(check int) "all answered ok" (List.length lines)
    report.Coordinator.metrics.Suu_service.Metrics.ok;
  Alcotest.(check bool) "large requests split" true
    (report.Coordinator.splits >= 3);
  Alcotest.(check bool) "small request forwarded" true
    (report.Coordinator.forwards >= 1);
  Alcotest.(check int) "no shard lost" 2 report.Coordinator.shards_live

let test_coordinator_ping_and_order spawn () =
  let n = 12 in
  let lines =
    {|{"op":"ping","id":"p"}|}
    :: List.init n (fun k -> solve ~seed:(k + 1) (Printf.sprintf "r%d" k))
  in
  let out, _ = Coordinator.run_lines (coord_config ~shards:3) ~spawn lines in
  Alcotest.(check int) "every request answered" (n + 1) (List.length out);
  Alcotest.(check (option bool)) "pong" (Some true)
    (Option.bind (field "pong" (List.nth out 0)) Json.to_bool);
  Alcotest.(check (option int)) "ping reports shards" (Some 3)
    (Option.bind (field "shards" (List.nth out 0)) Json.to_int);
  Alcotest.(check (option int)) "ping reports liveness" (Some 3)
    (Option.bind (field "shards_live" (List.nth out 0)) Json.to_int);
  (* Responses leave in request order: the id sequence is the request
     sequence. *)
  List.iteri
    (fun k line ->
      let want = if k = 0 then "p" else Printf.sprintf "r%d" (k - 1) in
      Alcotest.(check (option string)) "in request order" (Some want)
        (Option.bind (field "id" line) Json.to_str))
    out

let test_coordinator_stats_merge spawn () =
  let lines =
    [
      solve ~trials:8 ~seed:5 "a";
      solve ~trials:8 ~seed:7 "b";
      solve ~trials:8 ~seed:9 "c";
      {|{"op":"stats","id":"st"}|};
    ]
  in
  let out, _ = Coordinator.run_lines (coord_config ~shards:2) ~spawn lines in
  let stats = List.nth out 3 in
  Alcotest.(check (option string)) "stats ok" (Some "ok") (status stats);
  (* The snapshot precedes the stats request's own completion: it
     covers the three solves, not itself. *)
  Alcotest.(check (option int)) "coordinator requests" (Some 3)
    (Option.bind (field "requests" stats) Json.to_int);
  Alcotest.(check (option int)) "all shards reporting" (Some 2)
    (Option.bind (field "shards_live" stats) Json.to_int);
  (* The shard object sums the workers' service counters: three solves
     were forwarded (below the split threshold), however they were
     spread over the fleet. *)
  let shard name =
    Option.bind (field "shard" stats) (fun o ->
        Option.bind (Json.member name o) Json.to_int)
  in
  Alcotest.(check (option int)) "summed worker oks" (Some 3) (shard "ok");
  Alcotest.(check (option int)) "summed worker requests" (Some 3)
    (shard "requests");
  (* And the engine object sums the workers' engine counters. In-process
     workers share the process-global Obs registry (unlike subprocess
     workers, where each shard reports its own process), so only a lower
     bound is meaningful here: the 3 x 8 trials ran somewhere. *)
  let engine name =
    Option.bind (field "engine" stats) (fun o ->
        Option.bind (Json.member name o) Json.to_int)
  in
  Alcotest.(check bool) "summed engine trials" true
    (match engine "engine_trials_total" with
    | Some n -> n >= 24
    | None -> false)

let test_coordinator_survives_worker_loss spawn () =
  (* Chaos: kill fires per dispatch with the CI-swept seed. Whatever
     the placement, the structural contract holds — every request is
     answered exactly once, in order, each ok response is a real
     estimate and each error names a reason; nothing hangs. *)
  let n = 16 in
  let lines =
    List.init n (fun k ->
        solve ~trials:40 ~seed:(k + 1) (Printf.sprintf "r%d" k))
  in
  let cfg =
    {
      (coord_config ~shards:3) with
      Coordinator.fault = { Fault.none with seed = chaos_seed; kill = 0.15 };
    }
  in
  let out, report = Coordinator.run_lines cfg ~spawn lines in
  Alcotest.(check int) "every request answered" n (List.length out);
  List.iteri
    (fun k line ->
      Alcotest.(check (option string)) "in request order"
        (Some (Printf.sprintf "r%d" k))
        (Option.bind (field "id" line) Json.to_str);
      match status line with
      | Some "ok" ->
          Alcotest.(check bool) "ok carries a mean" true
            (field "mean" line <> None)
      | Some "error" ->
          Alcotest.(check bool) "error names a reason" true
            (match Option.bind (field "reason" line) Json.to_str with
            | Some ("shard_lost" | "unavailable") -> true
            | _ -> false)
      | s ->
          Alcotest.failf "response %d has unexpected status %s" k
            (Option.value ~default:"<none>" s))
    out;
  let m = report.Coordinator.metrics in
  Alcotest.(check int) "accounting covers every request" n
    m.Suu_service.Metrics.requests;
  Alcotest.(check int) "ok + errors = requests" n
    (m.Suu_service.Metrics.ok + m.Suu_service.Metrics.errors);
  Alcotest.(check bool) "deaths within the fleet" true
    (report.Coordinator.shard_deaths <= 3);
  Alcotest.(check int) "no respawns in degrade-only mode" 0
    report.Coordinator.respawns

let test_coordinator_all_shards_lost spawn () =
  (* kill=1 murders the only shard on the first dispatch; with respawns
     disabled, retries are exhausted and every later request finds no
     live shard. Degraded, answered, not hung. *)
  let n = 5 in
  let lines =
    List.init n (fun k ->
        solve ~trials:8 ~seed:(k + 1) (Printf.sprintf "r%d" k))
  in
  let cfg =
    {
      (coord_config ~shards:1) with
      Coordinator.retries = 1;
      fault = { Fault.none with seed = 1; kill = 1.0 };
    }
  in
  let out, report = Coordinator.run_lines cfg ~spawn lines in
  Alcotest.(check int) "every request answered" n (List.length out);
  List.iter
    (fun line ->
      Alcotest.(check (option string)) "all degraded to errors"
        (Some "error") (status line))
    out;
  Alcotest.(check int) "the fleet is gone" 0 report.Coordinator.shards_live;
  Alcotest.(check int) "death counted once" 1 report.Coordinator.shard_deaths

let test_coordinator_respawn_heals spawn () =
  (* The headline chaos demonstration: shards are killed mid-stream,
     the supervisor respawns each one after its backoff, the rejoined
     shards re-enter the ring — and the answer stream is byte-identical
     to a single unfaulted service. Forward-sized requests keep the
     kill exposure well inside the respawn budget. *)
  let n = 12 in
  let lines =
    List.init n (fun k ->
        solve ~trials:8 ~seed:(k + 1) (Printf.sprintf "r%d" k))
  in
  let cfg =
    {
      (coord_config ~shards:3) with
      Coordinator.retries = 8;
      respawn_budget = 8;
      respawn_backoff_ms = 0.5;
      fault = { Fault.none with seed = chaos_seed; kill = 0.2 };
    }
  in
  let single, _ = Service.run_lines worker_config lines in
  let out, report = Coordinator.run_lines cfg ~spawn lines in
  check_byte_identical ~msg:"healed fleet vs single service" single out;
  Alcotest.(check int) "all answered ok" n
    report.Coordinator.metrics.Suu_service.Metrics.ok;
  Alcotest.(check bool) "the chaos actually fired" true
    (report.Coordinator.shard_deaths >= 1);
  Alcotest.(check int) "every death was healed"
    report.Coordinator.shard_deaths report.Coordinator.respawns;
  Alcotest.(check int) "fleet back at full strength" 3
    report.Coordinator.shards_live

(* --- Epoch fencing --- *)

(* A blocking line channel for hand-built peers. *)
module Zchan = struct
  type t = {
    m : Mutex.t;
    cv : Condition.t;
    q : string Queue.t;
    mutable closed : bool;
  }

  let create () =
    {
      m = Mutex.create ();
      cv = Condition.create ();
      q = Queue.create ();
      closed = false;
    }

  let push t line =
    Mutex.lock t.m;
    if not t.closed then Queue.push line t.q;
    Condition.broadcast t.cv;
    Mutex.unlock t.m

  let close t =
    Mutex.lock t.m;
    t.closed <- true;
    Condition.broadcast t.cv;
    Mutex.unlock t.m

  let pop t =
    Mutex.lock t.m;
    while Queue.is_empty t.q && not t.closed do
      Condition.wait t.cv t.m
    done;
    let r = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
    Mutex.unlock t.m;
    r
end

let zombie_marker = {|"mean":-999|}

let test_coordinator_fences_zombie_answers () =
  (* Shard 0 is a zombie: it accepts requests, never answers — until it
     is killed, at which point every answer it owed surfaces at once,
     fabricated with a poisoned mean (modelling a SIGKILLed worker whose
     late answers were already in flight). Heartbeat escalation must
     declare it suspect then dead, fence its epoch, re-dispatch its
     in-flight work to the survivor — and the zombie flood must be
     discarded at the fence, never emitted. *)
  let out_chan = Zchan.create () in
  let received = Atomic.make 0 in
  let zombie_peer =
    {
      Client.send_line = (fun _ -> Atomic.incr received);
      recv_line = (fun () -> Zchan.pop out_chan);
      kill_peer =
        (fun () ->
          for _ = 1 to Atomic.get received do
            Zchan.push out_chan
              (Printf.sprintf {|{"status":"ok","id":"zombie",%s}|}
                 zombie_marker)
          done;
          Zchan.close out_chan);
      close_input = (fun () -> Zchan.close out_chan);
      reap = (fun () -> ());
    }
  in
  let spawn i =
    if i = 0 then Client.custom ~id:0 zombie_peer else spawn_local i
  in
  let n = 8 in
  let lines =
    List.init n (fun k ->
        solve ~trials:8 ~seed:(k + 1) (Printf.sprintf "r%d" k))
  in
  let cfg =
    {
      (coord_config ~shards:2) with
      Coordinator.heartbeat_ms = Some 5.;
      suspect_after = 1;
      dead_after = 2;
    }
  in
  let single, _ = Service.run_lines worker_config lines in
  let out, report = Coordinator.run_lines cfg ~spawn lines in
  (* Every answer is the survivor's real computation... *)
  check_byte_identical ~msg:"survivor answers, not the zombie" single out;
  List.iter
    (fun line ->
      let rec contains i =
        i + String.length zombie_marker <= String.length line
        && (String.sub line i (String.length zombie_marker) = zombie_marker
           || contains (i + 1))
      in
      Alcotest.(check bool) "no poisoned answer leaked" false
        (String.length line >= String.length zombie_marker && contains 0))
    out;
  (* ...and the supervision saw the whole lifecycle: suspect, dead,
     fence, zombie answers discarded. *)
  Alcotest.(check bool) "suspect transition recorded" true
    (report.Coordinator.suspects >= 1);
  Alcotest.(check int) "the zombie died once" 1
    report.Coordinator.shard_deaths;
  Alcotest.(check bool) "late answers were fenced" true
    (report.Coordinator.fenced >= 1);
  Alcotest.(check int) "survivor still standing" 1
    report.Coordinator.shards_live

(* --- TCP transport: reconnect, refuse, stall --- *)

let tcp_server cfg =
  match Tcp.listen "127.0.0.1:0" with
  | Error e -> failwith e
  | Ok (lsock, addr) ->
      let stop = Atomic.make false in
      let srv =
        Domain.spawn (fun () ->
            Tcp.serve_connections
              ~stopping:(fun () -> Atomic.get stop)
              ~on_report:(fun _ -> ())
              cfg lsock)
      in
      (stop, addr, srv)

let stop_tcp_server (stop, addr, srv) =
  (* Flip the flag, then pop the blocked accept with a wake dial. *)
  Atomic.set stop true;
  Tcp.wake addr;
  Domain.join srv

(* Submit every line and block until each callback has fired. *)
let collect client lines =
  let n = List.length lines in
  let out = Array.make n None in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let fired = ref 0 in
  let bump () =
    Mutex.lock m;
    incr fired;
    Condition.broadcast cv;
    Mutex.unlock m
  in
  List.iteri
    (fun k line ->
      let accepted =
        Client.submit client line (fun r ->
            out.(k) <- r;
            bump ())
      in
      if not accepted then bump ())
    lines;
  Mutex.lock m;
  while !fired < n do
    Condition.wait cv m
  done;
  Mutex.unlock m;
  Array.to_list out

let test_tcp_reconnect_resends () =
  (* A worker whose responses tear the connection mid-stream: the
     client must shut the torn socket down, back off, dial again and
     replay every unanswered line — and because workers recompute
     deterministically, the final stream is byte-identical to an
     unfaulted single service. Tear keys continue across connections,
     so the replay cannot re-draw the schedule that tore it. *)
  let faulty =
    {
      worker_config with
      Service.fault = { Fault.none with seed = 3; tear = 0.35 };
    }
  in
  let server = tcp_server faulty in
  let _, addr, _ = server in
  let client =
    Client.tcp ~id:0 ~reconnects:10 ~backoff_ms:0.2 ~addr ()
  in
  let n = 10 in
  let lines =
    List.init n (fun k ->
        solve ~trials:8 ~seed:(k + 1) (Printf.sprintf "r%d" k))
  in
  let single, _ = Service.run_lines worker_config lines in
  let got = collect client lines in
  List.iteri
    (fun k r ->
      match r with
      | Some line ->
          Alcotest.(check string)
            (Printf.sprintf "replayed response %d byte-identical" k)
            (scrub (List.nth single k))
            (scrub line)
      | None -> Alcotest.failf "response %d lost despite reconnects" k)
    got;
  Client.close_input client;
  Client.join client;
  stop_tcp_server server

let test_tcp_refuse_exhausts_budget () =
  (* Every accepted connection is torn immediately: reconnects burn the
     whole budget, the peer reports EOF and the outstanding callback
     fires with None — the same uniform loss signal as a killed pipe
     worker. *)
  let refusing =
    {
      worker_config with
      Service.fault = { Fault.none with seed = 1; refuse = 1.0 };
    }
  in
  let server = tcp_server refusing in
  let _, addr, _ = server in
  (* The RST can race into the initial dial itself; that raises (a
     failed spawn, charged to the respawn budget, not the reconnect
     budget) — retry until a dial survives long enough to be a
     connection. *)
  let rec dial tries =
    match Client.tcp ~id:0 ~reconnects:2 ~backoff_ms:0.2 ~addr () with
    | client -> client
    | exception (Unix.Unix_error _ | Failure _) when tries > 0 ->
        dial (tries - 1)
  in
  let client = dial 50 in
  let got = collect client [ solve ~trials:8 ~seed:1 "r0" ] in
  Alcotest.(check bool) "the lone callback fired with None" true
    (got = [ None ]);
  Alcotest.(check bool) "client reports dead" false (Client.alive client);
  Client.join client;
  stop_tcp_server server

let test_tcp_stall_does_not_corrupt () =
  (* Sock_stall delays response writes without killing them: with no
     read timeout armed the client just waits, and the stream stays
     byte-identical. (The timeout-driven give-up path is exercised by
     the refuse test above without depending on wall-clock margins.) *)
  let stalling =
    {
      worker_config with
      Service.fault =
        { Fault.none with seed = 7; sock_stall = 0.5; sock_stall_ms = 2. };
    }
  in
  let server = tcp_server stalling in
  let _, addr, _ = server in
  let client = Client.tcp ~id:0 ~addr () in
  let n = 6 in
  let lines =
    List.init n (fun k ->
        solve ~trials:8 ~seed:(k + 1) (Printf.sprintf "r%d" k))
  in
  let single, _ = Service.run_lines worker_config lines in
  let got = collect client lines in
  List.iteri
    (fun k r ->
      match r with
      | Some line ->
          Alcotest.(check string)
            (Printf.sprintf "stalled response %d byte-identical" k)
            (scrub (List.nth single k))
            (scrub line)
      | None -> Alcotest.failf "response %d lost to a stall" k)
    got;
  Client.close_input client;
  Client.join client;
  stop_tcp_server server

(* --- Suites --- *)

let coordinator_cases spawn =
  [
    Alcotest.test_case "byte-identical to single service" `Quick
      (test_coordinator_matches_single_service spawn);
    Alcotest.test_case "ping + response order" `Quick
      (test_coordinator_ping_and_order spawn);
    Alcotest.test_case "merged stats" `Quick
      (test_coordinator_stats_merge spawn);
    Alcotest.test_case "survives worker loss" `Quick
      (test_coordinator_survives_worker_loss spawn);
    Alcotest.test_case "all shards lost" `Quick
      (test_coordinator_all_shards_lost spawn);
    Alcotest.test_case "respawn heals the fleet" `Quick
      (test_coordinator_respawn_heals spawn);
  ]

let () =
  let test_merge_partial_trials_field () =
    (* A partial response's optional "trials" field is the executed count
       (a ci_target can cut it below the range width); absent or
       out-of-range values fall back to the full width so pre-field
       shards still merge correctly. *)
    let part extra =
      match
        Suu_shard.Merge.classify
          (Printf.sprintf
             {|{"id":"x","status":"ok","algo":"a","partial":true,"lo":10,"hi":20,%s"incomplete":0,"samples":[3,4]}|}
             extra)
      with
      | Suu_shard.Merge.Part p -> p
      | _ -> Alcotest.fail "partial did not classify"
    in
    Alcotest.(check int) "explicit executed count" 4
      (part {|"trials":4,|}).Suu_shard.Merge.trials;
    Alcotest.(check int) "absent field defaults to the width" 10
      (part "").Suu_shard.Merge.trials;
    Alcotest.(check int) "overlong count clamps to the width" 10
      (part {|"trials":99,|}).Suu_shard.Merge.trials
  in
  Alcotest.run "shard"
    [
      ( "ring",
        [
          Alcotest.test_case "determinism" `Quick test_ring_determinism;
          Alcotest.test_case "coverage" `Quick test_ring_coverage;
          Alcotest.test_case "death moves only lost arcs" `Quick
            test_ring_death_moves_only_lost_arcs;
          Alcotest.test_case "rejoin restores routes" `Quick
            test_ring_rejoin_restores_routes;
          Alcotest.test_case "invalid args" `Quick test_ring_invalid_args;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "plan partitions" `Quick
            test_dispatch_plan_partitions;
          Alcotest.test_case "auto chunk" `Quick test_dispatch_auto_chunk;
          Alcotest.test_case "invalid args" `Quick
            test_dispatch_invalid_args;
        ] );
      ( "merge",
        [
          Alcotest.test_case "partial trials field" `Quick
            test_merge_partial_trials_field;
        ] );
      ("coordinator", coordinator_cases spawn_local);
      ("coordinator-tcp", coordinator_cases spawn_tcp);
      ( "fencing",
        [
          Alcotest.test_case "zombie answers discarded at the fence" `Quick
            test_coordinator_fences_zombie_answers;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "reconnect replays unanswered lines" `Quick
            test_tcp_reconnect_resends;
          Alcotest.test_case "refused connections exhaust the budget" `Quick
            test_tcp_refuse_exhausts_budget;
          Alcotest.test_case "stalls delay but do not corrupt" `Quick
            test_tcp_stall_does_not_corrupt;
        ] );
    ]
