module Instance = Suu_core.Instance
module Policy = Suu_core.Policy
module Engine = Suu_sim.Engine
module Rng = Suu_prob.Rng

let single_job p = Instance.independent ~p:[| [| p |] |]

let always_assign inst =
  Policy.stateless "always" (fun _ -> Array.make (Instance.m inst) 0)

let test_empty_instance () =
  let inst = Instance.independent ~p:[| [||] |] in
  let o = Engine.run (Rng.create 1) inst (always_assign inst) in
  Alcotest.(check int) "makespan 0" 0 o.Engine.makespan;
  Alcotest.(check bool) "completed" true o.Engine.completed

let test_certain_job () =
  let inst = single_job 1.0 in
  let o = Engine.run (Rng.create 1) inst (always_assign inst) in
  Alcotest.(check int) "one step" 1 o.Engine.makespan

let test_geometric_mean () =
  (* Single job, p = 0.25: E[makespan] = 4. *)
  let inst = single_job 0.25 in
  let e =
    Engine.estimate_makespan ~trials:20_000 (Rng.create 5) inst
      (always_assign inst)
  in
  let mean = e.Engine.stats.Suu_prob.Stats.mean in
  Alcotest.(check bool) "mean near 4" true (Float.abs (mean -. 4.) < 0.1)

let test_two_machines_combined () =
  (* Two machines p=0.5 each on one job: success 0.75, E = 4/3. *)
  let inst = Instance.independent ~p:[| [| 0.5 |]; [| 0.5 |] |] in
  let policy = Policy.stateless "both" (fun _ -> [| 0; 0 |]) in
  let e = Engine.estimate_makespan ~trials:20_000 (Rng.create 7) inst policy in
  let mean = e.Engine.stats.Suu_prob.Stats.mean in
  Alcotest.(check bool) "mean near 4/3" true (Float.abs (mean -. (4. /. 3.)) < 0.05)

let test_max_steps_cap () =
  let inst = single_job 0.5 in
  let never = Policy.stateless "idle" (fun _ -> [| -1 |]) in
  let o = Engine.run ~max_steps:50 (Rng.create 1) inst never in
  Alcotest.(check bool) "not completed" false o.Engine.completed;
  Alcotest.(check int) "hit cap" 50 o.Engine.makespan

let test_ineligible_jobs_not_run () =
  (* Chain 0 -> 1; a policy that always points machines at job 1 makes no
     progress on it until job 0 is done — and the engine must not let job 1
     complete first. *)
  let inst =
    Instance.create
      ~p:[| [| 0.6; 0.6 |] |]
      ~dag:(Suu_dag.Dag.create ~n:2 [ (0, 1) ])
  in
  let sneaky =
    Policy.stateless "sneaky" (fun state ->
        if state.Policy.unfinished.(1) then [| 1 |] else [| 0 |])
  in
  let o = Engine.run ~max_steps:100 (Rng.create 3) inst sneaky in
  (* Job 1 is never eligible while 0 is unfinished and the policy never
     works on 0 while 1 is unfinished: deadlock until the cap. *)
  Alcotest.(check bool) "deadlock detected" false o.Engine.completed

let test_precedence_order_respected () =
  let dag = Suu_dag.Dag.create ~n:3 [ (0, 1); (1, 2) ] in
  let inst = Instance.create ~p:[| [| 0.7; 0.7; 0.7 |] |] ~dag in
  let policy =
    Policy.stateless "first-eligible" (fun state ->
        let target = ref (-1) in
        Array.iteri
          (fun j e -> if e && !target < 0 then target := j)
          state.Policy.eligible;
        [| !target |])
  in
  let history = Engine.trace (Rng.create 11) inst policy in
  let completion = Hashtbl.create 3 in
  List.iter
    (fun (t, _, completed) ->
      List.iter (fun j -> Hashtbl.replace completion j t) completed)
    history;
  let time j = Hashtbl.find completion j in
  Alcotest.(check bool) "0 before 1" true (time 0 < time 1);
  Alcotest.(check bool) "1 before 2" true (time 1 < time 2)

let test_trace_matches_assignments () =
  let inst = single_job 1.0 in
  let history = Engine.trace (Rng.create 1) inst (always_assign inst) in
  match history with
  | [ (0, a, [ 0 ]) ] -> Alcotest.(check (array int)) "assignment" [| 0 |] a
  | _ -> Alcotest.fail "unexpected trace shape"

let test_estimate_counts () =
  let inst = single_job 0.9 in
  let e =
    Engine.estimate_makespan ~trials:50 (Rng.create 2) inst (always_assign inst)
  in
  Alcotest.(check int) "trials" 50 e.Engine.trials;
  Alcotest.(check int) "complete" 0 e.Engine.incomplete;
  Alcotest.(check int) "count" 50 e.Engine.stats.Suu_prob.Stats.count

let test_default_horizon_positive () =
  let inst = single_job 0.01 in
  Alcotest.(check bool) "positive" true (Engine.default_horizon inst > 100)

let test_determinism () =
  let inst = Instance.independent ~p:[| [| 0.3; 0.6 |]; [| 0.7; 0.2 |] |] in
  let policy = Suu_algo.Suu_i.policy inst in
  let a = Engine.run (Rng.create 99) inst policy in
  let b = Engine.run (Rng.create 99) inst policy in
  Alcotest.(check int) "same seed same makespan" a.Engine.makespan b.Engine.makespan

(* --- multicore estimation --- *)

let test_parallel_matches_sequential_stats () =
  let inst = Instance.independent ~p:[| [| 0.3; 0.6; 0.5 |]; [| 0.7; 0.2; 0.4 |] |] in
  let policy = Suu_algo.Suu_i.policy inst in
  let seq =
    Engine.estimate_makespan ~trials:3000 (Rng.create 9) inst policy
  in
  let par =
    Engine.estimate_makespan_parallel ~domains:4 ~trials:3000 ~seed:9 inst
      policy
  in
  let diff =
    Float.abs
      (seq.Engine.stats.Suu_prob.Stats.mean
      -. par.Engine.stats.Suu_prob.Stats.mean)
  in
  let tol =
    Float.max 0.1
      (4.
      *. (seq.Engine.stats.Suu_prob.Stats.sem
         +. par.Engine.stats.Suu_prob.Stats.sem))
  in
  Alcotest.(check bool)
    (Printf.sprintf "means agree (diff %.3f, tol %.3f)" diff tol)
    true (diff < tol);
  Alcotest.(check int) "all samples" 3000
    (Array.length par.Engine.samples + par.Engine.incomplete)

let test_parallel_deterministic () =
  let inst = Instance.independent ~p:[| [| 0.4; 0.6 |] |] in
  let policy = Suu_algo.Suu_i.policy inst in
  let a =
    Engine.estimate_makespan_parallel ~domains:3 ~trials:100 ~seed:5 inst policy
  in
  let b =
    Engine.estimate_makespan_parallel ~domains:3 ~trials:100 ~seed:5 inst policy
  in
  Alcotest.(check (float 0.)) "same mean" a.Engine.stats.Suu_prob.Stats.mean
    b.Engine.stats.Suu_prob.Stats.mean

let test_parallel_identical_samples () =
  (* Regression: fixed (seed, domains) must reproduce the exact sample
     vector run over run, not merely the same mean. *)
  let inst =
    Instance.independent ~p:[| [| 0.3; 0.6; 0.5 |]; [| 0.7; 0.2; 0.4 |] |]
  in
  let policy = Suu_algo.Suu_i.policy inst in
  let run () =
    (Engine.estimate_makespan_parallel ~domains:3 ~trials:200 ~seed:42 inst
       policy)
      .Engine.samples
  in
  Alcotest.(check (array (float 0.))) "identical samples" (run ()) (run ())

let test_seeded_deterministic () =
  let inst = Instance.independent ~p:[| [| 0.4; 0.6 |]; [| 0.5; 0.3 |] |] in
  let policy = Suu_algo.Suu_i.policy inst in
  let run () =
    (Engine.estimate_makespan_seeded ~trials:150 ~seed:11 inst policy)
      .Engine.samples
  in
  Alcotest.(check (array (float 0.))) "identical samples" (run ()) (run ())

let test_seeded_matches_sequential_stats () =
  let inst = Instance.independent ~p:[| [| 0.3; 0.6 |]; [| 0.7; 0.2 |] |] in
  let policy = Suu_algo.Suu_i.policy inst in
  let seq = Engine.estimate_makespan ~trials:3000 (Rng.create 4) inst policy in
  let seeded = Engine.estimate_makespan_seeded ~trials:3000 ~seed:4 inst policy in
  let diff =
    Float.abs
      (seq.Engine.stats.Suu_prob.Stats.mean
      -. seeded.Engine.stats.Suu_prob.Stats.mean)
  in
  let tol =
    Float.max 0.1
      (4.
      *. (seq.Engine.stats.Suu_prob.Stats.sem
         +. seeded.Engine.stats.Suu_prob.Stats.sem))
  in
  Alcotest.(check bool)
    (Printf.sprintf "means agree (diff %.3f, tol %.3f)" diff tol)
    true (diff < tol)

let test_seeded_stop_interrupts () =
  let inst = single_job 0.5 in
  let calls = ref 0 in
  let stop () =
    incr calls;
    !calls > 3
  in
  Alcotest.check_raises "interrupted" Engine.Interrupted (fun () ->
      ignore
        (Engine.estimate_makespan_seeded ~stop ~trials:1000 ~seed:1 inst
           (always_assign inst)
          : Engine.estimate))

let test_seeded_on_trial_hook () =
  let inst = single_job 0.5 in
  let seen = ref [] in
  let e =
    Engine.estimate_makespan_seeded
      ~on_trial:(fun k -> seen := k :: !seen)
      ~trials:7 ~seed:3 inst (always_assign inst)
  in
  Alcotest.(check (list int)) "once per trial, in order" [ 0; 1; 2; 3; 4; 5; 6 ]
    (List.rev !seen);
  (* The hook is pure observation: the estimate matches a hook-free run. *)
  let plain =
    Engine.estimate_makespan_seeded ~trials:7 ~seed:3 inst (always_assign inst)
  in
  Alcotest.(check (float 1e-12)) "estimate unperturbed"
    plain.Engine.stats.Suu_prob.Stats.mean e.Engine.stats.Suu_prob.Stats.mean;
  (* Exceptions raised by the hook propagate to the caller — the seam the
     serving layer's fault harness relies on. *)
  Alcotest.check_raises "hook exceptions escape" Exit (fun () ->
      ignore
        (Engine.estimate_makespan_seeded
           ~on_trial:(fun k -> if k = 2 then raise Exit)
           ~trials:10 ~seed:3 inst (always_assign inst)
          : Engine.estimate))

let test_parallel_single_domain () =
  let inst = Instance.independent ~p:[| [| 0.8 |] |] in
  let policy = Suu_algo.Suu_i.policy inst in
  let e =
    Engine.estimate_makespan_parallel ~domains:1 ~trials:50 ~seed:1 inst policy
  in
  Alcotest.(check int) "trials" 50 e.Engine.trials

let test_parallel_more_domains_than_trials () =
  let inst = Instance.independent ~p:[| [| 0.9 |] |] in
  let policy = Suu_algo.Suu_i.policy inst in
  let e =
    Engine.estimate_makespan_parallel ~domains:8 ~trials:3 ~seed:2 inst policy
  in
  Alcotest.(check int) "all trials done" 3
    (Array.length e.Engine.samples + e.Engine.incomplete)

(* --- hot-path regressions --- *)

let pinned_instance () =
  Instance.create
    ~p:[| [| 0.3; 0.6; 0.5; 0.25 |]; [| 0.7; 0.2; 0.4; 0.55 |] |]
    ~dag:(Suu_dag.Dag.create ~n:4 [ (0, 2); (1, 3) ])

let test_seeded_pinned_summary () =
  (* Golden values captured before the zero-allocation rework of the
     stepping path. The naive stepper's Bernoulli draw sequence is part
     of the engine's contract (the serving layer's cached answers depend
     on it), so a seeded estimate of an adaptive policy must stay
     bit-identical across refactors — not merely statistically close. *)
  let inst = pinned_instance () in
  let e =
    Engine.estimate_makespan_seeded ~trials:100 ~seed:7 inst
      (Suu_algo.Suu_i.policy inst)
  in
  let s = e.Engine.stats in
  Alcotest.(check (float 1e-9)) "mean" 3.89 s.Suu_prob.Stats.mean;
  Alcotest.(check (float 1e-9)) "stddev" 1.3699148392 s.Suu_prob.Stats.stddev;
  Alcotest.(check (float 0.)) "min" 2. s.Suu_prob.Stats.min;
  Alcotest.(check (float 0.)) "max" 10. s.Suu_prob.Stats.max;
  Alcotest.(check int) "count" 100 s.Suu_prob.Stats.count;
  Alcotest.(check int) "incomplete" 0 e.Engine.incomplete;
  Alcotest.(check (array (float 0.)))
    "samples head (trial order)"
    [| 2.; 3.; 6.; 5.; 3.; 3.; 6.; 3.; 4.; 2. |]
    (Array.sub e.Engine.samples 0 10)

let test_unseeded_samples_trial_order () =
  (* On the scalar path, [estimate_makespan] draws its trials
     sequentially from the given generator, so the sample vector must
     equal back-to-back [run]s on an equally-seeded generator, in trial
     order. (The sample order of the unseeded estimator was historically
     reversed; this pins the fix.) The structure tag is stripped so the
     estimator cannot take the vectorized path, whose stream is
     different by design. *)
  let inst = pinned_instance () in
  let policy =
    let tagged = Suu_algo.Suu_i.policy inst in
    Policy.make "suu-i-untagged" tagged.Policy.fresh
  in
  let trials = 20 in
  let e = Engine.estimate_makespan ~trials (Rng.create 13) inst policy in
  let rng = Rng.create 13 in
  let expected = Array.make trials 0. in
  for k = 0 to trials - 1 do
    expected.(k) <- Float.of_int (Engine.run rng inst policy).Engine.makespan
  done;
  Alcotest.(check (array (float 0.))) "samples in trial order" expected
    e.Engine.samples

let test_parallel_equals_seeded_any_domains () =
  (* The parallel estimator derives trial [k]'s stream from [(seed, k)]
     exactly like the seeded one, so summary and sample vector must be
     identical at every domain count — not just run-over-run stable. *)
  let inst = pinned_instance () in
  let policy = Suu_algo.Suu_i.policy inst in
  let trials = 120 and seed = 21 in
  let seeded = Engine.estimate_makespan_seeded ~trials ~seed inst policy in
  List.iter
    (fun domains ->
      let par =
        Engine.estimate_makespan_parallel ~domains ~trials ~seed inst policy
      in
      Alcotest.(check (array (float 0.)))
        (Printf.sprintf "samples identical at %d domains" domains)
        seeded.Engine.samples par.Engine.samples;
      Alcotest.(check int)
        (Printf.sprintf "incomplete identical at %d domains" domains)
        seeded.Engine.incomplete par.Engine.incomplete)
    [ 1; 2; 4 ]

let test_parallel_stop_interrupts () =
  let inst = single_job 0.5 in
  Alcotest.check_raises "interrupted" Engine.Interrupted (fun () ->
      ignore
        (Engine.estimate_makespan_parallel ~domains:2
           ~stop:(fun () -> true)
           ~trials:100 ~seed:1 inst (always_assign inst)
          : Engine.estimate))

let test_parallel_on_trial_hook () =
  let inst = single_job 0.9 in
  let trials = 40 in
  (* Distinct slots per trial index, so concurrent hook calls from the
     worker domains never race. *)
  let seen = Array.make trials 0 in
  let e =
    Engine.estimate_makespan_parallel ~domains:3
      ~on_trial:(fun k -> seen.(k) <- seen.(k) + 1)
      ~trials ~seed:5 inst (always_assign inst)
  in
  Alcotest.(check int) "trials" trials e.Engine.trials;
  Array.iteri
    (fun k c ->
      Alcotest.(check int) (Printf.sprintf "trial %d hooked once" k) 1 c)
    seen;
  Alcotest.check_raises "hook exceptions escape" Exit (fun () ->
      ignore
        (Engine.estimate_makespan_parallel ~domains:2
           ~on_trial:(fun k -> if k = 7 then raise Exit)
           ~trials ~seed:5 inst (always_assign inst)
          : Engine.estimate))

(* --- release dates (online executions) --- *)

let test_release_blocks_until_due () =
  (* One certain job released at step 3: makespan exactly 4. *)
  let inst = single_job 1.0 in
  let o =
    Engine.run ~releases:[| 3 |] (Rng.create 1) inst (always_assign inst)
  in
  Alcotest.(check int) "waits for release" 4 o.Engine.makespan

let test_release_zero_is_offline () =
  let inst = single_job 1.0 in
  let a = Engine.run ~releases:[| 0 |] (Rng.create 1) inst (always_assign inst) in
  let b = Engine.run (Rng.create 1) inst (always_assign inst) in
  Alcotest.(check int) "same" b.Engine.makespan a.Engine.makespan

let test_release_with_precedence () =
  (* Chain 0 -> 1; job 1 released early, job 0 late: both constraints
     must hold, so completion takes release(0) + 2 steps. *)
  let inst =
    Instance.create
      ~p:[| [| 1.0; 1.0 |] |]
      ~dag:(Suu_dag.Dag.create ~n:2 [ (0, 1) ])
  in
  let policy =
    Policy.stateless "first-eligible" (fun state ->
        let target = ref (-1) in
        Array.iteri
          (fun j e -> if e && !target < 0 then target := j)
          state.Policy.eligible;
        [| !target |])
  in
  let o = Engine.run ~releases:[| 5; 0 |] (Rng.create 1) inst policy in
  Alcotest.(check int) "release then chain" 7 o.Engine.makespan

let test_release_never_run_before_release_step () =
  (* Chain 0 -> 1 with certain probabilities: job 0 is done at step 0, so
     job 1's only remaining gate is its release date. The trace must show
     no work on job 1 before step 4 even though its predecessor finished
     long before, and completion exactly at the release step. *)
  let inst =
    Instance.create
      ~p:[| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |]
      ~dag:(Suu_dag.Dag.create ~n:2 [ (0, 1) ])
  in
  let releases = [| 0; 4 |] in
  let policy =
    Policy.stateless "first-eligible" (fun state ->
        let target = ref (-1) in
        Array.iteri
          (fun j e -> if e && !target < 0 then target := j)
          state.Policy.eligible;
        Array.make (Instance.m inst) !target)
  in
  let history = Engine.trace ~releases (Rng.create 1) inst policy in
  List.iter
    (fun (t, a, _) ->
      Array.iter
        (fun j ->
          if j = 1 then
            Alcotest.(check bool)
              (Printf.sprintf "job 1 worked at step %d before release" t)
              true (t >= releases.(1)))
        a)
    history;
  let completion = Hashtbl.create 2 in
  List.iter
    (fun (t, _, completed) ->
      List.iter (fun j -> Hashtbl.replace completion j t) completed)
    history;
  Alcotest.(check int) "pred done immediately" 0 (Hashtbl.find completion 0);
  Alcotest.(check int) "job 1 completes at its release step" 4
    (Hashtbl.find completion 1)

let test_release_length_mismatch () =
  let inst = single_job 0.5 in
  Alcotest.check_raises "length"
    (Suu_sim.Releases.Invalid
       (Suu_sim.Releases.Length_mismatch { expected = 1; got = 2 }))
    (fun () ->
      ignore
        (Engine.run ~releases:[| 0; 1 |] (Rng.create 1) inst (always_assign inst)
          : Engine.outcome))

let test_release_negative () =
  let inst = single_job 0.5 in
  Alcotest.check_raises "negative"
    (Suu_sim.Releases.Invalid
       (Suu_sim.Releases.Negative_release { job = 0; value = -1 }))
    (fun () ->
      ignore
        (Engine.run ~releases:[| -1 |] (Rng.create 1) inst (always_assign inst)
          : Engine.outcome))

let test_release_typed_validation () =
  (* The typed boundary, satellite-audited: every public entry that takes
     ?releases rejects hostile vectors with the same structured error,
     the result-style validator agrees, and the messages are printable. *)
  let inst = single_job 0.5 in
  let bad_len = [| 0; 1 |] and bad_neg = [| -3 |] in
  (match Suu_sim.Releases.validate ~n:1 bad_len with
  | Error (Suu_sim.Releases.Length_mismatch { expected = 1; got = 2 }) -> ()
  | _ -> Alcotest.fail "validate: expected Length_mismatch");
  (match Suu_sim.Releases.validate ~n:1 bad_neg with
  | Error (Suu_sim.Releases.Negative_release { job = 0; value = -3 }) -> ()
  | _ -> Alcotest.fail "validate: expected Negative_release");
  Alcotest.(check bool)
    "error_to_string is non-empty" true
    (String.length
       (Suu_sim.Releases.error_to_string
          (Suu_sim.Releases.Length_mismatch { expected = 1; got = 2 }))
    > 0);
  (* the estimators and the vectorized/leapfrog boundaries reject too *)
  let expect_invalid label f =
    match f () with
    | exception Suu_sim.Releases.Invalid _ -> ()
    | _ -> Alcotest.fail (label ^ ": hostile releases accepted")
  in
  expect_invalid "seeded" (fun () ->
      ignore
        (Engine.estimate_makespan_seeded ~releases:bad_neg ~trials:1 ~seed:1
           inst (always_assign inst)
          : Engine.estimate));
  expect_invalid "estimate" (fun () ->
      ignore
        (Engine.estimate_makespan ~releases:bad_len ~trials:1 (Rng.create 1)
           inst (always_assign inst)
          : Engine.estimate));
  expect_invalid "lanes" (fun () ->
      ignore
        (Suu_sim.Lanes.create ~releases:bad_neg inst
           (Suu_core.Policy.of_oblivious "sched"
              (Suu_core.Oblivious.create ~m:1 ~cycle:[| [| 0 |] |] [||]))
          : Suu_sim.Lanes.t option));
  expect_invalid "leapfrog" (fun () ->
      ignore
        (Suu_sim.Leapfrog.prepare ~releases:bad_len inst
           (Suu_core.Oblivious.create ~m:1 ~cycle:[| [| 0 |] |] [||])
          : Suu_sim.Leapfrog.t))

let prop_releases_only_delay =
  QCheck.Test.make ~name:"release dates never speed things up (mean)" ~count:10
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 6 in
      let inst =
        Instance.independent
          ~p:
            (Array.init 2 (fun _ ->
                 Array.init n (fun _ -> Rng.uniform rng 0.3 0.9)))
      in
      let policy = Suu_algo.Suu_i.policy inst in
      let releases =
        Suu_workloads.Workload.arrivals (Rng.split rng) ~n ~mean_gap:2.
      in
      let mean r =
        (Engine.estimate_makespan ?releases:r ~trials:400 (Rng.create 5) inst
           policy)
          .Engine.stats.Suu_prob.Stats.mean
      in
      mean (Some releases) >= mean None -. 0.5)

let prop_makespan_at_least_critical_path =
  QCheck.Test.make ~name:"makespan >= longest path length" ~count:100
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 6 in
      let dag = Suu_dag.Gen.out_forest (Rng.split rng) ~n ~trees:2 in
      let inst =
        Instance.create
          ~p:
            (Array.init 2 (fun _ ->
                 Array.init n (fun _ -> Suu_prob.Rng.uniform rng 0.3 1.)))
          ~dag
      in
      let policy = Suu_algo.Suu_i.policy inst in
      let o = Engine.run (Rng.split rng) inst policy in
      (not o.Engine.completed)
      || o.Engine.makespan >= Suu_dag.Dag.longest_path dag)

let prop_all_jobs_complete =
  QCheck.Test.make ~name:"adaptive policy completes all instances" ~count:100
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 10 and m = 1 + Rng.int rng 4 in
      let dag = Suu_dag.Gen.random_dag (Rng.split rng) ~n ~edge_prob:0.2 in
      let inst =
        Instance.create
          ~p:
            (Array.init m (fun _ ->
                 Array.init n (fun _ -> Suu_prob.Rng.uniform rng 0.1 0.9)))
          ~dag
      in
      let o = Engine.run (Rng.split rng) inst (Suu_algo.Suu_i.policy inst) in
      o.Engine.completed)

let () =
  Alcotest.run "engine"
    [
      ( "semantics",
        [
          Alcotest.test_case "empty instance" `Quick test_empty_instance;
          Alcotest.test_case "certain job" `Quick test_certain_job;
          Alcotest.test_case "ineligible jobs blocked" `Quick
            test_ineligible_jobs_not_run;
          Alcotest.test_case "precedence respected" `Quick
            test_precedence_order_respected;
          Alcotest.test_case "trace shape" `Quick test_trace_matches_assignments;
          Alcotest.test_case "max steps cap" `Quick test_max_steps_cap;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "default horizon" `Quick
            test_default_horizon_positive;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "geometric mean" `Slow test_geometric_mean;
          Alcotest.test_case "combined machines" `Slow
            test_two_machines_combined;
          Alcotest.test_case "estimate counts" `Quick test_estimate_counts;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential" `Slow
            test_parallel_matches_sequential_stats;
          Alcotest.test_case "deterministic" `Quick test_parallel_deterministic;
          Alcotest.test_case "identical samples" `Quick
            test_parallel_identical_samples;
          Alcotest.test_case "single domain" `Quick test_parallel_single_domain;
          Alcotest.test_case "domains > trials" `Quick
            test_parallel_more_domains_than_trials;
        ] );
      ( "seeded",
        [
          Alcotest.test_case "deterministic" `Quick test_seeded_deterministic;
          Alcotest.test_case "matches sequential" `Slow
            test_seeded_matches_sequential_stats;
          Alcotest.test_case "stop interrupts" `Quick
            test_seeded_stop_interrupts;
          Alcotest.test_case "on_trial hook" `Quick test_seeded_on_trial_hook;
        ] );
      ( "hot path",
        [
          Alcotest.test_case "pinned seeded summary" `Quick
            test_seeded_pinned_summary;
          Alcotest.test_case "unseeded samples in trial order" `Quick
            test_unseeded_samples_trial_order;
          Alcotest.test_case "parallel = seeded at any domain count" `Quick
            test_parallel_equals_seeded_any_domains;
          Alcotest.test_case "parallel stop interrupts" `Quick
            test_parallel_stop_interrupts;
          Alcotest.test_case "parallel on_trial hook" `Quick
            test_parallel_on_trial_hook;
        ] );
      ( "releases",
        [
          Alcotest.test_case "blocks until due" `Quick
            test_release_blocks_until_due;
          Alcotest.test_case "zero = offline" `Quick test_release_zero_is_offline;
          Alcotest.test_case "with precedence" `Quick
            test_release_with_precedence;
          Alcotest.test_case "never run before release" `Quick
            test_release_never_run_before_release_step;
          Alcotest.test_case "length checked" `Quick test_release_length_mismatch;
          Alcotest.test_case "sign checked" `Quick test_release_negative;
          Alcotest.test_case "typed validation everywhere" `Quick
            test_release_typed_validation;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_makespan_at_least_critical_path;
          QCheck_alcotest.to_alcotest prop_all_jobs_complete;
          QCheck_alcotest.to_alcotest prop_releases_only_delay;
        ] );
    ]
