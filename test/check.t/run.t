The conformance suite: quick mode on the pinned CI seed runs every
visible property with zero failures.

  $ suu check --quick --seed 42
  ok   instance-validation  10 cases
  ok   msm-ratio            10 cases
  ok   msm-ext-ratio        10 cases
  ok   msm-determinism      10 cases
  ok   mass-accumulation    10 cases
  ok   relabel-invariance   10 cases
  ok   monotone-in-p        10 cases
  ok   exact-vs-mc          10 cases
  ok   leapfrog-vs-naive    10 cases
  ok   lanes-vs-exact       10 cases
  ok   parallel-vs-seeded   10 cases
  ok   serialize-roundtrip  10 cases
  ok   obs-mass-trace       10 cases
  ok   split-merge          10 cases
  ok   shard-heal           10 cases
  ok   improved-validity    10 cases
  ok   improved-ratio       10 cases
  ok   lzf-validity         10 cases
  ok   fixed-validity       10 cases
  ok   churn-mask           10 cases
  ok   churn-monotone       10 cases
  check: 21 properties, 210 cases, 0 failures

The registered property names are a pinned contract (CI selects by
name); --list is the authoritative roster.

  $ suu check --list | awk '{print $1}'
  instance-validation
  msm-ratio
  msm-ext-ratio
  msm-determinism
  mass-accumulation
  relabel-invariance
  monotone-in-p
  exact-vs-mc
  leapfrog-vs-naive
  lanes-vs-exact
  parallel-vs-seeded
  serialize-roundtrip
  obs-mass-trace
  split-merge
  shard-heal
  improved-validity
  improved-ratio
  lzf-validity
  fixed-validity
  churn-mask
  churn-monotone

Named selection runs only the requested properties, in the order given.

  $ suu check -p msm-ratio -p serialize-roundtrip --seed 7 --count 5
  ok   msm-ratio            5 cases
  ok   serialize-roundtrip  5 cases
  check: 2 properties, 10 cases, 0 failures

Unknown names are an error, not a silent no-op.

  $ suu check -p no-such-property
  suu check: unknown property "no-such-property" (try --list)
  [2]

A failing property (the hidden demo-broken, which rejects any instance
with more than two jobs) stops at its first counterexample, shrinks it
to a local minimum and prints a replayable repro line; --out writes the
same line to a file for CI artifact upload.

  $ suu check -p demo-broken --seed 42 --out failures.jsonl
  FAIL demo-broken: instance has 3 jobs > 2
    original: n=3 m=1 edges=2 (case 0, seed 109475271574297718)
    shrunk:   n=3 m=1 edges=0 (9 shrink steps): instance has 3 jobs > 2
    repro: {"property":"demo-broken","seed":109475271574297718,"case":{"n":3,"m":1,"p":[[1,1,1]],"edges":[],"aux":0}}
  check: 1 properties, 1 cases, 1 failures
  [1]

  $ cat failures.jsonl
  {"property":"demo-broken","seed":109475271574297718,"case":{"n":3,"m":1,"p":[[1,1,1]],"edges":[],"aux":0}}

The repro line replays the exact shrunk case against its property.

  $ suu check --replay "$(cat failures.jsonl)"
  replay demo-broken on n=3 m=1 edges=0
  FAIL demo-broken: instance has 3 jobs > 2
  [1]

A repro for a healthy property reports that it passes.

  $ suu check --replay '{"property":"msm-ratio","seed":1,"case":{"n":2,"m":2,"p":[[0.5,0.25],[1,0]],"edges":[[0,1]],"aux":7}}'
  replay msm-ratio on n=2 m=2 edges=1
  ok: property passes on this case

Malformed repro lines fail loudly.

  $ suu check --replay 'not json'
  suu check: expected null at offset 0
  [2]
