(* The trial-batched vectorized kernel: [estimate_makespan] dispatches to
   it for structurally tagged policies (greedy pair scans and oblivious
   schedules), and its makespans must be distribution-equivalent to the
   scalar paths. The greedy kernel additionally has a scalar-order ref
   mode that must be bit-identical to the scalar stepper, which pins the
   word-wide bookkeeping (free/eligible/mass/marked words) exactly. *)

module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious
module Policy = Suu_core.Policy
module Engine = Suu_sim.Engine
module Lanes = Suu_sim.Lanes
module Rng = Suu_prob.Rng

let mixed_inst () =
  (* 12 jobs, 4 machines, a small diamond-ish DAG: enough structure to
     exercise pred words, succ refresh and mass contention. *)
  let rng = Rng.create 9104 in
  Instance.create
    ~p:(Array.init 4 (fun _ -> Array.init 12 (fun _ -> Rng.uniform rng 0.2 0.9)))
    ~dag:
      (Suu_dag.Dag.create ~n:12
         [ (0, 3); (0, 4); (1, 4); (2, 5); (4, 8); (5, 8); (6, 9); (8, 11) ])

let test_greedy_ref_bit_identical () =
  (* Lane [l] of the ref mode replays the scalar draw order from its own
     generator, so it must reproduce [Engine.run] on an equally-seeded
     generator exactly — per lane, not just in law. *)
  let inst = mixed_inst () in
  let releases = Array.init 12 (fun j -> if j mod 5 = 0 then 2 else 0) in
  let policy = Suu_algo.Suu_i.policy inst in
  let k = Option.get (Lanes.create ~releases inst policy) in
  let lanes = 20 and max_steps = 10_000 in
  let rngs = Array.init lanes (fun l -> Rng.create (7000 + (31 * l))) in
  let makespans = Array.make lanes 0 in
  Lanes.run_word_ref k ~rngs ~max_steps ~makespans;
  for l = 0 to lanes - 1 do
    let o =
      Engine.run ~max_steps ~releases (Rng.create (7000 + (31 * l))) inst policy
    in
    Alcotest.(check bool) (Printf.sprintf "lane %d completed" l) true
      o.Engine.completed;
    Alcotest.(check int)
      (Printf.sprintf "lane %d = scalar stepper" l)
      o.Engine.makespan makespans.(l)
  done

let test_ref_mode_cols_rejected () =
  let inst = Instance.independent ~p:[| [| 0.5 |] |] in
  let sched = Oblivious.create ~m:1 ~cycle:[| [| 0 |] |] [||] in
  let k = Option.get (Lanes.create inst (Policy.of_oblivious "s" sched)) in
  Alcotest.check_raises "cols has no ref mode"
    (Invalid_argument "Lanes.run_word_ref: only greedy kernels have a ref mode")
    (fun () ->
      Lanes.run_word_ref k ~rngs:[| Rng.create 1 |] ~max_steps:10
        ~makespans:(Array.make 1 0))

let test_create_requires_structure () =
  let inst = Instance.independent ~p:[| [| 0.5 |] |] in
  let general = Policy.stateless "g" (fun _ -> [| 0 |]) in
  Alcotest.(check bool)
    "untagged policy is not vectorizable" true
    (Lanes.create inst general = None)

let test_cols_certain_chain () =
  (* p = 1 everywhere makes the kernel deterministic: chain 0 -> 1 under
     a round-robin schedule finishes at step 2 in every lane. *)
  let inst =
    Instance.create
      ~p:[| [| 1.0; 1.0 |] |]
      ~dag:(Suu_dag.Dag.create ~n:2 [ (0, 1) ])
  in
  let sched = Oblivious.create ~m:1 ~cycle:[| [| 0 |]; [| 1 |] |] [||] in
  let k = Option.get (Lanes.create inst (Policy.of_oblivious "s" sched)) in
  let makespans = Array.make Lanes.lanes_per_word (-7) in
  Lanes.run_word k ~seed:5 ~max_steps:100 ~lanes:Lanes.lanes_per_word
    ~makespans;
  Array.iter (fun mk -> Alcotest.(check int) "makespan 2" 2 mk) makespans

let test_greedy_certain_jobs () =
  let inst = Instance.independent ~p:[| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let k = Option.get (Lanes.create inst (Suu_algo.Suu_i.policy inst)) in
  let makespans = Array.make Lanes.lanes_per_word 0 in
  Lanes.run_word k ~seed:6 ~max_steps:100 ~lanes:Lanes.lanes_per_word
    ~makespans;
  Array.iter (fun mk -> Alcotest.(check int) "one step" 1 mk) makespans

let test_release_dates_respected () =
  (* One certain job released at step 3, routed through the vectorized
     path by [estimate_makespan] (70 trials = one full word + a partial
     one): every sample must be exactly 4. *)
  let inst = Instance.independent ~p:[| [| 1.0 |] |] in
  let sched = Oblivious.create ~m:1 ~cycle:[| [| 0 |] |] [||] in
  let e =
    Engine.estimate_makespan ~releases:[| 3 |] ~trials:70 (Rng.create 2) inst
      (Policy.of_oblivious "s" sched)
  in
  Alcotest.(check int) "all trials executed" 70 e.Engine.trials;
  Alcotest.(check (array (float 0.)))
    "waits for release"
    (Array.make 70 4.) e.Engine.samples

let test_truncation_reported () =
  (* A schedule that never works job 1: every vectorized trial must be
     reported incomplete, exactly like the scalar paths. *)
  let inst = Instance.independent ~p:[| [| 0.9; 0.9 |] |] in
  let sched = Oblivious.finite ~m:1 [| [| 0 |]; [| 0 |] |] in
  let e =
    Engine.estimate_makespan ~max_steps:50 ~trials:70 (Rng.create 3) inst
      (Policy.of_oblivious "s" sched)
  in
  Alcotest.(check int) "all incomplete" 70 e.Engine.incomplete;
  Alcotest.(check int) "no samples" 0 (Array.length e.Engine.samples)

let test_vectorized_deterministic () =
  (* The vectorized estimate is a pure function of the caller's
     generator state. *)
  let inst = mixed_inst () in
  let policy = Suu_algo.Suu_i.policy inst in
  let a = Engine.estimate_makespan ~trials:200 (Rng.create 11) inst policy in
  let b = Engine.estimate_makespan ~trials:200 (Rng.create 11) inst policy in
  Alcotest.(check (array (float 0.))) "same samples" a.Engine.samples
    b.Engine.samples;
  Alcotest.(check int) "200 samples in trial order" 200
    (Array.length a.Engine.samples)

let test_matches_scalar_stats () =
  (* Statistical cross-check on an instance too big for the exact chain:
     vectorized and scalar means over independent trial sets must agree
     within a generous CLT tolerance, for both kernels. *)
  let rng = Rng.create 2027 in
  let inst =
    Instance.independent
      ~p:(Array.init 6 (fun _ -> Array.init 24 (fun _ -> Rng.uniform rng 0.1 0.9)))
  in
  let trials = 4000 in
  let check_pair name vectorized scalar =
    let diff =
      Float.abs
        (vectorized.Engine.stats.Suu_prob.Stats.mean
        -. scalar.Engine.stats.Suu_prob.Stats.mean)
    in
    let tol =
      Float.max 0.15
        (4.
        *. (vectorized.Engine.stats.Suu_prob.Stats.sem
           +. scalar.Engine.stats.Suu_prob.Stats.sem))
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s means agree (diff %.3f, tol %.3f)" name diff tol)
      true (diff < tol);
    Alcotest.(check int) (name ^ " vectorized completes") 0
      vectorized.Engine.incomplete
  in
  let greedy = Suu_algo.Suu_i.policy inst in
  check_pair "greedy"
    (Engine.estimate_makespan ~trials (Rng.create 41) inst greedy)
    (Engine.estimate_makespan_seeded ~trials ~seed:42 inst
       (Policy.make "untagged" greedy.Policy.fresh));
  let sched = Suu_algo.Suu_i_obl.schedule inst in
  check_pair "oblivious"
    (Engine.estimate_makespan ~trials (Rng.create 43) inst
       (Policy.of_oblivious "obl" sched))
    (Engine.estimate_makespan_seeded ~trials ~seed:44 inst
       (Policy.of_oblivious "obl" sched))

(* --- CI-width sequential stopping ------------------------------------ *)

let word = Lanes.lanes_per_word

let test_ci_target_stops_early () =
  let inst = Instance.independent ~p:[| [| 0.5 |] |] in
  let policy = Policy.stateless "one" (fun _ -> [| 0 |]) in
  let e =
    Engine.estimate_makespan ~ci_target:0.2 ~trials:50_000 (Rng.create 8) inst
      policy
  in
  Alcotest.(check bool) "stopped early" true (e.Engine.trials < 50_000);
  Alcotest.(check int) "at a word boundary" 0 (e.Engine.trials mod word);
  Alcotest.(check bool) "target reached" true
    (e.Engine.stats.Suu_prob.Stats.ci95 <= 0.2);
  Alcotest.(check int) "samples match executed count" e.Engine.trials
    (Array.length e.Engine.samples)

let test_ci_target_vectorized_stops () =
  let inst = mixed_inst () in
  let policy = Suu_algo.Suu_i.policy inst in
  let e =
    Engine.estimate_makespan ~ci_target:0.3 ~trials:50_000 (Rng.create 9) inst
      policy
  in
  Alcotest.(check bool) "stopped early" true (e.Engine.trials < 50_000);
  Alcotest.(check int) "at a word boundary" 0 (e.Engine.trials mod word);
  Alcotest.(check bool) "target reached" true
    (e.Engine.stats.Suu_prob.Stats.ci95 <= 0.3)

let test_ci_target_unreachable_runs_all () =
  let inst = Instance.independent ~p:[| [| 0.5 |] |] in
  let policy = Policy.stateless "one" (fun _ -> [| 0 |]) in
  let e =
    Engine.estimate_makespan ~ci_target:1e-9 ~trials:200 (Rng.create 8) inst
      policy
  in
  Alcotest.(check int) "all trials run" 200 e.Engine.trials

let test_ci_target_validated () =
  let inst = Instance.independent ~p:[| [| 0.5 |] |] in
  let policy = Policy.stateless "one" (fun _ -> [| 0 |]) in
  Alcotest.check_raises "ci_target <= 0 rejected"
    (Invalid_argument "Engine: ci_target must be > 0") (fun () ->
      ignore
        (Engine.estimate_makespan ~ci_target:0. ~trials:10 (Rng.create 1) inst
           policy))

let test_ci_parallel_equals_seeded () =
  (* Under a ci_target the parallel estimator must find the same stopping
     boundary (hence samples and trial count) as the sequential seeded
     one, at any domain count. *)
  let inst = mixed_inst () in
  let policy = Suu_algo.Suu_i.policy inst in
  let seeded =
    Engine.estimate_makespan_seeded ~ci_target:0.3 ~trials:50_000 ~seed:77 inst
      policy
  in
  Alcotest.(check bool) "seeded stopped early" true
    (seeded.Engine.trials < 50_000);
  List.iter
    (fun domains ->
      let par =
        Engine.estimate_makespan_parallel ~domains ~ci_target:0.3
          ~trials:50_000 ~seed:77 inst policy
      in
      Alcotest.(check int)
        (Printf.sprintf "same stopping point at %d domains" domains)
        seeded.Engine.trials par.Engine.trials;
      Alcotest.(check (array (float 0.)))
        (Printf.sprintf "same samples at %d domains" domains)
        seeded.Engine.samples par.Engine.samples)
    [ 1; 3 ]

let test_ci_range_relative_to_lo () =
  (* Range stopping counts word boundaries from [lo], so a range is a
     pure function of (seed, lo, hi, ci_target) — wherever it sits. *)
  let inst = mixed_inst () in
  let policy = Suu_algo.Suu_i.policy inst in
  let e =
    Engine.estimate_makespan_range ~ci_target:0.3 ~seed:5 ~lo:10 ~hi:50_000
      inst policy
  in
  Alcotest.(check bool) "stopped early" true (e.Engine.trials < 49_990);
  Alcotest.(check int) "boundary relative to lo" 0 (e.Engine.trials mod word);
  let again =
    Engine.estimate_makespan_range ~ci_target:0.3 ~seed:5 ~lo:10 ~hi:50_000
      inst policy
  in
  Alcotest.(check int) "deterministic" e.Engine.trials again.Engine.trials

(* --- merge_ranges edge cases ----------------------------------------- *)

let test_merge_empty_rejected () =
  Alcotest.check_raises "empty merge rejected"
    (Invalid_argument "Engine.merge_ranges: no parts") (fun () ->
      ignore (Engine.merge_ranges ~max_steps:10 []))

let test_merge_singleton_identity () =
  let inst = mixed_inst () in
  let policy = Suu_algo.Suu_i.policy inst in
  let e = Engine.estimate_makespan_range ~seed:3 ~lo:0 ~hi:40 inst policy in
  let m = Engine.merge_ranges ~max_steps:(Engine.default_horizon inst) [ e ] in
  Alcotest.(check int) "trials" e.Engine.trials m.Engine.trials;
  Alcotest.(check int) "incomplete" e.Engine.incomplete m.Engine.incomplete;
  Alcotest.(check (array (float 0.))) "samples" e.Engine.samples
    m.Engine.samples;
  Alcotest.(check (float 1e-12))
    "mean" e.Engine.stats.Suu_prob.Stats.mean m.Engine.stats.Suu_prob.Stats.mean

let test_merge_early_stopped_partial_counts () =
  (* A part cut short by its ci_target contributes its executed count,
     not its nominal range width. *)
  let inst = mixed_inst () in
  let policy = Suu_algo.Suu_i.policy inst in
  let full =
    Engine.estimate_makespan_range ~seed:5 ~lo:0 ~hi:100 inst policy
  in
  let stopped =
    Engine.estimate_makespan_range ~ci_target:0.3 ~seed:5 ~lo:100 ~hi:50_000
      inst policy
  in
  Alcotest.(check bool) "second part stopped early" true
    (stopped.Engine.trials < 49_900);
  let m =
    Engine.merge_ranges ~max_steps:(Engine.default_horizon inst)
      [ full; stopped ]
  in
  Alcotest.(check int) "trials add executed counts"
    (full.Engine.trials + stopped.Engine.trials)
    m.Engine.trials;
  Alcotest.(check int) "incomplete adds"
    (full.Engine.incomplete + stopped.Engine.incomplete)
    m.Engine.incomplete;
  Alcotest.(check int) "samples concatenate"
    (Array.length full.Engine.samples + Array.length stopped.Engine.samples)
    (Array.length m.Engine.samples)

let () =
  Alcotest.run "lanes"
    [
      ( "bit identity",
        [
          Alcotest.test_case "greedy ref mode = scalar stepper" `Quick
            test_greedy_ref_bit_identical;
          Alcotest.test_case "cols ref mode rejected" `Quick
            test_ref_mode_cols_rejected;
          Alcotest.test_case "untagged not vectorizable" `Quick
            test_create_requires_structure;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "cols certain chain" `Quick
            test_cols_certain_chain;
          Alcotest.test_case "greedy certain jobs" `Quick
            test_greedy_certain_jobs;
          Alcotest.test_case "release dates" `Quick
            test_release_dates_respected;
          Alcotest.test_case "truncation" `Quick test_truncation_reported;
          Alcotest.test_case "deterministic" `Quick
            test_vectorized_deterministic;
        ] );
      ( "distribution equivalence",
        [
          Alcotest.test_case "matches scalar stats" `Slow
            test_matches_scalar_stats;
        ] );
      ( "sequential stopping",
        [
          Alcotest.test_case "stops early (scalar)" `Quick
            test_ci_target_stops_early;
          Alcotest.test_case "stops early (vectorized)" `Quick
            test_ci_target_vectorized_stops;
          Alcotest.test_case "unreachable target runs all" `Quick
            test_ci_target_unreachable_runs_all;
          Alcotest.test_case "target validated" `Quick test_ci_target_validated;
          Alcotest.test_case "parallel = seeded under stopping" `Quick
            test_ci_parallel_equals_seeded;
          Alcotest.test_case "range stops relative to lo" `Quick
            test_ci_range_relative_to_lo;
        ] );
      ( "merge edge cases",
        [
          Alcotest.test_case "empty rejected" `Quick test_merge_empty_rejected;
          Alcotest.test_case "singleton identity" `Quick
            test_merge_singleton_identity;
          Alcotest.test_case "early-stopped partial counts" `Quick
            test_merge_early_stopped_partial_counts;
        ] );
    ]
