(* The serving subsystem: JSON codec, LRU cache, bounded queue, request
   decoding, and the end-to-end service loop. *)

module Json = Suu_service.Json
module Cache = Suu_service.Cache
module Work_queue = Suu_service.Work_queue
module Request = Suu_service.Request
module Service = Suu_service.Service
module Instance = Suu_core.Instance

let instance_text =
  "suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"

let chain_text = "suu 1\nn 2 m 2\nedges 1\n0 1\nprobs\n0.9 0.5\n0.4 0.8"

(* --- Json --- *)

let json_testable =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Json.to_string v))
    ( = )

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Num 1.5);
        ("b", Json.Str "x\"y\\z\n\t");
        ("c", Json.List [ Json.Bool true; Json.Null; Json.int (-3) ]);
        ("d", Json.Obj []);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.check json_testable "roundtrip" v v'
  | Error msg -> Alcotest.fail msg

let test_json_integral_output () =
  Alcotest.(check string) "int" "42" (Json.to_string (Json.int 42));
  Alcotest.(check string) "neg" "-7" (Json.to_string (Json.int (-7)));
  Alcotest.(check string) "frac" "1.25" (Json.to_string (Json.Num 1.25))

let test_json_parse_escapes () =
  match Json.of_string {|"aA\né"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "escapes" "aA\n\xc3\xa9" s
  | _ -> Alcotest.fail "expected a string"

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted malformed input: " ^ s)
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "tru";
  bad "1 2";
  bad "\"unterminated"

let test_json_accessors () =
  let v = Json.Obj [ ("k", Json.Num 3.); ("s", Json.Str "v") ] in
  Alcotest.(check (option int)) "int" (Some 3) (Json.to_int (Json.Num 3.));
  Alcotest.(check (option int)) "not int" None (Json.to_int (Json.Num 3.5));
  Alcotest.(check (option string))
    "member" (Some "v")
    (Option.bind (Json.member "s" v) Json.to_str);
  Alcotest.(check (option string))
    "missing" None
    (Option.bind (Json.member "zz" v) Json.to_str)

(* --- Cache --- *)

let test_cache_hit_miss () =
  let c = Cache.create ~capacity:4 in
  Alcotest.(check (option int)) "cold" None (Cache.find c "a");
  Cache.add c "a" 1;
  Alcotest.(check (option int)) "hit" (Some 1) (Cache.find c "a");
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  (* Touch "a" so "b" is the LRU entry when "c" arrives. *)
  ignore (Cache.find c "a" : int option);
  Cache.add c "c" 3;
  Alcotest.(check (option int)) "a kept" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "c kept" (Some 3) (Cache.find c "c");
  Alcotest.(check int) "size bounded" 2 (Cache.length c)

let test_cache_overwrite () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "a" 1;
  Cache.add c "a" 9;
  Alcotest.(check (option int)) "new value" (Some 9) (Cache.find c "a");
  Alcotest.(check int) "one entry" 1 (Cache.length c)

let test_cache_disabled () =
  let c = Cache.create ~capacity:0 in
  Cache.add c "a" 1;
  Alcotest.(check (option int)) "never stores" None (Cache.find c "a");
  Alcotest.(check int) "empty" 0 (Cache.length c)

(* --- Work_queue --- *)

let test_queue_backpressure () =
  let q = Work_queue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Work_queue.push q 1);
  Alcotest.(check bool) "push 2" true (Work_queue.push q 2);
  Alcotest.(check bool) "full" false (Work_queue.push q 3);
  Alcotest.(check (option int)) "fifo" (Some 1) (Work_queue.pop q);
  Alcotest.(check bool) "room again" true (Work_queue.push q 3);
  Alcotest.(check int) "hwm" 2 (Work_queue.high_water_mark q)

let test_queue_close_drains () =
  let q = Work_queue.create ~capacity:4 in
  ignore (Work_queue.push q 1 : bool);
  ignore (Work_queue.push q 2 : bool);
  Work_queue.close q;
  Alcotest.(check bool) "closed rejects" false (Work_queue.push q 3);
  Alcotest.(check (option int)) "drains 1" (Some 1) (Work_queue.pop q);
  Alcotest.(check (option int)) "drains 2" (Some 2) (Work_queue.pop q);
  Alcotest.(check (option int)) "then None" None (Work_queue.pop q)

let test_queue_cross_domain () =
  let q = Work_queue.create ~capacity:8 in
  let consumer =
    Domain.spawn (fun () ->
        let rec loop acc =
          match Work_queue.pop q with
          | Some x -> loop (acc + x)
          | None -> acc
        in
        loop 0)
  in
  for i = 1 to 100 do
    while not (Work_queue.push q i) do
      Domain.cpu_relax ()
    done
  done;
  Work_queue.close q;
  Alcotest.(check int) "all delivered" 5050 (Domain.join consumer)

(* --- Request decoding --- *)

let decode ?(trials = 50) ?(seed = 1) line =
  Request.of_line ~default_trials:trials ~default_seed:seed line

let test_request_decode_solve () =
  match
    decode
      (Printf.sprintf
         {|{"op":"solve","id":"r","algo":"adaptive","trials":7,"seed":9,"instance":"%s"}|}
         (String.concat "\\n" (String.split_on_char '\n' instance_text)))
  with
  | Ok { id; op = Request.Solve { algo; trials; seed; instance }; _ } ->
      Alcotest.(check (option string)) "id" (Some "r") id;
      Alcotest.(check string) "algo" "adaptive" (Request.algo_name algo);
      Alcotest.(check int) "trials" 7 trials;
      Alcotest.(check int) "seed" 9 seed;
      Alcotest.(check int) "jobs" 2 (Instance.n instance)
  | Ok _ -> Alcotest.fail "wrong op"
  | Error (msg, _) -> Alcotest.fail msg

let test_request_defaults () =
  match
    decode ~trials:123 ~seed:77
      (Printf.sprintf {|{"op":"solve","instance":"%s"}|}
         (String.concat "\\n" (String.split_on_char '\n' instance_text)))
  with
  | Ok { op = Request.Solve { algo; trials; seed; _ }; id; deadline_ms; _ } ->
      Alcotest.(check string) "auto" "auto" (Request.algo_name algo);
      Alcotest.(check int) "default trials" 123 trials;
      Alcotest.(check int) "default seed" 77 seed;
      Alcotest.(check (option string)) "no id" None id;
      Alcotest.(check bool) "no deadline" true (deadline_ms = None)
  | Ok _ -> Alcotest.fail "wrong op"
  | Error (msg, _) -> Alcotest.fail msg

let test_request_errors_keep_id () =
  (match decode {|{"op":"solve","id":"k"}|} with
  | Error (_, Some "k") -> ()
  | _ -> Alcotest.fail "missing instance should fail but keep the id");
  (match decode {|{"op":"nope","id":"k"}|} with
  | Error (msg, Some "k") ->
      Alcotest.(check bool) "names the op" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "unknown op should fail but keep the id");
  match decode "not json at all" with
  | Error (_, None) -> ()
  | _ -> Alcotest.fail "garbage should fail without an id"

let test_request_bad_instance () =
  match decode {|{"op":"info","instance":"suu 2\nbogus"}|} with
  | Error (msg, _) ->
      Alcotest.(check bool) "mentions instance" true
        (String.length msg >= 9 && String.sub msg 0 9 = "instance:")
  | Ok _ -> Alcotest.fail "bad instance accepted"

let test_request_hostile_instance () =
  (* Negative sizes in an embedded instance/plan must decode to [Error] —
     before the Io size validation they escaped as Invalid_argument and
     killed the service's reader loop. *)
  let bad line =
    match decode line with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted hostile request: " ^ line)
  in
  bad {|{"op":"info","id":"e","instance":"suu 1\nn 0 m -1\nedges 0\nprobs"}|};
  bad {|{"op":"solve","id":"e","instance":"suu 1\nn -1 m 1\nedges 0\nprobs"}|};
  bad
    {|{"op":"estimate","id":"e","plan":"suu-plan 1\nm 1\nprefix -1\ncycle 0","instance":"suu 1\nn 1 m 1\nedges 0\nprobs\n0.5"}|}

let test_cache_key_semantics () =
  let line trials seed text =
    Printf.sprintf {|{"op":"solve","trials":%d,"seed":%d,"instance":"%s"}|}
      trials seed
      (String.concat "\\n" (String.split_on_char '\n' text))
  in
  let key l =
    match decode l with
    | Ok req -> Request.cache_key req
    | Error (msg, _) -> Alcotest.fail msg
  in
  let k = key (line 50 1 instance_text) in
  Alcotest.(check bool) "cacheable" true (k <> None);
  Alcotest.(check (option string)) "same request, same key" k
    (key (line 50 1 instance_text));
  Alcotest.(check bool) "trials change the key" true
    (k <> key (line 51 1 instance_text));
  Alcotest.(check bool) "seed changes the key" true
    (k <> key (line 50 2 instance_text));
  Alcotest.(check bool) "instance changes the key" true
    (k <> key (line 50 1 chain_text));
  (* "auto" executes as "adaptive", so the two must share a cache entry;
     "oblivious" is a different computation and must not. *)
  let algo_line a =
    Printf.sprintf {|{"op":"solve","algo":"%s","trials":50,"seed":1,"instance":"%s"}|}
      a
      (String.concat "\\n" (String.split_on_char '\n' instance_text))
  in
  Alcotest.(check (option string)) "auto aliases adaptive"
    (key (algo_line "adaptive"))
    (key (algo_line "auto"));
  Alcotest.(check bool) "oblivious is distinct" true
    (key (algo_line "oblivious") <> key (algo_line "auto"));
  match decode {|{"op":"stats"}|} with
  | Ok req ->
      Alcotest.(check (option string)) "stats uncacheable" None
        (Request.cache_key req)
  | Error (msg, _) -> Alcotest.fail msg

(* --- end-to-end service --- *)

let escaped text = String.concat "\\n" (String.split_on_char '\n' text)

let config ~workers =
  {
    Service.workers;
    queue_capacity = 64;
    cache_capacity = 16;
    default_trials = 40;
    default_seed = 5;
    default_deadline_ms = None;
  }

let status line =
  match Json.of_string line with
  | Ok v -> Option.bind (Json.member "status" v) Json.to_str
  | Error _ -> None

let field name line =
  match Json.of_string line with
  | Ok v -> Json.member name v
  | Error _ -> None

let test_service_lifecycle () =
  let solve id =
    Printf.sprintf
      {|{"op":"solve","id":"%s","trials":40,"seed":5,"instance":"%s"}|} id
      (escaped instance_text)
  in
  let lines =
    [
      solve "a";
      solve "b";
      "garbage";
      Printf.sprintf
        {|{"op":"solve","id":"t","deadline_ms":0,"instance":"%s"}|}
        (escaped instance_text);
      {|{"op":"stats","id":"z"}|};
    ]
  in
  let out, report = Service.run_lines (config ~workers:1) lines in
  Alcotest.(check int) "one response per request" 5 (List.length out);
  let nth k = List.nth out k in
  Alcotest.(check (option string)) "a ok" (Some "ok") (status (nth 0));
  Alcotest.(check (option string)) "b ok" (Some "ok") (status (nth 1));
  Alcotest.(check (option string)) "garbage -> error" (Some "error")
    (status (nth 2));
  Alcotest.(check (option string)) "deadline -> timeout" (Some "timeout")
    (status (nth 3));
  Alcotest.(check (option string)) "stats ok" (Some "ok") (status (nth 4));
  (* The repeat is a cache hit with identical result fields. *)
  Alcotest.(check (option bool)) "a computed" (Some false)
    (Option.bind (field "cached" (nth 0)) Json.to_bool);
  Alcotest.(check (option bool)) "b cached" (Some true)
    (Option.bind (field "cached" (nth 1)) Json.to_bool);
  Alcotest.(check bool) "identical means" true
    (field "mean" (nth 0) = field "mean" (nth 1));
  (* Metrics agree with what we just observed. *)
  Alcotest.(check int) "requests" 4 report.Service.metrics.Suu_service.Metrics.requests;
  Alcotest.(check int) "ok" 2 report.Service.metrics.Suu_service.Metrics.ok;
  Alcotest.(check int) "errors" 1 report.Service.metrics.Suu_service.Metrics.errors;
  Alcotest.(check int) "timeouts" 1
    report.Service.metrics.Suu_service.Metrics.timeouts;
  Alcotest.(check int) "cache hits" 1 report.Service.cache_hits;
  Alcotest.(check int) "cache misses" 1 report.Service.cache_misses;
  (* And the stats response reports the state before itself. *)
  Alcotest.(check (option int)) "stats sees 4 requests" (Some 4)
    (Option.bind (field "requests" (nth 4)) Json.to_int)

let test_service_order_and_determinism_across_workers () =
  (* Distinct requests (no cache interaction): the response stream must be
     byte-identical no matter how many workers race on it. *)
  let lines =
    List.init 6 (fun k ->
        Printf.sprintf
          {|{"op":"solve","id":"r%d","trials":30,"seed":%d,"instance":"%s"}|}
          k (k + 1) (escaped instance_text))
    @ [ Printf.sprintf {|{"op":"info","id":"i","instance":"%s"}|}
          (escaped chain_text) ]
  in
  let out1, _ = Service.run_lines (config ~workers:1) lines in
  let out3, _ = Service.run_lines (config ~workers:3) lines in
  Alcotest.(check (list string)) "same responses in same order" out1 out3

let test_service_estimate_and_exact () =
  let inst = Suu_harness.Io.of_string instance_text in
  let plan =
    Suu_core.Oblivious.create ~m:2 ~cycle:[| [| 0; 1 |] |] [| [| 0; 1 |] |]
  in
  let plan_text = Suu_harness.Io.schedule_to_string plan in
  let lines =
    [
      Printf.sprintf
        {|{"op":"estimate","id":"e","trials":40,"seed":3,"plan":"%s","instance":"%s"}|}
        (escaped plan_text) (escaped instance_text);
      Printf.sprintf {|{"op":"exact","id":"x","instance":"%s"}|}
        (escaped instance_text);
    ]
  in
  let out, _ = Service.run_lines (config ~workers:1) lines in
  Alcotest.(check (option string)) "estimate ok" (Some "ok")
    (status (List.nth out 0));
  let topt =
    Option.bind (field "topt" (List.nth out 1)) Json.to_num
    |> Option.value ~default:Float.nan
  in
  let exact = (Suu_algo.Malewicz.optimal inst).Suu_algo.Malewicz.value in
  Alcotest.(check (float 1e-9)) "exact matches the DP" exact topt

let test_service_plan_mismatch_rejected () =
  let plan = Suu_core.Oblivious.finite ~m:3 [| [| 0; 1; 0 |] |] in
  let lines =
    [
      Printf.sprintf
        {|{"op":"estimate","id":"e","plan":"%s","instance":"%s"}|}
        (escaped (Suu_harness.Io.schedule_to_string plan))
        (escaped instance_text);
    ]
  in
  let out, _ = Service.run_lines (config ~workers:1) lines in
  Alcotest.(check (option string)) "machine mismatch -> error" (Some "error")
    (status (List.nth out 0))

let test_service_queue_full_rejects () =
  (* Capacity-1 queue, one worker held busy by the first request: with the
     reader racing far ahead, at least one of the many pending requests
     must be shed — and every request still gets exactly one response. *)
  let n = 16 in
  let lines =
    List.init n (fun k ->
        Printf.sprintf
          {|{"op":"solve","id":"r%d","trials":5000,"seed":%d,"instance":"%s"}|}
          k (k + 1) (escaped instance_text))
  in
  let cfg =
    { (config ~workers:1) with Service.queue_capacity = 1; cache_capacity = 0 }
  in
  let out, report = Service.run_lines cfg lines in
  Alcotest.(check int) "one response each" n (List.length out);
  Alcotest.(check int) "accounted" n
    report.Service.metrics.Suu_service.Metrics.requests;
  Alcotest.(check bool) "some shed" true
    (report.Service.metrics.Suu_service.Metrics.rejected > 0);
  let rejected_lines =
    List.filter (fun l -> status l = Some "error") out
  in
  Alcotest.(check int) "shed = error responses"
    report.Service.metrics.Suu_service.Metrics.rejected
    (List.length rejected_lines)

let test_service_survives_hostile_instance () =
  let lines =
    [
      {|{"op":"info","id":"evil","instance":"suu 1\nn 0 m -1\nedges 0\nprobs"}|};
      Printf.sprintf {|{"op":"info","id":"fine","instance":"%s"}|}
        (escaped instance_text);
    ]
  in
  let out, report = Service.run_lines (config ~workers:1) lines in
  Alcotest.(check int) "both answered" 2 (List.length out);
  Alcotest.(check (option string)) "hostile -> error" (Some "error")
    (status (List.nth out 0));
  Alcotest.(check (option string)) "service still serving" (Some "ok")
    (status (List.nth out 1));
  Alcotest.(check int) "error counted" 1
    report.Service.metrics.Suu_service.Metrics.errors

let test_metrics_latency_bounded () =
  let module Metrics = Suu_service.Metrics in
  let m = Metrics.create () in
  let n = 3000 in
  for i = 1 to n do
    Metrics.record_ok m ~latency_ms:(float_of_int i)
  done;
  match (Metrics.snapshot m).Metrics.latency with
  | None -> Alcotest.fail "expected latency figures"
  | Some l ->
      Alcotest.(check int) "counts every ok" n l.Metrics.count;
      Alcotest.(check int) "window stays bounded" 1024 l.Metrics.window;
      Alcotest.(check (float 1e-9)) "running mean over all samples"
        (float_of_int (n + 1) /. 2.)
        l.Metrics.mean_ms;
      Alcotest.(check (float 1e-9)) "running min" 1. l.Metrics.min_ms;
      Alcotest.(check (float 1e-9)) "running max" (float_of_int n)
        l.Metrics.max_ms;
      (* p95 is over the last 1024 samples: n-1023 .. n. *)
      Alcotest.(check bool) "p95 within the recent window" true
        (l.Metrics.p95_ms >= float_of_int (n - 1023)
        && l.Metrics.p95_ms <= float_of_int n)

let () =
  Alcotest.run "service"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "integral output" `Quick
            test_json_integral_output;
          Alcotest.test_case "escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "overwrite" `Quick test_cache_overwrite;
          Alcotest.test_case "capacity 0" `Quick test_cache_disabled;
        ] );
      ( "queue",
        [
          Alcotest.test_case "backpressure" `Quick test_queue_backpressure;
          Alcotest.test_case "close drains" `Quick test_queue_close_drains;
          Alcotest.test_case "cross-domain" `Quick test_queue_cross_domain;
        ] );
      ( "request",
        [
          Alcotest.test_case "decode solve" `Quick test_request_decode_solve;
          Alcotest.test_case "defaults" `Quick test_request_defaults;
          Alcotest.test_case "errors keep id" `Quick
            test_request_errors_keep_id;
          Alcotest.test_case "bad instance" `Quick test_request_bad_instance;
          Alcotest.test_case "hostile instance" `Quick
            test_request_hostile_instance;
          Alcotest.test_case "cache keys" `Quick test_cache_key_semantics;
        ] );
      ( "service",
        [
          Alcotest.test_case "lifecycle" `Quick test_service_lifecycle;
          Alcotest.test_case "deterministic across workers" `Quick
            test_service_order_and_determinism_across_workers;
          Alcotest.test_case "estimate + exact" `Quick
            test_service_estimate_and_exact;
          Alcotest.test_case "plan mismatch" `Quick
            test_service_plan_mismatch_rejected;
          Alcotest.test_case "queue full rejects" `Quick
            test_service_queue_full_rejects;
          Alcotest.test_case "survives hostile instance" `Quick
            test_service_survives_hostile_instance;
          Alcotest.test_case "bounded latency metrics" `Quick
            test_metrics_latency_bounded;
        ] );
    ]
