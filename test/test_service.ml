(* The serving subsystem: JSON codec, LRU cache, bounded queue, request
   decoding, and the end-to-end service loop. *)

module Json = Suu_service.Json
module Cache = Suu_service.Cache
module Work_queue = Suu_service.Work_queue
module Request = Suu_service.Request
module Service = Suu_service.Service
module Fault = Suu_service.Fault
module Instance = Suu_core.Instance

(* The chaos tests' structural assertions (every request answered
   exactly once, in order, with consistent accounting) must hold for
   every fault placement; CI sweeps this seed to prove it. *)
let chaos_seed =
  Option.bind (Sys.getenv_opt "SUU_FAULT_SEED") int_of_string_opt
  |> Option.value ~default:1

let instance_text =
  "suu 1\nn 2 m 2\nedges 0\nprobs\n0.9 0.5\n0.4 0.8"

let chain_text = "suu 1\nn 2 m 2\nedges 1\n0 1\nprobs\n0.9 0.5\n0.4 0.8"

(* --- Json --- *)

let json_testable =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Json.to_string v))
    ( = )

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Num 1.5);
        ("b", Json.Str "x\"y\\z\n\t");
        ("c", Json.List [ Json.Bool true; Json.Null; Json.int (-3) ]);
        ("d", Json.Obj []);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.check json_testable "roundtrip" v v'
  | Error msg -> Alcotest.fail msg

let test_json_integral_output () =
  Alcotest.(check string) "int" "42" (Json.to_string (Json.int 42));
  Alcotest.(check string) "neg" "-7" (Json.to_string (Json.int (-7)));
  Alcotest.(check string) "frac" "1.25" (Json.to_string (Json.Num 1.25))

let test_json_parse_escapes () =
  match Json.of_string {|"aA\né"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "escapes" "aA\n\xc3\xa9" s
  | _ -> Alcotest.fail "expected a string"

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted malformed input: " ^ s)
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "tru";
  bad "1 2";
  bad "\"unterminated"

let test_json_duplicate_keys () =
  (* A line whose meaning depends on which occurrence a reader keeps
     could make the coordinator and the worker it forwards to disagree
     about one request — rejected at the parser, at any depth. *)
  let bad s =
    match Json.of_string s with
    | Error msg ->
        Alcotest.(check bool) "error names the key" true
          (String.length msg > 0)
    | Ok _ -> Alcotest.fail ("accepted duplicate keys: " ^ s)
  in
  bad {|{"a":1,"a":2}|};
  bad {|{"a":1,"b":{"c":1,"c":2}}|};
  bad {|{"op":"solve","seed":1,"seed":2}|};
  (* Equal values are still duplicates. *)
  bad {|{"a":1,"a":1}|};
  match Json.of_string {|{"a":{"b":1},"c":{"b":2}}|} with
  | Ok _ -> ()
  | Error msg ->
      Alcotest.failf "same key in sibling objects wrongly rejected: %s" msg

let test_json_accessors () =
  let v = Json.Obj [ ("k", Json.Num 3.); ("s", Json.Str "v") ] in
  Alcotest.(check (option int)) "int" (Some 3) (Json.to_int (Json.Num 3.));
  Alcotest.(check (option int)) "not int" None (Json.to_int (Json.Num 3.5));
  Alcotest.(check (option string))
    "member" (Some "v")
    (Option.bind (Json.member "s" v) Json.to_str);
  Alcotest.(check (option string))
    "missing" None
    (Option.bind (Json.member "zz" v) Json.to_str)

(* --- Cache --- *)

let test_cache_hit_miss () =
  let c = Cache.create ~capacity:4 in
  Alcotest.(check (option int)) "cold" None (Cache.find c "a");
  Cache.add c "a" 1;
  Alcotest.(check (option int)) "hit" (Some 1) (Cache.find c "a");
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  (* Touch "a" so "b" is the LRU entry when "c" arrives. *)
  ignore (Cache.find c "a" : int option);
  Cache.add c "c" 3;
  Alcotest.(check (option int)) "a kept" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "c kept" (Some 3) (Cache.find c "c");
  Alcotest.(check int) "size bounded" 2 (Cache.length c)

let test_cache_overwrite () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "a" 1;
  Cache.add c "a" 9;
  Alcotest.(check (option int)) "new value" (Some 9) (Cache.find c "a");
  Alcotest.(check int) "one entry" 1 (Cache.length c)

let test_cache_disabled () =
  let c = Cache.create ~capacity:0 in
  Cache.add c "a" 1;
  Alcotest.(check (option int)) "never stores" None (Cache.find c "a");
  Alcotest.(check int) "empty" 0 (Cache.length c)

(* --- Work_queue --- *)

let test_queue_backpressure () =
  let q = Work_queue.create ~capacity:2 () in
  Alcotest.(check bool) "push 1" true (Work_queue.push q 1);
  Alcotest.(check bool) "push 2" true (Work_queue.push q 2);
  Alcotest.(check bool) "full" false (Work_queue.push q 3);
  Alcotest.(check (option int)) "fifo" (Some 1) (Work_queue.pop q);
  Alcotest.(check bool) "room again" true (Work_queue.push q 3);
  Alcotest.(check int) "hwm" 2 (Work_queue.high_water_mark q)

let test_queue_close_drains () =
  let q = Work_queue.create ~capacity:4 () in
  ignore (Work_queue.push q 1 : bool);
  ignore (Work_queue.push q 2 : bool);
  Work_queue.close q;
  Alcotest.(check bool) "closed rejects" false (Work_queue.push q 3);
  Alcotest.(check (option int)) "drains 1" (Some 1) (Work_queue.pop q);
  Alcotest.(check (option int)) "drains 2" (Some 2) (Work_queue.pop q);
  Alcotest.(check (option int)) "then None" None (Work_queue.pop q)

let test_queue_cross_domain () =
  let q = Work_queue.create ~capacity:8 () in
  let consumer =
    Domain.spawn (fun () ->
        let rec loop acc =
          match Work_queue.pop q with
          | Some x -> loop (acc + x)
          | None -> acc
        in
        loop 0)
  in
  for i = 1 to 100 do
    while not (Work_queue.push q i) do
      Domain.cpu_relax ()
    done
  done;
  Work_queue.close q;
  Alcotest.(check int) "all delivered" 5050 (Domain.join consumer)

(* --- Request decoding --- *)

let decode ?(trials = 50) ?(seed = 1) line =
  Request.of_line ~default_trials:trials ~default_seed:seed line

let test_request_decode_solve () =
  match
    decode
      (Printf.sprintf
         {|{"op":"solve","id":"r","algo":"adaptive","trials":7,"seed":9,"instance":"%s"}|}
         (String.concat "\\n" (String.split_on_char '\n' instance_text)))
  with
  | Ok { id; op = Request.Solve { algo; trials; seed; instance; _ }; _ } ->
      Alcotest.(check (option string)) "id" (Some "r") id;
      Alcotest.(check string) "algo" "adaptive" (Request.algo_name algo);
      Alcotest.(check int) "trials" 7 trials;
      Alcotest.(check int) "seed" 9 seed;
      Alcotest.(check int) "jobs" 2 (Instance.n instance)
  | Ok _ -> Alcotest.fail "wrong op"
  | Error (msg, _) -> Alcotest.fail msg

let test_request_defaults () =
  match
    decode ~trials:123 ~seed:77
      (Printf.sprintf {|{"op":"solve","instance":"%s"}|}
         (String.concat "\\n" (String.split_on_char '\n' instance_text)))
  with
  | Ok { op = Request.Solve { algo; trials; seed; _ }; id; deadline_ms; _ } ->
      Alcotest.(check string) "auto" "auto" (Request.algo_name algo);
      Alcotest.(check int) "default trials" 123 trials;
      Alcotest.(check int) "default seed" 77 seed;
      Alcotest.(check (option string)) "no id" None id;
      Alcotest.(check bool) "no deadline" true (deadline_ms = None)
  | Ok _ -> Alcotest.fail "wrong op"
  | Error (msg, _) -> Alcotest.fail msg

let test_request_errors_keep_id () =
  (match decode {|{"op":"solve","id":"k"}|} with
  | Error (_, Some "k") -> ()
  | _ -> Alcotest.fail "missing instance should fail but keep the id");
  (match decode {|{"op":"nope","id":"k"}|} with
  | Error (msg, Some "k") ->
      Alcotest.(check bool) "names the op" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "unknown op should fail but keep the id");
  match decode "not json at all" with
  | Error (_, None) -> ()
  | _ -> Alcotest.fail "garbage should fail without an id"

let test_request_bad_instance () =
  match decode {|{"op":"info","instance":"suu 2\nbogus"}|} with
  | Error (msg, _) ->
      Alcotest.(check bool) "mentions instance" true
        (String.length msg >= 9 && String.sub msg 0 9 = "instance:")
  | Ok _ -> Alcotest.fail "bad instance accepted"

let test_request_hostile_instance () =
  (* Negative sizes in an embedded instance/plan must decode to [Error] —
     before the Io size validation they escaped as Invalid_argument and
     killed the service's reader loop. *)
  let bad line =
    match decode line with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted hostile request: " ^ line)
  in
  bad {|{"op":"info","id":"e","instance":"suu 1\nn 0 m -1\nedges 0\nprobs"}|};
  bad {|{"op":"solve","id":"e","instance":"suu 1\nn -1 m 1\nedges 0\nprobs"}|};
  bad
    {|{"op":"estimate","id":"e","plan":"suu-plan 1\nm 1\nprefix -1\ncycle 0","instance":"suu 1\nn 1 m 1\nedges 0\nprobs\n0.5"}|}

let test_request_ping_and_duplicates () =
  (match decode {|{"op":"ping","id":"p"}|} with
  | Ok { op = Request.Ping; id = Some "p"; _ } -> ()
  | _ -> Alcotest.fail "ping did not decode");
  (match decode {|{"op":"stats","format":"raw"}|} with
  | Ok { op = Request.Stats { format = `Raw }; _ } -> ()
  | _ -> Alcotest.fail "raw stats did not decode");
  (* Duplicate keys surface as a decode error at the request layer. *)
  match decode {|{"op":"ping","id":"p","id":"q"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "request with duplicate id accepted"

let test_request_range () =
  let line range =
    Printf.sprintf
      {|{"op":"solve","id":"r","trials":40,"seed":5%s,"instance":"%s"}|}
      range
      (String.concat "\\n" (String.split_on_char '\n' instance_text))
  in
  (match decode (line {|,"range":[8,24]|}) with
  | Ok { op = Request.Solve { range = Some (8, 24); _ }; _ } -> ()
  | Ok _ -> Alcotest.fail "range not decoded"
  | Error (msg, _) -> Alcotest.fail msg);
  (* Out-of-range or malformed ranges are rejected with the id kept. *)
  List.iter
    (fun r ->
      match decode (line r) with
      | Error (_, Some "r") -> ()
      | _ -> Alcotest.fail ("hostile range accepted: " ^ r))
    [
      {|,"range":[24,8]|};
      {|,"range":[8,8]|};
      {|,"range":[-1,8]|};
      {|,"range":[0,41]|};
      {|,"range":[0]|};
      {|,"range":"x"|};
    ];
  (* A partial answer must never alias the full one in the result
     cache, and distinct ranges must not alias each other. *)
  let key r =
    match decode (line r) with
    | Ok req -> Request.cache_key req
    | Error (msg, _) -> Alcotest.fail msg
  in
  let full = key "" and a = key {|,"range":[0,8]|} and b = key {|,"range":[8,24]|} in
  Alcotest.(check bool) "ranged is cacheable" true (a <> None);
  Alcotest.(check bool) "range changes the key" true (full <> a);
  Alcotest.(check bool) "distinct ranges, distinct keys" true (a <> b);
  Alcotest.(check (option string)) "same range, same key" a (key {|,"range":[0,8]|});
  (* sub_line re-encodes a Monte-Carlo request as its range sub-job:
     same semantics, just a narrower trial window. *)
  match decode (line "") with
  | Error (msg, _) -> Alcotest.fail msg
  | Ok req -> (
      let sub = Request.sub_line req ~lo:8 ~hi:24 in
      match decode sub with
      | Ok { id; op = Request.Solve { range; trials; seed; _ }; _ } ->
          Alcotest.(check (option string)) "sub keeps id" (Some "r") id;
          Alcotest.(check bool) "sub range" true (range = Some (8, 24));
          Alcotest.(check int) "sub trials" 40 trials;
          Alcotest.(check int) "sub seed" 5 seed;
          Alcotest.(check (option string)) "sub key = ranged key" b
            (Request.cache_key
               (Result.get_ok (decode sub)))
      | Ok _ -> Alcotest.fail "sub_line decoded to a different op"
      | Error (msg, _) -> Alcotest.fail ("sub_line does not re-decode: " ^ msg))

(* Every wire algorithm name must survive the coordinator round-trip:
   decode -> sub_line -> decode yields the canonical algorithm ("auto"
   resolves to "adaptive" exactly once; named algorithms are fixed
   points), and a second round-trip changes nothing. *)
let test_request_algo_roundtrip () =
  let line a =
    Printf.sprintf
      {|{"op":"solve","id":"r","algo":"%s","trials":40,"seed":5,"instance":"%s"}|}
      a
      (String.concat "\\n" (String.split_on_char '\n' instance_text))
  in
  List.iter
    (fun (wire, canonical) ->
      match decode (line wire) with
      | Error (msg, _) -> Alcotest.fail (wire ^ ": " ^ msg)
      | Ok req -> (
          Alcotest.(check string)
            (wire ^ " decodes") wire
            (match req.Request.op with
            | Request.Solve { algo; _ } -> Request.algo_name algo
            | _ -> "wrong-op");
          let sub = Request.sub_line req ~lo:0 ~hi:40 in
          match decode sub with
          | Error (msg, _) -> Alcotest.fail (wire ^ " sub_line: " ^ msg)
          | Ok sub_req -> (
              match sub_req.Request.op with
              | Request.Solve { algo; _ } ->
                  Alcotest.(check string)
                    (wire ^ " canonicalizes once") canonical
                    (Request.algo_name algo);
                  (* Idempotent: a sub-job of a sub-job keeps the name. *)
                  let sub2 = Request.sub_line sub_req ~lo:0 ~hi:40 in
                  Alcotest.(check string)
                    (wire ^ " canonical form is a fixed point") sub sub2
              | _ -> Alcotest.fail (wire ^ " sub_line changed the op"))))
    [
      ("auto", "adaptive");
      ("adaptive", "adaptive");
      ("oblivious", "oblivious");
      ("improved", "improved");
      ("lzf", "lzf");
      ("fixed", "fixed");
    ]

(* The dynamic-environment request fields: "releases" (per-job release
   steps) and "churn" (a seeded timeline spec). Both must decode with
   full hostile-input validation, fold into the cache key, and survive
   the coordinator's sub_line re-encoding canonically. *)
let test_request_dyn_fields () =
  let line extra =
    Printf.sprintf
      {|{"op":"solve","id":"d","trials":40,"seed":5%s,"instance":"%s"}|} extra
      (String.concat "\\n" (String.split_on_char '\n' instance_text))
  in
  (match decode (line {|,"releases":[0,3]|}) with
  | Ok { op = Request.Solve { releases = Some r; _ }; _ } ->
      Alcotest.(check (array int)) "releases decoded" [| 0; 3 |] r
  | Ok _ -> Alcotest.fail "releases not decoded"
  | Error (msg, _) -> Alcotest.fail msg);
  (match decode (line {|,"churn":"seed=3,rate=0.2"|}) with
  | Ok { op = Request.Solve { churn = Some p; _ }; _ } ->
      Alcotest.(check int) "churn seed" 3 p.Suu_dyn.Churn.seed;
      Alcotest.(check (float 0.)) "churn rate" 0.2 p.Suu_dyn.Churn.rate;
      Alcotest.(check int) "churn repair defaulted"
        Suu_dyn.Churn.default_params.Suu_dyn.Churn.repair p.Suu_dyn.Churn.repair
  | Ok _ -> Alcotest.fail "churn not decoded"
  | Error (msg, _) -> Alcotest.fail msg);
  (* Hostile vectors are rejected at the boundary with the id kept:
     wrong length, negative step, wrong element type, bad spec. *)
  List.iter
    (fun extra ->
      match decode (line extra) with
      | Error (_, Some "d") -> ()
      | Error (_, _) -> Alcotest.fail ("dropped the id: " ^ extra)
      | Ok _ -> Alcotest.fail ("hostile dyn field accepted: " ^ extra))
    [
      {|,"releases":[0]|};
      {|,"releases":[0,1,2]|};
      {|,"releases":[0,-1]|};
      {|,"releases":[0,"x"]|};
      {|,"releases":"x"|};
      {|,"churn":"rate=2"|};
      {|,"churn":"mtbf=1"|};
      {|,"churn":"rate=0.1,rate=0.2"|};
      {|,"churn":7|};
    ];
  (* A duplicated field dies at the JSON layer (before the id is even
     extracted), like any other duplicate key. *)
  (match decode (line {|,"releases":[0,3],"releases":[1,3]|}) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate releases key accepted");
  (* Cache keys: a dynamic-environment answer must never alias the
     static one, and distinct environments must not alias each other. *)
  let key extra =
    match decode (line extra) with
    | Ok req -> Request.cache_key req
    | Error (msg, _) -> Alcotest.fail msg
  in
  let base = key "" in
  let rel = key {|,"releases":[0,3]|} in
  let chu = key {|,"churn":"seed=3,rate=0.2"|} in
  let both = key {|,"releases":[0,3],"churn":"seed=3,rate=0.2"|} in
  Alcotest.(check bool) "released is cacheable" true (rel <> None);
  Alcotest.(check bool) "releases change the key" true (base <> rel);
  Alcotest.(check bool) "churn changes the key" true (base <> chu);
  Alcotest.(check bool) "released vs churned distinct" true (rel <> chu);
  Alcotest.(check bool) "combined distinct from either" true
    (both <> rel && both <> chu);
  Alcotest.(check (option string)) "same vector, same key" rel
    (key {|,"releases":[0,3]|});
  Alcotest.(check bool) "different vector, different key" true
    (rel <> key {|,"releases":[1,3]|});
  (* The spec is canonicalized before keying: field order is
     irrelevant, so equivalent environments share a cache entry. *)
  Alcotest.(check (option string)) "spec order canonicalizes" chu
    (key {|,"churn":"rate=0.2,seed=3"|});
  (* sub_line carries both fields, canonically re-encoded. *)
  match decode (line {|,"releases":[0,3],"churn":"rate=0.2,seed=3"|}) with
  | Error (msg, _) -> Alcotest.fail msg
  | Ok req -> (
      let sub = Request.sub_line req ~lo:0 ~hi:16 in
      match decode sub with
      | Ok
          {
            op = Request.Solve { releases = Some r; churn = Some p; range; _ };
            _;
          } ->
          Alcotest.(check (array int)) "sub keeps releases" [| 0; 3 |] r;
          Alcotest.(check string) "sub re-encodes the spec canonically"
            "seed=3,rate=0.2,repair=8,perm=0,steps=256"
            (Suu_dyn.Churn.spec_of_params p);
          Alcotest.(check bool) "sub range" true (range = Some (0, 16));
          Alcotest.(check string) "canonical form is a fixed point" sub
            (Request.sub_line (Result.get_ok (decode sub)) ~lo:0 ~hi:16)
      | Ok _ -> Alcotest.fail "sub_line dropped the dyn fields"
      | Error (msg, _) -> Alcotest.fail ("sub_line does not re-decode: " ^ msg))

let test_request_ci_target () =
  let line extra =
    Printf.sprintf
      {|{"op":"solve","id":"c","trials":40,"seed":5%s,"instance":"%s"}|} extra
      (String.concat "\\n" (String.split_on_char '\n' instance_text))
  in
  (match decode (line {|,"ci_target":0.25|}) with
  | Ok { op = Request.Solve { ci_target = Some w; _ }; _ } ->
      Alcotest.(check (float 0.)) "target decoded" 0.25 w
  | Ok _ -> Alcotest.fail "ci_target not decoded"
  | Error (msg, _) -> Alcotest.fail msg);
  (* Absent field: the server default applies; without one, stopping is
     off. *)
  (match
     Request.of_line ~default_trials:40 ~default_seed:5
       ~default_ci_target:0.5 (line "")
   with
  | Ok { op = Request.Solve { ci_target = Some w; _ }; _ } ->
      Alcotest.(check (float 0.)) "server default applies" 0.5 w
  | _ -> Alcotest.fail "default ci_target not applied");
  (match decode (line "") with
  | Ok { op = Request.Solve { ci_target = None; _ }; _ } -> ()
  | _ -> Alcotest.fail "stopping should default to off");
  (* Hostile targets are rejected with the id kept. *)
  List.iter
    (fun extra ->
      match decode (line extra) with
      | Error (_, Some "c") -> ()
      | _ -> Alcotest.fail ("hostile ci_target accepted: " ^ extra))
    [ {|,"ci_target":0|}; {|,"ci_target":-0.5|}; {|,"ci_target":"x"|} ];
  (* An early-stopped answer must never alias an exhaustive one, and the
     target survives sub-job re-encoding so shards stop by the same
     rule. *)
  let key extra =
    match decode (line extra) with
    | Ok req -> Request.cache_key req
    | Error (msg, _) -> Alcotest.fail msg
  in
  Alcotest.(check bool) "target changes the key" true
    (key "" <> key {|,"ci_target":0.25|});
  Alcotest.(check bool) "distinct targets, distinct keys" true
    (key {|,"ci_target":0.25|} <> key {|,"ci_target":0.5|});
  match decode (line {|,"ci_target":0.25|}) with
  | Error (msg, _) -> Alcotest.fail msg
  | Ok req -> (
      match decode (Request.sub_line req ~lo:0 ~hi:20) with
      | Ok { op = Request.Solve { ci_target = Some w; range; _ }; _ } ->
          Alcotest.(check (float 0.)) "sub keeps target" 0.25 w;
          Alcotest.(check bool) "sub range" true (range = Some (0, 20))
      | _ -> Alcotest.fail "sub_line dropped the ci_target")

let test_cache_key_semantics () =
  let line trials seed text =
    Printf.sprintf {|{"op":"solve","trials":%d,"seed":%d,"instance":"%s"}|}
      trials seed
      (String.concat "\\n" (String.split_on_char '\n' text))
  in
  let key l =
    match decode l with
    | Ok req -> Request.cache_key req
    | Error (msg, _) -> Alcotest.fail msg
  in
  let k = key (line 50 1 instance_text) in
  Alcotest.(check bool) "cacheable" true (k <> None);
  Alcotest.(check (option string)) "same request, same key" k
    (key (line 50 1 instance_text));
  Alcotest.(check bool) "trials change the key" true
    (k <> key (line 51 1 instance_text));
  Alcotest.(check bool) "seed changes the key" true
    (k <> key (line 50 2 instance_text));
  Alcotest.(check bool) "instance changes the key" true
    (k <> key (line 50 1 chain_text));
  (* "auto" executes as "adaptive", so the two must share a cache entry;
     "oblivious" is a different computation and must not. *)
  let algo_line a =
    Printf.sprintf {|{"op":"solve","algo":"%s","trials":50,"seed":1,"instance":"%s"}|}
      a
      (String.concat "\\n" (String.split_on_char '\n' instance_text))
  in
  Alcotest.(check (option string)) "auto aliases adaptive"
    (key (algo_line "adaptive"))
    (key (algo_line "auto"));
  Alcotest.(check bool) "oblivious is distinct" true
    (key (algo_line "oblivious") <> key (algo_line "auto"));
  (* The improved family is a different computation again: same
     instance, same trials, same seed must still never alias any other
     algorithm's entry. *)
  Alcotest.(check bool) "improved vs adaptive distinct" true
    (key (algo_line "improved") <> key (algo_line "adaptive"));
  Alcotest.(check bool) "improved vs oblivious distinct" true
    (key (algo_line "improved") <> key (algo_line "oblivious"));
  Alcotest.(check bool) "improved vs auto distinct" true
    (key (algo_line "improved") <> key (algo_line "auto"));
  (* The index-policy families are distinct computations too. *)
  Alcotest.(check bool) "lzf vs adaptive distinct" true
    (key (algo_line "lzf") <> key (algo_line "adaptive"));
  Alcotest.(check bool) "fixed vs lzf distinct" true
    (key (algo_line "fixed") <> key (algo_line "lzf"));
  Alcotest.(check bool) "fixed vs improved distinct" true
    (key (algo_line "fixed") <> key (algo_line "improved"));
  match decode {|{"op":"stats"}|} with
  | Ok req ->
      Alcotest.(check (option string)) "stats uncacheable" None
        (Request.cache_key req)
  | Error (msg, _) -> Alcotest.fail msg

(* --- end-to-end service --- *)

let escaped text = String.concat "\\n" (String.split_on_char '\n' text)

let config ~workers =
  {
    Service.default_config with
    Service.workers;
    queue_capacity = 64;
    cache_capacity = 16;
    default_trials = 40;
    default_seed = 5;
    default_deadline_ms = None;
    (* Chaos is opt-in per test; keep the base config injection-free and
       the backoff cheap enough for retry tests. *)
    max_restarts = 8;
    retries = 2;
    retry_backoff_ms = 0.1;
    fault = Fault.none;
  }

let status line =
  match Json.of_string line with
  | Ok v -> Option.bind (Json.member "status" v) Json.to_str
  | Error _ -> None

let field name line =
  match Json.of_string line with
  | Ok v -> Json.member name v
  | Error _ -> None

let test_service_lifecycle () =
  let solve id =
    Printf.sprintf
      {|{"op":"solve","id":"%s","trials":40,"seed":5,"instance":"%s"}|} id
      (escaped instance_text)
  in
  let lines =
    [
      solve "a";
      solve "b";
      "garbage";
      Printf.sprintf
        {|{"op":"solve","id":"t","deadline_ms":0,"instance":"%s"}|}
        (escaped instance_text);
      {|{"op":"stats","id":"z"}|};
    ]
  in
  let out, report = Service.run_lines (config ~workers:1) lines in
  Alcotest.(check int) "one response per request" 5 (List.length out);
  let nth k = List.nth out k in
  Alcotest.(check (option string)) "a ok" (Some "ok") (status (nth 0));
  Alcotest.(check (option string)) "b ok" (Some "ok") (status (nth 1));
  Alcotest.(check (option string)) "garbage -> error" (Some "error")
    (status (nth 2));
  Alcotest.(check (option string)) "deadline -> timeout" (Some "timeout")
    (status (nth 3));
  Alcotest.(check (option string)) "stats ok" (Some "ok") (status (nth 4));
  (* The repeat is a cache hit with identical result fields. *)
  Alcotest.(check (option bool)) "a computed" (Some false)
    (Option.bind (field "cached" (nth 0)) Json.to_bool);
  Alcotest.(check (option bool)) "b cached" (Some true)
    (Option.bind (field "cached" (nth 1)) Json.to_bool);
  Alcotest.(check bool) "identical means" true
    (field "mean" (nth 0) = field "mean" (nth 1));
  (* Metrics agree with what we just observed. *)
  Alcotest.(check int) "requests" 4 report.Service.metrics.Suu_service.Metrics.requests;
  Alcotest.(check int) "ok" 2 report.Service.metrics.Suu_service.Metrics.ok;
  Alcotest.(check int) "errors" 1 report.Service.metrics.Suu_service.Metrics.errors;
  Alcotest.(check int) "timeouts" 1
    report.Service.metrics.Suu_service.Metrics.timeouts;
  Alcotest.(check int) "cache hits" 1 report.Service.cache_hits;
  Alcotest.(check int) "cache misses" 1 report.Service.cache_misses;
  (* And the stats response reports the state before itself. *)
  Alcotest.(check (option int)) "stats sees 4 requests" (Some 4)
    (Option.bind (field "requests" (nth 4)) Json.to_int)

let test_service_order_and_determinism_across_workers () =
  (* Distinct requests (no cache interaction): the response stream must be
     byte-identical no matter how many workers race on it. *)
  let lines =
    List.init 6 (fun k ->
        Printf.sprintf
          {|{"op":"solve","id":"r%d","trials":30,"seed":%d,"instance":"%s"}|}
          k (k + 1) (escaped instance_text))
    @ [ Printf.sprintf {|{"op":"info","id":"i","instance":"%s"}|}
          (escaped chain_text) ]
  in
  let out1, _ = Service.run_lines (config ~workers:1) lines in
  let out3, _ = Service.run_lines (config ~workers:3) lines in
  Alcotest.(check (list string)) "same responses in same order" out1 out3

let test_service_estimate_domains_bit_identical () =
  (* [estimate_domains > 1] fans each estimate over nested domains; the
     engine's per-trial RNG derivation keeps the response stream
     byte-identical to the inline path, so the knob is pure speed. *)
  let lines =
    List.init 4 (fun k ->
        Printf.sprintf
          {|{"op":"solve","id":"r%d","trials":30,"seed":%d,"instance":"%s"}|}
          k (k + 1) (escaped instance_text))
  in
  let inline, _ = Service.run_lines (config ~workers:1) lines in
  let fanned, _ =
    Service.run_lines
      { (config ~workers:2) with Service.estimate_domains = 3 }
      lines
  in
  Alcotest.(check (list string)) "same responses" inline fanned

let test_service_ci_target_stops_early () =
  (* A request with a ci_target may answer with fewer trials than asked;
     the response reports the executed count (a multiple of the kernel's
     word width) and honours the target. A ranged sub-job under the same
     target reports its executed count too. *)
  let solve extra =
    Printf.sprintf
      {|{"op":"solve","id":"c","trials":20000,"seed":5%s,"instance":"%s"}|}
      extra (escaped instance_text)
  in
  let out, _ =
    Service.run_lines (config ~workers:1)
      [
        solve {|,"ci_target":0.3|};
        solve {|,"ci_target":0.3,"range":[0,20000]|};
      ]
  in
  let whole = List.nth out 0 and part = List.nth out 1 in
  Alcotest.(check (option string)) "ok" (Some "ok") (status whole);
  let trials line =
    Option.bind (field "trials" line) Json.to_int
    |> Option.value ~default:(-1)
  in
  Alcotest.(check bool) "stopped early" true
    (trials whole > 0 && trials whole < 20_000);
  Alcotest.(check int) "at a word boundary" 0
    (trials whole mod Suu_sim.Lanes.lanes_per_word);
  let ci95 =
    Option.bind (field "ci95" whole) Json.to_num
    |> Option.value ~default:Float.nan
  in
  Alcotest.(check bool) "target honoured" true (ci95 <= 0.3);
  (* The ranged sub-job stops at the same boundary (range lo = 0), and
     its samples array matches its executed count. *)
  Alcotest.(check int) "sub-job stops identically" (trials whole)
    (trials part);
  match field "samples" part with
  | Some (Json.List xs) ->
      Alcotest.(check bool) "samples bounded by executed trials" true
        (List.length xs <= trials part)
  | _ -> Alcotest.fail "partial response without samples"

let test_service_estimate_and_exact () =
  let inst = Suu_harness.Io.of_string instance_text in
  let plan =
    Suu_core.Oblivious.create ~m:2 ~cycle:[| [| 0; 1 |] |] [| [| 0; 1 |] |]
  in
  let plan_text = Suu_harness.Io.schedule_to_string plan in
  let lines =
    [
      Printf.sprintf
        {|{"op":"estimate","id":"e","trials":40,"seed":3,"plan":"%s","instance":"%s"}|}
        (escaped plan_text) (escaped instance_text);
      Printf.sprintf {|{"op":"exact","id":"x","instance":"%s"}|}
        (escaped instance_text);
    ]
  in
  let out, _ = Service.run_lines (config ~workers:1) lines in
  Alcotest.(check (option string)) "estimate ok" (Some "ok")
    (status (List.nth out 0));
  let topt =
    Option.bind (field "topt" (List.nth out 1)) Json.to_num
    |> Option.value ~default:Float.nan
  in
  let exact = (Suu_algo.Malewicz.optimal inst).Suu_algo.Malewicz.value in
  Alcotest.(check (float 1e-9)) "exact matches the DP" exact topt

let test_service_ping_and_range_subjobs () =
  (* Trial-range sub-jobs answer raw partial material whose concatenation
     is bit-identical to the engine's unsplit seeded run — the worker
     half of the sharding coordinator's fan-out contract. *)
  let solve range =
    Printf.sprintf
      {|{"op":"solve","id":"s","trials":40,"seed":5%s,"instance":"%s"}|}
      range (escaped instance_text)
  in
  let lines =
    [
      {|{"op":"ping","id":"p"}|};
      solve {|,"range":[0,13]|};
      solve {|,"range":[13,40]|};
      solve "";
    ]
  in
  let out, _ = Service.run_lines (config ~workers:1) lines in
  Alcotest.(check (option bool)) "pong" (Some true)
    (Option.bind (field "pong" (List.nth out 0)) Json.to_bool);
  let samples k =
    match field "samples" (List.nth out k) with
    | Some (Json.List xs) -> List.filter_map Json.to_num xs
    | _ -> Alcotest.failf "response %d carries no samples" k
  in
  let partial_bits =
    List.map Int64.bits_of_float (samples 1 @ samples 2)
  in
  Alcotest.(check (option bool)) "partial marked" (Some true)
    (Option.bind (field "partial" (List.nth out 1)) Json.to_bool);
  Alcotest.(check (option int)) "lo echoed" (Some 13)
    (Option.bind (field "lo" (List.nth out 2)) Json.to_int);
  let inst = Suu_harness.Io.of_string instance_text in
  let policy = Suu_algo.Suu_i.policy inst in
  let full =
    Suu_sim.Engine.estimate_makespan_seeded ~trials:40 ~seed:5 inst policy
  in
  let full_bits =
    Array.to_list (Array.map Int64.bits_of_float full.Suu_sim.Engine.samples)
  in
  Alcotest.(check (list int64))
    "concatenated partial samples = unsplit run" full_bits partial_bits;
  (* The whole request's summary agrees with the engine run too (compared
     at wire precision: the service prints non-integral floats as %.12g). *)
  Alcotest.(check (option string)) "mean matches"
    (Some
       (Printf.sprintf "%.12g" full.Suu_sim.Engine.stats.Suu_prob.Stats.mean))
    (Option.map
       (Printf.sprintf "%.12g")
       (Option.bind (field "mean" (List.nth out 3)) Json.to_num))

let test_service_plan_mismatch_rejected () =
  let plan = Suu_core.Oblivious.finite ~m:3 [| [| 0; 1; 0 |] |] in
  let lines =
    [
      Printf.sprintf
        {|{"op":"estimate","id":"e","plan":"%s","instance":"%s"}|}
        (escaped (Suu_harness.Io.schedule_to_string plan))
        (escaped instance_text);
    ]
  in
  let out, _ = Service.run_lines (config ~workers:1) lines in
  Alcotest.(check (option string)) "machine mismatch -> error" (Some "error")
    (status (List.nth out 0))

let test_service_queue_full_rejects () =
  (* Capacity-1 queue, one worker held busy by the first request: with the
     reader racing far ahead, at least one of the many pending requests
     must be shed — and every request still gets exactly one response. *)
  let n = 16 in
  let lines =
    List.init n (fun k ->
        Printf.sprintf
          {|{"op":"solve","id":"r%d","trials":5000,"seed":%d,"instance":"%s"}|}
          k (k + 1) (escaped instance_text))
  in
  let cfg =
    { (config ~workers:1) with Service.queue_capacity = 1; cache_capacity = 0 }
  in
  let out, report = Service.run_lines cfg lines in
  Alcotest.(check int) "one response each" n (List.length out);
  Alcotest.(check int) "accounted" n
    report.Service.metrics.Suu_service.Metrics.requests;
  Alcotest.(check bool) "some shed" true
    (report.Service.metrics.Suu_service.Metrics.rejected > 0);
  let rejected_lines =
    List.filter (fun l -> status l = Some "error") out
  in
  Alcotest.(check int) "shed = error responses"
    report.Service.metrics.Suu_service.Metrics.rejected
    (List.length rejected_lines)

let test_service_survives_hostile_instance () =
  let lines =
    [
      {|{"op":"info","id":"evil","instance":"suu 1\nn 0 m -1\nedges 0\nprobs"}|};
      Printf.sprintf {|{"op":"info","id":"fine","instance":"%s"}|}
        (escaped instance_text);
    ]
  in
  let out, report = Service.run_lines (config ~workers:1) lines in
  Alcotest.(check int) "both answered" 2 (List.length out);
  Alcotest.(check (option string)) "hostile -> error" (Some "error")
    (status (List.nth out 0));
  Alcotest.(check (option string)) "service still serving" (Some "ok")
    (status (List.nth out 1));
  Alcotest.(check int) "error counted" 1
    report.Service.metrics.Suu_service.Metrics.errors

let test_metrics_latency_bounded () =
  let module Metrics = Suu_service.Metrics in
  let m = Metrics.create () in
  let n = 3000 in
  for i = 1 to n do
    Metrics.record_ok m ~latency_ms:(float_of_int i)
  done;
  match (Metrics.snapshot m).Metrics.latency with
  | None -> Alcotest.fail "expected latency figures"
  | Some l ->
      Alcotest.(check int) "counts every ok" n l.Metrics.count;
      Alcotest.(check (float 1e-9)) "running mean over all samples"
        (float_of_int (n + 1) /. 2.)
        l.Metrics.mean_ms;
      Alcotest.(check (float 1e-9)) "exact min" 1. l.Metrics.min_ms;
      Alcotest.(check (float 1e-9)) "exact max" (float_of_int n)
        l.Metrics.max_ms;
      (* Quantiles come from the log-bucket histogram: within its
         per-bucket relative error of the exact order statistic, ordered,
         and clamped into the observed range. *)
      let within name q v =
        let exact = Float.of_int n *. q in
        if Float.abs (v -. exact) > 0.16 *. exact then
          Alcotest.failf "%s = %.1f, exact %.1f: outside bucket error" name v
            exact
      in
      within "p50" 0.50 l.Metrics.p50_ms;
      within "p95" 0.95 l.Metrics.p95_ms;
      within "p99" 0.99 l.Metrics.p99_ms;
      Alcotest.(check bool) "quantiles ordered and clamped" true
        (l.Metrics.min_ms <= l.Metrics.p50_ms
        && l.Metrics.p50_ms <= l.Metrics.p95_ms
        && l.Metrics.p95_ms <= l.Metrics.p99_ms
        && l.Metrics.p99_ms <= l.Metrics.max_ms)

(* --- fault injection --- *)

let test_fault_determinism () =
  let spec = { Fault.none with Fault.seed = 9; crash = 0.3 } in
  (* Decisions are pure functions of (seed, site, key). *)
  for key = 0 to 199 do
    Alcotest.(check bool) "pure"
      (Fault.fires spec Fault.Crash ~key)
      (Fault.fires spec Fault.Crash ~key)
  done;
  (* Rate extremes. *)
  let never = { Fault.none with Fault.seed = 9 } in
  let always = { Fault.none with Fault.seed = 9; crash = 1.0 } in
  for key = 0 to 199 do
    Alcotest.(check bool) "rate 0 never fires" false
      (Fault.fires never Fault.Crash ~key);
    Alcotest.(check bool) "rate 1 always fires" true
      (Fault.fires always Fault.Crash ~key)
  done;
  (* The empirical rate tracks the configured one. *)
  let n = 10_000 in
  let hits = ref 0 in
  for key = 0 to n - 1 do
    if Fault.fires spec Fault.Crash ~key then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "empirical rate %.3f near 0.3" rate)
    true
    (rate > 0.25 && rate < 0.35);
  (* Seeds and sites decorrelate the pattern. *)
  let differs pred =
    let rec scan key = key < 500 && (pred key || scan (key + 1)) in
    scan 0
  in
  Alcotest.(check bool) "seed changes the pattern" true
    (differs (fun key ->
         Fault.fires spec Fault.Crash ~key
         <> Fault.fires { spec with Fault.seed = 10 } Fault.Crash ~key));
  let both = { spec with Fault.transient = 0.3 } in
  Alcotest.(check bool) "sites draw independently" true
    (differs (fun key ->
         Fault.fires both Fault.Crash ~key
         <> Fault.fires both Fault.Transient ~key));
  (* Jitter factors land in [0,1) and depend on the key. *)
  for key = 0 to 99 do
    let j = Fault.jitter spec ~key in
    Alcotest.(check bool) "jitter in range" true (j >= 0. && j < 1.)
  done;
  Alcotest.(check bool) "jitter varies" true
    (differs (fun key -> Fault.jitter spec ~key <> Fault.jitter spec ~key:(key + 1)))

let test_fault_spec_parse () =
  (match Fault.of_string ~default_seed:4 "" with
  | Ok s ->
      Alcotest.(check bool) "empty spec is none" true (Fault.is_none s);
      Alcotest.(check int) "default seed" 4 s.Fault.seed
  | Error e -> Alcotest.fail e);
  (match
     Fault.of_string "crash=0.25, transient=1, stall=0.5, stall_ms=3, seed=11"
   with
  | Ok s ->
      Alcotest.(check int) "seed" 11 s.Fault.seed;
      Alcotest.(check (float 0.)) "crash" 0.25 s.Fault.crash;
      Alcotest.(check (float 0.)) "transient" 1. s.Fault.transient;
      Alcotest.(check (float 0.)) "stall" 0.5 s.Fault.stall;
      Alcotest.(check (float 0.)) "stall_ms" 3. s.Fault.stall_ms;
      Alcotest.(check bool) "not none" false (Fault.is_none s);
      (* to_string/of_string roundtrip. *)
      (match Fault.of_string (Fault.to_string s) with
      | Ok s' -> Alcotest.(check bool) "roundtrip" true (s = s')
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e);
  let rejects text =
    match Fault.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted bad spec: " ^ text)
  in
  rejects "nope=1";
  rejects "crash";
  rejects "crash=2";
  rejects "crash=-0.1";
  rejects "crash=zero";
  rejects "stall_ms=-5";
  rejects "seed=1.5"

(* --- Work_queue under concurrency (producers x consumers, racing close) --- *)

let test_queue_concurrent_stress () =
  let stress ~close_after_ms =
    let q = Work_queue.create ~on_pop:Domain.cpu_relax ~capacity:8 () in
    let closing = Atomic.make false in
    let producers = 4 and consumers = 4 and per_producer = 300 in
    let prods =
      List.init producers (fun p ->
          Domain.spawn (fun () ->
              let pushed = ref [] in
              (try
                 for j = 0 to per_producer - 1 do
                   let x = (p * per_producer) + j in
                   let rec attempt () =
                     if Work_queue.push q x then pushed := x :: !pushed
                     else if Atomic.get closing then raise Exit
                     else begin
                       Domain.cpu_relax ();
                       attempt ()
                     end
                   in
                   attempt ()
                 done
               with Exit -> ());
              !pushed))
    in
    let cons =
      List.init consumers (fun _ ->
          Domain.spawn (fun () ->
              let rec loop acc =
                match Work_queue.pop q with
                | Some x -> loop (x :: acc)
                | None -> acc
              in
              loop []))
    in
    Unix.sleepf (close_after_ms /. 1000.);
    Atomic.set closing true;
    Work_queue.close q;
    let pushed = List.concat_map Domain.join prods in
    let consumed = List.concat_map Domain.join cons in
    (* Exactly the successfully-pushed items come out: nothing lost,
       nothing delivered twice, regardless of when close lands. *)
    Alcotest.(check int)
      (Printf.sprintf "close after %gms: counts match" close_after_ms)
      (List.length pushed) (List.length consumed);
    Alcotest.(check (list int))
      (Printf.sprintf "close after %gms: same multiset" close_after_ms)
      (List.sort compare pushed)
      (List.sort compare consumed)
  in
  List.iter (fun ms -> stress ~close_after_ms:ms) [ 0.; 1.; 5. ]

(* --- supervised worker pool --- *)

let solve_line k =
  Printf.sprintf {|{"op":"solve","id":"r%d","trials":30,"seed":%d,"instance":"%s"}|}
    k (k + 1) (escaped instance_text)

let response_id line =
  match field "id" line with Some (Json.Str s) -> Some s | _ -> None

let check_ordered out n =
  Alcotest.(check int) "one response per request" n (List.length out);
  List.iteri
    (fun k line ->
      Alcotest.(check (option string))
        (Printf.sprintf "response %d in request order" k)
        (Some (Printf.sprintf "r%d" k))
        (response_id line))
    out

let test_service_worker_crash_supervision () =
  (* Injected crashes kill real worker domains; the supervisor's job is
     to keep the stream whole. Faults are keyed by request sequence, so
     the failure set is predictable from the spec alone. *)
  let spec = { Fault.none with Fault.seed = 11; crash = 0.4 } in
  let n = 12 in
  let crashed k = Fault.fires spec Fault.Crash ~key:k in
  let predicted = List.length (List.filter crashed (List.init n Fun.id)) in
  Alcotest.(check bool) "spec exercises both outcomes" true
    (predicted > 0 && predicted < n);
  let cfg =
    {
      (config ~workers:2) with
      Service.cache_capacity = 0;
      max_restarts = 100;
      retries = 0;
      fault = spec;
    }
  in
  let out, report = Service.run_lines cfg (List.init n solve_line) in
  check_ordered out n;
  List.iteri
    (fun k line ->
      if crashed k then begin
        Alcotest.(check (option string))
          (Printf.sprintf "request %d answered as crash" k)
          (Some "error") (status line);
        Alcotest.(check (option string))
          (Printf.sprintf "request %d names the reason" k)
          (Some "worker_crash")
          (Option.bind (field "reason" line) Json.to_str)
      end
      else
        Alcotest.(check (option string))
          (Printf.sprintf "request %d unaffected" k)
          (Some "ok") (status line))
    out;
  let m = report.Service.metrics in
  Alcotest.(check int) "crashes counted" predicted
    m.Suu_service.Metrics.worker_crashes;
  Alcotest.(check int) "each crash replaced" predicted
    m.Suu_service.Metrics.restarts;
  Alcotest.(check int) "survivors ok" (n - predicted) m.Suu_service.Metrics.ok;
  Alcotest.(check int) "crashes are errors" predicted
    m.Suu_service.Metrics.errors

let test_service_restart_budget_and_drain () =
  (* Every request crashes its worker; with one worker and two allowed
     restarts the pool dies after three crashes, and the remaining
     admitted requests must still be answered (unavailable), in order. *)
  let n = 6 in
  let cfg =
    {
      (config ~workers:1) with
      Service.cache_capacity = 0;
      max_restarts = 2;
      retries = 0;
      fault = { Fault.none with Fault.seed = 3; crash = 1.0 };
    }
  in
  let out, report = Service.run_lines cfg (List.init n solve_line) in
  check_ordered out n;
  List.iteri
    (fun k line ->
      let want = if k < 3 then "worker_crash" else "unavailable" in
      Alcotest.(check (option string))
        (Printf.sprintf "request %d reason" k)
        (Some want)
        (Option.bind (field "reason" line) Json.to_str))
    out;
  let m = report.Service.metrics in
  Alcotest.(check int) "three crashes" 3 m.Suu_service.Metrics.worker_crashes;
  Alcotest.(check int) "budget spent" 2 m.Suu_service.Metrics.restarts;
  Alcotest.(check int) "all errors" n m.Suu_service.Metrics.errors;
  Alcotest.(check int) "none ok" 0 m.Suu_service.Metrics.ok

(* --- retry policy --- *)

let test_service_transient_retry () =
  (* At rate 0.5 with 2 retries, each request succeeds on its first
     non-firing attempt f (carrying "retries":f) or exhausts after 3.
     The placement is a pure function of the spec, so predict it. *)
  let spec = { Fault.none with Fault.seed = 21; transient = 0.5 } in
  let retries = 2 in
  let n = 12 in
  let first_success seq =
    let rec scan k =
      if k > retries then None
      else if
        Fault.fires spec Fault.Transient ~key:(Fault.attempt_key ~seq ~attempt:k)
      then scan (k + 1)
      else Some k
    in
    scan 0
  in
  Alcotest.(check bool) "spec exercises retries and exhaustion" true
    (List.exists (fun s -> first_success s = None) (List.init n Fun.id)
    && List.exists
         (fun s -> match first_success s with Some k -> k > 0 | None -> false)
         (List.init n Fun.id));
  let cfg =
    {
      (config ~workers:2) with
      Service.cache_capacity = 0;
      retries;
      fault = spec;
    }
  in
  let out, report = Service.run_lines cfg (List.init n solve_line) in
  check_ordered out n;
  let expected_retries = ref 0 in
  List.iteri
    (fun k line ->
      match first_success k with
      | Some f ->
          expected_retries := !expected_retries + f;
          Alcotest.(check (option string))
            (Printf.sprintf "request %d recovers" k)
            (Some "ok") (status line);
          Alcotest.(check (option int))
            (Printf.sprintf "request %d retry count" k)
            (if f > 0 then Some f else None)
            (Option.bind (field "retries" line) Json.to_int)
      | None ->
          expected_retries := !expected_retries + retries;
          Alcotest.(check (option string))
            (Printf.sprintf "request %d exhausted" k)
            (Some "error") (status line);
          Alcotest.(check (option string))
            (Printf.sprintf "request %d reason" k)
            (Some "transient")
            (Option.bind (field "reason" line) Json.to_str))
    out;
  Alcotest.(check int) "retries accounted" !expected_retries
    report.Service.metrics.Suu_service.Metrics.retries

let test_service_retry_exhaustion () =
  let n = 4 in
  let cfg =
    {
      (config ~workers:1) with
      Service.cache_capacity = 0;
      retries = 2;
      fault = { Fault.none with Fault.seed = 2; transient = 1.0 };
    }
  in
  let out, report = Service.run_lines cfg (List.init n solve_line) in
  check_ordered out n;
  List.iter
    (fun line ->
      Alcotest.(check (option string)) "exhausted" (Some "transient")
        (Option.bind (field "reason" line) Json.to_str);
      let msg =
        Option.bind (field "error" line) Json.to_str
        |> Option.value ~default:""
      in
      Alcotest.(check bool)
        (Printf.sprintf "message names the attempts: %s" msg)
        true
        (String.length msg >= 16
        && String.sub msg (String.length msg - 16) 16 = "after 3 attempts"))
    out;
  Alcotest.(check int) "2 retries per request" (2 * n)
    report.Service.metrics.Suu_service.Metrics.retries;
  Alcotest.(check int) "all errors" n
    report.Service.metrics.Suu_service.Metrics.errors

(* --- graceful degradation --- *)

let test_service_degraded_admission () =
  (* Watermark 0: every Monte-Carlo request is admitted degraded. The
     response must say so, and its result must equal a full-fidelity run
     at the capped trial count — degradation changes the budget, never
     the reproducibility contract. *)
  let cfg =
    {
      (config ~workers:1) with
      Service.cache_capacity = 0;
      degrade_watermark = Some 0;
      degrade_trials = 10;
    }
  in
  let out, report = Service.run_lines cfg [ solve_line 0 ] in
  let line = List.nth out 0 in
  Alcotest.(check (option string)) "still ok" (Some "ok") (status line);
  Alcotest.(check (option bool)) "marked degraded" (Some true)
    (Option.bind (field "degraded" line) Json.to_bool);
  Alcotest.(check (option int)) "trials capped" (Some 10)
    (Option.bind (field "trials" line) Json.to_int);
  Alcotest.(check int) "counted" 1
    report.Service.metrics.Suu_service.Metrics.degraded;
  (* Same answer as an undegraded request for 10 trials. *)
  let direct =
    Printf.sprintf
      {|{"op":"solve","id":"r0","trials":10,"seed":1,"instance":"%s"}|}
      (escaped instance_text)
  in
  let out', _ =
    Service.run_lines { (config ~workers:1) with Service.cache_capacity = 0 }
      [ direct ]
  in
  Alcotest.(check bool) "mean matches a direct 10-trial run" true
    (field "mean" line = field "mean" (List.nth out' 0));
  (* Info requests are never degraded. *)
  let out'', _ =
    Service.run_lines cfg
      [
        Printf.sprintf {|{"op":"info","id":"r0","instance":"%s"}|}
          (escaped instance_text);
      ]
  in
  Alcotest.(check (option bool)) "info undegraded" None
    (Option.bind (field "degraded" (List.nth out'' 0)) Json.to_bool)

let test_service_stall_timeout () =
  (* A stalled trial burns the request's deadline; the next inter-trial
     poll must catch it and answer "timeout" rather than hang. *)
  let cfg =
    {
      (config ~workers:1) with
      Service.cache_capacity = 0;
      fault = { Fault.none with Fault.seed = 5; stall = 1.0; stall_ms = 30. };
    }
  in
  let line =
    Printf.sprintf
      {|{"op":"solve","id":"r0","trials":30,"seed":1,"deadline_ms":5,"instance":"%s"}|}
      (escaped instance_text)
  in
  let out, report = Service.run_lines cfg [ line ] in
  Alcotest.(check (option string)) "stalled past deadline" (Some "timeout")
    (status (List.nth out 0));
  Alcotest.(check int) "counted as timeout" 1
    report.Service.metrics.Suu_service.Metrics.timeouts

(* --- chaos: any seed, every guarantee --- *)

let test_service_chaos_any_seed () =
  (* The CI matrix sweeps SUU_FAULT_SEED; whatever the placement, the
     structural guarantees hold: every request answered exactly once, in
     order, with coherent accounting and no hangs. *)
  let spec =
    {
      Fault.none with
      Fault.seed = chaos_seed;
      crash = 0.15;
      transient = 0.2;
      stall = 0.05;
      stall_ms = 2.;
      slow = 0.02;
      slow_ms = 1.;
      queue_delay = 0.1;
      queue_ms = 1.;
    }
  in
  let n = 30 in
  let cfg =
    {
      (config ~workers:3) with
      Service.cache_capacity = 8;
      max_restarts = 100;
      retries = 1;
      fault = spec;
    }
  in
  let out, report = Service.run_lines cfg (List.init n solve_line) in
  check_ordered out n;
  let m = report.Service.metrics in
  Alcotest.(check int) "all accounted" n m.Suu_service.Metrics.requests;
  Alcotest.(check int) "outcomes partition the workload" n
    (m.Suu_service.Metrics.ok + m.Suu_service.Metrics.errors
    + m.Suu_service.Metrics.timeouts + m.Suu_service.Metrics.rejected);
  Alcotest.(check bool) "restarts within budget" true
    (m.Suu_service.Metrics.restarts <= 100);
  Alcotest.(check bool) "crashes imply error responses" true
    (m.Suu_service.Metrics.worker_crashes <= m.Suu_service.Metrics.errors);
  (* Each response is valid JSON with a recognised status. *)
  List.iter
    (fun line ->
      match status line with
      | Some ("ok" | "error" | "timeout") -> ()
      | other ->
          Alcotest.fail
            (Printf.sprintf "unexpected status %s in %s"
               (Option.value ~default:"<none>" other)
               line))
    out

let () =
  Alcotest.run "service"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "integral output" `Quick
            test_json_integral_output;
          Alcotest.test_case "escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "duplicate keys" `Quick test_json_duplicate_keys;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "overwrite" `Quick test_cache_overwrite;
          Alcotest.test_case "capacity 0" `Quick test_cache_disabled;
        ] );
      ( "queue",
        [
          Alcotest.test_case "backpressure" `Quick test_queue_backpressure;
          Alcotest.test_case "close drains" `Quick test_queue_close_drains;
          Alcotest.test_case "cross-domain" `Quick test_queue_cross_domain;
          Alcotest.test_case "concurrent stress" `Slow
            test_queue_concurrent_stress;
        ] );
      ( "fault",
        [
          Alcotest.test_case "deterministic decisions" `Quick
            test_fault_determinism;
          Alcotest.test_case "spec parsing" `Quick test_fault_spec_parse;
        ] );
      ( "request",
        [
          Alcotest.test_case "decode solve" `Quick test_request_decode_solve;
          Alcotest.test_case "defaults" `Quick test_request_defaults;
          Alcotest.test_case "errors keep id" `Quick
            test_request_errors_keep_id;
          Alcotest.test_case "bad instance" `Quick test_request_bad_instance;
          Alcotest.test_case "hostile instance" `Quick
            test_request_hostile_instance;
          Alcotest.test_case "cache keys" `Quick test_cache_key_semantics;
          Alcotest.test_case "ping + duplicates" `Quick
            test_request_ping_and_duplicates;
          Alcotest.test_case "trial ranges" `Quick test_request_range;
          Alcotest.test_case "ci_target" `Quick test_request_ci_target;
          Alcotest.test_case "algo round-trip" `Quick
            test_request_algo_roundtrip;
          Alcotest.test_case "dyn fields" `Quick test_request_dyn_fields;
        ] );
      ( "service",
        [
          Alcotest.test_case "lifecycle" `Quick test_service_lifecycle;
          Alcotest.test_case "deterministic across workers" `Quick
            test_service_order_and_determinism_across_workers;
          Alcotest.test_case "estimate + exact" `Quick
            test_service_estimate_and_exact;
          Alcotest.test_case "ping + range sub-jobs" `Quick
            test_service_ping_and_range_subjobs;
          Alcotest.test_case "estimate_domains bit-identical" `Quick
            test_service_estimate_domains_bit_identical;
          Alcotest.test_case "ci_target stops early" `Quick
            test_service_ci_target_stops_early;
          Alcotest.test_case "plan mismatch" `Quick
            test_service_plan_mismatch_rejected;
          Alcotest.test_case "queue full rejects" `Quick
            test_service_queue_full_rejects;
          Alcotest.test_case "survives hostile instance" `Quick
            test_service_survives_hostile_instance;
          Alcotest.test_case "bounded latency metrics" `Quick
            test_metrics_latency_bounded;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "worker crash supervision" `Quick
            test_service_worker_crash_supervision;
          Alcotest.test_case "restart budget + drain" `Quick
            test_service_restart_budget_and_drain;
          Alcotest.test_case "transient retry" `Quick
            test_service_transient_retry;
          Alcotest.test_case "retry exhaustion" `Quick
            test_service_retry_exhaustion;
          Alcotest.test_case "degraded admission" `Quick
            test_service_degraded_admission;
          Alcotest.test_case "stall -> timeout" `Quick
            test_service_stall_timeout;
          Alcotest.test_case "any-seed invariants" `Quick
            test_service_chaos_any_seed;
        ] );
    ]
