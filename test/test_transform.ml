module Instance = Suu_core.Instance
module Transform = Suu_core.Transform
module Dag = Suu_dag.Dag
module Rng = Suu_prob.Rng

let sample () =
  Instance.create
    ~p:[| [| 0.5; 0.2; 0.3; 0.9 |]; [| 0.1; 0.8; 0.4; 0.2 |] |]
    ~dag:(Dag.create ~n:4 [ (0, 1); (1, 2); (0, 3) ])

let test_sub_instance_basic () =
  let inst = sample () in
  let sub, mapping = Transform.sub_instance inst ~jobs:[ 0; 1; 3 ] in
  Alcotest.(check int) "jobs" 3 (Instance.n sub);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 3 |] mapping;
  (* Edge 0->1 survives (as 0->1), 0->3 survives (as 0->2), 1->2 dropped. *)
  Alcotest.(check int) "edges" 2 (Dag.edge_count (Instance.dag sub));
  Alcotest.(check bool) "0->1" true (Dag.has_edge (Instance.dag sub) 0 1);
  Alcotest.(check bool) "0->2" true (Dag.has_edge (Instance.dag sub) 0 2);
  Alcotest.(check (float 0.)) "probs carried" 0.9
    (Instance.prob sub ~machine:0 ~job:2)

let test_sub_instance_dedup_and_sort () =
  let inst = sample () in
  let _, mapping = Transform.sub_instance inst ~jobs:[ 3; 1; 3; 1 ] in
  Alcotest.(check (array int)) "sorted unique" [| 1; 3 |] mapping

let test_sub_instance_range () =
  let inst = sample () in
  Alcotest.check_raises "range"
    (Invalid_argument "Transform.sub_instance: job out of range") (fun () ->
      ignore (Transform.sub_instance inst ~jobs:[ 9 ] : Instance.t * int array))

let test_reverse () =
  let inst = sample () in
  let rev = Transform.reverse inst in
  Alcotest.(check bool) "1->0" true (Dag.has_edge (Instance.dag rev) 1 0);
  Alcotest.(check bool) "not 0->1" false (Dag.has_edge (Instance.dag rev) 0 1);
  Alcotest.(check (float 0.)) "probs unchanged" 0.8
    (Instance.prob rev ~machine:1 ~job:1);
  (* Reversing an out-tree-ish dag yields in-trees. *)
  let out = Suu_dag.Gen.binary_out_tree ~n:7 in
  let inst2 = Instance.create ~p:[| Array.make 7 0.5 |] ~dag:out in
  let rev2 = Transform.reverse inst2 in
  Alcotest.(check bool) "in-trees" true
    (Suu_dag.Classify.matches (Instance.dag rev2) Suu_dag.Classify.In_trees)

let test_reverse_involution () =
  let inst = sample () in
  let back = Transform.reverse (Transform.reverse inst) in
  Alcotest.(check bool) "same edges" true
    (Dag.edges (Instance.dag back) = Dag.edges (Instance.dag inst))

let test_scale_probs () =
  let inst = sample () in
  let slow = Transform.scale_probs inst ~factor:0.5 in
  Alcotest.(check (float 1e-12)) "halved" 0.25
    (Instance.prob slow ~machine:0 ~job:0);
  let fast = Transform.scale_probs inst ~factor:10. in
  Alcotest.(check (float 0.)) "clamped at 1" 1.
    (Instance.prob fast ~machine:0 ~job:3)

let test_scale_probs_incapable () =
  let inst = Instance.independent ~p:[| [| 0.5 |] |] in
  Alcotest.check_raises "zeroed"
    (Instance.Invalid (Instance.Incapable_job { job = 0 }))
    (fun () -> ignore (Transform.scale_probs inst ~factor:0. : Instance.t))

let test_disjoint_union () =
  let a = Instance.create ~p:[| [| 0.5; 0.6 |] |] ~dag:(Dag.create ~n:2 [ (0, 1) ]) in
  let b = Instance.create ~p:[| [| 0.7 |] |] ~dag:(Dag.empty 1) in
  let u = Transform.disjoint_union a b in
  Alcotest.(check int) "jobs" 3 (Instance.n u);
  Alcotest.(check bool) "edge kept" true (Dag.has_edge (Instance.dag u) 0 1);
  Alcotest.(check (float 0.)) "b's prob shifted" 0.7
    (Instance.prob u ~machine:0 ~job:2)

let test_disjoint_union_mismatch () =
  let a = Instance.independent ~p:[| [| 0.5 |] |] in
  let b = Instance.independent ~p:[| [| 0.5 |]; [| 0.5 |] |] in
  Alcotest.check_raises "machines"
    (Invalid_argument "Transform.disjoint_union: machine count mismatch")
    (fun () -> ignore (Transform.disjoint_union a b : Instance.t))

(* Scaling probabilities down can only increase the exact optimum. *)
let prop_scaling_monotone =
  QCheck.Test.make ~name:"TOPT monotone under slowdown" ~count:20
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 4 in
      let inst =
        Instance.independent
          ~p:
            (Array.init 2 (fun _ ->
                 Array.init n (fun _ -> Rng.uniform rng 0.3 0.9)))
      in
      let slow = Transform.scale_probs inst ~factor:0.5 in
      Suu_algo.Malewicz.optimal_value slow
      >= Suu_algo.Malewicz.optimal_value inst -. 1e-9)

(* TOPT of a union with shared machines is at least the max of the parts. *)
let prop_union_harder_than_parts =
  QCheck.Test.make ~name:"TOPT(union) >= max TOPT(parts)" ~count:15
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let mk () =
        let n = 1 + Rng.int rng 2 in
        Instance.independent
          ~p:
            (Array.init 2 (fun _ ->
                 Array.init n (fun _ -> Rng.uniform rng 0.3 0.9)))
      in
      let a = mk () and b = mk () in
      let u = Transform.disjoint_union a b in
      let v x = Suu_algo.Malewicz.optimal_value x in
      v u >= Float.max (v a) (v b) -. 1e-9)

let prop_sub_instance_probs_consistent =
  QCheck.Test.make ~name:"sub-instance probabilities match mapping" ~count:100
    QCheck.(pair small_int (int_range 2 12))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst =
        Instance.create
          ~p:(Array.init 3 (fun _ -> Array.init n (fun _ -> Rng.uniform rng 0.1 0.9)))
          ~dag:(Suu_dag.Gen.random_dag (Rng.split rng) ~n ~edge_prob:0.3)
      in
      let subset =
        List.filter (fun _ -> Rng.bool rng) (List.init n (fun j -> j))
      in
      match subset with
      | [] -> true
      | _ ->
          let sub, mapping = Transform.sub_instance inst ~jobs:subset in
          let ok = ref true in
          for i = 0 to 2 do
            Array.iteri
              (fun k old ->
                if
                  Instance.prob sub ~machine:i ~job:k
                  <> Instance.prob inst ~machine:i ~job:old
                then ok := false)
              mapping
          done;
          !ok)

let () =
  Alcotest.run "transform"
    [
      ( "sub-instance",
        [
          Alcotest.test_case "basic" `Quick test_sub_instance_basic;
          Alcotest.test_case "dedup" `Quick test_sub_instance_dedup_and_sort;
          Alcotest.test_case "range" `Quick test_sub_instance_range;
        ] );
      ( "reverse & scale",
        [
          Alcotest.test_case "reverse" `Quick test_reverse;
          Alcotest.test_case "involution" `Quick test_reverse_involution;
          Alcotest.test_case "scale" `Quick test_scale_probs;
          Alcotest.test_case "scale to incapable" `Quick
            test_scale_probs_incapable;
        ] );
      ( "union",
        [
          Alcotest.test_case "union" `Quick test_disjoint_union;
          Alcotest.test_case "mismatch" `Quick test_disjoint_union_mismatch;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_scaling_monotone;
          QCheck_alcotest.to_alcotest prop_union_harder_than_parts;
          QCheck_alcotest.to_alcotest prop_sub_instance_probs_consistent;
        ] );
    ]
