module Instance = Suu_core.Instance
module Dag = Suu_dag.Dag

let sample () =
  Instance.create
    ~p:[| [| 0.5; 0.2; 0.0 |]; [| 0.1; 0.8; 0.4 |] |]
    ~dag:(Dag.create ~n:3 [ (0, 1) ])

let test_accessors () =
  let inst = sample () in
  Alcotest.(check int) "n" 3 (Instance.n inst);
  Alcotest.(check int) "m" 2 (Instance.m inst);
  Alcotest.(check (float 0.)) "p01" 0.2 (Instance.prob inst ~machine:0 ~job:1);
  Alcotest.(check (float 1e-12)) "total rate job 1" 1.0 (Instance.total_rate inst 1);
  Alcotest.(check (float 0.)) "best prob job 2" 0.4 (Instance.best_prob inst 2);
  Alcotest.(check int) "best machine job 0" 0 (Instance.best_machine inst 0);
  Alcotest.(check (float 0.)) "p_min" 0.1 (Instance.p_min inst);
  Alcotest.(check (list int)) "capable of job 2" [ 1 ] (Instance.capable_machines inst 2);
  Alcotest.(check (float 0.)) "machine 0 max" 0.5 (Instance.machine_max_prob inst 0)

let test_probs_for_job () =
  let inst = sample () in
  Alcotest.(check (array (float 0.))) "column" [| 0.2; 0.8 |]
    (Instance.probs_for_job inst 1)

(* Hostile probability values must be rejected with the typed error —
   coordinates and offending value included — never passed through to the
   samplers (where a NaN would silently poison every Bernoulli draw). *)
let hostile_values =
  [ 1.5; -0.1; Float.nan; Float.infinity; Float.neg_infinity; -1e300 ]

let test_rejects_hostile_probs () =
  List.iter
    (fun v ->
      let p = [| [| 0.5; 0.2 |]; [| 0.1; 0.8 |] |] in
      p.(1).(0) <- v;
      match Instance.create_checked ~p ~dag:(Dag.empty 2) with
      | Error (Instance.Bad_probability { machine = 1; job = 0; value }) ->
          (* NaN <> NaN, so compare representations. *)
          Alcotest.(check bool)
            (Printf.sprintf "offending value %h reported" v)
            true
            (Int64.equal (Int64.bits_of_float value) (Int64.bits_of_float v))
      | Ok _ | Error _ ->
          Alcotest.failf "hostile probability %h not rejected as such" v)
    hostile_values

let test_hostile_raise_is_typed () =
  List.iter
    (fun v ->
      match Instance.independent ~p:[| [| 0.3; v |] |] with
      | (_ : Instance.t) -> Alcotest.failf "hostile %h accepted" v
      | exception Instance.Invalid (Instance.Bad_probability _) -> ()
      | exception e ->
          Alcotest.failf "hostile %h: wrong exception %s" v
            (Printexc.to_string e))
    hostile_values

let test_rejects_incapable_job () =
  match Instance.create_checked ~p:[| [| 0.5; 0.0 |] |] ~dag:(Dag.empty 2) with
  | Error (Instance.Incapable_job { job }) ->
      Alcotest.(check int) "job reported" 1 job
  | Ok _ | Error _ -> Alcotest.fail "incapable job not rejected as such"

let test_rejects_dimension_mismatch () =
  match Instance.create_checked ~p:[| [| 0.5 |] |] ~dag:(Dag.empty 2) with
  | Error (Instance.Row_length_mismatch { machine = 0; expected = 2; got = 1 })
    ->
      ()
  | Ok _ | Error _ -> Alcotest.fail "row mismatch not rejected as such"

let test_rejects_no_machines () =
  Alcotest.check_raises "no machines" (Instance.Invalid Instance.No_machines)
    (fun () -> ignore (Instance.create ~p:[||] ~dag:(Dag.empty 0) : Instance.t))

let test_error_strings () =
  Alcotest.(check string)
    "bad probability message"
    "Instance.create: probability p[1][2] = nan outside [0,1]"
    (Instance.error_to_string
       (Instance.Bad_probability { machine = 1; job = 2; value = Float.nan }));
  Alcotest.(check string)
    "incapable message" "Instance.create: job 3 has no capable machine"
    (Instance.error_to_string (Instance.Incapable_job { job = 3 }))

let test_create_checked_ok () =
  match
    Instance.create_checked
      ~p:[| [| 0.5; 0.2; 0.0 |]; [| 0.1; 0.8; 0.4 |] |]
      ~dag:(Dag.create ~n:3 [ (0, 1) ])
  with
  | Ok inst -> Alcotest.(check int) "n" 3 (Instance.n inst)
  | Error e -> Alcotest.fail (Instance.error_to_string e)

let test_defensive_copy () =
  let p = [| [| 0.5 |] |] in
  let inst = Instance.independent ~p in
  p.(0).(0) <- 0.9;
  Alcotest.(check (float 0.)) "copied" 0.5 (Instance.prob inst ~machine:0 ~job:0)

let test_transpose () =
  let q = [| [| 0.1; 0.2 |]; [| 0.3; 0.4 |]; [| 0.5; 0.6 |] |] in
  let p = Instance.transpose_probs q in
  Alcotest.(check int) "machines" 2 (Array.length p);
  Alcotest.(check (array (float 0.))) "machine 0 row" [| 0.1; 0.3; 0.5 |] p.(0);
  Alcotest.(check (array (float 0.))) "machine 1 row" [| 0.2; 0.4; 0.6 |] p.(1)

let () =
  Alcotest.run "instance"
    [
      ( "instance",
        [
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "probs_for_job" `Quick test_probs_for_job;
          Alcotest.test_case "rejects hostile probs" `Quick
            test_rejects_hostile_probs;
          Alcotest.test_case "hostile raise is typed" `Quick
            test_hostile_raise_is_typed;
          Alcotest.test_case "rejects incapable job" `Quick
            test_rejects_incapable_job;
          Alcotest.test_case "rejects dim mismatch" `Quick
            test_rejects_dimension_mismatch;
          Alcotest.test_case "rejects zero machines" `Quick
            test_rejects_no_machines;
          Alcotest.test_case "error strings" `Quick test_error_strings;
          Alcotest.test_case "create_checked ok" `Quick test_create_checked_ok;
          Alcotest.test_case "defensive copy" `Quick test_defensive_copy;
          Alcotest.test_case "transpose" `Quick test_transpose;
        ] );
    ]
