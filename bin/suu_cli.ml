(* suu: command-line front end.

   Subcommands:
     gen       generate a workload instance and write it to a file
     info      classify an instance and print its lower bounds
     solve     build a schedule for an instance and estimate its makespan
     exact     optimal expected makespan via Malewicz's DP (small instances)
     simulate  trace one execution of a policy step by step
     serve     long-lived batch scheduling service over stdin/stdout *)

open Cmdliner

let instance_arg =
  let doc = "Instance file (format written by 'suu gen')." in
  Arg.(required & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let trials_arg =
  let doc = "Monte-Carlo trials." in
  Arg.(value & opt int 200 & info [ "trials" ] ~docv:"K" ~doc)

let workloads =
  [
    "grid-batch";
    "grid-workflow";
    "grid-divide";
    "grid-aggregate";
    "project";
    "adversarial-spread";
    "figure1";
  ]

let gen_workload name rng ~n ~m =
  let module W = Suu_workloads.Workload in
  match name with
  | "grid-batch" -> W.grid_batch rng ~n ~m
  | "grid-workflow" -> W.grid_workflow rng ~n ~m ~stages:4
  | "grid-divide" -> W.grid_divide rng ~n ~m
  | "grid-aggregate" -> W.grid_aggregate rng ~n ~m
  | "project" -> W.project rng ~n ~m
  | "adversarial-spread" -> W.adversarial_spread ~n ~m
  | "figure1" -> W.figure1 ()
  | other -> failwith ("unknown workload: " ^ other)

let gen_cmd =
  let workload_arg =
    let doc =
      "Workload family: " ^ String.concat ", " workloads ^ "."
    in
    Arg.(
      value
      & opt (enum (List.map (fun w -> (w, w)) workloads)) "grid-batch"
      & info [ "w"; "workload" ] ~docv:"NAME" ~doc)
  in
  let n_arg =
    Arg.(value & opt int 20 & info [ "n"; "jobs" ] ~docv:"N" ~doc:"Number of jobs.")
  in
  let m_arg =
    Arg.(
      value & opt int 6 & info [ "m"; "machines" ] ~docv:"M" ~doc:"Number of machines.")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output instance file.")
  in
  let run workload n m seed out =
    let rng = Suu_prob.Rng.create seed in
    let w = gen_workload workload rng ~n ~m in
    Suu_harness.Io.save out w.Suu_workloads.Workload.instance;
    Printf.printf "wrote %s: %s\n" out w.Suu_workloads.Workload.description
  in
  let term = Term.(const run $ workload_arg $ n_arg $ m_arg $ seed_arg $ out_arg) in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a workload instance") term

let print_info inst =
  let dag = Suu_core.Instance.dag inst in
  Printf.printf "jobs:      %d\n" (Suu_core.Instance.n inst);
  Printf.printf "machines:  %d\n" (Suu_core.Instance.m inst);
  Printf.printf "edges:     %d\n" (Suu_dag.Dag.edge_count dag);
  Printf.printf "class:     %s\n"
    (Suu_dag.Classify.to_string (Suu_dag.Classify.classify dag));
  Printf.printf "width:     %d\n" (Suu_dag.Dag.width dag);
  Printf.printf "crit path: %d jobs\n" (Suu_dag.Dag.longest_path dag);
  let bounds = Suu_algo.Bounds.compute inst in
  Format.printf "bounds:    %a@." Suu_algo.Bounds.pp bounds

let info_cmd =
  let run file = print_info (Suu_harness.Io.load file) in
  Cmd.v
    (Cmd.info "info" ~doc:"Classify an instance and print lower bounds")
    Term.(const run $ instance_arg)

let decompose_cmd =
  let run file =
    let inst = Suu_harness.Io.load file in
    let dag = Suu_core.Instance.dag inst in
    match Suu_dag.Classify.classify dag with
    | Suu_dag.Classify.General ->
        Printf.printf "class: general (not a directed forest)\n";
        Printf.printf "level decomposition (layered heuristic blocks):\n";
        List.iteri
          (fun k level ->
            Printf.printf "  level %d: %s\n" k
              (String.concat " " (List.map string_of_int level)))
          (Suu_algo.Layered.levels dag)
    | shape ->
        Printf.printf "class: %s\n" (Suu_dag.Classify.to_string shape);
        let d = Suu_dag.Chain_decomp.decompose dag in
        Printf.printf "chain decomposition: %d blocks (bound %d)\n"
          (Suu_dag.Chain_decomp.width d)
          (Suu_dag.Chain_decomp.width_bound dag d.Suu_dag.Chain_decomp.mode);
        Array.iteri
          (fun b chains ->
            Printf.printf "  block %d: %s\n" b
              (String.concat " | "
                 (List.map
                    (fun c -> String.concat "->" (List.map string_of_int c))
                    chains)))
          d.Suu_dag.Chain_decomp.blocks
  in
  Cmd.v
    (Cmd.info "decompose"
       ~doc:"Print the chain decomposition (Lemma 4.6) of an instance's DAG")
    Term.(const run $ instance_arg)

let algo_names =
  [ "auto"; "adaptive"; "oblivious"; "improved"; "lzf"; "fixed"; "baselines" ]

let solve_cmd =
  let algo_arg =
    let doc = "Algorithm: auto|adaptive|oblivious|improved|lzf|fixed|baselines." in
    Arg.(
      value
      & opt (enum (List.map (fun a -> (a, a)) algo_names)) "auto"
      & info [ "a"; "algo" ] ~docv:"ALGO" ~doc)
  in
  let run file algo trials seed =
    let inst = Suu_harness.Io.load file in
    let bounds = Suu_algo.Bounds.compute inst in
    let lb = Suu_algo.Bounds.best bounds in
    let policies =
      match algo with
      | "adaptive" -> [ Suu_algo.Solver.solve ~kind:`Adaptive inst ]
      | "oblivious" -> [ Suu_algo.Solver.solve ~kind:`Oblivious inst ]
      | "improved" -> [ Suu_algo.Solver.solve ~kind:`Improved inst ]
      | "lzf" -> [ Suu_algo.Solver.solve ~kind:`Lzf inst ]
      | "fixed" -> [ Suu_algo.Solver.solve ~kind:`Fixed inst ]
      | "baselines" -> Suu_algo.Baselines.all ~seed inst
      | _ -> (
          [ Suu_algo.Solver.solve ~kind:`Adaptive inst ]
          @ (match Suu_algo.Solver.solve ~kind:`Oblivious inst with
            | p -> [ p ]
            | exception Suu_algo.Solver.Unsupported _ -> [])
          @ [
              Suu_algo.Solver.solve ~kind:`Improved inst;
              Suu_algo.Solver.solve ~kind:`Lzf inst;
              Suu_algo.Solver.solve ~kind:`Fixed inst;
            ])
    in
    let ms =
      Suu_harness.Experiment.compare_policies ~trials ~seed inst
        ~lower_bound:lb policies
    in
    Format.printf "bounds: %a@." Suu_algo.Bounds.pp bounds;
    Suu_harness.Table.print ~title:"expected makespan"
      ~header:Suu_harness.Experiment.row_header
      (List.map Suu_harness.Experiment.row ms)
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Schedule an instance and estimate the makespan")
    Term.(const run $ instance_arg $ algo_arg $ trials_arg $ seed_arg)

let exact_cmd =
  let run file =
    let inst = Suu_harness.Io.load file in
    match Suu_algo.Malewicz.optimal inst with
    | r ->
        Printf.printf "TOPT = %.6f (%d states)\n" r.Suu_algo.Malewicz.value
          r.Suu_algo.Malewicz.states
    | exception Suu_algo.Malewicz.Too_expensive msg ->
        Printf.eprintf "too expensive: %s\n" msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "exact" ~doc:"Optimal expected makespan (Malewicz DP)")
    Term.(const run $ instance_arg)

let plan_cmd =
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output plan file.")
  in
  let run file out =
    let inst = Suu_harness.Io.load file in
    let sched =
      match Suu_dag.Classify.classify (Suu_core.Instance.dag inst) with
      | Suu_dag.Classify.Independent -> Suu_algo.Lp_indep.schedule inst
      | Suu_dag.Classify.Chains -> Suu_algo.Chains.schedule inst
      | Suu_dag.Classify.Out_trees | Suu_dag.Classify.In_trees ->
          Suu_algo.Trees.schedule inst
      | Suu_dag.Classify.Forest -> Suu_algo.Forest.schedule inst
      | Suu_dag.Classify.General -> Suu_algo.Layered.schedule inst
    in
    Suu_harness.Io.save_schedule out sched;
    Printf.printf "wrote %s: %d prefix steps, %d cycle steps (%s)\n" out
      (Suu_core.Oblivious.prefix_length sched)
      (Suu_core.Oblivious.cycle_length sched)
      (Suu_algo.Solver.algorithm_name ~allow_heuristic:true inst)
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Compute an oblivious schedule and write it to a plan file")
    Term.(const run $ instance_arg $ out_arg)

let simulate_cmd =
  let plan_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "plan" ] ~docv:"FILE"
          ~doc:"Replay a plan file instead of the adaptive policy.")
  in
  let gantt_arg =
    Arg.(
      value & flag
      & info [ "gantt" ] ~doc:"Render the execution as a Gantt chart.")
  in
  let run file plan gantt trials seed =
    let inst = Suu_harness.Io.load file in
    let policy =
      match plan with
      | Some path ->
          Suu_core.Policy.of_oblivious "plan"
            (Suu_harness.Io.load_schedule path)
      | None -> Suu_algo.Solver.solve ~kind:`Adaptive inst
    in
    let rng = Suu_prob.Rng.create seed in
    let history = Suu_sim.Engine.trace rng inst policy in
    if gantt then
      print_string
        (Suu_harness.Gantt.of_trace ~m:(Suu_core.Instance.m inst) history)
    else
      List.iter
        (fun (t, a, completed) ->
          Format.printf "step %3d  %a  done: %s@." t Suu_core.Assignment.pp a
            (String.concat "," (List.map string_of_int completed)))
        history;
    let e = Suu_sim.Engine.estimate_makespan ~trials rng inst policy in
    Format.printf "E[makespan] over %d trials: %.2f ±%.2f@." trials
      e.Suu_sim.Engine.stats.Suu_prob.Stats.mean
      e.Suu_sim.Engine.stats.Suu_prob.Stats.ci95
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Trace one execution step by step (adaptive, or a saved plan)")
    Term.(const run $ instance_arg $ plan_arg $ gantt_arg $ trials_arg $ seed_arg)

(* Graceful shutdown for `suu serve`: the first SIGINT/SIGTERM stops the
   reader (the service then drains the queue, joins the workers and
   emits its shutdown report); a second signal restores the default
   disposition, so a wedged drain can still be killed.

   OCaml may run the handler on any domain at a safe point. Only the
   main domain — and only while it is blocked in [input_line] — may
   raise to interrupt the read; everywhere else the handler just sets
   the flag, which the transport checks before the next read. *)
exception Shutdown_signal

let serve_stopping = Atomic.make false
let serve_in_recv = Atomic.make false

let install_serve_signals () =
  let main = Domain.self () in
  let restore_default () =
    List.iter
      (fun s -> Sys.set_signal s Sys.Signal_default)
      [ Sys.sigint; Sys.sigterm ]
  in
  let handler _ =
    Atomic.set serve_stopping true;
    restore_default ();
    if Domain.self () = main && Atomic.get serve_in_recv then
      raise Shutdown_signal
  in
  List.iter
    (fun s -> Sys.set_signal s (Sys.Signal_handle handler))
    [ Sys.sigint; Sys.sigterm ]

let signal_aware_stdio () : (module Suu_service.Service.TRANSPORT) =
  (module struct
    let recv () =
      if Atomic.get serve_stopping then None
      else begin
        (* The whole window during which [serve_in_recv] is set must be
           covered by the handler: the signal can land between
           [input_line] returning and the flag being cleared, and an
           escaping [Shutdown_signal] would kill the reader loop from
           outside the service — skipping the drain and the final
           shutdown report. Catching it here turns that race into a
           clean end-of-input. *)
        match
          Atomic.set serve_in_recv true;
          let line = In_channel.input_line In_channel.stdin in
          Atomic.set serve_in_recv false;
          line
        with
        | line -> if Atomic.get serve_stopping then None else line
        | exception Shutdown_signal ->
            Atomic.set serve_in_recv false;
            None
      end

    let send line =
      print_string line;
      print_newline ();
      flush stdout
  end)

let serve_cmd =
  let workers_arg =
    let doc =
      "Worker domains (0 = one fewer than the recommended domain count)."
    in
    Arg.(value & opt int 0 & info [ "workers" ] ~docv:"W" ~doc)
  in
  let queue_arg =
    let doc = "Request queue capacity; further requests are rejected." in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"Q" ~doc)
  in
  let cache_arg =
    let doc = "Result cache capacity (LRU entries; 0 disables caching)." in
    Arg.(value & opt int 128 & info [ "cache" ] ~docv:"C" ~doc)
  in
  let deadline_arg =
    let doc =
      "Default per-request deadline in milliseconds (requests may override \
       with deadline_ms; unset = no deadline)."
    in
    Arg.(
      value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let max_restarts_arg =
    let doc =
      "Replacement worker domains the supervisor may spawn after crashes."
    in
    Arg.(value & opt int 8 & info [ "max-restarts" ] ~docv:"N" ~doc)
  in
  let retries_arg =
    let doc =
      "Retries (capped exponential backoff) for transiently-failed requests."
    in
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let degrade_arg =
    let doc =
      "Queue depth at which new requests run with a degraded trial count \
       (responses carry \"degraded\":true); unset disables degradation."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "degrade-watermark" ] ~docv:"DEPTH" ~doc)
  in
  let estimate_domains_arg =
    let doc =
      "Domains per Monte-Carlo estimate (1 = run a request's trials inline \
       in its worker; results are identical either way)."
    in
    Arg.(value & opt int 1 & info [ "estimate-domains" ] ~docv:"D" ~doc)
  in
  let ci_target_arg =
    let doc =
      "Default CI-width stopping target for Monte-Carlo requests that omit \
       \"ci_target\": estimates stop once the 95% CI half-width of the mean \
       makespan is at most $(docv) (checked every 63 trials); responses \
       report the executed trial count. Unset = run every trial."
    in
    Arg.(
      value & opt (some float) None & info [ "ci-target" ] ~docv:"W" ~doc)
  in
  let fault_arg =
    let doc =
      "Deterministic fault injection for demos/chaos testing, e.g. \
       'seed=7,crash=0.01,transient=0.1,stall=0.05,stall_ms=20'. The seed \
       defaults to \\$SUU_FAULT_SEED when set."
    in
    Arg.(value & opt string "" & info [ "fault-spec" ] ~docv:"SPEC" ~doc)
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ] ~doc:"Suppress the shutdown metrics dump.")
  in
  let stats_format_arg =
    let doc =
      "Shutdown metrics dump format: 'text' (human-readable) or 'prom' \
       (Prometheus text exposition, including the latency histogram and \
       engine counters)."
    in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("prom", `Prom) ]) `Text
      & info [ "stats-format" ] ~docv:"FMT" ~doc)
  in
  let trace_out_arg =
    let doc =
      "Record request/execute spans and write them as Chrome trace-event \
       JSON (Perfetto-loadable) to $(docv) on shutdown."
    in
    Arg.(
      value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let listen_arg =
    let doc =
      "Serve over TCP instead of stdin/stdout: listen on $(docv) \
       ('host:port', ':port' or 'port'; port 0 picks a free port), announce \
       'listening HOST:PORT' on stdout, then run one service instance per \
       accepted connection (same line protocol, connections served in \
       sequence)."
    in
    Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let max_conns_arg =
    let doc =
      "With --listen: exit after serving this many connections (0 = keep \
       accepting until signalled)."
    in
    Arg.(value & opt int 0 & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let run workers queue cache trials seed deadline max_restarts retries
      degrade estimate_domains ci_target fault_spec quiet stats_format trace_out
      listen max_conns =
    (match ci_target with
    | Some w when w <= 0. ->
        Printf.eprintf "suu serve: --ci-target must be > 0\n";
        exit 2
    | _ -> ());
    let module Service = Suu_service.Service in
    let module Fault = Suu_service.Fault in
    let default_seed =
      Option.bind (Sys.getenv_opt "SUU_FAULT_SEED") int_of_string_opt
      |> Option.value ~default:1
    in
    let fault =
      match Fault.of_string ~default_seed fault_spec with
      | Ok f -> f
      | Error msg ->
          Printf.eprintf "suu serve: %s\n" msg;
          exit 2
    in
    let config =
      {
        Service.workers =
          (if workers > 0 then workers
           else Service.default_config.Service.workers);
        queue_capacity = max 1 queue;
        cache_capacity = max 0 cache;
        default_trials = trials;
        default_seed = seed;
        default_deadline_ms = deadline;
        max_restarts = max 0 max_restarts;
        retries = max 0 retries;
        retry_backoff_ms = Service.default_config.Service.retry_backoff_ms;
        degrade_watermark = Option.map (max 0) degrade;
        degrade_trials = Service.default_config.Service.degrade_trials;
        estimate_domains = max 1 estimate_domains;
        default_ci_target = ci_target;
        fault;
        tracer =
          (match trace_out with
          | None -> Suu_obs.Trace.disabled
          | Some _ -> Suu_obs.Trace.create ~enabled:true ());
      }
    in
    install_serve_signals ();
    let dump r =
      prerr_string
        (match stats_format with
        | `Text -> Service.report_to_string r
        | `Prom -> Service.report_to_prom ~workers:config.Service.workers r)
    in
    (match listen with
    | None ->
        let report = Service.serve config (signal_aware_stdio ()) in
        if not quiet then dump report
    | Some addr -> (
        (* TCP worker: a torn client socket must surface as EPIPE,
           not kill the process. *)
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        match Suu_service.Tcp.listen addr with
        | Error msg ->
            Printf.eprintf "suu serve: %s\n" msg;
            exit 2
        | Ok (lsock, bound) ->
            (* The announce is the handshake a spawning coordinator
               waits for before dialling. *)
            print_string ("listening " ^ bound);
            print_newline ();
            flush stdout;
            (* One service instance per connection; each prints its own
               shutdown report (stats and cache reset per connection). *)
            Suu_service.Tcp.serve_connections ~max_conns:(max 0 max_conns)
              ~stopping:(fun () -> Atomic.get serve_stopping)
              ~on_report:(fun r ->
                if not quiet then begin
                  dump r;
                  prerr_newline ()
                end)
              config lsock));
    (match trace_out with
    | None -> ()
    | Some path ->
        let events =
          List.map
            (Suu_obs.Trace_event.of_span ~pid:0)
            (Suu_obs.Trace.spans config.Service.tracer)
        in
        Out_channel.with_open_text path (fun oc ->
            Suu_obs.Trace_event.write oc
              (Suu_obs.Trace_event.process_name ~pid:0 "suu serve" :: events));
        Printf.eprintf "wrote %s: %d spans\n" path (List.length events))
  in
  let term =
    Term.(
      const run $ workers_arg $ queue_arg $ cache_arg $ trials_arg $ seed_arg
      $ deadline_arg $ max_restarts_arg $ retries_arg $ degrade_arg
      $ estimate_domains_arg $ ci_target_arg $ fault_arg $ quiet_arg
      $ stats_format_arg $ trace_out_arg $ listen_arg $ max_conns_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve scheduling requests over stdin/stdout (one JSON request per \
          line; see the suu.service library documentation for the protocol)")
    term

let coordinator_cmd =
  let shards_arg =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"N" ~doc:"Worker shard processes to spawn.")
  in
  let replicas_arg =
    Arg.(
      value & opt int 64
      & info [ "replicas" ] ~docv:"R"
          ~doc:"Consistent-hash ring virtual nodes per shard.")
  in
  let split_arg =
    let doc =
      "Split Monte-Carlo requests with at least this many trials into \
       trial-range sub-jobs fanned out across shards (0 disables \
       splitting; merged answers are bit-identical either way)."
    in
    Arg.(value & opt int 64 & info [ "split-threshold" ] ~docv:"T" ~doc)
  in
  let chunk_arg =
    let doc = "Trials per sub-job (0 = about four chunks per shard)." in
    Arg.(value & opt int 0 & info [ "chunk" ] ~docv:"K" ~doc)
  in
  let sub_inflight_arg =
    Arg.(
      value & opt int 4
      & info [ "sub-inflight" ] ~docv:"N"
          ~doc:"Outstanding sub-jobs per shard.")
  in
  let retries_arg =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Re-dispatches (to a surviving shard) per request or sub-job \
             lost with its shard.")
  in
  let heartbeat_arg =
    let doc = "Shard heartbeat period in milliseconds (0 disables)." in
    Arg.(value & opt float 100. & info [ "heartbeat-ms" ] ~docv:"MS" ~doc)
  in
  let transport_arg =
    let doc =
      "Worker transport: 'pipe' spawns workers as pipe children; 'tcp' \
       spawns workers listening on 127.0.0.1 (port picked by the kernel, \
       announced on their stdout) and dials them — same wire protocol, \
       plus reconnect with backoff and idempotent re-send on torn sockets."
    in
    Arg.(
      value
      & opt (enum [ ("pipe", `Pipe); ("tcp", `Tcp) ]) `Pipe
      & info [ "transport" ] ~docv:"T" ~doc)
  in
  let respawn_budget_arg =
    let doc =
      "Respawn attempts per lost shard (capped-exponential backoff, \
       deterministic jitter); 0 = degrade-only, the fleet only shrinks."
    in
    Arg.(value & opt int 2 & info [ "respawn-budget" ] ~docv:"N" ~doc)
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"W" ~doc:"Worker domains per shard.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"Q" ~doc:"Request queue capacity per shard.")
  in
  let cache_arg =
    Arg.(
      value & opt int 128
      & info [ "cache" ] ~docv:"C"
          ~doc:"Result cache capacity per shard (LRU entries).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Default per-request deadline, enforced by the workers.")
  in
  let fault_arg =
    let doc =
      "Coordinator-side fault injection, e.g. 'seed=7,kill=0.05': each \
       dispatch may SIGKILL its target shard first (deterministic in the \
       seed, which defaults to \\$SUU_FAULT_SEED)."
    in
    Arg.(value & opt string "" & info [ "fault-spec" ] ~docv:"SPEC" ~doc)
  in
  let worker_fault_arg =
    let doc = "Fault spec forwarded to every worker shard's --fault-spec." in
    Arg.(
      value & opt string "" & info [ "worker-fault-spec" ] ~docv:"SPEC" ~doc)
  in
  let ci_target_arg =
    let doc =
      "Default CI-width stopping target for Monte-Carlo requests that omit \
       \"ci_target\" (see suu serve --ci-target). Forwarded to every \
       spawned shard so whole-request forwards and trial-range sub-jobs \
       stop by the same rule."
    in
    Arg.(
      value & opt (some float) None & info [ "ci-target" ] ~docv:"W" ~doc)
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ] ~doc:"Suppress the shutdown metrics dump.")
  in
  let run shards replicas split_threshold chunk sub_inflight retries
      heartbeat_ms transport respawn_budget workers queue cache trials seed
      deadline ci_target fault_spec worker_fault_spec quiet =
    (match ci_target with
    | Some w when w <= 0. ->
        Printf.eprintf "suu coordinator: --ci-target must be > 0\n";
        exit 2
    | _ -> ());
    let module Coordinator = Suu_shard.Coordinator in
    let module Fault = Suu_service.Fault in
    let default_seed =
      Option.bind (Sys.getenv_opt "SUU_FAULT_SEED") int_of_string_opt
      |> Option.value ~default:1
    in
    let fault =
      match Fault.of_string ~default_seed fault_spec with
      | Ok f -> f
      | Error msg ->
          Printf.eprintf "suu coordinator: %s\n" msg;
          exit 2
    in
    (match Fault.of_string ~default_seed worker_fault_spec with
    | Ok _ -> ()
    | Error msg ->
        Printf.eprintf "suu coordinator: %s\n" msg;
        exit 2);
    let exe = Sys.executable_name in
    let spawn i =
      let argv =
        [
          [ exe; "serve"; "--quiet" ];
          (match transport with
          | `Pipe -> []
          | `Tcp ->
              (* One connection is a spawned worker's whole lifetime:
                 after its coordinator hangs up it must exit, or the
                 shutdown waitpid would hang on the accept loop. *)
              [ "--listen"; "127.0.0.1:0"; "--max-conns"; "1" ]);
          [ "--workers"; string_of_int (max 1 workers) ];
          [ "--queue"; string_of_int (max 1 queue) ];
          [ "--cache"; string_of_int (max 0 cache) ];
          [ "--trials"; string_of_int trials ];
          [ "--seed"; string_of_int seed ];
          (match deadline with
          | None -> []
          | Some d -> [ "--deadline-ms"; string_of_float d ]);
          (match ci_target with
          | None -> []
          | Some w -> [ "--ci-target"; string_of_float w ]);
          (match worker_fault_spec with
          | "" -> []
          | spec -> [ "--fault-spec"; spec ]);
        ]
        |> List.concat |> Array.of_list
      in
      match transport with
      | `Pipe -> Suu_shard.Client.process ~id:i ~prog:exe ~argv
      | `Tcp -> Suu_shard.Client.tcp_process ~id:i ~fault ~prog:exe ~argv ()
    in
    let config =
      {
        Coordinator.shards = max 1 shards;
        replicas = max 1 replicas;
        split_threshold = max 0 split_threshold;
        chunk_trials = max 0 chunk;
        sub_inflight = max 1 sub_inflight;
        retries = max 0 retries;
        retry_backoff_ms =
          Coordinator.default_config.Coordinator.retry_backoff_ms;
        heartbeat_ms = (if heartbeat_ms > 0. then Some heartbeat_ms else None);
        suspect_after =
          Coordinator.default_config.Coordinator.suspect_after;
        dead_after = Coordinator.default_config.Coordinator.dead_after;
        respawn_budget = max 0 respawn_budget;
        respawn_backoff_ms =
          Coordinator.default_config.Coordinator.respawn_backoff_ms;
        default_trials = trials;
        default_seed = seed;
        default_ci_target = ci_target;
        fault;
        tracer = Suu_obs.Trace.disabled;
      }
    in
    install_serve_signals ();
    let report = Coordinator.serve config ~spawn (signal_aware_stdio ()) in
    if not quiet then prerr_string (Coordinator.report_to_string report)
  in
  let term =
    Term.(
      const run $ shards_arg $ replicas_arg $ split_arg $ chunk_arg
      $ sub_inflight_arg $ retries_arg $ heartbeat_arg $ transport_arg
      $ respawn_budget_arg $ workers_arg $ queue_arg $ cache_arg $ trials_arg
      $ seed_arg $ deadline_arg $ ci_target_arg $ fault_arg $ worker_fault_arg
      $ quiet_arg)
  in
  Cmd.v
    (Cmd.info "coordinator"
       ~doc:
         "Serve scheduling requests by sharding them across worker \
          processes: whole requests route by consistent hashing on the \
          result-cache key, large Monte-Carlo requests split into \
          trial-range sub-jobs merged bit-identically, and worker loss is \
          retried on surviving shards")
    term

let trace_cmd =
  let module ET = Suu_obs.Exec_trace in
  let file_arg =
    let doc =
      "Instance file; when absent, a grid-batch workload is generated from \
       --jobs/--machines/--seed."
    in
    Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)
  in
  let jobs_arg =
    Arg.(
      value & opt int 8
      & info [ "jobs" ] ~docv:"N" ~doc:"Jobs of the generated instance.")
  in
  let machines_arg =
    Arg.(
      value & opt int 4
      & info [ "machines" ] ~docv:"M"
          ~doc:"Machines of the generated instance.")
  in
  let policy_arg =
    let doc = "Policy to execute: auto|adaptive|oblivious." in
    Arg.(
      value
      & opt (enum [ ("auto", `Auto); ("adaptive", `Adaptive); ("oblivious", `Oblivious) ]) `Auto
      & info [ "policy" ] ~docv:"POLICY" ~doc)
  in
  let trials_arg =
    Arg.(
      value & opt int 5
      & info [ "trials" ] ~docv:"K" ~doc:"Monte-Carlo trials to estimate over.")
  in
  let sample_every_arg =
    Arg.(
      value & opt int 1
      & info [ "sample-every" ] ~docv:"S"
          ~doc:"Capture every $(docv)-th trial (1 = all).")
  in
  let limit_arg =
    Arg.(
      value & opt int 10_000
      & info [ "limit" ] ~docv:"STEPS"
          ~doc:"Cap on recorded steps per captured trial.")
  in
  let out_arg =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Chrome trace-event JSON output (load in ui.perfetto.dev or \
             chrome://tracing).")
  in
  let csv_arg =
    Arg.(
      value & opt string "mass.csv"
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Per-job mass-vs-time CSV output.")
  in
  let run file jobs machines policy trials seed sample_every limit out csv =
    let inst =
      match file with
      | Some f -> Suu_harness.Io.load f
      | None ->
          let rng = Suu_prob.Rng.create seed in
          (Suu_workloads.Workload.grid_batch rng ~n:jobs ~m:machines)
            .Suu_workloads.Workload.instance
    in
    let kind =
      match policy with `Oblivious -> `Oblivious | `Auto | `Adaptive -> `Adaptive
    in
    let pol =
      match Suu_algo.Solver.solve ~kind inst with
      | p -> p
      | exception Suu_algo.Solver.Unsupported msg ->
          Printf.eprintf "suu trace: unsupported: %s\n" msg;
          exit 1
    in
    let observer, captured =
      ET.collector ~sample_every:(max 1 sample_every) ~limit:(max 1 limit) ()
    in
    let e =
      Suu_sim.Engine.estimate_makespan_seeded ~observer ~trials ~seed inst pol
    in
    let captured = captured () in
    let n = Suu_core.Instance.n inst and m = Suu_core.Instance.m inst in
    let prob ~machine ~job = Suu_core.Instance.prob inst ~machine ~job in
    let events =
      List.concat_map (ET.to_events ~prob ~machines:m ~jobs:n) captured
    in
    Out_channel.with_open_text out (fun oc -> Suu_obs.Trace_event.write oc events);
    let rows = List.concat_map (ET.mass_csv_rows ~prob ~jobs:n) captured in
    Suu_harness.Csv.write ~path:csv ~header:ET.csv_header rows;
    Printf.printf "E[makespan] over %d trials of %s: %.2f ±%.2f\n" trials
      pol.Suu_core.Policy.name e.Suu_sim.Engine.stats.Suu_prob.Stats.mean
      e.Suu_sim.Engine.stats.Suu_prob.Stats.ci95;
    Printf.printf "wrote %s: %d trace events from %d captured trials\n" out
      (List.length events) (List.length captured);
    Printf.printf "wrote %s: %d rows\n" csv (List.length rows)
  in
  let term =
    Term.(
      const run $ file_arg $ jobs_arg $ machines_arg $ policy_arg $ trials_arg
      $ seed_arg $ sample_every_arg $ limit_arg $ out_arg $ csv_arg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Capture per-step execution traces of sampled Monte-Carlo trials \
          and render them as Chrome trace-event JSON plus a per-job \
          mass-vs-time CSV")
    term

let check_cmd =
  let module Check = Suu_check in
  let seed_arg =
    let doc = "Master seed; every generated case derives from it." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let count_arg =
    let doc = "Cases generated per property." in
    Arg.(value & opt int 30 & info [ "count" ] ~docv:"N" ~doc)
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Run 10 cases per property (CI smoke mode).")
  in
  let props_arg =
    let doc =
      "Run only the named property (repeatable). Hidden properties can be \
       selected this way."
    in
    Arg.(value & opt_all string [] & info [ "p"; "property" ] ~docv:"NAME" ~doc)
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List registered properties and exit.")
  in
  let replay_arg =
    let doc =
      "Re-run a single failure from its repro line (as printed on failure), \
       instead of generating cases."
    in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"JSON" ~doc)
  in
  let out_arg =
    let doc = "Write failing-case repro lines (one JSON per line) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let print_failure (f : Check.Runner.failure) =
    Printf.printf "FAIL %s: %s\n" f.Check.Runner.property f.Check.Runner.message;
    Printf.printf "  original: %s (case %d, seed %d)\n"
      (Check.Case.summary f.Check.Runner.original)
      f.Check.Runner.case_index f.Check.Runner.case_seed;
    Printf.printf "  shrunk:   %s (%d shrink steps): %s\n"
      (Check.Case.summary f.Check.Runner.shrunk)
      f.Check.Runner.shrink_steps f.Check.Runner.shrunk_message;
    Printf.printf "  repro: %s\n" (Check.Runner.repro_json f)
  in
  let run seed count quick names list replay out =
    if list then begin
      List.iter
        (fun (p : Check.Property.t) ->
          Printf.printf "%-20s %s\n" p.Check.Property.name p.Check.Property.doc)
        Check.Registry.visible;
      exit 0
    end;
    match replay with
    | Some line -> (
        match Check.Runner.replay line with
        | Error msg ->
            Printf.eprintf "suu check: %s\n" msg;
            exit 2
        | Ok (prop, case) -> (
            Printf.printf "replay %s on %s\n" prop.Check.Property.name
              (Check.Case.summary case);
            match prop.Check.Property.check case with
            | Check.Property.Pass ->
                print_endline "ok: property passes on this case";
                exit 0
            | Check.Property.Skip reason ->
                Printf.printf "skip: %s\n" reason;
                exit 0
            | Check.Property.Fail msg ->
                Printf.printf "FAIL %s: %s\n" prop.Check.Property.name msg;
                exit 1))
    | None ->
        let props =
          match names with
          | [] -> Check.Registry.visible
          | names ->
              List.map
                (fun name ->
                  match Check.Registry.find name with
                  | Some p -> p
                  | None ->
                      Printf.eprintf
                        "suu check: unknown property %S (try --list)\n" name;
                      exit 2)
                names
        in
        let count = if quick then min count 10 else count in
        let on_property (r : Check.Runner.prop_report) =
          (match r.Check.Runner.failure with
          | None ->
              let skipped =
                if r.Check.Runner.skipped > 0 then
                  Printf.sprintf " (%d skipped)" r.Check.Runner.skipped
                else ""
              in
              Printf.printf "ok   %-20s %d cases%s\n"
                r.Check.Runner.prop.Check.Property.name r.Check.Runner.cases
                skipped
          | Some f -> print_failure f);
          flush stdout
        in
        let report = Check.Runner.run ~on_property ~seed ~count props in
        Printf.printf "check: %d properties, %d cases, %d failures\n"
          (List.length report.Check.Runner.props)
          report.Check.Runner.total_cases
          (List.length report.Check.Runner.failures);
        (match out with
        | Some file when report.Check.Runner.failures <> [] ->
            Out_channel.with_open_text file (fun oc ->
                List.iter
                  (fun f ->
                    Out_channel.output_string oc (Check.Runner.repro_json f);
                    Out_channel.output_char oc '\n')
                  report.Check.Runner.failures)
        | _ -> ());
        if not (Check.Runner.ok report) then exit 1
  in
  let term =
    Term.(
      const run $ seed_arg $ count_arg $ quick_arg $ props_arg $ list_arg
      $ replay_arg $ out_arg)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the property-based conformance suite (seeded generators, \
          brute-force and cross-implementation oracles, shrinking)")
    term

let () =
  let doc = "multiprocessor scheduling under uncertainty (Lin-Rajaraman SPAA'07)" in
  let info = Cmd.info "suu" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd;
            info_cmd;
            solve_cmd;
            exact_cmd;
            simulate_cmd;
            decompose_cmd;
            plan_cmd;
            serve_cmd;
            coordinator_cmd;
            trace_cmd;
            check_cmd;
          ]))
