(** Named monotonic counters, safe to bump from any domain.

    A registry is a set of named [Atomic.t] cells. Creation ([make]) is
    mutex-guarded and idempotent per name; the hot path ([incr]/[add])
    is a single [Atomic.fetch_and_add] on a cell the caller holds
    directly — no lookup, no lock. The engine registers its counters
    once per estimator call and bumps them per {e trial}, not per step,
    which is what keeps instrumentation overhead inside the perf-smoke
    budget. *)

type t
(** A registry. *)

type counter
(** A cell within a registry; hold on to it, bumping is O(1). *)

val create : unit -> t

val make : t -> string -> counter
(** [make t name] returns the counter registered under [name], creating
    it at zero on first use. Subsequent calls with the same name return
    the same cell, so independent call sites accumulate together. *)

val incr : counter -> unit
val add : counter -> int -> unit
val get : counter -> int

val snapshot : t -> (string * int) list
(** Current values, sorted by name. Each value is an atomic read; the
    list as a whole is not a consistent cut across cells (fine for
    telemetry). *)

val find : t -> string -> int option
(** Value of a named counter, if registered. *)

val merge_snapshots : (string * int) list list -> (string * int) list
(** Sum any number of {!snapshot}s by counter name (a name absent from a
    snapshot contributes 0), sorted by name — how a sharding coordinator
    folds per-worker-process engine counters into one exposition. *)
