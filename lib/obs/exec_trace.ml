type step = { t : int; assignment : int array; completed : int list }

type trial = {
  index : int;
  seed : int;
  makespan : int;
  truncated : bool;
  steps : step list;
}

type observer = { sample_every : int; limit : int; emit : trial -> unit }

let observer ?(sample_every = 1) ?(limit = 100_000) emit =
  if sample_every < 1 then invalid_arg "Exec_trace.observer: sample_every < 1";
  if limit < 1 then invalid_arg "Exec_trace.observer: limit < 1";
  { sample_every; limit; emit }

let selects o k = k mod o.sample_every = 0

let collector ?sample_every ?limit () =
  let acc = ref [] in
  let obs = observer ?sample_every ?limit (fun tr -> acc := tr :: !acc) in
  (obs, fun () -> List.rev !acc)

(* Fold mass accumulation over the recorded steps. [f] sees each step
   with the post-step mass snapshot (the live [mass] array — copy if
   keeping). *)
let fold_mass ~prob ~jobs trial f init =
  let mass = Array.make jobs 0. in
  List.fold_left
    (fun acc (st : step) ->
      Array.iteri
        (fun i j ->
          if j >= 0 && j < jobs then
            mass.(j) <- Float.min 1. (mass.(j) +. prob ~machine:i ~job:j))
        st.assignment;
      f acc st mass)
    init trial.steps

let mass_trajectory ~prob ~jobs trial =
  fold_mass ~prob ~jobs trial
    (fun acc st mass -> (st.t, Array.copy mass) :: acc)
    []
  |> List.rev

let csv_header = [ "trial"; "t"; "job"; "mass"; "completed" ]

let mass_csv_rows ~prob ~jobs trial =
  let done_ = Array.make jobs false in
  fold_mass ~prob ~jobs trial
    (fun acc st mass ->
      List.iter (fun j -> if j >= 0 && j < jobs then done_.(j) <- true) st.completed;
      (* Prepend ascending (the final [List.rev] flips both levels), so
         rows come out (step, job)-ascending. *)
      let rows = ref acc in
      for j = 0 to jobs - 1 do
        rows :=
          [
            string_of_int trial.index;
            string_of_int st.t;
            string_of_int j;
            Printf.sprintf "%.6f" mass.(j);
            (if done_.(j) then "1" else "0");
          ]
          :: !rows
      done;
      !rows)
    []
  |> List.rev

let to_events ?prob ~machines ~jobs trial =
  let pid = trial.index in
  let events = ref [] in
  let push e = events := e :: !events in
  push
    (Trace_event.process_name ~pid
       (Printf.sprintf "trial %d (seed %d)" trial.index trial.seed));
  for i = 0 to machines - 1 do
    push (Trace_event.thread_name ~pid ~tid:i (Printf.sprintf "machine %d" i))
  done;
  (* Run-length encode each machine's lane: a slice per maximal run of
     the same job over consecutive recorded steps. *)
  let run_job = Array.make machines (-1) in
  let run_start = Array.make machines 0 in
  let run_p = Array.make machines 0. in
  let prev_t = Array.make machines 0 in
  let close i end_t =
    let j = run_job.(i) in
    if j >= 0 then begin
      let args =
        match prob with
        | None -> []
        | Some _ -> [ ("p", Trace_event.Num run_p.(i)) ]
      in
      push
        (Trace_event.complete ~cat:"exec" ~args ~pid ~tid:i
           ~ts_us:(Float.of_int (run_start.(i) - 1))
           ~dur_us:(Float.of_int (end_t - run_start.(i) + 1))
           (Printf.sprintf "job %d" j))
    end;
    run_job.(i) <- -1
  in
  let unfinished = ref jobs in
  List.iter
    (fun (st : step) ->
      Array.iteri
        (fun i j ->
          let contiguous = run_job.(i) = j && prev_t.(i) = st.t - 1 in
          if not contiguous then begin
            close i prev_t.(i);
            if j >= 0 then begin
              run_job.(i) <- j;
              run_start.(i) <- st.t;
              run_p.(i) <-
                (match prob with
                | None -> 0.
                | Some p -> p ~machine:i ~job:j)
            end
          end;
          prev_t.(i) <- st.t)
        st.assignment;
      List.iter
        (fun j ->
          decr unfinished;
          (* Completions land on the lane that ran the job, if any. *)
          let tid = ref 0 in
          Array.iteri (fun i j' -> if j' = j then tid := i) st.assignment;
          push
            (Trace_event.instant ~cat:"exec" ~pid ~tid:!tid
               ~ts_us:(Float.of_int st.t)
               (Printf.sprintf "complete job %d" j)))
        st.completed;
      push
        (Trace_event.counter ~cat:"exec" ~pid ~ts_us:(Float.of_int st.t)
           "unfinished"
           [ ("jobs", Float.of_int !unfinished) ]))
    trial.steps;
  for i = 0 to machines - 1 do
    close i prev_t.(i)
  done;
  List.rev !events
