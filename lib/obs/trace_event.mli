(** Chrome [trace_event] JSON export (the JSON-array flavour).

    The output loads directly into Perfetto ({:https://ui.perfetto.dev})
    or [chrome://tracing]. We emit four phases: ["X"] (complete slice
    with duration), ["i"] (instant), ["C"] (counter track) and ["M"]
    (metadata naming processes/threads). Timestamps and durations are in
    microseconds, per the format.

    The writer here is deliberately standalone — [lib/obs] must not
    depend on the serving layer, so it cannot reuse
    [lib/service/json.ml]. The conformance tests close the loop the
    other way: they parse this module's output with the service JSON
    parser. *)

type arg = Str of string | Num of float | Int of int

type t = {
  name : string;
  cat : string;
  ph : string;  (** phase: ["X"], ["i"], ["C"] or ["M"] *)
  ts_us : float;  (** event timestamp, microseconds *)
  dur_us : float;  (** only emitted for ["X"] *)
  pid : int;
  tid : int;
  args : (string * arg) list;
}

val complete :
  ?cat:string ->
  ?args:(string * arg) list ->
  pid:int ->
  tid:int ->
  ts_us:float ->
  dur_us:float ->
  string ->
  t

val instant :
  ?cat:string ->
  ?args:(string * arg) list ->
  pid:int ->
  tid:int ->
  ts_us:float ->
  string ->
  t

val counter :
  ?cat:string -> pid:int -> ts_us:float -> string -> (string * float) list -> t
(** [counter ~pid ~ts_us name series] — one sample of a counter track;
    each pair in [series] becomes a stacked sub-series in the viewer. *)

val process_name : pid:int -> string -> t
val thread_name : pid:int -> tid:int -> string -> t
(** Metadata events: label a pid / (pid, tid) in the viewer's sidebar. *)

val of_span : ?pid:int -> Trace.span -> t
(** A recorded span as a complete-slice event ([pid] defaults to 0; tid
    is the span's recording domain). Span attributes become string
    [args]. *)

val to_json : t list -> string
(** The whole trace as one JSON array. Strings are escaped per RFC 8259;
    non-finite numbers are emitted as [null] (JSON has no [inf]/[nan]). *)

val write : out_channel -> t list -> unit
(** [to_json] streamed to a channel, one event per line, without
    building the whole string in memory. *)
