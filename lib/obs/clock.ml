external now_ns : unit -> float = "suu_obs_clock_now_ns"

let now_ms () = now_ns () /. 1e6
let now_us () = now_ns () /. 1e3
