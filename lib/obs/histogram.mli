(** Fixed-layout histograms with log-spaced buckets.

    The layout is decided at creation time and never changes: bucket [k]
    covers the half-open interval [(lo·growth^k, lo·growth^(k+1)]]; the
    first bucket additionally absorbs everything at or below [lo] and
    the last everything above the top bound. Memory is therefore O(1)
    regardless of how many samples are recorded — this is what replaced
    the serving layer's bounded ring of recent latencies, turning its
    windowed p95 into whole-run quantiles at the same O(1) cost per
    sample.

    Quantile estimates carry a bounded {e relative} error: a reported
    quantile is within a factor of [growth] of some true sample quantile
    whose rank differs by at most the bucket's tie mass, provided the
    samples fall inside the covered range (out-of-range samples clamp to
    the end buckets, where only [min]/[max] stay exact). [count], [sum],
    [mean], [min] and [max] are exact.

    Not domain-safe: callers serialise access (the service records under
    its metrics mutex). *)

type t

val create : ?lo:float -> ?growth:float -> ?buckets:int -> unit -> t
(** Defaults: [lo = 1e-3], [growth = 1.15], [buckets = 166] — for
    latencies in milliseconds this spans 1 µs to ≈ 2.8 hours with ≤ 15%
    relative quantile error.
    @raise Invalid_argument unless [lo > 0], [growth > 1], [buckets >= 1]. *)

val add : t -> float -> unit
(** Record one sample. NaN is ignored (counted nowhere) — a poisoned
    measurement must not destroy the whole histogram's [sum]. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
(** [sum / count]; 0 when empty. *)

val min_value : t -> float
(** Exact smallest recorded sample; [infinity] when empty. *)

val max_value : t -> float
(** Exact largest recorded sample; [neg_infinity] when empty. *)

val quantile : t -> float -> float
(** [quantile h q] for [q] in [0,1]: the geometric midpoint of the
    bucket holding the rank-⌈q·count⌉ sample, clamped to the exact
    [min]/[max]. 0 when empty.
    @raise Invalid_argument if [q] is outside [0,1]. *)

val buckets : t -> (float * int) list
(** Non-cumulative occupancy as [(upper_bound, count)] pairs in
    increasing bound order, empty buckets skipped — the Prometheus
    exposition re-accumulates them. The last bucket's bound is the top
    of the covered range; overflow samples are counted there. *)

val relative_error : t -> float
(** The layout's worst-case relative quantile error, [growth - 1]. *)

val copy : t -> t
(** Snapshot: an independent histogram with the same layout and
    contents. *)

val merge_into : t -> into:t -> unit
(** Add every bucket of the first histogram into [into].
    @raise Invalid_argument if the layouts differ. *)

val merge : t list -> t
(** A fresh histogram holding the union of the given histograms'
    samples: bucket counts, [count] and [sum] add; [min]/[max] combine.
    The inputs are not modified.
    @raise Invalid_argument on the empty list or mismatched layouts. *)

(** A serialisable image of a histogram, for crossing a process
    boundary (the sharding coordinator pulls one per worker and merges
    them): the layout parameters plus the occupied buckets as
    [(bucket index, count)] pairs in increasing index order. [count] is
    recoverable as the sum of the bucket counts; [sum]/[min]/[max] ride
    along explicitly. *)
type snapshot = {
  layout_lo : float;
  layout_growth : float;
  layout_buckets : int;
  occupied : (int * int) list;
  total_sum : float;
  observed_min : float;
  observed_max : float;
}

val export : t -> snapshot

val import : snapshot -> t
(** Rebuild a histogram from a snapshot; [export] then [import] is
    content-identical (up to float formatting applied by any codec in
    between).
    @raise Invalid_argument on malformed layouts, out-of-range bucket
    indices or negative counts. *)
