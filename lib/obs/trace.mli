(** Monotonic-clock spans with parent/child nesting, recorded into
    per-domain ring buffers.

    A {e span} is a named interval of wall time with key:value
    attributes and a nesting depth; {!with_span} measures the dynamic
    extent of a thunk. Each domain writes into its own fixed-capacity
    ring — the hot path takes no lock and allocates only the span record
    itself — so tracing from worker domains never serialises them
    ("lock-free-enough"). The registry of per-domain buffers is guarded
    by a mutex taken only on a domain's first span and on {!spans}.

    A disabled tracer is free: {!with_span} tests one boolean and calls
    the thunk directly (no clock read, no allocation).

    {!spans} reads other domains' rings without stopping them; a span
    racing the snapshot may be missed or doubled, but never torn (ring
    slots hold immutable records). That is the intended precision for a
    telemetry ring. *)

type span = {
  name : string;
  cat : string;  (** category, for trace-viewer filtering *)
  tid : int;  (** id of the domain that recorded it *)
  depth : int;  (** nesting depth at entry; 0 = root *)
  start_ns : float;  (** {!Clock.now_ns} at entry *)
  dur_ns : float;
  attrs : (string * string) list;
}

type t

val create : ?capacity:int -> enabled:bool -> unit -> t
(** [capacity] (default 4096) is per domain: each domain keeps its most
    recent [capacity] spans.
    @raise Invalid_argument if [capacity < 1]. *)

val disabled : t
(** A shared always-off tracer, for plumbing defaults. *)

val enabled : t -> bool

val with_span :
  t -> ?cat:string -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] and records a span covering it (also
    on exception, which is re-raised). Nested calls on the same domain
    get increasing [depth]. [cat] defaults to ["suu"]. *)

val spans : t -> span list
(** Snapshot of every domain's ring, merged and sorted by
    [(start_ns, depth)] — parents sort before the children they
    enclose. *)

val dropped : t -> int
(** Spans overwritten by ring wrap-around since creation, summed over
    domains (racy, like {!spans}). *)
