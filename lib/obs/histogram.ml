type t = {
  lo : float;
  inv_log_growth : float;
  growth : float;
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create ?(lo = 1e-3) ?(growth = 1.15) ?(buckets = 166) () =
  if not (lo > 0. && Float.is_finite lo) then
    invalid_arg "Histogram.create: lo must be positive";
  if not (growth > 1. && Float.is_finite growth) then
    invalid_arg "Histogram.create: growth must exceed 1";
  if buckets < 1 then invalid_arg "Histogram.create: buckets < 1";
  {
    lo;
    growth;
    inv_log_growth = 1. /. Float.log growth;
    counts = Array.make buckets 0;
    count = 0;
    sum = 0.;
    min_v = infinity;
    max_v = neg_infinity;
  }

(* Bucket k covers (lo·growth^k, lo·growth^(k+1)]; ends clamp. *)
let bucket_of h v =
  if not (v > h.lo) then 0
  else
    let k = Float.to_int (Float.ceil (Float.log (v /. h.lo) *. h.inv_log_growth)) - 1 in
    if k < 0 then 0
    else if k >= Array.length h.counts then Array.length h.counts - 1
    else k

let upper_bound h k = h.lo *. (h.growth ** Float.of_int (k + 1))
let lower_bound h k = h.lo *. (h.growth ** Float.of_int k)

let add h v =
  if not (Float.is_nan v) then begin
    let k = bucket_of h v in
    h.counts.(k) <- h.counts.(k) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v
  end

let count h = h.count
let sum h = h.sum
let mean h = if h.count = 0 then 0. else h.sum /. Float.of_int h.count
let min_value h = h.min_v
let max_value h = h.max_v

let quantile h q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Histogram.quantile: q not in [0,1]";
  if h.count = 0 then 0.
  else begin
    let rank = max 1 (Float.to_int (Float.ceil (q *. Float.of_int h.count))) in
    let k = ref 0 and seen = ref 0 in
    (try
       for i = 0 to Array.length h.counts - 1 do
         seen := !seen + h.counts.(i);
         if !seen >= rank then begin
           k := i;
           raise Exit
         end
       done;
       k := Array.length h.counts - 1
     with Exit -> ());
    (* Geometric midpoint of the bucket, clamped to the exact extremes —
       so q=0/q=1 answer min/max exactly and no estimate can escape the
       observed range. *)
    let est = Float.sqrt (lower_bound h !k *. upper_bound h !k) in
    Float.min h.max_v (Float.max h.min_v est)
  end

let buckets h =
  let acc = ref [] in
  for k = Array.length h.counts - 1 downto 0 do
    if h.counts.(k) > 0 then acc := (upper_bound h k, h.counts.(k)) :: !acc
  done;
  !acc

let relative_error h = h.growth -. 1.

let copy h =
  {
    lo = h.lo;
    growth = h.growth;
    inv_log_growth = h.inv_log_growth;
    counts = Array.copy h.counts;
    count = h.count;
    sum = h.sum;
    min_v = h.min_v;
    max_v = h.max_v;
  }

let same_layout a b =
  a.lo = b.lo && a.growth = b.growth
  && Array.length a.counts = Array.length b.counts

let merge_into src ~into =
  if not (same_layout src into) then
    invalid_arg "Histogram.merge_into: layouts differ";
  Array.iteri (fun k c -> into.counts.(k) <- into.counts.(k) + c) src.counts;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

let merge = function
  | [] -> invalid_arg "Histogram.merge: no histograms"
  | h :: rest ->
      let acc =
        create ~lo:h.lo ~growth:h.growth ~buckets:(Array.length h.counts) ()
      in
      merge_into h ~into:acc;
      List.iter (fun src -> merge_into src ~into:acc) rest;
      acc

(* --- wire form --- *)

type snapshot = {
  layout_lo : float;
  layout_growth : float;
  layout_buckets : int;
  occupied : (int * int) list;
  total_sum : float;
  observed_min : float;
  observed_max : float;
}

let export h =
  let occupied = ref [] in
  for k = Array.length h.counts - 1 downto 0 do
    if h.counts.(k) > 0 then occupied := (k, h.counts.(k)) :: !occupied
  done;
  {
    layout_lo = h.lo;
    layout_growth = h.growth;
    layout_buckets = Array.length h.counts;
    occupied = !occupied;
    total_sum = h.sum;
    observed_min = h.min_v;
    observed_max = h.max_v;
  }

let import s =
  let h =
    create ~lo:s.layout_lo ~growth:s.layout_growth ~buckets:s.layout_buckets ()
  in
  List.iter
    (fun (k, c) ->
      if k < 0 || k >= s.layout_buckets then
        invalid_arg "Histogram.import: bucket index out of range";
      if c < 0 then invalid_arg "Histogram.import: negative bucket count";
      h.counts.(k) <- h.counts.(k) + c;
      h.count <- h.count + c)
    s.occupied;
  h.sum <- s.total_sum;
  if h.count > 0 then begin
    h.min_v <- s.observed_min;
    h.max_v <- s.observed_max
  end;
  h
