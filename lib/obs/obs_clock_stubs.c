/* Monotonic nanoseconds for span timestamps, latency histograms and
   deadlines. Unix.gettimeofday is a civil clock: an NTP step would tear
   span durations and spuriously expire in-flight requests; this
   switch's Unix lacks OCaml bindings for clock_gettime. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value suu_obs_clock_now_ns(value unit)
{
  struct timespec ts;
#if defined(CLOCK_MONOTONIC)
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return caml_copy_double((double)ts.tv_sec * 1e9 + (double)ts.tv_nsec);
}
