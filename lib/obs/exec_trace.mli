(** Execution traces: per-step machine→job assignments for a sampled
    fraction of Monte-Carlo trials.

    The engine drives this through an [observer] seam: when a trial's
    index is selected by [sample_every], the engine replays or records
    that trial step-by-step and hands the result to [emit]. Everything
    here is in terms of plain ints — job [j] of [jobs], machine [i] of
    [machines] — so [lib/obs] stays free of engine types; probabilities
    enter only through a [prob] callback when mass is derived.

    Semantics of a recorded step: [assignment.(i)] is the job the policy
    {e decided} to run on machine [i] (-1 when idle). For an oblivious
    schedule this is the schedule column verbatim, whether or not the
    job already completed — matching the engine's trace semantics — so
    mass accumulated over the captured assignments equals the schedule
    mass of Definition 2.4 (the [obs] conformance property relies on
    exactly this). [completed] lists the jobs whose Bernoulli draw
    succeeded at this step. *)

type step = {
  t : int;  (** 1-based step index *)
  assignment : int array;  (** machine index → job id, [-1] = idle *)
  completed : int list;  (** jobs completing at this step *)
}

type trial = {
  index : int;  (** trial number within the estimator call *)
  seed : int;  (** the per-trial seed the engine derived *)
  makespan : int;  (** steps to completion ([max_steps] if truncated) *)
  truncated : bool;
  steps : step list;  (** chronological; at most [limit] of them *)
}

type observer = {
  sample_every : int;  (** observe trial [k] iff [k mod sample_every = 0] *)
  limit : int;  (** cap on recorded steps per trial (truncated trials
                    would otherwise record [max_steps] entries) *)
  emit : trial -> unit;
}

val observer : ?sample_every:int -> ?limit:int -> (trial -> unit) -> observer
(** Defaults: [sample_every = 1] (every trial), [limit = 100_000].
    @raise Invalid_argument unless both are [>= 1]. *)

val selects : observer -> int -> bool
(** [selects o k] — does the observer want trial [k]? *)

val collector : ?sample_every:int -> ?limit:int -> unit -> observer * (unit -> trial list)
(** An observer that accumulates trials in memory, and a function
    returning them in emission order. Single-domain use only (the
    engine's sequential estimators emit in order; the parallel estimator
    does not take an observer). *)

val mass_trajectory :
  prob:(machine:int -> job:int -> float) -> jobs:int -> trial -> (int * float array) list
(** Per-job accumulated mass after each recorded step: for every
    captured step [t], a snapshot of [Σ p(i,j)] over the assignments up
    to and including [t], capped at 1 per job (Definition 2.4's
    success-mass cap). The float array is a fresh copy per step, indexed
    by job. *)

val to_events : ?prob:(machine:int -> job:int -> float) -> machines:int -> jobs:int -> trial -> Trace_event.t list
(** Render one trial on a synthetic timeline (1 step = 1 µs): per
    machine, contiguous runs of the same job become complete slices;
    completions become instants; an ["unfinished"] counter tracks the
    number of jobs still alive. With [prob], each slice carries its
    per-step success probability as an arg. [pid] is the trial index, so
    multiple trials load as separate processes in Perfetto. *)

val csv_header : string list
(** [["trial"; "t"; "job"; "mass"; "completed"]] — column names for
    {!mass_csv_rows}. *)

val mass_csv_rows :
  prob:(machine:int -> job:int -> float) -> jobs:int -> trial -> string list list
(** One row per (recorded step × job): trial index, step, job id,
    accumulated capped mass, and whether the job has completed by that
    step (0/1). Shaped for [lib/harness]'s CSV writer. *)
