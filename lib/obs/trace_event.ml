type arg = Str of string | Num of float | Int of int

type t = {
  name : string;
  cat : string;
  ph : string;
  ts_us : float;
  dur_us : float;
  pid : int;
  tid : int;
  args : (string * arg) list;
}

let complete ?(cat = "suu") ?(args = []) ~pid ~tid ~ts_us ~dur_us name =
  { name; cat; ph = "X"; ts_us; dur_us; pid; tid; args }

let instant ?(cat = "suu") ?(args = []) ~pid ~tid ~ts_us name =
  { name; cat; ph = "i"; ts_us; dur_us = 0.; pid; tid; args }

let counter ?(cat = "suu") ~pid ~ts_us name series =
  let args = List.map (fun (k, v) -> (k, Num v)) series in
  { name; cat; ph = "C"; ts_us; dur_us = 0.; pid; tid = 0; args }

let metadata ~pid ~tid name label =
  {
    name;
    cat = "__metadata";
    ph = "M";
    ts_us = 0.;
    dur_us = 0.;
    pid;
    tid;
    args = [ ("name", Str label) ];
  }

let process_name ~pid label = metadata ~pid ~tid:0 "process_name" label
let thread_name ~pid ~tid label = metadata ~pid ~tid "thread_name" label

let of_span ?(pid = 0) (s : Trace.span) =
  complete ~cat:s.cat
    ~args:(List.map (fun (k, v) -> (k, Str v)) s.attrs)
    ~pid ~tid:s.tid ~ts_us:(s.start_ns /. 1e3) ~dur_us:(s.dur_ns /. 1e3)
    s.name

(* RFC 8259 string escaping: the two mandatory escapes plus control
   characters as \u00XX. Everything else passes through byte-for-byte
   (we never synthesise non-UTF-8 names). *)
let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf v =
  if not (Float.is_finite v) then Buffer.add_string buf "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%.17g" v)

let add_arg buf = function
  | Str s -> escape buf s
  | Num v -> add_num buf v
  | Int i -> Buffer.add_string buf (string_of_int i)

let add_event buf e =
  Buffer.add_char buf '{';
  Buffer.add_string buf "\"name\":";
  escape buf e.name;
  Buffer.add_string buf ",\"cat\":";
  escape buf e.cat;
  Buffer.add_string buf ",\"ph\":";
  escape buf e.ph;
  Buffer.add_string buf ",\"ts\":";
  add_num buf e.ts_us;
  if e.ph = "X" then begin
    Buffer.add_string buf ",\"dur\":";
    add_num buf e.dur_us
  end;
  Buffer.add_string buf (Printf.sprintf ",\"pid\":%d,\"tid\":%d" e.pid e.tid);
  if e.args <> [] then begin
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        add_arg buf v)
      e.args;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}'

let to_json events =
  let buf = Buffer.create 4096 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      add_event buf e)
    events;
  Buffer.add_char buf ']';
  Buffer.contents buf

let write oc events =
  output_char oc '[';
  let buf = Buffer.create 256 in
  List.iteri
    (fun i e ->
      if i > 0 then output_string oc ",\n" else output_char oc '\n';
      Buffer.clear buf;
      add_event buf e;
      Buffer.output_buffer oc buf)
    events;
  output_string oc "\n]\n"
