type kind =
  | Counter
  | Gauge
  | Hist of Histogram.t
  | Rows of string * ((string * string) list * float) list
      (* one family, one sample per label set: (TYPE, rows) *)

type metric = { name : string; help : string; kind : kind; value : float }

let counter ~name ~help value = { name; help; kind = Counter; value }
let gauge ~name ~help value = { name; help; kind = Gauge; value }
let histogram ~name ~help h = { name; help; kind = Hist h; value = 0. }

let labelled ~name ~help ~ty rows =
  let ty = match ty with `Counter -> "counter" | `Gauge -> "gauge" in
  { name; help; kind = Rows (ty, rows); value = 0. }

let sanitise name =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    name

(* HELP text: escape the two characters the format reserves. *)
let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Label values: escape backslash, double-quote and newline per the
   exposition format. *)
let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | kvs ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitise k) (escape_label_value v))
             kvs)
      ^ "}"

let fmt v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let render metrics =
  let buf = Buffer.create 1024 in
  List.iter
    (fun m ->
      let name = sanitise m.name in
      let header ty =
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n# TYPE %s %s\n" name
             (escape_help m.help) name ty)
      in
      (match m.kind with
       | Counter ->
           header "counter";
           Buffer.add_string buf (Printf.sprintf "%s %s\n" name (fmt m.value))
       | Gauge ->
           header "gauge";
           Buffer.add_string buf (Printf.sprintf "%s %s\n" name (fmt m.value))
       | Rows (ty, rows) ->
           header ty;
           List.iter
             (fun (labels, v) ->
               Buffer.add_string buf
                 (Printf.sprintf "%s%s %s\n" name (render_labels labels)
                    (fmt v)))
             rows
       | Hist h ->
           header "histogram";
           let cum = ref 0 in
           List.iter
             (fun (ub, c) ->
               cum := !cum + c;
               Buffer.add_string buf
                 (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (fmt ub) !cum))
             (Histogram.buckets h);
           Buffer.add_string buf
             (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name
                (Histogram.count h));
           Buffer.add_string buf
             (Printf.sprintf "%s_sum %s\n" name (fmt (Histogram.sum h)));
           Buffer.add_string buf
             (Printf.sprintf "%s_count %d\n" name (Histogram.count h))))
    metrics;
  Buffer.contents buf
