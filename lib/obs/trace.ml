type span = {
  name : string;
  cat : string;
  tid : int;
  depth : int;
  start_ns : float;
  dur_ns : float;
  attrs : (string * string) list;
}

(* One ring per domain. Only its owner writes; [pos]/[depth] are plain
   mutable fields because the snapshot side tolerates raciness (it reads
   whole immutable span records out of [buf], so a race costs a span,
   never a torn one). *)
type ring = {
  tid : int;
  buf : span option array;
  mutable pos : int;  (* total spans ever written; slot = pos mod cap *)
  mutable depth : int;
}

type t = {
  enabled : bool;
  capacity : int;
  mutable rings : ring list;  (* guarded by [reg] *)
  reg : Mutex.t;
  key : ring Domain.DLS.key;
}

let create ?(capacity = 4096) ~enabled () =
  if capacity < 1 then invalid_arg "Trace.create: capacity < 1";
  (* The DLS initialiser must not register the ring itself: DLS keys are
     per-domain but shared across tracers' [rings] lists only via [t],
     and the initialiser has no access to [t]'s mutex ordering
     guarantees during [spans]. Registration happens in [ring_of]. *)
  let key =
    Domain.DLS.new_key (fun () ->
        {
          tid = (Domain.self () :> int);
          buf = Array.make capacity None;
          pos = 0;
          depth = 0;
        })
  in
  { enabled; capacity; rings = []; reg = Mutex.create (); key }

let disabled = create ~capacity:1 ~enabled:false ()
let enabled t = t.enabled

let ring_of t =
  let r = Domain.DLS.get t.key in
  if r.pos = 0 && r.depth = 0 && not (List.memq r t.rings) then begin
    (* First span on this domain: publish the ring for [spans]. The
       [memq] pre-check is racy but only against ourselves (no other
       domain inserts this ring), so the mutex makes it exact. *)
    Mutex.lock t.reg;
    if not (List.memq r t.rings) then t.rings <- r :: t.rings;
    Mutex.unlock t.reg
  end;
  r

let record r span =
  r.buf.(r.pos mod Array.length r.buf) <- Some span;
  r.pos <- r.pos + 1

let with_span t ?(cat = "suu") ?(attrs = []) name f =
  if not t.enabled then f ()
  else begin
    let r = ring_of t in
    let depth = r.depth in
    r.depth <- depth + 1;
    let start_ns = Clock.now_ns () in
    let finish () =
      let dur_ns = Clock.now_ns () -. start_ns in
      r.depth <- depth;
      record r { name; cat; tid = r.tid; depth; start_ns; dur_ns; attrs }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end

let snapshot_rings t =
  Mutex.lock t.reg;
  let rings = t.rings in
  Mutex.unlock t.reg;
  rings

let spans t =
  let collect acc r =
    Array.fold_left
      (fun acc slot -> match slot with None -> acc | Some s -> s :: acc)
      acc r.buf
  in
  List.fold_left collect [] (snapshot_rings t)
  |> List.sort (fun a b ->
         match Float.compare a.start_ns b.start_ns with
         | 0 -> Int.compare a.depth b.depth
         | c -> c)

let dropped t =
  List.fold_left
    (fun acc r -> acc + max 0 (r.pos - t.capacity))
    0 (snapshot_rings t)
