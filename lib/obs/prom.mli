(** Prometheus text exposition (format version 0.0.4).

    One flat metric family per entry: [# HELP] / [# TYPE] header lines
    followed by the sample(s). Histograms render the canonical triplet —
    cumulative [_bucket{le="..."}] series ending in [le="+Inf"], then
    [_sum] and [_count]. This is what [suu serve --stats-format prom]
    and the [stats] request's [prom] variant emit, unifying service
    counters, worker-pool gauges and engine counters in one scrape. *)

type metric

val counter : name:string -> help:string -> float -> metric
val gauge : name:string -> help:string -> float -> metric
val histogram : name:string -> help:string -> Histogram.t -> metric

val labelled :
  name:string ->
  help:string ->
  ty:[ `Counter | `Gauge ] ->
  ((string * string) list * float) list ->
  metric
(** One family with one sample per label set — a single [# HELP] /
    [# TYPE] header followed by [name{k="v",...} value] rows (label
    values escaped per the format). Used for per-shard series such as
    [suu_shard_epoch{shard="0"}]. *)

val render : metric list -> string
(** The exposition body. Metric names are sanitised to
    [[a-zA-Z_:][a-zA-Z0-9_:]*] (invalid characters become ['_']);
    non-finite values render as Prometheus' [+Inf]/[-Inf]/[NaN]
    spellings. *)
