type counter = int Atomic.t

type t = {
  mutable cells : (string * counter) list;  (* guarded by [reg] *)
  reg : Mutex.t;
}

let create () = { cells = []; reg = Mutex.create () }

let make t name =
  Mutex.lock t.reg;
  let cell =
    match List.assoc_opt name t.cells with
    | Some c -> c
    | None ->
        let c = Atomic.make 0 in
        t.cells <- (name, c) :: t.cells;
        c
  in
  Mutex.unlock t.reg;
  cell

let incr c = ignore (Atomic.fetch_and_add c 1)
let add c n = ignore (Atomic.fetch_and_add c n)
let get c = Atomic.get c

let snapshot t =
  Mutex.lock t.reg;
  let cells = t.cells in
  Mutex.unlock t.reg;
  List.map (fun (name, c) -> (name, Atomic.get c)) cells
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find t name =
  Mutex.lock t.reg;
  let cell = List.assoc_opt name t.cells in
  Mutex.unlock t.reg;
  Option.map Atomic.get cell

(* Multi-process aggregation: sum snapshots by name. Each input list is
   already sorted ([snapshot] sorts), but sortedness is not assumed. *)
let merge_snapshots snaps =
  let tbl = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (name, v) ->
         let prev = Option.value ~default:0 (Hashtbl.find_opt tbl name) in
         Hashtbl.replace tbl name (prev + v)))
    snaps;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
