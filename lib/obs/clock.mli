(** Monotonic clock (the only timestamp source in the telemetry core).

    Spans, latency histograms and the serving layer's deadlines all read
    this clock, so none of them can be torn by NTP steps or manual
    adjustment of the civil clock. *)

external now_ns : unit -> float = "suu_obs_clock_now_ns"
(** Monotonic nanoseconds since an arbitrary origin. Only differences
    are meaningful. *)

val now_ms : unit -> float
(** [now_ns] scaled to milliseconds. *)

val now_us : unit -> float
(** [now_ns] scaled to microseconds (the unit of Chrome trace events). *)
