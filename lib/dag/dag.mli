(** Directed acyclic graphs of precedence constraints.

    Jobs are the integers [0..n-1]. An edge [(u, v)] means job [u] must
    complete before job [v] becomes eligible ([u ≺ v] in the paper's
    notation). Construction validates acyclicity, so every value of type [t]
    is a genuine DAG. *)

type t

val create : n:int -> (int * int) list -> t
(** [create ~n edges] builds the DAG on vertices [0..n-1] with the given
    edges. Duplicate edges are collapsed.
    @raise Invalid_argument on self-loops, out-of-range vertices, or cycles. *)

val empty : int -> t
(** [empty n] is the edgeless DAG on [n] vertices (independent jobs). *)

val n : t -> int
(** Number of vertices. *)

val edge_count : t -> int

val edges : t -> (int * int) list
(** All edges, each exactly once, in no particular order. *)

val succs : t -> int -> int list
(** Direct successors (out-neighbours). *)

val preds : t -> int -> int list
(** Direct predecessors (in-neighbours). *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val has_edge : t -> int -> int -> bool

val topo_order : t -> int array
(** A topological order of the vertices (Kahn's algorithm; deterministic:
    smallest-index-first among ready vertices). *)

val sources : t -> int list
(** Vertices with no predecessors. *)

val sinks : t -> int list
(** Vertices with no successors. *)

val longest_path : t -> int
(** Number of vertices on a longest directed path (the critical-path length
    in unit steps; 1 for an edgeless non-empty DAG, 0 for the empty DAG). *)

val levels : t -> int list list
(** Level decomposition by longest-path depth, shallowest first: each
    level is an antichain (no edges within a level) and every edge goes
    from an earlier level to a strictly later one — the shared substrate
    of the {!Suu_algo} layered pipeline and the improved-approximation
    DAG scheme. Empty for the empty DAG. *)

val reachable : t -> bool array array
(** [reachable g] is the full reachability matrix: [(reachable g).(u).(v)]
    iff there is a directed path from [u] to [v] (with [u ≠ v]); quadratic
    memory, intended for small-to-moderate [n]. *)

val width : t -> int
(** Size of a maximum antichain — the paper's "width of the dependency
    graph" — computed via Dilworth's theorem and bipartite matching on the
    reachability relation. *)

val descendant_counts : t -> int array
(** [descendant_counts g] gives, for each vertex, the number of vertices
    reachable from it including itself. Exact only when the underlying
    undirected graph is a forest (descendant sets of distinct children are
    then disjoint); used by the chain decomposition. *)

val ancestor_counts : t -> int array
(** Mirror of [descendant_counts] for ancestors. Exact on forests. *)

val underlying_forest : t -> bool
(** Whether the underlying undirected multigraph is acyclic (i.e. the DAG is
    a "directed forest" / polytree forest in the paper's sense). *)

val pp : Format.formatter -> t -> unit
