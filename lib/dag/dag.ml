type t = {
  n : int;
  succs : int list array; (* sorted ascending *)
  preds : int list array; (* sorted ascending *)
  edge_count : int;
  topo : int array; (* cached topological order *)
}

let n t = t.n
let edge_count t = t.edge_count
let succs t u = t.succs.(u)
let preds t u = t.preds.(u)
let out_degree t u = List.length t.succs.(u)
let in_degree t u = List.length t.preds.(u)
let has_edge t u v = List.mem v t.succs.(u)

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    List.iter (fun v -> acc := (u, v) :: !acc) (List.rev t.succs.(u))
  done;
  !acc

(* Kahn's algorithm with a min-heap replaced by scanning a ready list kept
   sorted: deterministic smallest-first order. A sorted module-free priority
   structure suffices here since n is moderate. *)
let kahn_topo n succs preds =
  let indeg = Array.map List.length preds in
  let module IS = Set.Make (Int) in
  let ready = ref IS.empty in
  Array.iteri (fun v d -> if d = 0 then ready := IS.add v !ready) indeg;
  let order = Array.make n 0 in
  let k = ref 0 in
  while not (IS.is_empty !ready) do
    let u = IS.min_elt !ready in
    ready := IS.remove u !ready;
    order.(!k) <- u;
    incr k;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then ready := IS.add v !ready)
      succs.(u)
  done;
  if !k < n then invalid_arg "Dag.create: graph contains a cycle";
  order

let create ~n:nv edge_list =
  if nv < 0 then invalid_arg "Dag.create: negative vertex count";
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= nv || v < 0 || v >= nv then
        invalid_arg "Dag.create: vertex out of range";
      if u = v then invalid_arg "Dag.create: self-loop")
    edge_list;
  let succs = Array.make nv [] in
  let preds = Array.make nv [] in
  let seen = Hashtbl.create (List.length edge_list) in
  let count = ref 0 in
  List.iter
    (fun (u, v) ->
      if not (Hashtbl.mem seen (u, v)) then begin
        Hashtbl.add seen (u, v) ();
        succs.(u) <- v :: succs.(u);
        preds.(v) <- u :: preds.(v);
        incr count
      end)
    edge_list;
  Array.iteri (fun i l -> succs.(i) <- List.sort compare l) succs;
  Array.iteri (fun i l -> preds.(i) <- List.sort compare l) preds;
  let topo = kahn_topo nv succs preds in
  { n = nv; succs; preds; edge_count = !count; topo }

let empty nv = create ~n:nv []

let topo_order t = Array.copy t.topo

let sources t =
  List.filter (fun v -> t.preds.(v) = []) (List.init t.n (fun i -> i))

let sinks t =
  List.filter (fun v -> t.succs.(v) = []) (List.init t.n (fun i -> i))

let depths t =
  let depth = Array.make t.n 1 in
  Array.iter
    (fun u ->
      List.iter
        (fun v -> if depth.(u) + 1 > depth.(v) then depth.(v) <- depth.(u) + 1)
        t.succs.(u))
    t.topo;
  depth

let longest_path t =
  if t.n = 0 then 0 else Array.fold_left max 1 (depths t)

let levels t =
  if t.n = 0 then []
  else begin
    let depth = depths t in
    let max_depth = Array.fold_left max 1 depth in
    let buckets = Array.make max_depth [] in
    for v = t.n - 1 downto 0 do
      buckets.(depth.(v) - 1) <- v :: buckets.(depth.(v) - 1)
    done;
    Array.to_list buckets
  end

let reachable t =
  let r = Array.make_matrix t.n t.n false in
  (* Process in reverse topological order so each vertex's row can absorb
     its successors' completed rows. *)
  for k = t.n - 1 downto 0 do
    let u = t.topo.(k) in
    List.iter
      (fun v ->
        r.(u).(v) <- true;
        for w = 0 to t.n - 1 do
          if r.(v).(w) then r.(u).(w) <- true
        done)
      t.succs.(u)
  done;
  r

let width t =
  if t.n = 0 then 0
  else begin
    (* Dilworth: max antichain = n - max matching in the bipartite graph of
       the strict reachability relation. *)
    let r = reachable t in
    let adj =
      Array.init t.n (fun u ->
          let rec collect v acc =
            if v < 0 then acc
            else collect (v - 1) (if r.(u).(v) then v :: acc else acc)
          in
          collect (t.n - 1) [])
    in
    let mate = Suu_flow.Matching.max_matching ~left:t.n ~right:t.n ~adj in
    t.n - Suu_flow.Matching.size mate
  end

let descendant_counts t =
  let ds = Array.make t.n 0 in
  for k = t.n - 1 downto 0 do
    let u = t.topo.(k) in
    ds.(u) <- 1 + List.fold_left (fun acc v -> acc + ds.(v)) 0 t.succs.(u)
  done;
  ds

let ancestor_counts t =
  let asc = Array.make t.n 0 in
  Array.iter
    (fun u ->
      asc.(u) <- 1 + List.fold_left (fun acc v -> acc + asc.(v)) 0 t.preds.(u))
    t.topo;
  asc

let underlying_forest t =
  (* A graph on n vertices with c undirected components is a forest iff it
     has exactly n - c edges (no parallel edges in either direction). *)
  let parent = Array.init t.n (fun i -> i) in
  let rec find x = if parent.(x) = x then x else find parent.(x) in
  let acyclic = ref true in
  List.iter
    (fun (u, v) ->
      if has_edge t v u then acyclic := false (* antiparallel pair = 2-cycle undirected *)
      else begin
        let ru = find u and rv = find v in
        if ru = rv then acyclic := false else parent.(ru) <- rv
      end)
    (edges t);
  !acyclic

let pp fmt t =
  Format.fprintf fmt "@[<v>dag n=%d edges=%d" t.n t.edge_count;
  List.iter (fun (u, v) -> Format.fprintf fmt "@,%d -> %d" u v) (edges t);
  Format.fprintf fmt "@]"
