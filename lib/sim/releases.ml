type error =
  | Length_mismatch of { expected : int; got : int }
  | Negative_release of { job : int; value : int }

exception Invalid of error

let error_to_string = function
  | Length_mismatch { expected; got } ->
      Printf.sprintf "releases: length %d, expected one entry per job (%d)" got
        expected
  | Negative_release { job; value } ->
      Printf.sprintf "releases: job %d has negative release date %d" job value

let validate ~n r =
  if Array.length r <> n then
    Error (Length_mismatch { expected = n; got = Array.length r })
  else begin
    let bad = ref None in
    Array.iteri
      (fun j v ->
        if v < 0 && !bad = None then
          bad := Some (Negative_release { job = j; value = v }))
      r;
    match !bad with None -> Ok () | Some e -> Error e
  end

let check ~n = function
  | None -> ()
  | Some r -> (
      match validate ~n r with Ok () -> () | Error e -> raise (Invalid e))
