module Instance = Suu_core.Instance
module Assignment = Suu_core.Assignment
module Policy = Suu_core.Policy
module Oblivious = Suu_core.Oblivious
module Dag = Suu_dag.Dag
module Rng = Suu_prob.Rng
module Churn = Suu_dyn.Churn

(* Trial-batched Monte-Carlo kernel: one native int carries one
   completion bit per trial lane for a job, so the per-step inner loop
   becomes word-wide AND/OR/popcount instead of per-trial branching.

   OCaml native ints are 63-bit and unboxed, which is what keeps the hot
   loop allocation-free without flambda — so a word carries 63 lanes,
   not 64. All bit twiddling below works on the full 63-bit two's
   complement representation (the sign bit is lane 62).

   Two policy shapes are vectorizable:

   - [Cols]: oblivious schedules. Jobs are processed job-major in
     topological order, walking each job's schedule occurrences with
     word-wide Bernoulli masks while many lanes are undecided and
     switching to per-lane geometric skips (the leapfrog sampler,
     generalised) for the stragglers.
   - [Greedy]: greedy pair-scan regimens (MSM-ALG). The scan runs once
     per step across all lanes with word masks for machine-free /
     job-eligible state and a per-lane mass ledger, fusing the Bernoulli
     draw of each taken pair into the scan.

   The kernel is distribution-equivalent to the scalar stepper, not
   stream-equivalent: masks draw from a private splitmix stream in a
   different order than the scalar path. [run_word_ref] (greedy only)
   replays the scalar draw order per lane and is bit-identical to
   [Engine.estimate_makespan_seeded] — the conformance suite pins both
   faces. *)

let lanes_per_word = 63
let never = max_int
let two53 = 1 lsl 53

(* Bernoulli(p) success threshold over 53-bit uniforms: success iff
   U < thr, which has probability exactly ceil(p * 2^53) / 2^53 — the
   same acceptance set as [Rng.float rng < p] in the scalar path. *)
let thr_of_prob p =
  if p <= 0. then 0
  else if p >= 1. then two53
  else begin
    let t = Float.to_int (Float.ceil (Float.ldexp p 53)) in
    if t > two53 then two53 else if t < 1 then 1 else t
  end

let inv_log1m p = if p >= 1. then 0. else 1. /. Float.log1p (-.p)

(* --- private native-int splitmix stream ----------------------------- *)

type stream = { mutable s : int }

let[@inline] sm_next st =
  st.s <- st.s + 0x1E3779B97F4A7C15;
  let z = st.s in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14B46D4EFB95A1E3 in
  z lxor (z lsr 31)

let[@inline] sm_float st = Float.of_int (sm_next st lsr 10) *. 0x1p-53

(* Geometric(p) by inversion with cached 1/log(1-p); support 1, 2, ... *)
let[@inline] sm_geom st ilq =
  let u = sm_float st in
  let k = Float.to_int (Float.ceil (Float.log1p (-.u) *. ilq)) in
  if k < 1 then 1 else k

(* --- word utilities -------------------------------------------------- *)

let popcount x =
  let s = x lsr 62 in
  let x = x land max_int in
  let x = x - ((x lsr 1) land 0x1555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  ((x * 0x0101010101010101) lsr 56) + s

(* Index of the single set bit of [b] (a power of two; bit 62 is the
   sign). Branchy binary search — no ctz intrinsic without C stubs. *)
let[@inline] bit_index b =
  if b < 0 then 62
  else begin
    let i = ref 0 and b = ref b in
    if !b land 0xFFFFFFFF = 0 then begin
      i := !i + 32;
      b := !b lsr 32
    end;
    if !b land 0xFFFF = 0 then begin
      i := !i + 16;
      b := !b lsr 16
    end;
    if !b land 0xFF = 0 then begin
      i := !i + 8;
      b := !b lsr 8
    end;
    if !b land 0xF = 0 then begin
      i := !i + 4;
      b := !b lsr 4
    end;
    if !b land 0x3 = 0 then begin
      i := !i + 2;
      b := !b lsr 2
    end;
    if !b land 0x1 = 0 then incr i;
    !i
  end

let lanes_mask lanes =
  if lanes >= lanes_per_word then -1 else (1 lsl lanes) - 1

(* Bernoulli(thr / 2^53) mask over the lanes of [cand]: per lane an
   implicit 53-bit uniform is compared bit-serially (MSB first) against
   [thr], consuming one random word per bit position and early-exiting
   once every lane is decided — ~log2(popcount cand) + 2 draws instead
   of one uniform per lane. *)
let mask_bernoulli st thr cand =
  if thr >= two53 then cand
  else if thr <= 0 then 0
  else begin
    let result = ref 0 and undec = ref cand in
    let t = ref thr and b = ref 52 in
    while !undec <> 0 && !t <> 0 do
      let w = sm_next st in
      let bit = 1 lsl !b in
      if !t land bit <> 0 then begin
        (* thr bit 1: lanes whose uniform bit is 0 are < thr — success. *)
        result := !result lor (!undec land lnot w);
        undec := !undec land w;
        t := !t lxor bit
      end
      else
        (* thr bit 0: lanes whose uniform bit is 1 are > thr — failure. *)
        undec := !undec land lnot w;
      decr b
    done;
    !result
  end

(* --- compiled plans -------------------------------------------------- *)

(* Oblivious schedules, job-major. Per job, the schedule reduces to a
   sequence of completion opportunities: per step the job is worked by a
   set of machines and completes with probability 1 - prod (1 - p_i)
   (machine draws are independent, which is also how the exact oracle
   computes the CDF). Occurrences are split into the prefix part
   (absolute steps) and one cycle period (offsets). *)
type jobplan = {
  pre_step : int array;  (** ascending absolute steps in the prefix *)
  pre_q : float array;
  pre_thr : int array;
  cyc_off : int array;  (** ascending offsets within one period *)
  cyc_q : float array;
  cyc_thr : int array;
  cyc_pick : float array;
      (** pick.(k) = P(first success within a period is at occurrence <= k) *)
  cyc_qtot : float;  (** success probability of one full period *)
  cyc_ilq : float;  (** cached 1/log(1 - qtot) *)
}

type cols = { plen : int; clen : int; jp : jobplan array }

type greedy_k = {
  g : Policy.greedy;
  pair_thr : int array;  (** per pair, Bernoulli threshold *)
}

type mode = Cols of cols | Greedy of greedy_k

(* Completion steps below [dcap] are folded into lane makespans through a
   per-step histogram of completion masks — O(1) per mask instead of one
   bit extraction per (job, lane) — with a single descending sweep at the
   end of the word. Later steps (rare) fall back to per-bit maxing. *)
let dcap = 4096

type t = {
  inst : Instance.t;
  n : int;
  m : int;
  mode : mode;
  order : int array;  (** topological order *)
  preds : int array array;
  succs : int array array;
  releases : int array option;
  churn : Churn.t option;
  stream : stream;
  (* cols arenas *)
  comp : int array;  (** (job, lane) completion step; n * 63 *)
  start : int array;  (** per-lane eligibility start of the current job *)
  done_at : int array;  (** step histogram of completion masks; dcap *)
  mutable smax : int;  (** highest step recorded in [done_at] *)
  (* greedy arenas *)
  done_ : int array;  (** per job, lanes where the job is finished *)
  pred_ok : int array;  (** per job, AND over preds of done *)
  free : int array;  (** per machine, lanes where it is unassigned *)
  marked : int array;  (** per job, lanes completed during this step *)
  marked_list : int array;
  mutable marked_cnt : int;
  mass : float array;  (** (job, lane) ref-mode mass ledger; n * 63 *)
  mass_pos : int array;  (** per job, lanes with positive mass this step *)
  mass_dirty : int array;
  mutable mass_cnt : int;
  contrib_p : float array;  (** per (job, slot) mass contribution; n * m *)
  contrib_w : int array;  (** per (job, slot) lanes of the contribution *)
  contrib_cnt : int array;  (** per job, live contribution slots *)
  pairs_idx : int array;  (** compacted surviving pair indices *)
  mutable pairs_len : int;
  remaining : int array;  (** per lane, ref-mode unfinished job count *)
  rel_ok : bool array;  (** per job, release date has arrived *)
  mup : bool array;  (** per machine, up at the current step (churn) *)
  assign : int array;  (** (machine, lane) ref-mode assignment; m * 63 *)
}

(* Per-step combined completion probabilities of one schedule block
   ([assignments] is steps x machines): per job the ascending list of
   (position, q) with q > 0. *)
let combined_occurrences inst n assignments =
  let m = Instance.m inst in
  let steps = Array.length assignments in
  let acc = Array.make n [] in
  let fail = Array.make n 1. in
  for t = 0 to steps - 1 do
    let a = assignments.(t) in
    (* multiply the per-machine failure probabilities of this step *)
    let touched = ref [] in
    for i = 0 to m - 1 do
      let j = a.(i) in
      if j >= 0 && j < n then begin
        let p = Instance.prob inst ~machine:i ~job:j in
        if p > 0. then begin
          if fail.(j) = 1. then touched := j :: !touched;
          fail.(j) <- fail.(j) *. (1. -. p)
        end
      end
    done;
    List.iter
      (fun j ->
        let q = 1. -. fail.(j) in
        if q > 0. then acc.(j) <- (t, q) :: acc.(j);
        fail.(j) <- 1.)
      !touched
  done;
  Array.map (fun l -> Array.of_list (List.rev l)) acc

let compile_cols inst n sched =
  let pre = combined_occurrences inst n Oblivious.(sched.prefix) in
  let cyc = combined_occurrences inst n Oblivious.(sched.cycle) in
  let jp =
    Array.init n (fun j ->
        let pre = pre.(j) and cyc = cyc.(j) in
        let k = Array.length cyc in
        let cyc_pick = Array.make k 0. in
        let failed = ref 1. in
        for i = 0 to k - 1 do
          let _, q = cyc.(i) in
          failed := !failed *. (1. -. q);
          cyc_pick.(i) <- 1. -. !failed
        done;
        let qtot = if k = 0 then 0. else cyc_pick.(k - 1) in
        {
          pre_step = Array.map fst pre;
          pre_q = Array.map snd pre;
          pre_thr = Array.map (fun (_, q) -> thr_of_prob q) pre;
          cyc_off = Array.map fst cyc;
          cyc_q = Array.map snd cyc;
          cyc_thr = Array.map (fun (_, q) -> thr_of_prob q) cyc;
          cyc_pick;
          cyc_qtot = qtot;
          cyc_ilq = (if qtot > 0. then inv_log1m qtot else 0.);
        })
  in
  {
    plen = Oblivious.prefix_length sched;
    clen = Oblivious.cycle_length sched;
    jp;
  }

let create ?releases ?availability inst policy =
  let n = Instance.n inst and m = Instance.m inst in
  Releases.check ~n releases;
  let churn =
    match availability with
    | None -> None
    | Some c ->
        if Churn.m c <> m then
          invalid_arg "Engine: availability machine count mismatch";
        if Churn.is_none c then None else Some c
  in
  let mode =
    match Policy.oblivious policy with
    | Some sched when Oblivious.(sched.m) = m ->
        (* Churn folds into the schedule: the masked schedule idles down
           machines, so the unchurned column kernel over it samples
           exactly the surviving (machine, step) attempts. *)
        let sched =
          match churn with None -> sched | Some c -> Churn.mask c sched
        in
        Some (Cols (compile_cols inst n sched))
    | Some _ -> None
    | None -> (
        match Policy.greedy policy with
        | Some g when g.Policy.g_n = n && g.Policy.g_m = m ->
            Some (Greedy { g; pair_thr = Array.map thr_of_prob g.Policy.g_probs })
        | _ -> None)
  in
  match mode with
  | None -> None
  | Some mode ->
      let dag = Instance.dag inst in
      let is_cols = match mode with Cols _ -> true | Greedy _ -> false in
      let npairs =
        match mode with
        | Greedy gk -> Array.length gk.g.Policy.g_probs
        | Cols _ -> 0
      in
      Some
        {
          inst;
          n;
          m;
          mode;
          order = Dag.topo_order dag;
          preds = Array.init n (fun j -> Array.of_list (Dag.preds dag j));
          succs = Array.init n (fun j -> Array.of_list (Dag.succs dag j));
          releases;
          churn = (match mode with Cols _ -> None | Greedy _ -> churn);
          stream = { s = 0 };
          comp =
            (* only DAG instances ever touch [comp]: the writes are
               has_succs-gated, the reads preds-gated *)
            Array.make
              (if Dag.edge_count dag = 0 then 1 else max 1 (n * lanes_per_word))
              never;
          start = Array.make lanes_per_word 0;
          done_at = Array.make (if is_cols then dcap else 1) 0;
          smax = -1;
          done_ = Array.make (max n 1) 0;
          pred_ok = Array.make (max n 1) 0;
          free = Array.make (max m 1) 0;
          marked = Array.make (max n 1) 0;
          marked_list = Array.make (max n 1) 0;
          marked_cnt = 0;
          mass = Array.make (if is_cols then 1 else max 1 (n * lanes_per_word)) 0.;
          mass_pos = Array.make (max n 1) 0;
          mass_dirty = Array.make (max n 1) 0;
          mass_cnt = 0;
          contrib_p = Array.make (if is_cols then 1 else max 1 (n * m)) 0.;
          contrib_w = Array.make (if is_cols then 1 else max 1 (n * m)) 0;
          contrib_cnt = Array.make (max n 1) 0;
          pairs_idx = Array.make (max npairs 1) 0;
          pairs_len = 0;
          remaining = Array.make lanes_per_word 0;
          rel_ok = Array.make (max n 1) true;
          mup = Array.make (max m 1) true;
          assign =
            Array.make
              (if is_cols then 1 else max 1 (m * lanes_per_word))
              Assignment.idle_job;
        }

(* --- oblivious (Cols) runtime ---------------------------------------- *)

(* Per-lane completion sampler, the leapfrog generalisation: first
   success of the job's occurrence sequence at steps >= [from]. Prefix
   occurrences and the first partial period are walked with one uniform
   each; full periods collapse into one geometric (periods until a
   successful period) plus one inversion draw for the offset within it.
   Returns [never] when the job can no longer complete. *)
let sample_one st cols jp ~from =
  let res = ref (-1) in
  let npre = Array.length jp.pre_step in
  let i = ref 0 in
  while !i < npre && jp.pre_step.(!i) < from do incr i done;
  while !res < 0 && !i < npre do
    if sm_float st < jp.pre_q.(!i) then res := jp.pre_step.(!i);
    incr i
  done;
  if !res >= 0 then !res
  else begin
    let k = Array.length jp.cyc_off in
    if k = 0 || jp.cyc_qtot <= 0. then never
    else begin
      let clen = cols.clen and plen = cols.plen in
      let e = if from > plen then from - plen else 0 in
      let period = ref (e / clen) in
      let off = e - (!period * clen) in
      if off > 0 then begin
        (* partial first period: walk its remaining occurrences *)
        let i = ref 0 in
        while !i < k && jp.cyc_off.(!i) < off do incr i done;
        while !res < 0 && !i < k do
          if sm_float st < jp.cyc_q.(!i) then
            res := plen + (!period * clen) + jp.cyc_off.(!i);
          incr i
        done;
        incr period
      end;
      if !res >= 0 then !res
      else begin
        let g = sm_geom st jp.cyc_ilq in
        if g > 1_000_000_000 then never
        else begin
          let p = !period + g - 1 in
          let u = sm_float st *. jp.cyc_qtot in
          let i = ref 0 in
          while !i < k - 1 && u >= jp.cyc_pick.(!i) do incr i done;
          plen + (p * clen) + jp.cyc_off.(!i)
        end
      end
    end
  end

(* How few undecided lanes make per-lane geometric skipping cheaper than
   word-wide masks (a mask costs ~log2(lanes)+2 draws per occurrence;
   a geometric decides a lane's whole future in ~2 draws). *)
let geo_cutoff = 8

(* Record a completion mask at [step]: O(1) into the step histogram for
   the end-of-word makespan fold; per-bit work only for the (rare) steps
   beyond [dcap] and for jobs whose successors need per-lane completion
   steps in [comp]. *)
let[@inline] record_mask t ~base ~has_succs ~makespans w step =
  if step < dcap then begin
    t.done_at.(step) <- t.done_at.(step) lor w;
    if step > t.smax then t.smax <- step
  end
  else begin
    let a = ref w in
    while !a <> 0 do
      let b = !a land (- !a) in
      a := !a lxor b;
      let l = bit_index b in
      if step + 1 > makespans.(l) then makespans.(l) <- step + 1
    done
  end;
  if has_succs then begin
    let a = ref w in
    while !a <> 0 do
      let b = !a land (- !a) in
      a := !a lxor b;
      t.comp.(base + bit_index b) <- step
    done
  end

(* Word-wide walk of job [jp]'s occurrences for the lanes of [cand0],
   all eligible from the same step [s0]. Completions are recorded via
   {!record_mask}; the returned word holds the lanes that did not
   complete by [horizon] (to be truncated). *)
let mask_walk t cols jp ~base ~cand0 ~s0 ~horizon ~has_succs ~makespans =
  let st = t.stream in
  let cand = ref cand0 and leftover = ref 0 in
  let finish_from step =
    let a = ref !cand in
    cand := 0;
    while !a <> 0 do
      let b = !a land (- !a) in
      a := !a lxor b;
      let c = sample_one st cols jp ~from:step in
      if c > horizon then leftover := !leftover lor b
      else record_mask t ~base ~has_succs ~makespans b c
    done
  in
  if popcount !cand <= geo_cutoff then finish_from s0
  else begin
    (* prefix occurrences at steps >= s0 *)
    let npre = Array.length jp.pre_step in
    let i = ref 0 in
    while !i < npre && jp.pre_step.(!i) < s0 do incr i done;
    let since_check = ref 0 in
    while !cand <> 0 && !i < npre do
      let step = jp.pre_step.(!i) in
      if step > horizon then begin
        leftover := !leftover lor !cand;
        cand := 0
      end
      else begin
        if !since_check >= 16 then begin
          since_check := 0;
          if popcount !cand <= geo_cutoff then finish_from step
        end;
        if !cand <> 0 then begin
          let w = mask_bernoulli st jp.pre_thr.(!i) !cand in
          record_mask t ~base ~has_succs ~makespans w step;
          cand := !cand land lnot w;
          incr since_check;
          incr i
        end
      end
    done;
    (* cycling regime *)
    if !cand <> 0 then begin
      let k = Array.length jp.cyc_off in
      if k = 0 || jp.cyc_qtot <= 0. then begin
        leftover := !leftover lor !cand;
        cand := 0
      end
      else begin
        let clen = cols.clen and plen = cols.plen in
        let e = if s0 > plen then s0 - plen else 0 in
        let period = ref (e / clen) in
        let off0 = ref (e - (!period * clen)) in
        while !cand <> 0 do
          (* per-period strategy check: expected successes this period
             must justify per-occurrence masks *)
          if Float.of_int (popcount !cand) *. jp.cyc_qtot < 3. then
            finish_from (plen + (!period * clen) + !off0)
          else begin
            let i = ref 0 in
            while !i < k && jp.cyc_off.(!i) < !off0 do incr i done;
            while !cand <> 0 && !i < k do
              let step = plen + (!period * clen) + jp.cyc_off.(!i) in
              if step > horizon then begin
                leftover := !leftover lor !cand;
                cand := 0;
                i := k
              end
              else begin
                let w = mask_bernoulli st jp.cyc_thr.(!i) !cand in
                record_mask t ~base ~has_succs ~makespans w step;
                cand := !cand land lnot w;
                incr i
              end
            done;
            incr period;
            off0 := 0
          end
        done
      end
    end
  end;
  !leftover

let run_word_cols t cols ~lanes ~max_steps ~makespans =
  let horizon = max_steps - 1 in
  let lmask = lanes_mask lanes in
  let st = t.stream in
  let trunc = ref 0 in
  t.smax <- -1;
  Array.fill makespans 0 lanes 0;
  for q = 0 to t.n - 1 do
    let j = t.order.(q) in
    let jp = cols.jp.(j) in
    let base = j * lanes_per_word in
    let has_succs = Array.length t.succs.(j) > 0 in
    if has_succs then Array.fill t.comp base lanes_per_word never;
    let active = lmask land lnot !trunc in
    if active <> 0 then begin
      let rel = match t.releases with None -> 0 | Some r -> r.(j) in
      let preds = t.preds.(j) in
      let npr = Array.length preds in
      let eq = ref true and s0 = ref rel in
      if npr > 0 then begin
        (* per-lane eligibility start: the step after the last
           predecessor completion (end-of-step semantics), no earlier
           than the release date *)
        let first = ref true in
        let a = ref active in
        while !a <> 0 do
          let b = !a land (- !a) in
          a := !a lxor b;
          let l = bit_index b in
          let s = ref rel in
          for pk = 0 to npr - 1 do
            let c = t.comp.((preds.(pk) * lanes_per_word) + l) in
            if c + 1 > !s then s := c + 1
          done;
          t.start.(l) <- !s;
          if !first then begin
            s0 := !s;
            first := false
          end
          else if !s <> !s0 then eq := false
        done
      end;
      if !eq then begin
        if !s0 <= horizon then
          trunc :=
            !trunc
            lor mask_walk t cols jp ~base ~cand0:active ~s0:!s0 ~horizon
                  ~has_succs ~makespans
        else trunc := !trunc lor active
      end
      else begin
        (* lanes diverged: per-lane geometric skipping *)
        let a = ref active in
        while !a <> 0 do
          let b = !a land (- !a) in
          a := !a lxor b;
          let l = bit_index b in
          let s = t.start.(l) in
          if s > horizon then trunc := !trunc lor b
          else begin
            let c = sample_one st cols jp ~from:s in
            if c > horizon then trunc := !trunc lor b
            else record_mask t ~base ~has_succs ~makespans b c
          end
        done
      end
    end
  done;
  (* descending histogram sweep: a lane's first (highest) appearance is
     its last job completion, hence its makespan *)
  let seen = ref !trunc in
  let s = ref t.smax in
  while !s >= 0 && !seen land lmask <> lmask do
    let w = t.done_at.(!s) in
    if w <> 0 then begin
      t.done_at.(!s) <- 0;
      let nw = w land lnot !seen land lmask in
      if nw <> 0 then begin
        seen := !seen lor nw;
        let a = ref nw in
        while !a <> 0 do
          let b = !a land (- !a) in
          a := !a lxor b;
          let l = bit_index b in
          if !s + 1 > makespans.(l) then makespans.(l) <- !s + 1
        done
      end
    end;
    decr s
  done;
  (* zero the histogram tail left by the early exit *)
  while !s >= 0 do
    if t.done_at.(!s) <> 0 then t.done_at.(!s) <- 0;
    decr s
  done;
  t.smax <- -1;
  let a = ref !trunc in
  while !a <> 0 do
    let b = !a land (- !a) in
    a := !a lxor b;
    makespans.(bit_index b) <- -1
  done

(* --- greedy (fused pair-scan) runtime -------------------------------- *)

let greedy_reset t ~lanes =
  let n = t.n in
  Array.fill t.done_ 0 n 0;
  for j = 0 to n - 1 do
    t.pred_ok.(j) <- (if Array.length t.preds.(j) = 0 then -1 else 0)
  done;
  (* the mass ledger is kept all-zero between runs by the per-step
     cleanup, so only the counters need resetting *)
  t.mass_cnt <- 0;
  t.marked_cnt <- 0;
  for l = 0 to lanes_per_word - 1 do
    t.remaining.(l) <- n
  done;
  (match t.releases with
  | None -> Array.fill t.rel_ok 0 n true
  | Some r ->
      for j = 0 to n - 1 do
        t.rel_ok.(j) <- r.(j) <= 0
      done);
  ignore lanes

let greedy_release_due t step =
  match t.releases with
  | None -> ()
  | Some r ->
      for j = 0 to t.n - 1 do
        if (not t.rel_ok.(j)) && r.(j) <= step then t.rel_ok.(j) <- true
      done

(* Refresh the per-machine up mask for this step. Availability is
   trial-independent, so the gate is uniform across lanes: a down
   machine's pair is still {e taken} by the scan (the policy is
   churn-oblivious — mass and free-machine bookkeeping proceed) but its
   Bernoulli draw is suppressed, matching the scalar stepper's gate. *)
let greedy_machines_up t step =
  match t.churn with
  | None -> ()
  | Some c ->
      for i = 0 to t.m - 1 do
        t.mup.(i) <- Churn.available c ~machine:i ~step
      done

(* End-of-step completion: fold the marked words into done/remaining,
   record lane makespans, refresh successors' pred words. Returns the
   updated alive word. *)
let greedy_apply_completions t ~step ~alive ~makespans =
  let alive = ref alive in
  for idx = 0 to t.marked_cnt - 1 do
    let j = t.marked_list.(idx) in
    let bits = t.marked.(j) in
    t.marked.(j) <- 0;
    t.done_.(j) <- t.done_.(j) lor bits;
    let w = ref bits in
    while !w <> 0 do
      let b = !w land (- !w) in
      w := !w lxor b;
      let l = bit_index b in
      t.remaining.(l) <- t.remaining.(l) - 1;
      if t.remaining.(l) = 0 then begin
        makespans.(l) <- step + 1;
        alive := !alive land lnot b
      end
    done;
    let ss = t.succs.(j) in
    for si = 0 to Array.length ss - 1 do
      let v = ss.(si) in
      let ps = t.preds.(v) in
      let acc = ref (-1) in
      for pi = 0 to Array.length ps - 1 do
        acc := !acc land t.done_.(ps.(pi))
      done;
      t.pred_ok.(v) <- !acc
    done
  done;
  t.marked_cnt <- 0;
  for idx = 0 to t.mass_cnt - 1 do
    let j = t.mass_dirty.(idx) in
    Array.fill t.mass (j * lanes_per_word) lanes_per_word 0.;
    t.mass_pos.(j) <- 0
  done;
  t.mass_cnt <- 0;
  !alive

let run_word_greedy t gk ~lanes ~max_steps ~makespans =
  let g = gk.g in
  let m = t.m and n = t.n in
  let st = t.stream in
  greedy_reset t ~lanes;
  Array.fill makespans 0 lanes 0;
  let probs = g.Policy.g_probs
  and machines = g.Policy.g_machines
  and jobs = g.Policy.g_jobs
  and thrs = gk.pair_thr in
  let npairs = Array.length probs in
  let cap = Policy.greedy_mass_cap in
  let done_ = t.done_
  and pred_ok = t.pred_ok
  and free = t.free
  and marked = t.marked
  and marked_list = t.marked_list
  and mass_pos = t.mass_pos
  and mass_dirty = t.mass_dirty
  and contrib_p = t.contrib_p
  and contrib_w = t.contrib_w
  and contrib_cnt = t.contrib_cnt
  and pairs = t.pairs_idx
  and rel_ok = t.rel_ok
  and mup = t.mup in
  for k = 0 to npairs - 1 do
    pairs.(k) <- k
  done;
  t.pairs_len <- npairs;
  let alive = ref (lanes_mask lanes) in
  let step = ref 0 in
  while !alive <> 0 && !step < max_steps do
    greedy_release_due t !step;
    greedy_machines_up t !step;
    let alive0 = !alive in
    Array.fill free 0 m alive0;
    let free_left = ref m in
    (* one pass: scan surviving pairs in priority order, compacting out
       pairs whose job is finished in every still-alive lane (done words
       only grow and alive only shrinks, so dead pairs stay dead) *)
    let plen = t.pairs_len in
    let out = ref 0 in
    for idx = 0 to plen - 1 do
      let k = pairs.(idx) in
      let j = jobs.(k) in
      let live = alive0 land lnot done_.(j) in
      if live <> 0 || not rel_ok.(j) then begin
        pairs.(!out) <- k;
        incr out;
        if rel_ok.(j) && !free_left > 0 then begin
          let i = machines.(k) in
          let fi = free.(i) in
          if fi <> 0 then begin
            let cand = fi land pred_ok.(j) land live in
            if cand <> 0 then begin
              let p = probs.(k) in
              let mp = mass_pos.(j) in
              let hard = cand land mp in
              let take = ref (cand land lnot hard) in
              if hard <> 0 then begin
                (* lanes where the job already has mass need the float
                   check; fresh lanes pass because p <= 1 <= cap. The
                   mass of a lane is summed from this step's contribution
                   slots — O(slots) per hard lane, no per-lane stores on
                   the take path *)
                let cbase = j * m in
                let cc = contrib_cnt.(j) in
                let h = ref hard in
                while !h <> 0 do
                  let b = !h land (- !h) in
                  h := !h lxor b;
                  let s = ref p in
                  for c = 0 to cc - 1 do
                    if contrib_w.(cbase + c) land b <> 0 then
                      s := !s +. contrib_p.(cbase + c)
                  done;
                  if !s <= cap then take := !take lor b
                done
              end;
              let tk = !take in
              if tk <> 0 then begin
                free.(i) <- fi land lnot tk;
                if free.(i) = 0 then decr free_left;
                let cc = contrib_cnt.(j) in
                if cc = 0 then begin
                  mass_dirty.(t.mass_cnt) <- j;
                  t.mass_cnt <- t.mass_cnt + 1
                end;
                contrib_w.((j * m) + cc) <- tk;
                contrib_p.((j * m) + cc) <- p;
                contrib_cnt.(j) <- cc + 1;
                mass_pos.(j) <- mp lor tk;
                (* fused draw: lanes already completed this step by an
                   earlier machine draw nothing, like the scalar stepper;
                   a churned-down machine draws nothing at all *)
                let dr =
                  if mup.(i) then tk land lnot marked.(j) else 0
                in
                if dr <> 0 then begin
                  let succ = mask_bernoulli st thrs.(k) dr in
                  if succ <> 0 then begin
                    if marked.(j) = 0 then begin
                      marked_list.(t.marked_cnt) <- j;
                      t.marked_cnt <- t.marked_cnt + 1
                    end;
                    marked.(j) <- marked.(j) lor succ
                  end
                end
              end
            end
          end
        end
      end
    done;
    t.pairs_len <- !out;
    (* end of step: fold completions into done, refresh successor pred
       words, clear this step's mass ledger *)
    let had = t.marked_cnt > 0 in
    for mi = 0 to t.marked_cnt - 1 do
      let j = marked_list.(mi) in
      let bits = marked.(j) in
      marked.(j) <- 0;
      done_.(j) <- done_.(j) lor bits;
      let ss = t.succs.(j) in
      for si = 0 to Array.length ss - 1 do
        let v = ss.(si) in
        let ps = t.preds.(v) in
        let acc = ref (-1) in
        for pi = 0 to Array.length ps - 1 do
          acc := !acc land done_.(ps.(pi))
        done;
        pred_ok.(v) <- !acc
      done
    done;
    t.marked_cnt <- 0;
    for mi = 0 to t.mass_cnt - 1 do
      let j = mass_dirty.(mi) in
      contrib_cnt.(j) <- 0;
      mass_pos.(j) <- 0
    done;
    t.mass_cnt <- 0;
    (* a lane finishes when it sits in the AND of every done word; the
       fold early-exits on the first job the lane set hasn't finished *)
    if had then begin
      let acc = ref !alive in
      let j = ref 0 in
      while !acc <> 0 && !j < n do
        acc := !acc land done_.(!j);
        incr j
      done;
      let fin = !acc in
      if fin <> 0 then begin
        alive := !alive land lnot fin;
        let a = ref fin in
        while !a <> 0 do
          let b = !a land (- !a) in
          a := !a lxor b;
          makespans.(bit_index b) <- !step + 1
        done
      end
    end;
    incr step
  done;
  let a = ref !alive in
  while !a <> 0 do
    let b = !a land (- !a) in
    a := !a lxor b;
    makespans.(bit_index b) <- -1
  done

(* --- entry points ----------------------------------------------------- *)

let run_word t ~seed ~max_steps ~lanes ~makespans =
  if lanes < 1 || lanes > lanes_per_word then
    invalid_arg "Lanes.run_word: lanes out of range";
  if max_steps < 1 then invalid_arg "Lanes.run_word: max_steps < 1";
  if Array.length makespans < lanes then
    invalid_arg "Lanes.run_word: makespans buffer too short";
  t.stream.s <- seed;
  (* one scramble so counter-like word seeds decorrelate *)
  ignore (sm_next t.stream : int);
  if t.n = 0 then Array.fill makespans 0 lanes 0
  else
    match t.mode with
    | Cols c -> run_word_cols t c ~lanes ~max_steps ~makespans
    | Greedy g -> run_word_greedy t g ~lanes ~max_steps ~makespans

(* Scalar-order reference mode (greedy kernels only): the pair scan runs
   word-wide exactly as in [run_word], but draws are replayed per lane
   from that lane's own generator in the scalar stepper's order — the
   full assignment is built first, then machines draw in index order.
   Lane [l]'s outcome is bit-identical to a scalar seeded trial run with
   [rngs.(l)]. *)
let run_word_ref t ~rngs ~max_steps ~makespans =
  let lanes = Array.length rngs in
  if lanes < 1 || lanes > lanes_per_word then
    invalid_arg "Lanes.run_word_ref: lanes out of range";
  if max_steps < 1 then invalid_arg "Lanes.run_word_ref: max_steps < 1";
  if Array.length makespans < lanes then
    invalid_arg "Lanes.run_word_ref: makespans buffer too short";
  match t.mode with
  | Cols _ ->
      invalid_arg "Lanes.run_word_ref: only greedy kernels have a ref mode"
  | Greedy gk ->
      let g = gk.g in
      let m = t.m in
      greedy_reset t ~lanes;
      Array.fill makespans 0 lanes 0;
      if t.n = 0 then ()
      else begin
        let probs = g.Policy.g_probs
        and machines = g.Policy.g_machines
        and jobs = g.Policy.g_jobs in
        let npairs = Array.length probs in
        let cap = Policy.greedy_mass_cap in
        let alive = ref (lanes_mask lanes) in
        let step = ref 0 in
        while !alive <> 0 && !step < max_steps do
          greedy_release_due t !step;
          greedy_machines_up t !step;
          Array.fill t.free 0 m !alive;
          Array.fill t.assign 0 (m * lanes_per_word) Assignment.idle_job;
          let free_left = ref m in
          let k = ref 0 in
          while !free_left > 0 && !k < npairs do
            let j = jobs.(!k) in
            if t.rel_ok.(j) then begin
              let i = machines.(!k) in
              let fi = t.free.(i) in
              if fi <> 0 then begin
                let cand = fi land t.pred_ok.(j) land lnot t.done_.(j) in
                if cand <> 0 then begin
                  let p = probs.(!k) in
                  let mp = t.mass_pos.(j) in
                  let hard = cand land mp in
                  let take = ref (cand land lnot hard) in
                  if hard <> 0 then begin
                    let base = j * lanes_per_word in
                    let h = ref hard in
                    while !h <> 0 do
                      let b = !h land (- !h) in
                      h := !h lxor b;
                      if t.mass.(base + bit_index b) +. p <= cap then
                        take := !take lor b
                    done
                  end;
                  let tk = !take in
                  if tk <> 0 then begin
                    t.free.(i) <- fi land lnot tk;
                    if t.free.(i) = 0 then decr free_left;
                    if mp = 0 then begin
                      t.mass_dirty.(t.mass_cnt) <- j;
                      t.mass_cnt <- t.mass_cnt + 1
                    end;
                    t.mass_pos.(j) <- mp lor tk;
                    let base = j * lanes_per_word in
                    let abase = i * lanes_per_word in
                    let w = ref tk in
                    while !w <> 0 do
                      let b = !w land (- !w) in
                      w := !w lxor b;
                      let l = bit_index b in
                      let o = base + l in
                      t.mass.(o) <- t.mass.(o) +. p;
                      t.assign.(abase + l) <- j
                    done
                  end
                end
              end
            end;
            incr k
          done;
          (* scalar draw phase: per lane, machines in index order *)
          for l = 0 to lanes - 1 do
            if !alive land (1 lsl l) <> 0 then
              for i = 0 to m - 1 do
                let j = t.assign.((i * lanes_per_word) + l) in
                if
                  j <> Assignment.idle_job
                  && t.marked.(j) land (1 lsl l) = 0
                  && t.mup.(i)
                then
                  if
                    Rng.bernoulli rngs.(l)
                      (Instance.prob t.inst ~machine:i ~job:j)
                  then begin
                    if t.marked.(j) = 0 then begin
                      t.marked_list.(t.marked_cnt) <- j;
                      t.marked_cnt <- t.marked_cnt + 1
                    end;
                    t.marked.(j) <- t.marked.(j) lor (1 lsl l)
                  end
              done
          done;
          alive := greedy_apply_completions t ~step:!step ~alive:!alive ~makespans;
          incr step
        done;
        let a = ref !alive in
        while !a <> 0 do
          let b = !a land (- !a) in
          a := !a lxor b;
          makespans.(bit_index b) <- -1
        done
      end
