(** Typed validation of release-date vectors at the engine boundary.

    Every public entry that accepts [?releases] ({!Engine}, {!Lanes},
    {!Leapfrog}) validates through this module, so hostile input is
    rejected with a structured error — mirroring
    {!Suu_core.Instance.error} — instead of an anonymous
    [Invalid_argument] or silent misbehaviour. *)

type error =
  | Length_mismatch of { expected : int; got : int }
      (** the vector must have one entry per job *)
  | Negative_release of { job : int; value : int }

exception Invalid of error

val error_to_string : error -> string

val validate : n:int -> int array -> (unit, error) result
(** Check a release vector against a job count. *)

val check : n:int -> int array option -> unit
(** [validate] on [Some r], raising {!Invalid}; no-op on [None]. *)
