(** Event-driven execution of oblivious schedules.

    An oblivious schedule fixes every step's assignment in advance, so a
    job's completion time does not need unit-step Bernoulli simulation:
    each maximal stretch of steps during which one machine works the job
    with constant [p_ij] is an iid Bernoulli sequence whose first success
    index is Geometric(p) — one draw replaces the whole stretch, and the
    g-th attempt maps back to an absolute step in O(1), including across
    the infinitely repeated cycle. Completion steps are sampled in
    topological order (a job becomes workable the step after its last
    predecessor finishes, and not before its release date), which is
    exactly the unit-step semantics of {!Engine.run} restricted to
    oblivious policies; the resulting makespan is {e
    distribution-equivalent} to the naive stepper's, though the RNG draw
    sequence differs.

    The engine's estimators take this path automatically for policies
    tagged {!Suu_core.Policy.Oblivious_schedule}; [run]/[trace] always
    use the naive stepper, so single-realisation replays stay bit-stable
    across versions. *)

type t
(** A compiled schedule plus per-trial scratch. Compilation is O(total
    schedule steps × m); each trial then costs one geometric draw per
    (job, machine-stretch). Not domain-safe: build one per domain. *)

val prepare :
  ?releases:int array -> Suu_core.Instance.t -> Suu_core.Oblivious.t -> t
(** Compile [sched] for [inst] once per estimate.
    @raise Invalid_argument on machine-count mismatch or bad releases. *)

val run : t -> Suu_prob.Rng.t -> max_steps:int -> int * bool
(** One realisation: [(makespan, completed)], with [completed = false]
    (and makespan [max_steps]) iff some job's sampled completion lands at
    or beyond [max_steps] — the same truncation semantics as the naive
    stepper. *)

val never : int
(** The sentinel completion step ([max_int]) meaning "not sampled" or
    "did not complete within the sampled window". *)

val reset_completions : t -> unit
(** Reset the per-trial completion arena to {!never}. Draws nothing, so
    calling it before {!run} leaves the trial's RNG stream — and hence
    every seeded estimate — bit-identical; it only makes {!completions}
    trustworthy afterwards (by default the arena is {e not} cleared
    between trials and may hold a previous trial's entries). *)

val completions : t -> int array
(** The per-trial completion arena: [completions t].(j) is the 0-based
    step at which job [j] completed in the last {!run}, or {!never}.
    After a truncated trial, entries of jobs sampled after the
    truncation point are stale unless {!reset_completions} preceded the
    run. The array is the live arena — read, don't mutate, and copy
    before the next trial. *)
