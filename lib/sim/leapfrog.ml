module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious
module Dag = Suu_dag.Dag

(* A maximal stretch of consecutive steps on which one machine works one
   job with constant success probability [p]. [start] is an absolute
   step for prefix runs, a position within the cycle for cycle runs.
   [inv_log1mp] caches [1 / log(1 - p)] (0 when p = 1), so the per-trial
   geometric draw costs one [log1p] instead of two. *)
type run_ = { p : float; inv_log1mp : float; start : int; len : int }

type plan = {
  n : int;
  plen : int;  (** prefix length *)
  clen : int;  (** cycle length; 0 = machines idle after the prefix *)
  prefix_runs : run_ array array;  (** per job *)
  cycle_runs : run_ array array;  (** per job, positions within the cycle *)
  order : int array;  (** topological order of the jobs *)
  preds : int array array;  (** per job *)
  releases : int array option;
}

type t = {
  plan : plan;
  comp : int array;  (** per-job completion step; arena reused per trial *)
}

let never = max_int

(* Split the steps of [assignments] into per-job constant-machine runs.
   Zero-probability pairs are dropped: they can never complete the job,
   and the naive stepper consumes no randomness for them either
   ([Rng.bernoulli] with p = 0 returns without drawing). *)
let runs_of_steps inst n assignments =
  let per_job = Array.make n [] in
  let m = Instance.m inst in
  let steps = Array.length assignments in
  for i = 0 to m - 1 do
    (* Walk machine i's row, closing a run whenever the job changes. *)
    let cur_job = ref Suu_core.Assignment.idle_job in
    let cur_start = ref 0 in
    let flush upto =
      let j = !cur_job in
      if j <> Suu_core.Assignment.idle_job then begin
        let p = Instance.prob inst ~machine:i ~job:j in
        if p > 0. then begin
          let inv_log1mp = if p >= 1. then 0. else 1. /. Float.log1p (-.p) in
          per_job.(j) <-
            { p; inv_log1mp; start = !cur_start; len = upto - !cur_start }
            :: per_job.(j)
        end
      end
    in
    for t = 0 to steps - 1 do
      let j = assignments.(t).(i) in
      let j = if j >= 0 && j < n then j else Suu_core.Assignment.idle_job in
      if j <> !cur_job then begin
        flush t;
        cur_job := j;
        cur_start := t
      end
    done;
    flush steps
  done;
  (* Deterministic sampling order: runs by (start, machine-scan order). *)
  Array.map
    (fun runs ->
      let a = Array.of_list (List.rev runs) in
      Array.sort (fun r1 r2 -> compare r1.start r2.start) a;
      a)
    per_job

let prepare ?releases inst sched =
  let n = Instance.n inst in
  Releases.check ~n releases;
  if Oblivious.(sched.m) <> Instance.m inst then
    invalid_arg "Leapfrog.prepare: machine count mismatch";
  let dag = Instance.dag inst in
  let plan =
    {
      n;
      plen = Oblivious.prefix_length sched;
      clen = Oblivious.cycle_length sched;
      prefix_runs = runs_of_steps inst n Oblivious.(sched.prefix);
      cycle_runs = runs_of_steps inst n Oblivious.(sched.cycle);
      order = Dag.topo_order dag;
      preds = Array.init n (fun j -> Array.of_list (Dag.preds dag j));
      releases;
    }
  in
  { plan; comp = Array.make n never }

(* Geometric(p) by inversion, with the run's cached 1/log(1-p):
   ceil(log(1-U) / log(1-p)) has the right distribution (support 1, 2,
   ...). One uniform, one log1p per draw. *)
let geometric rng r =
  if r.p >= 1. then 1
  else begin
    let u = Suu_prob.Rng.float rng in
    let k = Float.to_int (Float.ceil (Float.log1p (-.u) *. r.inv_log1mp)) in
    if k < 1 then 1 else k
  end

(* First success of a finite attempt window of [count] iid Bernoulli(p)
   trials starting at absolute step [first]: the g-th attempt succeeds,
   g ~ Geometric(p); [never] if g overshoots the window. *)
let sample_finite rng r ~first ~count =
  let g = geometric rng r in
  if g <= count then first + g - 1 else never

(* First success over the infinite attempt set of a cycle run: pass k >= k0
   contributes attempts at cycle_base + k*clen + start .. +len-1, the
   first pass clipped to its last [len - off] attempts. The g-th attempt
   of the concatenated sequence maps back to a step in O(1). *)
let sample_cycle rng r ~cycle_base ~clen ~start ~len ~k0 ~off =
  let g = geometric rng r in
  let first_count = len - off in
  if g <= first_count then cycle_base + (k0 * clen) + start + off + g - 1
  else begin
    let g' = g - first_count - 1 in
    let pass = k0 + 1 + (g' / len) in
    cycle_base + (pass * clen) + start + (g' mod len)
  end

(* Completion step of job [j] given it becomes workable at step [elig]:
   the earliest success among all of its machine-run attempt sets at
   steps >= elig. Every (machine, step) attempt is an independent
   Bernoulli draw in the unit-step semantics, so per-run first-success
   times are independent and the completion is their minimum. *)
let sample_completion plan rng j ~elig =
  let best = ref never in
  let prefix_runs = plan.prefix_runs.(j) in
  for r = 0 to Array.length prefix_runs - 1 do
    let ({ start; len; _ } as run) = prefix_runs.(r) in
    let last = start + len - 1 in
    if elig <= last then begin
      let off = if elig > start then elig - start else 0 in
      let c = sample_finite rng run ~first:(start + off) ~count:(len - off) in
      if c < !best then best := c
    end
  done;
  let cycle_runs = plan.cycle_runs.(j) in
  if Array.length cycle_runs > 0 then begin
    let cycle_base = plan.plen and clen = plan.clen in
    (* Position of [elig] relative to the cycling region. *)
    let e = if elig > cycle_base then elig - cycle_base else 0 in
    for r = 0 to Array.length cycle_runs - 1 do
      let ({ start; len; _ } as run) = cycle_runs.(r) in
      let k0, off =
        if e <= start then (0, 0)
        else begin
          let k0 = (e - start) / clen in
          let off = e - ((k0 * clen) + start) in
          if off >= len then (k0 + 1, 0) else (k0, off)
        end
      in
      let c = sample_cycle rng run ~cycle_base ~clen ~start ~len ~k0 ~off in
      if c < !best then best := c
    done
  end;
  !best

(* One realisation: sample completion steps in topological order and
   advance straight to each completion event. Returns (makespan,
   completed) with the same semantics as the naive stepper: completed
   iff every job's completion step lands before [max_steps]; the
   makespan is then the last completion step + 1. *)
let reset_completions t = Array.fill t.comp 0 (Array.length t.comp) never
let completions t = t.comp

let run t rng ~max_steps =
  let plan = t.plan in
  let comp = t.comp in
  let makespan = ref 0 in
  let completed = ref true in
  let horizon = max_steps - 1 in
  (try
     for q = 0 to plan.n - 1 do
       let j = plan.order.(q) in
       (* Workable once all predecessors are done (end-of-step
          completion: successors start the step after) and the release
          date has arrived. *)
       let elig = ref (match plan.releases with Some r -> r.(j) | None -> 0) in
       let preds = plan.preds.(j) in
       for k = 0 to Array.length preds - 1 do
         let cu = comp.(preds.(k)) in
         if cu + 1 > !elig then elig := cu + 1
       done;
       if !elig > horizon then begin
         (* Even an immediate success would land past the cap; the naive
            stepper would have been truncated before this job ran. *)
         completed := false;
         raise Exit
       end;
       let c = sample_completion plan rng j ~elig:!elig in
       comp.(j) <- c;
       if c > horizon then begin
         completed := false;
         raise Exit
       end;
       if c + 1 > !makespan then makespan := c + 1
     done
   with Exit -> ());
  if !completed then (!makespan, true) else (max_steps, false)
