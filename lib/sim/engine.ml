module Instance = Suu_core.Instance
module Assignment = Suu_core.Assignment
module Policy = Suu_core.Policy

type outcome = { makespan : int; completed : bool }

let default_horizon inst =
  let n = Instance.n inst in
  if n = 0 then 1
  else begin
    let pmin = Instance.p_min inst in
    let logn = 1. +. Float.log (Float.of_int (max 2 n)) in
    let bound = 64. *. (Float.of_int n /. pmin) *. logn in
    (* Keep the cap sane even for tiny pmin. *)
    Float.to_int (Float.min bound 5e7) + 64
  end

(* Mutable execution state shared by [run] and [trace]. *)
type exec = {
  inst : Instance.t;
  unfinished : bool array;
  eligible : bool array;
  pending_preds : int array;
  releases : int array option;
  mutable remaining : int;
}

let exec_create ?releases inst =
  let n = Instance.n inst in
  (match releases with
  | Some r ->
      if Array.length r <> n then invalid_arg "Engine: releases length mismatch";
      Array.iter
        (fun v -> if v < 0 then invalid_arg "Engine: negative release date")
        r
  | None -> ());
  let dag = Instance.dag inst in
  let pending_preds = Array.init n (Suu_dag.Dag.in_degree dag) in
  let released j = match releases with Some r -> r.(j) <= 0 | None -> true in
  {
    inst;
    unfinished = Array.make n true;
    eligible = Array.init n (fun j -> pending_preds.(j) = 0 && released j);
    pending_preds;
    releases;
    remaining = n;
  }

let exec_released_by ex t j =
  match ex.releases with None -> true | Some r -> r.(j) <= t

(* Mark jobs whose release date has arrived; no-op in the offline case. *)
let exec_release_due ex t =
  match ex.releases with
  | None -> ()
  | Some r ->
      Array.iteri
        (fun j rel ->
          if
            rel <= t && ex.unfinished.(j)
            && ex.pending_preds.(j) = 0
            && not ex.eligible.(j)
          then ex.eligible.(j) <- true)
        r

let exec_finish ex t j =
  ex.unfinished.(j) <- false;
  ex.eligible.(j) <- false;
  ex.remaining <- ex.remaining - 1;
  List.iter
    (fun v ->
      ex.pending_preds.(v) <- ex.pending_preds.(v) - 1;
      if ex.pending_preds.(v) = 0 && ex.unfinished.(v) && exec_released_by ex t v
      then ex.eligible.(v) <- true)
    (Suu_dag.Dag.succs (Instance.dag ex.inst) j)

(* One step: returns the list of jobs completed. *)
let exec_step rng ex t assignment =
  let completed = ref [] in
  let newly = Hashtbl.create 4 in
  Array.iteri
    (fun i j ->
      if
        j <> Assignment.idle_job
        && ex.unfinished.(j)
        && ex.eligible.(j)
        && not (Hashtbl.mem newly j)
      then
        if Suu_prob.Rng.bernoulli rng (Instance.prob ex.inst ~machine:i ~job:j)
        then begin
          Hashtbl.add newly j ();
          completed := j :: !completed
        end)
    assignment;
  (* Completions take effect at the end of the step. *)
  List.iter (exec_finish ex t) !completed;
  !completed

let run ?max_steps ?releases rng inst policy =
  let max_steps =
    match max_steps with Some v -> v | None -> default_horizon inst
  in
  let ex = exec_create ?releases inst in
  let decide = policy.Policy.fresh () in
  let t = ref 0 in
  while ex.remaining > 0 && !t < max_steps do
    exec_release_due ex !t;
    let state =
      { Policy.step = !t; unfinished = ex.unfinished; eligible = ex.eligible }
    in
    let a = decide state in
    ignore (exec_step rng ex !t a : int list);
    incr t
  done;
  { makespan = !t; completed = ex.remaining = 0 }

let trace ?max_steps ?releases rng inst policy =
  let max_steps =
    match max_steps with Some v -> v | None -> default_horizon inst
  in
  let ex = exec_create ?releases inst in
  let decide = policy.Policy.fresh () in
  let history = ref [] in
  let t = ref 0 in
  while ex.remaining > 0 && !t < max_steps do
    exec_release_due ex !t;
    let state =
      { Policy.step = !t; unfinished = ex.unfinished; eligible = ex.eligible }
    in
    let a = decide state in
    let done_now = exec_step rng ex !t a in
    history := (!t, Array.copy a, done_now) :: !history;
    incr t
  done;
  List.rev !history

type estimate = {
  stats : Suu_prob.Stats.summary;
  trials : int;
  incomplete : int;
  samples : float array;
}

let finish_estimate ?max_steps inst ~trials ~incomplete samples =
  let stats =
    if Array.length samples = 0 then
      (* All runs truncated: report the cap itself so callers see a huge
         value rather than crashing. *)
      Suu_prob.Stats.summarize
        [|
          Float.of_int
            (match max_steps with
            | Some v -> v
            | None -> default_horizon inst);
        |]
    else Suu_prob.Stats.summarize samples
  in
  { stats; trials; incomplete; samples }

let estimate_makespan ?max_steps ?releases ~trials rng inst policy =
  if trials < 1 then invalid_arg "Engine.estimate_makespan: trials < 1";
  let samples = ref [] in
  let incomplete = ref 0 in
  for _ = 1 to trials do
    let o = run ?max_steps ?releases rng inst policy in
    if o.completed then samples := Float.of_int o.makespan :: !samples
    else incr incomplete
  done;
  finish_estimate ?max_steps inst ~trials ~incomplete:!incomplete
    (Array.of_list !samples)

exception Interrupted

let estimate_makespan_seeded ?max_steps ?releases ?(stop = fun () -> false)
    ?(on_trial = fun (_ : int) -> ()) ~trials ~seed inst policy =
  if trials < 1 then invalid_arg "Engine.estimate_makespan_seeded: trials < 1";
  let samples = ref [] in
  let incomplete = ref 0 in
  for k = 0 to trials - 1 do
    if stop () then raise Interrupted;
    on_trial k;
    (* Same mixing family as the parallel estimator's per-worker seeds,
       applied per trial: the stream of trial [k] is a pure function of
       [(seed, k)]. *)
    let rng = Suu_prob.Rng.create (seed lxor ((k + 1) * 0x9E3779B1)) in
    let o = run ?max_steps ?releases rng inst policy in
    if o.completed then samples := Float.of_int o.makespan :: !samples
    else incr incomplete
  done;
  finish_estimate ?max_steps inst ~trials ~incomplete:!incomplete
    (Array.of_list (List.rev !samples))

let estimate_makespan_parallel ?max_steps ?releases ?domains ~trials ~seed inst
    policy =
  if trials < 1 then invalid_arg "Engine.estimate_makespan_parallel: trials < 1";
  let domains =
    match domains with
    | Some d ->
        if d < 1 then
          invalid_arg "Engine.estimate_makespan_parallel: domains < 1";
        d
    | None -> min 8 (Domain.recommended_domain_count ())
  in
  let domains = min domains trials in
  (* Deterministic per-worker trial counts and seeds. *)
  let per_worker = trials / domains and extra = trials mod domains in
  let worker k =
    let my_trials = per_worker + if k < extra then 1 else 0 in
    let rng = Suu_prob.Rng.create (seed lxor ((k + 1) * 0x9E3779B1)) in
    let samples = ref [] in
    let incomplete = ref 0 in
    for _ = 1 to my_trials do
      let o = run ?max_steps ?releases rng inst policy in
      if o.completed then samples := Float.of_int o.makespan :: !samples
      else incr incomplete
    done;
    (Array.of_list (List.rev !samples), !incomplete)
  in
  let handles =
    List.init (domains - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
  in
  let first = worker 0 in
  let results = first :: List.map Domain.join handles in
  let samples = Array.concat (List.map fst results) in
  let incomplete = List.fold_left (fun acc (_, i) -> acc + i) 0 results in
  finish_estimate ?max_steps inst ~trials ~incomplete samples
