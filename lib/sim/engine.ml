module Instance = Suu_core.Instance
module Assignment = Suu_core.Assignment
module Policy = Suu_core.Policy
module Oblivious = Suu_core.Oblivious
module Counters = Suu_obs.Counters
module Exec_trace = Suu_obs.Exec_trace
module Churn = Suu_dyn.Churn

(* Process-wide engine telemetry. Counters are bumped once or twice per
   trial (never per step), so they are always on: two atomic adds
   disappear against the cost of even the shortest trial, which is what
   keeps the observer-disabled perf-smoke budget honest. *)
let counters = Counters.create ()
let c_trials = Counters.make counters "engine_trials_total"
let c_steps = Counters.make counters "engine_steps_simulated_total"
let c_leap_trials = Counters.make counters "engine_leapfrog_trials_total"

let c_leap_steps =
  Counters.make counters "engine_leapfrog_steps_skipped_total"

let c_vector_words = Counters.make counters "engine_vector_words_total"
let c_early_stops = Counters.make counters "engine_early_stops_total"

type outcome = { makespan : int; completed : bool }

let default_horizon inst =
  let n = Instance.n inst in
  if n = 0 then 1
  else begin
    let pmin = Instance.p_min inst in
    let logn = 1. +. Float.log (Float.of_int (max 2 n)) in
    let bound = 64. *. (Float.of_int n /. pmin) *. logn in
    (* Keep the cap sane even for tiny pmin. *)
    Float.to_int (Float.min bound 5e7) + 64
  end

(* Mutable execution arena shared by [run], [trace] and the estimators.
   One arena serves every trial of an estimate: [exec_reset] restores it
   without reallocating, so the steady-state trial loop allocates
   nothing. *)
type exec = {
  inst : Instance.t;
  unfinished : bool array;
  eligible : bool array;
  pending_preds : int array;
  init_preds : int array;  (** in-degrees, the reset image *)
  releases : int array option;
  churn : Churn.t option;
  mutable remaining : int;
  (* Per-step completion scratch, replacing a per-step Hashtbl: job [j]
     completed during the current step iff [mark.(j) = epoch]. The epoch
     increments every step (across trials too), so resetting the arena
     never needs to clear [mark]. *)
  mark : int array;
  mutable epoch : int;
  completed_buf : int array;
  mutable completed_count : int;
}

let exec_released_at ex j =
  match ex.releases with None -> true | Some r -> r.(j) <= 0

let exec_reset ex =
  let n = Array.length ex.unfinished in
  Array.fill ex.unfinished 0 n true;
  Array.blit ex.init_preds 0 ex.pending_preds 0 n;
  for j = 0 to n - 1 do
    ex.eligible.(j) <- ex.pending_preds.(j) = 0 && exec_released_at ex j
  done;
  ex.remaining <- n;
  ex.completed_count <- 0

(* The availability seam: churn timelines must match the instance's
   machine count, and an all-up timeline is dropped so the hot path
   keeps its churn-free shape. *)
let check_availability inst = function
  | None -> None
  | Some c ->
      if Churn.m c <> Instance.m inst then
        invalid_arg "Engine: availability machine count mismatch";
      if Churn.is_none c then None else Some c

let exec_create ?releases ?churn inst =
  let n = Instance.n inst in
  Releases.check ~n releases;
  let churn = check_availability inst churn in
  let dag = Instance.dag inst in
  let ex =
    {
      inst;
      unfinished = Array.make n true;
      eligible = Array.make n false;
      pending_preds = Array.make n 0;
      init_preds = Array.init n (Suu_dag.Dag.in_degree dag);
      releases;
      churn;
      remaining = n;
      mark = Array.make n (-1);
      epoch = 0;
      completed_buf = Array.make (max n 1) 0;
      completed_count = 0;
    }
  in
  exec_reset ex;
  ex

let exec_released_by ex t j =
  match ex.releases with None -> true | Some r -> r.(j) <= t

(* Mark jobs whose release date has arrived; no-op in the offline case. *)
let exec_release_due ex t =
  match ex.releases with
  | None -> ()
  | Some r ->
      Array.iteri
        (fun j rel ->
          if
            rel <= t && ex.unfinished.(j)
            && ex.pending_preds.(j) = 0
            && not ex.eligible.(j)
          then ex.eligible.(j) <- true)
        r

let exec_finish ex t j =
  ex.unfinished.(j) <- false;
  ex.eligible.(j) <- false;
  ex.remaining <- ex.remaining - 1;
  List.iter
    (fun v ->
      ex.pending_preds.(v) <- ex.pending_preds.(v) - 1;
      if ex.pending_preds.(v) = 0 && ex.unfinished.(v) && exec_released_by ex t v
      then ex.eligible.(v) <- true)
    (Suu_dag.Dag.succs (Instance.dag ex.inst) j)

(* Whether machine [i] may draw at step [t]: a machine that churn has
   taken down contributes no mass — and consumes no randomness, exactly
   as if the schedule had idled it (so the gated stepper on the original
   schedule is draw-for-draw the ungated stepper on the masked one). *)
let exec_machine_up ex i t =
  match ex.churn with
  | None -> true
  | Some c -> Churn.available c ~machine:i ~step:t

(* One step: completed jobs land in [ex.completed_buf] (first
   [ex.completed_count] slots, in marking order). The Bernoulli draw
   sequence — machines in index order, at most one draw per (machine,
   step), none once the job is already marked — is identical to the
   historical Hashtbl-based implementation, which keeps seeded estimates
   bit-stable. *)
let exec_step rng ex t assignment =
  ex.epoch <- ex.epoch + 1;
  let epoch = ex.epoch in
  let count = ref 0 in
  Array.iteri
    (fun i j ->
      if
        j <> Assignment.idle_job
        && ex.unfinished.(j)
        && ex.eligible.(j)
        && ex.mark.(j) <> epoch
        && exec_machine_up ex i t
      then
        if Suu_prob.Rng.bernoulli rng (Instance.prob ex.inst ~machine:i ~job:j)
        then begin
          ex.mark.(j) <- epoch;
          ex.completed_buf.(!count) <- j;
          incr count
        end)
    assignment;
  ex.completed_count <- !count;
  (* Completions take effect at the end of the step; finishing in
     reverse marking order preserves the historical update order. *)
  for k = !count - 1 downto 0 do
    exec_finish ex t ex.completed_buf.(k)
  done

(* The completions of the last step as a list (reverse marking order,
   matching the historical [trace] output). *)
let exec_completed_list ex =
  let acc = ref [] in
  for k = 0 to ex.completed_count - 1 do
    acc := ex.completed_buf.(k) :: !acc
  done;
  !acc

(* Run one realisation on an already-reset arena. *)
let run_exec ~max_steps rng ex policy =
  let decide = policy.Policy.fresh () in
  let t = ref 0 in
  while ex.remaining > 0 && !t < max_steps do
    exec_release_due ex !t;
    let state =
      { Policy.step = !t; unfinished = ex.unfinished; eligible = ex.eligible }
    in
    let a = decide state in
    exec_step rng ex !t a;
    incr t
  done;
  { makespan = !t; completed = ex.remaining = 0 }

let run ?max_steps ?releases ?availability rng inst policy =
  let max_steps =
    match max_steps with Some v -> v | None -> default_horizon inst
  in
  let ex = exec_create ?releases ?churn:availability inst in
  run_exec ~max_steps rng ex policy

let trace ?max_steps ?releases ?availability rng inst policy =
  let max_steps =
    match max_steps with Some v -> v | None -> default_horizon inst
  in
  let ex = exec_create ?releases ?churn:availability inst in
  let decide = policy.Policy.fresh () in
  let history = ref [] in
  let t = ref 0 in
  while ex.remaining > 0 && !t < max_steps do
    exec_release_due ex !t;
    let state =
      { Policy.step = !t; unfinished = ex.unfinished; eligible = ex.eligible }
    in
    let a = decide state in
    exec_step rng ex !t a;
    history := (!t, Array.copy a, exec_completed_list ex) :: !history;
    incr t
  done;
  List.rev !history

type estimate = {
  stats : Suu_prob.Stats.summary;
  trials : int;
  incomplete : int;
  samples : float array;
}

let finish_estimate ~max_steps ~trials ~incomplete samples =
  let stats =
    if Array.length samples = 0 then
      (* All runs truncated: report the cap itself so callers see a huge
         value rather than crashing. *)
      Suu_prob.Stats.summarize [| Float.of_int max_steps |]
    else Suu_prob.Stats.summarize samples
  in
  { stats; trials; incomplete; samples }

(* --- per-trial machinery shared by the three estimators --- *)

(* One reusable trial runner: the naive stepping arena for general
   policies, the compiled leapfrog plan for oblivious ones. Either way,
   all per-trial state is preallocated once per (estimate, domain). *)
type runner =
  | Stepper of exec * Policy.t
  | Leap of Leapfrog.t * Oblivious.t
      (** the schedule rides along so observed trials can reconstruct
          per-step assignments without re-deriving them from the plan *)

let make_runner ?releases ?availability inst policy =
  let churn = check_availability inst availability in
  match Policy.oblivious policy with
  | Some sched ->
      (* Fold churn into the schedule itself: the masked schedule idles
         down machines, so the unchurned leapfrog sampler over it draws
         exactly the surviving (machine, step) attempts. *)
      let sched =
        match churn with None -> sched | Some c -> Churn.mask c sched
      in
      Leap (Leapfrog.prepare ?releases inst sched, sched)
  | None -> Stepper (exec_create ?releases ?churn inst, policy)

let run_trial runner rng ~max_steps =
  Counters.incr c_trials;
  match runner with
  | Stepper (ex, policy) ->
      exec_reset ex;
      let o = run_exec ~max_steps rng ex policy in
      Counters.add c_steps o.makespan;
      o
  | Leap (leap, _) ->
      let makespan, completed = Leapfrog.run leap rng ~max_steps in
      Counters.incr c_leap_trials;
      Counters.add c_leap_steps makespan;
      { makespan; completed }

(* Run one trial while capturing its step-by-step history (at most
   [limit] steps). RNG consumption is bit-identical to [run_trial]:

   - Stepper: the loop below performs exactly [run_exec]'s draw sequence
     and records {e after} each [exec_step], so observation cannot
     perturb the stream.
   - Leap: the geometric draws are untouched; [reset_completions] draws
     nothing, and the per-step history is {e reconstructed} afterwards
     from the completion arena plus the schedule itself — the recorded
     assignment at step [t] is [Oblivious.step sched t] verbatim, which
     is precisely what [trace]'s naive stepper records for an oblivious
     policy (the decided assignment, completed jobs included). *)
let run_trial_observed runner rng ~max_steps ~limit =
  Counters.incr c_trials;
  match runner with
  | Stepper (ex, policy) ->
      exec_reset ex;
      let decide = policy.Policy.fresh () in
      let steps = ref [] in
      let recorded = ref 0 in
      let t = ref 0 in
      while ex.remaining > 0 && !t < max_steps do
        exec_release_due ex !t;
        let state =
          {
            Policy.step = !t;
            unfinished = ex.unfinished;
            eligible = ex.eligible;
          }
        in
        let a = decide state in
        exec_step rng ex !t a;
        if !recorded < limit then begin
          steps :=
            {
              Exec_trace.t = !t + 1;
              assignment = Array.copy a;
              completed = exec_completed_list ex;
            }
            :: !steps;
          incr recorded
        end;
        incr t
      done;
      Counters.add c_steps !t;
      ({ makespan = !t; completed = ex.remaining = 0 }, List.rev !steps)
  | Leap (leap, sched) ->
      Leapfrog.reset_completions leap;
      let makespan, completed = Leapfrog.run leap rng ~max_steps in
      Counters.incr c_leap_trials;
      Counters.add c_leap_steps makespan;
      let comp = Leapfrog.completions leap in
      let upto = min makespan limit in
      (* Bucket sampled completions by step within the recorded window
         (completions past [limit] are dropped, like the stepper's). *)
      let compl = Array.make (max upto 1) [] in
      Array.iteri
        (fun j c ->
          if c <> Leapfrog.never && c < upto then compl.(c) <- j :: compl.(c))
        comp;
      let steps =
        List.init upto (fun t ->
            {
              Exec_trace.t = t + 1;
              assignment = Array.copy (Oblivious.step sched t);
              completed = compl.(t);
            })
      in
      ({ makespan; completed }, steps)

(* Samples are collected into a preallocated buffer in trial order
   (slot k of the buffer is the k-th completed trial). *)
type collector = {
  buf : float array;
  mutable filled : int;
  mutable truncated : int;
}

let collector trials = { buf = Array.make trials 0.; filled = 0; truncated = 0 }

let collect c (o : outcome) =
  if o.completed then begin
    c.buf.(c.filled) <- Float.of_int o.makespan;
    c.filled <- c.filled + 1
  end
  else c.truncated <- c.truncated + 1

let collector_samples c = Array.sub c.buf 0 c.filled

(* Same per-trial seed mixing everywhere: the stream of trial [k] is a
   pure function of [(seed, k)], so seeded and parallel estimates agree
   sample-for-sample at any domain count. *)
let trial_seed seed k = seed lxor ((k + 1) * 0x9E3779B1)

(* --- CI-width sequential stopping ------------------------------------ *)

(* Running Welford accumulator over completed samples, checked only at
   whole-word boundaries (the vectorized batch size, so scalar and
   vectorized estimators stop at the same trial counts). The half-width
   mirrors [Stats.summarize]: 1.96 * sqrt(m2 / (n-1)) / sqrt(n). *)
type ci_acc = { mutable cnt : int; mutable mean : float; mutable m2 : float }

let ci_acc () = { cnt = 0; mean = 0.; m2 = 0. }

let ci_add a x =
  a.cnt <- a.cnt + 1;
  let d = x -. a.mean in
  a.mean <- a.mean +. (d /. Float.of_int a.cnt);
  a.m2 <- a.m2 +. (d *. (x -. a.mean))

let ci_reached a target =
  a.cnt >= 2
  &&
  let n = Float.of_int a.cnt in
  1.96 *. sqrt (a.m2 /. (n -. 1.) /. n) <= target

let check_ci_target = function
  | Some c when not (c > 0.) -> invalid_arg "Engine: ci_target must be > 0"
  | _ -> ()

let word = Lanes.lanes_per_word

let estimate_makespan ?max_steps ?releases ?availability ?ci_target ~trials rng
    inst policy =
  if trials < 1 then invalid_arg "Engine.estimate_makespan: trials < 1";
  check_ci_target ci_target;
  let max_steps =
    match max_steps with Some v -> v | None -> default_horizon inst
  in
  let c = collector trials in
  let acc = ci_acc () in
  let executed = ref 0 in
  let stopped = ref false in
  (* Stop once the 95% CI half-width over completed samples dips below
     the target — only at word boundaries, so both paths below agree on
     where stopping is possible. *)
  let check_stop () =
    match ci_target with
    | Some tgt when !executed < trials && ci_reached acc tgt ->
        stopped := true;
        Counters.incr c_early_stops
    | _ -> ()
  in
  (match Lanes.create ?releases ?availability inst policy with
  | Some k ->
      (* Vectorized path: whole words of trials per kernel call, each
         word seeded from the caller's generator. Distribution-equivalent
         to the scalar path, not stream-equivalent. *)
      let makespans = Array.make word 0 in
      while (not !stopped) && !executed < trials do
        let lanes = min word (trials - !executed) in
        let seed = Int64.to_int (Suu_prob.Rng.int64 rng) in
        Lanes.run_word k ~seed ~max_steps ~lanes ~makespans;
        Counters.incr c_vector_words;
        Counters.add c_trials lanes;
        for l = 0 to lanes - 1 do
          let mk = makespans.(l) in
          if mk >= 0 then begin
            let x = Float.of_int mk in
            c.buf.(c.filled) <- x;
            c.filled <- c.filled + 1;
            ci_add acc x
          end
          else c.truncated <- c.truncated + 1
        done;
        executed := !executed + lanes;
        check_stop ()
      done
  | None ->
      let runner = make_runner ?releases ?availability inst policy in
      while (not !stopped) && !executed < trials do
        let o = run_trial runner rng ~max_steps in
        if o.completed then ci_add acc (Float.of_int o.makespan);
        collect c o;
        incr executed;
        if !executed mod word = 0 then check_stop ()
      done);
  finish_estimate ~max_steps ~trials:!executed ~incomplete:c.truncated
    (collector_samples c)

exception Interrupted

let estimate_makespan_range ?max_steps ?releases ?availability ?ci_target
    ?(stop = fun () -> false) ?(on_trial = fun (_ : int) -> ()) ~seed ~lo ~hi
    inst policy =
  if lo < 0 || hi <= lo then
    invalid_arg "Engine.estimate_makespan_range: need 0 <= lo < hi";
  check_ci_target ci_target;
  let max_steps =
    match max_steps with Some v -> v | None -> default_horizon inst
  in
  let runner = make_runner ?releases ?availability inst policy in
  let c = collector (hi - lo) in
  let acc = ci_acc () in
  let executed = ref 0 in
  let stopped = ref false in
  (* Absolute trial indices: trial [k] of the range draws from the very
     generator trial [k] of a full run draws from, so contiguous ranges
     concatenate into the full run's sample vector bit-for-bit. Stopping
     boundaries are counted relative to [lo] — a deterministic property
     of the range alone, independent of how the caller partitioned. *)
  let k = ref lo in
  while (not !stopped) && !k < hi do
    if stop () then raise Interrupted;
    on_trial !k;
    let rng = Suu_prob.Rng.create (trial_seed seed !k) in
    let o = run_trial runner rng ~max_steps in
    if o.completed then ci_add acc (Float.of_int o.makespan);
    collect c o;
    incr executed;
    incr k;
    if !executed mod word = 0 then
      match ci_target with
      | Some tgt when !k < hi && ci_reached acc tgt ->
          stopped := true;
          Counters.incr c_early_stops
      | _ -> ()
  done;
  finish_estimate ~max_steps ~trials:!executed ~incomplete:c.truncated
    (collector_samples c)

let merge_ranges ~max_steps parts =
  if parts = [] then invalid_arg "Engine.merge_ranges: no parts";
  let trials = List.fold_left (fun a e -> a + e.trials) 0 parts in
  let incomplete = List.fold_left (fun a e -> a + e.incomplete) 0 parts in
  let samples = Array.concat (List.map (fun e -> e.samples) parts) in
  finish_estimate ~max_steps ~trials ~incomplete samples

let estimate_makespan_seeded ?max_steps ?releases ?availability ?ci_target
    ?(stop = fun () -> false) ?(on_trial = fun (_ : int) -> ()) ?observer
    ~trials ~seed inst policy =
  if trials < 1 then invalid_arg "Engine.estimate_makespan_seeded: trials < 1";
  check_ci_target ci_target;
  let max_steps =
    match max_steps with Some v -> v | None -> default_horizon inst
  in
  let runner = make_runner ?releases ?availability inst policy in
  let c = collector trials in
  let acc = ci_acc () in
  let stopped = ref false in
  let k = ref 0 in
  while (not !stopped) && !k < trials do
    if stop () then raise Interrupted;
    on_trial !k;
    let rng = Suu_prob.Rng.create (trial_seed seed !k) in
    let outcome =
      match observer with
      | Some o when Exec_trace.selects o !k ->
          let outcome, steps =
            run_trial_observed runner rng ~max_steps ~limit:o.Exec_trace.limit
          in
          o.Exec_trace.emit
            {
              Exec_trace.index = !k;
              seed = trial_seed seed !k;
              makespan = outcome.makespan;
              truncated = not outcome.completed;
              steps;
            };
          outcome
      | _ -> run_trial runner rng ~max_steps
    in
    if outcome.completed then ci_add acc (Float.of_int outcome.makespan);
    collect c outcome;
    incr k;
    if !k mod word = 0 then
      match ci_target with
      | Some tgt when !k < trials && ci_reached acc tgt ->
          stopped := true;
          Counters.incr c_early_stops
      | _ -> ()
  done;
  finish_estimate ~max_steps ~trials:!k ~incomplete:c.truncated
    (collector_samples c)

let estimate_makespan_parallel ?max_steps ?releases ?availability ?domains
    ?ci_target ?(stop = fun () -> false) ?(on_trial = fun (_ : int) -> ())
    ~trials ~seed inst policy =
  if trials < 1 then invalid_arg "Engine.estimate_makespan_parallel: trials < 1";
  check_ci_target ci_target;
  let domains =
    match domains with
    | Some d ->
        if d < 1 then
          invalid_arg "Engine.estimate_makespan_parallel: domains < 1";
        d
    | None -> min 8 (Domain.recommended_domain_count ())
  in
  let domains = min domains trials in
  let max_steps =
    match max_steps with Some v -> v | None -> default_horizon inst
  in
  let failure : exn option Atomic.t = Atomic.make None in
  let not_run = -1. in
  let slots = Array.make trials not_run in
  let spawn_and_collect ~executed worker =
    let handles = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join handles;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    let executed = executed () in
    let c = collector executed in
    for i = 0 to executed - 1 do
      if slots.(i) = not_run then c.truncated <- c.truncated + 1
      else begin
        c.buf.(c.filled) <- slots.(i);
        c.filled <- c.filled + 1
      end
    done;
    finish_estimate ~max_steps ~trials:executed ~incomplete:c.truncated
      (collector_samples c)
  in
  match ci_target with
  | None ->
      (* Chunked self-scheduling: workers claim trial indices from a
         shared counter, so domains stay balanced even when trial lengths
         vary wildly (one unlucky long trial no longer idles the other
         domains of its static share). Per-trial seeding makes the result
         a pure function of [(seed, trials)] regardless of which domain
         runs which trial — bit-identical to [estimate_makespan_seeded]. *)
      let next = Atomic.make 0 in
      let worker () =
        let runner = make_runner ?releases ?availability inst policy in
        let continue = ref true in
        while !continue && Atomic.get failure = None do
          let k = Atomic.fetch_and_add next 1 in
          if k >= trials then continue := false
          else
            try
              if stop () then raise Interrupted;
              on_trial k;
              let rng = Suu_prob.Rng.create (trial_seed seed k) in
              let o = run_trial runner rng ~max_steps in
              (* Truncated trials keep the sentinel; distinct slots, so
                 the concurrent writes never race. *)
              if o.completed then slots.(k) <- Float.of_int o.makespan
            with e ->
              (* First failure wins; the others drain. *)
              ignore (Atomic.compare_and_set failure None (Some e) : bool)
        done
      in
      spawn_and_collect ~executed:(fun () -> trials) worker
  | Some tgt ->
      (* Word-granular self-scheduling: the CI fold consumes whole words
         of trials in index order (under a mutex, as words complete), so
         the stopping boundary is the same one the sequential seeded
         estimator finds — words claimed beyond it are discarded, which
         bounds the overshoot by the domain count. *)
      let nwords = (trials + word - 1) / word in
      let next = Atomic.make 0 in
      let stop_word = Atomic.make max_int in
      let mu = Mutex.create () in
      let word_done = Array.make nwords false in
      let watermark = ref 0 in
      let acc = ci_acc () in
      let fold_done_word w =
        Mutex.lock mu;
        word_done.(w) <- true;
        while
          !watermark < nwords
          && word_done.(!watermark)
          && Atomic.get stop_word = max_int
        do
          let base = !watermark * word in
          let bound = min trials (base + word) in
          for i = base to bound - 1 do
            if slots.(i) <> not_run then ci_add acc slots.(i)
          done;
          incr watermark;
          if bound < trials && ci_reached acc tgt then begin
            Atomic.set stop_word !watermark;
            Counters.incr c_early_stops
          end
        done;
        Mutex.unlock mu
      in
      let worker () =
        let runner = make_runner ?releases ?availability inst policy in
        let continue = ref true in
        while !continue && Atomic.get failure = None do
          let w = Atomic.fetch_and_add next 1 in
          if w >= nwords || w >= Atomic.get stop_word then continue := false
          else
            try
              let base = w * word in
              let bound = min trials (base + word) in
              for k = base to bound - 1 do
                if stop () then raise Interrupted;
                on_trial k;
                let rng = Suu_prob.Rng.create (trial_seed seed k) in
                let o = run_trial runner rng ~max_steps in
                if o.completed then slots.(k) <- Float.of_int o.makespan
              done;
              fold_done_word w
            with e ->
              ignore (Atomic.compare_and_set failure None (Some e) : bool)
        done
      in
      spawn_and_collect
        ~executed:(fun () ->
          let sw = Atomic.get stop_word in
          if sw = max_int then trials else min trials (sw * word))
        worker
