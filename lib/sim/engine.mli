(** Monte-Carlo execution of schedules (the stochastic environment).

    Plays the role of the paper's probabilistic machine model: at every
    step, each machine assigned to an eligible unfinished job completes it
    with probability [p_ij], independently of everything else; a job
    finishes when at least one of its machines succeeds; eligibility
    updates at step boundaries.

    {2 Hot path}

    The estimators reuse one mutable execution arena across all trials of
    an estimate (reset, not reallocated), use an epoch-stamped scratch
    array instead of a per-step hash table, and collect samples into a
    preallocated buffer — the steady-state trial loop does not allocate.
    For policies tagged {!Suu_core.Policy.Oblivious_schedule} the
    estimators skip unit-step simulation entirely and sample completion
    events geometrically ({!Leapfrog}); the resulting makespans are
    distribution-equivalent to the naive stepper's but draw a different
    (much shorter) RNG stream. [run] and [trace] always use the naive
    stepper, and the naive stepper's Bernoulli draw sequence is stable
    across versions, so seeded estimates of non-oblivious policies are
    bit-reproducible.

    {!estimate_makespan} additionally routes policies tagged
    {!Suu_core.Policy.Oblivious_schedule} or
    {!Suu_core.Policy.Greedy_pairs} through the trial-batched
    {!Lanes} kernel — {!Lanes.lanes_per_word} trials per word of
    word-wide bit operations, again distribution-equivalent but on its
    own stream. The {e seeded} estimators never take that path: their
    contract is bit-stability of the per-trial scalar draw sequence.

    {2 Sequential stopping}

    Every estimator accepts [?ci_target] (default: off). When set, the
    estimate stops drawing trials at the first {e word boundary}
    (multiples of {!Lanes.lanes_per_word} trials) where the 95% CI
    half-width of the mean makespan over completed samples is at most
    [ci_target]; the [trials] field of the result reports the executed
    count. Checks happen only at word boundaries for every estimator, so
    scalar and vectorized paths stop at identical trial counts, seeded
    and parallel estimates stay bit-identical to each other, and a range
    estimate stops at boundaries relative to its own [lo].
    @raise Invalid_argument if [ci_target <= 0]. *)

type outcome = {
  makespan : int;  (** steps until the last job completed *)
  completed : bool;  (** [false] iff the [max_steps] cap was hit *)
}

val counters : Suu_obs.Counters.t
(** Process-wide engine telemetry, bumped by every estimator (at trial
    granularity, from any domain): [engine_trials_total],
    [engine_steps_simulated_total] (naive-stepper steps),
    [engine_leapfrog_trials_total] and
    [engine_leapfrog_steps_skipped_total] (steps the geometric sampler
    never had to simulate), [engine_vector_words_total] (trial words the
    vectorized {!Lanes} kernel executed) and [engine_early_stops_total]
    (estimates cut short by a [ci_target]). The serving layer folds
    these into its Prometheus exposition. *)

val default_horizon : Suu_core.Instance.t -> int
(** A safe step cap: generous multiple of [n / p_min · (1 + ln n)], the
    paper's crude TOPT upper bound (§3.2). Executions that exceed it are
    reported as incomplete rather than looping forever. *)

val run :
  ?max_steps:int ->
  ?releases:int array ->
  ?availability:Suu_dyn.Churn.t ->
  Suu_prob.Rng.t ->
  Suu_core.Instance.t ->
  Suu_core.Policy.t ->
  outcome
(** Execute one realisation. [max_steps] defaults to [default_horizon].

    [releases] (one 0-based step per job, default all zero) makes the
    execution an {e online} one, in the spirit of the paper's §5 open
    problem: job [j] only becomes eligible once step [releases.(j)] has
    been reached (in addition to its predecessors being done). Policies
    see release state only through the [eligible] flags, so an adaptive
    policy is automatically an online algorithm. Hostile vectors are
    rejected with {!Releases.Invalid} (typed, like
    {!Suu_core.Instance.Invalid}) at every entry that accepts
    [?releases].

    [availability] (default: everything up) is the machine-churn seam: a
    machine that is down at step [t] per the timeline contributes no
    completion mass that step — its Bernoulli draw is suppressed
    entirely, consuming no randomness, exactly as if the schedule had
    idled it. Policies are churn-oblivious (they may still assign work
    to a down machine; the environment wastes it). The gated stepper on
    a schedule is draw-for-draw identical to the ungated stepper on
    {!Suu_dyn.Churn.mask} of that schedule, which is how the estimators
    below serve oblivious policies under churn at full leapfrog and
    vectorized speed. @raise Invalid_argument when the timeline's
    machine count differs from the instance's. *)

val trace :
  ?max_steps:int ->
  ?releases:int array ->
  ?availability:Suu_dyn.Churn.t ->
  Suu_prob.Rng.t ->
  Suu_core.Instance.t ->
  Suu_core.Policy.t ->
  (int * Suu_core.Assignment.t * int list) list
(** Like [run] but returns the executed history:
    [(step, assignment, jobs completed that step)]. For tests/examples. *)

type estimate = {
  stats : Suu_prob.Stats.summary;  (** over completed trials *)
  trials : int;
      (** trials actually executed — less than requested only when a
          [ci_target] stopped the estimate early *)
  incomplete : int;  (** trials that hit the cap (excluded from stats) *)
  samples : float array;
      (** makespans of the completed trials, in trial order — the k-th
          element is the k-th trial that completed, for every estimator
          (sequential, seeded and parallel alike) *)
}

val estimate_makespan :
  ?max_steps:int ->
  ?releases:int array ->
  ?availability:Suu_dyn.Churn.t ->
  ?ci_target:float ->
  trials:int ->
  Suu_prob.Rng.t ->
  Suu_core.Instance.t ->
  Suu_core.Policy.t ->
  estimate
(** Expected-makespan estimate over (up to) [trials] independent
    executions drawn sequentially from the given generator. Policies
    with vectorizable structure run through the trial-batched {!Lanes}
    kernel, one word seed drawn from the generator per
    {!Lanes.lanes_per_word} trials; the result is then
    distribution-equivalent (not bit-identical) to earlier scalar
    versions of this estimator. *)

exception Interrupted
(** Raised by {!estimate_makespan_seeded}, {!estimate_makespan_range} and
    {!estimate_makespan_parallel} when their [stop] callback fires. *)

val estimate_makespan_range :
  ?max_steps:int ->
  ?releases:int array ->
  ?availability:Suu_dyn.Churn.t ->
  ?ci_target:float ->
  ?stop:(unit -> bool) ->
  ?on_trial:(int -> unit) ->
  seed:int ->
  lo:int ->
  hi:int ->
  Suu_core.Instance.t ->
  Suu_core.Policy.t ->
  estimate
(** The trials [lo <= k < hi] of the seeded estimate with master seed
    [seed] — the unit of work a sharding coordinator fans out. Trial [k]
    draws from the same [(seed, k)]-derived generator as trial [k] of
    {!estimate_makespan_seeded}, so for any partition of [\[0, n)] into
    contiguous ranges, {!merge_ranges} over the per-range estimates (in
    range order) reproduces [estimate_makespan_seeded ~trials:n ~seed]
    bit-for-bit: samples, summary, and incomplete count alike. The
    returned [trials] field is [hi - lo], or the executed prefix length
    when [ci_target] stopped the range early — stopping boundaries count
    from [lo], a deterministic property of the range alone. [stop] and
    [on_trial] have the contract of {!estimate_makespan_seeded}
    ([on_trial] sees absolute indices).
    @raise Invalid_argument unless [0 <= lo < hi]. *)

val merge_ranges : max_steps:int -> estimate list -> estimate
(** Merge per-range estimates of one seeded run, given in range order
    (increasing [lo], ranges contiguous from 0): samples concatenate,
    [trials] and [incomplete] add, and the summary is recomputed over
    the merged sample vector — bit-identical to the single-process
    seeded estimate when the parts partition its trial range and
    [max_steps] matches (it only feeds the all-truncated fallback).
    @raise Invalid_argument on the empty list. *)

val estimate_makespan_seeded :
  ?max_steps:int ->
  ?releases:int array ->
  ?availability:Suu_dyn.Churn.t ->
  ?ci_target:float ->
  ?stop:(unit -> bool) ->
  ?on_trial:(int -> unit) ->
  ?observer:Suu_obs.Exec_trace.observer ->
  trials:int ->
  seed:int ->
  Suu_core.Instance.t ->
  Suu_core.Policy.t ->
  estimate
(** Like {!estimate_makespan} but with {e per-trial} RNG splitting: trial
    [k] draws from a generator derived deterministically from [(seed, k)],
    so the estimate depends only on [(seed, trials)] — not on chunking,
    scheduling, or how many concurrent callers share the process. This is
    the reproducibility discipline of {!estimate_makespan_parallel} pushed
    down to trial granularity; the serving layer uses it so a request's
    answer is identical no matter which worker domain runs it.

    [stop] is polled between trials (default: never stops); when it
    returns [true] the estimate is abandoned and {!Interrupted} is raised
    — the hook for per-request deadline enforcement. A single trial is
    bounded by [max_steps] (default {!default_horizon}), so the poll
    interval is bounded too.

    [on_trial k] (default: nothing) runs just before trial [k], after
    the [stop] poll. It is an observability and fault-injection seam:
    the serving layer's chaos harness uses it to stall a trial (a sleep,
    exercising mid-request deadline enforcement — the next trial's
    [stop] poll sees the expired deadline) or to fail transiently (an
    exception, which propagates to the caller and exercises the retry
    policy). It cannot perturb the estimate itself: trial [k]'s RNG
    stream is derived from [(seed, k)] after the hook returns.

    [observer] (default: none) captures the step-by-step execution —
    per-step machine→job assignments and completions — of the trials its
    [sample_every] selects, emitting one {!Suu_obs.Exec_trace.trial} per
    sampled trial, in trial order. Like [on_trial] it cannot perturb the
    estimate: an observed trial consumes {e exactly} the RNG stream of
    an unobserved one (for the naive stepper the draw loop is identical
    and recording happens after each step; for the leapfrog path the
    history is reconstructed after the fact from the completion arena
    and the schedule, drawing nothing), so seeded estimates are
    bit-identical with the observer on or off. For an oblivious policy
    the recorded assignment at step [t] is the schedule column
    [Oblivious.step sched t] verbatim — the {e decided} assignment,
    completed jobs included — matching what {!trace} records. *)

val estimate_makespan_parallel :
  ?max_steps:int ->
  ?releases:int array ->
  ?availability:Suu_dyn.Churn.t ->
  ?domains:int ->
  ?ci_target:float ->
  ?stop:(unit -> bool) ->
  ?on_trial:(int -> unit) ->
  trials:int ->
  seed:int ->
  Suu_core.Instance.t ->
  Suu_core.Policy.t ->
  estimate
(** Multicore {!estimate_makespan_seeded}: trials are self-scheduled one
    at a time across [domains] OCaml 5 domains (default:
    [Domain.recommended_domain_count], capped at 8) from a shared
    counter, so the domains stay balanced even when trial lengths vary.
    Trial [k] draws from the same [(seed, k)]-derived generator as the
    seeded estimator, so the summary {e and} the sample vector are a pure
    function of [(seed, trials)] — identical at any domain count, and
    identical to [estimate_makespan_seeded ~seed ~trials].

    [stop] and [on_trial] have the same contract as in
    {!estimate_makespan_seeded}, but may be invoked concurrently from any
    worker domain, so they must be domain-safe; the first exception one
    of them (or a trial) raises aborts the remaining trials and is
    re-raised in the calling domain. The policy's [fresh] function is
    called once per trial inside the worker domain; policies must not
    share hidden mutable state across trials (all policies in this
    library satisfy this).

    With a [ci_target], workers self-schedule whole words instead of
    single trials and the CI fold consumes words in index order as they
    complete, so the stopping boundary — and hence the sample vector and
    the [trials] count — is exactly the sequential seeded one at any
    domain count; words already claimed beyond the boundary are
    discarded, bounding the overshoot by the domain count. *)
