(** Trial-batched ("vectorized") Monte-Carlo kernel.

    One native int word carries one completion bit per {e trial lane} for
    each job, so a whole batch of trials advances with word-wide
    AND/OR/popcount instead of per-trial branching. OCaml native ints are
    63-bit and unboxed — hence 63 lanes per word, the price of keeping the
    hot loop allocation-free without flambda.

    Bernoulli draws are {e thresholded lane counters}: a success mask over
    the undecided lanes is built by comparing implicit per-lane 53-bit
    uniforms bit-serially against [ceil(p * 2^53)] — the exact acceptance
    set of the scalar [Rng.float rng < p] — at ~log2(lanes)+2 raw draws
    per mask instead of one uniform per lane. For oblivious schedules the
    kernel processes jobs job-major and switches to per-lane geometric
    skips (the {!Leapfrog} sampler generalised to start mid-schedule) once
    few lanes remain undecided; for greedy pair-scan regimens the MSM-ALG
    scan itself runs word-wide once per step with the draws fused in.

    The kernel draws from a private splitmix stream, so it is
    {e distribution-equivalent} to the scalar engine (pinned by the
    [lanes-*] conformance properties against the exact CDF oracles), not
    stream-equivalent. {!run_word_ref} replays the scalar draw order per
    lane and {e is} bit-identical to seeded scalar trials — the agreement
    test that pins the lane bookkeeping itself. *)

type t
(** A compiled kernel: per-policy plans plus reusable per-word arenas.
    Not thread-safe; create one per domain. *)

val lanes_per_word : int
(** Number of trial lanes per word (63). *)

val create :
  ?releases:int array ->
  ?availability:Suu_dyn.Churn.t ->
  Suu_core.Instance.t ->
  Suu_core.Policy.t ->
  t option
(** [create ?releases ?availability inst policy] compiles a kernel, or
    [None] when the policy carries no vectorizable structure tag
    ({!Suu_core.Policy.oblivious} or {!Suu_core.Policy.greedy}). Raises
    {!Releases.Invalid} on a malformed [releases] vector, like the
    scalar engine. [availability] is the churn seam: oblivious kernels
    compile the {!Suu_dyn.Churn.mask}ed schedule, greedy kernels keep
    the scan intact (the policy is churn-oblivious) but suppress the
    Bernoulli draw of any machine that is down at the current step —
    the gate is uniform across lanes because availability is
    trial-independent. *)

val run_word :
  t -> seed:int -> max_steps:int -> lanes:int -> makespans:int array -> unit
(** [run_word k ~seed ~max_steps ~lanes ~makespans] simulates [lanes]
    independent trials (at most {!lanes_per_word}) and writes each lane's
    makespan into [makespans.(0..lanes-1)]; a lane still running after
    [max_steps] steps is truncated and reported as [-1]. All randomness
    derives from [seed]. *)

val run_word_ref :
  t -> rngs:Suu_prob.Rng.t array -> max_steps:int -> makespans:int array -> unit
(** Scalar-order reference mode, greedy kernels only (raises
    [Invalid_argument] for oblivious ones). Lane [l] draws from
    [rngs.(l)] in exactly the scalar stepper's order — full assignment
    first, then machines in index order — so its outcome is bit-identical
    to a scalar trial run with the same generator. [Array.length rngs]
    gives the lane count. Test harness for the lane bookkeeping; not a
    fast path. *)
