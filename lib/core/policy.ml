type state = {
  step : int;
  unfinished : bool array;
  eligible : bool array;
}

type structure = Oblivious_schedule of Oblivious.t | General

type t = {
  name : string;
  structure : structure;
  fresh : unit -> state -> Assignment.t;
}

let make name fresh = { name; structure = General; fresh }

let of_oblivious name sched =
  {
    name;
    structure = Oblivious_schedule sched;
    fresh = (fun () state -> Oblivious.step sched state.step);
  }

let of_regimen name f =
  { name; structure = General; fresh = (fun () state -> f state.unfinished) }

let stateless name f = { name; structure = General; fresh = (fun () -> f) }

let oblivious t =
  match t.structure with Oblivious_schedule s -> Some s | General -> None
