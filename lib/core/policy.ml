type state = {
  step : int;
  unfinished : bool array;
  eligible : bool array;
}

type greedy = {
  g_probs : float array;
  g_machines : int array;
  g_jobs : int array;
  g_n : int;
  g_m : int;
}

type structure =
  | Oblivious_schedule of Oblivious.t
  | Greedy_pairs of greedy
  | General

type t = {
  name : string;
  structure : structure;
  fresh : unit -> state -> Assignment.t;
}

let make name fresh = { name; structure = General; fresh }

let of_oblivious name sched =
  {
    name;
    structure = Oblivious_schedule sched;
    fresh = (fun () state -> Oblivious.step sched state.step);
  }

(* The mass cap of the greedy scan, shared with the engine's vectorized
   kernel so both execute the identical policy: a machine joins a job
   only while the job's accumulated mass stays within 1 (+ float
   slack). *)
let greedy_mass_cap = 1. +. 1e-12

let of_greedy_pairs name ~n ~m ~probs ~machines ~jobs =
  let k = Array.length probs in
  if Array.length machines <> k || Array.length jobs <> k then
    invalid_arg "Policy.of_greedy_pairs: parallel arrays disagree";
  Array.iter
    (fun j -> if j < 0 || j >= n then invalid_arg "Policy.of_greedy_pairs: job out of range")
    jobs;
  Array.iter
    (fun i -> if i < 0 || i >= m then invalid_arg "Policy.of_greedy_pairs: machine out of range")
    machines;
  let g = { g_probs = probs; g_machines = machines; g_jobs = jobs; g_n = n; g_m = m } in
  {
    name;
    structure = Greedy_pairs g;
    fresh =
      (fun () ->
        (* Scratch per execution, so the per-step scan allocates nothing. *)
        let a = Assignment.idle m in
        let mass = Array.make n 0. in
        fun state ->
          Array.fill a 0 m Assignment.idle_job;
          Array.fill mass 0 n 0.;
          let elig = state.eligible in
          for k = 0 to Array.length probs - 1 do
            let j = jobs.(k) in
            if elig.(j) then begin
              let i = machines.(k) in
              let p = probs.(k) in
              if a.(i) = Assignment.idle_job && mass.(j) +. p <= greedy_mass_cap
              then begin
                a.(i) <- j;
                mass.(j) <- mass.(j) +. p
              end
            end
          done;
          a);
  }

let of_regimen name f =
  { name; structure = General; fresh = (fun () state -> f state.unfinished) }

let stateless name f = { name; structure = General; fresh = (fun () -> f) }

let oblivious t =
  match t.structure with Oblivious_schedule s -> Some s | _ -> None

let greedy t = match t.structure with Greedy_pairs g -> Some g | _ -> None
