type t = {
  nm : int;
  nj : int;
  p : float array array;
  (* Row-major copy of [p]: [pflat.(i * nj + j)] = [p.(i).(j)]. The hot
     paths (simulation stepping, MSM scans) read success probabilities
     through this single unboxed float array instead of chasing the row
     pointer of [p]. *)
  pflat : float array;
  (* The positive-probability pairs, sorted once at construction by
     non-increasing [p_ij] with ties broken by (machine, job) — the
     greedy processing order shared by the whole MSM algorithm family.
     Stored as parallel arrays so a scan touches flat unboxed memory:
     [sorted_p.(k)] is the probability of the [k]-th pair,
     [sorted_machine.(k)] / [sorted_job.(k)] its coordinates. Immutable
     after construction, hence safe to share across domains. *)
  sorted_p : float array;
  sorted_machine : int array;
  sorted_job : int array;
  dag : Suu_dag.Dag.t;
}

let build_sorted_pairs ~m ~n pflat =
  let count = ref 0 in
  Array.iter (fun pij -> if pij > 0. then incr count) pflat;
  let k = !count in
  (* Sort pair indices (i * n + j); the index order is exactly the
     (machine, job) lexicographic tie-break. *)
  let idx = Array.make k 0 in
  let w = ref 0 in
  for flat = 0 to (m * n) - 1 do
    if pflat.(flat) > 0. then begin
      idx.(!w) <- flat;
      incr w
    end
  done;
  Array.sort
    (fun a b ->
      match Float.compare pflat.(b) pflat.(a) with
      | 0 -> compare a b
      | c -> c)
    idx;
  let sorted_p = Array.make k 0. in
  let sorted_machine = Array.make k 0 in
  let sorted_job = Array.make k 0 in
  for q = 0 to k - 1 do
    let flat = idx.(q) in
    sorted_p.(q) <- pflat.(flat);
    sorted_machine.(q) <- flat / n;
    sorted_job.(q) <- flat mod n
  done;
  (sorted_p, sorted_machine, sorted_job)

type error =
  | No_machines
  | Row_length_mismatch of { machine : int; expected : int; got : int }
  | Bad_probability of { machine : int; job : int; value : float }
  | Incapable_job of { job : int }

exception Invalid of error

let error_to_string = function
  | No_machines -> "Instance.create: no machines"
  | Row_length_mismatch { machine; expected; got } ->
      Printf.sprintf
        "Instance.create: machine %d has %d probabilities, expected %d"
        machine got expected
  | Bad_probability { machine; job; value } ->
      Printf.sprintf
        "Instance.create: probability p[%d][%d] = %g outside [0,1]" machine
        job value
  | Incapable_job { job } ->
      Printf.sprintf "Instance.create: job %d has no capable machine" job

let () =
  Printexc.register_printer (function
    | Invalid e -> Some (error_to_string e)
    | _ -> None)

(* First error in machine-major scan order, or [None] when [p] is a valid
   probability matrix for [n] jobs. NaN fails the [0 <= pij <= 1] test on
   its own, but the explicit finiteness check documents that infinities
   and NaN are hostile inputs, not merely out-of-range ones. *)
let validate ~n p =
  let m = Array.length p in
  if m = 0 then Some No_machines
  else begin
    let err = ref None in
    (try
       Array.iteri
         (fun i row ->
           if Array.length row <> n then begin
             err :=
               Some
                 (Row_length_mismatch
                    { machine = i; expected = n; got = Array.length row });
             raise Exit
           end;
           Array.iteri
             (fun j pij ->
               if not (Float.is_finite pij) || pij < 0. || pij > 1. then begin
                 err := Some (Bad_probability { machine = i; job = j; value = pij });
                 raise Exit
               end)
             row)
         p;
       for j = 0 to n - 1 do
         let capable = ref false in
         for i = 0 to m - 1 do
           if p.(i).(j) > 0. then capable := true
         done;
         if not !capable then begin
           err := Some (Incapable_job { job = j });
           raise Exit
         end
       done
     with Exit -> ());
    !err
  end

let create ~p ~dag =
  let n = Suu_dag.Dag.n dag in
  let m = Array.length p in
  (match validate ~n p with Some e -> raise (Invalid e) | None -> ());
  let pflat = Array.make (m * n) 0. in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      pflat.((i * n) + j) <- p.(i).(j)
    done
  done;
  let sorted_p, sorted_machine, sorted_job =
    if n = 0 then ([||], [||], [||]) else build_sorted_pairs ~m ~n pflat
  in
  {
    nm = m;
    nj = n;
    p = Array.map Array.copy p;
    pflat;
    sorted_p;
    sorted_machine;
    sorted_job;
    dag;
  }

let create_checked ~p ~dag =
  match validate ~n:(Suu_dag.Dag.n dag) p with
  | Some e -> Error e
  | None -> Ok (create ~p ~dag)

let independent ~p =
  let n = if Array.length p = 0 then 0 else Array.length p.(0) in
  create ~p ~dag:(Suu_dag.Dag.empty n)

let n t = t.nj
let m t = t.nm
let dag t = t.dag
let prob t ~machine ~job = t.pflat.((machine * t.nj) + job)
let sorted_pairs t = (t.sorted_p, t.sorted_machine, t.sorted_job)
let pair_count t = Array.length t.sorted_p

let probs_for_job t j = Array.init t.nm (fun i -> t.p.(i).(j))

let capable_machines t j =
  let rec collect i acc =
    if i < 0 then acc
    else collect (i - 1) (if t.p.(i).(j) > 0. then i :: acc else acc)
  in
  collect (t.nm - 1) []

let total_rate t j =
  let acc = ref 0. in
  for i = 0 to t.nm - 1 do
    acc := !acc +. t.p.(i).(j)
  done;
  !acc

let best_prob t j =
  let acc = ref 0. in
  for i = 0 to t.nm - 1 do
    if t.p.(i).(j) > !acc then acc := t.p.(i).(j)
  done;
  !acc

let best_machine t j =
  let best = ref 0 in
  for i = 1 to t.nm - 1 do
    if t.p.(i).(j) > t.p.(!best).(j) then best := i
  done;
  !best

let p_min t =
  let acc = ref 1. in
  Array.iter
    (Array.iter (fun pij -> if pij > 0. && pij < !acc then acc := pij))
    t.p;
  !acc

let machine_max_prob t i = Array.fold_left Float.max 0. t.p.(i)

let pp fmt t =
  Format.fprintf fmt "@[<v>instance n=%d m=%d dag=%a" (n t) t.nm
    Suu_dag.Classify.pp
    (Suu_dag.Classify.classify t.dag);
  for i = 0 to t.nm - 1 do
    Format.fprintf fmt "@,machine %d:" i;
    Array.iter (fun pij -> Format.fprintf fmt " %.3f" pij) t.p.(i)
  done;
  Format.fprintf fmt "@]"

let transpose_probs q =
  let nj = Array.length q in
  if nj = 0 then [||]
  else
    let nm = Array.length q.(0) in
    Array.init nm (fun i -> Array.init nj (fun j -> q.(j).(i)))
