(** Adaptive scheduling policies.

    A policy chooses an assignment given the execution state — the general
    notion of schedule from Definition 2.1, restricted (as the paper argues
    is sufficient) to deciders that see the unfinished-job set and the step
    number. Regimens (Definition 2.2) are policies ignoring [step];
    oblivious schedules are policies ignoring [unfinished]. *)

type state = {
  step : int;  (** 0-based index of the step being decided *)
  unfinished : bool array;  (** per job *)
  eligible : bool array;  (** unfinished with all predecessors finished *)
}

(** A greedy pair-scan regimen: machine–job pairs are scanned in the fixed
    order of the parallel arrays, and a pair is taken when the machine is
    still idle, the job is eligible, and the job's accumulated success mass
    stays within {!greedy_mass_cap}. This is exactly MSM-ALG's allocation
    loop, exported structurally so the engine can replay the same scan
    word-wide across trial lanes. *)
type greedy = {
  g_probs : float array;  (** success probability of each pair *)
  g_machines : int array;  (** machine of each pair *)
  g_jobs : int array;  (** job of each pair *)
  g_n : int;  (** number of jobs *)
  g_m : int;  (** number of machines *)
}

(** Structural knowledge about a policy, used by the simulation engine to
    pick specialised execution paths. [Oblivious_schedule] tags a policy
    whose every decision is a fixed function of the step number alone —
    the engine's estimators then skip unit-step Bernoulli simulation in
    favour of geometric leapfrogging over the schedule. [Greedy_pairs]
    tags a greedy pair-scan regimen, the engine's licence for the
    trial-batched vectorized kernel. [General] promises nothing. *)
type structure =
  | Oblivious_schedule of Oblivious.t
  | Greedy_pairs of greedy
  | General

type t = {
  name : string;
  structure : structure;
      (** What the engine may assume about the decisions; constructors
          other than {!of_oblivious} and {!of_greedy_pairs} always say
          [General]. *)
  fresh : unit -> state -> Assignment.t;
      (** [fresh ()] creates a decision function for one execution; any
          internal state (e.g. a cursor into an oblivious schedule) is
          re-created per execution so runs are independent. *)
}

val greedy_mass_cap : float
(** The mass bound of the greedy scan, [1. +. 1e-12] — shared between the
    scalar decision function and the engine's vectorized kernel so both
    execute the identical policy. *)

val make : string -> (unit -> state -> Assignment.t) -> t
(** A general policy from its [fresh] function (structure [General]). *)

val of_oblivious : string -> Oblivious.t -> t
(** The policy that plays an oblivious schedule: machines assigned to
    finished or ineligible jobs idle (Definition 2.1 semantics, enforced by
    the engine anyway). The schedule is recorded in [structure], which
    lets the engine's estimators take the event-driven leapfrog path. *)

val of_greedy_pairs :
  string ->
  n:int ->
  m:int ->
  probs:float array ->
  machines:int array ->
  jobs:int array ->
  t
(** The greedy pair-scan regimen over the given pair arrays (scanned in
    index order). The scalar decision function is bit-identical to
    [Msm.assign_into]'s scan; the structure tag lets the engine's
    estimators take the vectorized trial-lane path. Raises [Invalid_argument]
    if the arrays' lengths disagree or an index is out of range. *)

val of_regimen : string -> (bool array -> Assignment.t) -> t
(** A regimen (Definition 2.2): the assignment depends only on the
    unfinished-job set, which is what the function receives. *)

val stateless : string -> (state -> Assignment.t) -> t
(** A policy computed fresh from the state each step. *)

val oblivious : t -> Oblivious.t option
(** The schedule a policy is known to play obliviously, if any — the
    engine's licence for the leapfrog fast path. *)

val greedy : t -> greedy option
(** The greedy pair-scan a policy is known to play, if any — the engine's
    licence for the vectorized trial-lane fast path. *)
