(** Instance transformations.

    Utilities for deriving instances from instances: sub-instances on a
    job subset (used by the per-block pipeline analysis and the test
    suite), reversal of the precedence DAG, probability scaling, and
    disjoint unions. All return fresh, validated instances. *)

val sub_instance : Instance.t -> jobs:int list -> Instance.t * int array
(** [sub_instance inst ~jobs] keeps only [jobs] (ascending, deduplicated)
    and the precedence edges among them, renumbering jobs densely.
    Returns the new instance and [mapping] with [mapping.(new_id) =
    old_id].
    @raise Invalid_argument on out-of-range jobs. *)

val reverse : Instance.t -> Instance.t
(** Same jobs and probabilities, every precedence edge flipped (an
    out-tree instance becomes an in-tree instance). *)

val scale_probs : Instance.t -> factor:float -> Instance.t
(** Multiply every [p_ij] by [factor], clamping into [\[0, 1\]]. A factor
    below 1 slows every machine down uniformly; TOPT can only grow.
    @raise Instance.Invalid if the scaling leaves some job incapable. *)

val disjoint_union : Instance.t -> Instance.t -> Instance.t
(** Jobs of both instances side by side (second instance's jobs renumbered
    after the first's), no cross edges; both must have the same machine
    count. Machines are shared, so scheduling the union is genuinely
    harder than either part. *)
