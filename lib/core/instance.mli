(** SUU problem instances (paper §2.1).

    An instance bundles [n] unit-step jobs, [m] machines, the success
    probabilities [p_ij] (probability that one step of machine [i] on job
    [j] completes it), and a precedence DAG. Construction validates that
    probabilities lie in [\[0,1\]] and that every job has at least one
    machine with positive success probability — the paper's standing
    assumption, without which the expected makespan is infinite. *)

type t

(** Why construction was rejected. The hostile cases carry the offending
    coordinates so callers (the serving layer, the conformance checker)
    can report — or programmatically handle — exactly what was wrong
    instead of pattern-matching on an exception message. *)
type error =
  | No_machines  (** [p] has no rows *)
  | Row_length_mismatch of { machine : int; expected : int; got : int }
      (** a row of [p] does not have one entry per job *)
  | Bad_probability of { machine : int; job : int; value : float }
      (** [p.(machine).(job)] is NaN, infinite, or outside [\[0,1\]] *)
  | Incapable_job of { job : int }
      (** no machine has positive success probability on [job], so every
          execution would run forever *)

exception Invalid of error
(** Raised by {!create} and {!independent}. A printer is registered, so an
    uncaught [Invalid] still renders {!error_to_string}'s message. *)

val error_to_string : error -> string
(** Human-readable one-line description, e.g.
    ["Instance.create: probability p[1][2] = nan outside [0,1]"]. *)

val create_checked :
  p:float array array -> dag:Suu_dag.Dag.t -> (t, error) result
(** Non-raising {!create}: validation as data. The first error in
    machine-major scan order is reported. *)

val create : p:float array array -> dag:Suu_dag.Dag.t -> t
(** [create ~p ~dag] with [p.(i).(j)] the success probability of machine
    [i] on job [j]; the number of jobs is [Dag.n dag] and the number of
    machines is [Array.length p].
    @raise Invalid on an empty [p], dimension mismatch, probabilities that
    are NaN, infinite or outside [\[0,1\]], or a job with no capable
    machine. *)

val independent : p:float array array -> t
(** [create] with an edgeless DAG.
    @raise Invalid as {!create}. *)

val n : t -> int
(** Number of jobs. *)

val m : t -> int
(** Number of machines. *)

val dag : t -> Suu_dag.Dag.t

val prob : t -> machine:int -> job:int -> float
(** [p_ij]. One load from a row-major flat matrix — cheap enough for the
    simulation inner loop. *)

val sorted_pairs : t -> float array * int array * int array
(** [(probs, machines, jobs)]: the positive-probability pairs in the MSM
    greedy processing order — non-increasing [p_ij], ties by machine then
    job — as parallel arrays ([probs.(k)] is the probability of pair [k],
    assigned to machine [machines.(k)] and job [jobs.(k)]). Computed once
    at construction and cached, so per-step MSM decisions scan it in
    O(nm) instead of rebuilding and re-sorting the pair list. The arrays
    are shared; callers must not mutate them. *)

val pair_count : t -> int
(** Number of positive-probability pairs ([Array.length] of each
    {!sorted_pairs} component). *)

val probs_for_job : t -> int -> float array
(** Column of [p] for a job: index by machine. *)

val capable_machines : t -> int -> int list
(** Machines [i] with [p_ij > 0], ascending. *)

val total_rate : t -> int -> float
(** [Σ_i p_ij] for a job — the highest mass it can accumulate per step. *)

val best_prob : t -> int -> float
(** [max_i p_ij] for a job. *)

val best_machine : t -> int -> int
(** A machine attaining [best_prob] (smallest index among ties). *)

val p_min : t -> float
(** Minimum positive [p_ij] over the whole instance (the paper's [p_min],
    used to bound TOPT). *)

val machine_max_prob : t -> int -> float
(** [max_j p_ij] for a machine — its best per-step contribution. *)

val pp : Format.formatter -> t -> unit

val transpose_probs : float array array -> float array array
(** Convenience for building instances from job-major matrices:
    [transpose_probs q] with [q.(j).(i)] gives [p.(i).(j)]. *)
