type site =
  | Crash
  | Transient
  | Stall
  | Slow
  | Truncate
  | Queue_delay
  | Kill
  | Refuse
  | Tear
  | Sock_stall

type spec = {
  seed : int;
  crash : float;
  transient : float;
  stall : float;
  stall_ms : float;
  slow : float;
  slow_ms : float;
  truncate : float;
  queue_delay : float;
  queue_ms : float;
  kill : float;
  refuse : float;
  tear : float;
  sock_stall : float;
  sock_stall_ms : float;
}

let none =
  {
    seed = 1;
    crash = 0.;
    transient = 0.;
    stall = 0.;
    stall_ms = 10.;
    slow = 0.;
    slow_ms = 5.;
    truncate = 0.;
    queue_delay = 0.;
    queue_ms = 2.;
    kill = 0.;
    refuse = 0.;
    tear = 0.;
    sock_stall = 0.;
    sock_stall_ms = 20.;
  }

let is_none s =
  s.crash = 0. && s.transient = 0. && s.stall = 0. && s.slow = 0.
  && s.truncate = 0. && s.queue_delay = 0. && s.kill = 0. && s.refuse = 0.
  && s.tear = 0. && s.sock_stall = 0.

exception Injected_crash
exception Transient_failure of string

(* Injected exceptions end up in wire-visible error messages; keep them
   readable rather than module-qualified constructor dumps. *)
let () =
  Printexc.register_printer (function
    | Injected_crash -> Some "injected crash"
    | Transient_failure msg -> Some ("transient failure: " ^ msg)
    | _ -> None)

(* --- deterministic decisions ---

   splitmix64's finalizer: full 64-bit avalanche, so consecutive keys
   (request sequence numbers, line numbers) draw independent-looking
   faults from any seed. *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let site_salt = function
  | Crash -> 0x1
  | Transient -> 0x2
  | Stall -> 0x3
  | Slow -> 0x4
  | Truncate -> 0x5
  | Queue_delay -> 0x6
  | Kill -> 0x8
  | Refuse -> 0x9
  | Tear -> 0xA
  | Sock_stall -> 0xB

(* Uniform in [0,1): top 53 bits of a double avalanche over
   (seed, site, key). *)
let unit_float seed salt key =
  let h =
    mix64
      (Int64.logxor
         (mix64 (Int64.of_int ((seed * 0x2545F491) + salt)))
         (Int64.of_int key))
  in
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

let rate spec = function
  | Crash -> spec.crash
  | Transient -> spec.transient
  | Stall -> spec.stall
  | Slow -> spec.slow
  | Truncate -> spec.truncate
  | Queue_delay -> spec.queue_delay
  | Kill -> spec.kill
  | Refuse -> spec.refuse
  | Tear -> spec.tear
  | Sock_stall -> spec.sock_stall

let fires spec site ~key =
  let r = rate spec site in
  r > 0. && unit_float spec.seed (site_salt site) key < r

let attempt_key ~seq ~attempt = (seq * 0x3D) + attempt
let jitter spec ~key = unit_float spec.seed 0x7ea1 key

(* --- spec strings --- *)

let of_string ?(default_seed = 1) text =
  let parse_field acc kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "fault-spec: expected key=value in %S" kv)
    | Some i -> (
        let k = String.trim (String.sub kv 0 i) in
        let v = String.trim (String.sub kv (i + 1) (String.length kv - i - 1)) in
        let num () =
          match float_of_string_opt v with
          | Some f -> Ok f
          | None -> Error (Printf.sprintf "fault-spec: %s: bad number %S" k v)
        in
        let prob () =
          Result.bind (num ()) (fun f ->
              if f < 0. || f > 1. then
                Error (Printf.sprintf "fault-spec: %s: rate %g not in [0,1]" k f)
              else Ok f)
        in
        let dur () =
          Result.bind (num ()) (fun f ->
              if f < 0. then
                Error (Printf.sprintf "fault-spec: %s: negative duration" k)
              else Ok f)
        in
        Result.bind acc (fun s ->
            match k with
            | "seed" -> (
                match int_of_string_opt v with
                | Some seed -> Ok { s with seed }
                | None ->
                    Error (Printf.sprintf "fault-spec: seed: bad integer %S" v))
            | "crash" -> Result.map (fun crash -> { s with crash }) (prob ())
            | "transient" ->
                Result.map (fun transient -> { s with transient }) (prob ())
            | "stall" -> Result.map (fun stall -> { s with stall }) (prob ())
            | "stall_ms" ->
                Result.map (fun stall_ms -> { s with stall_ms }) (dur ())
            | "slow" -> Result.map (fun slow -> { s with slow }) (prob ())
            | "slow_ms" ->
                Result.map (fun slow_ms -> { s with slow_ms }) (dur ())
            | "truncate" ->
                Result.map (fun truncate -> { s with truncate }) (prob ())
            | "queue_delay" ->
                Result.map
                  (fun queue_delay -> { s with queue_delay })
                  (prob ())
            | "queue_ms" ->
                Result.map (fun queue_ms -> { s with queue_ms }) (dur ())
            | "kill" -> Result.map (fun kill -> { s with kill }) (prob ())
            | "refuse" -> Result.map (fun refuse -> { s with refuse }) (prob ())
            | "tear" -> Result.map (fun tear -> { s with tear }) (prob ())
            | "sock_stall" ->
                Result.map (fun sock_stall -> { s with sock_stall }) (prob ())
            | "sock_stall_ms" ->
                Result.map (fun sock_stall_ms -> { s with sock_stall_ms }) (dur ())
            | _ -> Error (Printf.sprintf "fault-spec: unknown key %S" k)))
  in
  let fields =
    String.split_on_char ',' text
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  List.fold_left parse_field (Ok { none with seed = default_seed }) fields

let to_string s =
  let b = Buffer.create 64 in
  let add k v =
    if Buffer.length b > 0 then Buffer.add_char b ',';
    Buffer.add_string b k;
    Buffer.add_char b '=';
    Buffer.add_string b v
  in
  add "seed" (string_of_int s.seed);
  let rate k v = if v > 0. then add k (Printf.sprintf "%g" v) in
  let dur k v = add k (Printf.sprintf "%g" v) in
  rate "crash" s.crash;
  rate "transient" s.transient;
  rate "stall" s.stall;
  if s.stall > 0. then dur "stall_ms" s.stall_ms;
  rate "slow" s.slow;
  if s.slow > 0. then dur "slow_ms" s.slow_ms;
  rate "truncate" s.truncate;
  rate "queue_delay" s.queue_delay;
  if s.queue_delay > 0. then dur "queue_ms" s.queue_ms;
  rate "kill" s.kill;
  rate "refuse" s.refuse;
  rate "tear" s.tear;
  rate "sock_stall" s.sock_stall;
  if s.sock_stall > 0. then dur "sock_stall_ms" s.sock_stall_ms;
  Buffer.contents b
