(* Hashtbl + doubly-linked recency list; the list head is most recent.
   All mutation happens under [lock]. *)

type 'v node = {
  key : string;
  mutable value : 'v;
  mutable prev : 'v node option;  (* towards the head (more recent) *)
  mutable next : 'v node option;  (* towards the tail (less recent) *)
}

type 'v t = {
  cap : int;
  table : (string, 'v node) Hashtbl.t;
  mutable head : 'v node option;
  mutable tail : 'v node option;
  mutable hits : int;
  mutable misses : int;
  lock : Mutex.t;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Cache.create: capacity < 0";
  {
    cap = capacity;
    table = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    lock = Mutex.create ();
  }

let with_lock c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let unlink c node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> c.head <- node.next);
  (match node.next with
  | Some nx -> nx.prev <- node.prev
  | None -> c.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front c node =
  node.next <- c.head;
  node.prev <- None;
  (match c.head with Some h -> h.prev <- Some node | None -> ());
  c.head <- Some node;
  if c.tail = None then c.tail <- Some node

let find c key =
  with_lock c (fun () ->
      match Hashtbl.find_opt c.table key with
      | Some node ->
          c.hits <- c.hits + 1;
          unlink c node;
          push_front c node;
          Some node.value
      | None ->
          c.misses <- c.misses + 1;
          None)

let add c key value =
  if c.cap > 0 then
    with_lock c (fun () ->
        (match Hashtbl.find_opt c.table key with
        | Some node ->
            node.value <- value;
            unlink c node;
            push_front c node
        | None ->
            if Hashtbl.length c.table >= c.cap then (
              match c.tail with
              | Some lru ->
                  unlink c lru;
                  Hashtbl.remove c.table lru.key
              | None -> ());
            let node = { key; value; prev = None; next = None } in
            Hashtbl.replace c.table key node;
            push_front c node);
        ())

let length c = with_lock c (fun () -> Hashtbl.length c.table)
let capacity c = c.cap
let hits c = with_lock c (fun () -> c.hits)
let misses c = with_lock c (fun () -> c.misses)
