module Engine = Suu_sim.Engine
module Instance = Suu_core.Instance
module Policy = Suu_core.Policy
module Stats = Suu_prob.Stats
module Trace = Suu_obs.Trace
module Prom = Suu_obs.Prom

type config = {
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  default_trials : int;
  default_seed : int;
  default_deadline_ms : float option;
  max_restarts : int;
  retries : int;
  retry_backoff_ms : float;
  degrade_watermark : int option;
  degrade_trials : int;
  estimate_domains : int;
  default_ci_target : float option;
  fault : Fault.spec;
  tracer : Trace.t;
}

let default_config =
  {
    workers = max 1 (min 8 (Domain.recommended_domain_count () - 1));
    queue_capacity = 64;
    cache_capacity = 128;
    default_trials = 200;
    default_seed = 1;
    default_deadline_ms = None;
    max_restarts = 8;
    retries = 2;
    retry_backoff_ms = 1.;
    degrade_watermark = None;
    degrade_trials = 25;
    estimate_domains = 1;
    default_ci_target = None;
    fault = Fault.none;
    tracer = Trace.disabled;
  }

(* Backoff for attempt [k] is [retry_backoff_ms * 2^k], capped here so a
   deep retry chain cannot hold a worker for seconds. *)
let backoff_cap_ms = 50.

type report = {
  metrics : Metrics.snapshot;
  cache_hits : int;
  cache_misses : int;
  cache_size : int;
  queue_hwm : int;
}

let report_to_string r =
  let m = r.metrics in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "served %d requests (ok %d, errors %d, timeouts %d, rejected %d)\n"
       m.Metrics.requests m.Metrics.ok m.Metrics.errors m.Metrics.timeouts
       m.Metrics.rejected);
  Buffer.add_string buf
    (Printf.sprintf "cache: %d hits, %d misses, %d entries\n" r.cache_hits
       r.cache_misses r.cache_size);
  Buffer.add_string buf
    (Printf.sprintf "queue depth high-water mark: %d\n" r.queue_hwm);
  (* The fault line only appears once something went wrong (or chaos was
     injected), so healthy shutdown dumps stay three lines. *)
  if
    m.Metrics.worker_crashes > 0
    || m.Metrics.restarts > 0
    || m.Metrics.retries > 0
    || m.Metrics.degraded > 0
  then
    Buffer.add_string buf
      (Printf.sprintf
         "faults: %d worker crashes, %d restarts, %d retries, %d degraded\n"
         m.Metrics.worker_crashes m.Metrics.restarts m.Metrics.retries
         m.Metrics.degraded);
  (match m.Metrics.latency with
  | None -> ()
  | Some l ->
      Buffer.add_string buf
        (Printf.sprintf
           "latency ms: min %.2f mean %.2f p50 %.2f p95 %.2f p99 %.2f max \
            %.2f\n"
           l.Metrics.min_ms l.Metrics.mean_ms l.Metrics.p50_ms
           l.Metrics.p95_ms l.Metrics.p99_ms l.Metrics.max_ms));
  Buffer.contents buf

(* Prometheus text exposition of a report: service counters, pool and
   cache gauges, the full latency histogram, and the engine's
   process-wide counters — one scrape unifies all three layers. *)
let report_to_prom ?workers r =
  let m = r.metrics in
  let c name help v = Prom.counter ~name ~help (float_of_int v) in
  let g name help v = Prom.gauge ~name ~help (float_of_int v) in
  [
    c "suu_requests_total"
      "Completed requests (ok + errors + timeouts + rejected)."
      m.Metrics.requests;
    c "suu_requests_ok_total" "Requests answered ok." m.Metrics.ok;
    c "suu_requests_error_total" "Requests answered with an error."
      m.Metrics.errors;
    c "suu_requests_timeout_total" "Requests that exceeded their deadline."
      m.Metrics.timeouts;
    c "suu_requests_rejected_total" "Requests shed at admission (queue full)."
      m.Metrics.rejected;
    c "suu_stats_requests_total" "Stats requests (counted apart)."
      m.Metrics.stats_requests;
    c "suu_worker_crashes_total" "Worker domains that died mid-request."
      m.Metrics.worker_crashes;
    c "suu_worker_restarts_total" "Replacement worker domains spawned."
      m.Metrics.restarts;
    c "suu_retries_total" "Transient-failure retries." m.Metrics.retries;
    c "suu_degraded_total" "Requests admitted with a degraded trial count."
      m.Metrics.degraded;
    c "suu_cache_hits_total" "Result-cache hits." r.cache_hits;
    c "suu_cache_misses_total" "Result-cache misses." r.cache_misses;
    g "suu_cache_entries" "Result-cache entries currently held." r.cache_size;
    g "suu_queue_high_water_mark" "Deepest the request queue has been."
      r.queue_hwm;
  ]
  @ (match workers with
    | None -> []
    | Some w -> [ g "suu_workers" "Configured worker domains." w ])
  @ (match m.Metrics.latency_hist with
    | None -> []
    | Some h ->
        [
          Prom.histogram ~name:"suu_request_latency_ms"
            ~help:
              "Ok-response latency, admission to emission, milliseconds."
            h;
        ])
  @ List.map
      (fun (name, v) ->
        c ("suu_" ^ name) "Engine counter (process-wide, all callers)." v)
      (Suu_obs.Counters.snapshot Engine.counters)
  |> Prom.render

module type TRANSPORT = sig
  val recv : unit -> string option
  val send : string -> unit
end

let stdio () : (module TRANSPORT) =
  (module struct
    let recv () = In_channel.input_line In_channel.stdin

    let send line =
      print_string line;
      print_newline ();
      flush stdout
  end)

(* Chaos at the transport seam: slow delivery and torn (truncated)
   lines, keyed by line number so a given workload is corrupted the
   same way on every run. [recv] is reader-domain-only, so the line
   counter needs no lock. *)
let wrap_transport fault (module T : TRANSPORT) : (module TRANSPORT) =
  if fault.Fault.slow = 0. && fault.Fault.truncate = 0. then (module T)
  else
    (module struct
      let lines = ref 0

      let recv () =
        match T.recv () with
        | None -> None
        | Some line ->
            let k = !lines in
            incr lines;
            if Fault.fires fault Fault.Slow ~key:k then
              Unix.sleepf (fault.Fault.slow_ms /. 1000.);
            if
              Fault.fires fault Fault.Truncate ~key:k
              && String.length line > 1
            then Some (String.sub line 0 (String.length line / 2))
            else Some line

      let send = T.send
    end)

(* --- ordered response emission ---

   Workers finish out of order; responses must not. Each admitted line
   gets a sequence number and finished responses park in [pending] until
   every earlier response has been sent. Parked responses are thunks so
   a response can be rendered at the moment it is next in line — the
   stats request uses this to snapshot counters consistent with the
   emitted stream. *)

type emitter = {
  elock : Mutex.t;
  pending : (int, unit -> string) Hashtbl.t;
  mutable next_seq : int;
  send_line : string -> unit;
}

let emitter_create send_line =
  {
    elock = Mutex.create ();
    pending = Hashtbl.create 16;
    next_seq = 0;
    send_line;
  }

let emit_lazy em seq make_line =
  Mutex.lock em.elock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock em.elock)
    (fun () ->
      (* A sequence number already emitted is a stale duplicate (a
         worker crashed after its response left): drop it rather than
         park it forever. *)
      if seq >= em.next_seq then begin
        Hashtbl.replace em.pending seq make_line;
        let rec flush () =
          match Hashtbl.find_opt em.pending em.next_seq with
          | Some make ->
              Hashtbl.remove em.pending em.next_seq;
              em.send_line (make ());
              em.next_seq <- em.next_seq + 1;
              flush ()
          | None -> ()
        in
        flush ()
      end)

let emit em seq line = emit_lazy em seq (fun () -> line)

(* --- request execution --- *)

exception Failed of string

let failed fmt = Printf.ksprintf (fun msg -> raise (Failed msg)) fmt

(* Monotonic: deadlines and latencies must not move with the civil
   clock (NTP steps, manual adjustment). *)
let now_ms = Clock.now_ms

(* [domains = 1] runs the trials inline in the worker; more than one
   fans each estimate out over nested domains. Either way the per-trial
   RNG derivation makes the answer — summary and sample order alike — a
   pure function of the request, so changing [domains] never changes a
   cached or recomputed response. *)
let estimate_fields ~domains ~policy ~trials ~seed ~range ~ci_target ~releases
    ~churn ~stop ~on_trial instance =
  (* The wire carries the churn spec, not the timeline: regenerate it
     here against this instance's machine count, deterministically, so
     every worker (and every sub-job of a coordinator split) simulates
     the identical environment. *)
  let availability =
    Option.map
      (fun p -> Suu_dyn.Churn.generate ~m:(Instance.m instance) p)
      churn
  in
  match range with
  | Some (lo, hi) ->
      (* A trial-range sub-job answers raw material, not a summary: the
         coordinator concatenates the per-range samples (integral
         floats, so they cross the JSON wire bit-exactly) and recomputes
         the summary over the merged vector — identical to a
         single-process run of the full request. ["trials"] reports the
         executed count, which a [ci_target] can cut below [hi - lo]. *)
      let e =
        Engine.estimate_makespan_range ?releases ?availability ?ci_target
          ~stop ~on_trial ~seed ~lo ~hi instance policy
      in
      [
        ("algo", Json.Str policy.Policy.name);
        ("partial", Json.Bool true);
        ("lo", Json.int lo);
        ("hi", Json.int hi);
        ("trials", Json.int e.Engine.trials);
        ("incomplete", Json.int e.Engine.incomplete);
        ( "samples",
          Json.List
            (Array.to_list (Array.map (fun s -> Json.Num s) e.Engine.samples))
        );
      ]
  | None ->
      let e =
        if domains <= 1 then
          Engine.estimate_makespan_seeded ?releases ?availability ?ci_target
            ~stop ~on_trial ~trials ~seed instance policy
        else
          Engine.estimate_makespan_parallel ?releases ?availability ~domains
            ?ci_target ~stop ~on_trial ~trials ~seed instance policy
      in
      let p95 =
        if Array.length e.Engine.samples = 0 then 0.
        else Stats.quantile e.Engine.samples 0.95
      in
      [
        ("algo", Json.Str policy.Policy.name);
        ("trials", Json.int e.Engine.trials);
        ("mean", Json.Num e.Engine.stats.Stats.mean);
        ("ci95", Json.Num e.Engine.stats.Stats.ci95);
        ("p95", Json.Num p95);
        ("incomplete", Json.int e.Engine.incomplete);
      ]

let info_fields instance =
  let dag = Instance.dag instance in
  (* LP-free bounds keep [info] cheap enough for the serving path. *)
  let bounds = Suu_algo.Bounds.compute ~with_lp:false instance in
  [
    ( "class",
      Json.Str (Suu_dag.Classify.to_string (Suu_dag.Classify.classify dag)) );
    ("jobs", Json.int (Instance.n instance));
    ("machines", Json.int (Instance.m instance));
    ("edges", Json.int (Suu_dag.Dag.edge_count dag));
    ("width", Json.int (Suu_dag.Dag.width dag));
    ("critical_path", Json.int (Suu_dag.Dag.longest_path dag));
    ( "bounds",
      Json.Obj
        [
          ("rate", Json.Num bounds.Suu_algo.Bounds.rate);
          ("capacity", Json.Num bounds.Suu_algo.Bounds.capacity);
          ("critical_path", Json.Num bounds.Suu_algo.Bounds.critical_path);
          ("best", Json.Num (Suu_algo.Bounds.best bounds));
        ] );
  ]

let execute op ~domains ~stop ~on_trial =
  match op with
  | Request.Solve
      { algo; trials; seed; range; ci_target; releases; churn; instance } ->
      (* [auto] is the practical default (the adaptive greedy policy);
         the paper's guaranteed oblivious column is an explicit opt-in.
         [canonical_algo] is also what the cache key is built from, so a
         key can never alias two different computations. *)
      let kind = Request.canonical_algo algo in
      let policy =
        try Suu_algo.Solver.solve ~kind instance
        with Suu_algo.Solver.Unsupported msg -> failed "unsupported: %s" msg
      in
      estimate_fields ~domains ~policy ~trials ~seed ~range ~ci_target
        ~releases ~churn ~stop ~on_trial instance
  | Request.Estimate
      { plan; trials; seed; range; ci_target; releases; churn; instance; _ }
    ->
      estimate_fields ~domains
        ~policy:(Policy.of_oblivious "plan" plan)
        ~trials ~seed ~range ~ci_target ~releases ~churn ~stop ~on_trial
        instance
  | Request.Ping -> [ ("pong", Json.Bool true) ]
  | Request.Info instance -> info_fields instance
  | Request.Exact instance -> (
      match Suu_algo.Malewicz.optimal instance with
      | r ->
          [
            ("topt", Json.Num r.Suu_algo.Malewicz.value);
            ("states", Json.int r.Suu_algo.Malewicz.states);
          ]
      | exception Suu_algo.Malewicz.Too_expensive msg ->
          failed "exact: too expensive: %s" msg)
  | Request.Stats _ -> assert false (* handled without execution *)

(* --- the service --- *)

type job = {
  seq : int;
  admitted_at : float;
  degraded : bool;
  req : Request.t;
}

let report_of ~metrics ~cache ~queue =
  {
    metrics = Metrics.snapshot metrics;
    cache_hits = Cache.hits cache;
    cache_misses = Cache.misses cache;
    cache_size = Cache.length cache;
    queue_hwm = Work_queue.high_water_mark queue;
  }

let stats_fields r =
  let m = r.metrics in
  let base =
    [
      ("requests", Json.int m.Metrics.requests);
      ("ok", Json.int m.Metrics.ok);
      ("errors", Json.int m.Metrics.errors);
      ("timeouts", Json.int m.Metrics.timeouts);
      ("rejected", Json.int m.Metrics.rejected);
      ("worker_crashes", Json.int m.Metrics.worker_crashes);
      ("restarts", Json.int m.Metrics.restarts);
      ("retries", Json.int m.Metrics.retries);
      ("degraded", Json.int m.Metrics.degraded);
      ("cache_hits", Json.int r.cache_hits);
      ("cache_misses", Json.int r.cache_misses);
      ("cache_size", Json.int r.cache_size);
      ("queue_hwm", Json.int r.queue_hwm);
    ]
  in
  match m.Metrics.latency with
  | None -> base
  | Some l ->
      base
      @ [
          ( "latency_ms",
            Json.Obj
              [
                ("min", Json.Num l.Metrics.min_ms);
                ("mean", Json.Num l.Metrics.mean_ms);
                ("p50", Json.Num l.Metrics.p50_ms);
                ("p95", Json.Num l.Metrics.p95_ms);
                ("p99", Json.Num l.Metrics.p99_ms);
                ("max", Json.Num l.Metrics.max_ms);
              ] );
        ]

(* Wire form of a histogram snapshot, for the coordinator's cross-shard
   merge: layout parameters plus the occupied buckets as [k, count]
   pairs. Bucket counts are exact; [sum]/[min]/[max] round-trip through
   the float codec (12 significant digits — telemetry precision). *)
let hist_json h =
  let s = Suu_obs.Histogram.export h in
  Json.Obj
    [
      ("lo", Json.Num s.Suu_obs.Histogram.layout_lo);
      ("growth", Json.Num s.Suu_obs.Histogram.layout_growth);
      ("buckets", Json.int s.Suu_obs.Histogram.layout_buckets);
      ( "counts",
        Json.List
          (List.map
             (fun (k, c) -> Json.List [ Json.int k; Json.int c ])
             s.Suu_obs.Histogram.occupied) );
      ("sum", Json.Num s.Suu_obs.Histogram.total_sum);
      ("min", Json.Num s.Suu_obs.Histogram.observed_min);
      ("max", Json.Num s.Suu_obs.Histogram.observed_max);
    ]

let engine_counters_json () =
  Json.Obj
    (List.map
       (fun (name, v) -> (name, Json.int v))
       (Suu_obs.Counters.snapshot Engine.counters))

(* Degraded admission runs Monte-Carlo ops at a reduced trial count. The
   op is rewritten *before* the cache key is computed, so a degraded
   result is cached under the trial count actually executed and can
   never alias a full-fidelity entry. *)
let degrade_op cfg op =
  (* Ranged sub-jobs are never degraded: changing [trials] would move
     the range's meaning and break the coordinator's bit-exact merge.
     Overload control belongs to the coordinator for those. *)
  match op with
  | Request.Solve ({ range = None; _ } as r) when r.trials > cfg.degrade_trials
    ->
      Request.Solve { r with trials = cfg.degrade_trials }
  | Request.Estimate ({ range = None; _ } as r)
    when r.trials > cfg.degrade_trials ->
      Request.Estimate { r with trials = cfg.degrade_trials }
  | op -> op

(* Capped exponential backoff with deterministic jitter (from the fault
   spec's seed, so chaos runs are reproducible end to end). *)
let backoff_s cfg ~seq ~attempt =
  let raw = cfg.retry_backoff_ms *. (2. ** float_of_int attempt) in
  let jitter = Fault.jitter cfg.fault ~key:(Fault.attempt_key ~seq ~attempt) in
  Float.min raw backoff_cap_ms *. (0.5 +. (0.5 *. jitter)) /. 1000.

let handle_job cfg ~metrics ~cache ~queue ~em job =
  let { seq; admitted_at; degraded; req } = job in
  let id = req.Request.id in
  let deadline_ms =
    match req.Request.deadline_ms with
    | Some _ as d -> d
    | None -> cfg.default_deadline_ms
  in
  let expired () =
    match deadline_ms with
    | None -> false
    | Some d -> now_ms () -. admitted_at >= d
  in
  let finish_ok ~retries fields =
    let fields =
      if retries > 0 then ("retries", Json.int retries) :: fields else fields
    in
    let fields =
      if degraded then ("degraded", Json.Bool true) :: fields else fields
    in
    Metrics.record_ok metrics ~latency_ms:(now_ms () -. admitted_at);
    emit em seq (Request.ok ~id fields)
  in
  let finish_error ?reason msg =
    Metrics.record_error metrics;
    emit em seq (Request.error ~id ?reason msg)
  in
  let finish_timeout () =
    Metrics.record_timeout metrics;
    emit em seq
      (Request.timeout ~id
         ~deadline_ms:(Option.value deadline_ms ~default:0.))
  in
  match req.Request.op with
  | Request.Stats { format } ->
      (* Counted apart so a stats response describes the workload without
         counting itself; never subject to deadlines. The snapshot is
         deferred until this response is next in line to be emitted, so
         its counts include every response that appears above it in the
         stream (responses record their metrics before they emit). *)
      Metrics.record_stats_request metrics;
      emit_lazy em seq (fun () ->
          let r = report_of ~metrics ~cache ~queue in
          match format with
          | `Json -> Request.ok ~id (stats_fields r)
          | `Prom ->
              Request.ok ~id
                [
                  ("format", Json.Str "prom");
                  ("prom", Json.Str (report_to_prom ~workers:cfg.workers r));
                ]
          | `Raw ->
              (* The mergeable form: structured counters plus the raw
                 latency histogram and engine counters, which is what
                 the coordinator pulls from each shard. *)
              let hist =
                match r.metrics.Metrics.latency_hist with
                | None -> []
                | Some h -> [ ("latency_hist", hist_json h) ]
              in
              Request.ok ~id
                (stats_fields r
                @ hist
                @ [
                    ("workers", Json.int cfg.workers);
                    ("engine", engine_counters_json ());
                  ]))
  | _ ->
      if expired () then finish_timeout ()
      else begin
        let req =
          if degraded then { req with Request.op = degrade_op cfg req.op }
          else req
        in
        let op = req.Request.op in
        let span_attrs =
          (* Computed only when the tracer is on: attribute rendering
             must not tax the untraced hot path. *)
          if Trace.enabled cfg.tracer then
            [
              ("seq", string_of_int seq);
              ("id", Option.value id ~default:"");
              ("op", Request.op_kind op);
            ]
          else []
        in
        Trace.with_span cfg.tracer ~cat:"service" ~attrs:span_attrs "request"
        @@ fun () ->
        let key = Request.cache_key req in
        match Option.bind key (Cache.find cache) with
        | Some fields ->
            finish_ok ~retries:0 (("cached", Json.Bool true) :: fields)
        | None ->
            let on_trial k =
              if k = 0 && Fault.fires cfg.fault Fault.Stall ~key:seq then
                Unix.sleepf (cfg.fault.Fault.stall_ms /. 1000.)
            in
            let rec attempt k =
              match
                if
                  Fault.fires cfg.fault Fault.Transient
                    ~key:(Fault.attempt_key ~seq ~attempt:k)
                then raise (Fault.Transient_failure "injected");
                Trace.with_span cfg.tracer ~cat:"service"
                  ~attrs:
                    (if Trace.enabled cfg.tracer then
                       [ ("attempt", string_of_int k) ]
                     else [])
                  "execute"
                  (fun () ->
                    execute op ~domains:cfg.estimate_domains ~stop:expired
                      ~on_trial)
              with
              | fields ->
                  Option.iter (fun cache_k -> Cache.add cache cache_k fields) key;
                  let fields =
                    if key <> None then ("cached", Json.Bool false) :: fields
                    else fields
                  in
                  finish_ok ~retries:k fields
              | exception Engine.Interrupted -> finish_timeout ()
              | exception Failed msg -> finish_error msg
              | exception Fault.Transient_failure why ->
                  if k < cfg.retries && not (expired ()) then begin
                    Metrics.record_retry metrics;
                    Unix.sleepf (backoff_s cfg ~seq ~attempt:k);
                    attempt (k + 1)
                  end
                  else
                    finish_error ~reason:"transient"
                      (Printf.sprintf
                         "transient failure (%s) after %d attempts" why (k + 1))
              (* Resource exhaustion must escape to the supervisor (a
                 worker-crash answer + restart), not masquerade as a
                 request-level internal error. *)
              | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
              | exception e ->
                  finish_error ("internal: " ^ Printexc.to_string e)
            in
            attempt 0
      end

(* --- supervision ---

   Worker domains are expendable: an exception escaping the request
   handler (injected or real) kills only the domain it happened on. The
   dying worker answers its in-flight request with a structured
   [worker_crash] error first — ordered emission never sees a sequence
   hole — and then, under the supervisor lock, spawns its own
   replacement while the restart budget lasts. Spawning happens-before
   the domain terminates, so the joiner below can never miss a
   replacement: when [Domain.join] returns for a crashed worker, its
   replacement is already on the handle list. *)

type supervisor = {
  slock : Mutex.t;
  mutable handles : unit Domain.t list;
  mutable restarts_left : int;
}

let serve cfg (module T0 : TRANSPORT) =
  if cfg.workers < 1 then invalid_arg "Service.serve: workers < 1";
  if cfg.max_restarts < 0 then invalid_arg "Service.serve: max_restarts < 0";
  if cfg.retries < 0 then invalid_arg "Service.serve: retries < 0";
  if cfg.estimate_domains < 1 then
    invalid_arg "Service.serve: estimate_domains < 1";
  if cfg.degrade_trials < 1 then
    invalid_arg "Service.serve: degrade_trials < 1";
  let fault = cfg.fault in
  let module T = (val wrap_transport fault (module T0)) in
  let metrics = Metrics.create () in
  let cache = Cache.create ~capacity:cfg.cache_capacity in
  let on_pop =
    if fault.Fault.queue_delay = 0. then fun () -> ()
    else begin
      let pops = Atomic.make 0 in
      fun () ->
        let k = Atomic.fetch_and_add pops 1 in
        if Fault.fires fault Fault.Queue_delay ~key:k then
          Unix.sleepf (fault.Fault.queue_ms /. 1000.)
    end
  in
  let queue = Work_queue.create ~on_pop ~capacity:cfg.queue_capacity () in
  let em = emitter_create T.send in
  let sup =
    {
      slock = Mutex.create ();
      handles = [];
      restarts_left = cfg.max_restarts;
    }
  in
  let crash_answer job e =
    Metrics.record_worker_crash metrics;
    Metrics.record_error metrics;
    (* Nothing may stop the dying worker from reaching the supervisor:
       if even the crash answer fails to emit, supervision (and the
       shutdown drain's no-hole guarantee) still proceed. *)
    try
      emit em job.seq
        (Request.error ~id:job.req.Request.id ~reason:"worker_crash"
           ("worker crashed: " ^ Printexc.to_string e))
    with _ -> ()
  in
  let rec worker_main () =
    match worker_loop () with
    | () -> ()
    | exception _ ->
        Mutex.lock sup.slock;
        if sup.restarts_left > 0 then begin
          sup.restarts_left <- sup.restarts_left - 1;
          Metrics.record_restart metrics;
          sup.handles <- Domain.spawn worker_main :: sup.handles
        end;
        Mutex.unlock sup.slock
  and worker_loop () =
    match Work_queue.pop queue with
    | None -> ()
    | Some job ->
        (match
           if Fault.fires fault Fault.Crash ~key:job.seq then
             raise Fault.Injected_crash
           else handle_job cfg ~metrics ~cache ~queue ~em job
         with
        | () -> ()
        | exception e ->
            crash_answer job e;
            raise e);
        worker_loop ()
  in
  Mutex.lock sup.slock;
  sup.handles <- List.init cfg.workers (fun _ -> Domain.spawn worker_main);
  Mutex.unlock sup.slock;
  let seq = ref 0 in
  let rec read_loop () =
    match T.recv () with
    | None -> ()
    | Some line ->
        (* Blank lines are ignored rather than answered — convenient for
           hand-written request files. *)
        (if String.trim line <> "" then begin
           let s = !seq in
           incr seq;
           match
             Request.of_line ~default_trials:cfg.default_trials
               ~default_seed:cfg.default_seed
               ?default_ci_target:cfg.default_ci_target line
           with
           | Error (msg, id) ->
               Metrics.record_error metrics;
               emit em s (Request.error ~id msg)
           | Ok req ->
               let degraded =
                 match (cfg.degrade_watermark, req.Request.op) with
                 | ( Some w,
                     ( Request.Solve { range = None; _ }
                     | Request.Estimate { range = None; _ } ) ) ->
                     Work_queue.length queue >= w
                 | _ -> false
               in
               let job = { seq = s; admitted_at = now_ms (); degraded; req } in
               if Work_queue.push queue job then begin
                 if degraded then Metrics.record_degraded metrics
               end
               else begin
                 Metrics.record_rejected metrics;
                 emit em s
                   (Request.error ~id:req.Request.id ~reason:"queue_full"
                      (Printf.sprintf "queue full (capacity %d)"
                         cfg.queue_capacity))
               end
         end);
        read_loop ()
  in
  read_loop ();
  Work_queue.close queue;
  (* Join every worker, including replacements spawned while we were
     joining (each crash spawns before its domain terminates, so a
     re-scan that finds nothing new has seen everything). *)
  let rec join_all joined =
    Mutex.lock sup.slock;
    let current = sup.handles in
    Mutex.unlock sup.slock;
    let fresh = List.filter (fun h -> not (List.memq h joined)) current in
    if fresh <> [] then begin
      List.iter Domain.join fresh;
      join_all current
    end
  in
  join_all [];
  (* If the pool died with its restart budget exhausted, undelivered
     jobs remain: answer each so no admitted request is ever dropped
     and the ordered stream has no holes. *)
  let rec drain_unserved () =
    match Work_queue.pop queue with
    | None -> ()
    | Some job ->
        Metrics.record_error metrics;
        emit em job.seq
          (Request.error ~id:job.req.Request.id ~reason:"unavailable"
             "service unavailable (worker pool exhausted)");
        drain_unserved ()
  in
  drain_unserved ();
  report_of ~metrics ~cache ~queue

let run_lines cfg lines =
  let input = ref lines in
  let out = ref [] in
  let module T = struct
    let recv () =
      match !input with
      | [] -> None
      | l :: tl ->
          input := tl;
          Some l

    let send line = out := line :: !out
  end in
  let report = serve cfg (module T : TRANSPORT) in
  (List.rev !out, report)
