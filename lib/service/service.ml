module Engine = Suu_sim.Engine
module Instance = Suu_core.Instance
module Policy = Suu_core.Policy
module Stats = Suu_prob.Stats

type config = {
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  default_trials : int;
  default_seed : int;
  default_deadline_ms : float option;
}

let default_config =
  {
    workers = max 1 (min 8 (Domain.recommended_domain_count () - 1));
    queue_capacity = 64;
    cache_capacity = 128;
    default_trials = 200;
    default_seed = 1;
    default_deadline_ms = None;
  }

type report = {
  metrics : Metrics.snapshot;
  cache_hits : int;
  cache_misses : int;
  cache_size : int;
  queue_hwm : int;
}

let report_to_string r =
  let m = r.metrics in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "served %d requests (ok %d, errors %d, timeouts %d, rejected %d)\n"
       m.Metrics.requests m.Metrics.ok m.Metrics.errors m.Metrics.timeouts
       m.Metrics.rejected);
  Buffer.add_string buf
    (Printf.sprintf "cache: %d hits, %d misses, %d entries\n" r.cache_hits
       r.cache_misses r.cache_size);
  Buffer.add_string buf
    (Printf.sprintf "queue depth high-water mark: %d\n" r.queue_hwm);
  (match m.Metrics.latency with
  | None -> ()
  | Some l ->
      Buffer.add_string buf
        (Printf.sprintf
           "latency ms: min %.2f mean %.2f p95 %.2f max %.2f\n"
           l.Metrics.min_ms l.Metrics.mean_ms l.Metrics.p95_ms
           l.Metrics.max_ms));
  Buffer.contents buf

module type TRANSPORT = sig
  val recv : unit -> string option
  val send : string -> unit
end

let stdio () : (module TRANSPORT) =
  (module struct
    let recv () = In_channel.input_line In_channel.stdin

    let send line =
      print_string line;
      print_newline ();
      flush stdout
  end)

(* --- ordered response emission ---

   Workers finish out of order; responses must not. Each admitted line
   gets a sequence number and finished responses park in [pending] until
   every earlier response has been sent. Parked responses are thunks so
   a response can be rendered at the moment it is next in line — the
   stats request uses this to snapshot counters consistent with the
   emitted stream. *)

type emitter = {
  elock : Mutex.t;
  pending : (int, unit -> string) Hashtbl.t;
  mutable next_seq : int;
  send_line : string -> unit;
}

let emitter_create send_line =
  {
    elock = Mutex.create ();
    pending = Hashtbl.create 16;
    next_seq = 0;
    send_line;
  }

let emit_lazy em seq make_line =
  Mutex.lock em.elock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock em.elock)
    (fun () ->
      Hashtbl.replace em.pending seq make_line;
      let rec flush () =
        match Hashtbl.find_opt em.pending em.next_seq with
        | Some make ->
            Hashtbl.remove em.pending em.next_seq;
            em.send_line (make ());
            em.next_seq <- em.next_seq + 1;
            flush ()
        | None -> ()
      in
      flush ())

let emit em seq line = emit_lazy em seq (fun () -> line)

(* --- request execution --- *)

exception Failed of string

let failed fmt = Printf.ksprintf (fun msg -> raise (Failed msg)) fmt

(* Monotonic: deadlines and latencies must not move with the civil
   clock (NTP steps, manual adjustment). *)
let now_ms = Clock.now_ms

let estimate_fields ~policy ~trials ~seed ~stop instance =
  let e = Engine.estimate_makespan_seeded ~stop ~trials ~seed instance policy in
  let p95 =
    if Array.length e.Engine.samples = 0 then 0.
    else Stats.quantile e.Engine.samples 0.95
  in
  [
    ("algo", Json.Str policy.Policy.name);
    ("trials", Json.int e.Engine.trials);
    ("mean", Json.Num e.Engine.stats.Stats.mean);
    ("ci95", Json.Num e.Engine.stats.Stats.ci95);
    ("p95", Json.Num p95);
    ("incomplete", Json.int e.Engine.incomplete);
  ]

let info_fields instance =
  let dag = Instance.dag instance in
  (* LP-free bounds keep [info] cheap enough for the serving path. *)
  let bounds = Suu_algo.Bounds.compute ~with_lp:false instance in
  [
    ( "class",
      Json.Str (Suu_dag.Classify.to_string (Suu_dag.Classify.classify dag)) );
    ("jobs", Json.int (Instance.n instance));
    ("machines", Json.int (Instance.m instance));
    ("edges", Json.int (Suu_dag.Dag.edge_count dag));
    ("width", Json.int (Suu_dag.Dag.width dag));
    ("critical_path", Json.int (Suu_dag.Dag.longest_path dag));
    ( "bounds",
      Json.Obj
        [
          ("rate", Json.Num bounds.Suu_algo.Bounds.rate);
          ("capacity", Json.Num bounds.Suu_algo.Bounds.capacity);
          ("critical_path", Json.Num bounds.Suu_algo.Bounds.critical_path);
          ("best", Json.Num (Suu_algo.Bounds.best bounds));
        ] );
  ]

let execute op ~stop =
  match op with
  | Request.Solve { algo; trials; seed; instance } ->
      (* [auto] is the practical default (the adaptive greedy policy);
         the paper's guaranteed oblivious column is an explicit opt-in.
         [canonical_algo] is also what the cache key is built from, so a
         key can never alias two different computations. *)
      let kind = Request.canonical_algo algo in
      let policy =
        try Suu_algo.Solver.solve ~kind instance
        with Suu_algo.Solver.Unsupported msg -> failed "unsupported: %s" msg
      in
      estimate_fields ~policy ~trials ~seed ~stop instance
  | Request.Estimate { plan; trials; seed; instance; _ } ->
      estimate_fields
        ~policy:(Policy.of_oblivious "plan" plan)
        ~trials ~seed ~stop instance
  | Request.Info instance -> info_fields instance
  | Request.Exact instance -> (
      match Suu_algo.Malewicz.optimal instance with
      | r ->
          [
            ("topt", Json.Num r.Suu_algo.Malewicz.value);
            ("states", Json.int r.Suu_algo.Malewicz.states);
          ]
      | exception Suu_algo.Malewicz.Too_expensive msg ->
          failed "exact: too expensive: %s" msg)
  | Request.Stats -> assert false (* handled without execution *)

(* --- the service --- *)

type job = { seq : int; admitted_at : float; req : Request.t }

let report_of ~metrics ~cache ~queue =
  {
    metrics = Metrics.snapshot metrics;
    cache_hits = Cache.hits cache;
    cache_misses = Cache.misses cache;
    cache_size = Cache.length cache;
    queue_hwm = Work_queue.high_water_mark queue;
  }

let stats_fields r =
  let m = r.metrics in
  let base =
    [
      ("requests", Json.int m.Metrics.requests);
      ("ok", Json.int m.Metrics.ok);
      ("errors", Json.int m.Metrics.errors);
      ("timeouts", Json.int m.Metrics.timeouts);
      ("rejected", Json.int m.Metrics.rejected);
      ("cache_hits", Json.int r.cache_hits);
      ("cache_misses", Json.int r.cache_misses);
      ("cache_size", Json.int r.cache_size);
      ("queue_hwm", Json.int r.queue_hwm);
    ]
  in
  match m.Metrics.latency with
  | None -> base
  | Some l ->
      base
      @ [
          ( "latency_ms",
            Json.Obj
              [
                ("min", Json.Num l.Metrics.min_ms);
                ("mean", Json.Num l.Metrics.mean_ms);
                ("p95", Json.Num l.Metrics.p95_ms);
                ("max", Json.Num l.Metrics.max_ms);
              ] );
        ]

let handle_job cfg ~metrics ~cache ~queue ~em job =
  let { seq; admitted_at; req } = job in
  let id = req.Request.id in
  let deadline_ms =
    match req.Request.deadline_ms with
    | Some _ as d -> d
    | None -> cfg.default_deadline_ms
  in
  let expired () =
    match deadline_ms with
    | None -> false
    | Some d -> now_ms () -. admitted_at >= d
  in
  let finish_ok fields =
    Metrics.record_ok metrics ~latency_ms:(now_ms () -. admitted_at);
    emit em seq (Request.ok ~id fields)
  in
  let finish_error msg =
    Metrics.record_error metrics;
    emit em seq (Request.error ~id msg)
  in
  let finish_timeout () =
    Metrics.record_timeout metrics;
    emit em seq
      (Request.timeout ~id
         ~deadline_ms:(Option.value deadline_ms ~default:0.))
  in
  match req.Request.op with
  | Request.Stats ->
      (* Counted apart so a stats response describes the workload without
         counting itself; never subject to deadlines. The snapshot is
         deferred until this response is next in line to be emitted, so
         its counts include every response that appears above it in the
         stream (responses record their metrics before they emit). *)
      Metrics.record_stats_request metrics;
      emit_lazy em seq (fun () ->
          Request.ok ~id (stats_fields (report_of ~metrics ~cache ~queue)))
  | op ->
      if expired () then finish_timeout ()
      else begin
        let key = Request.cache_key req in
        match Option.bind key (Cache.find cache) with
        | Some fields -> finish_ok (("cached", Json.Bool true) :: fields)
        | None -> (
            match execute op ~stop:expired with
            | fields ->
                Option.iter (fun k -> Cache.add cache k fields) key;
                let fields =
                  if key <> None then ("cached", Json.Bool false) :: fields
                  else fields
                in
                finish_ok fields
            | exception Engine.Interrupted -> finish_timeout ()
            | exception Failed msg -> finish_error msg
            | exception e ->
                finish_error ("internal: " ^ Printexc.to_string e))
      end

let serve cfg (module T : TRANSPORT) =
  if cfg.workers < 1 then invalid_arg "Service.serve: workers < 1";
  let metrics = Metrics.create () in
  let cache = Cache.create ~capacity:cfg.cache_capacity in
  let queue = Work_queue.create ~capacity:cfg.queue_capacity in
  let em = emitter_create T.send in
  let worker () =
    let rec loop () =
      match Work_queue.pop queue with
      | None -> ()
      | Some job ->
          handle_job cfg ~metrics ~cache ~queue ~em job;
          loop ()
    in
    loop ()
  in
  let domains = List.init cfg.workers (fun _ -> Domain.spawn worker) in
  let seq = ref 0 in
  let rec read_loop () =
    match T.recv () with
    | None -> ()
    | Some line ->
        (* Blank lines are ignored rather than answered — convenient for
           hand-written request files. *)
        (if String.trim line <> "" then begin
           let s = !seq in
           incr seq;
           match
             Request.of_line ~default_trials:cfg.default_trials
               ~default_seed:cfg.default_seed line
           with
           | Error (msg, id) ->
               Metrics.record_error metrics;
               emit em s (Request.error ~id msg)
           | Ok req ->
               let job = { seq = s; admitted_at = now_ms (); req } in
               if not (Work_queue.push queue job) then begin
                 Metrics.record_rejected metrics;
                 emit em s
                   (Request.error ~id:req.Request.id
                      (Printf.sprintf "queue full (capacity %d)"
                         cfg.queue_capacity))
               end
         end);
        read_loop ()
  in
  read_loop ();
  Work_queue.close queue;
  List.iter Domain.join domains;
  report_of ~metrics ~cache ~queue

let run_lines cfg lines =
  let input = ref lines in
  let out = ref [] in
  let module T = struct
    let recv () =
      match !input with
      | [] -> None
      | l :: tl ->
          input := tl;
          Some l

    let send line = out := line :: !out
  end in
  let report = serve cfg (module T : TRANSPORT) in
  (List.rev !out, report)
