type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int n = Num (Float.of_int n)

(* --- output --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let num_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.12g" x

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> Buffer.add_string buf (num_to_string x)
  | Str s -> escape buf s
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun k v ->
          if k > 0 then Buffer.add_char buf ',';
          emit buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun k (name, v) ->
          if k > 0 then Buffer.add_char buf ',';
          escape buf name;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* --- input --- *)

exception Parse of string * int

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_codepoint buf cp =
    (* UTF-8 encode; lone surrogates are encoded as-is (WTF-8 style). *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 32 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  let cp = hex4 () in
                  let cp =
                    (* Combine a surrogate pair when one follows. *)
                    if
                      cp >= 0xD800 && cp <= 0xDBFF
                      && !pos + 1 < n
                      && s.[!pos] = '\\'
                      && s.[!pos + 1] = 'u'
                    then begin
                      let save = !pos in
                      pos := !pos + 2;
                      let lo = hex4 () in
                      if lo >= 0xDC00 && lo <= 0xDFFF then
                        0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                      else begin
                        pos := save;
                        cp
                      end
                    end
                    else cp
                  in
                  add_codepoint buf cp
              | _ -> fail "bad escape character");
              loop ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let consume pred =
      while !pos < n && pred s.[!pos] do
        advance ()
      done
    in
    if peek () = Some '-' then advance ();
    consume (function '0' .. '9' -> true | _ -> false);
    if peek () = Some '.' then begin
      advance ();
      consume (function '0' .. '9' -> true | _ -> false)
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        consume (function '0' .. '9' -> true | _ -> false)
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> Num x
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let name = parse_string () in
            (* Accepting duplicates would make the object's meaning
               depend on which occurrence a reader picks — two parsers
               (or two processes routing on a cache key) could disagree
               about the same line. Reject outright. *)
            if List.mem_assoc name !fields then
              fail (Printf.sprintf "duplicate key %S" name);
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (name, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse (msg, at) ->
      Error (Printf.sprintf "%s at offset %d" msg at)

(* --- accessors --- *)

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_num = function Num x -> Some x | _ -> None

let to_int = function
  | Num x when Float.is_integer x && Float.abs x < 1e15 ->
      Some (Float.to_int x)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
