(** Thread-safe LRU result cache.

    Repeated solves of the same instance dominate real serving workloads
    (the same DAG is re-submitted with the same parameters), so the
    service memoises finished answers keyed by a content digest of
    [(instance, algorithm, trials, seed)] — see {!Request.cache_key}. The
    cache here is generic: string keys, any value type.

    Eviction is least-recently-used: a hit refreshes the entry's
    recency; inserting beyond [capacity] drops the stalest entry. Hits
    and misses are counted for the service's metrics. A [capacity] of 0
    disables caching ({!find} always misses, {!add} is a no-op) without
    callers having to special-case it. All operations are safe across
    OCaml 5 domains. *)

type 'v t

val create : capacity:int -> 'v t
(** @raise Invalid_argument if [capacity < 0]. *)

val find : 'v t -> string -> 'v option
(** Lookup; counts a hit (and refreshes recency) or a miss. *)

val add : 'v t -> string -> 'v -> unit
(** Insert or overwrite; evicts the least-recently-used entry when the
    capacity would be exceeded. *)

val length : 'v t -> int
val capacity : 'v t -> int
val hits : 'v t -> int
val misses : 'v t -> int
