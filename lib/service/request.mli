(** Typed requests and responses, and their line-oriented wire codec.

    One request per line, one response per line, each a JSON object
    ({!Json}). Instances and plans travel inside the JSON as strings in
    the existing {!Suu_harness.Io} formats (newlines escaped), so the
    wire format is a thin envelope over serialisations the rest of the
    system already speaks.

    Request envelope fields: ["op"] (required), ["id"] (optional, echoed
    back), ["deadline_ms"] (optional per-request budget), plus per-op
    fields:
    {v
    {"op":"solve","instance":S,
     "algo":"auto|adaptive|oblivious|improved|lzf|fixed",
     "trials":K,"seed":N,"range":[lo,hi],"ci_target":W,
     "releases":[r0,...],"churn":"seed=..,rate=..,..",...}
    {"op":"estimate","instance":S,"plan":P,"trials":K,"seed":N,
     "range":[lo,hi],"ci_target":W,"releases":…,"churn":…,...}
    {"op":"info","instance":S}
    {"op":"exact","instance":S}
    {"op":"ping"}
    {"op":"stats","format":"json|prom|raw"}
    v}
    ["range"] (optional, Monte-Carlo ops only) marks a {e trial-range
    sub-job}: run only trials [lo <= k < hi] of the seeded estimate and
    answer a partial result carrying the raw samples — the unit of work
    the sharding coordinator fans out and merges bit-identically
    ({!Suu_sim.Engine.merge_ranges}). ["ci_target"] (optional,
    Monte-Carlo ops only, > 0) enables CI-width sequential stopping: the
    estimate may execute fewer trials once the 95% CI half-width of the
    mean makespan reaches the target
    ({!Suu_sim.Engine.estimate_makespan}).

    ["releases"] (optional, Monte-Carlo ops only) is a per-job list of
    non-negative release steps making the run an online one; its length
    must match the instance's job count. ["churn"] (optional,
    Monte-Carlo ops only) is a {!Suu_dyn.Churn.params_of_spec} spec
    string — the worker regenerates the deterministic machine up/down
    timeline from the spec and the instance's machine count, so only
    the spec travels on the wire. Both fold into the cache key
    (distinct lanes: a dynamic answer never aliases a static one) and
    re-encode canonically in coordinator sub-jobs.

    Responses carry ["id"], ["status"] (["ok"|"error"|"timeout"]) and
    status-specific fields. *)

type algo = [ `Auto | `Adaptive | `Oblivious | `Improved | `Lzf | `Fixed ]

val algo_name : algo -> string

val canonical_algo :
  algo -> [ `Adaptive | `Oblivious | `Improved | `Lzf | `Fixed ]
(** The algorithm actually executed: [`Auto] is the practical default and
    resolves to [`Adaptive]; the named algorithms are themselves. Cache
    keys use the canonical form so "auto" and "adaptive" requests for the
    same instance share one entry — and distinct named algorithms
    ("improved" vs "adaptive") can never alias. {!sub_line} re-encodes
    the canonical form too, so a coordinator resolves "auto" exactly once
    and its sub-jobs execute identically on any worker. *)

type op =
  | Solve of {
      algo : algo;
      trials : int;
      seed : int;
      range : (int * int) option;  (** trial-range sub-job, if any *)
      ci_target : float option;  (** CI-width stopping target, if any *)
      releases : int array option;  (** per-job release steps, if any *)
      churn : Suu_dyn.Churn.params option;
          (** machine-churn timeline spec, if any *)
      instance : Suu_core.Instance.t;
    }
      (** Build a schedule ({!Suu_algo.Solver}) and estimate its expected
          makespan. *)
  | Estimate of {
      plan : Suu_core.Oblivious.t;
      plan_digest : string;  (** content digest of the plan text *)
      trials : int;
      seed : int;
      range : (int * int) option;  (** trial-range sub-job, if any *)
      ci_target : float option;  (** CI-width stopping target, if any *)
      releases : int array option;  (** per-job release steps, if any *)
      churn : Suu_dyn.Churn.params option;
          (** machine-churn timeline spec, if any *)
      instance : Suu_core.Instance.t;
    }  (** Estimate the expected makespan of a client-supplied plan. *)
  | Info of Suu_core.Instance.t
      (** Classification, DAG statistics and (LP-free) lower bounds. *)
  | Exact of Suu_core.Instance.t
      (** Optimal expected makespan by Malewicz's DP (small instances). *)
  | Ping
      (** Liveness probe: answers [{"status":"ok","pong":true}]
          immediately (through the ordinary queue, so a pong also vouches
          for the worker pool). The coordinator heartbeats shards with
          these. *)
  | Stats of { format : [ `Json | `Prom | `Raw ] }
      (** Service metrics snapshot. [`Json] (the default) answers with
          structured fields; [`Prom] answers with the whole
          Prometheus-style text exposition carried as an escaped string
          in a ["prom"] field (the wire stays one JSON line per
          response); [`Raw] answers with the [`Json] fields {e plus} the
          mergeable raw material — the latency histogram snapshot
          (["latency_hist"]) and the engine counters (["engine"]) — which
          is what the coordinator pulls from each shard to build one
          merged exposition. *)

type t = { id : string option; deadline_ms : float option; op : op }

val op_kind : op -> string
(** The wire name of the operation (["solve"], ["estimate"], ["info"],
    ["exact"], ["ping"], ["stats"]) — for span attributes and log
    lines. *)

val of_line :
  default_trials:int ->
  default_seed:int ->
  ?default_ci_target:float ->
  string ->
  (t, string * string option) result
(** Decode one request line. [Error (message, id)] carries the request id
    when the envelope was intact enough to recover it, so the error
    response can still be correlated. Missing ["trials"]/["seed"] take
    the supplied defaults, and a missing ["ci_target"] takes
    [default_ci_target] (default: none — exhaustive estimates); a
    ["range"] must satisfy [0 <= lo < hi <= trials] and an explicit
    ["ci_target"] must be positive. Lines with duplicate JSON keys are
    rejected at the parser ({!Json.of_string}). *)

val cache_key : t -> string option
(** Result-cache key: a content digest of the request's semantics —
    [(instance digest, op, algorithm, trials, seed)] plus the trial
    range when one is present (a partial answer must never alias the
    full one) and the [ci_target] when one is set (an early-stopped
    answer must never alias an exhaustive one) — for [solve], [estimate]
    and [exact]; [None] for the
    uncacheable ops ([info] is cheap, [ping] and [stats] are
    time-varying). Requests with equal keys are guaranteed identical
    answers by the per-trial seeding discipline
    ({!Suu_sim.Engine.estimate_makespan_seeded}). *)

val sub_line : t -> lo:int -> hi:int -> string
(** Re-encode a Monte-Carlo request as the sub-job request line for
    trials [lo <= k < hi]: same id, deadline, algorithm, trials, seed
    and [ci_target], with ["range":[lo,hi]] and the instance (and plan) serialised
    canonically via {!Suu_harness.Io} — those round-trip losslessly, so
    the sub-job computes over bit-identical probabilities. All sub-jobs
    of one request re-encode the plan identically, so their worker-side
    cache keys agree with each other no matter which shard runs them.
    @raise Invalid_argument on non-Monte-Carlo ops. *)

(** {1 Response encoding} *)

val ok : id:string option -> (string * Json.t) list -> string
(** [{"id":…,"status":"ok",…fields}] — fields keep their order. *)

val error : id:string option -> ?reason:string -> string -> string
(** [{"id":…,"status":"error","error":msg}], plus a machine-readable
    ["reason"] field when one is given. The service uses
    ["worker_crash"] (the worker died mid-request), ["transient"] (a
    retryable failure outlived its retry budget), ["queue_full"] (load
    shed at admission) and ["unavailable"] (drained at shutdown after
    the worker pool's restart budget was exhausted); the coordinator
    adds ["shard_lost"] (a sub-job's retry budget died with its
    shards); plain request errors carry no reason. *)

val timeout : id:string option -> deadline_ms:float -> string
(** [{"id":…,"status":"timeout","error":"deadline exceeded",
    "deadline_ms":…}] *)
